#!/usr/bin/env bash
# Regenerates the committed CI drift-gate baselines (bench/baselines/) by
# running every report-producing bench at default scale with --json-out.
# One command, from the repo root:
#
#   tools/refresh_baselines.sh [build-dir]
#
# Run it after any change that intentionally shifts simulated counters or
# figure values, eyeball `git diff bench/baselines/` to confirm the shift
# is the one you meant to make, and commit the result. Wall-clock fields
# in the baselines are informational; CI compares with --ignore-wall.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: ${BUILD_DIR}/bench not found; build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

BENCHES=(
  bench_table2_storage
  bench_fig7_search_time
  bench_fig8_io
  bench_fig9_scalability
  bench_fig10_frame_time
  bench_fig11_fidelity
  bench_fig12_sessions
  bench_table3_frame_stats
  bench_ablations
)

# Verify every binary exists before writing anything: a partial refresh
# (some baselines from this build, some stale) would slip through CI's
# drift gate looking like an intentional shift.
missing=0
for bench in "${BENCHES[@]}"; do
  if [[ ! -x "${BUILD_DIR}/bench/${bench}" ]]; then
    echo "error: ${BUILD_DIR}/bench/${bench} is missing or not executable" >&2
    missing=1
  fi
done
if (( missing )); then
  echo "error: refusing to write a partial baseline set; build everything" >&2
  echo "  cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p bench/baselines
for bench in "${BENCHES[@]}"; do
  out="bench/baselines/BENCH_${bench#bench_}.json"
  echo "== ${bench} -> ${out}"
  "${BUILD_DIR}/bench/${bench}" --json-out="${out}" >/dev/null
done
echo "done; review with: git diff bench/baselines/"
