// hdov_build: offline world construction. Generates the experiment scene
// at a chosen scale, precomputes visibility, builds the HDoV-tree and ALL
// V-page storage schemes, and writes everything into one versioned
// snapshot file (see docs/storage.md). Benchmarks then start from that
// file with --db=<path> instead of rebuilding the world every run:
//
//   hdov_build --out=world.hdov [--blocks=16] [--cells=16] [--seed=N]
//              [--samples-per-cell=1] [--face-resolution=64] [--threads=1]
//              [--scale=default|large] [--stats-out=<path>]
//              [--telemetry-out=<path>]
//
// --scale presets the paper's bench sizes (same values as the
// HDOV_BENCH_SCALE environment knob); the explicit flags override it.
// --telemetry-out writes the full build metric snapshot (persist.* plus
// build.* world-shape gauges) as JSON; --stats-out writes the persist.*
// subset of the SAME snapshot through the same emitter, so the persist
// view can never drift from the full one.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "persist/snapshot.h"
#include "telemetry/bench_report.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "testbed/testbed_glue.h"
#include "walkthrough/experiment_testbed.h"

namespace hdov {
namespace {

struct BuildArgs {
  std::string out;
  std::string stats_out;
  std::string telemetry_out;
  TestbedOptions testbed;
};

[[noreturn]] void Usage(const char* flag) {
  std::fprintf(stderr,
               "hdov_build: bad flag %s\n"
               "usage: hdov_build --out=<path> [--blocks=N] [--cells=N]\n"
               "  [--seed=N] [--samples-per-cell=N] [--face-resolution=N]\n"
               "  [--threads=N] [--scale=default|large]"
               " [--stats-out=<path>]\n"
               "  [--telemetry-out=<path>]\n",
               flag);
  std::exit(2);
}

bool IntFlag(const char* arg, const char* name, int* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) {
    return false;
  }
  char* end = nullptr;
  const long value = std::strtol(arg + len, &end, 10);
  if (end == arg + len || *end != '\0' || value < 0) {
    Usage(arg);
  }
  *out = static_cast<int>(value);
  return true;
}

// The single emitter behind --telemetry-out and --stats-out: both write a
// view of the SAME captured snapshot in the standard telemetry JSON shape
// (a frame-less telemetry document), so the persist-only subset can never
// drift from the full export.
Status EmitMetricsJson(const telemetry::MetricsSnapshot& view,
                       const std::string& path) {
  std::string doc = "{\"version\":1,\"metrics\":";
  doc.append(view.ToJson());
  doc.append(",\"frames_recorded\":0,\"frames_dropped\":0,\"frames\":[]}");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path);
  }
  out << doc;
  out.flush();
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

BuildArgs Parse(int argc, char** argv) {
  BuildArgs args;
  int threads = 1;
  int seed = -1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      args.out = arg + 6;
    } else if (std::strncmp(arg, "--stats-out=", 12) == 0) {
      args.stats_out = arg + 12;
    } else if (std::strncmp(arg, "--telemetry-out=", 16) == 0) {
      args.telemetry_out = arg + 16;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      if (std::strcmp(arg + 8, "large") == 0) {
        // Same preset as the benches' HDOV_BENCH_SCALE=large knob, from
        // the shared testbed glue so the two cannot drift.
        testbed::ApplyLargeScalePreset(&args.testbed);
      } else if (std::strcmp(arg + 8, "default") != 0) {
        Usage(arg);
      }
    } else if (IntFlag(arg, "--blocks=", &args.testbed.blocks) ||
               IntFlag(arg, "--cells=", &args.testbed.cells) ||
               IntFlag(arg, "--samples-per-cell=",
                       &args.testbed.samples_per_cell) ||
               IntFlag(arg, "--face-resolution=",
                       &args.testbed.face_resolution) ||
               IntFlag(arg, "--threads=", &threads) ||
               IntFlag(arg, "--seed=", &seed)) {
      continue;
    } else {
      Usage(arg);
    }
  }
  if (args.out.empty()) {
    std::fprintf(stderr, "hdov_build: --out=<path> is required\n");
    std::exit(2);
  }
  args.testbed.threads = static_cast<uint32_t>(threads);
  if (seed >= 0) {
    args.testbed.seed = static_cast<uint64_t>(seed);
  }
  return args;
}

int Run(const BuildArgs& args) {
  telemetry::WallTimer total;
  std::printf("hdov_build: %dx%d blocks, %dx%d cells, seed %llu\n",
              args.testbed.blocks, args.testbed.blocks, args.testbed.cells,
              args.testbed.cells,
              static_cast<unsigned long long>(args.testbed.seed));

  telemetry::WallTimer phase;
  Result<Testbed> bed = BuildTestbed(args.testbed);
  if (!bed.ok()) {
    std::fprintf(stderr, "hdov_build: %s\n",
                 bed.status().ToString().c_str());
    return 1;
  }
  std::printf("world: %s | %u cells | avg %.1f visible objects/cell"
              " (%.1f s)\n",
              bed->scene.Summary().c_str(), bed->grid.num_cells(),
              bed->table.AverageVisibleObjects(),
              phase.ElapsedMs() / 1000.0);

  PersistStats stats;
  phase = telemetry::WallTimer();
  Status status = [&]() -> Status {
    HDOV_ASSIGN_OR_RETURN(std::unique_ptr<SnapshotWriter> writer,
                          SnapshotWriter::Create(args.out,
                                                 DiskModel().page_size,
                                                 &stats));
    HDOV_RETURN_IF_ERROR(
        WriteWorldSnapshot(writer.get(), *bed,
                           DefaultVisualOptions(args.testbed.threads)));
    return writer->Commit();
  }();
  if (!status.ok()) {
    std::fprintf(stderr, "hdov_build: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("snapshot: wrote %s — %.2f MB, %llu fsyncs (%.1f s)\n",
              args.out.c_str(),
              static_cast<double>(stats.bytes_written) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(stats.fsyncs),
              phase.ElapsedMs() / 1000.0);

  // Verification pass: reload every section through the checksummed read
  // path, so a build whose file cannot be read back fails here, not in the
  // first bench that trusts it.
  phase = telemetry::WallTimer();
  status = [&]() -> Status {
    HDOV_ASSIGN_OR_RETURN(std::unique_ptr<SnapshotLoader> snapshot,
                          SnapshotLoader::Open(args.out, &stats));
    HDOV_ASSIGN_OR_RETURN(Testbed reloaded, LoadWorldSections(*snapshot));
    HDOV_ASSIGN_OR_RETURN(
        std::unique_ptr<VisualSystem> system,
        VisualSystem::CreateFromSnapshot(
            *snapshot, &reloaded.scene, &reloaded.grid,
            DefaultVisualOptions(), SnapshotLoadMode::kFileBacked));
    (void)system;
    return Status::OK();
  }();
  if (!status.ok()) {
    std::fprintf(stderr, "hdov_build: verification reload failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("verify: reloaded world + indexed-vertical system"
              " (%llu checksum verifications, %.1f s)\n",
              static_cast<unsigned long long>(stats.checksum_verifications),
              phase.ElapsedMs() / 1000.0);

  if (!args.stats_out.empty() || !args.telemetry_out.empty()) {
    telemetry::MetricsRegistry registry;
    stats.RegisterWith(&registry, "persist");
    const double blocks = static_cast<double>(args.testbed.blocks);
    const double cells = static_cast<double>(bed->grid.num_cells());
    const double objects = static_cast<double>(bed->scene.size());
    const double avg_visible =
        static_cast<double>(bed->table.AverageVisibleObjects());
    const double wall_ms = total.ElapsedMs();
    registry.RegisterView("build.blocks", [blocks] { return blocks; });
    registry.RegisterView("build.cells", [cells] { return cells; });
    registry.RegisterView("build.objects", [objects] { return objects; });
    registry.RegisterView("build.avg_visible_objects",
                          [avg_visible] { return avg_visible; });
    registry.RegisterView("build.wall_ms", [wall_ms] { return wall_ms; });
    const telemetry::MetricsSnapshot metrics = registry.Snapshot();
    if (!args.telemetry_out.empty()) {
      if (Status s = EmitMetricsJson(metrics, args.telemetry_out); !s.ok()) {
        std::fprintf(stderr, "hdov_build: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("telemetry: wrote %s\n", args.telemetry_out.c_str());
    }
    if (!args.stats_out.empty()) {
      if (Status s = EmitMetricsJson(
              telemetry::FilterSnapshot(metrics, "persist"), args.stats_out);
          !s.ok()) {
        std::fprintf(stderr, "hdov_build: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("stats: wrote %s\n", args.stats_out.c_str());
    }
  }
  std::printf("done in %.1f s\n", total.ElapsedMs() / 1000.0);
  return 0;
}

}  // namespace
}  // namespace hdov

int main(int argc, char** argv) {
  return hdov::Run(hdov::Parse(argc, argv));
}
