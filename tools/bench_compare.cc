// bench_compare: diff two bench-report JSON documents (the --json-out
// format written by every bench binary; see docs/telemetry.md).
//
//   bench_compare old.json new.json [flags]
//
// Simulated counters, per-figure series values and frame-total digests
// are deterministic, so they are compared at zero tolerance — any drift
// is a behavior change and fails the comparison (exit 1). Wall-clock
// values (columns the report marks `wall`, and the repeated-timing
// stats) are noisy, so they only fail beyond a relative tolerance with
// an absolute floor, and can be excluded entirely with --ignore-wall
// (what CI does: its runners' wall-clock says nothing about yours).
//
// Flags:
//   --wall-tolerance=F   relative wall-clock regression allowed (0.30)
//   --wall-floor-ms=F    ignore wall regressions smaller than this (1.0)
//   --ignore-wall        skip wall-clock comparison entirely
//   --skip=SUBSTR        ignore metrics whose name contains SUBSTR
//                        (repeatable)
//
// Exit codes: 0 = match, 1 = drift/regression found, 2 = usage or I/O
// error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/bench_report.h"
#include "telemetry/json.h"

namespace hdov::telemetry {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare old.json new.json [--wall-tolerance=F]\n"
      "                     [--wall-floor-ms=F] [--ignore-wall]"
      " [--skip=SUBSTR]\n");
  return 2;
}

Result<JsonValue> LoadReport(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(std::string("cannot open ") + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<JsonValue> doc = ParseJson(buffer.str());
  if (!doc.ok()) {
    return Status::InvalidArgument(std::string(path) + ": " +
                                   doc.status().ToString());
  }
  return doc;
}

const char* SeverityTag(CompareFinding::Severity severity) {
  switch (severity) {
    case CompareFinding::Severity::kFail: return "FAIL";
    case CompareFinding::Severity::kWarn: return "warn";
    case CompareFinding::Severity::kInfo: return "info";
  }
  return "?";
}

int RunCompare(int argc, char** argv) {
  const char* paths[2] = {nullptr, nullptr};
  int num_paths = 0;
  CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--wall-tolerance=", 17) == 0) {
      options.wall_tolerance = std::atof(arg + 17);
    } else if (std::strncmp(arg, "--wall-floor-ms=", 16) == 0) {
      options.wall_floor_ms = std::atof(arg + 16);
    } else if (std::strcmp(arg, "--ignore-wall") == 0) {
      options.ignore_wall = true;
    } else if (std::strncmp(arg, "--skip=", 7) == 0) {
      options.skip_substrings.emplace_back(arg + 7);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return Usage();
    } else if (num_paths < 2) {
      paths[num_paths++] = arg;
    } else {
      return Usage();
    }
  }
  if (num_paths != 2) {
    return Usage();
  }

  Result<JsonValue> old_doc = LoadReport(paths[0]);
  Result<JsonValue> new_doc = LoadReport(paths[1]);
  if (!old_doc.ok() || !new_doc.ok()) {
    const Status& s = old_doc.ok() ? new_doc.status() : old_doc.status();
    std::fprintf(stderr, "bench_compare: %s\n", s.ToString().c_str());
    return 2;
  }

  const CompareResult result = CompareReports(*old_doc, *new_doc, options);

  size_t fails = 0;
  size_t warns = 0;
  for (const CompareFinding& finding : result.findings) {
    if (finding.severity == CompareFinding::Severity::kFail) {
      ++fails;
    } else if (finding.severity == CompareFinding::Severity::kWarn) {
      ++warns;
    }
    std::printf("[%s] %s: %s\n", SeverityTag(finding.severity),
                finding.where.c_str(), finding.message.c_str());
  }
  std::printf(
      "\nbench_compare: %llu values compared, %zu failure(s), %zu"
      " warning(s)%s\n",
      static_cast<unsigned long long>(result.values_compared), fails, warns,
      options.ignore_wall ? " (wall-clock ignored)" : "");
  if (fails == 0) {
    std::printf("PASS: no counter drift%s\n",
                options.ignore_wall ? "" : ", no wall-clock regression");
  }
  return fails == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hdov::telemetry

int main(int argc, char** argv) {
  return hdov::telemetry::RunCompare(argc, argv);
}
