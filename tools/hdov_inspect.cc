// hdov_inspect: read-only inspector over the observability artifacts a
// run leaves behind — world snapshots (tools/hdov_build), flight-recorder
// dumps (--flight-out) and telemetry JSON files (--telemetry-out):
//
//   hdov_inspect --db=<world.hdov> [--check]
//   hdov_inspect --flight=<dump.bin> [--chrome-out=<trace.json>]
//   hdov_inspect --slowdump=<slow.bin> [--chrome-out=<trace.json>]
//   hdov_inspect --telemetry=<telemetry.json>
//
// --db prints the snapshot's section catalog, tree shape (depth, fanout
// and entry-count histogram), per-cell DoV histogram and per-scheme
// V-page occupancy. With --check every blob is re-read through the
// checksummed path and every device section restored, so a snapshot that
// cannot be fully read back fails the run with a nonzero exit (the CI
// persist-roundtrip job runs exactly this).
//
// --flight prints per-type, per-source, per-session and per-stage event
// rollups of a recorder dump; --chrome-out converts it to a Chrome
// trace-event file.
//
// --slowdump prints the captured slow frames of a --slowdump-out file:
// per capture the session, frame, queue-wait vs service time, the
// threshold that tripped, the per-stage breakdown and the flight events
// caught in the frame's window; --chrome-out converts the captures to a
// Chrome trace with one track per session.
//
// --telemetry prints per-system frame rollups of a telemetry snapshot.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hdov/builder.h"
#include "hdov/hdov_tree.h"
#include "persist/snapshot.h"
#include "persist/world_codec.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/json.h"
#include "telemetry/slow_frame.h"
#include "telemetry/trace_context.h"
#include "visibility/precompute.h"

namespace hdov {
namespace {

struct InspectArgs {
  std::string db;
  std::string flight;
  std::string slowdump;
  std::string telemetry;
  std::string chrome_out;
  bool check = false;
};

[[noreturn]] void Usage(const char* flag) {
  std::fprintf(stderr,
               "hdov_inspect: bad flag %s\n"
               "usage: hdov_inspect [--db=<world.hdov>] [--check]\n"
               "  [--flight=<dump.bin>] [--chrome-out=<trace.json>]\n"
               "  [--slowdump=<slow.bin>]\n"
               "  [--telemetry=<telemetry.json>]\n",
               flag);
  std::exit(2);
}

InspectArgs Parse(int argc, char** argv) {
  InspectArgs args;
  const auto path_flag = [](const char* arg, const char* name,
                            std::string* out) {
    const size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0) {
      return false;
    }
    *out = arg + len;
    if (out->empty()) {
      Usage(arg);
    }
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    if (path_flag(argv[i], "--db=", &args.db) ||
        path_flag(argv[i], "--flight=", &args.flight) ||
        path_flag(argv[i], "--slowdump=", &args.slowdump) ||
        path_flag(argv[i], "--telemetry=", &args.telemetry) ||
        path_flag(argv[i], "--chrome-out=", &args.chrome_out)) {
      continue;
    }
    if (std::strcmp(argv[i], "--check") == 0) {
      args.check = true;
    } else {
      Usage(argv[i]);
    }
  }
  if (args.db.empty() && args.flight.empty() && args.slowdump.empty() &&
      args.telemetry.empty()) {
    Usage("(no input)");
  }
  return args;
}

// Fixed-width histogram over [0, 1] DoV values plus a dedicated zero
// bucket (hidden entries dominate and would otherwise swamp bucket 0).
void PrintDovHistogram(const VisibilityTable& table) {
  constexpr int kBuckets = 10;
  uint64_t zero = 0;
  uint64_t buckets[kBuckets] = {};
  uint64_t total = 0;
  double dov_sum = 0.0;
  for (CellId c = 0; c < table.num_cells(); ++c) {
    const CellVisibility& cell = table.cell(c);
    for (float dov : cell.dov) {
      ++total;
      dov_sum += dov;
      if (dov <= 0.0f) {
        ++zero;
        continue;
      }
      int b = static_cast<int>(dov * kBuckets);
      buckets[std::min(b, kBuckets - 1)] += 1;
    }
  }
  std::printf("dov histogram (%llu (cell, object) records, mean %.4f):\n",
              static_cast<unsigned long long>(total),
              total > 0 ? dov_sum / static_cast<double>(total) : 0.0);
  const auto bar = [&](uint64_t count) {
    const int width = total > 0
                          ? static_cast<int>(
                                60.0 * static_cast<double>(count) /
                                static_cast<double>(total))
                          : 0;
    return std::string(static_cast<size_t>(width), '#');
  };
  std::printf("  %-12s %10llu %s\n", "= 0",
              static_cast<unsigned long long>(zero), bar(zero).c_str());
  for (int b = 0; b < kBuckets; ++b) {
    char label[32];
    std::snprintf(label, sizeof(label), "(%.1f, %.1f]", b / 10.0,
                  (b + 1) / 10.0);
    std::printf("  %-12s %10llu %s\n", label,
                static_cast<unsigned long long>(buckets[b]),
                bar(buckets[b]).c_str());
  }
}

void PrintTreeStats(const HdovTree& tree) {
  std::printf("tree: %zu nodes, height %d, fanout %zu, s ratio %.3f\n",
              tree.num_nodes(), tree.height(), tree.fanout(),
              tree.s_ratio());
  std::map<int, size_t> per_level;
  std::map<size_t, size_t> entry_counts;
  size_t leaves = 0;
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const HdovNode& node = tree.node(i);
    per_level[node.level] += 1;
    entry_counts[node.entries.size()] += 1;
    if (node.is_leaf) {
      ++leaves;
    }
  }
  std::printf("  %zu leaves; nodes per level:", leaves);
  for (const auto& [level, count] : per_level) {
    std::printf(" L%d=%zu", level, count);
  }
  std::printf("\n  entries per node:");
  for (const auto& [entries, count] : entry_counts) {
    std::printf(" %zux%zu", entries, count);
  }
  std::printf("\n");
}

int InspectDb(const InspectArgs& args) {
  Result<std::unique_ptr<SnapshotLoader>> opened =
      SnapshotLoader::Open(args.db);
  if (!opened.ok()) {
    std::fprintf(stderr, "hdov_inspect: %s: %s\n", args.db.c_str(),
                 opened.status().ToString().c_str());
    return 1;
  }
  SnapshotLoader& snapshot = **opened;
  const std::vector<std::string> sections = snapshot.SectionNames();
  std::printf("snapshot: %s (page size %u, %zu sections)\n",
              args.db.c_str(), snapshot.page_size(), sections.size());
  for (const std::string& name : sections) {
    std::printf("  section %s\n", name.c_str());
  }

  DiskModel disk;
  disk.page_size = snapshot.page_size();

  if (args.check) {
    // Full read-back: every section must come back through its
    // checksummed path. Blobs and devices are distinguished by trying the
    // blob read first — a device section fails it with a kind mismatch.
    size_t blobs = 0;
    size_t devices = 0;
    for (const std::string& name : sections) {
      if (snapshot.ReadBlob(name).ok()) {
        ++blobs;
        continue;
      }
      PageDevice device(disk);
      if (Status s = snapshot.RestoreDevice(name, &device); !s.ok()) {
        std::fprintf(stderr,
                     "hdov_inspect: check failed on section %s: %s\n",
                     name.c_str(), s.ToString().c_str());
        return 1;
      }
      ++devices;
    }
    std::printf("check: OK — %zu blobs + %zu devices read back\n", blobs,
                devices);
  }

  // Tree shape. Restoring the node device and decoding the manifest is
  // exactly what VisualSystem::CreateFromSnapshot does at load time.
  PageDevice tree_device(disk);
  HdovTree tree;
  bool have_tree = false;
  if (snapshot.Contains(kSectionTreeManifest) &&
      snapshot.Contains(kSectionTreeDevice)) {
    Status status = [&]() -> Status {
      HDOV_ASSIGN_OR_RETURN(std::string manifest,
                            snapshot.ReadBlob(kSectionTreeManifest));
      HDOV_RETURN_IF_ERROR(
          snapshot.RestoreDevice(kSectionTreeDevice, &tree_device));
      HDOV_ASSIGN_OR_RETURN(tree,
                            HdovTree::FromManifest(&tree_device, manifest));
      return Status::OK();
    }();
    if (!status.ok()) {
      std::fprintf(stderr, "hdov_inspect: tree: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    have_tree = true;
    PrintTreeStats(tree);
  }

  if (snapshot.Contains(kSectionVisTable)) {
    Status status = [&]() -> Status {
      HDOV_ASSIGN_OR_RETURN(std::string bytes,
                            snapshot.ReadBlob(kSectionVisTable));
      HDOV_ASSIGN_OR_RETURN(VisibilityTable table,
                            DecodeVisibilityTable(bytes));
      std::printf("visibility: %u cells, avg %.1f visible objects/cell\n",
                  table.num_cells(), table.AverageVisibleObjects());
      PrintDovHistogram(table);
      return Status::OK();
    }();
    if (!status.ok()) {
      std::fprintf(stderr, "hdov_inspect: visibility: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  // Per-scheme V-page occupancy: store bytes vs the pages its device
  // actually allocates (page-packing slack + scheme directories).
  if (have_tree) {
    std::printf("storage schemes:\n");
    for (uint8_t raw = 0; raw <= 3; ++raw) {
      const StorageScheme scheme = static_cast<StorageScheme>(raw);
      const std::string name = StorageSchemeName(scheme);
      const std::string meta_section = StoreMetaSection(name);
      const std::string device_section = StoreDeviceSection(name);
      if (!snapshot.Contains(meta_section) ||
          !snapshot.Contains(device_section)) {
        continue;
      }
      PageDevice store_device(disk);
      Status status = [&]() -> Status {
        HDOV_ASSIGN_OR_RETURN(std::string meta,
                              snapshot.ReadBlob(meta_section));
        HDOV_RETURN_IF_ERROR(
            snapshot.RestoreDevice(device_section, &store_device));
        HDOV_ASSIGN_OR_RETURN(
            std::unique_ptr<VisibilityStore> store,
            LoadStore(scheme, tree, meta, &store_device));
        const uint64_t store_bytes = store->SizeBytes();
        const uint64_t device_bytes = store_device.SizeBytes();
        // Pages are stored zero-padded, so estimate each page's payload
        // as everything up to its last non-zero byte; the gap to the
        // device footprint is page-packing slack.
        uint64_t payload_bytes = 0;
        std::string page;
        for (PageId p = 0; p < store_device.page_count(); ++p) {
          if (!store_device.IsMaterialized(p)) {
            continue;
          }
          HDOV_RETURN_IF_ERROR(store_device.ReadRaw(p, &page));
          const size_t last = page.find_last_not_of('\0');
          payload_bytes += last == std::string::npos ? 0 : last + 1;
        }
        std::printf("  %-17s %8.2f MB over %6llu pages (~%4.1f%%"
                    " page occupancy)\n",
                    name.c_str(),
                    static_cast<double>(store_bytes) / (1024.0 * 1024.0),
                    static_cast<unsigned long long>(
                        store_device.page_count()),
                    device_bytes > 0
                        ? 100.0 * static_cast<double>(payload_bytes) /
                              static_cast<double>(device_bytes)
                        : 0.0);
        return Status::OK();
      }();
      if (!status.ok()) {
        std::fprintf(stderr, "hdov_inspect: store %s: %s\n", name.c_str(),
                     status.ToString().c_str());
        return 1;
      }
    }
  }
  return 0;
}

int InspectFlight(const InspectArgs& args) {
  Result<telemetry::FlightDump> read =
      telemetry::FlightRecorder::ReadDump(args.flight);
  if (!read.ok()) {
    std::fprintf(stderr, "hdov_inspect: %s: %s\n", args.flight.c_str(),
                 read.status().ToString().c_str());
    return 1;
  }
  const telemetry::FlightDump& dump = *read;
  const double span_ms =
      dump.events.empty()
          ? 0.0
          : static_cast<double>(dump.events.back().ts_ns -
                                dump.events.front().ts_ns) /
                1e6;
  std::printf("flight dump: %s — %zu events (%llu dropped), %zu names,"
              " %.2f ms span\n",
              args.flight.c_str(), dump.events.size(),
              static_cast<unsigned long long>(dump.dropped),
              dump.names.size(), span_ms);
  if (dump.names_dropped > 0) {
    std::printf("WARNING: %llu intern calls hit the %zu-name table cap and"
                " degraded to \"?\" — per-source rollups undercount\n",
                static_cast<unsigned long long>(dump.names_dropped),
                telemetry::kMaxFlightNames);
  }

  // Per-type counts.
  std::map<uint16_t, uint64_t> by_type;
  // Per-source rollup: events, pages read, frames, frame io_pages.
  struct SourceRollup {
    uint64_t events = 0;
    uint64_t pages_read = 0;
    uint64_t pool_hits = 0;
    uint64_t pool_misses = 0;
    uint64_t frames = 0;
    uint64_t io_pages = 0;
    uint64_t spans = 0;
    // Async prefetch pipeline accounting (docs/prefetch.md). Issued =
    // page reads billed during speculation (kPageRead stamped with the
    // prefetch stage), used/cancelled from their dedicated event types.
    uint64_t prefetch_issued = 0;
    uint64_t prefetch_used = 0;
    uint64_t prefetch_cancelled = 0;
  };
  std::map<std::string, SourceRollup> by_source;
  std::map<uint32_t, uint64_t> by_thread;
  // Attribution rollups (v2 dumps; v1 events land on "<unattributed>").
  std::map<std::string, SourceRollup> by_session;
  uint64_t by_stage[telemetry::kNumTraceStages] = {};
  for (const telemetry::FlightEvent& e : dump.events) {
    by_type[e.type] += 1;
    by_thread[e.thread] += 1;
    if (e.stage < telemetry::kNumTraceStages) {
      by_stage[e.stage] += 1;
    }
    const std::string session_key =
        e.session != 0 && e.session < dump.names.size()
            ? dump.names[e.session]
            : std::string("<unattributed>");
    SourceRollup& sess = by_session[session_key];
    sess.events += 1;
    switch (static_cast<telemetry::FlightEventType>(e.type)) {
      case telemetry::FlightEventType::kPageRead:
        sess.pages_read += e.b;
        if (e.stage ==
            static_cast<uint8_t>(telemetry::TraceStage::kPrefetch)) {
          sess.prefetch_issued += e.b;
        }
        break;
      case telemetry::FlightEventType::kPrefetchUsed:
        sess.prefetch_used += e.b;
        break;
      case telemetry::FlightEventType::kPrefetchCancel:
        sess.prefetch_cancelled += e.a;
        break;
      case telemetry::FlightEventType::kPoolHit:
        sess.pool_hits += 1;
        break;
      case telemetry::FlightEventType::kPoolMiss:
        sess.pool_misses += 1;
        break;
      case telemetry::FlightEventType::kFrameEnd:
        sess.frames += 1;
        sess.io_pages += e.b;
        break;
      case telemetry::FlightEventType::kSpanBegin:
        sess.spans += 1;
        break;
      default:
        break;
    }
    SourceRollup& roll = by_source[std::string(dump.NameOf(e))];
    roll.events += 1;
    switch (static_cast<telemetry::FlightEventType>(e.type)) {
      case telemetry::FlightEventType::kPageRead:
        roll.pages_read += e.b;
        if (e.stage ==
            static_cast<uint8_t>(telemetry::TraceStage::kPrefetch)) {
          roll.prefetch_issued += e.b;
        }
        break;
      case telemetry::FlightEventType::kPrefetchUsed:
        roll.prefetch_used += e.b;
        break;
      case telemetry::FlightEventType::kPrefetchCancel:
        roll.prefetch_cancelled += e.a;
        break;
      case telemetry::FlightEventType::kPoolHit:
        roll.pool_hits += 1;
        break;
      case telemetry::FlightEventType::kPoolMiss:
        roll.pool_misses += 1;
        break;
      case telemetry::FlightEventType::kFrameEnd:
        roll.frames += 1;
        roll.io_pages += e.b;
        break;
      case telemetry::FlightEventType::kSpanBegin:
        roll.spans += 1;
        break;
      default:
        break;
    }
  }
  std::printf("events by type:");
  for (const auto& [type, count] : by_type) {
    std::printf(" %s=%llu",
                std::string(telemetry::FlightEventTypeName(
                                static_cast<telemetry::FlightEventType>(
                                    type)))
                    .c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\nevents by thread:");
  for (const auto& [thread, count] : by_thread) {
    std::printf(" t%u=%llu", thread,
                static_cast<unsigned long long>(count));
  }
  std::printf("\nper-source rollup:\n");
  std::printf("  %-24s %10s %10s %10s %10s %8s %10s %8s\n", "source",
              "events", "pages_read", "pool_hits", "pool_miss", "frames",
              "io_pages", "spans");
  for (const auto& [name, roll] : by_source) {
    std::printf("  %-24s %10llu %10llu %10llu %10llu %8llu %10llu"
                " %8llu\n",
                name.c_str(),
                static_cast<unsigned long long>(roll.events),
                static_cast<unsigned long long>(roll.pages_read),
                static_cast<unsigned long long>(roll.pool_hits),
                static_cast<unsigned long long>(roll.pool_misses),
                static_cast<unsigned long long>(roll.frames),
                static_cast<unsigned long long>(roll.io_pages),
                static_cast<unsigned long long>(roll.spans));
  }
  std::printf("per-session rollup:\n");
  std::printf("  %-24s %10s %10s %10s %10s %8s %10s\n", "session",
              "events", "pages_read", "pool_hits", "pool_miss", "frames",
              "io_pages");
  for (const auto& [name, roll] : by_session) {
    std::printf("  %-24s %10llu %10llu %10llu %10llu %8llu %10llu\n",
                name.c_str(),
                static_cast<unsigned long long>(roll.events),
                static_cast<unsigned long long>(roll.pages_read),
                static_cast<unsigned long long>(roll.pool_hits),
                static_cast<unsigned long long>(roll.pool_misses),
                static_cast<unsigned long long>(roll.frames),
                static_cast<unsigned long long>(roll.io_pages));
  }
  bool any_prefetch = false;
  for (const auto& [name, roll] : by_session) {
    any_prefetch = any_prefetch || roll.prefetch_issued != 0 ||
                   roll.prefetch_used != 0 || roll.prefetch_cancelled != 0;
  }
  if (any_prefetch) {
    std::printf("per-session prefetch rollup (pages):\n");
    std::printf("  %-24s %10s %10s %10s %8s\n", "session", "issued",
                "used", "cancelled", "wasted");
    for (const auto& [name, roll] : by_session) {
      if (roll.prefetch_issued == 0 && roll.prefetch_used == 0 &&
          roll.prefetch_cancelled == 0) {
        continue;
      }
      const uint64_t used =
          std::min(roll.prefetch_used, roll.prefetch_issued);
      const double wasted =
          roll.prefetch_issued > 0
              ? static_cast<double>(roll.prefetch_issued - used) /
                    static_cast<double>(roll.prefetch_issued)
              : 0.0;
      std::printf("  %-24s %10llu %10llu %10llu %8.3f\n", name.c_str(),
                  static_cast<unsigned long long>(roll.prefetch_issued),
                  static_cast<unsigned long long>(roll.prefetch_used),
                  static_cast<unsigned long long>(
                      roll.prefetch_cancelled),
                  wasted);
    }
  }
  std::printf("events by stage:");
  for (size_t s = 0; s < telemetry::kNumTraceStages; ++s) {
    std::printf(" %s=%llu",
                std::string(telemetry::TraceStageName(
                                static_cast<telemetry::TraceStage>(s)))
                    .c_str(),
                static_cast<unsigned long long>(by_stage[s]));
  }
  std::printf("\n");

  if (!args.chrome_out.empty()) {
    std::ofstream out(args.chrome_out,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "hdov_inspect: cannot open %s\n",
                   args.chrome_out.c_str());
      return 1;
    }
    out << telemetry::FlightChromeTraceJson(dump);
    out.flush();
    if (!out) {
      std::fprintf(stderr, "hdov_inspect: write failed: %s\n",
                   args.chrome_out.c_str());
      return 1;
    }
    std::printf("chrome trace: wrote %s (open in chrome://tracing)\n",
                args.chrome_out.c_str());
  }
  return 0;
}

int InspectSlowdump(const InspectArgs& args) {
  Result<telemetry::SlowDump> read =
      telemetry::SlowFrameCapture::ReadDump(args.slowdump);
  if (!read.ok()) {
    std::fprintf(stderr, "hdov_inspect: %s: %s\n", args.slowdump.c_str(),
                 read.status().ToString().c_str());
    return 1;
  }
  const telemetry::SlowDump& dump = *read;
  std::printf("slow dump: %s — %zu captures over %llu frames seen"
              " (%llu triggers dropped past the cap)\n",
              args.slowdump.c_str(), dump.captures.size(),
              static_cast<unsigned long long>(dump.frames_seen),
              static_cast<unsigned long long>(dump.captures_dropped));
  for (size_t i = 0; i < dump.captures.size(); ++i) {
    const telemetry::SlowFrameEntry& cap = dump.captures[i];
    const telemetry::FrameStageRecord& r = cap.record;
    std::printf(
        "capture %zu: session %s frame %llu — queue %.3f ms,"
        " service %.3f ms (tripped > %.3f ms), %llu sim pages\n",
        i, std::string(dump.NameOf(r.session)).c_str(),
        static_cast<unsigned long long>(r.frame), r.queue_ns / 1e6,
        r.wall_ns / 1e6, cap.trip_threshold_ms,
        static_cast<unsigned long long>(r.io_pages));
    std::printf("  stage breakdown:");
    for (size_t s = 0; s < telemetry::kNumTraceStages; ++s) {
      const double ms = r.stages.ns[s] / 1e6;
      const double total = r.stages.total_ns() / 1e6;
      std::printf(" %s=%.3fms(%.0f%%)",
                  std::string(telemetry::TraceStageName(
                                  static_cast<telemetry::TraceStage>(s)))
                      .c_str(),
                  ms, total > 0.0 ? 100.0 * ms / total : 0.0);
    }
    // The captured flight events of the frame's window, rolled up by
    // type (the full event list is in the Chrome trace conversion).
    std::map<uint16_t, uint64_t> by_type;
    uint64_t prefetch_issued = 0;
    uint64_t prefetch_used = 0;
    uint64_t prefetch_cancelled = 0;
    for (const telemetry::FlightEvent& e : cap.events) {
      by_type[e.type] += 1;
      switch (static_cast<telemetry::FlightEventType>(e.type)) {
        case telemetry::FlightEventType::kPageRead:
          if (e.stage ==
              static_cast<uint8_t>(telemetry::TraceStage::kPrefetch)) {
            prefetch_issued += e.b;
          }
          break;
        case telemetry::FlightEventType::kPrefetchUsed:
          prefetch_used += e.b;
          break;
        case telemetry::FlightEventType::kPrefetchCancel:
          prefetch_cancelled += e.a;
          break;
        default:
          break;
      }
    }
    std::printf("\n  %zu flight events in window:", cap.events.size());
    for (const auto& [type, count] : by_type) {
      std::printf(" %s=%llu",
                  std::string(telemetry::FlightEventTypeName(
                                  static_cast<telemetry::FlightEventType>(
                                      type)))
                      .c_str(),
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");
    if (prefetch_issued != 0 || prefetch_used != 0 ||
        prefetch_cancelled != 0) {
      std::printf("  prefetch in window: issued=%llu used=%llu"
                  " cancelled=%llu pages\n",
                  static_cast<unsigned long long>(prefetch_issued),
                  static_cast<unsigned long long>(prefetch_used),
                  static_cast<unsigned long long>(prefetch_cancelled));
    }
  }

  // --chrome-out belongs to --flight when both inputs are given.
  if (!args.chrome_out.empty() && args.flight.empty()) {
    std::ofstream out(args.chrome_out,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "hdov_inspect: cannot open %s\n",
                   args.chrome_out.c_str());
      return 1;
    }
    out << telemetry::SlowDumpChromeTraceJson(dump);
    out.flush();
    if (!out) {
      std::fprintf(stderr, "hdov_inspect: write failed: %s\n",
                   args.chrome_out.c_str());
      return 1;
    }
    std::printf("chrome trace: wrote %s (one track per session; open in"
                " chrome://tracing)\n",
                args.chrome_out.c_str());
  }
  return 0;
}

int InspectTelemetry(const InspectArgs& args) {
  std::ifstream in(args.telemetry, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "hdov_inspect: cannot open %s\n",
                 args.telemetry.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<telemetry::JsonValue> parsed =
      telemetry::ParseJson(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "hdov_inspect: %s: %s\n", args.telemetry.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }
  const telemetry::JsonValue& doc = *parsed;
  const telemetry::JsonValue* metrics = doc.Find("metrics");
  const telemetry::JsonValue* frames = doc.Find("frames");
  if (!doc.is_object() || metrics == nullptr || !metrics->is_array()) {
    std::fprintf(stderr,
                 "hdov_inspect: %s is not a telemetry snapshot\n",
                 args.telemetry.c_str());
    return 1;
  }
  std::printf("telemetry: %s — %zu metrics, %zu frame records\n",
              args.telemetry.c_str(), metrics->items.size(),
              frames != nullptr && frames->is_array() ? frames->items.size()
                                                      : 0);
  if (frames == nullptr || !frames->is_array() || frames->items.empty()) {
    return 0;
  }
  // Session rollup: one row per (system, kind) with frame counts and
  // simulated I/O / time totals.
  struct FrameRollup {
    uint64_t frames = 0;
    double frame_time_ms = 0.0;
    double io_pages = 0.0;
    double triangles = 0.0;
  };
  std::map<std::string, FrameRollup> by_system;
  for (const telemetry::JsonValue& frame : frames->items) {
    const telemetry::JsonValue* system = frame.Find("system");
    const telemetry::JsonValue* kind = frame.Find("kind");
    std::string key = system != nullptr ? system->string : "?";
    if (kind != nullptr && !kind->string.empty()) {
      key += "/" + kind->string;
    }
    FrameRollup& roll = by_system[key];
    roll.frames += 1;
    const auto num = [&frame](const char* name) {
      const telemetry::JsonValue* v = frame.Find(name);
      return v != nullptr && v->is_number() ? v->number : 0.0;
    };
    roll.frame_time_ms += num("frame_time_ms");
    roll.io_pages += num("io_pages");
    roll.triangles += num("rendered_triangles");
  }
  std::printf("  %-28s %8s %14s %12s %14s\n", "system/kind", "frames",
              "frame_ms_sum", "io_pages", "triangles");
  for (const auto& [key, roll] : by_system) {
    std::printf("  %-28s %8llu %14.2f %12.0f %14.0f\n", key.c_str(),
                static_cast<unsigned long long>(roll.frames),
                roll.frame_time_ms, roll.io_pages, roll.triangles);
  }
  return 0;
}

int Run(const InspectArgs& args) {
  if (!args.db.empty()) {
    if (int rc = InspectDb(args); rc != 0) {
      return rc;
    }
  }
  if (!args.flight.empty()) {
    if (int rc = InspectFlight(args); rc != 0) {
      return rc;
    }
  }
  if (!args.slowdump.empty()) {
    if (int rc = InspectSlowdump(args); rc != 0) {
      return rc;
    }
  }
  if (!args.telemetry.empty()) {
    if (int rc = InspectTelemetry(args); rc != 0) {
      return rc;
    }
  }
  return 0;
}

}  // namespace
}  // namespace hdov

int main(int argc, char** argv) {
  return hdov::Run(hdov::Parse(argc, argv));
}
