#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/model_store.h"
#include "storage/page_device.h"
#include "storage/paged_file.h"
#include "storage/sharded_buffer_pool.h"
#include "telemetry/metrics.h"

namespace hdov {
namespace {

TEST(PageDeviceTest, WriteReadRoundTrip) {
  PageDevice device;
  PageId p = device.Allocate();
  ASSERT_TRUE(device.Write(p, "hello pages").ok());
  std::string data;
  ASSERT_TRUE(device.Read(p, &data).ok());
  EXPECT_EQ(data.size(), device.page_size());
  EXPECT_EQ(data.substr(0, 11), "hello pages");
  EXPECT_EQ(data[11], '\0');  // Zero padding.
}

TEST(PageDeviceTest, BoundsChecks) {
  PageDevice device;
  std::string data;
  EXPECT_TRUE(device.Read(0, &data).code() == StatusCode::kOutOfRange);
  PageId p = device.Allocate();
  EXPECT_TRUE(device.Write(p + 1, "x").code() == StatusCode::kOutOfRange);
  std::string too_big(device.page_size() + 1, 'x');
  EXPECT_TRUE(device.Write(p, too_big).IsInvalidArgument());
}

TEST(PageDeviceTest, SeekAccounting) {
  PageDevice device;
  PageId a = device.Allocate();
  PageId b = device.Allocate();
  PageId c = device.Allocate();
  device.ResetStats();

  std::string data;
  ASSERT_TRUE(device.Read(a, &data).ok());  // Seek.
  ASSERT_TRUE(device.Read(b, &data).ok());  // Sequential: no seek.
  ASSERT_TRUE(device.Read(c, &data).ok());  // Sequential: no seek.
  ASSERT_TRUE(device.Read(a, &data).ok());  // Back-seek.
  EXPECT_EQ(device.stats().page_reads, 4u);
  EXPECT_EQ(device.stats().seeks, 2u);
}

TEST(PageDeviceTest, ReadRunBilledAsOneSeek) {
  PageDevice device;
  PageId first = device.AllocateUnmaterialized(10);
  device.ResetStats();
  ASSERT_TRUE(device.ReadRun(first, 10, nullptr).ok());
  EXPECT_EQ(device.stats().page_reads, 10u);
  EXPECT_EQ(device.stats().seeks, 1u);
}

TEST(PageDeviceTest, ClockAdvancesWithCostModel) {
  DiskModel model;
  model.seek_ms = 10.0;
  model.transfer_ms_per_page = 1.0;
  PageDevice device(model);
  PageId first = device.AllocateUnmaterialized(5);
  device.ResetStats();
  const double t0 = device.clock().NowMillis();
  ASSERT_TRUE(device.ReadRun(first, 5, nullptr).ok());
  EXPECT_NEAR(device.clock().NowMillis() - t0, 10.0 + 5.0, 1e-9);
}

TEST(PageDeviceTest, SharedClockAccumulates) {
  SimClock clock;
  DiskModel model;
  model.seek_ms = 1.0;
  model.transfer_ms_per_page = 0.0;
  PageDevice a(model, &clock);
  PageDevice b(model, &clock);
  PageId pa = a.Allocate();
  PageId pb = b.Allocate();
  clock.Reset();
  std::string data;
  ASSERT_TRUE(a.Read(pa, &data).ok());
  ASSERT_TRUE(b.Read(pb, &data).ok());
  EXPECT_NEAR(clock.NowMillis(), 2.0, 1e-9);
}

TEST(PageDeviceTest, UnmaterializedPagesReadAsZeros) {
  PageDevice device;
  PageId p = device.AllocateUnmaterialized(1);
  std::string data;
  ASSERT_TRUE(device.Read(p, &data).ok());
  EXPECT_EQ(data, std::string(device.page_size(), '\0'));
}

TEST(PageDeviceTest, SizeBytesCountsAllPages) {
  PageDevice device;
  device.Allocate();
  device.AllocateUnmaterialized(9);
  EXPECT_EQ(device.SizeBytes(), 10u * device.page_size());
}

TEST(PagedFileTest, ExtentRoundTrip) {
  PageDevice device;
  PagedFile file(&device);
  std::string payload(10000, 'x');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + i % 26);
  }
  Result<Extent> extent = file.Append(payload);
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->byte_length, payload.size());
  EXPECT_EQ(extent->page_count, 3u);  // 10000 bytes in 4 KiB pages.
  Result<std::string> back = file.ReadExtent(*extent);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
}

TEST(PagedFileTest, EmptyPayloadStillOccupiesOnePage) {
  PageDevice device;
  PagedFile file(&device);
  Result<Extent> extent = file.Append("");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->page_count, 1u);
  Result<std::string> back = file.ReadExtent(*extent);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(PagedFileTest, MultipleExtentsIndependent) {
  PageDevice device;
  PagedFile file(&device);
  Result<Extent> a = file.Append("first extent");
  Result<Extent> b = file.Append(std::string(5000, 'z'));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*file.ReadExtent(*a), "first extent");
  EXPECT_EQ(file.ReadExtent(*b)->size(), 5000u);
}

TEST(PagedFileTest, InvalidExtentRejected) {
  PageDevice device;
  PagedFile file(&device);
  EXPECT_FALSE(file.ReadExtent(Extent()).ok());
}

TEST(PagedFileTest, ReadRangeTouchesOnlyCoveringPages) {
  PageDevice device;
  PagedFile file(&device);
  std::string payload(20000, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i % 251);
  }
  Result<Extent> extent = file.Append(payload);
  ASSERT_TRUE(extent.ok());
  device.ResetStats();

  // A range inside the second page reads exactly one page.
  Result<std::string> one = file.ReadRange(*extent, 5000, 100);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, payload.substr(5000, 100));
  EXPECT_EQ(device.stats().page_reads, 1u);

  // A range spanning a page boundary reads two.
  device.ResetStats();
  Result<std::string> two = file.ReadRange(*extent, 4000, 200);
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(*two, payload.substr(4000, 200));
  EXPECT_EQ(device.stats().page_reads, 2u);
}

TEST(PagedFileTest, ReadRangeBoundsChecked) {
  PageDevice device;
  PagedFile file(&device);
  Result<Extent> extent = file.Append(std::string(100, 'x'));
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(file.ReadRange(*extent, 50, 51).status().code(),
            StatusCode::kOutOfRange);
  Result<std::string> empty = file.ReadRange(*extent, 100, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(PageDeviceTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hdov_device_image";
  PageDevice device;
  PageId a = device.Allocate();
  ASSERT_TRUE(device.Write(a, "persisted page").ok());
  PageId sparse = device.AllocateUnmaterialized(100);
  PageId b = device.Allocate();
  ASSERT_TRUE(device.Write(b, "another page").ok());
  ASSERT_TRUE(device.SaveToFile(path).ok());

  PageDevice restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.page_count(), device.page_count());
  std::string data;
  ASSERT_TRUE(restored.Read(a, &data).ok());
  EXPECT_EQ(data.substr(0, 14), "persisted page");
  ASSERT_TRUE(restored.Read(b, &data).ok());
  EXPECT_EQ(data.substr(0, 12), "another page");
  ASSERT_TRUE(restored.Read(sparse + 5, &data).ok());
  EXPECT_EQ(data, std::string(restored.page_size(), '\0'));
}

TEST(PageDeviceTest, SparseImageStaysSmall) {
  const std::string path = ::testing::TempDir() + "/hdov_sparse_image";
  PageDevice device;
  device.AllocateUnmaterialized(100000);  // 400 MB logical.
  ASSERT_TRUE(device.SaveToFile(path).ok());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(in.good());
  EXPECT_LT(in.tellg(), 200000);  // Flags only, not 400 MB.
}

TEST(PageDeviceTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/hdov_bad_image";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a device image";
  }
  PageDevice device;
  EXPECT_FALSE(device.LoadFromFile(path).ok());
  EXPECT_TRUE(device.LoadFromFile("/nonexistent/dir/img").IsIoError());
}

TEST(BufferPoolTest, HitsAvoidDeviceReads) {
  PageDevice device;
  PageId p = device.Allocate();
  ASSERT_TRUE(device.Write(p, "cached").ok());
  device.ResetStats();
  BufferPool pool(&device, 4);
  ASSERT_TRUE(pool.Get(p).ok());
  ASSERT_TRUE(pool.Get(p).ok());
  ASSERT_TRUE(pool.Get(p).ok());
  EXPECT_EQ(device.stats().page_reads, 1u);
  EXPECT_EQ(pool.stats().hits, 2u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, LruEviction) {
  PageDevice device;
  PageId pages[3] = {device.Allocate(), device.Allocate(), device.Allocate()};
  BufferPool pool(&device, 2);
  ASSERT_TRUE(pool.Get(pages[0]).ok());
  ASSERT_TRUE(pool.Get(pages[1]).ok());
  ASSERT_TRUE(pool.Get(pages[0]).ok());  // Touch 0: 1 is now LRU.
  ASSERT_TRUE(pool.Get(pages[2]).ok());  // Evicts 1.
  device.ResetStats();
  ASSERT_TRUE(pool.Get(pages[0]).ok());  // Hit.
  EXPECT_EQ(device.stats().page_reads, 0u);
  ASSERT_TRUE(pool.Get(pages[1]).ok());  // Miss: was evicted.
  EXPECT_EQ(device.stats().page_reads, 1u);
  // Two evictions so far: page 1 (at the page-2 miss) and then page 2
  // (bringing page 1 back into a full pool).
  EXPECT_EQ(pool.stats().evictions, 2u);
}

TEST(BufferPoolTest, ContentMatchesDevice) {
  PageDevice device;
  PageId p = device.Allocate();
  ASSERT_TRUE(device.Write(p, "payload!").ok());
  BufferPool pool(&device, 2);
  Result<BufferPool::PageRef> ref = pool.Get(p);
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(ref->valid());
  EXPECT_EQ(ref->data().substr(0, 8), "payload!");
  EXPECT_EQ((*ref)->substr(0, 8), "payload!");  // operator-> passthrough.
}

// Regression for the dangling-pointer bug the old API invited: the old
// Get returned a `const std::string*` that a later Get could evict and
// free. A live PageRef pins its page, so eviction pressure must not
// touch it (under ASan this test dies if the payload is freed).
TEST(BufferPoolTest, PinnedRefSurvivesEvictionPressure) {
  PageDevice device;
  PageId pinned = device.Allocate();
  ASSERT_TRUE(device.Write(pinned, "pinned page").ok());
  PageId others[3] = {device.Allocate(), device.Allocate(),
                      device.Allocate()};
  BufferPool pool(&device, 1);
  Result<BufferPool::PageRef> ref = pool.Get(pinned);
  ASSERT_TRUE(ref.ok());
  const std::string& bytes = ref->data();
  // Each of these would evict `pinned` under plain LRU at capacity 1.
  for (PageId p : others) {
    ASSERT_TRUE(pool.Get(p).ok());
  }
  EXPECT_EQ(bytes.substr(0, 11), "pinned page");
  // The pinned page rode above capacity (pin-through); the transient refs
  // released immediately, so only it and the newest unpinned page remain
  // at most: pinned + <=1 unpinned.
  EXPECT_LE(pool.size(), 2u);
  ref->Release();
  EXPECT_FALSE(ref->valid());
  // Releasing the pin while over capacity trims back down.
  EXPECT_LE(pool.size(), 1u);
}

TEST(BufferPoolTest, CapacityZeroIsPinThrough) {
  PageDevice device;
  PageId p = device.Allocate();
  ASSERT_TRUE(device.Write(p, "transient").ok());
  BufferPool pool(&device, 0);
  {
    Result<BufferPool::PageRef> ref = pool.Get(p);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref->data().substr(0, 9), "transient");
    EXPECT_EQ(pool.size(), 1u);  // Alive only because of the pin.
  }
  EXPECT_EQ(pool.size(), 0u);  // Dropped at unpin: nothing is cached.
  ASSERT_TRUE(pool.Get(p).ok());
  EXPECT_EQ(pool.stats().hits, 0u);  // Every Get is a miss at capacity 0.
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(BufferPoolTest, GetNeverLeavesUnpinnedOverCapacity) {
  PageDevice device;
  PageId pages[8];
  for (PageId& p : pages) {
    p = device.Allocate();
  }
  BufferPool pool(&device, 3);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Get(pages[rng.NextUint64(8)]).ok());
    ASSERT_LE(pool.size(), pool.capacity());  // No refs held => hard cap.
  }
}

TEST(BufferPoolTest, ClearResetsStatsAndDropsUnpinned) {
  PageDevice device;
  PageId a = device.Allocate();
  PageId b = device.Allocate();
  ASSERT_TRUE(device.Write(a, "kept alive").ok());
  BufferPool pool(&device, 4);
  Result<BufferPool::PageRef> held = pool.Get(a);
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(pool.Get(b).ok());
  ASSERT_TRUE(pool.Get(b).ok());  // One hit on b.
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 2u);

  pool.Clear();
  // Counters restart so post-Clear readers see per-session numbers...
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().misses, 0u);
  EXPECT_EQ(pool.stats().evictions, 0u);
  // ...unpinned entries are gone, but the live ref kept its page intact.
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(held->data().substr(0, 10), "kept alive");
  device.ResetStats();
  ASSERT_TRUE(pool.Get(b).ok());
  EXPECT_EQ(device.stats().page_reads, 1u);  // b was really dropped.
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(ModelStoreTest, RegisterAndFetchBilling) {
  PageDevice device;
  ModelStore store(&device);
  ModelId small = store.Register(100);        // 1 page.
  ModelId large = store.Register(10000);      // 3 pages.
  EXPECT_EQ(store.SizeOf(small), 100u);
  EXPECT_EQ(store.PagesOf(large), 3u);
  EXPECT_EQ(store.total_bytes(), 10100u);
  device.ResetStats();
  ASSERT_TRUE(store.Fetch(large).ok());
  EXPECT_EQ(device.stats().page_reads, 3u);
  EXPECT_EQ(device.stats().seeks, 1u);
  EXPECT_TRUE(store.Fetch(999).code() == StatusCode::kOutOfRange);
}

TEST(PageDeviceTest, UnmaterializedExtentLastPageReadsAsZeros) {
  PageDevice device;
  PageId p = device.Allocate();
  ASSERT_TRUE(device.Write(p, "materialized").ok());
  PageId first = device.AllocateUnmaterialized(3);
  const PageId last = first + 2;
  ASSERT_EQ(last, device.page_count() - 1);

  std::string data;
  ASSERT_TRUE(device.Read(last, &data).ok());
  EXPECT_EQ(data, std::string(device.page_size(), '\0'));

  // A run that ends exactly at the device boundary is legal; one page
  // further is not.
  std::vector<std::string> run;
  ASSERT_TRUE(device.ReadRun(first, 3, &run).ok());
  ASSERT_EQ(run.size(), 3u);
  EXPECT_EQ(run.back(), std::string(device.page_size(), '\0'));
  EXPECT_TRUE(device.ReadRun(first, 4, &run).code() ==
              StatusCode::kOutOfRange);
}

TEST(PageDeviceTest, ReadRunNullOutBillsLikeMaterializedRead) {
  PageDevice device;
  PageId first = device.AllocateUnmaterialized(4);
  ASSERT_TRUE(device.Write(first + 1, "content").ok());
  device.ResetStats();
  const double t0 = device.clock().NowMillis();
  ASSERT_TRUE(device.ReadRun(first, 4, nullptr).ok());
  const IoStats null_out = device.stats();
  const double null_ms = device.clock().NowMillis() - t0;

  device.ResetStats();
  device.ResetAccessTracker();
  const double t1 = device.clock().NowMillis();
  std::vector<std::string> run;
  ASSERT_TRUE(device.ReadRun(first, 4, &run).ok());
  EXPECT_EQ(null_out.page_reads, device.stats().page_reads);
  EXPECT_EQ(null_out.seeks, device.stats().seeks);
  EXPECT_EQ(null_out.bytes_read, device.stats().bytes_read);
  EXPECT_DOUBLE_EQ(null_ms, device.clock().NowMillis() - t1);
}

TEST(PageDeviceTest, OutOfRangeAccessesLeaveCountersUntouched) {
  PageDevice device;
  PageId p = device.Allocate();
  device.ResetStats();
  std::string data;
  EXPECT_TRUE(device.Read(p + 1, &data).code() == StatusCode::kOutOfRange);
  EXPECT_TRUE(device.ReadRun(p, 2, nullptr).code() ==
              StatusCode::kOutOfRange);
  EXPECT_TRUE(device.ReadRun(p + 5, 1, nullptr).code() ==
              StatusCode::kOutOfRange);
  EXPECT_TRUE(device.ReadRaw(p + 1, &data).code() ==
              StatusCode::kOutOfRange);
  EXPECT_EQ(device.stats().page_reads, 0u);
  EXPECT_EQ(device.stats().seeks, 0u);
  EXPECT_DOUBLE_EQ(device.clock().NowMillis(), 0.0);
  // A zero-length run is a no-op, not an error, wherever it starts.
  EXPECT_TRUE(device.ReadRun(p + 5, 0, nullptr).ok());
}

// ----------------------- buffer-pool telemetry lifetime (regressions)

TEST(BufferPoolTest, DestructionDropsRegisteredViews) {
  // The views capture &stats_; before the destructor unregistered them, a
  // snapshot taken after the pool died read freed memory.
  telemetry::MetricsRegistry registry;
  PageDevice device;
  PageId p = device.Allocate();
  {
    BufferPool pool(&device, 4);
    ASSERT_TRUE(pool.Get(p).ok());
    pool.RegisterWith(&registry, "pool");
    EXPECT_TRUE(registry.Contains("pool.hits"));
    EXPECT_TRUE(registry.Contains("pool.hit_rate"));
  }
  EXPECT_FALSE(registry.Contains("pool.hits"));
  (void)registry.Snapshot();  // Under ASan: no freed stats left behind.
}

TEST(BufferPoolTest, ReRegisterMovesViews) {
  telemetry::MetricsRegistry first, second;
  PageDevice device;
  BufferPool pool(&device, 4);
  pool.RegisterWith(&first, "a");
  EXPECT_TRUE(first.Contains("a.hits"));
  pool.RegisterWith(&second, "b");
  EXPECT_FALSE(first.Contains("a.hits"));
  EXPECT_TRUE(second.Contains("b.hits"));
  // Explicit unregistration, for pools that outlive their registry.
  pool.UnregisterViews();
  pool.UnregisterViews();  // Idempotent.
  EXPECT_FALSE(second.Contains("b.hits"));
}

TEST(BufferPoolTest, FlightRetargetRacesWithGets) {
  // Regression for the plain-field data race: RegisterWith stores the
  // flight code while the Get path reads it for every hit/miss event.
  // Run under TSan; the code is atomic now, so this must be clean.
  PageDevice device;
  PageId p = device.Allocate();
  ASSERT_TRUE(device.Write(p, "raced").ok());
  BufferPool pool(&device, 4);
  telemetry::MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(pool.Get(p).ok());
    }
  });
  for (int i = 0; i < 200; ++i) {
    pool.RegisterWith(&registry, i % 2 == 0 ? "pool.even" : "pool.odd");
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  pool.UnregisterViews();
}

// -------------------------------------------------- sharded buffer pool

TEST(ShardedBufferPoolTest, MissThenHitWithoutBilling) {
  PageDevice device;
  PageId p = device.Allocate();
  ASSERT_TRUE(device.Write(p, "shard payload").ok());
  device.ResetStats();

  ShardedPoolOptions opt;
  opt.capacity_pages = 8;
  opt.shards = 4;
  ShardedBufferPool pool(&device, opt);
  auto first = pool.Get(p);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->substr(0, 13), "shard payload");
  auto second = pool.Get(p);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // Same cached object.

  BufferPoolStats stats = pool.TotalStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(pool.size(), 1u);
  // The pool reads through the UNBILLED path: no simulated I/O at all.
  EXPECT_EQ(device.stats().page_reads, 0u);
}

TEST(ShardedBufferPoolTest, EvictionKeepsShardsWithinCapacity) {
  PageDevice device;
  std::vector<PageId> pages;
  for (int i = 0; i < 16; ++i) {
    pages.push_back(device.Allocate());
    std::string payload = "p";
    payload.append(std::to_string(i));
    ASSERT_TRUE(device.Write(pages.back(), payload).ok());
  }
  ShardedPoolOptions opt;
  opt.capacity_pages = 4;
  opt.shards = 2;
  ShardedBufferPool pool(&device, opt);
  for (PageId p : pages) {
    ASSERT_TRUE(pool.Get(p).ok());
  }
  EXPECT_LE(pool.size(), opt.capacity_pages);
  BufferPoolStats stats = pool.TotalStats();
  EXPECT_EQ(stats.misses, 16u);
  EXPECT_GE(stats.evictions, 12u);
}

TEST(ShardedBufferPoolTest, CapacityZeroReadsThrough) {
  PageDevice device;
  PageId p = device.Allocate();
  ASSERT_TRUE(device.Write(p, "uncached").ok());
  ShardedPoolOptions opt;
  opt.capacity_pages = 0;
  ShardedBufferPool pool(&device, opt);
  auto a = pool.Get(p);
  auto b = pool.Get(p);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->substr(0, 8), "uncached");
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.TotalStats().hits, 0u);
  EXPECT_EQ(pool.TotalStats().misses, 2u);
}

TEST(ShardedBufferPoolTest, EvictedPageStaysValidWhileHeld) {
  // The shared_ptr IS the pin: eviction drops the pool's reference only.
  PageDevice device;
  PageId held_page = device.Allocate();
  ASSERT_TRUE(device.Write(held_page, "held onto").ok());
  std::vector<PageId> others;
  for (int i = 0; i < 8; ++i) {
    others.push_back(device.Allocate());
  }
  ShardedPoolOptions opt;
  opt.capacity_pages = 1;
  opt.shards = 1;
  ShardedBufferPool pool(&device, opt);
  auto held = pool.Get(held_page);
  ASSERT_TRUE(held.ok());
  for (PageId p : others) {
    ASSERT_TRUE(pool.Get(p).ok());  // Each one evicts the previous.
  }
  EXPECT_EQ((*held)->substr(0, 9), "held onto");  // ASan-checked.
}

TEST(ShardedBufferPoolTest, ConcurrentGetsSeeConsistentPages) {
  // The server's actual access pattern: many threads hammering one pool.
  // Run under TSan; verifies contents and that no lookup is lost.
  PageDevice device;
  constexpr int kPages = 32;
  std::vector<PageId> pages;
  for (int i = 0; i < kPages; ++i) {
    pages.push_back(device.Allocate());
    ASSERT_TRUE(
        device.Write(pages.back(), "page-" + std::to_string(i)).ok());
  }
  ShardedPoolOptions opt;
  opt.capacity_pages = 8;  // Small: forces concurrent eviction too.
  opt.shards = 4;
  ShardedBufferPool pool(&device, opt);

  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int idx = (t * 13 + i * 7) % kPages;
        auto page = pool.Get(pages[idx]);
        if (!page.ok() ||
            (*page)->substr(0, 5 + (idx >= 10 ? 2 : 1)) !=
                "page-" + std::to_string(idx)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  BufferPoolStats stats = pool.TotalStats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIters);
}

TEST(IoStatsTest, DeltaAndAccumulate) {
  IoStats a;
  a.page_reads = 10;
  a.seeks = 2;
  IoStats b = a;
  b.page_reads = 15;
  b.seeks = 3;
  IoStats d = b.Delta(a);
  EXPECT_EQ(d.page_reads, 5u);
  EXPECT_EQ(d.seeks, 1u);
  a += d;
  EXPECT_EQ(a.page_reads, 15u);
}

}  // namespace
}  // namespace hdov
