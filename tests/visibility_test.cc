#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "scene/city_generator.h"
#include "visibility/cubemap_buffer.h"
#include "visibility/dov.h"
#include "visibility/dov_sampling.h"
#include "visibility/precompute.h"

namespace hdov {
namespace {

TEST(CubeMapTest, EmptyBufferSeesNothing) {
  CubeMapBuffer buffer;
  buffer.Reset(Vec3(0, 0, 0));
  EXPECT_DOUBLE_EQ(buffer.TotalCoverage(), 0.0);
}

TEST(CubeMapTest, PixelSolidAnglesSumToSphere) {
  // Rasterize an enclosing box: every pixel is covered, and the per-pixel
  // solid angles must sum to 4 pi.
  CubeMapOptions opt;
  opt.face_resolution = 16;
  CubeMapBuffer buffer(opt);
  buffer.Reset(Vec3(0, 0, 0));
  buffer.RasterizeBox(Aabb(Vec3(-5, -5, -5), Vec3(5, 5, 5)), 0);
  EXPECT_NEAR(buffer.TotalCoverage(), 1.0, 1e-9);
  EXPECT_NEAR(buffer.SolidAngleOf(0), 4.0 * M_PI, 1e-6);
}

TEST(CubeMapTest, DistantBoxSolidAngleMatchesAnalytic) {
  CubeMapOptions opt;
  opt.face_resolution = 256;  // The quad spans ~13 pixels at this distance.
  CubeMapBuffer buffer(opt);
  buffer.Reset(Vec3(0, 0, 0));
  // A 2x2 square at distance 20: exact solid angle of a rectangle with
  // half-widths a = b = 1 at distance d is 4 atan(ab / (d sqrt(a^2 + b^2 +
  // d^2))) = 0.009975 sr.
  buffer.RasterizeTriangle(Vec3(20, -1, -1), Vec3(20, 1, -1), Vec3(20, 1, 1),
                           7);
  buffer.RasterizeTriangle(Vec3(20, -1, -1), Vec3(20, 1, 1), Vec3(20, -1, 1),
                           7);
  const double exact = 0.009975;
  EXPECT_NEAR(buffer.SolidAngleOf(7), exact, 0.2 * exact);
}

TEST(CubeMapTest, NearerItemWinsZBuffer) {
  CubeMapOptions opt;
  opt.face_resolution = 32;
  CubeMapBuffer buffer(opt);
  buffer.Reset(Vec3(0, 0, 0));
  // Big far wall, small near blocker straight ahead (+x).
  buffer.RasterizeBox(Aabb(Vec3(30, -20, -20), Vec3(32, 20, 20)), 1);
  buffer.RasterizeBox(Aabb(Vec3(10, -2, -2), Vec3(11, 2, 2)), 2);
  double wall = buffer.SolidAngleOf(1);
  double blocker = buffer.SolidAngleOf(2);
  EXPECT_GT(blocker, 0.0);
  EXPECT_GT(wall, 0.0);
  // Rasterization order must not matter.
  CubeMapBuffer buffer2(opt);
  buffer2.Reset(Vec3(0, 0, 0));
  buffer2.RasterizeBox(Aabb(Vec3(10, -2, -2), Vec3(11, 2, 2)), 2);
  buffer2.RasterizeBox(Aabb(Vec3(30, -20, -20), Vec3(32, 20, 20)), 1);
  EXPECT_NEAR(buffer2.SolidAngleOf(1), wall, 1e-9);
  EXPECT_NEAR(buffer2.SolidAngleOf(2), blocker, 1e-9);
}

TEST(CubeMapTest, FullOcclusionGivesZero) {
  CubeMapOptions opt;
  opt.face_resolution = 32;
  CubeMapBuffer buffer(opt);
  buffer.Reset(Vec3(0, 0, 0));
  // The blocker fully covers the small target behind it (target's angular
  // footprint is a subset of the blocker's).
  buffer.RasterizeBox(Aabb(Vec3(5, -10, -10), Vec3(6, 10, 10)), 1);
  buffer.RasterizeBox(Aabb(Vec3(20, -1, -1), Vec3(21, 1, 1)), 2);
  EXPECT_DOUBLE_EQ(buffer.SolidAngleOf(2), 0.0);
}

TEST(CubeMapTest, AccumulateMatchesPerItemScan) {
  CubeMapOptions opt;
  opt.face_resolution = 24;
  CubeMapBuffer buffer(opt);
  buffer.Reset(Vec3(0, 0, 0));
  buffer.RasterizeBox(Aabb(Vec3(5, -1, -1), Vec3(6, 1, 1)), 0);
  buffer.RasterizeBox(Aabb(Vec3(-8, -2, -2), Vec3(-7, 2, 2)), 1);
  std::vector<double> angles(2, 0.0);
  buffer.AccumulateSolidAngles(&angles);
  EXPECT_NEAR(angles[0], buffer.SolidAngleOf(0), 1e-12);
  EXPECT_NEAR(angles[1], buffer.SolidAngleOf(1), 1e-12);
}

TEST(CubeMapTest, SurroundingGeometrySeenOnAllFaces) {
  CubeMapOptions opt;
  opt.face_resolution = 16;
  CubeMapBuffer buffer(opt);
  buffer.Reset(Vec3(1, 2, 3));
  // Six separated boxes, one along each axis direction.
  Vec3 center(1, 2, 3);
  int item = 0;
  for (const Vec3& dir :
       {Vec3(1, 0, 0), Vec3(-1, 0, 0), Vec3(0, 1, 0), Vec3(0, -1, 0),
        Vec3(0, 0, 1), Vec3(0, 0, -1)}) {
    Vec3 pos = center + dir * 10.0;
    buffer.RasterizeBox(Aabb(pos - Vec3(1, 1, 1), pos + Vec3(1, 1, 1)),
                        item++);
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_GT(buffer.SolidAngleOf(i), 0.0) << "direction " << i;
  }
}

class ScenedDovTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three boxes in a row along +x from the origin viewpoint: near,
    // middle (hidden), far (partially visible above the near one).
    Object near_box;
    near_box.mbr = Aabb(Vec3(10, -5, 0), Vec3(12, 5, 10));
    near_box.lods = LodChain::Proxy(100, LodChainOptions());
    scene_.AddObject(std::move(near_box));

    Object hidden;
    hidden.mbr = Aabb(Vec3(20, -4, 0), Vec3(22, 4, 8));  // Shadow of near.
    hidden.lods = LodChain::Proxy(100, LodChainOptions());
    scene_.AddObject(std::move(hidden));

    Object tall_far;
    tall_far.mbr = Aabb(Vec3(40, -5, 0), Vec3(42, 5, 60));  // Pokes above.
    tall_far.lods = LodChain::Proxy(100, LodChainOptions());
    scene_.AddObject(std::move(tall_far));
  }

  Scene scene_;
};

TEST_F(ScenedDovTest, OcclusionAndRange) {
  DovOptions opt;
  opt.cubemap.face_resolution = 64;
  DovComputer computer(&scene_, opt);
  const std::vector<float>& dov = computer.ComputePointDov(Vec3(0, 0, 5));
  ASSERT_EQ(dov.size(), 3u);
  EXPECT_GT(dov[0], 0.0f);          // Near box visible.
  EXPECT_FLOAT_EQ(dov[1], 0.0f);    // Fully occluded.
  EXPECT_GT(dov[2], 0.0f);          // Tall box pokes above.
  EXPECT_LT(dov[2], dov[0]);        // ... but is less prominent.
  for (float d : dov) {
    EXPECT_GE(d, 0.0f);
    EXPECT_LE(d, 0.5f + 1e-5f);     // MAXDOV bound (outside the MBR).
  }
}

TEST_F(ScenedDovTest, RegionDovIsMaxOverSamples) {
  DovOptions opt;
  opt.cubemap.face_resolution = 32;
  DovComputer computer(&scene_, opt);
  std::vector<Vec3> samples = {Vec3(0, 0, 5), Vec3(0, 10, 5), Vec3(0, -10, 5)};
  std::vector<float> region = computer.ComputeRegionDov(samples);
  for (const Vec3& p : samples) {
    const std::vector<float>& point = computer.ComputePointDov(p);
    for (size_t i = 0; i < region.size(); ++i) {
      EXPECT_GE(region[i] + 1e-7f, point[i]) << "object " << i;
    }
  }
}

TEST_F(ScenedDovTest, RasterizerAgreesWithMonteCarloReference) {
  // Cross-validation: the cube-map item buffer and the ray-sampled
  // estimator implement the same DoV definition and must agree within
  // their combined discretization error.
  DovOptions opt;
  opt.cubemap.face_resolution = 128;
  DovComputer computer(&scene_, opt);
  const Vec3 eye(0, 0, 5);
  const std::vector<float>& raster = computer.ComputePointDov(eye);

  SamplingDovOptions sopt;
  sopt.num_rays = 200000;
  std::vector<float> sampled = ComputePointDovSampled(scene_, eye, sopt);

  ASSERT_EQ(raster.size(), sampled.size());
  for (size_t i = 0; i < raster.size(); ++i) {
    EXPECT_NEAR(raster[i], sampled[i],
                0.1 * std::max(raster[i], sampled[i]) + 0.001)
        << "object " << i;
  }
}

TEST(CubeMapTest, CoverageEqualsSumOfItemAngles) {
  // Property: the total covered solid angle is exactly the sum of every
  // item's visible solid angle (pixels are partitioned among items).
  Rng rng(91);
  CubeMapOptions opt;
  opt.face_resolution = 24;
  CubeMapBuffer buffer(opt);
  buffer.Reset(Vec3(0, 0, 0));
  const uint32_t kItems = 40;
  for (uint32_t item = 0; item < kItems; ++item) {
    Vec3 center(rng.Uniform(-60, 60), rng.Uniform(-60, 60),
                rng.Uniform(-60, 60));
    if (center.Length() < 5.0) {
      center = center + Vec3(10, 10, 10);
    }
    Vec3 half(rng.Uniform(1, 6), rng.Uniform(1, 6), rng.Uniform(1, 6));
    buffer.RasterizeBox(Aabb(center - half, center + half), item);
  }
  std::vector<double> angles(kItems, 0.0);
  double total = buffer.AccumulateSolidAngles(&angles);
  double sum = 0.0;
  for (double a : angles) {
    sum += a;
  }
  EXPECT_NEAR(total, sum, 1e-9);
  EXPECT_NEAR(buffer.TotalCoverage(), total / (4.0 * M_PI), 1e-12);
}

TEST(CubeMapTest, DeterministicAcrossRuns) {
  CubeMapOptions opt;
  opt.face_resolution = 20;
  auto render = [&] {
    CubeMapBuffer buffer(opt);
    buffer.Reset(Vec3(1, 2, 3));
    buffer.RasterizeBox(Aabb(Vec3(10, -3, -3), Vec3(12, 3, 3)), 1);
    buffer.RasterizeBox(Aabb(Vec3(-9, -2, 0), Vec3(-7, 2, 8)), 2);
    return std::make_pair(buffer.SolidAngleOf(1), buffer.SolidAngleOf(2));
  };
  auto a = render();
  auto b = render();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(SamplingDovTest, HitFractionsSumBelowOne) {
  CityOptions copt;
  copt.mode = GeometryMode::kProxy;
  copt.blocks_x = 3;
  copt.blocks_y = 3;
  Result<Scene> city = GenerateCity(copt);
  ASSERT_TRUE(city.ok());
  Vec3 eye = city->bounds().Center();
  eye.z = 1.7;
  SamplingDovOptions sopt;
  sopt.num_rays = 20000;
  std::vector<float> dov = ComputePointDovSampled(*city, eye, sopt);
  double total = 0.0;
  for (float d : dov) {
    total += d;
  }
  EXPECT_LE(total, 1.0 + 1e-6);  // A partition of the sphere at most.
  EXPECT_GT(total, 0.0);
}

TEST(PrecomputeTest, CityVisibilityIsPlausible) {
  CityOptions copt;
  copt.mode = GeometryMode::kProxy;
  copt.blocks_x = 3;
  copt.blocks_y = 3;
  Result<Scene> city = GenerateCity(copt);
  ASSERT_TRUE(city.ok());

  CellGridOptions gopt;
  gopt.cells_x = 3;
  gopt.cells_y = 3;
  Result<CellGrid> grid = CellGrid::Build(city->bounds(), gopt);
  ASSERT_TRUE(grid.ok());

  PrecomputeOptions popt;
  popt.dov.cubemap.face_resolution = 24;
  popt.samples_per_cell = 1;
  Result<VisibilityTable> table = PrecomputeVisibility(*city, *grid, popt);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_cells(), 9u);

  // Every cell should see something, but occlusion should hide a part of
  // the city from most cells.
  size_t cells_with_hidden = 0;
  for (CellId c = 0; c < table->num_cells(); ++c) {
    const CellVisibility& cell = table->cell(c);
    EXPECT_GT(cell.num_visible(), 0u) << "cell " << c;
    EXPECT_LE(cell.num_visible(), city->size());
    if (cell.num_visible() < city->size()) {
      ++cells_with_hidden;
    }
    // Sorted ids and positive DoVs.
    for (size_t i = 0; i < cell.ids.size(); ++i) {
      EXPECT_GT(cell.dov[i], 0.0f);
      if (i > 0) {
        EXPECT_LT(cell.ids[i - 1], cell.ids[i]);
      }
    }
  }
  EXPECT_GT(cells_with_hidden, 0u);
  EXPECT_GT(table->AverageVisibleObjects(), 0.0);
}

TEST(PrecomputeTest, MoreSamplesNeverShrinkVisibility) {
  CityOptions copt;
  copt.mode = GeometryMode::kProxy;
  copt.blocks_x = 2;
  copt.blocks_y = 2;
  Result<Scene> city = GenerateCity(copt);
  ASSERT_TRUE(city.ok());
  CellGridOptions gopt;
  gopt.cells_x = 2;
  gopt.cells_y = 2;
  Result<CellGrid> grid = CellGrid::Build(city->bounds(), gopt);
  ASSERT_TRUE(grid.ok());

  PrecomputeOptions p1;
  p1.dov.cubemap.face_resolution = 24;
  p1.samples_per_cell = 1;
  PrecomputeOptions p5 = p1;
  p5.samples_per_cell = 5;
  Result<VisibilityTable> t1 = PrecomputeVisibility(*city, *grid, p1);
  Result<VisibilityTable> t5 = PrecomputeVisibility(*city, *grid, p5);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t5.ok());
  for (CellId c = 0; c < t1->num_cells(); ++c) {
    // Eq. 2 is a max over samples: more samples -> more conservative.
    for (size_t i = 0; i < t1->cell(c).ids.size(); ++i) {
      ObjectId id = t1->cell(c).ids[i];
      EXPECT_GE(t5->cell(c).DovOf(id) + 1e-7f, t1->cell(c).dov[i]);
    }
  }
}

TEST(PrecomputeTest, ProgressCallbackRuns) {
  CityOptions copt;
  copt.mode = GeometryMode::kProxy;
  copt.blocks_x = 2;
  copt.blocks_y = 2;
  Result<Scene> city = GenerateCity(copt);
  ASSERT_TRUE(city.ok());
  CellGridOptions gopt;
  gopt.cells_x = 2;
  gopt.cells_y = 2;
  Result<CellGrid> grid = CellGrid::Build(city->bounds(), gopt);
  ASSERT_TRUE(grid.ok());
  PrecomputeOptions popt;
  popt.dov.cubemap.face_resolution = 16;
  popt.samples_per_cell = 1;
  uint32_t calls = 0;
  ASSERT_TRUE(PrecomputeVisibility(*city, *grid, popt,
                                   [&](uint32_t done, uint32_t total) {
                                     ++calls;
                                     EXPECT_LE(done, total);
                                   })
                  .ok());
  EXPECT_EQ(calls, 4u);
}

Object ProxyBox(const Aabb& mbr) {
  Object obj;
  obj.mbr = mbr;
  obj.lods = LodChain::Proxy(100, LodChainOptions());
  return obj;
}

TEST(PushOutOfObjectsTest, OutsidePointIsUntouched) {
  Scene scene;
  scene.AddObject(ProxyBox(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10))));
  const Vec3 p(20, 5, 5);
  EXPECT_TRUE(PushOutOfObjects(scene, p) == p);
}

TEST(PushOutOfObjectsTest, InsideSingleBoxExitsNearestFace) {
  Scene scene;
  scene.AddObject(ProxyBox(Aabb(Vec3(0, 0, 0), Vec3(10, 10, 10))));
  // (1, 5, 5): min-x is the shallowest face (depth 1), so the point exits
  // through it with the 0.05 clearance. z never changes (an eye-height
  // viewpoint cannot step over a building).
  const Vec3 out = PushOutOfObjects(scene, Vec3(1, 5, 5));
  EXPECT_NEAR(out.x, -0.05, 1e-12);
  EXPECT_DOUBLE_EQ(out.y, 5);
  EXPECT_DOUBLE_EQ(out.z, 5);
  EXPECT_FALSE(scene.objects()[0].mbr.Contains(out));
}

TEST(PushOutOfObjectsTest, OverlappingBoxesEscapeBoth) {
  // Exiting A through min-x lands inside B; the second round must then
  // escape B too (here through min-y).
  Scene scene;
  scene.AddObject(ProxyBox(Aabb(Vec3(0, 0, 0), Vec3(10, 2, 10))));   // A
  scene.AddObject(ProxyBox(Aabb(Vec3(-5, 0, 0), Vec3(1, 2, 10))));   // B
  const Vec3 out = PushOutOfObjects(scene, Vec3(0.5, 0.5, 1));
  for (const Object& obj : scene.objects()) {
    EXPECT_FALSE(obj.mbr.Contains(out));
  }
}

TEST(PushOutOfObjectsTest, PathologicalOverlapTerminates) {
  // A and B overlap on a thin x sliver and both span a huge y range, so
  // the min-penetration exit of each box lands inside the other: A pushes
  // the point to x = -0.05 (inside B), B pushes it to x = 0.09 (inside A),
  // forever. The 4-round cap must give up and return a point rather than
  // loop; the result is still inside one of the boxes.
  Scene scene;
  scene.AddObject(ProxyBox(Aabb(Vec3(0, -100, 0), Vec3(1, 100, 10))));
  scene.AddObject(ProxyBox(Aabb(Vec3(-10, -100, 0), Vec3(0.04, 100, 10))));
  const Vec3 out = PushOutOfObjects(scene, Vec3(0.5, 0, 5));
  bool inside_any = false;
  for (const Object& obj : scene.objects()) {
    inside_any = inside_any || obj.mbr.Contains(out);
  }
  EXPECT_TRUE(inside_any);  // Gave up, by design, instead of iterating on.
}

TEST(PrecomputeTest, ParallelMatchesSequentialBitExact) {
  CityOptions copt;
  copt.mode = GeometryMode::kProxy;
  copt.blocks_x = 4;
  copt.blocks_y = 4;
  Result<Scene> city = GenerateCity(copt);
  ASSERT_TRUE(city.ok());
  CellGridOptions gopt;
  gopt.cells_x = 5;  // 25 cells over (up to) 5 slots: uneven distribution.
  gopt.cells_y = 5;
  Result<CellGrid> grid = CellGrid::Build(city->bounds(), gopt);
  ASSERT_TRUE(grid.ok());

  PrecomputeOptions seq;
  seq.dov.cubemap.face_resolution = 24;
  seq.samples_per_cell = 2;
  seq.threads = 1;
  PrecomputeOptions par = seq;
  par.threads = 4;

  Result<VisibilityTable> t_seq = PrecomputeVisibility(*city, *grid, seq);
  Result<VisibilityTable> t_par = PrecomputeVisibility(*city, *grid, par);
  ASSERT_TRUE(t_seq.ok());
  ASSERT_TRUE(t_par.ok());
  ASSERT_EQ(t_seq->num_cells(), t_par->num_cells());
  for (CellId c = 0; c < t_seq->num_cells(); ++c) {
    // Bit-identical, not approximately equal: each cell's DoV depends only
    // on that cell, so the parallel schedule must not change a single ulp.
    EXPECT_EQ(t_seq->cell(c).ids, t_par->cell(c).ids) << "cell " << c;
    EXPECT_EQ(t_seq->cell(c).dov, t_par->cell(c).dov) << "cell " << c;
  }
}

TEST(PrecomputeTest, ThreadedProgressIsSerializedAndMonotonic) {
  CityOptions copt;
  copt.mode = GeometryMode::kProxy;
  copt.blocks_x = 2;
  copt.blocks_y = 2;
  Result<Scene> city = GenerateCity(copt);
  ASSERT_TRUE(city.ok());
  CellGridOptions gopt;
  gopt.cells_x = 4;
  gopt.cells_y = 4;
  Result<CellGrid> grid = CellGrid::Build(city->bounds(), gopt);
  ASSERT_TRUE(grid.ok());
  PrecomputeOptions popt;
  popt.dov.cubemap.face_resolution = 16;
  popt.samples_per_cell = 1;
  popt.threads = 4;
  // The callback contract holds under threading: calls are serialized and
  // `done` counts up 1..total with no duplicates or gaps.
  uint32_t last = 0;
  ASSERT_TRUE(PrecomputeVisibility(*city, *grid, popt,
                                   [&](uint32_t done, uint32_t total) {
                                     EXPECT_EQ(done, last + 1);
                                     EXPECT_EQ(total, 16u);
                                     last = done;
                                   })
                  .ok());
  EXPECT_EQ(last, 16u);
}

TEST(CellVisibilityTest, DovOfLookup) {
  CellVisibility cell;
  cell.ids = {3, 7, 9};
  cell.dov = {0.1f, 0.2f, 0.3f};
  EXPECT_FLOAT_EQ(cell.DovOf(3), 0.1f);
  EXPECT_FLOAT_EQ(cell.DovOf(9), 0.3f);
  EXPECT_FLOAT_EQ(cell.DovOf(4), 0.0f);
  EXPECT_FLOAT_EQ(cell.DovOf(100), 0.0f);
}

}  // namespace
}  // namespace hdov
