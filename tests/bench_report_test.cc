#include "telemetry/bench_report.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/json.h"
#include "telemetry/telemetry.h"

namespace hdov {
namespace {

using telemetry::BenchEnvironment;
using telemetry::BenchReport;
using telemetry::CompareFinding;
using telemetry::CompareOptions;
using telemetry::CompareReports;
using telemetry::CompareResult;
using telemetry::JsonValue;
using telemetry::ParseJson;
using telemetry::ReportSeries;
using telemetry::SeriesColumn;
using telemetry::Telemetry;
using telemetry::TimingStats;

TEST(TimingStatsTest, PercentilesInterpolate) {
  TimingStats empty = TimingStats::From({});
  EXPECT_EQ(empty.count, 0u);
  TimingStats one = TimingStats::From({4.0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.min, 4.0);
  EXPECT_DOUBLE_EQ(one.median, 4.0);
  EXPECT_DOUBLE_EQ(one.p95, 4.0);
  // Unsorted input; 1..5 -> min 1, mean 3, median 3, p95 = 4.8.
  TimingStats five = TimingStats::From({5.0, 3.0, 1.0, 4.0, 2.0});
  EXPECT_EQ(five.count, 5u);
  EXPECT_DOUBLE_EQ(five.min, 1.0);
  EXPECT_DOUBLE_EQ(five.mean, 3.0);
  EXPECT_DOUBLE_EQ(five.median, 3.0);
  EXPECT_NEAR(five.p95, 4.8, 1e-9);
}

// A small but fully populated report, used by the build/round-trip and
// compare tests below.
BenchReport MakeReport(double io_pages, double wall_ms) {
  BenchReport report;
  report.set_binary("bench_demo");
  report.set_title("Demo figure");
  report.set_scale("default");
  BenchEnvironment env;
  env.git_revision = "abc1234";
  env.cpu_count = 4;
  env.threads = 2;
  report.set_environment(env);

  ReportSeries* series = report.AddSeries(
      "demo.series",
      {SeriesColumn{"io_pages", false}, SeriesColumn{"build_ms", true}});
  series->rows.push_back({"row0", {io_pages, wall_ms}});
  series->rows.push_back({"row1", {io_pages * 2, wall_ms * 2}});

  report.RecordTiming("phase", wall_ms);
  report.RecordTiming("phase", wall_ms * 3);

  Telemetry t;
  t.metrics().GetCounter("demo.reads")->Add(
      static_cast<uint64_t>(io_pages));
  telemetry::FrameRecord frame;
  frame.system = "demo";
  frame.kind = "query";
  frame.io_pages = static_cast<uint64_t>(io_pages);
  frame.query_time_ms = 1.5;
  t.RecordFrame(frame);
  t.RecordFrame(frame);
  report.CaptureFrom(t);
  return report;
}

JsonValue ParseReport(const BenchReport& report) {
  Result<JsonValue> parsed = ParseJson(report.ToJson());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : JsonValue{};
}

TEST(BenchReportTest, ToJsonRoundTrips) {
  BenchReport report = MakeReport(100.0, 10.0);
  JsonValue doc = ParseReport(report);
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.Find("version")->number, 1.0);
  EXPECT_EQ(doc.Find("binary")->string, "bench_demo");
  EXPECT_EQ(doc.Find("title")->string, "Demo figure");
  EXPECT_EQ(doc.Find("scale")->string, "default");
  const JsonValue* env = doc.Find("environment");
  ASSERT_NE(env, nullptr);
  EXPECT_EQ(env->Find("git_revision")->string, "abc1234");
  EXPECT_DOUBLE_EQ(env->Find("cpu_count")->number, 4.0);
  EXPECT_DOUBLE_EQ(env->Find("threads")->number, 2.0);

  const JsonValue* series = doc.Find("series");
  ASSERT_TRUE(series != nullptr && series->is_array());
  ASSERT_EQ(series->items.size(), 1u);
  const JsonValue& s = series->items[0];
  EXPECT_EQ(s.Find("name")->string, "demo.series");
  ASSERT_EQ(s.Find("columns")->items.size(), 2u);
  EXPECT_EQ(s.Find("columns")->items[1].Find("name")->string, "build_ms");
  EXPECT_TRUE(s.Find("columns")->items[1].Find("wall")->boolean);
  ASSERT_EQ(s.Find("rows")->items.size(), 2u);
  EXPECT_EQ(s.Find("rows")->items[0].Find("label")->string, "row0");
  EXPECT_DOUBLE_EQ(s.Find("rows")->items[0].Find("values")->items[0].number,
                   100.0);

  const JsonValue* timings = doc.Find("timings");
  ASSERT_TRUE(timings != nullptr && timings->is_array());
  ASSERT_EQ(timings->items.size(), 1u);
  EXPECT_EQ(timings->items[0].Find("name")->string, "phase");
  EXPECT_DOUBLE_EQ(timings->items[0].Find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(timings->items[0].Find("min_ms")->number, 10.0);
  EXPECT_DOUBLE_EQ(timings->items[0].Find("median_ms")->number, 20.0);

  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_TRUE(metrics != nullptr && metrics->is_array());
  EXPECT_EQ(metrics->items[0].Find("name")->string, "demo.reads");

  const JsonValue* totals = doc.Find("frame_totals");
  ASSERT_TRUE(totals != nullptr && totals->is_array());
  ASSERT_EQ(totals->items.size(), 1u);
  EXPECT_EQ(totals->items[0].Find("system")->string, "demo");
  EXPECT_EQ(totals->items[0].Find("kind")->string, "query");
  EXPECT_DOUBLE_EQ(totals->items[0].Find("frames")->number, 2.0);
  EXPECT_DOUBLE_EQ(totals->items[0].Find("io_pages")->number, 200.0);
  EXPECT_DOUBLE_EQ(totals->items[0].Find("query_time_ms")->number, 3.0);
}

TEST(BenchReportTest, AddSeriesReturnsStablePointers) {
  BenchReport report;
  ReportSeries* first = report.AddSeries("a", {SeriesColumn{"x", false}});
  for (int i = 0; i < 64; ++i) {
    report.AddSeries("s" + std::to_string(i), {SeriesColumn{"x", false}});
  }
  first->rows.push_back({"row", {1.0}});  // Pointer must still be valid.
  EXPECT_EQ(report.AddSeries("a", {}), first);  // Find-or-create.
  EXPECT_EQ(report.num_series(), 65u);
  EXPECT_EQ(report.series(0).rows.size(), 1u);
}

size_t CountSeverity(const CompareResult& result,
                     CompareFinding::Severity severity) {
  size_t n = 0;
  for (const CompareFinding& f : result.findings) {
    if (f.severity == severity) {
      ++n;
    }
  }
  return n;
}

TEST(CompareReportsTest, IdenticalReportsPass) {
  JsonValue old_doc = ParseReport(MakeReport(100.0, 10.0));
  JsonValue new_doc = ParseReport(MakeReport(100.0, 10.0));
  CompareResult result = CompareReports(old_doc, new_doc, CompareOptions{});
  EXPECT_FALSE(result.HasFailure());
  EXPECT_EQ(CountSeverity(result, CompareFinding::Severity::kFail), 0u);
  EXPECT_GT(result.values_compared, 0u);
}

TEST(CompareReportsTest, CounterDriftFails) {
  JsonValue old_doc = ParseReport(MakeReport(100.0, 10.0));
  JsonValue new_doc = ParseReport(MakeReport(101.0, 10.0));
  CompareResult result = CompareReports(old_doc, new_doc, CompareOptions{});
  EXPECT_TRUE(result.HasFailure());
}

TEST(CompareReportsTest, WallClockUsesTolerance) {
  JsonValue old_doc = ParseReport(MakeReport(100.0, 10.0));
  // +20% on every wall value: within the default 30% tolerance.
  JsonValue within = ParseReport(MakeReport(100.0, 12.0));
  EXPECT_FALSE(CompareReports(old_doc, within, CompareOptions{})
                   .HasFailure());
  // +100%: far past tolerance and the 1 ms absolute floor.
  JsonValue beyond = ParseReport(MakeReport(100.0, 20.0));
  EXPECT_TRUE(CompareReports(old_doc, beyond, CompareOptions{})
                  .HasFailure());
  // Same regression with ignore_wall: passes (CI gate mode).
  CompareOptions ignore;
  ignore.ignore_wall = true;
  EXPECT_FALSE(CompareReports(old_doc, beyond, ignore).HasFailure());
  // Wall improvements never fail.
  JsonValue faster = ParseReport(MakeReport(100.0, 5.0));
  EXPECT_FALSE(CompareReports(old_doc, faster, CompareOptions{})
                   .HasFailure());
}

TEST(CompareReportsTest, WallFloorSuppressesTinyRegressions) {
  JsonValue old_doc = ParseReport(MakeReport(100.0, 0.1));
  // 2x slower on every wall value, but every absolute delta (rows,
  // medians, p95s) stays below the 1 ms floor.
  JsonValue new_doc = ParseReport(MakeReport(100.0, 0.2));
  EXPECT_FALSE(CompareReports(old_doc, new_doc, CompareOptions{})
                   .HasFailure());
}

TEST(CompareReportsTest, SkipSubstringsFiltersMetrics) {
  JsonValue old_doc = ParseReport(MakeReport(100.0, 10.0));
  JsonValue new_doc = ParseReport(MakeReport(101.0, 10.0));
  CompareOptions options;
  options.skip_substrings.push_back("demo.");
  // --skip only filters metric names; series and frame totals always
  // compare. Verify the skip silences the metric drift specifically.
  CompareResult unfiltered =
      CompareReports(old_doc, new_doc, CompareOptions{});
  bool metric_fail = false;
  for (const CompareFinding& f : unfiltered.findings) {
    if (f.severity == CompareFinding::Severity::kFail &&
        f.where == "metrics") {
      metric_fail = true;
    }
  }
  EXPECT_TRUE(metric_fail);
  CompareResult filtered = CompareReports(old_doc, new_doc, options);
  for (const CompareFinding& f : filtered.findings) {
    EXPECT_NE(f.where, "metrics") << f.message;
  }
}

TEST(CompareReportsTest, BinaryMismatchFailsEarly) {
  BenchReport other = MakeReport(100.0, 10.0);
  other.set_binary("bench_other");
  JsonValue old_doc = ParseReport(MakeReport(100.0, 10.0));
  JsonValue new_doc = ParseReport(other);
  CompareResult result = CompareReports(old_doc, new_doc, CompareOptions{});
  EXPECT_TRUE(result.HasFailure());
}

TEST(CompareReportsTest, MissingMetricFailsNewMetricWarns) {
  JsonValue old_doc = ParseReport(MakeReport(100.0, 10.0));
  BenchReport renamed = MakeReport(100.0, 10.0);
  // Rebuild with an extra metric only in the new report.
  Telemetry t;
  t.metrics().GetCounter("demo.reads")->Add(100);
  t.metrics().GetCounter("demo.extra")->Add(1);
  renamed.CaptureFrom(t);
  JsonValue new_doc = ParseReport(renamed);
  CompareResult result = CompareReports(old_doc, new_doc, CompareOptions{});
  // Old had frame totals under "demo"; renamed's second CaptureFrom holds
  // no frames -> missing totals fail too; at minimum the new-only metric
  // warns and nothing crashes.
  EXPECT_GE(CountSeverity(result, CompareFinding::Severity::kWarn), 1u);

  // Reverse direction: a metric present in old but missing in new fails.
  CompareResult reverse =
      CompareReports(new_doc, old_doc, CompareOptions{});
  EXPECT_TRUE(reverse.HasFailure());
}

}  // namespace
}  // namespace hdov
