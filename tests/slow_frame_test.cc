#include "telemetry/slow_frame.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/flight_recorder.h"
#include "telemetry/trace_context.h"

namespace hdov {
namespace {

using telemetry::DecodeSlowDump;
using telemetry::EncodeSlowDump;
using telemetry::FlightEvent;
using telemetry::FlightEventType;
using telemetry::FlightInternName;
using telemetry::FlightNowNs;
using telemetry::FrameStageRecord;
using telemetry::kNumTraceStages;
using telemetry::SessionTraceScope;
using telemetry::SlowDump;
using telemetry::SlowDumpChromeTraceJson;
using telemetry::SlowFrameCapture;
using telemetry::SlowFrameEntry;
using telemetry::SlowFrameOptions;
using telemetry::StageTraceScope;
using telemetry::TraceStage;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

FrameStageRecord MakeRecord(uint16_t session, uint64_t frame,
                            double wall_ms, double queue_ms = 0.0) {
  FrameStageRecord r;
  r.session = session;
  r.frame = frame;
  r.start_ns = FlightNowNs();
  r.queue_ns = static_cast<uint64_t>(queue_ms * 1e6);
  r.wall_ns = static_cast<uint64_t>(wall_ms * 1e6);
  r.io_pages = frame;
  r.stages.ns[static_cast<size_t>(TraceStage::kSearch)] = r.wall_ns / 2;
  r.stages.ns[static_cast<size_t>(TraceStage::kFetch)] = r.wall_ns / 2;
  return r;
}

TEST(SlowFrameTest, AbsoluteThresholdTriggers) {
  SlowFrameOptions opt;
  opt.threshold_ms = 5.0;
  opt.percentile = 0.0;
  SlowFrameCapture cap(opt);
  cap.OnFrame(MakeRecord(1, 0, 1.0));
  EXPECT_EQ(cap.captures(), 0u);
  cap.OnFrame(MakeRecord(1, 1, 6.0, /*queue_ms=*/2.0));
  ASSERT_EQ(cap.captures(), 1u);

  const SlowDump dump = cap.Snapshot();
  EXPECT_EQ(dump.frames_seen, 2u);
  EXPECT_EQ(dump.captures_dropped, 0u);
  ASSERT_EQ(dump.captures.size(), 1u);
  const FrameStageRecord& r = dump.captures[0].record;
  EXPECT_EQ(r.frame, 1u);
  EXPECT_EQ(r.queue_ns, 2'000'000u);
  EXPECT_DOUBLE_EQ(dump.captures[0].trip_threshold_ms, 5.0);
}

TEST(SlowFrameTest, PercentileTriggerIgnoresFlatDistributions) {
  SlowFrameOptions opt;
  opt.threshold_ms = 0.0;
  opt.percentile = 0.9;
  opt.warmup_frames = 16;
  opt.ring_frames = 64;
  SlowFrameCapture cap(opt);
  // A flat distribution never fires: the trigger is strictly-above the
  // trailing percentile, and every frame equals it.
  for (uint64_t f = 0; f < 100; ++f) {
    cap.OnFrame(MakeRecord(1, f, 1.0));
  }
  EXPECT_EQ(cap.captures(), 0u);
  // One outlier against that history fires with the percentile cut as
  // the recorded threshold.
  cap.OnFrame(MakeRecord(1, 100, 10.0));
  ASSERT_EQ(cap.captures(), 1u);
  const SlowDump dump = cap.Snapshot();
  EXPECT_EQ(dump.captures[0].record.frame, 100u);
  EXPECT_NEAR(dump.captures[0].trip_threshold_ms, 1.0, 0.01);
}

TEST(SlowFrameTest, PercentileWaitsForWarmup) {
  SlowFrameOptions opt;
  opt.threshold_ms = 0.0;
  opt.percentile = 0.9;
  opt.warmup_frames = 50;
  SlowFrameCapture cap(opt);
  for (uint64_t f = 0; f < 10; ++f) {
    cap.OnFrame(MakeRecord(1, f, 1.0));
  }
  // 10 frames of history is below the warmup: even a huge outlier does
  // not fire (the trailing window is not trustworthy yet).
  cap.OnFrame(MakeRecord(1, 10, 100.0));
  EXPECT_EQ(cap.captures(), 0u);
}

TEST(SlowFrameTest, MaxCapturesCountsDroppedTriggers) {
  SlowFrameOptions opt;
  opt.threshold_ms = 1.0;
  opt.percentile = 0.0;
  opt.max_captures = 2;
  SlowFrameCapture cap(opt);
  for (uint64_t f = 0; f < 5; ++f) {
    cap.OnFrame(MakeRecord(1, f, 2.0));
  }
  EXPECT_EQ(cap.captures(), 2u);
  const SlowDump dump = cap.Snapshot();
  EXPECT_EQ(dump.captures_dropped, 3u);
  EXPECT_EQ(dump.frames_seen, 5u);
}

TEST(SlowFrameTest, DisabledCaptureSeesNothing) {
  SlowFrameOptions opt;
  opt.threshold_ms = 1.0;
  SlowFrameCapture cap(opt);
  cap.set_enabled(false);
  cap.OnFrame(MakeRecord(1, 0, 10.0));
  EXPECT_EQ(cap.frames_seen(), 0u);
  EXPECT_EQ(cap.captures(), 0u);
  cap.set_enabled(true);
  cap.OnFrame(MakeRecord(1, 1, 10.0));
  EXPECT_EQ(cap.frames_seen(), 1u);
  EXPECT_EQ(cap.captures(), 1u);
}

TEST(SlowFrameTest, CaptureSnapshotsSessionWindowEvents) {
  const uint16_t session = FlightInternName("slowtest-session");
  const uint16_t other = FlightInternName("slowtest-other");
  const uint16_t code = FlightInternName("slowtest-pool");

  SlowFrameOptions opt;
  opt.threshold_ms = 0.0001;
  opt.percentile = 0.0;
  SlowFrameCapture cap(opt);

  FrameStageRecord record;
  record.session = session;
  record.frame = 3;
  record.start_ns = FlightNowNs();
  {
    SessionTraceScope trace(session, 3);
    StageTraceScope stage(TraceStage::kFetch);
    telemetry::GlobalFlightRecorder().Record(FlightEventType::kPoolMiss,
                                             code, 11, 0);
  }
  {
    // Another session's event in the same window must not be captured.
    SessionTraceScope trace(other, 0);
    telemetry::GlobalFlightRecorder().Record(FlightEventType::kPoolMiss,
                                             code, 12, 0);
  }
  // Pad the window's end past the events just recorded.
  record.wall_ns = FlightNowNs() - record.start_ns + 1'000'000;
  cap.OnFrame(record);

  const SlowDump dump = cap.Snapshot();
  ASSERT_EQ(dump.captures.size(), 1u);
  const SlowFrameEntry& entry = dump.captures[0];
  bool saw_own = false;
  for (const FlightEvent& ev : entry.events) {
    EXPECT_EQ(ev.session, session);  // Window filter is per-session.
    EXPECT_GE(ev.ts_ns, record.start_ns);
    EXPECT_LE(ev.ts_ns, record.start_ns + record.wall_ns);
    if (ev.a == 11 &&
        ev.stage == static_cast<uint8_t>(TraceStage::kFetch)) {
      saw_own = true;
    }
  }
  EXPECT_TRUE(saw_own);
  // The shared name table resolves the session for the dump reader.
  EXPECT_EQ(dump.NameOf(session), "slowtest-session");
}

TEST(SlowFrameTest, DumpFileRoundTrip) {
  SlowFrameOptions opt;
  opt.threshold_ms = 1.0;
  opt.percentile = 0.0;
  SlowFrameCapture cap(opt);
  cap.OnFrame(MakeRecord(2, 7, 3.5, /*queue_ms=*/0.5));
  ASSERT_EQ(cap.captures(), 1u);

  const std::string path = TempPath("slow_roundtrip.bin");
  ASSERT_TRUE(cap.WriteDump(path).ok());
  Result<SlowDump> read = SlowFrameCapture::ReadDump(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->frames_seen, 1u);
  ASSERT_EQ(read->captures.size(), 1u);
  const FrameStageRecord& r = read->captures[0].record;
  EXPECT_EQ(r.session, 2u);
  EXPECT_EQ(r.frame, 7u);
  EXPECT_EQ(r.queue_ns, 500'000u);
  EXPECT_EQ(r.wall_ns, 3'500'000u);
  EXPECT_EQ(r.stages.ns[static_cast<size_t>(TraceStage::kSearch)],
            r.wall_ns / 2);
  EXPECT_DOUBLE_EQ(read->captures[0].trip_threshold_ms, 1.0);
  std::remove(path.c_str());
}

TEST(SlowFrameTest, DecodeRejectsMalformedDumps) {
  EXPECT_FALSE(DecodeSlowDump("not a dump").ok());
  EXPECT_FALSE(DecodeSlowDump("").ok());

  SlowDump dump;
  dump.names = {"?", "sess"};
  dump.frames_seen = 9;
  dump.captures_dropped = 2;
  SlowFrameEntry entry;
  entry.record = MakeRecord(1, 4, 2.0, 0.25);
  entry.trip_threshold_ms = 1.5;
  FlightEvent ev;
  ev.ts_ns = entry.record.start_ns;
  ev.type = static_cast<uint8_t>(FlightEventType::kPoolMiss);
  ev.stage = static_cast<uint8_t>(TraceStage::kFetch);
  ev.session = 1;
  entry.events.push_back(ev);
  dump.captures.push_back(entry);

  const std::string encoded = EncodeSlowDump(dump);
  Result<SlowDump> back = DecodeSlowDump(encoded);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->frames_seen, 9u);
  EXPECT_EQ(back->captures_dropped, 2u);
  ASSERT_EQ(back->captures.size(), 1u);
  ASSERT_EQ(back->captures[0].events.size(), 1u);
  EXPECT_EQ(back->captures[0].events[0].session, 1u);
  EXPECT_DOUBLE_EQ(back->captures[0].trip_threshold_ms, 1.5);

  // Truncation anywhere in the capture section fails cleanly, as do
  // trailing garbage and an unsupported version.
  EXPECT_FALSE(DecodeSlowDump(encoded.substr(0, encoded.size() - 1)).ok());
  EXPECT_FALSE(DecodeSlowDump(encoded.substr(0, encoded.size() - 40)).ok());
  EXPECT_FALSE(DecodeSlowDump(encoded + "x").ok());
  std::string bad_version = encoded;
  bad_version[8] = 99;  // Version byte right after the 8-byte magic.
  EXPECT_FALSE(DecodeSlowDump(bad_version).ok());
}

TEST(SlowFrameTest, ChromeTraceHasOneTrackPerSession) {
  SlowDump dump;
  dump.names = {"?", "u0.walk", "u1.turn"};
  for (uint16_t session : {static_cast<uint16_t>(1),
                           static_cast<uint16_t>(2)}) {
    SlowFrameEntry entry;
    entry.record = MakeRecord(session, 5, 4.0, /*queue_ms=*/1.0);
    entry.record.start_ns = 10'000'000;  // Fixed, so queue slice fits.
    entry.trip_threshold_ms = 2.0;
    FlightEvent ev;
    ev.ts_ns = entry.record.start_ns + 1000;
    ev.type = static_cast<uint8_t>(FlightEventType::kPoolMiss);
    ev.session = session;
    ev.stage = static_cast<uint8_t>(TraceStage::kFetch);
    entry.events.push_back(ev);
    dump.captures.push_back(entry);
  }

  const std::string json = SlowDumpChromeTraceJson(dump);
  // Slow-frame captures render under their own pid with one named track
  // (tid = session id) per session.
  EXPECT_NE(json.find("\"pid\":4"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"u0.walk\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"u1.turn\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  // Queue wait and the frame itself are complete ("X") slices; stage
  // breakdown slices carry the stage names; io events become instants.
  EXPECT_NE(json.find("\"name\":\"queue wait\""), std::string::npos);
  EXPECT_NE(json.find("frame 5 (slow)"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"search\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"trip_threshold_ms\":2"), std::string::npos);
}

TEST(SlowFrameTest, ConcurrentOnFrameIsSafe) {
  // TSan exercise: concurrent feeders, some tripping captures.
  SlowFrameOptions opt;
  opt.threshold_ms = 1.5;
  opt.percentile = 0.0;
  opt.max_captures = 8;
  SlowFrameCapture cap(opt);
  constexpr size_t kThreads = 4;
  constexpr uint64_t kFrames = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cap] {
      for (uint64_t f = 0; f < kFrames; ++f) {
        const double wall_ms = f % 100 == 0 ? 2.0 : 0.5;
        cap.OnFrame(MakeRecord(static_cast<uint16_t>(t + 1), f, wall_ms));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(cap.frames_seen(), kThreads * kFrames);
  EXPECT_EQ(cap.captures(), 8u);  // Trips beyond the cap are dropped.
  EXPECT_GT(cap.Snapshot().captures_dropped, 0u);
}

}  // namespace
}  // namespace hdov
