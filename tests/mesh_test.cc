#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "mesh/obj_io.h"
#include "mesh/primitives.h"
#include "mesh/triangle_mesh.h"

namespace hdov {
namespace {

TEST(TriangleMeshTest, BuildAndQuery) {
  TriangleMesh mesh;
  uint32_t a = mesh.AddVertex(Vec3(0, 0, 0));
  uint32_t b = mesh.AddVertex(Vec3(1, 0, 0));
  uint32_t c = mesh.AddVertex(Vec3(0, 1, 0));
  mesh.AddTriangle(a, b, c);
  EXPECT_EQ(mesh.vertex_count(), 3u);
  EXPECT_EQ(mesh.triangle_count(), 1u);
  EXPECT_DOUBLE_EQ(mesh.SurfaceArea(), 0.5);
  EXPECT_EQ(mesh.TriangleNormal(0), Vec3(0, 0, 1));
  EXPECT_TRUE(mesh.Validate().ok());
}

TEST(TriangleMeshTest, ValidateCatchesBadIndices) {
  TriangleMesh mesh;
  mesh.AddVertex(Vec3(0, 0, 0));
  mesh.AddVertex(Vec3(1, 0, 0));
  mesh.AddVertex(Vec3(0, 1, 0));
  mesh.AddTriangle(0, 1, 9);
  EXPECT_TRUE(mesh.Validate().IsCorruption());
}

TEST(TriangleMeshTest, ValidateCatchesDegenerateIndices) {
  TriangleMesh mesh;
  mesh.AddVertex(Vec3(0, 0, 0));
  mesh.AddVertex(Vec3(1, 0, 0));
  mesh.AddTriangle(0, 1, 1);
  EXPECT_TRUE(mesh.Validate().IsCorruption());
}

TEST(TriangleMeshTest, AppendRemapsIndices) {
  TriangleMesh a = MakeBox(Vec3(0, 0, 0), Vec3(1, 1, 1));
  TriangleMesh b = MakeBox(Vec3(2, 0, 0), Vec3(3, 1, 1));
  size_t tris_a = a.triangle_count();
  a.Append(b);
  EXPECT_EQ(a.triangle_count(), tris_a + b.triangle_count());
  EXPECT_TRUE(a.Validate().ok());
  EXPECT_EQ(a.BoundingBox(), Aabb(Vec3(0, 0, 0), Vec3(3, 1, 1)));
}

TEST(TriangleMeshTest, TranslateAndScale) {
  TriangleMesh mesh = MakeBox(Vec3(0, 0, 0), Vec3(1, 1, 1));
  mesh.Translate(Vec3(10, 0, 0));
  EXPECT_EQ(mesh.BoundingBox(), Aabb(Vec3(10, 0, 0), Vec3(11, 1, 1)));
  mesh.Scale(2.0);
  EXPECT_EQ(mesh.BoundingBox(), Aabb(Vec3(20, 0, 0), Vec3(22, 2, 2)));
}

TEST(TriangleMeshTest, CompactVerticesDropsUnreferenced) {
  TriangleMesh mesh;
  mesh.AddVertex(Vec3(9, 9, 9));  // Unreferenced.
  uint32_t a = mesh.AddVertex(Vec3(0, 0, 0));
  uint32_t b = mesh.AddVertex(Vec3(1, 0, 0));
  uint32_t c = mesh.AddVertex(Vec3(0, 1, 0));
  mesh.AddTriangle(a, b, c);
  mesh.CompactVertices();
  EXPECT_EQ(mesh.vertex_count(), 3u);
  EXPECT_TRUE(mesh.Validate().ok());
  EXPECT_DOUBLE_EQ(mesh.SurfaceArea(), 0.5);
}

TEST(PrimitivesTest, BoxIsClosedCube) {
  TriangleMesh box = MakeBox(Vec3(0, 0, 0), Vec3(2, 3, 4));
  EXPECT_EQ(box.triangle_count(), 12u);
  EXPECT_TRUE(box.Validate().ok());
  EXPECT_EQ(box.BoundingBox(), Aabb(Vec3(0, 0, 0), Vec3(2, 3, 4)));
  // Surface area of a 2x3x4 box.
  EXPECT_NEAR(box.SurfaceArea(), 2 * (2 * 3 + 3 * 4 + 2 * 4), 1e-9);
}

TEST(PrimitivesTest, BoxWindingIsOutward) {
  TriangleMesh box = MakeBox(Vec3(-1, -1, -1), Vec3(1, 1, 1));
  // All triangle normals must point away from the center.
  for (size_t t = 0; t < box.triangle_count(); ++t) {
    auto [a, b, c] = box.TriangleVertices(t);
    Vec3 centroid = (a + b + c) / 3.0;
    EXPECT_GT(box.TriangleNormal(t).Dot(centroid), 0.0) << "triangle " << t;
  }
}

TEST(PrimitivesTest, IcosphereCounts) {
  EXPECT_EQ(MakeIcosphere(0).triangle_count(), 20u);
  EXPECT_EQ(MakeIcosphere(1).triangle_count(), 80u);
  EXPECT_EQ(MakeIcosphere(2).triangle_count(), 320u);
}

TEST(PrimitivesTest, IcosphereVerticesOnUnitSphere) {
  TriangleMesh sphere = MakeIcosphere(2);
  EXPECT_TRUE(sphere.Validate().ok());
  for (const Vec3& v : sphere.vertices()) {
    EXPECT_NEAR(v.Length(), 1.0, 1e-12);
  }
  // Surface area approaches 4 pi from below.
  EXPECT_GT(sphere.SurfaceArea(), 4.0 * M_PI * 0.95);
  EXPECT_LT(sphere.SurfaceArea(), 4.0 * M_PI);
}

TEST(PrimitivesTest, BuildingDimensionsAndDetail) {
  BuildingOptions opt;
  opt.width = 10;
  opt.depth = 20;
  opt.height = 30;
  opt.facade_columns = 4;
  opt.facade_rows = 6;
  opt.tiers = 1;
  TriangleMesh building = MakeBuilding(opt);
  EXPECT_TRUE(building.Validate().ok());
  Aabb box = building.BoundingBox();
  EXPECT_NEAR(box.min.z, 0.0, 1e-9);
  EXPECT_NEAR(box.max.z, 30.0, 1e-9);
  EXPECT_NEAR(box.Extent().x, 10.0, 1e-9);
  EXPECT_NEAR(box.Extent().y, 20.0, 1e-9);
  // 4 walls x 4 x 6 quads x 2 + roof quad x 2.
  EXPECT_EQ(building.triangle_count(), 4u * 4 * 6 * 2 + 2);
}

TEST(PrimitivesTest, TieredBuildingShrinks) {
  BuildingOptions opt;
  opt.width = 10;
  opt.depth = 10;
  opt.height = 60;
  opt.tiers = 3;
  TriangleMesh building = MakeBuilding(opt);
  EXPECT_TRUE(building.Validate().ok());
  Aabb box = building.BoundingBox();
  EXPECT_NEAR(box.max.z, 60.0, 1e-9);
  EXPECT_NEAR(box.Extent().x, 10.0, 1e-9);  // Widest tier is the base.
}

TEST(PrimitivesTest, BunnyBlobSitsOnGround) {
  Rng rng(3);
  TriangleMesh bunny = MakeBunnyBlob(3, 5.0, &rng);
  EXPECT_TRUE(bunny.Validate().ok());
  Aabb box = bunny.BoundingBox();
  EXPECT_NEAR(box.min.z, 0.0, 1e-9);
  EXPECT_GT(box.Extent().z, 5.0);   // Roughly radius-scaled.
  EXPECT_LT(box.Extent().z, 16.0);
  EXPECT_EQ(bunny.triangle_count(), 20u * 4 * 4 * 4);
}

TEST(PrimitivesTest, BunnyBlobDeterministicPerSeed) {
  Rng rng1(77);
  Rng rng2(77);
  TriangleMesh a = MakeBunnyBlob(2, 3.0, &rng1);
  TriangleMesh b = MakeBunnyBlob(2, 3.0, &rng2);
  ASSERT_EQ(a.vertex_count(), b.vertex_count());
  for (size_t i = 0; i < a.vertex_count(); ++i) {
    EXPECT_EQ(a.vertices()[i], b.vertices()[i]);
  }
}

TEST(PrimitivesTest, GroundPatchTessellation) {
  TriangleMesh ground =
      MakeGroundPatch(Vec3(0, 0, 0), Vec3(10, 10, 0), 5, 4);
  EXPECT_EQ(ground.triangle_count(), 5u * 4 * 2);
  EXPECT_TRUE(ground.Validate().ok());
}

TEST(ObjIoTest, RoundTrip) {
  TriangleMesh box = MakeBox(Vec3(0, 0, 0), Vec3(1, 2, 3));
  std::stringstream stream;
  ASSERT_TRUE(WriteObj(box, stream).ok());
  Result<TriangleMesh> back = ReadObj(stream);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->vertex_count(), box.vertex_count());
  EXPECT_EQ(back->triangle_count(), box.triangle_count());
  EXPECT_EQ(back->BoundingBox(), box.BoundingBox());
}

TEST(ObjIoTest, ParsesFaceVariantsAndComments) {
  std::stringstream in(
      "# comment\n"
      "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\n"
      "vn 0 0 1\nvt 0 0\n"
      "f 1/1/1 2/2/1 3/3/1 4/4/1\n");  // Quad with vt/vn refs.
  Result<TriangleMesh> mesh = ReadObj(in);
  ASSERT_TRUE(mesh.ok()) << mesh.status().ToString();
  EXPECT_EQ(mesh->triangle_count(), 2u);  // Fan-triangulated quad.
}

TEST(ObjIoTest, NegativeIndices) {
  std::stringstream in("v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n");
  Result<TriangleMesh> mesh = ReadObj(in);
  ASSERT_TRUE(mesh.ok()) << mesh.status().ToString();
  EXPECT_EQ(mesh->triangle_count(), 1u);
}

TEST(ObjIoTest, RejectsMalformedInput) {
  std::stringstream bad_vertex("v 1 2\nf 1 2 3\n");
  EXPECT_FALSE(ReadObj(bad_vertex).ok());
  std::stringstream bad_index("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 9\n");
  EXPECT_FALSE(ReadObj(bad_index).ok());
  std::stringstream short_face("v 0 0 0\nv 1 0 0\nf 1 2\n");
  EXPECT_FALSE(ReadObj(short_face).ok());
}

TEST(ObjIoTest, MissingFileIsIoError) {
  EXPECT_TRUE(
      ReadObjFile("/nonexistent/path/mesh.obj").status().IsIoError());
}

}  // namespace
}  // namespace hdov
