#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "hdov/builder.h"
#include "hdov/hdov_tree.h"
#include "hdov/search.h"
#include "hdov/visibility_store.h"
#include "hdov/vpage.h"
#include "scene/city_generator.h"

namespace hdov {
namespace {

TEST(VPageTest, SerializeRoundTrip) {
  VPage page = {{0.25f, 3}, {0.0f, 0}, {0.125f, 1}};
  std::string record = SerializeVPage(page, 8);
  EXPECT_EQ(record.size(), VPageRecordSize(8));
  VPage back;
  ASSERT_TRUE(ParseVPage(record, &back).ok());
  ASSERT_EQ(back.size(), 3u);
  EXPECT_FLOAT_EQ(back[0].dov, 0.25f);
  EXPECT_EQ(back[0].nvo, 3u);
  EXPECT_FLOAT_EQ(back[2].dov, 0.125f);
}

TEST(VPageTest, EmptyPageSerializes) {
  std::string record = SerializeVPage(VPage(), 4);
  VPage back = {{1.0f, 1}};
  ASSERT_TRUE(ParseVPage(record, &back).ok());
  EXPECT_TRUE(back.empty());
}

TEST(VPageTest, Aggregates) {
  VPage page = {{0.25f, 3}, {0.0f, 0}, {0.125f, 2}};
  EXPECT_NEAR(VPageDovSum(page), 0.375, 1e-6);
  EXPECT_EQ(VPageNvoSum(page), 5u);
  EXPECT_TRUE(VPageVisible(page));
  EXPECT_FALSE(VPageVisible(VPage{{0.0f, 0}}));
}

TEST(VPageTest, TruncatedRecordIsCorruption) {
  VPage page = {{0.5f, 1}};
  std::string record = SerializeVPage(page, 4);
  VPage back;
  EXPECT_TRUE(ParseVPage(std::string_view(record).substr(0, 5), &back)
                  .IsCorruption());
}

// Shared fixture: a small proxy city with precomputed visibility and a
// built HDoV-tree, reused across all tests in this suite.
class HdovFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityOptions copt;
    copt.mode = GeometryMode::kProxy;
    copt.blocks_x = 4;
    copt.blocks_y = 4;
    scene_ = new Scene(std::move(*GenerateCity(copt)));

    CellGridOptions gopt;
    gopt.cells_x = 4;
    gopt.cells_y = 4;
    grid_ = new CellGrid(std::move(*CellGrid::Build(scene_->bounds(), gopt)));

    PrecomputeOptions popt;
    popt.dov.cubemap.face_resolution = 24;
    popt.samples_per_cell = 1;
    table_ = new VisibilityTable(
        std::move(*PrecomputeVisibility(*scene_, *grid_, popt)));

    model_device_ = new PageDevice();
    models_ = new ModelStore(model_device_);
    HdovBuildOptions bopt;
    bopt.rtree.max_entries = 8;
    bopt.rtree.min_entries = 3;
    Result<HdovTree> tree = HdovBuilder::Build(*scene_, models_, bopt);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = new HdovTree(std::move(*tree));
  }

  static void TearDownTestSuite() {
    delete tree_;
    delete models_;
    delete model_device_;
    delete table_;
    delete grid_;
    delete scene_;
  }

  static Scene* scene_;
  static CellGrid* grid_;
  static VisibilityTable* table_;
  static PageDevice* model_device_;
  static ModelStore* models_;
  static HdovTree* tree_;
};

Scene* HdovFixture::scene_ = nullptr;
CellGrid* HdovFixture::grid_ = nullptr;
VisibilityTable* HdovFixture::table_ = nullptr;
PageDevice* HdovFixture::model_device_ = nullptr;
ModelStore* HdovFixture::models_ = nullptr;
HdovTree* HdovFixture::tree_ = nullptr;

TEST_F(HdovFixture, BuilderInvariants) {
  EXPECT_TRUE(tree_->CheckInvariants().ok());
  EXPECT_GT(tree_->num_nodes(), 1u);
  EXPECT_EQ(tree_->fanout(), 8u);
  EXPECT_GT(tree_->s_ratio(), 0.0);
  EXPECT_LT(tree_->s_ratio(), 1.0);
  // Every object has registered models for all LoD levels.
  ASSERT_EQ(tree_->object_models().size(), scene_->size());
  for (ObjectId id = 0; id < scene_->size(); ++id) {
    EXPECT_EQ(tree_->object_models()[id].size(),
              scene_->object(id).lods.num_levels());
  }
}

TEST_F(HdovFixture, InternalLodsCoarserThanChildren) {
  for (size_t n = 0; n < tree_->num_nodes(); ++n) {
    const HdovNode& node = tree_->node(n);
    uint32_t child_triangles = 0;
    if (node.is_leaf) {
      for (const HdovEntry& e : node.entries) {
        child_triangles +=
            scene_->object(static_cast<ObjectId>(e.child))
                .lods.finest()
                .triangle_count;
      }
    } else {
      for (const HdovEntry& e : node.entries) {
        child_triangles += tree_->node(static_cast<size_t>(e.child))
                               .internal_lods.finest()
                               .triangle_count;
      }
    }
    // The finest internal LoD is a strict reduction (up to the minimum
    // triangle clamp).
    EXPECT_LE(node.internal_lods.finest().triangle_count,
              std::max<uint32_t>(16, child_triangles));
  }
}

TEST_F(HdovFixture, PackReadNodeRoundTrip) {
  PageDevice device;
  HdovTree copy = *tree_;  // Pack assigns page ids; use a scratch copy.
  ASSERT_TRUE(copy.Pack(&device).ok());
  for (size_t n = 0; n < copy.num_nodes(); ++n) {
    const HdovNode& node = copy.node(n);
    ASSERT_NE(node.page, kInvalidPage);
    Result<HdovNode> back =
        HdovTree::ReadNode(&device, node.page, node.page_offset);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->is_leaf, node.is_leaf);
    EXPECT_EQ(back->node_id, node.node_id);
    ASSERT_EQ(back->entries.size(), node.entries.size());
    for (size_t i = 0; i < node.entries.size(); ++i) {
      EXPECT_EQ(back->entries[i].mbr, node.entries[i].mbr);
      EXPECT_EQ(back->entries[i].child, node.entries[i].child);
      EXPECT_EQ(back->entries[i].leaf_descendants,
                node.entries[i].leaf_descendants);
    }
    EXPECT_EQ(back->internal_lod_models, node.internal_lod_models);
  }
}

TEST_F(HdovFixture, CellVPagesDovSumAttribute) {
  // Paper attribute 2: an internal entry's DoV equals the sum of the DoVs
  // in the node it points to; same for NVO.
  for (CellId c = 0; c < table_->num_cells(); ++c) {
    CellVPageSet set = ComputeCellVPages(*tree_, table_->cell(c));
    ASSERT_EQ(set.pages.size(), tree_->num_nodes());
    for (size_t n = 0; n < tree_->num_nodes(); ++n) {
      const HdovNode& node = tree_->node(n);
      const VPage& page = set.pages[n];
      if (page.empty()) {
        continue;
      }
      ASSERT_EQ(page.size(), node.entries.size());
      if (node.is_leaf) {
        for (size_t i = 0; i < page.size(); ++i) {
          float truth = table_->cell(c).DovOf(
              static_cast<ObjectId>(node.entries[i].child));
          EXPECT_FLOAT_EQ(page[i].dov, truth);
          EXPECT_EQ(page[i].nvo, truth > 0.0f ? 1u : 0u);
        }
      } else {
        for (size_t i = 0; i < page.size(); ++i) {
          const VPage& child_page =
              set.pages[static_cast<size_t>(node.entries[i].child)];
          if (child_page.empty()) {
            EXPECT_FLOAT_EQ(page[i].dov, 0.0f);
            EXPECT_EQ(page[i].nvo, 0u);
          } else {
            EXPECT_NEAR(page[i].dov, VPageDovSum(child_page), 1e-4);
            EXPECT_EQ(page[i].nvo, VPageNvoSum(child_page));
          }
        }
      }
    }
  }
}

TEST_F(HdovFixture, VisibleNodeHasVisibleChild) {
  // Paper attribute 3.
  CellVPageSet set = ComputeCellVPages(*tree_, table_->cell(0));
  for (size_t n = 0; n < tree_->num_nodes(); ++n) {
    const HdovNode& node = tree_->node(n);
    const VPage& page = set.pages[n];
    if (page.empty() || node.is_leaf) {
      continue;
    }
    bool has_visible_child = false;
    for (const HdovEntry& e : node.entries) {
      if (!set.pages[static_cast<size_t>(e.child)].empty()) {
        has_visible_child = true;
      }
    }
    EXPECT_TRUE(has_visible_child);
  }
}

class StoreSchemes : public HdovFixture,
                     public ::testing::WithParamInterface<StorageScheme> {};

TEST_P(StoreSchemes, ReturnsExactVPages) {
  PageDevice device;
  Result<std::unique_ptr<VisibilityStore>> store =
      BuildStore(GetParam(), *tree_, *table_, &device);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->name(), StorageSchemeName(GetParam()));

  for (CellId c = 0; c < table_->num_cells(); ++c) {
    CellVPageSet expected = ComputeCellVPages(*tree_, table_->cell(c));
    ASSERT_TRUE((*store)->BeginCell(c).ok());
    for (size_t n = 0; n < tree_->num_nodes(); ++n) {
      VPage page;
      bool visible = false;
      ASSERT_TRUE(
          (*store)->GetVPage(static_cast<uint32_t>(n), &page, &visible).ok());
      const VPage& truth = expected.pages[n];
      EXPECT_EQ(visible, !truth.empty()) << "cell " << c << " node " << n;
      if (!truth.empty()) {
        ASSERT_EQ(page.size(), truth.size());
        for (size_t i = 0; i < truth.size(); ++i) {
          EXPECT_FLOAT_EQ(page[i].dov, truth[i].dov);
          EXPECT_EQ(page[i].nvo, truth[i].nvo);
        }
      }
    }
  }
}

TEST_P(StoreSchemes, RequiresBeginCell) {
  PageDevice device;
  Result<std::unique_ptr<VisibilityStore>> store =
      BuildStore(GetParam(), *tree_, *table_, &device);
  ASSERT_TRUE(store.ok());
  VPage page;
  bool visible = false;
  EXPECT_EQ((*store)->GetVPage(0, &page, &visible).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE((*store)->BeginCell(table_->num_cells() + 5).ok());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, StoreSchemes,
                         ::testing::Values(StorageScheme::kHorizontal,
                                           StorageScheme::kVertical,
                                           StorageScheme::kIndexedVertical,
                                           StorageScheme::kBitmapVertical));

TEST(StorageCostTest, Table2Ordering) {
  // Table 2's shape: horizontal >> vertical >= indexed-vertical. This
  // needs a city big enough that a cell hides a good share of the nodes
  // (N_vnode < N_node), so it builds its own larger scene.
  CityOptions copt;
  copt.mode = GeometryMode::kProxy;
  copt.blocks_x = 8;
  copt.blocks_y = 8;
  Result<Scene> city = GenerateCity(copt);
  ASSERT_TRUE(city.ok());
  CellGridOptions gopt;
  gopt.cells_x = 8;
  gopt.cells_y = 8;
  Result<CellGrid> grid = CellGrid::Build(city->bounds(), gopt);
  ASSERT_TRUE(grid.ok());
  PrecomputeOptions popt;
  popt.dov.cubemap.face_resolution = 16;
  popt.samples_per_cell = 1;
  Result<VisibilityTable> table = PrecomputeVisibility(*city, *grid, popt);
  ASSERT_TRUE(table.ok());

  PageDevice model_device;
  ModelStore models(&model_device);
  HdovBuildOptions bopt;
  bopt.rtree.max_entries = 8;
  bopt.rtree.min_entries = 3;
  Result<HdovTree> tree = HdovBuilder::Build(*city, &models, bopt);
  ASSERT_TRUE(tree.ok());

  PageDevice dev_h, dev_v, dev_iv;
  auto h = BuildStore(StorageScheme::kHorizontal, *tree, *table, &dev_h);
  auto v = BuildStore(StorageScheme::kVertical, *tree, *table, &dev_v);
  auto iv =
      BuildStore(StorageScheme::kIndexedVertical, *tree, *table, &dev_iv);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(iv.ok());
  EXPECT_GT((*h)->SizeBytes(), (*v)->SizeBytes());
  EXPECT_GT((*h)->SizeBytes(), (*iv)->SizeBytes());
  // Indexed-vertical is at worst marginally bigger than vertical (when
  // almost everything is visible) and smaller otherwise.
  EXPECT_LE((*iv)->SizeBytes(), (*v)->SizeBytes() + 2 * 4096u);
  EXPECT_GT((*iv)->SizeBytes(), 0u);
}

TEST_F(HdovFixture, SearchZeroEtaRetrievesAllVisibleObjects) {
  PageDevice device;
  auto store =
      BuildStore(StorageScheme::kIndexedVertical, *tree_, *table_, &device);
  ASSERT_TRUE(store.ok());
  HdovSearcher searcher(tree_, scene_, models_, nullptr);
  SearchOptions opt;
  opt.eta = 0.0;
  for (CellId c = 0; c < table_->num_cells(); ++c) {
    std::vector<RetrievedLod> result;
    ASSERT_TRUE(searcher.Search(store->get(), c, opt, &result).ok());
    std::set<uint64_t> retrieved;
    for (const RetrievedLod& lod : result) {
      EXPECT_EQ(lod.kind, RetrievedLod::Kind::kObject);
      retrieved.insert(lod.owner);
      // Eq. 6 LoD selection at the true DoV.
      const Object& obj = scene_->object(static_cast<ObjectId>(lod.owner));
      double k = std::min(static_cast<double>(lod.dov) / kMaxDov, 1.0);
      EXPECT_EQ(lod.lod_level, obj.lods.LevelForBlend(k));
    }
    // Exactly the cell's visible set.
    const CellVisibility& truth = table_->cell(c);
    ASSERT_EQ(retrieved.size(), truth.ids.size()) << "cell " << c;
    for (ObjectId id : truth.ids) {
      EXPECT_TRUE(retrieved.count(id)) << "missing object " << id;
    }
  }
}

TEST_F(HdovFixture, SearchCoversEveryVisibleObject) {
  // Every truly visible object must be represented: either by its own LoD
  // or by an internal LoD of an ancestor node.
  PageDevice device;
  auto store =
      BuildStore(StorageScheme::kIndexedVertical, *tree_, *table_, &device);
  ASSERT_TRUE(store.ok());
  HdovSearcher searcher(tree_, scene_, models_, nullptr);

  // Object -> covering nodes map.
  std::vector<std::vector<size_t>> object_ancestors(scene_->size());
  for (size_t n = 0; n < tree_->num_nodes(); ++n) {
    const HdovNode& node = tree_->node(n);
    if (!node.is_leaf) {
      continue;
    }
    for (const HdovEntry& e : node.entries) {
      object_ancestors[e.child].push_back(n);
    }
  }
  // Parent links.
  std::vector<size_t> parent(tree_->num_nodes(), SIZE_MAX);
  for (size_t n = 0; n < tree_->num_nodes(); ++n) {
    const HdovNode& node = tree_->node(n);
    if (node.is_leaf) {
      continue;
    }
    for (const HdovEntry& e : node.entries) {
      parent[static_cast<size_t>(e.child)] = n;
    }
  }

  for (double eta : {0.0005, 0.002, 0.01}) {
    SearchOptions opt;
    opt.eta = eta;
    for (CellId c = 0; c < table_->num_cells(); ++c) {
      std::vector<RetrievedLod> result;
      ASSERT_TRUE(searcher.Search(store->get(), c, opt, &result).ok());
      std::set<uint64_t> object_lods;
      std::set<uint64_t> internal_nodes;
      for (const RetrievedLod& lod : result) {
        if (lod.kind == RetrievedLod::Kind::kObject) {
          object_lods.insert(lod.owner);
        } else {
          internal_nodes.insert(lod.owner);
        }
      }
      for (ObjectId id : table_->cell(c).ids) {
        bool covered = object_lods.count(id) > 0;
        // Walk ancestors.
        size_t n = object_ancestors[id].empty() ? SIZE_MAX
                                                : object_ancestors[id][0];
        while (!covered && n != SIZE_MAX) {
          covered = internal_nodes.count(n) > 0;
          n = parent[n];
        }
        EXPECT_TRUE(covered)
            << "object " << id << " uncovered at eta " << eta;
      }
    }
  }
}

TEST_F(HdovFixture, LargerEtaNeverRetrievesMoreRepresentations) {
  // With the Eq. 4 heuristic disabled, a larger eta terminates descents at
  // the same or higher nodes, so the result set can only shrink. (Bytes
  // are deliberately NOT monotone — an internal LoD can outweigh a handful
  // of barely visible descendants, which is exactly why Eq. 4 exists.)
  PageDevice device;
  auto store =
      BuildStore(StorageScheme::kIndexedVertical, *tree_, *table_, &device);
  ASSERT_TRUE(store.ok());
  HdovSearcher searcher(tree_, scene_, models_, nullptr);
  for (CellId c = 0; c < table_->num_cells(); ++c) {
    size_t previous_count = SIZE_MAX;
    for (double eta : {0.0, 0.0005, 0.002, 0.008, 0.05}) {
      SearchOptions opt;
      opt.eta = eta;
      opt.heuristic = TerminationHeuristic::kNone;  // Pure eta semantics.
      std::vector<RetrievedLod> result;
      ASSERT_TRUE(searcher.Search(store->get(), c, opt, &result).ok());
      EXPECT_LE(result.size(), previous_count)
          << "cell " << c << " eta " << eta;
      previous_count = result.size();
    }
  }
}

TEST_F(HdovFixture, LargeEtaTriggersInternalTerminations) {
  PageDevice device;
  auto store =
      BuildStore(StorageScheme::kIndexedVertical, *tree_, *table_, &device);
  ASSERT_TRUE(store.ok());
  HdovSearcher searcher(tree_, scene_, models_, nullptr);
  SearchOptions opt;
  opt.eta = 0.05;
  uint64_t terminations = 0;
  for (CellId c = 0; c < table_->num_cells(); ++c) {
    std::vector<RetrievedLod> result;
    SearchStats stats;
    ASSERT_TRUE(searcher.Search(store->get(), c, opt, &result, &stats).ok());
    terminations += stats.internal_terminations;
  }
  EXPECT_GT(terminations, 0u);
}

TEST_F(HdovFixture, SearchStatsAreConsistent) {
  PageDevice device;
  auto store =
      BuildStore(StorageScheme::kIndexedVertical, *tree_, *table_, &device);
  ASSERT_TRUE(store.ok());
  HdovSearcher searcher(tree_, scene_, models_, nullptr);
  SearchOptions opt;
  opt.eta = 0.002;
  std::vector<RetrievedLod> result;
  SearchStats stats;
  ASSERT_TRUE(searcher.Search(store->get(), 0, opt, &result, &stats).ok());
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_EQ(stats.nodes_visited, stats.vpages_fetched);
  EXPECT_LE(stats.nodes_visited, tree_->num_nodes());
}

TEST_F(HdovFixture, NodePageBillingChargesTreeDevice) {
  PageDevice tree_device;
  HdovTree copy = *tree_;
  ASSERT_TRUE(copy.Pack(&tree_device).ok());
  PageDevice store_device;
  auto store = BuildStore(StorageScheme::kIndexedVertical, copy, *table_,
                          &store_device);
  ASSERT_TRUE(store.ok());
  tree_device.ResetStats();
  HdovSearcher searcher(&copy, scene_, models_, &tree_device);
  SearchOptions opt;
  opt.eta = 0.001;
  std::vector<RetrievedLod> result;
  SearchStats stats;
  ASSERT_TRUE(searcher.Search(store->get(), 1, opt, &result, &stats).ok());
  // Several nodes share a page, so the traversal reads at most one page
  // per visited node and at least one page overall.
  EXPECT_GT(tree_device.stats().page_reads, 0u);
  EXPECT_LE(tree_device.stats().page_reads, stats.nodes_visited);
}

TEST_F(HdovFixture, CostModelHeuristicCoversAndSavesTriangles) {
  PageDevice device;
  auto store =
      BuildStore(StorageScheme::kIndexedVertical, *tree_, *table_, &device);
  ASSERT_TRUE(store.ok());
  HdovSearcher searcher(tree_, scene_, models_, nullptr);

  uint64_t eq4_triangles = 0;
  uint64_t cost_triangles = 0;
  for (CellId c = 0; c < table_->num_cells(); ++c) {
    for (TerminationHeuristic heuristic :
         {TerminationHeuristic::kEq4, TerminationHeuristic::kCostModel}) {
      SearchOptions opt;
      opt.eta = 0.01;
      opt.heuristic = heuristic;
      std::vector<RetrievedLod> result;
      ASSERT_TRUE(searcher.Search(store->get(), c, opt, &result).ok());
      uint64_t triangles = 0;
      for (const RetrievedLod& lod : result) {
        triangles += lod.triangle_count;
      }
      (heuristic == TerminationHeuristic::kEq4 ? eq4_triangles
                                               : cost_triangles) += triangles;
    }
  }
  // The cost model only terminates when the internal LoD is estimated
  // lighter, so aggregate triangles cannot exceed Eq. 4's by much.
  EXPECT_LE(cost_triangles, eq4_triangles + eq4_triangles / 10);
}

TEST_F(HdovFixture, SubtreeTriangleSumsMatchScene) {
  const HdovNode& root = tree_->node(tree_->root_index());
  uint64_t total = 0;
  for (const HdovEntry& e : root.entries) {
    total += e.subtree_triangles;
  }
  EXPECT_EQ(total, scene_->TotalFinestTriangles());
}

TEST_F(HdovFixture, PrioritizeRetrievalOrdersFrustumFirst) {
  PageDevice device;
  auto store =
      BuildStore(StorageScheme::kIndexedVertical, *tree_, *table_, &device);
  ASSERT_TRUE(store.ok());
  HdovSearcher searcher(tree_, scene_, models_, nullptr);
  SearchOptions opt;
  opt.eta = 0.001;
  std::vector<RetrievedLod> result;
  Vec3 eye = scene_->bounds().Center();
  eye.z = 1.7;
  CellId cell = grid_->ClampedCellForPoint(eye);
  ASSERT_TRUE(searcher.Search(store->get(), cell, opt, &result).ok());
  ASSERT_GT(result.size(), 2u);

  Frustum frustum(eye, Vec3(1, 0, 0), FrustumOptions{});
  std::vector<RetrievedLod> ordered = result;
  PrioritizeRetrieval(frustum, *tree_, *scene_, &ordered);

  // Same multiset of representations.
  auto key = [](const RetrievedLod& lod) {
    return std::make_pair(static_cast<int>(lod.kind), lod.owner);
  };
  std::multiset<std::pair<int, uint64_t>> before, after;
  for (const RetrievedLod& lod : result) before.insert(key(lod));
  for (const RetrievedLod& lod : ordered) after.insert(key(lod));
  EXPECT_EQ(before, after);

  // All in-frustum representations precede all out-of-frustum ones, and
  // the in-frustum prefix is sorted by descending DoV.
  auto in_frustum = [&](const RetrievedLod& lod) {
    const Aabb& mbr =
        lod.kind == RetrievedLod::Kind::kObject
            ? scene_->object(static_cast<ObjectId>(lod.owner)).mbr
            : tree_->node(static_cast<size_t>(lod.owner)).BoundingBox();
    return frustum.IntersectsBox(mbr);
  };
  bool seen_outside = false;
  float last_dov = std::numeric_limits<float>::infinity();
  for (const RetrievedLod& lod : ordered) {
    if (in_frustum(lod)) {
      EXPECT_FALSE(seen_outside) << "in-frustum entry after outside entry";
      EXPECT_LE(lod.dov, last_dov + 1e-7f);
      last_dov = lod.dov;
    } else {
      seen_outside = true;
    }
  }
}

TEST_F(HdovFixture, PrioritizeRetrievalIsStableOnTies) {
  // Duplicated representations of one object carry identical sort keys
  // (same MBR, same DoV) whichever way the frustum faces; a stable
  // prioritization must keep their input order. lod_level marks it.
  auto make_ties = [&](uint64_t object) {
    std::vector<RetrievedLod> result;
    for (uint32_t marker = 0; marker < 4; ++marker) {
      RetrievedLod lod;
      lod.kind = RetrievedLod::Kind::kObject;
      lod.owner = object;
      lod.lod_level = marker;
      lod.dov = 0.25f;
      result.push_back(lod);
    }
    return result;
  };
  const Aabb mbr = scene_->object(0).mbr;
  const Vec3 center = mbr.Center();
  // Facing the object (everything in-frustum, DoV ties) and facing away
  // (everything out-of-frustum, distance ties): both groups must preserve
  // input order.
  for (double facing : {1.0, -1.0}) {
    SCOPED_TRACE(facing > 0 ? "in-frustum ties" : "out-of-frustum ties");
    Vec3 eye = center - Vec3(facing * (mbr.Extent().x + 50.0), 0, 0);
    eye.z = 1.7;
    Frustum frustum(eye, Vec3(1, 0, 0), FrustumOptions{});
    std::vector<RetrievedLod> ordered = make_ties(0);
    PrioritizeRetrieval(frustum, *tree_, *scene_, &ordered);
    ASSERT_EQ(ordered.size(), 4u);
    for (uint32_t marker = 0; marker < 4; ++marker) {
      EXPECT_EQ(ordered[marker].lod_level, marker);
    }
  }
}

TEST_F(HdovFixture, FullPersistenceRoundTrip) {
  // Pack + manifest -> device image file -> reload -> identical search
  // results through the restored tree.
  const std::string path = ::testing::TempDir() + "/hdov_tree_image";
  PageDevice device;
  HdovTree packed = *tree_;
  ASSERT_TRUE(packed.Pack(&device).ok());
  PagedFile file(&device);
  Result<Extent> manifest = packed.WriteManifest(&file);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_TRUE(device.SaveToFile(path).ok());

  PageDevice restored_device;
  ASSERT_TRUE(restored_device.LoadFromFile(path).ok());
  PagedFile restored_file(&restored_device);
  Result<HdovTree> restored =
      HdovTree::LoadFrom(&restored_device, &restored_file, *manifest);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_nodes(), tree_->num_nodes());
  EXPECT_EQ(restored->fanout(), tree_->fanout());
  EXPECT_EQ(restored->object_models(), tree_->object_models());

  // Search equivalence on the restored tree.
  PageDevice store_device;
  auto store = BuildStore(StorageScheme::kIndexedVertical, *restored,
                          *table_, &store_device);
  ASSERT_TRUE(store.ok());
  PageDevice store_device2;
  auto store2 = BuildStore(StorageScheme::kIndexedVertical, *tree_, *table_,
                           &store_device2);
  ASSERT_TRUE(store2.ok());
  HdovSearcher restored_searcher(&*restored, scene_, models_, nullptr);
  HdovSearcher original_searcher(tree_, scene_, models_, nullptr);
  SearchOptions opt;
  opt.eta = 0.002;
  for (CellId c = 0; c < table_->num_cells(); ++c) {
    std::vector<RetrievedLod> a, b;
    ASSERT_TRUE(restored_searcher.Search(store->get(), c, opt, &a).ok());
    ASSERT_TRUE(original_searcher.Search(store2->get(), c, opt, &b).ok());
    ASSERT_EQ(a.size(), b.size()) << "cell " << c;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].owner, b[i].owner);
      EXPECT_EQ(a[i].lod_level, b[i].lod_level);
      EXPECT_EQ(a[i].model, b[i].model);
    }
  }
}

TEST_F(HdovFixture, BulkLoadedTreeSearchesEquivalently) {
  // The same scene built via STR bulk loading retrieves the same object
  // set at eta = 0 (different topology, same semantics).
  PageDevice model_device;
  ModelStore models(&model_device);
  HdovBuildOptions bopt;
  bopt.rtree.max_entries = 8;
  bopt.rtree.min_entries = 3;
  bopt.bulk_load = true;
  Result<HdovTree> bulk = HdovBuilder::Build(*scene_, &models, bopt);
  ASSERT_TRUE(bulk.ok()) << bulk.status().ToString();
  ASSERT_TRUE(bulk->CheckInvariants().ok());

  PageDevice store_device;
  auto store = BuildStore(StorageScheme::kIndexedVertical, *bulk, *table_,
                          &store_device);
  ASSERT_TRUE(store.ok());
  HdovSearcher searcher(&*bulk, scene_, &models, nullptr);
  SearchOptions opt;
  opt.eta = 0.0;
  for (CellId c = 0; c < table_->num_cells(); ++c) {
    std::vector<RetrievedLod> result;
    ASSERT_TRUE(searcher.Search(store->get(), c, opt, &result).ok());
    std::set<uint64_t> retrieved;
    for (const RetrievedLod& lod : result) {
      retrieved.insert(lod.owner);
    }
    EXPECT_EQ(retrieved.size(), table_->cell(c).ids.size());
    for (ObjectId id : table_->cell(c).ids) {
      EXPECT_TRUE(retrieved.count(id));
    }
  }
}

TEST(HdovBuilderTest, FullGeometryBuildsInternalMeshes) {
  CityOptions copt;
  copt.mode = GeometryMode::kFull;
  copt.blocks_x = 2;
  copt.blocks_y = 2;
  copt.park_fraction = 0.0;
  copt.facade_columns = 3;
  copt.facade_rows = 4;
  Result<Scene> city = GenerateCity(copt);
  ASSERT_TRUE(city.ok());

  PageDevice device;
  ModelStore models(&device);
  HdovBuildOptions bopt;
  bopt.rtree.max_entries = 4;
  bopt.rtree.min_entries = 2;
  bopt.build_internal_meshes = true;
  Result<HdovTree> tree = HdovBuilder::Build(*city, &models, bopt);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  ASSERT_TRUE(tree->CheckInvariants().ok());

  for (size_t n = 0; n < tree->num_nodes(); ++n) {
    const HdovNode& node = tree->node(n);
    // Every node carries real internal LoD meshes that are coarser than
    // the subtree they stand in for.
    uint64_t subtree = 0;
    for (const HdovEntry& e : node.entries) {
      subtree += e.subtree_triangles;
    }
    for (size_t level = 0; level < node.internal_lods.num_levels();
         ++level) {
      const LodLevel& lod = node.internal_lods.level(level);
      EXPECT_FALSE(lod.mesh.empty()) << "node " << n << " level " << level;
      EXPECT_TRUE(lod.mesh.Validate().ok());
      EXPECT_EQ(lod.triangle_count, lod.mesh.triangle_count());
      EXPECT_LT(lod.triangle_count, subtree);
      // The internal LoD geometrically covers its subtree's extent
      // (allowing simplification slack of 20% per axis).
      Aabb node_box = node.BoundingBox();
      Aabb lod_box = lod.mesh.BoundingBox();
      Vec3 slack = node_box.Extent() * 0.2 + Vec3(1, 1, 1);
      EXPECT_GE(lod_box.min.x, node_box.min.x - slack.x);
      EXPECT_LE(lod_box.max.x, node_box.max.x + slack.x);
      EXPECT_GE(lod_box.min.z, node_box.min.z - slack.z);
      EXPECT_LE(lod_box.max.z, node_box.max.z + slack.z);
    }
  }
}

TEST(HdovBuilderTest, RejectsEmptyScene) {
  Scene empty;
  PageDevice device;
  ModelStore models(&device);
  EXPECT_TRUE(HdovBuilder::Build(empty, &models, HdovBuildOptions())
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace hdov
