// FlatHdovTree / VPageBitmapIndex property suite: the packed layout must
// preserve every header, entry and LoD of the source tree (including after
// a manifest round trip), and the bitmap index's rank/select answers must
// be exact at every word boundary.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "hdov/builder.h"
#include "hdov/flat_tree.h"
#include "hdov/hdov_tree.h"
#include "scene/city_generator.h"

namespace hdov {
namespace {

// ---------------------------------------------------------------------------
// VPageBitmapIndex rank/select unit tests.
// ---------------------------------------------------------------------------

TEST(VPageBitmapIndexTest, EmptyUniverse) {
  VPageBitmapIndex index;
  index.Rebuild(0, {}, {});
  EXPECT_EQ(index.num_nodes(), 0u);
  EXPECT_EQ(index.visible_count(), 0u);
  EXPECT_FALSE(index.Test(0));
  uint64_t slot = 0;
  EXPECT_FALSE(index.Lookup(0, &slot));
  EXPECT_EQ(index.NextVisible(0), VPageBitmapIndex::kNotFound);
}

TEST(VPageBitmapIndexTest, AllInvisible) {
  VPageBitmapIndex index;
  index.Rebuild(130, {}, {});
  EXPECT_EQ(index.visible_count(), 0u);
  for (uint32_t n : {0u, 63u, 64u, 129u}) {
    EXPECT_FALSE(index.Test(n));
    EXPECT_EQ(index.Rank(n), 0u);
  }
  EXPECT_EQ(index.NextVisible(0), VPageBitmapIndex::kNotFound);
  EXPECT_EQ(index.NextVisible(129), VPageBitmapIndex::kNotFound);
}

TEST(VPageBitmapIndexTest, WordBoundaryBits) {
  // Bits straddling the 64-bit word edges: 0, 62/63/64/65 and the last two
  // ids of a 129-node universe (128 starts the third word).
  const std::vector<uint32_t> nodes = {0, 62, 63, 64, 65, 127, 128};
  std::vector<uint64_t> slots;
  for (size_t i = 0; i < nodes.size(); ++i) {
    slots.push_back(100 + 7 * i);  // Arbitrary, distinct record slots.
  }
  VPageBitmapIndex index;
  index.Rebuild(129, nodes, slots);
  EXPECT_EQ(index.num_nodes(), 129u);
  EXPECT_EQ(index.visible_count(), nodes.size());

  // Membership + slot recovery, exact per-id rank.
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_TRUE(index.Test(nodes[i])) << nodes[i];
    EXPECT_EQ(index.Rank(nodes[i]), i) << nodes[i];
    uint64_t slot = 0;
    ASSERT_TRUE(index.Lookup(nodes[i], &slot)) << nodes[i];
    EXPECT_EQ(slot, slots[i]) << nodes[i];
  }
  // Holes around the boundaries answer negative without disturbing rank.
  for (uint32_t hole : {1u, 61u, 66u, 126u}) {
    EXPECT_FALSE(index.Test(hole));
    uint64_t slot = 99;
    EXPECT_FALSE(index.Lookup(hole, &slot));
    EXPECT_EQ(slot, 99u);  // Untouched on a miss.
  }
  EXPECT_EQ(index.Rank(1), 1u);    // Only node 0 below.
  EXPECT_EQ(index.Rank(64), 3u);   // 0, 62, 63.
  EXPECT_EQ(index.Rank(128), 6u);  // All but the last.
  EXPECT_EQ(index.Rank(4096), index.visible_count());  // Past the end.

  // NextVisible walks exactly the set, in order.
  uint32_t cursor = 0;
  for (uint32_t expected : nodes) {
    EXPECT_EQ(index.NextVisible(cursor), expected);
    cursor = expected + 1;
  }
  EXPECT_EQ(index.NextVisible(cursor), VPageBitmapIndex::kNotFound);
  // From a visible id, NextVisible returns that id itself.
  EXPECT_EQ(index.NextVisible(64), 64u);
  EXPECT_EQ(index.NextVisible(128), 128u);
}

TEST(VPageBitmapIndexTest, SixtyThreeAndSixtyFourNodeUniverses) {
  for (uint32_t universe : {63u, 64u, 65u}) {
    std::vector<uint32_t> nodes;
    std::vector<uint64_t> slots;
    for (uint32_t n = 0; n < universe; ++n) {
      nodes.push_back(n);
      slots.push_back(3ull * n);
    }
    VPageBitmapIndex index;
    index.Rebuild(universe, nodes, slots);
    EXPECT_EQ(index.visible_count(), universe);
    for (uint32_t n = 0; n < universe; ++n) {
      EXPECT_EQ(index.Rank(n), n);
      uint64_t slot = 0;
      ASSERT_TRUE(index.Lookup(n, &slot));
      EXPECT_EQ(slot, 3ull * n);
      EXPECT_EQ(index.NextVisible(n), n);
    }
    EXPECT_FALSE(index.Test(universe));
    EXPECT_EQ(index.NextVisible(universe), VPageBitmapIndex::kNotFound);
  }
}

TEST(VPageBitmapIndexTest, SummarySkipsEmptySpans) {
  // A 64*64-node span of zero words is exactly one summary word; the
  // select scan must hop it in one probe and still land on the right bit.
  const std::vector<uint32_t> nodes = {5, 4100, 16391};
  const std::vector<uint64_t> slots = {50, 51, 52};
  VPageBitmapIndex index;
  index.Rebuild(20000, nodes, slots);
  EXPECT_EQ(index.NextVisible(0), 5u);
  EXPECT_EQ(index.NextVisible(6), 4100u);
  EXPECT_EQ(index.NextVisible(4101), 16391u);
  EXPECT_EQ(index.NextVisible(16392), VPageBitmapIndex::kNotFound);
  EXPECT_EQ(index.Rank(16391), 2u);
  uint64_t slot = 0;
  ASSERT_TRUE(index.Lookup(16391, &slot));
  EXPECT_EQ(slot, 52u);
}

TEST(VPageBitmapIndexTest, LastBitOfExactWordMultiple) {
  VPageBitmapIndex index;
  index.Rebuild(4096, {4095}, {9});
  EXPECT_EQ(index.NextVisible(0), 4095u);
  EXPECT_EQ(index.NextVisible(4095), 4095u);
  uint64_t slot = 0;
  ASSERT_TRUE(index.Lookup(4095, &slot));
  EXPECT_EQ(slot, 9u);
  EXPECT_EQ(index.Rank(4095), 0u);
}

TEST(VPageBitmapIndexTest, RebuildReplacesPreviousCell) {
  VPageBitmapIndex index;
  index.Rebuild(200, {10, 20, 30}, {0, 1, 2});
  index.Rebuild(200, {150}, {7});
  EXPECT_FALSE(index.Test(10));
  EXPECT_TRUE(index.Test(150));
  EXPECT_EQ(index.visible_count(), 1u);
  uint64_t slot = 0;
  ASSERT_TRUE(index.Lookup(150, &slot));
  EXPECT_EQ(slot, 7u);
  index.Clear();
  EXPECT_EQ(index.num_nodes(), 0u);
  EXPECT_FALSE(index.Test(150));
  EXPECT_EQ(index.NextVisible(0), VPageBitmapIndex::kNotFound);
}

// ---------------------------------------------------------------------------
// FlatHdovTree compile property tests against a real built tree.
// ---------------------------------------------------------------------------

class FlatTreeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityOptions copt;
    copt.mode = GeometryMode::kProxy;
    copt.blocks_x = 4;
    copt.blocks_y = 4;
    scene_ = new Scene(std::move(*GenerateCity(copt)));

    model_device_ = new PageDevice();
    models_ = new ModelStore(model_device_);
    HdovBuildOptions bopt;
    bopt.rtree.max_entries = 8;
    bopt.rtree.min_entries = 3;
    Result<HdovTree> tree = HdovBuilder::Build(*scene_, models_, bopt);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = new HdovTree(std::move(*tree));

    Result<FlatHdovTree> flat = FlatHdovTree::Compile(*tree_);
    ASSERT_TRUE(flat.ok()) << flat.status().ToString();
    flat_ = new FlatHdovTree(std::move(*flat));
  }

  static void TearDownTestSuite() {
    delete flat_;
    delete tree_;
    delete models_;
    delete model_device_;
    delete scene_;
  }

  static Scene* scene_;
  static PageDevice* model_device_;
  static ModelStore* models_;
  static HdovTree* tree_;
  static FlatHdovTree* flat_;
};

Scene* FlatTreeFixture::scene_ = nullptr;
PageDevice* FlatTreeFixture::model_device_ = nullptr;
ModelStore* FlatTreeFixture::models_ = nullptr;
HdovTree* FlatTreeFixture::tree_ = nullptr;
FlatHdovTree* FlatTreeFixture::flat_ = nullptr;

// Every field of every node of `flat` equals its counterpart in `tree`.
void ExpectFlatMatchesTree(const FlatHdovTree& flat, const HdovTree& tree) {
  ASSERT_EQ(flat.num_nodes(), tree.num_nodes());
  EXPECT_EQ(flat.root_index(), tree.root_index());
  EXPECT_EQ(flat.fanout(), tree.fanout());
  EXPECT_DOUBLE_EQ(flat.s_ratio(), tree.s_ratio());
  EXPECT_EQ(flat.height(), tree.height());
  EXPECT_EQ(flat.num_objects(), tree.object_models().size());

  size_t total_entries = 0;
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto n = static_cast<uint32_t>(i);
    const HdovNode& node = tree.node(i);
    EXPECT_EQ(flat.is_leaf(n), node.is_leaf);
    EXPECT_EQ(flat.level(n), node.level);
    EXPECT_EQ(flat.page(n), node.page);
    ASSERT_EQ(flat.entry_count(n), node.entries.size());
    for (size_t e = 0; e < node.entries.size(); ++e) {
      const uint32_t slot = flat.entry_begin(n) + static_cast<uint32_t>(e);
      EXPECT_EQ(flat.EntryMbr(slot), node.entries[e].mbr);
      EXPECT_EQ(flat.entry_child()[slot], node.entries[e].child);
      EXPECT_EQ(flat.entry_leaf_descendants()[slot],
                node.entries[e].leaf_descendants);
      EXPECT_EQ(flat.entry_subtree_triangles()[slot],
                node.entries[e].subtree_triangles);
    }
    total_entries += node.entries.size();

    ASSERT_EQ(flat.lod_count(n), node.internal_lods.num_levels());
    for (size_t l = 0; l < node.internal_lods.num_levels(); ++l) {
      const uint32_t slot = flat.lod_begin(n) + static_cast<uint32_t>(l);
      EXPECT_EQ(flat.lod_model()[slot], node.internal_lod_models[l]);
      EXPECT_EQ(flat.lod_triangles()[slot],
                node.internal_lods.level(l).triangle_count);
      EXPECT_EQ(flat.lod_bytes()[slot], node.internal_lods.level(l).byte_size);
    }
    EXPECT_EQ(flat.NodeBoundingBox(n), node.BoundingBox());
  }
  EXPECT_EQ(flat.num_entries(), total_entries);

  for (size_t o = 0; o < tree.object_models().size(); ++o) {
    const std::vector<ModelId>& chain = tree.object_models()[o];
    for (size_t l = 0; l < chain.size(); ++l) {
      EXPECT_EQ(flat.object_model(o, static_cast<uint32_t>(l)), chain[l]);
    }
  }
}

TEST_F(FlatTreeFixture, CompilePreservesEveryField) {
  ExpectFlatMatchesTree(*flat_, *tree_);
}

TEST_F(FlatTreeFixture, EntryArenaIsDfsPacked) {
  // Node ids are DFS preorder, so walking the manifest order must sweep
  // both arenas front to back with no gaps.
  uint32_t next_entry = 0;
  uint32_t next_lod = 0;
  for (size_t index : tree_->dfs_order()) {
    const auto n = static_cast<uint32_t>(index);
    EXPECT_EQ(flat_->entry_begin(n), next_entry);
    EXPECT_EQ(flat_->lod_begin(n), next_lod);
    next_entry += flat_->entry_count(n);
    next_lod += flat_->lod_count(n);
  }
  EXPECT_EQ(next_entry, flat_->num_entries());
  EXPECT_EQ(next_lod, flat_->lod_model().size());
}

TEST_F(FlatTreeFixture, InternalLevelForBlendMatchesLodChain) {
  for (size_t i = 0; i < tree_->num_nodes(); ++i) {
    const auto n = static_cast<uint32_t>(i);
    for (double k : {-0.5, 0.0, 0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.999, 1.0,
                     1.5}) {
      EXPECT_EQ(flat_->InternalLevelForBlend(n, k),
                tree_->node(i).internal_lods.LevelForBlend(
                    std::clamp(k, 0.0, 1.0)))
          << "node " << n << " k " << k;
    }
  }
}

TEST_F(FlatTreeFixture, LevelBitmapsPartitionTheNodes) {
  uint32_t total = 0;
  for (int level = 0; level < flat_->height(); ++level) {
    total += flat_->CountAtLevel(level);
    const std::vector<uint64_t>& words = flat_->level_nodes(level);
    for (size_t i = 0; i < flat_->num_nodes(); ++i) {
      const bool set = (words[i >> 6] & (1ull << (i & 63))) != 0;
      EXPECT_EQ(set, flat_->level(static_cast<uint32_t>(i)) == level)
          << "node " << i << " level " << level;
    }
  }
  EXPECT_EQ(total, flat_->num_nodes());
  // Exactly one root at the top level.
  EXPECT_EQ(flat_->CountAtLevel(flat_->height() - 1), 1u);
}

TEST_F(FlatTreeFixture, CheckInvariantsPasses) {
  EXPECT_TRUE(flat_->CheckInvariants().ok());
}

TEST_F(FlatTreeFixture, ManifestRoundTripCompilesIdentically) {
  // Pack (assigning real page ids) -> manifest -> restore -> compile; the
  // two flat trees must agree array for array.
  PageDevice device;
  HdovTree packed = *tree_;
  ASSERT_TRUE(packed.Pack(&device).ok());
  Result<FlatHdovTree> a = FlatHdovTree::Compile(packed);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  std::string manifest;
  ASSERT_TRUE(packed.EncodeManifest(&manifest).ok());
  Result<HdovTree> restored = HdovTree::FromManifest(&device, manifest);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  Result<FlatHdovTree> b = FlatHdovTree::Compile(*restored);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ExpectFlatMatchesTree(*b, packed);
  EXPECT_EQ(a->entry_mbr_lo(), b->entry_mbr_lo());
  EXPECT_EQ(a->entry_mbr_hi(), b->entry_mbr_hi());
  EXPECT_EQ(a->entry_child(), b->entry_child());
  EXPECT_EQ(a->entry_leaf_descendants(), b->entry_leaf_descendants());
  EXPECT_EQ(a->entry_subtree_triangles(), b->entry_subtree_triangles());
  EXPECT_EQ(a->lod_model(), b->lod_model());
  EXPECT_EQ(a->lod_triangles(), b->lod_triangles());
  EXPECT_EQ(a->lod_bytes(), b->lod_bytes());
  for (uint32_t n = 0; n < a->num_nodes(); ++n) {
    EXPECT_EQ(a->page(n), b->page(n));
  }
  EXPECT_TRUE(b->CheckInvariants().ok());
}

TEST(FlatTreeCompileTest, RejectsEmptyTree) {
  EXPECT_TRUE(FlatHdovTree::Compile(HdovTree()).status().IsInvalidArgument());
}

TEST_F(FlatTreeFixture, RejectsCorruptedTrees) {
  // Dangling child index on an internal node.
  {
    HdovTree broken = *tree_;
    bool mutated = false;
    for (size_t i = 0; i < broken.num_nodes() && !mutated; ++i) {
      if (!broken.node(i).is_leaf) {
        broken.mutable_node(i).entries[0].child = broken.num_nodes() + 17;
        mutated = true;
      }
    }
    ASSERT_TRUE(mutated);
    EXPECT_TRUE(FlatHdovTree::Compile(broken).status().IsCorruption());
  }
  // Internal LoD model list out of step with the chain.
  {
    HdovTree broken = *tree_;
    broken.mutable_node(0).internal_lod_models.clear();
    EXPECT_TRUE(FlatHdovTree::Compile(broken).status().IsCorruption());
  }
}

}  // namespace
}  // namespace hdov
