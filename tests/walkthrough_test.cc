#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "scene/city_generator.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/json.h"
#include "telemetry/telemetry.h"
#include "walkthrough/fidelity.h"
#include "walkthrough/frame_loop.h"
#include "walkthrough/naive_system.h"
#include "walkthrough/lodr_system.h"
#include "walkthrough/review_system.h"
#include "walkthrough/visual_system.h"

namespace hdov {
namespace {

class WalkthroughFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityOptions copt;
    copt.mode = GeometryMode::kProxy;
    copt.blocks_x = 4;
    copt.blocks_y = 4;
    scene_ = new Scene(std::move(*GenerateCity(copt)));

    CellGridOptions gopt;
    gopt.cells_x = 4;
    gopt.cells_y = 4;
    grid_ = new CellGrid(std::move(*CellGrid::Build(scene_->bounds(), gopt)));

    PrecomputeOptions popt;
    popt.dov.cubemap.face_resolution = 24;
    popt.samples_per_cell = 1;
    table_ = new VisibilityTable(
        std::move(*PrecomputeVisibility(*scene_, *grid_, popt)));
  }

  static void TearDownTestSuite() {
    delete table_;
    delete grid_;
    delete scene_;
  }

  static std::unique_ptr<VisualSystem> MakeVisual(double eta) {
    VisualOptions opt;
    opt.eta = eta;
    opt.build.rtree.max_entries = 8;
    opt.build.rtree.min_entries = 3;
    Result<std::unique_ptr<VisualSystem>> system =
        VisualSystem::Create(scene_, grid_, table_, opt);
    EXPECT_TRUE(system.ok()) << system.status().ToString();
    return std::move(*system);
  }

  static std::unique_ptr<ReviewSystem> MakeReview(double box) {
    ReviewOptions opt;
    opt.query_box_size = box;
    opt.cache_distance = box * 1.5;
    opt.rtree.max_entries = 8;
    opt.rtree.min_entries = 3;
    Result<std::unique_ptr<ReviewSystem>> system =
        ReviewSystem::Create(scene_, opt);
    EXPECT_TRUE(system.ok()) << system.status().ToString();
    return std::move(*system);
  }

  static std::unique_ptr<NaiveSystem> MakeNaive() {
    Result<std::unique_ptr<NaiveSystem>> system =
        NaiveSystem::Create(scene_, grid_, table_, NaiveOptions());
    EXPECT_TRUE(system.ok()) << system.status().ToString();
    return std::move(*system);
  }

  static Viewpoint CenterViewpoint() {
    Vec3 center = scene_->bounds().Center();
    return Viewpoint{Vec3(center.x, center.y, 1.7), Vec3(1, 0, 0)};
  }

  static Scene* scene_;
  static CellGrid* grid_;
  static VisibilityTable* table_;
};

Scene* WalkthroughFixture::scene_ = nullptr;
CellGrid* WalkthroughFixture::grid_ = nullptr;
VisibilityTable* WalkthroughFixture::table_ = nullptr;

TEST_F(WalkthroughFixture, VisualRenderFrameProducesSaneNumbers) {
  auto visual = MakeVisual(0.001);
  FrameResult frame;
  ASSERT_TRUE(visual->RenderFrame(CenterViewpoint(), &frame).ok());
  EXPECT_GT(frame.frame_time_ms, 0.0);
  EXPECT_GE(frame.frame_time_ms, frame.query_time_ms);
  EXPECT_GT(frame.io_pages, 0u);
  EXPECT_GE(frame.io_pages, frame.light_io_pages);
  EXPECT_GT(frame.rendered_triangles, 0u);
  EXPECT_GT(frame.resident_bytes, 0u);
  EXPECT_FALSE(visual->last_result().empty());
}

TEST_F(WalkthroughFixture, VisualDeltaSearchCutsRepeatIo) {
  auto visual = MakeVisual(0.001);
  FrameResult first, second;
  Viewpoint vp = CenterViewpoint();
  ASSERT_TRUE(visual->RenderFrame(vp, &first).ok());
  ASSERT_TRUE(visual->RenderFrame(vp, &second).ok());
  // The same viewpoint again: the whole model working set is resident.
  EXPECT_EQ(second.models_fetched, 0u);
  EXPECT_LT(second.io_pages, first.io_pages);

  // With delta disabled, everything is re-fetched.
  visual->set_delta_enabled(false);
  FrameResult third;
  ASSERT_TRUE(visual->RenderFrame(vp, &third).ok());
  EXPECT_EQ(third.models_fetched, visual->last_result().size());
}

TEST_F(WalkthroughFixture, VisualResetRuntimeForcesRefetch) {
  auto visual = MakeVisual(0.001);
  Viewpoint vp = CenterViewpoint();
  FrameResult frame;
  ASSERT_TRUE(visual->RenderFrame(vp, &frame).ok());
  visual->ResetRuntime();
  FrameResult again;
  ASSERT_TRUE(visual->RenderFrame(vp, &again).ok());
  EXPECT_GT(again.models_fetched, 0u);
}

TEST_F(WalkthroughFixture, VisualEtaTradesTrianglesForFidelity) {
  auto sharp = MakeVisual(0.0);
  auto coarse = MakeVisual(0.05);
  uint64_t sharp_tris = 0;
  uint64_t coarse_tris = 0;
  for (CellId c = 0; c < grid_->num_cells(); ++c) {
    Vec3 p = grid_->CellCenter(c);
    FrameResult f;
    ASSERT_TRUE(sharp->RenderFrame({p, Vec3(1, 0, 0)}, &f).ok());
    sharp_tris += f.rendered_triangles;
    ASSERT_TRUE(coarse->RenderFrame({p, Vec3(1, 0, 0)}, &f).ok());
    coarse_tris += f.rendered_triangles;
  }
  EXPECT_LT(coarse_tris, sharp_tris);
}

TEST_F(WalkthroughFixture, ReviewQueryMatchesBruteForceWindow) {
  auto review = MakeReview(150.0);
  Viewpoint vp = CenterViewpoint();
  std::vector<uint64_t> ids;
  ASSERT_TRUE(review->Query(vp.position, &ids).ok());
  std::set<uint64_t> got(ids.begin(), ids.end());

  const double half = 75.0;
  Aabb window(Vec3(vp.position.x - half, vp.position.y - half,
                   scene_->bounds().min.z),
              Vec3(vp.position.x + half, vp.position.y + half,
                   scene_->bounds().max.z));
  std::set<uint64_t> expected;
  for (const Object& obj : scene_->objects()) {
    if (obj.mbr.Intersects(window)) {
      expected.insert(obj.id);
    }
  }
  EXPECT_EQ(got, expected);
}

TEST_F(WalkthroughFixture, ReviewMissesFarVisibleObjects) {
  // The paper's core criticism of spatial methods: visible objects outside
  // the query box are lost.
  auto review = MakeReview(100.0);
  Viewpoint vp = CenterViewpoint();
  FrameResult frame;
  ASSERT_TRUE(review->RenderFrame(vp, &frame).ok());
  std::set<uint64_t> rendered;
  for (const RetrievedLod& lod : review->last_result()) {
    rendered.insert(lod.owner);
  }
  const CellVisibility& truth =
      table_->cell(grid_->ClampedCellForPoint(vp.position));
  size_t missed = 0;
  for (ObjectId id : truth.ids) {
    if (!rendered.count(id)) {
      ++missed;
    }
  }
  EXPECT_GT(missed, 0u) << "expected far visible objects outside the box";
}

TEST_F(WalkthroughFixture, ReviewComplementSearchAvoidsRefetch) {
  auto review = MakeReview(150.0);
  Viewpoint vp = CenterViewpoint();
  FrameResult first, second;
  ASSERT_TRUE(review->RenderFrame(vp, &first).ok());
  ASSERT_TRUE(review->RenderFrame(vp, &second).ok());
  EXPECT_EQ(second.models_fetched, 0u);
  EXPECT_LT(second.io_pages, first.io_pages);
}

TEST_F(WalkthroughFixture, ReviewLargerBoxCostsMore) {
  auto small = MakeReview(100.0);
  auto large = MakeReview(400.0);
  small->set_delta_enabled(false);
  large->set_delta_enabled(false);
  uint64_t small_io = 0;
  uint64_t large_io = 0;
  for (CellId c = 0; c < grid_->num_cells(); ++c) {
    Vec3 p = grid_->CellCenter(c);
    FrameResult f;
    ASSERT_TRUE(small->RenderFrame({p, Vec3(1, 0, 0)}, &f).ok());
    small_io += f.io_pages;
    ASSERT_TRUE(large->RenderFrame({p, Vec3(1, 0, 0)}, &f).ok());
    large_io += f.io_pages;
  }
  EXPECT_LT(small_io, large_io);
}

TEST_F(WalkthroughFixture, NaiveQueryEqualsCellList) {
  auto naive = MakeNaive();
  Viewpoint vp = CenterViewpoint();
  std::vector<RetrievedLod> result;
  ASSERT_TRUE(naive->Query(vp.position, false, &result).ok());
  const CellVisibility& truth =
      table_->cell(grid_->ClampedCellForPoint(vp.position));
  ASSERT_EQ(result.size(), truth.ids.size());
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i].owner, truth.ids[i]);
    EXPECT_FLOAT_EQ(result[i].dov, truth.dov[i]);
  }
}

TEST_F(WalkthroughFixture, NaiveSameCellSkipsListReread) {
  auto naive = MakeNaive();
  Viewpoint vp = CenterViewpoint();
  FrameResult first, second;
  ASSERT_TRUE(naive->RenderFrame(vp, &first).ok());
  ASSERT_TRUE(naive->RenderFrame(vp, &second).ok());
  EXPECT_GT(first.light_io_pages, 0u);
  EXPECT_EQ(second.light_io_pages, 0u);  // Same cell: list still cached.
}

TEST_F(WalkthroughFixture, VisualBeatsNaiveOnTotalIoAtLargeEta) {
  // In this small fixture city objects are close and DoV values are large,
  // so the threshold that triggers internal-LoD terminations is higher
  // than the paper's 0.008 (their scenes are hundreds of blocks wide).
  auto visual = MakeVisual(0.1);
  auto naive = MakeNaive();
  visual->set_delta_enabled(false);
  naive->set_delta_enabled(false);
  uint64_t visual_io = 0;
  uint64_t naive_io = 0;
  for (CellId c = 0; c < grid_->num_cells(); ++c) {
    Vec3 p = grid_->CellCenter(c);
    FrameResult f;
    ASSERT_TRUE(visual->RenderFrame({p, Vec3(1, 0, 0)}, &f).ok());
    visual_io += f.io_pages;
    ASSERT_TRUE(naive->RenderFrame({p, Vec3(1, 0, 0)}, &f).ok());
    naive_io += f.io_pages;
  }
  EXPECT_LT(visual_io, naive_io);
}

TEST_F(WalkthroughFixture, LodRTreeBoxesFollowTheView) {
  LodRTreeOptions opt;
  opt.frustum.far_dist = 200.0;
  opt.rtree.max_entries = 8;
  opt.rtree.min_entries = 3;
  Result<std::unique_ptr<LodRTreeSystem>> system =
      LodRTreeSystem::Create(scene_, opt);
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  Viewpoint vp = CenterViewpoint();
  std::vector<Aabb> boxes = (*system)->QueryBoxes(vp);
  ASSERT_EQ(boxes.size(), 3u);
  // Bands grow with depth and extend along the look direction (+x here).
  EXPECT_LT(boxes[0].max.x, boxes[2].max.x);
  EXPECT_LE(boxes[0].Volume(), boxes[2].Volume());
  // Turning around moves the boxes to the other side.
  Viewpoint turned{vp.position, Vec3(-1, 0, 0)};
  std::vector<Aabb> turned_boxes = (*system)->QueryBoxes(turned);
  EXPECT_GT(boxes[2].max.x, vp.position.x);
  EXPECT_LT(turned_boxes[2].min.x, vp.position.x);
}

TEST_F(WalkthroughFixture, LodRTreeNearObjectsFinerThanFar) {
  LodRTreeOptions opt;
  opt.frustum.far_dist = 600.0;
  opt.rtree.max_entries = 8;
  opt.rtree.min_entries = 3;
  Result<std::unique_ptr<LodRTreeSystem>> system =
      LodRTreeSystem::Create(scene_, opt);
  ASSERT_TRUE(system.ok());
  Viewpoint vp = CenterViewpoint();
  FrameResult frame;
  ASSERT_TRUE((*system)->RenderFrame(vp, &frame).ok());
  ASSERT_FALSE((*system)->last_result().empty());
  // LoD level correlates with distance band: check monotone trend between
  // the nearest and farthest retrieved objects.
  double near_level_sum = 0.0;
  size_t near_count = 0;
  double far_level_sum = 0.0;
  size_t far_count = 0;
  for (const RetrievedLod& lod : (*system)->last_result()) {
    const Object& obj = scene_->object(static_cast<ObjectId>(lod.owner));
    double d = obj.mbr.DistanceTo(vp.position);
    if (d < 90.0) {
      near_level_sum += lod.lod_level;
      ++near_count;
    } else if (d > 270.0) {
      far_level_sum += lod.lod_level;
      ++far_count;
    }
  }
  if (near_count > 0 && far_count > 0) {
    EXPECT_LE(near_level_sum / near_count, far_level_sum / far_count);
  }
}

TEST_F(WalkthroughFixture, LodRTreeDegradesWhenViewTurns) {
  // The paper's §2 critique of the LoD-R-tree: performance degenerates as
  // the user's view changes, because the frustum boxes swing away from
  // everything already loaded. Compare per-frame fetch I/O between a
  // straight walk and a turning walk.
  LodRTreeOptions opt;
  opt.frustum.far_dist = 300.0;
  opt.rtree.max_entries = 8;
  opt.rtree.min_entries = 3;
  Result<std::unique_ptr<LodRTreeSystem>> system =
      LodRTreeSystem::Create(scene_, opt);
  ASSERT_TRUE(system.ok());

  SessionOptions sopt;
  sopt.num_frames = 150;
  Session straight = RecordSession(MotionPattern::kNormalWalk,
                                   scene_->bounds(), sopt);
  Session turning = RecordSession(MotionPattern::kTurnLeftRight,
                                  scene_->bounds(), sopt);
  Result<SessionSummary> s1 = PlaySession(system->get(), straight);
  Result<SessionSummary> s2 = PlaySession(system->get(), turning);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  // Turning covers less ground, yet costs comparably or more I/O per
  // frame relative to distance traveled; at minimum it must not be the
  // near-free replay a cell-based method would see.
  EXPECT_GT(s2->avg_io_pages, 0.2 * s1->avg_io_pages);
}

TEST_F(WalkthroughFixture, PrefetchSmoothsCellFlips) {
  VisualOptions base;
  base.eta = 0.001;
  base.build.rtree.max_entries = 8;
  base.build.rtree.min_entries = 3;
  VisualOptions with_prefetch = base;
  with_prefetch.prefetch_models_per_frame = 3;

  Result<std::unique_ptr<VisualSystem>> plain =
      VisualSystem::Create(scene_, grid_, table_, base);
  Result<std::unique_ptr<VisualSystem>> prefetching =
      VisualSystem::Create(scene_, grid_, table_, with_prefetch);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(prefetching.ok());

  Session session = RecordSession(MotionPattern::kNormalWalk,
                                  scene_->bounds(), SessionOptions{
                                      .num_frames = 200,
                                  });
  PlayOptions popt;
  popt.keep_frames = true;
  Result<SessionSummary> without = PlaySession(plain->get(), session, popt);
  Result<SessionSummary> with = PlaySession(prefetching->get(), session,
                                            popt);
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with.ok());

  // Prefetching trims the worst frame (the cell-flip stall): compare the
  // maximum frame time after the cold-start frame.
  auto worst_after_start = [](const SessionSummary& s) {
    double worst = 0.0;
    for (size_t i = 5; i < s.frames.size(); ++i) {
      worst = std::max(worst, s.frames[i].frame_time_ms);
    }
    return worst;
  };
  EXPECT_LE(worst_after_start(*with), worst_after_start(*without));
}

TEST_F(WalkthroughFixture, PrefetchOffByDefaultKeepsIdleFramesIdle) {
  auto visual = MakeVisual(0.001);  // Default options: no prefetch.
  Viewpoint vp = CenterViewpoint();
  FrameResult first, second;
  ASSERT_TRUE(visual->RenderFrame(vp, &first).ok());
  ASSERT_TRUE(visual->RenderFrame(vp, &second).ok());
  EXPECT_EQ(second.models_fetched, 0u);
}

TEST_F(WalkthroughFixture, FidelityOriginalIsPerfect) {
  FidelityEvaluator eval(scene_, nullptr);
  const CellVisibility& truth = table_->cell(0);
  FidelityScore score = eval.OriginalScore(truth);
  EXPECT_NEAR(score.coverage, 1.0, 1e-9);
  EXPECT_NEAR(score.detail, 1.0, 1e-9);
  EXPECT_NEAR(score.combined, 1.0, 1e-9);
}

TEST_F(WalkthroughFixture, FidelityPenalizesMissingObjects) {
  FidelityEvaluator eval(scene_, nullptr);
  // Use the cell with the most visible objects so "half of them" is a
  // meaningful subset.
  CellId richest = 0;
  for (CellId c = 1; c < table_->num_cells(); ++c) {
    if (table_->cell(c).num_visible() >
        table_->cell(richest).num_visible()) {
      richest = c;
    }
  }
  const CellVisibility& truth = table_->cell(richest);
  ASSERT_GT(truth.ids.size(), 1u);
  // Render only half the visible objects, at the finest LoD.
  std::vector<RetrievedLod> rendered;
  for (size_t i = 0; i < truth.ids.size() / 2; ++i) {
    const Object& obj = scene_->object(truth.ids[i]);
    RetrievedLod lod;
    lod.kind = RetrievedLod::Kind::kObject;
    lod.owner = truth.ids[i];
    lod.triangle_count = obj.lods.finest().triangle_count;
    rendered.push_back(lod);
  }
  FidelityScore score = eval.Evaluate(truth, rendered);
  EXPECT_LT(score.coverage, 1.0);
  EXPECT_NEAR(score.detail, 1.0, 1e-9);  // What is shown, is shown sharp.
  EXPECT_LT(score.combined, 1.0);
}

TEST_F(WalkthroughFixture, FidelityPenalizesCoarseLods) {
  FidelityEvaluator eval(scene_, nullptr);
  const CellVisibility& truth = table_->cell(0);
  std::vector<RetrievedLod> rendered;
  for (ObjectId id : truth.ids) {
    const Object& obj = scene_->object(id);
    RetrievedLod lod;
    lod.kind = RetrievedLod::Kind::kObject;
    lod.owner = id;
    lod.lod_level = static_cast<uint32_t>(obj.lods.num_levels() - 1);
    lod.triangle_count = obj.lods.coarsest().triangle_count;
    rendered.push_back(lod);
  }
  FidelityScore score = eval.Evaluate(truth, rendered);
  EXPECT_NEAR(score.coverage, 1.0, 1e-9);  // Everything is represented...
  EXPECT_LT(score.detail, 1.0);            // ... but coarsely.
}

TEST_F(WalkthroughFixture, VisualFidelityDegradesGracefullyWithEta) {
  auto sharp = MakeVisual(0.0005);
  auto coarse = MakeVisual(0.05);
  FidelityEvaluator eval_sharp(scene_, &sharp->tree());
  FidelityEvaluator eval_coarse(scene_, &coarse->tree());
  double sharp_score = 0.0;
  double coarse_score = 0.0;
  for (CellId c = 0; c < grid_->num_cells(); ++c) {
    Vec3 p = grid_->CellCenter(c);
    FrameResult f;
    ASSERT_TRUE(sharp->RenderFrame({p, Vec3(1, 0, 0)}, &f).ok());
    sharp_score += eval_sharp.Evaluate(table_->cell(c),
                                       sharp->last_result()).combined;
    ASSERT_TRUE(coarse->RenderFrame({p, Vec3(1, 0, 0)}, &f).ok());
    coarse_score += eval_coarse.Evaluate(table_->cell(c),
                                         coarse->last_result()).combined;
  }
  const double n = grid_->num_cells();
  // Full coverage at both settings (HDoV never loses visible objects),
  // moderate detail loss at the large threshold.
  EXPECT_GT(sharp_score / n, 0.9);
  EXPECT_GE(sharp_score / n, coarse_score / n - 1e-9);
  EXPECT_GT(coarse_score / n, 0.2);
}

TEST_F(WalkthroughFixture, PlaySessionAggregates) {
  auto visual = MakeVisual(0.001);
  Session session = RecordSession(MotionPattern::kNormalWalk,
                                  scene_->bounds(), SessionOptions{
                                      .num_frames = 60,
                                  });
  PlayOptions popt;
  popt.keep_frames = true;
  Result<SessionSummary> summary = PlaySession(visual.get(), session, popt);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->num_frames, 60u);
  EXPECT_EQ(summary->frames.size(), 60u);
  EXPECT_GT(summary->avg_frame_time_ms, 0.0);
  EXPECT_GE(summary->var_frame_time, 0.0);
  EXPECT_GT(summary->avg_io_pages, 0.0);
  EXPECT_GT(summary->max_resident_bytes, 0u);

  double manual_avg = 0.0;
  for (const FrameResult& f : summary->frames) {
    manual_avg += f.frame_time_ms;
  }
  manual_avg /= 60.0;
  EXPECT_NEAR(summary->avg_frame_time_ms, manual_avg, 1e-9);
}

TEST_F(WalkthroughFixture, PlaySessionRejectsEmpty) {
  auto visual = MakeVisual(0.001);
  Session empty;
  EXPECT_FALSE(PlaySession(visual.get(), empty).ok());
}

TEST_F(WalkthroughFixture, TelemetryFrameRecordsMatchIoStats) {
  telemetry::Telemetry tel;  // Declared first: outlives the system.
  auto visual = MakeVisual(0.001);
  visual->AttachTelemetry(&tel, "visual");

  const uint64_t reads_before = visual->TotalIoStats().page_reads;
  for (CellId c = 0; c < grid_->num_cells(); ++c) {
    FrameResult f;
    ASSERT_TRUE(
        visual->RenderFrame({grid_->CellCenter(c), Vec3(1, 0, 0)}, &f).ok());
  }
  const uint64_t reads_delta =
      visual->TotalIoStats().page_reads - reads_before;

  ASSERT_EQ(tel.frames().size(), grid_->num_cells());
  uint64_t recorded_io = 0;
  uint64_t recorded_queries = 0;
  for (const telemetry::FrameRecord& f : tel.frames()) {
    EXPECT_EQ(f.system, "visual");
    EXPECT_EQ(f.kind, "frame");  // The inner Query emits no extra record.
    recorded_io += f.io_pages;
    recorded_queries += f.nodes_visited > 0 ? 1 : 0;
  }
  EXPECT_EQ(recorded_io, reads_delta);
  EXPECT_GT(recorded_queries, 0u);

  // The search counters agree with the sum over frame records.
  telemetry::MetricsSnapshot snap = tel.metrics().Snapshot();
  ASSERT_NE(snap.Find("visual.search.queries"), nullptr);
  EXPECT_DOUBLE_EQ(snap.Find("visual.search.queries")->value,
                   static_cast<double>(grid_->num_cells()));
  uint64_t nodes = 0;
  for (const telemetry::FrameRecord& f : tel.frames()) {
    nodes += f.nodes_visited;
  }
  EXPECT_DOUBLE_EQ(snap.Find("visual.search.nodes_visited")->value,
                   static_cast<double>(nodes));
  // Device and store views are present and live.
  ASSERT_NE(snap.Find("visual.io.tree.page_reads"), nullptr);
  EXPECT_GT(snap.Find("visual.io.tree.page_reads")->value, 0.0);
  ASSERT_NE(snap.Find("visual.store.indexed-vertical.vpage_fetches"),
            nullptr);
  EXPECT_GT(snap.Find("visual.store.indexed-vertical.vpage_fetches")->value,
            0.0);

  // Detaching removes every view under the prefix.
  visual->DetachTelemetry();
  EXPECT_EQ(tel.metrics().size(), 0u);
}

TEST_F(WalkthroughFixture, TelemetryTreeCacheReportsHitRate) {
  telemetry::Telemetry tel;
  VisualOptions opt;
  opt.eta = 0.001;
  opt.build.rtree.max_entries = 8;
  opt.build.rtree.min_entries = 3;
  opt.tree_cache_pages = 64;
  Result<std::unique_ptr<VisualSystem>> visual =
      VisualSystem::Create(scene_, grid_, table_, opt);
  ASSERT_TRUE(visual.ok()) << visual.status().ToString();
  (*visual)->AttachTelemetry(&tel, "cached");

  Viewpoint vp = CenterViewpoint();
  FrameResult first, second;
  ASSERT_TRUE((*visual)->RenderFrame(vp, &first).ok());
  (*visual)->set_delta_enabled(false);
  ASSERT_TRUE((*visual)->RenderFrame(vp, &second).ok());
  // The second full traversal reads the same node pages: all pool hits.
  EXPECT_GT(second.cache_hit_rate, 0.0);
  const telemetry::MetricsSnapshot snap = tel.metrics().Snapshot();
  ASSERT_NE(snap.Find("cached.cache.tree.hit_rate"), nullptr);
  EXPECT_GT(snap.Find("cached.cache.tree.hit_rate")->value, 0.0);
}

TEST_F(WalkthroughFixture, TelemetryQueryTraceHasSearchSpans) {
  telemetry::Telemetry tel;
  tel.tracer().set_enabled(true);
  auto visual = MakeVisual(0.001);
  visual->AttachTelemetry(&tel, "visual");

  std::vector<RetrievedLod> result;
  SearchStats stats;
  ASSERT_TRUE(visual
                  ->Query(CenterViewpoint().position,
                          /*fetch_models=*/false, &result, &stats)
                  .ok());
  const telemetry::TraceRecorder& rec = tel.tracer();
  ASSERT_EQ(rec.CountNamed("search"), 1u);
  EXPECT_EQ(rec.CountNamed("node"), stats.nodes_visited);
  EXPECT_EQ(rec.CountNamed("prune"), stats.hidden_entries_pruned);
  EXPECT_EQ(rec.CountNamed("terminate"), stats.internal_terminations);
  EXPECT_EQ(rec.open_depth(), 0u);
  // Standalone queries emit kind="query" records.
  ASSERT_EQ(tel.frames().size(), 1u);
  EXPECT_EQ(tel.frames()[0].kind, "query");
  EXPECT_EQ(tel.frames()[0].nodes_visited, stats.nodes_visited);
  // The snapshot (with trace) is valid JSON.
  Result<telemetry::JsonValue> parsed =
      telemetry::ParseJson(tel.SnapshotJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed->Find("trace"), nullptr);
}

TEST_F(WalkthroughFixture, TraceSamplingGatesSpanTrees) {
  telemetry::Telemetry tel;
  tel.tracer().set_enabled(true);
  tel.tracer().set_sample_every(2);  // Span trees for queries 0 and 2.
  auto visual = MakeVisual(0.001);
  visual->AttachTelemetry(&tel, "visual");

  std::vector<RetrievedLod> result;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(visual
                    ->Query(CenterViewpoint().position,
                            /*fetch_models=*/false, &result, nullptr)
                    .ok());
  }
  const telemetry::TraceRecorder& rec = tel.tracer();
  EXPECT_EQ(rec.queries_seen(), 4u);
  EXPECT_EQ(rec.queries_sampled(), 2u);
  EXPECT_EQ(rec.CountNamed("search"), 2u);
  // Sampling only thins span trees — counters still see every query.
  const telemetry::MetricsSnapshot snap = tel.metrics().Snapshot();
  ASSERT_NE(snap.Find("visual.search.queries"), nullptr);
  EXPECT_DOUBLE_EQ(snap.Find("visual.search.queries")->value, 4.0);
}

TEST_F(WalkthroughFixture, FlightRecorderToggleKeepsCountersBitIdentical) {
  // The recorder is always on under the zero-drift perf gate, so flipping
  // it must never move a simulated counter.
  Session session = RecordSession(MotionPattern::kNormalWalk,
                                  scene_->bounds(), SessionOptions{
                                      .num_frames = 12,
                                  });
  telemetry::FlightRecorder& recorder = telemetry::GlobalFlightRecorder();
  const auto run = [&](bool enabled) {
    recorder.set_enabled(enabled);
    auto visual = MakeVisual(0.001);
    Result<SessionSummary> summary = PlaySession(visual.get(), session);
    EXPECT_TRUE(summary.ok());
    const IoStats stats = visual->TotalIoStats();
    recorder.set_enabled(true);
    return stats;
  };
  const uint64_t recorded_before = recorder.events_recorded();
  const IoStats with_recorder = run(true);
  const uint64_t recorded_between = recorder.events_recorded();
  const IoStats without_recorder = run(false);

  EXPECT_EQ(with_recorder.page_reads, without_recorder.page_reads);
  EXPECT_EQ(with_recorder.page_writes, without_recorder.page_writes);
  EXPECT_EQ(with_recorder.seeks, without_recorder.seeks);
  EXPECT_EQ(with_recorder.bytes_read, without_recorder.bytes_read);
  EXPECT_EQ(with_recorder.bytes_written, without_recorder.bytes_written);
  // The enabled run really did record (frame boundaries at minimum).
  EXPECT_GT(recorded_between, recorded_before);
}

TEST_F(WalkthroughFixture, TelemetrySessionGaugesWrittenByFrameLoop) {
  telemetry::Telemetry tel;
  auto visual = MakeVisual(0.001);
  visual->AttachTelemetry(&tel, "visual");
  Session session = RecordSession(MotionPattern::kNormalWalk,
                                  scene_->bounds(), SessionOptions{
                                      .num_frames = 20,
                                  });
  session.name = "walk";
  Result<SessionSummary> summary = PlaySession(visual.get(), session);
  ASSERT_TRUE(summary.ok());
  const telemetry::MetricsSnapshot snap = tel.metrics().Snapshot();
  const telemetry::MetricSample* avg =
      snap.Find("visual.session.walk.avg_frame_time_ms");
  ASSERT_NE(avg, nullptr);
  EXPECT_NEAR(avg->value, summary->avg_frame_time_ms, 1e-9);
  for (const telemetry::FrameRecord& f : tel.frames()) {
    EXPECT_EQ(f.context, "walk");
  }
  // The context is restored after the session.
  EXPECT_TRUE(tel.context().empty());
}

TEST_F(WalkthroughFixture, VisualOutperformsReviewOnFrameTime) {
  // The headline Table 3 comparison, in miniature: VISUAL at eta = 0.001
  // vs REVIEW with comparable-fidelity (large) boxes.
  auto visual = MakeVisual(0.001);
  const double big_box =
      0.8 * (scene_->bounds().max.x - scene_->bounds().min.x);
  auto review = MakeReview(big_box);
  Session session = RecordSession(MotionPattern::kNormalWalk,
                                  scene_->bounds(), SessionOptions{
                                      .num_frames = 80,
                                  });
  Result<SessionSummary> vis = PlaySession(visual.get(), session);
  Result<SessionSummary> rev = PlaySession(review.get(), session);
  ASSERT_TRUE(vis.ok());
  ASSERT_TRUE(rev.ok());
  EXPECT_LT(vis->avg_frame_time_ms, rev->avg_frame_time_ms);
  EXPECT_LT(vis->max_resident_bytes, rev->max_resident_bytes);
}

// ------------------------------- session summary numerics (regressions)

// Feeds a scripted frame sequence through PlaySession, so the aggregation
// under test runs on the exact code path the benches use.
class ScriptedSystem : public WalkthroughSystem {
 public:
  explicit ScriptedSystem(std::vector<FrameResult> frames)
      : frames_(std::move(frames)) {}

  std::string name() const override { return "SCRIPTED"; }
  Status RenderFrame(const Viewpoint&, FrameResult* result) override {
    *result = frames_[next_++ % frames_.size()];
    return Status::OK();
  }
  void ResetRuntime() override { next_ = 0; }
  const std::vector<RetrievedLod>& last_result() const override {
    return empty_;
  }
  IoStats TotalIoStats() const override { return IoStats(); }
  void ResetIoStats() override {}

 private:
  std::vector<FrameResult> frames_;
  size_t next_ = 0;
  std::vector<RetrievedLod> empty_;
};

Session BlankSession(size_t num_frames) {
  Session session;
  session.name = "scripted";
  session.frames.resize(num_frames);
  return session;
}

TEST(SessionAccumulatorTest, WelfordSurvivesLargeMeanSmallSpread) {
  // Catastrophic-cancellation regression: with frame times of 1e8 ± 1 ms,
  // E[x^2] sits at 1e16 where doubles step in units of 2 — the old
  // E[x^2]-E[x]^2 variance lost every significant digit (0.0 or 2.0,
  // depending on rounding). Welford's update keeps the true 1.0.
  FrameResult low, high;
  low.frame_time_ms = 1e8 - 1.0;
  high.frame_time_ms = 1e8 + 1.0;
  ScriptedSystem system({low, high});
  Result<SessionSummary> summary =
      PlaySession(&system, BlankSession(1000));
  ASSERT_TRUE(summary.ok());
  EXPECT_NEAR(summary->avg_frame_time_ms, 1e8, 1e-5);
  EXPECT_NEAR(summary->var_frame_time, 1.0, 1e-6);
}

TEST(SessionAccumulatorTest, TwoSampleVarianceIsExact) {
  SessionAccumulator acc;
  FrameResult a, b;
  a.frame_time_ms = 3.0;
  b.frame_time_ms = 7.0;
  acc.Add(a);
  acc.Add(b);
  SessionSummary summary;
  acc.FinishInto(&summary);
  EXPECT_DOUBLE_EQ(summary.avg_frame_time_ms, 5.0);
  EXPECT_DOUBLE_EQ(summary.var_frame_time, 4.0);  // Population variance.
}

TEST(SessionAccumulatorTest, CacheHitRateIsRatioOfSums) {
  // Skewed-traffic regression: a light frame at 50% and a heavy frame at
  // 100% used to average to 75%; weighting by traffic gives 99/100.
  FrameResult light, heavy;
  light.cache_hits = 1;
  light.cache_misses = 1;
  light.cache_hit_rate = 0.5;
  heavy.cache_hits = 98;
  heavy.cache_misses = 0;
  heavy.cache_hit_rate = 1.0;
  ScriptedSystem system({light, heavy});
  Result<SessionSummary> summary = PlaySession(&system, BlankSession(2));
  ASSERT_TRUE(summary.ok());
  EXPECT_DOUBLE_EQ(summary->avg_cache_hit_rate, 0.99);
}

TEST(SessionAccumulatorTest, NoCacheTrafficReportsZeroHitRate) {
  ScriptedSystem system({FrameResult()});
  Result<SessionSummary> summary = PlaySession(&system, BlankSession(5));
  ASSERT_TRUE(summary.ok());
  EXPECT_DOUBLE_EQ(summary->avg_cache_hit_rate, 0.0);
}

}  // namespace
}  // namespace hdov
