#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_device.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace hdov {
namespace {

using telemetry::Counter;
using telemetry::ExponentialBuckets;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::JsonValue;
using telemetry::LinearBuckets;
using telemetry::MetricKind;
using telemetry::MetricSample;
using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;
using telemetry::ParseJson;
using telemetry::ScopedSpan;
using telemetry::Telemetry;
using telemetry::TraceRecorder;

TEST(CounterTest, IncrementAddReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(HistogramTest, BucketPlacement) {
  // Buckets: [-inf, 1], (1, 2], (2, 4], (4, +inf).
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.num_buckets(), 4u);
  h.Observe(0.5);   // bucket 0
  h.Observe(1.0);   // bucket 0 (upper bound is inclusive)
  h.Observe(1.5);   // bucket 1
  h.Observe(4.0);   // bucket 2
  h.Observe(9.0);   // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.2);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 10; ++i) {
    h.Observe(5.0);  // All in bucket 0: [0, 10] after interpolation.
  }
  // Median of a bucket assumed uniform on (0, 10] -> 5.
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 1e-9);
  EXPECT_NEAR(h.Quantile(1.0), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(Histogram({1.0}).Quantile(0.5), 0.0);  // Empty.
}

TEST(HistogramTest, BucketGenerators) {
  EXPECT_EQ(ExponentialBuckets(1.0, 2.0, 4),
            (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(LinearBuckets(2.0, 0.5, 3),
            (std::vector<double>{2.0, 2.5, 3.0}));
}

TEST(MetricsRegistryTest, CreateOrGetAndKindMismatch) {
  MetricsRegistry m;
  Counter* c = m.GetCounter("a.count");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(m.GetCounter("a.count"), c);  // Same pointer on re-get.
  EXPECT_EQ(m.GetGauge("a.count"), nullptr);  // Kind mismatch.
  EXPECT_EQ(m.GetHistogram("a.count", {1.0}), nullptr);
  EXPECT_NE(m.GetGauge("a.gauge"), nullptr);
  EXPECT_NE(m.GetHistogram("a.hist", {1.0, 2.0}), nullptr);
  EXPECT_EQ(m.size(), 3u);
}

TEST(MetricsRegistryTest, ViewsReadLiveSources) {
  MetricsRegistry m;
  uint64_t source = 7;
  m.RegisterView("io.reads", [&source] {
    return static_cast<double>(source);
  });
  EXPECT_DOUBLE_EQ(m.Snapshot().Find("io.reads")->value, 7.0);
  source = 19;
  EXPECT_DOUBLE_EQ(m.Snapshot().Find("io.reads")->value, 19.0);
  // ResetValues leaves views alone.
  m.ResetValues();
  EXPECT_DOUBLE_EQ(m.Snapshot().Find("io.reads")->value, 19.0);
}

TEST(MetricsRegistryTest, UnregisterPrefix) {
  MetricsRegistry m;
  m.GetCounter("sys.a");
  m.GetCounter("sys.b");
  m.GetCounter("other.c");
  m.UnregisterPrefix("sys.");
  EXPECT_FALSE(m.Contains("sys.a"));
  EXPECT_FALSE(m.Contains("sys.b"));
  EXPECT_TRUE(m.Contains("other.c"));
  EXPECT_EQ(m.size(), 1u);
  // Re-registering after removal starts fresh.
  EXPECT_EQ(m.GetCounter("sys.a")->value(), 0u);
}

TEST(MetricsRegistryTest, ResetValuesZeroesOwnedMetrics) {
  MetricsRegistry m;
  m.GetCounter("c")->Add(5);
  m.GetGauge("g")->Set(2.5);
  m.GetHistogram("h", {1.0})->Observe(0.5);
  m.ResetValues();
  EXPECT_EQ(m.GetCounter("c")->value(), 0u);
  EXPECT_DOUBLE_EQ(m.GetGauge("g")->value(), 0.0);
  EXPECT_EQ(m.GetHistogram("h", {})->count(), 0u);
}

TEST(MetricsRegistryTest, SnapshotJsonParses) {
  MetricsRegistry m;
  m.GetCounter("c")->Add(3);
  m.GetHistogram("h", {1.0, 2.0})->Observe(1.5);
  MetricsSnapshot snap = m.Snapshot();
  Result<JsonValue> parsed = ParseJson(snap.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->items.size(), 2u);
  const JsonValue& counter = parsed->items[0];
  EXPECT_EQ(counter.Find("name")->string, "c");
  EXPECT_EQ(counter.Find("kind")->string, "counter");
  EXPECT_DOUBLE_EQ(counter.Find("value")->number, 3.0);
  const JsonValue& hist = parsed->items[1];
  EXPECT_EQ(hist.Find("kind")->string, "histogram");
  EXPECT_DOUBLE_EQ(hist.Find("count")->number, 1.0);
  ASSERT_EQ(hist.Find("buckets")->items.size(), 3u);
  EXPECT_DOUBLE_EQ(hist.Find("buckets")->items[1].number, 1.0);
}

TEST(DeviceViewsTest, PageDeviceAndBufferPoolRegister) {
  MetricsRegistry m;
  PageDevice device;
  device.RegisterWith(&m, "t.io.disk");
  PageId p = device.Allocate();
  ASSERT_TRUE(device.Write(p, "x").ok());
  std::string data;
  ASSERT_TRUE(device.Read(p, &data).ok());
  ASSERT_TRUE(device.Read(p, &data).ok());
  EXPECT_DOUBLE_EQ(m.Snapshot().Find("t.io.disk.page_reads")->value, 2.0);

  BufferPool pool(&device, 4);
  pool.RegisterWith(&m, "t.cache");
  ASSERT_TRUE(pool.Get(p).ok());
  ASSERT_TRUE(pool.Get(p).ok());  // Second read hits.
  MetricsSnapshot snap = m.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Find("t.cache.hits")->value, 1.0);
  EXPECT_DOUBLE_EQ(snap.Find("t.cache.misses")->value, 1.0);
  EXPECT_DOUBLE_EQ(snap.Find("t.cache.hit_rate")->value, 0.5);
}

TEST(TraceRecorderTest, SpanNesting) {
  TraceRecorder rec;
  int32_t root = rec.BeginSpan("search");
  int32_t node = rec.BeginSpan("node");
  int32_t prune = rec.BeginSpan("prune");
  rec.AddAttr(prune, "dov", 0.25);
  rec.EndSpan(prune);
  rec.EndSpan(node);
  rec.EndSpan(root);
  ASSERT_EQ(rec.num_spans(), 3u);
  EXPECT_EQ(rec.span(0).parent, TraceRecorder::kNoSpan);
  EXPECT_EQ(rec.span(1).parent, root);
  EXPECT_EQ(rec.span(2).parent, node);
  EXPECT_TRUE(rec.span(2).closed);
  EXPECT_EQ(rec.open_depth(), 0u);
  EXPECT_EQ(rec.Children(TraceRecorder::kNoSpan),
            (std::vector<size_t>{0}));
  EXPECT_EQ(rec.Children(node), (std::vector<size_t>{2}));
  EXPECT_EQ(rec.CountNamed("prune"), 1u);
  EXPECT_DOUBLE_EQ(rec.span(2).NumAttrOr("dov", -1.0), 0.25);
  EXPECT_DOUBLE_EQ(rec.span(2).NumAttrOr("absent", -1.0), -1.0);
}

TEST(TraceRecorderTest, DisabledRecorderIsFree) {
  TraceRecorder rec;
  rec.set_enabled(false);
  int32_t id = rec.BeginSpan("search");
  EXPECT_EQ(id, TraceRecorder::kNoSpan);
  rec.AddAttr(id, "k", 1.0);  // All no-ops on kNoSpan.
  rec.EndSpan(id);
  EXPECT_EQ(rec.num_spans(), 0u);
}

TEST(TraceRecorderTest, EndSpanClosesLeakedChildren) {
  TraceRecorder rec;
  int32_t root = rec.BeginSpan("root");
  rec.BeginSpan("leaked");
  rec.EndSpan(root);  // Must close the still-open child too.
  EXPECT_EQ(rec.open_depth(), 0u);
  EXPECT_TRUE(rec.span(0).closed);
  EXPECT_TRUE(rec.span(1).closed);
}

TEST(TraceRecorderTest, ScopedSpanToleratesNullRecorder) {
  ScopedSpan null_span(nullptr, "noop");
  null_span.Attr("k", 1.0);
  EXPECT_EQ(null_span.id(), TraceRecorder::kNoSpan);

  TraceRecorder rec;
  {
    ScopedSpan span(&rec, "scoped");
    span.Attr("k", 2.0);
    span.Attr("s", "text");
  }
  ASSERT_EQ(rec.num_spans(), 1u);
  EXPECT_TRUE(rec.span(0).closed);
  ASSERT_NE(rec.span(0).StrAttr("s"), nullptr);
  EXPECT_EQ(*rec.span(0).StrAttr("s"), "text");
}

TEST(TraceRecorderTest, MergeReRootsUnderOpenSpan) {
  // Two per-worker recorders fold into a phase recorder in caller-chosen
  // order: roots re-root under the open span, internal parent links shift
  // by the destination's size, attributes survive.
  TraceRecorder worker_a;
  int32_t a_root = worker_a.BeginSpan("cell");
  worker_a.AddAttr(a_root, "cell", 0.0);
  int32_t a_child = worker_a.BeginSpan("sample");
  worker_a.EndSpan(a_child);
  worker_a.EndSpan(a_root);

  TraceRecorder worker_b;
  int32_t b_root = worker_b.BeginSpan("cell");
  worker_b.AddAttr(b_root, "cell", 1.0);
  worker_b.EndSpan(b_root);

  TraceRecorder phase;
  int32_t root = phase.BeginSpan("precompute");
  phase.Merge(worker_a);
  phase.Merge(worker_b);
  phase.EndSpan(root);

  ASSERT_EQ(phase.num_spans(), 4u);  // precompute + (cell, sample) + cell.
  EXPECT_EQ(phase.span(1).parent, root);              // a's cell.
  EXPECT_EQ(phase.span(2).parent, 1);                 // a's sample, shifted.
  EXPECT_EQ(phase.span(3).parent, root);              // b's cell.
  EXPECT_DOUBLE_EQ(phase.span(1).NumAttrOr("cell", -1), 0.0);
  EXPECT_DOUBLE_EQ(phase.span(3).NumAttrOr("cell", -1), 1.0);
  EXPECT_EQ(phase.CountNamed("cell"), 2u);
  EXPECT_EQ(phase.open_depth(), 0u);
}

TEST(TraceRecorderTest, MergeWithNoOpenSpanAddsRoots) {
  TraceRecorder src;
  int32_t s = src.BeginSpan("solo");
  src.EndSpan(s);
  TraceRecorder dst;
  dst.Merge(src);
  ASSERT_EQ(dst.num_spans(), 1u);
  EXPECT_EQ(dst.span(0).parent, TraceRecorder::kNoSpan);
}

TEST(TraceRecorderTest, MergeIntoDisabledRecorderDrops) {
  TraceRecorder src;
  src.EndSpan(src.BeginSpan("x"));
  TraceRecorder dst;
  dst.set_enabled(false);
  dst.Merge(src);
  EXPECT_EQ(dst.num_spans(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsLoseNothing) {
  Counter counter;
  Gauge gauge;
  const int kThreads = 8;
  const int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &gauge] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        gauge.Set(1.0);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(gauge.value(), 1.0);
}

TEST(HistogramTest, ConcurrentObservesLoseNothing) {
  Histogram hist(LinearBuckets(0.0, 10.0, 4));
  const int kThreads = 4;
  const int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Observe(static_cast<double>(t * 10));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(TraceRecorderTest, JsonTreeShape) {
  TraceRecorder rec;
  int32_t root = rec.BeginSpan("search");
  rec.AddAttr(root, "eta", 0.001);
  int32_t node = rec.BeginSpan("node");
  rec.EndSpan(node);
  rec.EndSpan(root);
  Result<JsonValue> parsed = ParseJson(rec.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->items.size(), 1u);
  const JsonValue& tree = parsed->items[0];
  EXPECT_EQ(tree.Find("name")->string, "search");
  EXPECT_DOUBLE_EQ(tree.Find("attrs")->Find("eta")->number, 0.001);
  ASSERT_TRUE(tree.Find("children")->is_array());
  EXPECT_EQ(tree.Find("children")->items[0].Find("name")->string, "node");
}

TEST(JsonTest, StringEscaping) {
  std::string out;
  telemetry::AppendJsonString(&out, "a\"b\\c\n\t\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
  Result<JsonValue> parsed = ParseJson(out);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string, "a\"b\\c\n\t\x01");
}

TEST(JsonTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseJson("{} extra").ok());
  EXPECT_FALSE(ParseJson("[1, 2").ok());
  EXPECT_TRUE(ParseJson("  {\"a\": [1, true, null]}  ").ok());
}

TEST(JsonTest, Utf8PassesThroughUnescaped) {
  // Multi-byte UTF-8 is not a control character; the writer must emit it
  // verbatim and the parser must hand it back untouched.
  const std::string text = "caf\xc3\xa9 \xe6\xbc\xa2\xe5\xad\x97";
  std::string out;
  telemetry::AppendJsonString(&out, text);
  EXPECT_EQ(out, "\"" + text + "\"");
  Result<JsonValue> parsed = ParseJson(out);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->string, text);
}

TEST(JsonTest, ControlCharactersEscapeAsUnicode) {
  std::string out;
  telemetry::AppendJsonString(&out, std::string("\x00\x1f\x7f", 3));
  // 0x00 and 0x1f are control chars -> \u00xx; 0x7f is not < 0x20.
  EXPECT_EQ(out, "\"\\u0000\\u001f\x7f\"");
  Result<JsonValue> parsed = ParseJson(out);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->string, std::string("\x00\x1f\x7f", 3));
}

TEST(JsonTest, UnicodeEscapeRoundTrip) {
  // \uXXXX decodes to UTF-8 across the 1-, 2- and 3-byte ranges.
  Result<JsonValue> ascii = ParseJson("\"\\u0041\"");
  ASSERT_TRUE(ascii.ok());
  EXPECT_EQ(ascii->string, "A");
  Result<JsonValue> two_byte = ParseJson("\"\\u00e9\"");
  ASSERT_TRUE(two_byte.ok());
  EXPECT_EQ(two_byte->string, "\xc3\xa9");
  Result<JsonValue> three_byte = ParseJson("\"\\u6f22\"");
  ASSERT_TRUE(three_byte.ok());
  EXPECT_EQ(three_byte->string, "\xe6\xbc\xa2");
  // Upper-case hex digits are accepted too.
  Result<JsonValue> upper = ParseJson("\"\\u00E9\"");
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(upper->string, "\xc3\xa9");
  // Writer-escaped control characters survive a full round trip.
  std::string written;
  telemetry::AppendJsonString(&written, "\x02");
  Result<JsonValue> back = ParseJson(written);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->string, "\x02");
}

TEST(JsonTest, ParseErrorPaths) {
  Result<JsonValue> truncated = ParseJson("\"\\u00");
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().ToString().find("truncated unicode escape"),
            std::string::npos);
  Result<JsonValue> bad_hex = ParseJson("\"\\u00zz\"");
  ASSERT_FALSE(bad_hex.ok());
  EXPECT_NE(bad_hex.status().ToString().find("invalid unicode escape"),
            std::string::npos);
  Result<JsonValue> bad_escape = ParseJson("\"\\q\"");
  ASSERT_FALSE(bad_escape.ok());
  EXPECT_NE(bad_escape.status().ToString().find("invalid escape"),
            std::string::npos);
}

TEST(HistogramTest, SnapshotCarriesPercentiles) {
  MetricsRegistry m;
  Histogram* h = m.GetHistogram("lat", LinearBuckets(10.0, 10.0, 10));
  for (int i = 1; i <= 100; ++i) {
    h->Observe(static_cast<double>(i));  // Uniform 1..100.
  }
  // Bind the snapshot so `sample` does not dangle into a temporary.
  MetricsSnapshot snap = m.Snapshot();
  const MetricSample* sample = snap.Find("lat");
  ASSERT_NE(sample, nullptr);
  EXPECT_NEAR(sample->p50, h->Quantile(0.50), 1e-9);
  EXPECT_NEAR(sample->p90, h->Quantile(0.90), 1e-9);
  EXPECT_NEAR(sample->p99, h->Quantile(0.99), 1e-9);
  // Uniform data: the interpolated percentiles sit near their ranks.
  EXPECT_NEAR(sample->p50, 50.0, 10.0);
  EXPECT_NEAR(sample->p90, 90.0, 10.0);
  // And they serialize.
  Result<JsonValue> parsed = ParseJson(m.Snapshot().ToJson());
  ASSERT_TRUE(parsed.ok());
  const JsonValue& hist = parsed->items[0];
  EXPECT_DOUBLE_EQ(hist.Find("p50")->number, sample->p50);
  EXPECT_DOUBLE_EQ(hist.Find("p90")->number, sample->p90);
  EXPECT_DOUBLE_EQ(hist.Find("p99")->number, sample->p99);
}

TEST(TraceRecorderTest, MaxSpansDropsGracefully) {
  TraceRecorder rec;
  rec.set_max_spans(2);
  int32_t root = rec.BeginSpan("root");
  int32_t kept = rec.BeginSpan("kept");
  int32_t dropped = rec.BeginSpan("dropped");
  EXPECT_EQ(dropped, TraceRecorder::kNoSpan);
  rec.AddAttr(dropped, "k", 1.0);  // No-op, must not crash.
  rec.EndSpan(dropped);
  rec.EndSpan(kept);
  rec.EndSpan(root);
  EXPECT_EQ(rec.num_spans(), 2u);
  EXPECT_EQ(rec.spans_dropped(), 1u);
  EXPECT_EQ(rec.open_depth(), 0u);
  rec.Clear();
  EXPECT_EQ(rec.spans_dropped(), 0u);
}

TEST(TelemetryTest, RecordFrameStampsIndexAndContext) {
  Telemetry t;
  EXPECT_FALSE(t.tracer().enabled());  // Opt-in by design.
  t.set_context("session 1");
  telemetry::FrameRecord r;
  r.system = "visual";
  r.io_pages = 12;
  t.RecordFrame(r);
  t.RecordFrame(r);
  ASSERT_EQ(t.frames().size(), 2u);
  EXPECT_EQ(t.frames()[0].index, 0u);
  EXPECT_EQ(t.frames()[1].index, 1u);
  EXPECT_EQ(t.frames()[1].context, "session 1");
  ASSERT_NE(t.last_frame(), nullptr);
  t.last_frame()->fidelity = 0.875;
  EXPECT_DOUBLE_EQ(t.frames()[1].fidelity, 0.875);
}

TEST(TelemetryTest, MaxFramesDropsButCounts) {
  Telemetry t;
  t.set_max_frames(2);
  for (int i = 0; i < 5; ++i) {
    t.RecordFrame({});
  }
  EXPECT_EQ(t.frames().size(), 2u);
  EXPECT_EQ(t.frames_recorded(), 5u);
  EXPECT_EQ(t.frames_dropped(), 3u);
}

TEST(TelemetryTest, SnapshotJsonRoundTrip) {
  Telemetry t;
  t.metrics().GetCounter("visual.search.queries")->Add(2);
  t.tracer().set_enabled(true);
  int32_t span = t.tracer().BeginSpan("search");
  t.tracer().EndSpan(span);

  telemetry::FrameRecord r;
  r.system = "visual";
  r.kind = "query";
  r.cell = 7;
  r.frame_time_ms = 3.5;
  r.io_pages = 11;
  r.nodes_visited = 4;
  r.vpages_fetched = 2;
  r.hidden_pruned = 6;
  r.internal_terminations = 1;
  r.cache_hit_rate = 0.75;
  r.fidelity = 0.9;
  t.RecordFrame(r);

  Result<JsonValue> parsed = ParseJson(t.SnapshotJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->Find("version")->number, 1.0);
  EXPECT_DOUBLE_EQ(parsed->Find("frames_recorded")->number, 1.0);
  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_TRUE(metrics != nullptr && metrics->is_array());
  EXPECT_EQ(metrics->items[0].Find("name")->string,
            "visual.search.queries");
  const JsonValue* frames = parsed->Find("frames");
  ASSERT_TRUE(frames != nullptr && frames->is_array());
  ASSERT_EQ(frames->items.size(), 1u);
  const JsonValue& frame = frames->items[0];
  EXPECT_EQ(frame.Find("system")->string, "visual");
  EXPECT_EQ(frame.Find("kind")->string, "query");
  EXPECT_DOUBLE_EQ(frame.Find("cell")->number, 7.0);
  EXPECT_DOUBLE_EQ(frame.Find("io_pages")->number, 11.0);
  EXPECT_DOUBLE_EQ(frame.Find("nodes_visited")->number, 4.0);
  EXPECT_DOUBLE_EQ(frame.Find("vpages_fetched")->number, 2.0);
  EXPECT_DOUBLE_EQ(frame.Find("hidden_pruned")->number, 6.0);
  EXPECT_DOUBLE_EQ(frame.Find("internal_terminations")->number, 1.0);
  EXPECT_DOUBLE_EQ(frame.Find("cache_hit_rate")->number, 0.75);
  EXPECT_DOUBLE_EQ(frame.Find("fidelity")->number, 0.9);
  const JsonValue* trace = parsed->Find("trace");
  ASSERT_TRUE(trace != nullptr && trace->is_array());
  EXPECT_EQ(trace->items[0].Find("name")->string, "search");

  t.Reset();
  EXPECT_EQ(t.frames().size(), 0u);
  EXPECT_EQ(t.frames_recorded(), 0u);
  EXPECT_EQ(t.metrics().GetCounter("visual.search.queries")->value(), 0u);
  EXPECT_EQ(t.tracer().num_spans(), 0u);
}

TEST(TelemetryTest, ChromeTraceSchema) {
  // A traced search records the span shapes the searcher emits (one
  // "search" root, "node" children, decision leaves) plus per-query frame
  // records; the Chrome-trace export of that state must be a valid
  // trace-event document with exactly nested span intervals.
  Telemetry t;
  t.tracer().set_enabled(true);
  int32_t search = t.tracer().BeginSpan("search");
  t.tracer().AddAttr(search, "eta", 0.001);
  int32_t node = t.tracer().BeginSpan("node");
  int32_t prune = t.tracer().BeginSpan("prune");
  t.tracer().AddAttr(prune, "dov", 0.0);
  t.tracer().EndSpan(prune);
  t.tracer().EndSpan(node);
  int32_t node2 = t.tracer().BeginSpan("node");
  t.tracer().EndSpan(node2);
  t.tracer().EndSpan(search);

  telemetry::FrameRecord r;
  r.system = "visual";
  r.kind = "query";
  r.query_time_ms = 2.5;
  r.io_pages = 3;
  t.RecordFrame(r);
  r.io_pages = 5;
  t.RecordFrame(r);

  Result<JsonValue> parsed = ParseJson(t.ChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("displayTimeUnit")->string, "ms");
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  ASSERT_FALSE(events->items.empty());

  size_t complete_events = 0;
  std::vector<std::pair<double, double>> span_intervals;  // [ts, ts+dur)
  for (const JsonValue& event : events->items) {
    // Every event carries the mandatory trace-event fields.
    ASSERT_NE(event.Find("name"), nullptr);
    ASSERT_NE(event.Find("ph"), nullptr);
    ASSERT_NE(event.Find("pid"), nullptr);
    const std::string& ph = event.Find("ph")->string;
    EXPECT_TRUE(ph == "X" || ph == "M" || ph == "C") << ph;
    if (ph != "M") {
      ASSERT_NE(event.Find("ts"), nullptr);
      ASSERT_NE(event.Find("tid"), nullptr);
    }
    if (ph == "X") {
      ++complete_events;
      ASSERT_NE(event.Find("dur"), nullptr);
      EXPECT_GT(event.Find("dur")->number, 0.0);
      if (event.Find("pid")->number == 2.0) {  // Span-forest process.
        span_intervals.emplace_back(
            event.Find("ts")->number,
            event.Find("ts")->number + event.Find("dur")->number);
      }
    }
  }
  // 4 spans + 2 frames, all exported as complete events.
  EXPECT_EQ(complete_events, 6u);

  // Span intervals either nest or are disjoint — never partially overlap
  // (chrome://tracing renders partial overlaps wrong).
  ASSERT_EQ(span_intervals.size(), 4u);
  for (size_t i = 0; i < span_intervals.size(); ++i) {
    for (size_t j = i + 1; j < span_intervals.size(); ++j) {
      const auto& [a0, a1] = span_intervals[i];
      const auto& [b0, b1] = span_intervals[j];
      const bool disjoint = a1 <= b0 || b1 <= a0;
      const bool nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
      EXPECT_TRUE(disjoint || nested)
          << "[" << a0 << "," << a1 << ") vs [" << b0 << "," << b1 << ")";
    }
  }
  // The root "search" interval covers all four spans.
  EXPECT_DOUBLE_EQ(span_intervals[0].first, 0.0);
  EXPECT_DOUBLE_EQ(span_intervals[0].second, 4.0);
}

}  // namespace
}  // namespace hdov
