#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32c.h"
#include "persist/snapshot.h"
#include "persist/world_codec.h"
#include "storage/file_device.h"
#include "walkthrough/experiment_testbed.h"
#include "walkthrough/visual_system.h"

namespace hdov {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------- crc32c

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 CRC32C check value.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

// --------------------------------------------------------- file device

TEST(FilePageDeviceTest, RoundTripThroughReopen) {
  const std::string path = TempPath("hdov_file_device_test.bin");
  PersistStats stats;
  {
    auto device = FilePageDevice::Create(path, DiskModel(), nullptr, &stats);
    ASSERT_TRUE(device.ok()) << device.status().ToString();
    PageId a = (*device)->Allocate();
    ASSERT_TRUE((*device)->Write(a, "page a contents").ok());
    PageId sparse = (*device)->AllocateUnmaterialized(3);
    PageId b = (*device)->Allocate();
    ASSERT_TRUE((*device)->Write(b, "page b contents").ok());
    (void)sparse;
    ASSERT_TRUE((*device)->Sync().ok());
  }
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_GT(stats.fsyncs, 0u);

  auto reopened = FilePageDevice::Open(path, DiskModel(), nullptr, &stats);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->page_count(), 5u);
  std::string data;
  ASSERT_TRUE((*reopened)->Read(0, &data).ok());
  EXPECT_EQ(data.substr(0, 15), "page a contents");
  ASSERT_TRUE((*reopened)->Read(1, &data).ok());  // Unmaterialized.
  EXPECT_EQ(data, std::string((*reopened)->page_size(), '\0'));
  ASSERT_TRUE((*reopened)->Read(4, &data).ok());
  EXPECT_EQ(data.substr(0, 15), "page b contents");
  EXPECT_GT(stats.checksum_verifications, 0u);
  EXPECT_EQ(stats.checksum_failures, 0u);
  std::remove(path.c_str());
}

TEST(FilePageDeviceTest, BillingMatchesMemoryDevice) {
  const std::string path = TempPath("hdov_file_device_billing.bin");
  auto file = FilePageDevice::Create(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  PageDevice memory;

  // Identical operation sequence against both backends.
  const auto drive = [](PageDevice* device) {
    PageId a = device->Allocate();
    EXPECT_TRUE(device->Write(a, "alpha").ok());
    PageId run = device->AllocateUnmaterialized(6);
    PageId b = device->Allocate();
    EXPECT_TRUE(device->Write(b, "beta").ok());
    std::string data;
    EXPECT_TRUE(device->Read(a, &data).ok());
    EXPECT_TRUE(device->ReadRun(run, 6, nullptr).ok());
    EXPECT_TRUE(device->Read(b, &data).ok());
    EXPECT_TRUE(device->Read(b, &data).ok());  // Repeat: back-seek.
  };
  drive(file->get());
  drive(&memory);

  const IoStats& f = (*file)->stats();
  const IoStats& m = memory.stats();
  EXPECT_EQ(f.page_reads, m.page_reads);
  EXPECT_EQ(f.page_writes, m.page_writes);
  EXPECT_EQ(f.seeks, m.seeks);
  EXPECT_EQ(f.bytes_read, m.bytes_read);
  EXPECT_EQ(f.bytes_written, m.bytes_written);
  EXPECT_DOUBLE_EQ((*file)->clock().NowMillis(), memory.clock().NowMillis());
  std::remove(path.c_str());
}

TEST(FilePageDeviceTest, ConcurrentRawReadsAreSafe) {
  // Regression for the shared scratch buffer: FetchPage staged every read
  // through one `mutable std::string`, so two threads on the const read
  // path scribbled over each other's pages. Reads now use per-call
  // buffers; run under TSan this must be race-free, and the content
  // checks below catch cross-thread corruption anywhere.
  const std::string path = TempPath("hdov_file_device_concurrent.bin");
  constexpr int kPages = 16;
  {
    auto device = FilePageDevice::Create(path);
    ASSERT_TRUE(device.ok()) << device.status().ToString();
    for (int i = 0; i < kPages; ++i) {
      PageId p = (*device)->Allocate();
      ASSERT_TRUE(
          (*device)->Write(p, "payload of page " + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*device)->Sync().ok());
  }
  auto device = FilePageDevice::Open(path);
  ASSERT_TRUE(device.ok()) << device.status().ToString();

  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::string data;
      for (int i = 0; i < kIters; ++i) {
        const int page = (t * 5 + i * 3) % kPages;
        const std::string expected =
            "payload of page " + std::to_string(page);
        if (!(*device)->ReadRaw(page, &data).ok() ||
            data.substr(0, expected.size()) != expected) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  std::remove(path.c_str());
}

TEST(FilePageDeviceTest, CorruptedPageFailsChecksum) {
  const std::string path = TempPath("hdov_file_device_corrupt.bin");
  PersistStats stats;
  {
    auto device = FilePageDevice::Create(path, DiskModel(), nullptr, &stats);
    ASSERT_TRUE(device.ok());
    PageId p = (*device)->Allocate();
    ASSERT_TRUE((*device)->Write(p, "precious payload").ok());
    ASSERT_TRUE((*device)->Sync().ok());
  }
  {
    // Flip one byte inside the page's data slot (slot 0 lives one page
    // into the region).
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(DiskModel().page_size + 3);
    f.put('X');
  }
  auto device = FilePageDevice::Open(path, DiskModel(), nullptr, &stats);
  ASSERT_TRUE(device.ok()) << device.status().ToString();
  std::string data;
  Status read = (*device)->Read(0, &data);
  EXPECT_TRUE(read.IsCorruption()) << read.ToString();
  EXPECT_GT(stats.checksum_failures, 0u);
  std::remove(path.c_str());
}

// -------------------------------------------------------------- snapshot

TEST(SnapshotTest, BlobRoundTripAndAtomicCommit) {
  const std::string path = TempPath("hdov_snapshot_blobs.hdov");
  std::remove(path.c_str());
  {
    auto writer = SnapshotWriter::Create(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE((*writer)->AddBlob("alpha", "first blob").ok());
    ASSERT_TRUE((*writer)->AddBlob("beta", std::string(9000, 'b')).ok());
    // Nothing visible at the final path until Commit.
    EXPECT_FALSE(fs::exists(path));
    ASSERT_TRUE((*writer)->Commit().ok());
    EXPECT_TRUE(fs::exists(path));
  }
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  auto loader = SnapshotLoader::Open(path);
  ASSERT_TRUE(loader.ok()) << loader.status().ToString();
  EXPECT_TRUE((*loader)->Contains("alpha"));
  EXPECT_FALSE((*loader)->Contains("gamma"));
  auto alpha = (*loader)->ReadBlob("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(*alpha, "first blob");
  auto beta = (*loader)->ReadBlob("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(beta->size(), 9000u);
  EXPECT_TRUE((*loader)->ReadBlob("gamma").status().IsNotFound());
  std::remove(path.c_str());
}

TEST(SnapshotTest, UncommittedWriterLeavesNothingBehind) {
  const std::string path = TempPath("hdov_snapshot_abandoned.hdov");
  std::remove(path.c_str());
  {
    auto writer = SnapshotWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AddBlob("alpha", "doomed").ok());
    // Destroyed without Commit.
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(SnapshotTest, CorruptedBlobDetected) {
  const std::string path = TempPath("hdov_snapshot_corrupt.hdov");
  {
    auto writer = SnapshotWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AddBlob("alpha", std::string(100, 'a')).ok());
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  {
    // The first section starts one page in; damage a byte of it.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(DiskModel().page_size + 7);
    f.put('!');
  }
  PersistStats stats;
  auto loader = SnapshotLoader::Open(path, &stats);
  ASSERT_TRUE(loader.ok()) << loader.status().ToString();
  Status read = (*loader)->ReadBlob("alpha").status();
  EXPECT_TRUE(read.IsCorruption()) << read.ToString();
  EXPECT_GT(stats.checksum_failures, 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, DeviceSectionRoundTrip) {
  const std::string path = TempPath("hdov_snapshot_device.hdov");
  PageDevice source;
  PageId a = source.Allocate();
  ASSERT_TRUE(source.Write(a, "device payload").ok());
  source.AllocateUnmaterialized(5);
  PageId b = source.Allocate();
  ASSERT_TRUE(source.Write(b, "tail page").ok());
  {
    auto writer = SnapshotWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AddDevice("dev", source).ok());
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  auto loader = SnapshotLoader::Open(path);
  ASSERT_TRUE(loader.ok());

  PageDevice restored;
  ASSERT_TRUE((*loader)->RestoreDevice("dev", &restored).ok());
  ASSERT_EQ(restored.page_count(), source.page_count());
  std::string expect, got;
  for (PageId p = 0; p < source.page_count(); ++p) {
    EXPECT_EQ(source.IsMaterialized(p), restored.IsMaterialized(p));
    ASSERT_TRUE(source.ReadRaw(p, &expect).ok());
    ASSERT_TRUE(restored.ReadRaw(p, &got).ok());
    EXPECT_EQ(expect, got) << "page " << p;
  }

  auto opened = (*loader)->OpenDevice("dev", DiskModel(), nullptr);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_EQ((*opened)->page_count(), source.page_count());
  for (PageId p = 0; p < source.page_count(); ++p) {
    ASSERT_TRUE(source.ReadRaw(p, &expect).ok());
    ASSERT_TRUE((*opened)->ReadRaw(p, &got).ok());
    EXPECT_EQ(expect, got) << "page " << p;
  }
  std::remove(path.c_str());
}

// ----------------------------------------------------------- world codec

TEST(WorldCodecTest, SceneRoundTripsBitExactly) {
  TestbedOptions topt;
  topt.blocks = 3;
  topt.cells = 3;
  auto bed = BuildTestbed(topt);
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();

  std::string bytes;
  EncodeScene(bed->scene, &bytes);
  auto scene = DecodeScene(bytes);
  ASSERT_TRUE(scene.ok()) << scene.status().ToString();
  ASSERT_EQ(scene->size(), bed->scene.size());
  for (ObjectId id = 0; id < scene->size(); ++id) {
    const Object& in = bed->scene.object(id);
    const Object& out = scene->object(id);
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_TRUE(out.mbr == in.mbr);
    ASSERT_EQ(out.lods.num_levels(), in.lods.num_levels());
    for (size_t l = 0; l < in.lods.num_levels(); ++l) {
      EXPECT_EQ(out.lods.level(l).triangle_count,
                in.lods.level(l).triangle_count);
      EXPECT_EQ(out.lods.level(l).byte_size, in.lods.level(l).byte_size);
    }
  }
  EXPECT_TRUE(scene->bounds() == bed->scene.bounds());

  std::string table_bytes;
  EncodeVisibilityTable(bed->table, &table_bytes);
  auto table = DecodeVisibilityTable(table_bytes);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_cells(), bed->table.num_cells());
  for (CellId c = 0; c < table->num_cells(); ++c) {
    EXPECT_EQ(table->cell(c).ids, bed->table.cell(c).ids);
    EXPECT_EQ(table->cell(c).dov, bed->table.cell(c).dov);
  }
}

// ------------------------------------------------- world round trip

class WorldRoundTripTest : public ::testing::Test {
 protected:
  static constexpr const char* kPath = "hdov_world_roundtrip.hdov";

  void SetUp() override {
    path_ = TempPath(kPath);
    TestbedOptions topt;
    topt.blocks = 4;
    topt.cells = 4;
    auto bed = BuildTestbed(topt);
    ASSERT_TRUE(bed.ok()) << bed.status().ToString();
    bed_ = std::make_unique<Testbed>(std::move(*bed));

    auto writer = SnapshotWriter::Create(path_);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(
        WriteWorldSnapshot(writer->get(), *bed_, DefaultVisualOptions())
            .ok());
    ASSERT_TRUE((*writer)->Commit().ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Runs the fig7-style query workload and returns per-query results plus
  // the I/O counter and simulated-clock deltas through the out-params.
  static void Drive(VisualSystem* system, const Aabb& bounds,
                    std::vector<std::vector<RetrievedLod>>* results,
                    IoStats* io, double* millis) {
    system->ResetRuntime();
    system->ResetIoStats();
    std::vector<Vec3> viewpoints;
    for (int i = 0; i < 8; ++i) {
      const double t = (i + 0.5) / 8.0;
      viewpoints.emplace_back(
          bounds.min.x + t * (bounds.max.x - bounds.min.x),
          bounds.min.y + (1.0 - t) * (bounds.max.y - bounds.min.y), 1.7);
    }
    const double t0 = system->clock().NowMillis();
    for (double eta : {0.0, 0.001, 0.004}) {
      system->set_eta(eta);
      for (const Vec3& p : viewpoints) {
        std::vector<RetrievedLod> result;
        ASSERT_TRUE(
            system->Query(p, /*fetch_models=*/true, &result, nullptr).ok());
        results->push_back(std::move(result));
      }
    }
    *io = system->TotalIoStats();
    *millis = system->clock().NowMillis() - t0;
  }

  static void ExpectIdentical(VisualSystem* built, VisualSystem* loaded,
                              const Aabb& bounds) {
    std::vector<std::vector<RetrievedLod>> built_results, loaded_results;
    IoStats built_io, loaded_io;
    double built_ms = 0.0, loaded_ms = 0.0;
    Drive(built, bounds, &built_results, &built_io, &built_ms);
    Drive(loaded, bounds, &loaded_results, &loaded_io, &loaded_ms);

    // Bit-identical result sets...
    ASSERT_EQ(built_results.size(), loaded_results.size());
    for (size_t q = 0; q < built_results.size(); ++q) {
      ASSERT_EQ(built_results[q].size(), loaded_results[q].size())
          << "query " << q;
      for (size_t i = 0; i < built_results[q].size(); ++i) {
        const RetrievedLod& a = built_results[q][i];
        const RetrievedLod& b = loaded_results[q][i];
        EXPECT_EQ(a.owner, b.owner);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.model, b.model);
        EXPECT_EQ(a.lod_level, b.lod_level);
        EXPECT_EQ(a.byte_size, b.byte_size);
        EXPECT_EQ(a.triangle_count, b.triangle_count);
      }
    }
    // ...and identical simulated counters.
    EXPECT_EQ(built_io.page_reads, loaded_io.page_reads);
    EXPECT_EQ(built_io.seeks, loaded_io.seeks);
    EXPECT_EQ(built_io.bytes_read, loaded_io.bytes_read);
    EXPECT_DOUBLE_EQ(built_ms, loaded_ms);
  }

  std::string path_;
  std::unique_ptr<Testbed> bed_;
};

TEST_F(WorldRoundTripTest, LoadedWorldMatchesTestbed) {
  auto loader = SnapshotLoader::Open(path_);
  ASSERT_TRUE(loader.ok());
  auto loaded = LoadWorldSections(**loader);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->scene.size(), bed_->scene.size());
  EXPECT_EQ(loaded->grid.num_cells(), bed_->grid.num_cells());
  EXPECT_EQ(loaded->table.num_cells(), bed_->table.num_cells());
}

TEST_F(WorldRoundTripTest, EverySchemeMatchesInBothLoadModes) {
  PersistStats stats;
  auto loader = SnapshotLoader::Open(path_, &stats);
  ASSERT_TRUE(loader.ok());
  auto loaded_bed = LoadWorldSections(**loader);
  ASSERT_TRUE(loaded_bed.ok());

  for (StorageScheme scheme :
       {StorageScheme::kHorizontal, StorageScheme::kVertical,
        StorageScheme::kIndexedVertical, StorageScheme::kBitmapVertical}) {
    SCOPED_TRACE(StorageSchemeName(scheme));
    VisualOptions vopt = DefaultVisualOptions();
    vopt.scheme = scheme;
    auto built = VisualSystem::Create(&bed_->scene, &bed_->grid,
                                      &bed_->table, vopt);
    ASSERT_TRUE(built.ok()) << built.status().ToString();

    for (SnapshotLoadMode mode : {SnapshotLoadMode::kMemoryResident,
                                  SnapshotLoadMode::kFileBacked}) {
      auto loaded = VisualSystem::CreateFromSnapshot(
          **loader, &loaded_bed->scene, &loaded_bed->grid, vopt, mode);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      ExpectIdentical(built->get(), loaded->get(), bed_->scene.bounds());
    }
  }
  EXPECT_GT(stats.load_millis, 0.0);
  EXPECT_GT(stats.checksum_verifications, 0u);
  EXPECT_EQ(stats.checksum_failures, 0u);
}

}  // namespace
}  // namespace hdov
