#include "telemetry/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace hdov {
namespace {

using telemetry::DecodeFlightDump;
using telemetry::EncodeFlightDump;
using telemetry::FlightChromeTraceJson;
using telemetry::FlightDump;
using telemetry::FlightEvent;
using telemetry::FlightEventType;
using telemetry::FlightFrameScope;
using telemetry::FlightInternName;
using telemetry::FlightNameForId;
using telemetry::FlightRecorder;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(FlightRecorderTest, RecordAndDrainInOrder) {
  FlightRecorder recorder(64);
  const uint16_t code = FlightInternName("test-device");
  recorder.Record(FlightEventType::kPageRead, code, 7, 2);
  recorder.Record(FlightEventType::kPoolHit, code, 7, 0);
  recorder.Record(FlightEventType::kFrameEnd, code, 0, 9);

  FlightDump dump = recorder.Drain();
  ASSERT_EQ(dump.events.size(), 3u);
  EXPECT_EQ(dump.events[0].type,
            static_cast<uint16_t>(FlightEventType::kPageRead));
  EXPECT_EQ(dump.events[0].a, 7u);
  EXPECT_EQ(dump.events[0].b, 2u);
  EXPECT_EQ(dump.events[1].type,
            static_cast<uint16_t>(FlightEventType::kPoolHit));
  EXPECT_EQ(dump.events[2].b, 9u);
  // Same-buffer events drain in recording order even with tied timestamps.
  EXPECT_LE(dump.events[0].ts_ns, dump.events[1].ts_ns);
  EXPECT_LE(dump.events[1].ts_ns, dump.events[2].ts_ns);
  // The dump's name table resolves the interned code.
  EXPECT_EQ(dump.NameOf(dump.events[0]), "test-device");
  EXPECT_EQ(recorder.events_recorded(), 3u);
  EXPECT_EQ(recorder.events_dropped(), 0u);
}

TEST(FlightRecorderTest, DisabledRecorderDropsNothingSilently) {
  FlightRecorder recorder(64);
  recorder.set_enabled(false);
  recorder.Record(FlightEventType::kPageRead, 0, 1, 1);
  EXPECT_EQ(recorder.events_recorded(), 0u);
  EXPECT_TRUE(recorder.Drain().events.empty());
  recorder.set_enabled(true);
  recorder.Record(FlightEventType::kPageRead, 0, 1, 1);
  EXPECT_EQ(recorder.Drain().events.size(), 1u);
}

TEST(FlightRecorderTest, WraparoundAccountsDroppedEvents) {
  // Capacity 8: recording 20 events overwrites the first 12.
  FlightRecorder recorder(8);
  ASSERT_EQ(recorder.events_per_thread(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    recorder.Record(FlightEventType::kPoolMiss, 0, i, 0);
  }
  EXPECT_EQ(recorder.events_recorded(), 20u);
  EXPECT_EQ(recorder.events_dropped(), 12u);

  FlightDump dump = recorder.Drain(/*consume=*/true);
  EXPECT_EQ(dump.dropped, 12u);
  // The drain conservatively discards one extra slot (the one a concurrent
  // writer could be filling), so 7 of the surviving 8 events come back,
  // oldest first.
  ASSERT_EQ(dump.events.size(), 7u);
  EXPECT_EQ(dump.events.front().a, 13u);
  EXPECT_EQ(dump.events.back().a, 19u);
}

TEST(FlightRecorderTest, DrainConsumeIsExactlyOnce) {
  FlightRecorder recorder(16);
  for (uint64_t i = 0; i < 5; ++i) {
    recorder.Record(FlightEventType::kPageWrite, 0, i, 1);
  }
  EXPECT_EQ(recorder.Drain(/*consume=*/true).events.size(), 5u);
  // Already-consumed events neither reappear nor count as dropped.
  EXPECT_TRUE(recorder.Drain(/*consume=*/true).events.empty());
  EXPECT_EQ(recorder.events_dropped(), 0u);
  recorder.Record(FlightEventType::kPageWrite, 0, 99, 1);
  FlightDump dump = recorder.Drain();
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.events[0].a, 99u);
}

TEST(FlightRecorderTest, ConcurrentWritersFromThreadPool) {
  constexpr size_t kWriters = 4;
  constexpr uint64_t kPerWriter = 5000;
  FlightRecorder recorder(1 << 14);  // Roomy: no ring wraps.
  ThreadPool pool(kWriters);
  // ParallelFor self-schedules, so a fast participant could otherwise
  // grab every index; the barrier pins each index to a distinct thread.
  std::atomic<size_t> arrived{0};
  pool.ParallelFor(kWriters, [&](size_t, size_t i) {
    arrived.fetch_add(1);
    while (arrived.load() < kWriters) {
      std::this_thread::yield();
    }
    for (uint64_t n = 0; n < kPerWriter; ++n) {
      recorder.Record(FlightEventType::kPoolHit,
                      static_cast<uint16_t>(0), i, n);
    }
  });
  pool.Wait();
  EXPECT_EQ(recorder.num_threads(), kWriters);
  EXPECT_EQ(recorder.events_recorded(), kWriters * kPerWriter);
  EXPECT_EQ(recorder.events_dropped(), 0u);

  FlightDump dump = recorder.Drain();
  EXPECT_EQ(dump.events.size(), kWriters * kPerWriter);
  // Each participating thread recorded into its own ring; per-thread event
  // sequences stay internally ordered by `b`.
  std::vector<uint64_t> next_b(recorder.num_threads(), 0);
  for (const FlightEvent& ev : dump.events) {
    ASSERT_LT(ev.thread, next_b.size());
    EXPECT_EQ(ev.b, next_b[ev.thread]);
    ++next_b[ev.thread];
  }
}

TEST(FlightRecorderTest, ConcurrentDrainWhileRecording) {
  // TSan exercise: writers lap their rings while the main thread drains.
  constexpr size_t kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  FlightRecorder recorder(64);  // Tiny: constant wraparound.
  ThreadPool pool(kWriters);
  std::atomic<bool> done{false};
  pool.Submit([&] {
    ThreadPool inner(kWriters);
    inner.ParallelFor(kWriters, [&](size_t, size_t i) {
      for (uint64_t n = 0; n < kPerWriter; ++n) {
        recorder.Record(FlightEventType::kPageRead,
                        static_cast<uint16_t>(i), n, 1);
      }
    });
    inner.Wait();
    done.store(true);
  });
  uint64_t drained = 0;
  while (!done.load()) {
    drained += recorder.Drain(/*consume=*/true).events.size();
  }
  pool.Wait();
  drained += recorder.Drain(/*consume=*/true).events.size();
  const uint64_t dropped = recorder.events_dropped();
  // No event is lost AND kept: drained + dropped covers every record.
  // (Conservatively discarded drain slots are the only slack, and they
  // are re-drained on the next pass or counted dropped at the end.)
  EXPECT_EQ(recorder.events_recorded(), kWriters * kPerWriter);
  EXPECT_LE(drained + dropped, kWriters * kPerWriter);
  EXPECT_GT(drained, 0u);
}

TEST(FlightRecorderTest, InternTableDeduplicatesAndDegrades) {
  const uint16_t a = FlightInternName("flight-intern-a");
  const uint16_t b = FlightInternName("flight-intern-b");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(FlightInternName("flight-intern-a"), a);
  EXPECT_EQ(FlightNameForId(a), "flight-intern-a");
  EXPECT_EQ(FlightNameForId(0), "?");
  EXPECT_EQ(FlightNameForId(static_cast<uint16_t>(60000)), "?");
}

TEST(FlightRecorderTest, DumpFileRoundTrip) {
  FlightRecorder recorder(32);
  const uint16_t code = FlightInternName("roundtrip-device");
  for (uint64_t i = 0; i < 6; ++i) {
    recorder.Record(FlightEventType::kPageRead, code, i * 3, 2);
  }
  const std::string path = TempPath("flight_roundtrip.bin");
  ASSERT_TRUE(recorder.WriteDump(path).ok());

  Result<FlightDump> read = FlightRecorder::ReadDump(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->events.size(), 6u);
  EXPECT_EQ(read->dropped, 0u);
  for (size_t i = 0; i < read->events.size(); ++i) {
    EXPECT_EQ(read->events[i].a, i * 3);
    EXPECT_EQ(read->events[i].b, 2u);
    EXPECT_EQ(read->NameOf(read->events[i]), "roundtrip-device");
  }
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, DecodeRejectsMalformedDumps) {
  EXPECT_FALSE(DecodeFlightDump("not a dump").ok());
  EXPECT_FALSE(DecodeFlightDump("").ok());

  FlightDump dump;
  dump.names = {"?"};
  FlightEvent ev;
  ev.type = static_cast<uint16_t>(FlightEventType::kPageRead);
  dump.events.push_back(ev);
  const std::string encoded = EncodeFlightDump(dump);
  ASSERT_TRUE(DecodeFlightDump(encoded).ok());
  // Truncation anywhere inside the event section fails cleanly.
  EXPECT_FALSE(DecodeFlightDump(encoded.substr(0, encoded.size() - 1)).ok());
  // Trailing garbage is rejected, not ignored.
  EXPECT_FALSE(DecodeFlightDump(encoded + "x").ok());
}

TEST(FlightRecorderTest, ChromeTraceConversion) {
  FlightDump dump;
  dump.names = {"?", "visual"};
  FlightEvent begin;
  begin.ts_ns = 1000;
  begin.type = static_cast<uint16_t>(FlightEventType::kFrameBegin);
  begin.code = 1;
  begin.a = 0;
  FlightEvent io = begin;
  io.ts_ns = 2000;
  io.type = static_cast<uint16_t>(FlightEventType::kPageRead);
  FlightEvent end = begin;
  end.ts_ns = 3000;
  end.type = static_cast<uint16_t>(FlightEventType::kFrameEnd);
  end.b = 4;
  dump.events = {begin, io, end};

  const std::string json = FlightChromeTraceJson(dump);
  // Frame boundaries pair as B/E duration events under pid 3; the page
  // read becomes an instant.
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"visual\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"page_read\""), std::string::npos);
}

TEST(FlightRecorderTest, FrameScopeBracketsWithIoPages) {
  telemetry::FlightRecorder& global = telemetry::GlobalFlightRecorder();
  global.Drain(/*consume=*/true);  // Start from a clean window.
  const uint16_t code = FlightInternName("scope-system");
  {
    FlightFrameScope scope(code, 41);
    scope.set_io_pages(17);
  }
  FlightDump dump = global.Drain(/*consume=*/true);
  const FlightEvent* begin = nullptr;
  const FlightEvent* end = nullptr;
  for (const FlightEvent& ev : dump.events) {
    if (ev.code != code) {
      continue;
    }
    if (ev.type == static_cast<uint16_t>(FlightEventType::kFrameBegin)) {
      begin = &ev;
    } else if (ev.type ==
               static_cast<uint16_t>(FlightEventType::kFrameEnd)) {
      end = &ev;
    }
  }
  ASSERT_NE(begin, nullptr);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(begin->a, 41u);
  EXPECT_EQ(end->a, 41u);
  EXPECT_EQ(end->b, 17u);
  EXPECT_LE(begin->ts_ns, end->ts_ns);
}

}  // namespace
}  // namespace hdov
