#include "telemetry/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/thread_pool.h"
#include "telemetry/trace_context.h"

namespace hdov {
namespace {

using telemetry::DecodeFlightDump;
using telemetry::EncodeFlightDump;
using telemetry::FlightChromeTraceJson;
using telemetry::FlightDump;
using telemetry::FlightEvent;
using telemetry::FlightEventType;
using telemetry::FlightFrameScope;
using telemetry::FlightInternName;
using telemetry::FlightNameCount;
using telemetry::FlightNameForId;
using telemetry::FlightNamesDropped;
using telemetry::FlightRecorder;
using telemetry::kMaxFlightNames;
using telemetry::SessionTraceScope;
using telemetry::StageTraceScope;
using telemetry::TraceStage;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(FlightRecorderTest, RecordAndDrainInOrder) {
  FlightRecorder recorder(64);
  const uint16_t code = FlightInternName("test-device");
  recorder.Record(FlightEventType::kPageRead, code, 7, 2);
  recorder.Record(FlightEventType::kPoolHit, code, 7, 0);
  recorder.Record(FlightEventType::kFrameEnd, code, 0, 9);

  FlightDump dump = recorder.Drain();
  ASSERT_EQ(dump.events.size(), 3u);
  EXPECT_EQ(dump.events[0].type,
            static_cast<uint16_t>(FlightEventType::kPageRead));
  EXPECT_EQ(dump.events[0].a, 7u);
  EXPECT_EQ(dump.events[0].b, 2u);
  EXPECT_EQ(dump.events[1].type,
            static_cast<uint16_t>(FlightEventType::kPoolHit));
  EXPECT_EQ(dump.events[2].b, 9u);
  // Same-buffer events drain in recording order even with tied timestamps.
  EXPECT_LE(dump.events[0].ts_ns, dump.events[1].ts_ns);
  EXPECT_LE(dump.events[1].ts_ns, dump.events[2].ts_ns);
  // The dump's name table resolves the interned code.
  EXPECT_EQ(dump.NameOf(dump.events[0]), "test-device");
  EXPECT_EQ(recorder.events_recorded(), 3u);
  EXPECT_EQ(recorder.events_dropped(), 0u);
}

TEST(FlightRecorderTest, DisabledRecorderDropsNothingSilently) {
  FlightRecorder recorder(64);
  recorder.set_enabled(false);
  recorder.Record(FlightEventType::kPageRead, 0, 1, 1);
  EXPECT_EQ(recorder.events_recorded(), 0u);
  EXPECT_TRUE(recorder.Drain().events.empty());
  recorder.set_enabled(true);
  recorder.Record(FlightEventType::kPageRead, 0, 1, 1);
  EXPECT_EQ(recorder.Drain().events.size(), 1u);
}

TEST(FlightRecorderTest, WraparoundAccountsDroppedEvents) {
  // Capacity 8: recording 20 events overwrites the first 12.
  FlightRecorder recorder(8);
  ASSERT_EQ(recorder.events_per_thread(), 8u);
  for (uint64_t i = 0; i < 20; ++i) {
    recorder.Record(FlightEventType::kPoolMiss, 0, i, 0);
  }
  EXPECT_EQ(recorder.events_recorded(), 20u);
  EXPECT_EQ(recorder.events_dropped(), 12u);

  FlightDump dump = recorder.Drain(/*consume=*/true);
  EXPECT_EQ(dump.dropped, 12u);
  // The drain conservatively discards one extra slot (the one a concurrent
  // writer could be filling), so 7 of the surviving 8 events come back,
  // oldest first.
  ASSERT_EQ(dump.events.size(), 7u);
  EXPECT_EQ(dump.events.front().a, 13u);
  EXPECT_EQ(dump.events.back().a, 19u);
}

TEST(FlightRecorderTest, DrainConsumeIsExactlyOnce) {
  FlightRecorder recorder(16);
  for (uint64_t i = 0; i < 5; ++i) {
    recorder.Record(FlightEventType::kPageWrite, 0, i, 1);
  }
  EXPECT_EQ(recorder.Drain(/*consume=*/true).events.size(), 5u);
  // Already-consumed events neither reappear nor count as dropped.
  EXPECT_TRUE(recorder.Drain(/*consume=*/true).events.empty());
  EXPECT_EQ(recorder.events_dropped(), 0u);
  recorder.Record(FlightEventType::kPageWrite, 0, 99, 1);
  FlightDump dump = recorder.Drain();
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.events[0].a, 99u);
}

TEST(FlightRecorderTest, ConcurrentWritersFromThreadPool) {
  constexpr size_t kWriters = 4;
  constexpr uint64_t kPerWriter = 5000;
  FlightRecorder recorder(1 << 14);  // Roomy: no ring wraps.
  ThreadPool pool(kWriters);
  // ParallelFor self-schedules, so a fast participant could otherwise
  // grab every index; the barrier pins each index to a distinct thread.
  std::atomic<size_t> arrived{0};
  pool.ParallelFor(kWriters, [&](size_t, size_t i) {
    arrived.fetch_add(1);
    while (arrived.load() < kWriters) {
      std::this_thread::yield();
    }
    for (uint64_t n = 0; n < kPerWriter; ++n) {
      recorder.Record(FlightEventType::kPoolHit,
                      static_cast<uint16_t>(0), i, n);
    }
  });
  pool.Wait();
  EXPECT_EQ(recorder.num_threads(), kWriters);
  EXPECT_EQ(recorder.events_recorded(), kWriters * kPerWriter);
  EXPECT_EQ(recorder.events_dropped(), 0u);

  FlightDump dump = recorder.Drain();
  EXPECT_EQ(dump.events.size(), kWriters * kPerWriter);
  // Each participating thread recorded into its own ring; per-thread event
  // sequences stay internally ordered by `b`.
  std::vector<uint64_t> next_b(recorder.num_threads(), 0);
  for (const FlightEvent& ev : dump.events) {
    ASSERT_LT(ev.thread, next_b.size());
    EXPECT_EQ(ev.b, next_b[ev.thread]);
    ++next_b[ev.thread];
  }
}

TEST(FlightRecorderTest, ConcurrentDrainWhileRecording) {
  // TSan exercise: writers lap their rings while the main thread drains.
  constexpr size_t kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  FlightRecorder recorder(64);  // Tiny: constant wraparound.
  ThreadPool pool(kWriters);
  std::atomic<bool> done{false};
  pool.Submit([&] {
    ThreadPool inner(kWriters);
    inner.ParallelFor(kWriters, [&](size_t, size_t i) {
      for (uint64_t n = 0; n < kPerWriter; ++n) {
        recorder.Record(FlightEventType::kPageRead,
                        static_cast<uint16_t>(i), n, 1);
      }
    });
    inner.Wait();
    done.store(true);
  });
  uint64_t drained = 0;
  while (!done.load()) {
    drained += recorder.Drain(/*consume=*/true).events.size();
  }
  pool.Wait();
  drained += recorder.Drain(/*consume=*/true).events.size();
  const uint64_t dropped = recorder.events_dropped();
  // No event is lost AND kept: drained + dropped covers every record.
  // (Conservatively discarded drain slots are the only slack, and they
  // are re-drained on the next pass or counted dropped at the end.)
  EXPECT_EQ(recorder.events_recorded(), kWriters * kPerWriter);
  EXPECT_LE(drained + dropped, kWriters * kPerWriter);
  EXPECT_GT(drained, 0u);
}

TEST(FlightRecorderTest, InternTableDeduplicatesAndDegrades) {
  const uint16_t a = FlightInternName("flight-intern-a");
  const uint16_t b = FlightInternName("flight-intern-b");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(FlightInternName("flight-intern-a"), a);
  EXPECT_EQ(FlightNameForId(a), "flight-intern-a");
  EXPECT_EQ(FlightNameForId(0), "?");
  EXPECT_EQ(FlightNameForId(static_cast<uint16_t>(60000)), "?");
}

TEST(FlightRecorderTest, DumpFileRoundTrip) {
  FlightRecorder recorder(32);
  const uint16_t code = FlightInternName("roundtrip-device");
  for (uint64_t i = 0; i < 6; ++i) {
    recorder.Record(FlightEventType::kPageRead, code, i * 3, 2);
  }
  const std::string path = TempPath("flight_roundtrip.bin");
  ASSERT_TRUE(recorder.WriteDump(path).ok());

  Result<FlightDump> read = FlightRecorder::ReadDump(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->events.size(), 6u);
  EXPECT_EQ(read->dropped, 0u);
  for (size_t i = 0; i < read->events.size(); ++i) {
    EXPECT_EQ(read->events[i].a, i * 3);
    EXPECT_EQ(read->events[i].b, 2u);
    EXPECT_EQ(read->NameOf(read->events[i]), "roundtrip-device");
  }
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, DecodeRejectsMalformedDumps) {
  EXPECT_FALSE(DecodeFlightDump("not a dump").ok());
  EXPECT_FALSE(DecodeFlightDump("").ok());

  FlightDump dump;
  dump.names = {"?"};
  FlightEvent ev;
  ev.type = static_cast<uint16_t>(FlightEventType::kPageRead);
  dump.events.push_back(ev);
  const std::string encoded = EncodeFlightDump(dump);
  ASSERT_TRUE(DecodeFlightDump(encoded).ok());
  // Truncation anywhere inside the event section fails cleanly.
  EXPECT_FALSE(DecodeFlightDump(encoded.substr(0, encoded.size() - 1)).ok());
  // Trailing garbage is rejected, not ignored.
  EXPECT_FALSE(DecodeFlightDump(encoded + "x").ok());
}

TEST(FlightRecorderTest, ChromeTraceConversion) {
  FlightDump dump;
  dump.names = {"?", "visual"};
  FlightEvent begin;
  begin.ts_ns = 1000;
  begin.type = static_cast<uint16_t>(FlightEventType::kFrameBegin);
  begin.code = 1;
  begin.a = 0;
  FlightEvent io = begin;
  io.ts_ns = 2000;
  io.type = static_cast<uint16_t>(FlightEventType::kPageRead);
  FlightEvent end = begin;
  end.ts_ns = 3000;
  end.type = static_cast<uint16_t>(FlightEventType::kFrameEnd);
  end.b = 4;
  dump.events = {begin, io, end};

  const std::string json = FlightChromeTraceJson(dump);
  // Frame boundaries pair as B/E duration events under pid 3; the page
  // read becomes an instant.
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"visual\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"page_read\""), std::string::npos);
}

TEST(FlightRecorderTest, FrameScopeBracketsWithIoPages) {
  telemetry::FlightRecorder& global = telemetry::GlobalFlightRecorder();
  global.Drain(/*consume=*/true);  // Start from a clean window.
  const uint16_t code = FlightInternName("scope-system");
  {
    FlightFrameScope scope(code, 41);
    scope.set_io_pages(17);
  }
  FlightDump dump = global.Drain(/*consume=*/true);
  const FlightEvent* begin = nullptr;
  const FlightEvent* end = nullptr;
  for (const FlightEvent& ev : dump.events) {
    if (ev.code != code) {
      continue;
    }
    if (ev.type == static_cast<uint16_t>(FlightEventType::kFrameBegin)) {
      begin = &ev;
    } else if (ev.type ==
               static_cast<uint16_t>(FlightEventType::kFrameEnd)) {
      end = &ev;
    }
  }
  ASSERT_NE(begin, nullptr);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(begin->a, 41u);
  EXPECT_EQ(end->a, 41u);
  EXPECT_EQ(end->b, 17u);
  EXPECT_LE(begin->ts_ns, end->ts_ns);
}

TEST(FlightRecorderTest, RecordStampsAmbientTraceContext) {
  FlightRecorder recorder(64);
  const uint16_t code = FlightInternName("ctx-device");
  const uint16_t session = FlightInternName("ctx-session");
  recorder.Record(FlightEventType::kPoolHit, code, 1, 0);
  {
    SessionTraceScope trace(session, 5);
    StageTraceScope stage(TraceStage::kFetch);
    recorder.Record(FlightEventType::kPoolMiss, code, 2, 0);
  }
  recorder.Record(FlightEventType::kPoolHit, code, 3, 0);

  FlightDump dump = recorder.Drain();
  ASSERT_EQ(dump.events.size(), 3u);
  // Outside any scope: unattributed.
  EXPECT_EQ(dump.events[0].session, 0u);
  EXPECT_EQ(dump.events[0].stage, 0u);
  // Inside the scopes: stamped with session and stage.
  EXPECT_EQ(dump.events[1].session, session);
  EXPECT_EQ(dump.events[1].stage, static_cast<uint8_t>(TraceStage::kFetch));
  // After the scopes unwind: unattributed again.
  EXPECT_EQ(dump.events[2].session, 0u);
  EXPECT_EQ(dump.events[2].stage, 0u);
  // The dump's name table resolves the session id too.
  EXPECT_EQ(dump.names[session], "ctx-session");
}

TEST(FlightRecorderTest, DumpRoundTripPreservesAttribution) {
  FlightDump dump;
  dump.names = {"?", "attr-session", "attr-device"};
  dump.dropped = 4;
  dump.names_dropped = 9;
  FlightEvent ev;
  ev.ts_ns = 1234;
  ev.type = static_cast<uint8_t>(FlightEventType::kPoolMiss);
  ev.stage = static_cast<uint8_t>(TraceStage::kSearch);
  ev.code = 2;
  ev.thread = 3;
  ev.session = 1;
  ev.a = 77;
  ev.b = 88;
  dump.events.push_back(ev);

  Result<FlightDump> back = DecodeFlightDump(EncodeFlightDump(dump));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->dropped, 4u);
  EXPECT_EQ(back->names_dropped, 9u);
  ASSERT_EQ(back->events.size(), 1u);
  const FlightEvent& rt = back->events[0];
  EXPECT_EQ(rt.ts_ns, 1234u);
  EXPECT_EQ(rt.type, static_cast<uint8_t>(FlightEventType::kPoolMiss));
  EXPECT_EQ(rt.stage, static_cast<uint8_t>(TraceStage::kSearch));
  EXPECT_EQ(rt.code, 2u);
  EXPECT_EQ(rt.thread, 3u);
  EXPECT_EQ(rt.session, 1u);
  EXPECT_EQ(rt.a, 77u);
  EXPECT_EQ(rt.b, 88u);
}

TEST(FlightRecorderTest, V1DumpDecodesWithZeroAttribution) {
  // A v1 dump hand-built byte for byte: no names_dropped field, and the
  // event meta packs type(16) | code(16) | thread(32).
  std::string data("HDOVFREC", 8);
  EncodeFixed32(&data, 1);  // version
  EncodeFixed32(&data, 2);  // name count
  EncodeFixed64(&data, 1);  // event count
  EncodeFixed64(&data, 6);  // dropped
  EncodeFixed32(&data, 1);
  data += "?";
  EncodeFixed32(&data, 6);
  data += "legacy";
  EncodeFixed64(&data, 42);  // ts_ns
  EncodeFixed64(&data,
                static_cast<uint64_t>(FlightEventType::kPoolHit) |
                    (static_cast<uint64_t>(1) << 16) |
                    (static_cast<uint64_t>(7) << 32));
  EncodeFixed64(&data, 99);  // a
  EncodeFixed64(&data, 3);   // b

  Result<FlightDump> dump = DecodeFlightDump(data);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(dump->dropped, 6u);
  EXPECT_EQ(dump->names_dropped, 0u);  // Field postdates v1.
  ASSERT_EQ(dump->events.size(), 1u);
  const FlightEvent& ev = dump->events[0];
  EXPECT_EQ(ev.ts_ns, 42u);
  EXPECT_EQ(ev.type, static_cast<uint8_t>(FlightEventType::kPoolHit));
  EXPECT_EQ(ev.code, 1u);
  EXPECT_EQ(ev.thread, 7u);
  EXPECT_EQ(dump->NameOf(ev), "legacy");
  // v1 predates attribution: session and stage decode as zero.
  EXPECT_EQ(ev.session, 0u);
  EXPECT_EQ(ev.stage, 0u);

  // Version skew does not relax the corruption checks: a truncated tail
  // and trailing garbage both fail for v1 exactly as for v2.
  EXPECT_FALSE(DecodeFlightDump(data.substr(0, data.size() - 1)).ok());
  EXPECT_FALSE(DecodeFlightDump(data.substr(0, data.size() - 17)).ok());
  EXPECT_FALSE(DecodeFlightDump(data + "x").ok());

  // An unknown future version is rejected outright.
  std::string future("HDOVFREC", 8);
  EncodeFixed32(&future, 99);
  EXPECT_FALSE(DecodeFlightDump(future).ok());
}

TEST(FlightRecorderTest, NamesDroppedCountsTableOverflow) {
  // Fills the process-wide intern table to its cap. Each ctest case runs
  // in its own process (gtest_discover_tests), so the pollution cannot
  // leak into other tests.
  const uint64_t before = FlightNamesDropped();
  for (size_t i = 0;
       FlightNameCount() < kMaxFlightNames && i < kMaxFlightNames + 8;
       ++i) {
    FlightInternName("overflow-filler-" + std::to_string(i));
  }
  ASSERT_EQ(FlightNameCount(), kMaxFlightNames);

  EXPECT_EQ(FlightInternName("overflow-past-cap-a"), 0u);
  EXPECT_EQ(FlightInternName("overflow-past-cap-b"), 0u);
  EXPECT_EQ(FlightNamesDropped(), before + 2);
  // Refused names degrade to the reserved "?" id, and names interned
  // before the cap still resolve.
  EXPECT_EQ(FlightNameForId(0), "?");
  EXPECT_EQ(FlightInternName("overflow-filler-0"),
            FlightInternName("overflow-filler-0"));

  // Drained dumps carry the counter, so it survives into dump files.
  FlightRecorder recorder(8);
  recorder.Record(FlightEventType::kPoolHit, 0, 1, 0);
  EXPECT_EQ(recorder.Drain().names_dropped, before + 2);
}

}  // namespace
}  // namespace hdov
