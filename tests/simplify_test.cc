#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "mesh/primitives.h"
#include "simplify/lod_chain.h"
#include "simplify/quadric.h"
#include "simplify/simplifier.h"

namespace hdov {
namespace {

TEST(QuadricTest, ZeroQuadricHasZeroError) {
  Quadric q;
  EXPECT_DOUBLE_EQ(q.Error(Vec3(1, 2, 3)), 0.0);
}

TEST(QuadricTest, PlaneErrorIsSquaredDistance) {
  // Plane z = 2 with unit normal.
  Quadric q = Quadric::FromPlane(Vec3(0, 0, 1), -2.0);
  EXPECT_NEAR(q.Error(Vec3(5, 5, 2)), 0.0, 1e-12);
  EXPECT_NEAR(q.Error(Vec3(0, 0, 5)), 9.0, 1e-12);
  EXPECT_NEAR(q.Error(Vec3(0, 0, -1)), 9.0, 1e-12);
}

TEST(QuadricTest, WeightScalesError) {
  Quadric q = Quadric::FromPlane(Vec3(0, 0, 1), 0.0, 4.0);
  EXPECT_NEAR(q.Error(Vec3(0, 0, 3)), 36.0, 1e-12);
}

TEST(QuadricTest, SumAccumulatesPlanes) {
  Quadric q = Quadric::FromPlane(Vec3(1, 0, 0), 0.0) +
              Quadric::FromPlane(Vec3(0, 1, 0), 0.0);
  EXPECT_NEAR(q.Error(Vec3(3, 4, 0)), 9.0 + 16.0, 1e-12);
}

TEST(QuadricTest, OptimalPointOfThreePlanes) {
  // Three orthogonal planes meeting at (1, 2, 3).
  Quadric q = Quadric::FromPlane(Vec3(1, 0, 0), -1.0) +
              Quadric::FromPlane(Vec3(0, 1, 0), -2.0) +
              Quadric::FromPlane(Vec3(0, 0, 1), -3.0);
  auto opt = q.OptimalPoint();
  ASSERT_TRUE(opt.has_value());
  EXPECT_NEAR(opt->x, 1.0, 1e-9);
  EXPECT_NEAR(opt->y, 2.0, 1e-9);
  EXPECT_NEAR(opt->z, 3.0, 1e-9);
  EXPECT_NEAR(q.Error(*opt), 0.0, 1e-12);
}

TEST(QuadricTest, FlatQuadricHasNoOptimalPoint) {
  // All planes parallel: singular 3x3 system.
  Quadric q = Quadric::FromPlane(Vec3(0, 0, 1), 0.0) +
              Quadric::FromPlane(Vec3(0, 0, 1), -1.0);
  EXPECT_FALSE(q.OptimalPoint().has_value());
}

TEST(QuadricTest, FromTriangleVanishesOnTrianglePlane) {
  Quadric q = Quadric::FromTriangle(Vec3(0, 0, 1), Vec3(4, 0, 1),
                                    Vec3(0, 4, 1));
  EXPECT_NEAR(q.Error(Vec3(7, -3, 1)), 0.0, 1e-12);
  EXPECT_GT(q.Error(Vec3(0, 0, 2)), 0.0);
  // Degenerate triangle contributes nothing.
  Quadric zero = Quadric::FromTriangle(Vec3(0, 0, 0), Vec3(1, 1, 1),
                                       Vec3(2, 2, 2));
  EXPECT_DOUBLE_EQ(zero.Error(Vec3(5, 5, 5)), 0.0);
}

TEST(WeldTest, MergesCoincidentVertices) {
  // Two triangles sharing an edge, but with duplicated vertices.
  TriangleMesh mesh;
  mesh.AddVertex(Vec3(0, 0, 0));
  mesh.AddVertex(Vec3(1, 0, 0));
  mesh.AddVertex(Vec3(0, 1, 0));
  mesh.AddTriangle(0, 1, 2);
  mesh.AddVertex(Vec3(1, 0, 0));  // Duplicate of vertex 1.
  mesh.AddVertex(Vec3(0, 1, 0));  // Duplicate of vertex 2.
  mesh.AddVertex(Vec3(1, 1, 0));
  mesh.AddTriangle(3, 5, 4);
  TriangleMesh welded = WeldVertices(mesh, 1e-6);
  EXPECT_EQ(welded.vertex_count(), 4u);
  EXPECT_EQ(welded.triangle_count(), 2u);
  EXPECT_TRUE(welded.Validate().ok());
}

TEST(WeldTest, DropsTrianglesCollapsedByWelding) {
  TriangleMesh mesh;
  mesh.AddVertex(Vec3(0, 0, 0));
  mesh.AddVertex(Vec3(1e-9, 0, 0));  // Welds with vertex 0.
  mesh.AddVertex(Vec3(0, 1, 0));
  mesh.AddTriangle(0, 1, 2);
  TriangleMesh welded = WeldVertices(mesh, 1e-6);
  EXPECT_EQ(welded.triangle_count(), 0u);
}

TEST(SimplifyTest, ReachesTargetOnSphere) {
  TriangleMesh sphere = MakeIcosphere(3);  // 1280 triangles.
  SimplifyOptions opt;
  opt.target_triangles = 200;
  Result<TriangleMesh> simplified = Simplify(sphere, opt);
  ASSERT_TRUE(simplified.ok()) << simplified.status().ToString();
  EXPECT_LE(simplified->triangle_count(), 210u);  // Small slack.
  EXPECT_GT(simplified->triangle_count(), 50u);
  EXPECT_TRUE(simplified->Validate().ok());
}

TEST(SimplifyTest, PreservesSphereShapeApproximately) {
  TriangleMesh sphere = MakeIcosphere(3);
  sphere.Scale(10.0);
  SimplifyOptions opt;
  opt.target_triangles = 150;
  Result<TriangleMesh> simplified = Simplify(sphere, opt);
  ASSERT_TRUE(simplified.ok());
  // Vertices stay near the sphere surface.
  for (const Vec3& v : simplified->vertices()) {
    EXPECT_NEAR(v.Length(), 10.0, 1.0);
  }
  // Bounding box stays close.
  Aabb box = simplified->BoundingBox();
  EXPECT_NEAR(box.Extent().x, 20.0, 2.5);
  EXPECT_NEAR(box.Extent().y, 20.0, 2.5);
  EXPECT_NEAR(box.Extent().z, 20.0, 2.5);
}

TEST(SimplifyTest, NoOpWhenAlreadyBelowTarget) {
  TriangleMesh box = MakeBox(Vec3(0, 0, 0), Vec3(1, 1, 1));
  SimplifyOptions opt;
  opt.target_triangles = 100;
  Result<TriangleMesh> simplified = Simplify(box, opt);
  ASSERT_TRUE(simplified.ok());
  EXPECT_EQ(simplified->triangle_count(), 12u);
}

TEST(SimplifyTest, BuildingSimplifiesAcrossSeams) {
  BuildingOptions bopt;
  bopt.facade_columns = 8;
  bopt.facade_rows = 12;
  TriangleMesh building = MakeBuilding(bopt);  // 770 triangles, seamed walls.
  SimplifyOptions opt;
  opt.target_triangles = 60;
  Result<TriangleMesh> simplified = Simplify(building, opt);
  ASSERT_TRUE(simplified.ok()) << simplified.status().ToString();
  EXPECT_LT(simplified->triangle_count(), building.triangle_count() / 4);
  EXPECT_TRUE(simplified->Validate().ok());
  // The building silhouette survives (boundary constraints).
  Aabb before = building.BoundingBox();
  Aabb after = simplified->BoundingBox();
  EXPECT_NEAR(after.Extent().x, before.Extent().x, before.Extent().x * 0.2);
  EXPECT_NEAR(after.Extent().z, before.Extent().z, before.Extent().z * 0.2);
}

TEST(SimplifyTest, RejectsInvalidMesh) {
  TriangleMesh bad;
  bad.AddVertex(Vec3(0, 0, 0));
  bad.AddTriangle(0, 0, 0);
  SimplifyOptions opt;
  opt.target_triangles = 1;
  EXPECT_TRUE(Simplify(bad, opt).status().IsInvalidArgument());
}

// Parameterized target sweep: monotone triangle counts and valid results.
class SimplifyTargets : public ::testing::TestWithParam<size_t> {};

TEST_P(SimplifyTargets, HitsTargetWithinSlack) {
  TriangleMesh sphere = MakeIcosphere(3);
  SimplifyOptions opt;
  opt.target_triangles = GetParam();
  Result<TriangleMesh> simplified = Simplify(sphere, opt);
  ASSERT_TRUE(simplified.ok());
  EXPECT_TRUE(simplified->Validate().ok());
  EXPECT_LE(simplified->triangle_count(), GetParam() + 12);
}

INSTANTIATE_TEST_SUITE_P(Targets, SimplifyTargets,
                         ::testing::Values(640, 320, 160, 80, 40, 20));

TEST(LodChainTest, BuildsDecreasingLevels) {
  TriangleMesh sphere = MakeIcosphere(3);
  LodChainOptions opt;
  opt.ratios = {1.0, 0.5, 0.2, 0.05};
  Result<LodChain> chain = LodChain::Build(sphere, opt);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  ASSERT_GE(chain->num_levels(), 3u);
  EXPECT_EQ(chain->finest().triangle_count, sphere.triangle_count());
  for (size_t i = 1; i < chain->num_levels(); ++i) {
    EXPECT_LT(chain->level(i).triangle_count,
              chain->level(i - 1).triangle_count);
  }
  EXPECT_FALSE(chain->is_proxy());
}

TEST(LodChainTest, ByteSizesFollowTriangleCounts) {
  TriangleMesh sphere = MakeIcosphere(2);
  LodChainOptions opt;
  opt.bytes_per_triangle = 100;
  Result<LodChain> chain = LodChain::Build(sphere, opt);
  ASSERT_TRUE(chain.ok());
  for (size_t i = 0; i < chain->num_levels(); ++i) {
    EXPECT_EQ(chain->level(i).byte_size,
              chain->level(i).triangle_count * 100u);
  }
  EXPECT_GT(chain->total_bytes(), 0u);
}

TEST(LodChainTest, ProxyMatchesFormulas) {
  LodChainOptions opt;
  opt.ratios = {1.0, 0.4, 0.1};
  opt.bytes_per_triangle = 64;
  opt.min_triangles = 16;
  LodChain chain = LodChain::Proxy(1000, opt);
  ASSERT_EQ(chain.num_levels(), 3u);
  EXPECT_EQ(chain.level(0).triangle_count, 1000u);
  EXPECT_EQ(chain.level(1).triangle_count, 400u);
  EXPECT_EQ(chain.level(2).triangle_count, 100u);
  EXPECT_TRUE(chain.is_proxy());
}

TEST(LodChainTest, ProxyClampsToMinTriangles) {
  LodChainOptions opt;
  opt.ratios = {1.0, 0.5, 0.1};
  opt.min_triangles = 50;
  LodChain chain = LodChain::Proxy(60, opt);
  // 60, then max(50, 30)=50, then max(50, 6)=50 (dropped as duplicate).
  EXPECT_EQ(chain.num_levels(), 2u);
  EXPECT_EQ(chain.coarsest().triangle_count, 50u);
}

TEST(LodChainTest, LevelForBlendEndpoints) {
  LodChainOptions opt;
  opt.ratios = {1.0, 0.5, 0.1};
  opt.min_triangles = 1;
  LodChain chain = LodChain::Proxy(1000, opt);
  EXPECT_EQ(chain.LevelForBlend(1.0), 0u);   // Finest.
  EXPECT_EQ(chain.LevelForBlend(0.0), 2u);   // Coarsest.
  EXPECT_EQ(chain.LevelForBlend(0.5), 1u);   // Middle budget = 550 -> 500.
}

TEST(LodChainTest, LevelForBlendMonotone) {
  LodChainOptions opt;
  opt.ratios = {1.0, 0.6, 0.3, 0.1, 0.03};
  opt.min_triangles = 1;
  LodChain chain = LodChain::Proxy(10000, opt);
  size_t previous = chain.LevelForBlend(0.0);
  for (double k = 0.05; k <= 1.0; k += 0.05) {
    size_t level = chain.LevelForBlend(k);
    EXPECT_LE(level, previous);  // Larger k never picks a coarser level.
    previous = level;
  }
}

TEST(LodChainTest, RejectsBadRatios) {
  TriangleMesh box = MakeBox(Vec3(0, 0, 0), Vec3(1, 1, 1));
  LodChainOptions opt;
  opt.ratios = {};
  EXPECT_FALSE(LodChain::Build(box, opt).ok());
  opt.ratios = {1.5};
  EXPECT_FALSE(LodChain::Build(box, opt).ok());
}

}  // namespace
}  // namespace hdov
