#include "telemetry/exposition.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace hdov {
namespace {

using telemetry::Counter;
using telemetry::ExpositionLog;
using telemetry::ExpositionText;
using telemetry::FilterSnapshot;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::MetricKind;
using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;
using telemetry::SanitizeMetricName;
using telemetry::SnapshotDelta;

TEST(ExpositionTest, SanitizeMetricName) {
  EXPECT_EQ(SanitizeMetricName("visual.io.tree.page_reads"),
            "visual_io_tree_page_reads");
  EXPECT_EQ(SanitizeMetricName("a:b_c9"), "a:b_c9");
  EXPECT_EQ(SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(SanitizeMetricName(""), "_");
  EXPECT_EQ(SanitizeMetricName("sp ace-dash"), "sp_ace_dash");
}

TEST(ExpositionTest, TextFormatCountersAndGauges) {
  MetricsRegistry registry;
  registry.GetCounter("visual.queries")->Add(42);
  registry.GetGauge("visual.resident_mb")->Set(3.5);
  registry.RegisterView("visual.hit_rate", [] { return 0.25; });

  const std::string text = ExpositionText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE visual_queries counter\n"), std::string::npos);
  EXPECT_NE(text.find("visual_queries 42\n"), std::string::npos);
  // Gauges and views both expose as gauges.
  EXPECT_NE(text.find("# TYPE visual_resident_mb gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("visual_resident_mb 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE visual_hit_rate gauge\n"), std::string::npos);
  EXPECT_NE(text.find("visual_hit_rate 0.25\n"), std::string::npos);
}

TEST(ExpositionTest, TextFormatHistogramIsCumulative) {
  MetricsRegistry registry;
  telemetry::Histogram* h =
      registry.GetHistogram("frame.time_ms", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(99.0);

  const std::string text = ExpositionText(registry.Snapshot());
  // Buckets are cumulative, close with le="+Inf", and _count matches.
  EXPECT_NE(text.find("# TYPE frame_time_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("frame_time_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("frame_time_ms_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("frame_time_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("frame_time_ms_sum 101\n"), std::string::npos);
  EXPECT_NE(text.find("frame_time_ms_count 3\n"), std::string::npos);
}

TEST(ExpositionTest, FilterSnapshotKeepsPrefixOnly) {
  MetricsRegistry registry;
  registry.GetCounter("persist.bytes_written")->Add(100);
  registry.GetCounter("persist.fsyncs")->Add(3);
  registry.GetCounter("build.objects")->Add(7);

  const MetricsSnapshot full = registry.Snapshot();
  const MetricsSnapshot persist = FilterSnapshot(full, "persist");
  ASSERT_EQ(persist.samples.size(), 2u);
  EXPECT_EQ(persist.samples[0].name, "persist.bytes_written");
  EXPECT_EQ(persist.samples[1].name, "persist.fsyncs");
  // Filtering a captured snapshot never re-reads the registry.
  EXPECT_EQ(full.samples.size(), 3u);
}

TEST(ExpositionTest, SnapshotDeltaRatesAndNewMetrics) {
  MetricsRegistry registry;
  Counter* reads = registry.GetCounter("io.page_reads");
  reads->Add(10);
  const MetricsSnapshot earlier = registry.Snapshot();

  reads->Add(40);
  registry.GetCounter("io.seeks")->Add(5);  // Registered mid-interval.
  const MetricsSnapshot later = registry.Snapshot();

  const SnapshotDelta delta = SnapshotDelta::Between(earlier, later, 2000.0);
  EXPECT_DOUBLE_EQ(delta.interval_ms, 2000.0);
  ASSERT_EQ(delta.metrics.size(), 2u);
  EXPECT_EQ(delta.metrics[0].name, "io.page_reads");
  EXPECT_DOUBLE_EQ(delta.metrics[0].previous, 10.0);
  EXPECT_DOUBLE_EQ(delta.metrics[0].current, 50.0);
  EXPECT_DOUBLE_EQ(delta.metrics[0].delta, 40.0);
  EXPECT_DOUBLE_EQ(delta.metrics[0].rate_per_sec, 20.0);
  // A metric absent from the earlier snapshot deltas from zero.
  EXPECT_EQ(delta.metrics[1].name, "io.seeks");
  EXPECT_DOUBLE_EQ(delta.metrics[1].previous, 0.0);
  EXPECT_DOUBLE_EQ(delta.metrics[1].delta, 5.0);
}

TEST(ExpositionTest, SnapshotDeltaHistogramUsesCountAndSum) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("t", {1.0});
  h->Observe(0.5);
  const MetricsSnapshot earlier = registry.Snapshot();
  h->Observe(2.0);
  h->Observe(3.0);
  const MetricsSnapshot later = registry.Snapshot();

  const SnapshotDelta delta = SnapshotDelta::Between(earlier, later, 1000.0);
  ASSERT_EQ(delta.metrics.size(), 1u);
  EXPECT_EQ(delta.metrics[0].count_delta, 2u);
  EXPECT_DOUBLE_EQ(delta.metrics[0].sum_delta, 5.0);
  EXPECT_DOUBLE_EQ(delta.metrics[0].delta, 2.0);
  EXPECT_DOUBLE_EQ(delta.metrics[0].rate_per_sec, 2.0);
}

TEST(ExpositionTest, LogWritesSamplesAndRateComments) {
  const std::string path = ::testing::TempDir() + "exposition_log.prom";
  MetricsRegistry registry;
  Counter* reads = registry.GetCounter("io.page_reads");

  ExpositionLog log(path);
  reads->Add(10);
  ASSERT_TRUE(log.Sample(registry.Snapshot(), "first").ok());
  reads->Add(25);
  ASSERT_TRUE(log.Sample(registry.Snapshot(), "second").ok());
  EXPECT_EQ(log.samples_written(), 2u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("# hdov sample 0 label \"first\""), std::string::npos);
  EXPECT_NE(text.find("# hdov sample 1 label \"second\""),
            std::string::npos);
  EXPECT_NE(text.find("io_page_reads 10\n"), std::string::npos);
  EXPECT_NE(text.find("io_page_reads 35\n"), std::string::npos);
  // The first sample has no interval, so rates only follow the second.
  EXPECT_NE(text.find("# rate io_page_reads delta 25 per_sec "),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ExpositionTest, SnapshotDeltaUnderConcurrentMutation) {
  // TSan exercise: the exporter side (snapshot + delta) runs while
  // worker threads hammer the same registry's counters and histograms.
  // Every delta it computes must be internally consistent even though
  // the values race forward between snapshots.
  MetricsRegistry registry;
  Counter* reads = registry.GetCounter("mut.reads");
  Histogram* times = registry.GetHistogram("mut.time_ms", {1.0, 5.0});
  std::atomic<bool> stop{false};
  std::atomic<int> started{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&] {
      reads->Add(1);  // At least one mutation lands regardless of timing.
      started.fetch_add(1);
      while (!stop.load(std::memory_order_relaxed)) {
        reads->Add(1);
        times->Observe(0.5);
        // Mid-flight registrations must not invalidate a concurrent
        // Snapshot() either (registry growth vs read).
        registry.GetCounter("mut.reads")->Add(1);
      }
    });
  }
  // Snapshots only start once every writer is live, so the race between
  // exporter and mutators is real (and the final total cannot be zero).
  while (started.load() < 3) {
    std::this_thread::yield();
  }
  MetricsSnapshot earlier = registry.Snapshot();
  for (int round = 0; round < 50; ++round) {
    const MetricsSnapshot later = registry.Snapshot();
    const SnapshotDelta delta =
        SnapshotDelta::Between(earlier, later, 10.0);
    for (const telemetry::MetricDelta& m : delta.metrics) {
      // Counters and histogram counts are monotone, so no interval may
      // ever go backwards.
      EXPECT_GE(m.delta, 0.0) << m.name;
      EXPECT_GE(m.current, m.previous) << m.name;
    }
    earlier = later;
  }
  stop.store(true);
  for (std::thread& t : writers) {
    t.join();
  }
  const MetricsSnapshot final_snap = registry.Snapshot();
  const telemetry::MetricSample* total = final_snap.Find("mut.reads");
  ASSERT_NE(total, nullptr);
  EXPECT_GT(total->value, 0.0);
}

TEST(ExpositionTest, LogSamplesUnderConcurrentMutation) {
  // The periodic exporter writes while the workload mutates: every block
  // it appends must parse as a self-consistent scrape.
  const std::string path =
      ::testing::TempDir() + "exposition_concurrent.prom";
  MetricsRegistry registry;
  Counter* reads = registry.GetCounter("mut.log_reads");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        reads->Add(1);
        registry.GetGauge("mut.log_gauge")->Set(1.5);
      }
    });
  }
  ExpositionLog log(path);
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(
        log.Sample(registry.Snapshot(), "r" + std::to_string(round)).ok());
  }
  stop.store(true);
  for (std::thread& t : writers) {
    t.join();
  }
  EXPECT_EQ(log.samples_written(), 20u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("# hdov sample 19 label \"r19\""), std::string::npos);
  EXPECT_NE(text.find("mut_log_reads "), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hdov
