#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "scene/cell_grid.h"
#include "scene/city_generator.h"
#include "scene/object.h"
#include "scene/session.h"

namespace hdov {
namespace {

CityOptions SmallProxyCity() {
  CityOptions opt;
  opt.mode = GeometryMode::kProxy;
  opt.blocks_x = 3;
  opt.blocks_y = 3;
  return opt;
}

TEST(SceneTest, AddObjectAssignsIdsAndBounds) {
  Scene scene;
  Object a;
  a.mbr = Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1));
  a.lods = LodChain::Proxy(100, LodChainOptions());
  Object b;
  b.mbr = Aabb(Vec3(5, 5, 0), Vec3(6, 6, 10));
  b.lods = LodChain::Proxy(200, LodChainOptions());
  EXPECT_EQ(scene.AddObject(std::move(a)), 0u);
  EXPECT_EQ(scene.AddObject(std::move(b)), 1u);
  EXPECT_EQ(scene.bounds(), Aabb(Vec3(0, 0, 0), Vec3(6, 6, 10)));
  EXPECT_GT(scene.TotalModelBytes(), 0u);
  EXPECT_EQ(scene.TotalFinestTriangles(), 300u);
}

TEST(CityTest, ProxyCityDeterministic) {
  Result<Scene> a = GenerateCity(SmallProxyCity());
  Result<Scene> b = GenerateCity(SmallProxyCity());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->object(i).mbr, b->object(i).mbr);
    EXPECT_EQ(a->object(i).lods.finest().triangle_count,
              b->object(i).lods.finest().triangle_count);
  }
}

TEST(CityTest, ProxyCityHasBuildingsAndPlausibleLayout) {
  Result<Scene> city = GenerateCity(SmallProxyCity());
  ASSERT_TRUE(city.ok());
  EXPECT_GE(city->size(), 9u);  // At least one object per block.
  size_t buildings = 0;
  for (const Object& obj : city->objects()) {
    EXPECT_TRUE(obj.mbr.IsValid());
    EXPECT_GE(obj.mbr.min.z, -1e-9);  // Everything sits on the ground.
    EXPECT_FALSE(obj.lods.empty());
    if (obj.kind == ObjectKind::kBuilding) {
      ++buildings;
    }
  }
  EXPECT_GT(buildings, 0u);
}

TEST(CityTest, FullModeMatchesProxyLayout) {
  CityOptions proxy_opt = SmallProxyCity();
  proxy_opt.blocks_x = 2;
  proxy_opt.blocks_y = 2;
  proxy_opt.park_fraction = 0.0;  // Buildings only: keeps full mode fast.
  CityOptions full_opt = proxy_opt;
  full_opt.mode = GeometryMode::kFull;
  full_opt.facade_columns = 3;
  full_opt.facade_rows = 4;
  proxy_opt.facade_columns = 3;
  proxy_opt.facade_rows = 4;

  Result<Scene> proxy = GenerateCity(proxy_opt);
  Result<Scene> full = GenerateCity(full_opt);
  ASSERT_TRUE(proxy.ok());
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(proxy->size(), full->size());
  for (size_t i = 0; i < proxy->size(); ++i) {
    // Same finest triangle counts (proxy uses the same formulas).
    EXPECT_EQ(proxy->object(i).lods.finest().triangle_count,
              full->object(i).lods.finest().triangle_count)
        << "object " << i;
    // Full mode carries real meshes.
    EXPECT_FALSE(full->object(i).lods.finest().mesh.empty());
    EXPECT_TRUE(proxy->object(i).lods.is_proxy());
  }
}

TEST(CityTest, TargetBytesScalesDatasets) {
  CityOptions small = CityOptionsForTargetBytes(50ull << 20);   // 50 MB.
  CityOptions large = CityOptionsForTargetBytes(400ull << 20);  // 400 MB.
  EXPECT_GT(large.blocks_x * large.blocks_y,
            small.blocks_x * small.blocks_y);
  Result<Scene> scene = GenerateCity(small);
  ASSERT_TRUE(scene.ok());
  const double actual = static_cast<double>(scene->TotalModelBytes());
  EXPECT_GT(actual, 0.4 * (50 << 20));
  EXPECT_LT(actual, 2.5 * (50 << 20));
}

TEST(CityTest, RejectsBadOptions) {
  CityOptions opt = SmallProxyCity();
  opt.blocks_x = 0;
  EXPECT_FALSE(GenerateCity(opt).ok());
  opt = SmallProxyCity();
  opt.park_fraction = 1.5;
  EXPECT_FALSE(GenerateCity(opt).ok());
}

TEST(CellGridTest, BuildAndLookup) {
  Aabb world(Vec3(0, 0, 0), Vec3(100, 200, 50));
  CellGridOptions opt;
  opt.cells_x = 10;
  opt.cells_y = 20;
  Result<CellGrid> grid = CellGrid::Build(world, opt);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->num_cells(), 200u);

  auto cell = grid->CellForPoint(Vec3(5, 5, 1.5));
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(*cell, 0u);
  cell = grid->CellForPoint(Vec3(95, 195, 1.5));
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(*cell, 199u);
  EXPECT_FALSE(grid->CellForPoint(Vec3(-1, 5, 1.5)).has_value());
  EXPECT_FALSE(grid->CellForPoint(Vec3(5, 201, 1.5)).has_value());
}

TEST(CellGridTest, CellBoundsTileTheFootprint) {
  Aabb world(Vec3(0, 0, 0), Vec3(100, 100, 10));
  CellGridOptions opt;
  opt.cells_x = 4;
  opt.cells_y = 4;
  Result<CellGrid> grid = CellGrid::Build(world, opt);
  ASSERT_TRUE(grid.ok());
  double area = 0.0;
  for (CellId c = 0; c < grid->num_cells(); ++c) {
    Aabb bounds = grid->CellBounds(c);
    area += bounds.Extent().x * bounds.Extent().y;
    EXPECT_NEAR(bounds.min.z, opt.min_eye_height, 1e-12);
    EXPECT_NEAR(bounds.max.z, opt.max_eye_height, 1e-12);
  }
  EXPECT_NEAR(area, 100.0 * 100.0, 1e-6);
}

TEST(CellGridTest, PointMapsIntoItsCellBounds) {
  Aabb world(Vec3(-50, -50, 0), Vec3(50, 50, 10));
  CellGridOptions opt;
  opt.cells_x = 7;
  opt.cells_y = 5;
  Result<CellGrid> grid = CellGrid::Build(world, opt);
  ASSERT_TRUE(grid.ok());
  Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    Vec3 p(rng.Uniform(-50, 50), rng.Uniform(-50, 50), 1.7);
    auto cell = grid->CellForPoint(p);
    ASSERT_TRUE(cell.has_value());
    Aabb bounds = grid->CellBounds(*cell);
    EXPECT_GE(p.x, bounds.min.x - 1e-9);
    EXPECT_LE(p.x, bounds.max.x + 1e-9);
    EXPECT_GE(p.y, bounds.min.y - 1e-9);
    EXPECT_LE(p.y, bounds.max.y + 1e-9);
  }
}

TEST(CellGridTest, ClampedLookupNeverFails) {
  Aabb world(Vec3(0, 0, 0), Vec3(10, 10, 5));
  Result<CellGrid> grid = CellGrid::Build(world, CellGridOptions());
  ASSERT_TRUE(grid.ok());
  EXPECT_LT(grid->ClampedCellForPoint(Vec3(-100, -100, 0)),
            grid->num_cells());
  EXPECT_LT(grid->ClampedCellForPoint(Vec3(100, 100, 0)), grid->num_cells());
}

TEST(CellGridTest, SamplePointsInsideCell) {
  Aabb world(Vec3(0, 0, 0), Vec3(10, 10, 5));
  Result<CellGrid> grid = CellGrid::Build(world, CellGridOptions());
  ASSERT_TRUE(grid.ok());
  for (CellId c : {0u, 5u, grid->num_cells() - 1}) {
    Aabb bounds = grid->CellBounds(c);
    for (const Vec3& p : grid->SamplePoints(c)) {
      EXPECT_TRUE(bounds.Contains(p));
    }
  }
}

TEST(CellGridTest, RejectsBadOptions) {
  Aabb world(Vec3(0, 0, 0), Vec3(10, 10, 5));
  CellGridOptions opt;
  opt.cells_x = 0;
  EXPECT_FALSE(CellGrid::Build(world, opt).ok());
  EXPECT_FALSE(CellGrid::Build(Aabb(), CellGridOptions()).ok());
  opt = CellGridOptions();
  opt.min_eye_height = 5;
  opt.max_eye_height = 1;
  EXPECT_FALSE(CellGrid::Build(world, opt).ok());
}

class SessionPatterns : public ::testing::TestWithParam<MotionPattern> {};

TEST_P(SessionPatterns, StaysInBoundsWithUnitLook) {
  Aabb world(Vec3(0, 0, 0), Vec3(500, 500, 100));
  SessionOptions opt;
  opt.num_frames = 400;
  Session session = RecordSession(GetParam(), world, opt);
  EXPECT_EQ(session.frames.size(), 400u);
  EXPECT_EQ(session.name, MotionPatternName(GetParam()));
  for (const Viewpoint& vp : session.frames) {
    EXPECT_GE(vp.position.x, world.min.x);
    EXPECT_LE(vp.position.x, world.max.x);
    EXPECT_GE(vp.position.y, world.min.y);
    EXPECT_LE(vp.position.y, world.max.y);
    EXPECT_NEAR(vp.position.z, opt.eye_height, 1e-9);
    EXPECT_NEAR(vp.look.Length(), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, SessionPatterns,
                         ::testing::Values(MotionPattern::kNormalWalk,
                                           MotionPattern::kTurnLeftRight,
                                           MotionPattern::kBackForward));

TEST(SessionTest, DeterministicPerSeed) {
  Aabb world(Vec3(0, 0, 0), Vec3(100, 100, 10));
  SessionOptions opt;
  opt.num_frames = 50;
  Session a = RecordSession(MotionPattern::kNormalWalk, world, opt);
  Session b = RecordSession(MotionPattern::kNormalWalk, world, opt);
  for (size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].position, b.frames[i].position);
  }
}

TEST(SessionTest, PatternsDiffer) {
  Aabb world(Vec3(0, 0, 0), Vec3(100, 100, 10));
  SessionOptions opt;
  opt.num_frames = 100;
  Session walk = RecordSession(MotionPattern::kNormalWalk, world, opt);
  Session back = RecordSession(MotionPattern::kBackForward, world, opt);
  // The back-forward session repeatedly reverses: its net displacement per
  // 80 frames is much smaller than the walk's.
  double walk_path = 0.0;
  double back_net =
      (back.frames.front().position - back.frames[79].position).Length();
  walk_path =
      (walk.frames.front().position - walk.frames[79].position).Length();
  EXPECT_LT(back_net, walk_path);
}

}  // namespace
}  // namespace hdov
