#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace hdov {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing page");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing page");
  EXPECT_EQ(s.ToString(), "NotFound: missing page");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad bytes");
  Status copy = s;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "bad bytes");
  // The original is unaffected.
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "bad bytes");
}

TEST(StatusTest, CopyAssignOverwrites) {
  Status a = Status::IoError("disk gone");
  Status b;
  b = a;
  EXPECT_TRUE(b.IsIoError());
  b = Status::OK();
  EXPECT_TRUE(b.ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kCorruption, StatusCode::kIoError, StatusCode::kOutOfRange,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
    EXPECT_NE(StatusCodeName(code), "Unknown");
  }
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Status Chained(int x) {
  HDOV_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return Status::OutOfRange("not positive");
  }
  return x;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_EQ(ok.value_or(-1), 5);

  Result<int> err = ParsePositive(0);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(err.value_or(-1), -1);
}

Result<int> DoubledOrFail(int x) {
  HDOV_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = DoubledOrFail(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_FALSE(DoubledOrFail(-3).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 7);
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  EncodeFixed32(&buf, 0);
  EncodeFixed32(&buf, 1);
  EncodeFixed32(&buf, 0xdeadbeef);
  EncodeFixed32(&buf, 0xffffffffu);
  Decoder d(buf);
  uint32_t v = 0;
  ASSERT_TRUE(d.DecodeFixed32(&v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(d.DecodeFixed32(&v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(d.DecodeFixed32(&v).ok());
  EXPECT_EQ(v, 0xdeadbeefu);
  ASSERT_TRUE(d.DecodeFixed32(&v).ok());
  EXPECT_EQ(v, 0xffffffffu);
  EXPECT_EQ(d.remaining(), 0u);
}

TEST(CodingTest, Fixed64AndFloatRoundTrip) {
  std::string buf;
  EncodeFixed64(&buf, 0x0123456789abcdefULL);
  EncodeFloat(&buf, 3.5f);
  EncodeDouble(&buf, -2.25);
  Decoder d(buf);
  uint64_t v64 = 0;
  float f = 0;
  double dd = 0;
  ASSERT_TRUE(d.DecodeFixed64(&v64).ok());
  EXPECT_EQ(v64, 0x0123456789abcdefULL);
  ASSERT_TRUE(d.DecodeFloat(&f).ok());
  EXPECT_EQ(f, 3.5f);
  ASSERT_TRUE(d.DecodeDouble(&dd).ok());
  EXPECT_EQ(dd, -2.25);
}

TEST(CodingTest, DecodePastEndIsCorruption) {
  std::string buf;
  EncodeFixed32(&buf, 7);
  Decoder d(buf);
  uint64_t v = 0;
  EXPECT_TRUE(d.DecodeFixed64(&v).IsCorruption());
}

TEST(CodingTest, SkipBoundsChecked) {
  Decoder d("abcd");
  EXPECT_TRUE(d.Skip(4).ok());
  EXPECT_TRUE(d.Skip(1).IsCorruption());
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BernoulliApproximatesP) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.25)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(SimClockTest, Advances) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0u);
  clock.AdvanceMicros(1500);
  EXPECT_EQ(clock.NowMicros(), 1500u);
  clock.AdvanceMillis(2.5);
  EXPECT_EQ(clock.NowMicros(), 4000u);
  EXPECT_DOUBLE_EQ(clock.NowMillis(), 4.0);
  clock.Reset();
  EXPECT_EQ(clock.NowMicros(), 0u);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossPhases) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int phase = 0; phase < 3; ++phase) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(ran.load(), (phase + 1) * 10);
  }
}

TEST(ThreadPoolTest, InlineModeSpawnsNoThreads) {
  for (size_t n : {size_t{0}, size_t{1}}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), 0u);
    EXPECT_EQ(pool.num_slots(), 1u);
    // Submit must run the task before returning (same thread).
    const std::thread::id caller = std::this_thread::get_id();
    bool ran = false;
    pool.Submit([&] {
      ran = true;
      EXPECT_EQ(std::this_thread::get_id(), caller);
    });
    EXPECT_TRUE(ran);
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&hits](size_t /*slot*/, size_t i) {
    hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSlotsAreExclusiveAndInRange) {
  ThreadPool pool(3);
  const size_t slots = pool.num_slots();
  ASSERT_EQ(slots, 4u);
  // One non-atomic counter per slot: exclusive slot ownership means no
  // data race here (TSan would flag a violation).
  std::vector<uint64_t> per_slot(slots, 0);
  pool.ParallelFor(5000, [&](size_t slot, size_t /*i*/) {
    ASSERT_LT(slot, slots);
    ++per_slot[slot];
  });
  EXPECT_EQ(std::accumulate(per_slot.begin(), per_slot.end(), uint64_t{0}),
            5000u);
}

TEST(ThreadPoolTest, ParallelForHandlesFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> ran{0};
  pool.ParallelFor(3, [&ran](size_t, size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
  pool.ParallelFor(0, [](size_t, size_t) { FAIL() << "n = 0 must not run"; });
}

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware) {
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3u);
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
}

}  // namespace
}  // namespace hdov
