#include "telemetry/trace_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "telemetry/flight_recorder.h"

namespace hdov {
namespace {

using telemetry::BeginStageAccounting;
using telemetry::CurrentTraceContext;
using telemetry::FinishStageAccounting;
using telemetry::FlightNowNs;
using telemetry::kNumTraceStages;
using telemetry::SessionTraceScope;
using telemetry::StageBreakdown;
using telemetry::StageTraceScope;
using telemetry::TraceStage;
using telemetry::TraceStageName;

// Busy-waits so the active stage accrues at least `ns` of wall time
// (sleeping would work too, but spinning keeps the charged interval
// tightly under the test's control).
void SpinFor(uint64_t ns) {
  const uint64_t until = FlightNowNs() + ns;
  while (FlightNowNs() < until) {
  }
}

TEST(TraceContextTest, DefaultIsUnattributed) {
  const telemetry::TraceContext& ctx = CurrentTraceContext();
  EXPECT_EQ(ctx.session, 0u);
  EXPECT_EQ(ctx.frame, 0u);
  EXPECT_EQ(ctx.stage, TraceStage::kNone);
}

TEST(TraceContextTest, StageNamesAreStable) {
  EXPECT_EQ(TraceStageName(TraceStage::kNone), "none");
  EXPECT_EQ(TraceStageName(TraceStage::kSearch), "search");
  EXPECT_EQ(TraceStageName(TraceStage::kFetch), "fetch");
  EXPECT_EQ(TraceStageName(TraceStage::kRender), "render");
  EXPECT_EQ(TraceStageName(TraceStage::kPrefetch), "prefetch");
}

TEST(TraceContextTest, SessionScopesNestAndRestore) {
  {
    SessionTraceScope outer(7, 1);
    EXPECT_EQ(CurrentTraceContext().session, 7u);
    EXPECT_EQ(CurrentTraceContext().frame, 1u);
    {
      // A worker switching between batched sessions nests scopes.
      SessionTraceScope inner(9, 2);
      EXPECT_EQ(CurrentTraceContext().session, 9u);
      EXPECT_EQ(CurrentTraceContext().frame, 2u);
    }
    EXPECT_EQ(CurrentTraceContext().session, 7u);
    EXPECT_EQ(CurrentTraceContext().frame, 1u);
  }
  EXPECT_EQ(CurrentTraceContext().session, 0u);
  EXPECT_EQ(CurrentTraceContext().frame, 0u);
}

TEST(TraceContextTest, StageScopesNestAndRestore) {
  {
    StageTraceScope outer(TraceStage::kPrefetch);
    EXPECT_EQ(CurrentTraceContext().stage, TraceStage::kPrefetch);
    {
      StageTraceScope inner(TraceStage::kSearch);
      EXPECT_EQ(CurrentTraceContext().stage, TraceStage::kSearch);
    }
    EXPECT_EQ(CurrentTraceContext().stage, TraceStage::kPrefetch);
  }
  EXPECT_EQ(CurrentTraceContext().stage, TraceStage::kNone);
}

TEST(TraceContextTest, StageAccountingChargesActiveStage) {
  BeginStageAccounting();
  {
    StageTraceScope stage(TraceStage::kSearch);
    SpinFor(2'000'000);  // 2 ms
  }
  {
    StageTraceScope stage(TraceStage::kFetch);
    SpinFor(1'000'000);  // 1 ms
  }
  const StageBreakdown b = FinishStageAccounting();
  EXPECT_GE(b.ns[static_cast<size_t>(TraceStage::kSearch)], 2'000'000u);
  EXPECT_GE(b.ns[static_cast<size_t>(TraceStage::kFetch)], 1'000'000u);
  EXPECT_EQ(b.ns[static_cast<size_t>(TraceStage::kRender)], 0u);
  // Every interval since Begin is charged somewhere, so the breakdown
  // totals at least the stage time (kNone absorbs the rest).
  EXPECT_GE(b.total_ns(), 3'000'000u);
}

TEST(TraceContextTest, NestedStagesChargeExclusiveTime) {
  BeginStageAccounting();
  {
    StageTraceScope outer(TraceStage::kPrefetch);
    SpinFor(1'000'000);
    {
      // The traversal under prefetch charges kSearch, not kPrefetch:
      // per-stage numbers are self times.
      StageTraceScope inner(TraceStage::kSearch);
      SpinFor(1'000'000);
    }
    SpinFor(500'000);
  }
  const StageBreakdown b = FinishStageAccounting();
  const uint64_t prefetch = b.ns[static_cast<size_t>(TraceStage::kPrefetch)];
  const uint64_t search = b.ns[static_cast<size_t>(TraceStage::kSearch)];
  EXPECT_GE(prefetch, 1'500'000u);
  EXPECT_GE(search, 1'000'000u);
  // Exclusive accounting: the inner spin is not double-charged, so the
  // outer stage stays well under the scope's full wall time.
  EXPECT_LT(prefetch, 2'500'000u + 1'000'000u);
}

TEST(TraceContextTest, BeginResetsPriorAccumulation) {
  BeginStageAccounting();
  {
    StageTraceScope stage(TraceStage::kRender);
    SpinFor(1'000'000);
  }
  BeginStageAccounting();  // Discards the render charge above.
  const StageBreakdown b = FinishStageAccounting();
  EXPECT_EQ(b.ns[static_cast<size_t>(TraceStage::kRender)], 0u);
}

TEST(TraceContextTest, ContextIsThreadLocal) {
  SessionTraceScope scope(5, 11);
  StageTraceScope stage(TraceStage::kFetch);
  uint16_t observed_session = 0xffff;
  TraceStage observed_stage = TraceStage::kRender;
  std::thread other([&] {
    // A fresh thread starts unattributed regardless of the spawner.
    observed_session = CurrentTraceContext().session;
    observed_stage = CurrentTraceContext().stage;
    SessionTraceScope own(6, 0);
    EXPECT_EQ(CurrentTraceContext().session, 6u);
  });
  other.join();
  EXPECT_EQ(observed_session, 0u);
  EXPECT_EQ(observed_stage, TraceStage::kNone);
  // The other thread's scopes never touched this thread's context.
  EXPECT_EQ(CurrentTraceContext().session, 5u);
  EXPECT_EQ(CurrentTraceContext().stage, TraceStage::kFetch);
}

TEST(TraceContextTest, ConcurrentAccountingIsIndependent) {
  // TSan exercise: many threads run full frame accounting loops at once,
  // all stamping events into the shared global recorder.
  constexpr size_t kThreads = 4;
  constexpr size_t kFrames = 200;
  std::atomic<size_t> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &bad] {
      const uint16_t session = static_cast<uint16_t>(t + 1);
      for (size_t f = 0; f < kFrames; ++f) {
        SessionTraceScope trace(session, f);
        BeginStageAccounting();
        {
          StageTraceScope stage(TraceStage::kSearch);
          telemetry::GlobalFlightRecorder().Record(
              telemetry::FlightEventType::kPoolHit, 0, f, 0);
        }
        const StageBreakdown b = FinishStageAccounting();
        if (CurrentTraceContext().session != session ||
            b.ns[static_cast<size_t>(TraceStage::kFetch)] != 0) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(bad.load(), 0u);
}

}  // namespace
}  // namespace hdov
