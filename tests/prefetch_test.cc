#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "prefetch/predictor.h"
#include "prefetch/prefetcher.h"
#include "scene/city_generator.h"
#include "telemetry/telemetry.h"
#include "walkthrough/visual_system.h"

namespace hdov {
namespace {

using prefetch::CellPrediction;
using prefetch::ParsePrefetchMode;
using prefetch::PrefetchMode;
using prefetch::PrefetchModeName;
using prefetch::VelocityPredictor;

class PrefetchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityOptions copt;
    copt.mode = GeometryMode::kProxy;
    copt.blocks_x = 4;
    copt.blocks_y = 4;
    scene_ = new Scene(std::move(*GenerateCity(copt)));

    CellGridOptions gopt;
    gopt.cells_x = 4;
    gopt.cells_y = 4;
    grid_ = new CellGrid(std::move(*CellGrid::Build(scene_->bounds(), gopt)));

    PrecomputeOptions popt;
    popt.dov.cubemap.face_resolution = 24;
    popt.samples_per_cell = 1;
    table_ = new VisibilityTable(
        std::move(*PrecomputeVisibility(*scene_, *grid_, popt)));
  }

  static void TearDownTestSuite() {
    delete table_;
    delete grid_;
    delete scene_;
  }

  static std::unique_ptr<VisualSystem> MakeVisual(const VisualOptions& opt) {
    Result<std::unique_ptr<VisualSystem>> system =
        VisualSystem::Create(scene_, grid_, table_, opt);
    EXPECT_TRUE(system.ok()) << system.status().ToString();
    return std::move(*system);
  }

  static VisualOptions BaseOptions() {
    VisualOptions opt;
    opt.eta = 0.001;
    opt.build.rtree.max_entries = 8;
    opt.build.rtree.min_entries = 3;
    return opt;
  }

  // A straight west-to-east walk through the middle row of cells; crosses
  // several cell boundaries, which is what prefetch exists for.
  static std::vector<Viewpoint> EastboundWalk(size_t frames) {
    const Aabb& b = scene_->bounds();
    const double y = (b.min.y + b.max.y) / 2.0;
    std::vector<Viewpoint> walk;
    for (size_t i = 0; i < frames; ++i) {
      const double t = static_cast<double>(i) / (frames - 1);
      const double x = b.min.x + 1.0 + t * (b.max.x - b.min.x - 2.0);
      walk.push_back(Viewpoint{Vec3(x, y, 1.7), Vec3(1, 0, 0)});
    }
    return walk;
  }

  static Scene* scene_;
  static CellGrid* grid_;
  static VisibilityTable* table_;
};

Scene* PrefetchFixture::scene_ = nullptr;
CellGrid* PrefetchFixture::grid_ = nullptr;
VisibilityTable* PrefetchFixture::table_ = nullptr;

TEST(PrefetchModeTest, ParseNameRoundTrip) {
  for (PrefetchMode mode : {PrefetchMode::kOff, PrefetchMode::kSync,
                            PrefetchMode::kAsync}) {
    PrefetchMode parsed = PrefetchMode::kOff;
    ASSERT_TRUE(ParsePrefetchMode(PrefetchModeName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  PrefetchMode unchanged = PrefetchMode::kSync;
  EXPECT_FALSE(ParsePrefetchMode("garbage", &unchanged));
  EXPECT_FALSE(ParsePrefetchMode("", &unchanged));
  EXPECT_EQ(unchanged, PrefetchMode::kSync);
}

TEST_F(PrefetchFixture, VerticalLookPredictsNothing) {
  VelocityPredictor predictor(grid_);
  const Vec3 center = scene_->bounds().Center();
  const CellId cell = grid_->ClampedCellForPoint(center);
  // Straight down, straight up, and exactly zero: all degenerate in the
  // horizontal plane. The legacy code normalized these (a NaN / garbage
  // probe); the predictor must return invalid instead.
  for (const Vec3& look : {Vec3(0, 0, -1), Vec3(0, 0, 1), Vec3(0, 0, 0)}) {
    CellPrediction p =
        predictor.PredictFromLook(Viewpoint{center, look}, cell);
    EXPECT_FALSE(p.valid);
  }
  // NaN components fail the same guard rather than propagating.
  const double nan = std::nan("");
  CellPrediction p = predictor.PredictFromLook(
      Viewpoint{center, Vec3(nan, nan, 0)}, cell);
  EXPECT_FALSE(p.valid);
}

TEST_F(PrefetchFixture, LookPredictsTheCellAhead) {
  VelocityPredictor predictor(grid_);
  const Vec3 pos = grid_->CellCenter(grid_->ClampedCellForPoint(
      scene_->bounds().Center()));
  const CellId cell = grid_->ClampedCellForPoint(pos);
  CellPrediction east =
      predictor.PredictFromLook(Viewpoint{pos, Vec3(1, 0, 0)}, cell);
  ASSERT_TRUE(east.valid);
  EXPECT_NE(east.cell, cell);
  // A steep-but-not-vertical look still predicts from the horizontal
  // component alone.
  CellPrediction steep = predictor.PredictFromLook(
      Viewpoint{pos, Vec3(0.1, 0, -10.0)}, cell);
  ASSERT_TRUE(steep.valid);
  EXPECT_EQ(steep.cell, east.cell);
}

TEST_F(PrefetchFixture, VelocityBeatsLookWhenMoving) {
  VelocityPredictor predictor(grid_);
  const Vec3 pos = grid_->CellCenter(grid_->ClampedCellForPoint(
      scene_->bounds().Center()));
  const CellId cell = grid_->ClampedCellForPoint(pos);
  const Vec3 look(1, 0, 0);  // Facing east...
  // ...while strafing north. After a few observations the velocity
  // average points north and overrides the look direction.
  CellPrediction p;
  Vec3 v = pos;
  for (int i = 0; i < 4; ++i) {
    v = v + Vec3(0, 2.0, 0);
    p = predictor.Observe(Viewpoint{v, look}, grid_->ClampedCellForPoint(v));
  }
  EXPECT_GT(predictor.velocity().y, 0.0);
  ASSERT_TRUE(p.valid);
  const CellId here = grid_->ClampedCellForPoint(v);
  CellPrediction from_look =
      predictor.PredictFromLook(Viewpoint{v, look}, here);
  ASSERT_TRUE(from_look.valid);
  EXPECT_NE(p.cell, from_look.cell);
}

TEST_F(PrefetchFixture, StationaryObserverFallsBackToLook) {
  VelocityPredictor predictor(grid_);
  const Vec3 pos = grid_->CellCenter(grid_->ClampedCellForPoint(
      scene_->bounds().Center()));
  const CellId cell = grid_->ClampedCellForPoint(pos);
  const Viewpoint vp{pos, Vec3(-1, 0, 0)};
  CellPrediction p;
  for (int i = 0; i < 3; ++i) {
    p = predictor.Observe(vp, cell);  // Zero delta every frame.
  }
  CellPrediction from_look = predictor.PredictFromLook(vp, cell);
  ASSERT_TRUE(from_look.valid);
  ASSERT_TRUE(p.valid);
  EXPECT_EQ(p.cell, from_look.cell);
  predictor.Reset();
  EXPECT_EQ(predictor.velocity().LengthSquared(), 0.0);
}

TEST_F(PrefetchFixture, ObservedBoundaryCrossingKeepsPredictingAhead) {
  VelocityPredictor predictor(grid_);
  const Aabb& b = scene_->bounds();
  const double y = (b.min.y + b.max.y) / 2.0;
  // March east across the whole grid; whenever a prediction is made from
  // inside a non-final column it must be a different cell further east.
  Vec3 pos(b.min.x + 1.0, y, 1.7);
  bool crossed = false;
  CellId last_cell = grid_->ClampedCellForPoint(pos);
  for (int i = 0; i < 40; ++i) {
    pos = pos + Vec3((b.max.x - b.min.x) / 45.0, 0, 0);
    const CellId cell = grid_->ClampedCellForPoint(pos);
    crossed = crossed || cell != last_cell;
    last_cell = cell;
    CellPrediction p =
        predictor.Observe(Viewpoint{pos, Vec3(1, 0, 0)}, cell);
    if (p.valid) {
      EXPECT_NE(p.cell, cell);
    }
  }
  EXPECT_TRUE(crossed);  // The walk really exercised boundary crossings.
}

// The regression the vertical-look NaN bug came from: the legacy inline
// RunPrefetch normalized a zero-length horizontal look vector. A sync-mode
// system rendering a straight-down frame must stay finite and succeed.
TEST_F(PrefetchFixture, SyncPrefetchSurvivesVerticalLook) {
  VisualOptions opt = BaseOptions();
  opt.prefetch_models_per_frame = 2;  // Historical alias: selects kSync.
  auto visual = MakeVisual(opt);
  ASSERT_NE(visual->prefetcher(), nullptr);
  EXPECT_EQ(visual->prefetcher()->mode(), PrefetchMode::kSync);

  const Vec3 center = scene_->bounds().Center();
  FrameResult frame;
  // First frame fetches plenty; the second is idle, which is when the
  // sync prefetch step actually runs its prediction.
  ASSERT_TRUE(
      visual->RenderFrame({center, Vec3(0, 0, -1)}, &frame).ok());
  ASSERT_TRUE(
      visual->RenderFrame({center, Vec3(0, 0, -1)}, &frame).ok());
  EXPECT_TRUE(std::isfinite(frame.frame_time_ms));
}

TEST_F(PrefetchFixture, OffModeBuildsNoPrefetcher) {
  VisualOptions opt = BaseOptions();
  opt.prefetch = PrefetchMode::kOff;
  opt.prefetch_models_per_frame = 0;
  auto visual = MakeVisual(opt);
  EXPECT_EQ(visual->prefetcher(), nullptr);
}

// Zero-drift contract: with the pipeline off, two independently built
// systems replay a session with bit-identical billing — and that billing
// never mentions prefetch.
TEST_F(PrefetchFixture, OffModeIsDeterministicAcrossBuilds) {
  VisualOptions opt = BaseOptions();
  opt.prefetch = PrefetchMode::kOff;
  opt.prefetch_models_per_frame = 0;
  auto a = MakeVisual(opt);
  auto b = MakeVisual(opt);
  for (const Viewpoint& vp : EastboundWalk(24)) {
    FrameResult fa, fb;
    ASSERT_TRUE(a->RenderFrame(vp, &fa).ok());
    ASSERT_TRUE(b->RenderFrame(vp, &fb).ok());
    EXPECT_EQ(fa.io_pages, fb.io_pages);
    EXPECT_DOUBLE_EQ(fa.frame_time_ms, fb.frame_time_ms);
  }
}

TEST_F(PrefetchFixture, AsyncPipelineOverlapsIoAndGetsUsed) {
  VisualOptions off = BaseOptions();
  off.prefetch = PrefetchMode::kOff;
  VisualOptions async = BaseOptions();
  async.prefetch = PrefetchMode::kAsync;
  auto base = MakeVisual(off);
  auto piped = MakeVisual(async);
  ASSERT_NE(piped->prefetcher(), nullptr);
  EXPECT_EQ(piped->prefetcher()->mode(), PrefetchMode::kAsync);

  uint64_t off_pages = 0;
  uint64_t async_pages = 0;
  double off_ms = 0.0;
  double async_ms = 0.0;
  for (const Viewpoint& vp : EastboundWalk(32)) {
    FrameResult fo, fa;
    ASSERT_TRUE(base->RenderFrame(vp, &fo).ok());
    ASSERT_TRUE(piped->RenderFrame(vp, &fa).ok());
    off_pages += fo.io_pages;
    async_pages += fa.io_pages;
    off_ms += fo.frame_time_ms;
    async_ms += fa.frame_time_ms;
  }
  prefetch::PrefetcherStats stats = piped->prefetcher()->stats();
  EXPECT_GT(stats.plans, 0u);
  EXPECT_GT(stats.issued_pages, 0u);
  EXPECT_GT(stats.used_pages, 0u);  // Predictions actually paid off.
  EXPECT_GT(stats.overlap_cost_millis, 0.0);
  // Consumed pages came off the frames' bill: strictly less stall I/O
  // and simulated time than the identical walk without the pipeline.
  EXPECT_LT(async_pages, off_pages);
  EXPECT_LT(async_ms, off_ms);
  // Wasted ratio is a ratio.
  EXPECT_GE(stats.WastedRatio(), 0.0);
  EXPECT_LE(stats.WastedRatio(), 1.0);
}

TEST_F(PrefetchFixture, AsyncRunReportsIntoTelemetryAndResets) {
  telemetry::Telemetry tel;  // Declared first: outlives the system.
  VisualOptions opt = BaseOptions();
  opt.prefetch = PrefetchMode::kAsync;
  auto visual = MakeVisual(opt);
  visual->AttachTelemetry(&tel, "vis");
  for (const Viewpoint& vp : EastboundWalk(16)) {
    FrameResult frame;
    ASSERT_TRUE(visual->RenderFrame(vp, &frame).ok());
  }
  telemetry::MetricsSnapshot snap = tel.metrics().Snapshot();
  const telemetry::MetricSample* issued_view =
      snap.Find("vis.prefetch.issued_pages");
  ASSERT_NE(issued_view, nullptr);
  EXPECT_GT(issued_view->value, 0.0);
  EXPECT_NE(snap.Find("vis.prefetch.wasted_ratio"), nullptr);
  visual->DetachTelemetry();
  // ResetRuntime drops the plan but keeps cumulative counters.
  const uint64_t issued = visual->prefetcher()->stats().issued_pages;
  visual->ResetRuntime();
  EXPECT_EQ(visual->prefetcher()->planned_cell(), kInvalidCell);
  EXPECT_GE(visual->prefetcher()->stats().cancelled_pages, 0u);
  EXPECT_EQ(visual->prefetcher()->stats().issued_pages, issued);
}

// The diversion hook itself: a sink swallows billing (stats, clock, head)
// and records the runs; a residency gate consumes fully resident runs
// one-shot.
TEST(PrefetchBillingTest, SinkDivertsAndResidencyConsumes) {
  PageDevice device;
  const PageId first = device.AllocateUnmaterialized(8);
  std::string out;
  PrefetchSink sink;
  {
    ScopedPrefetchBilling scope(&device, &sink);
    ASSERT_TRUE(device.Read(first + 1, &out).ok());
    ASSERT_TRUE(device.Read(first + 2, &out).ok());  // Sequential run.
  }
  // The device saw nothing...
  EXPECT_EQ(device.stats().page_reads, 0u);
  EXPECT_EQ(device.stats().seeks, 0u);
  EXPECT_EQ(device.clock().NowMicros(), 0u);
  // ...the sink saw everything, one recorded run per billed read, with
  // its own private head tracker (the second read is sequential: no
  // second seek).
  EXPECT_EQ(sink.stats.page_reads, 2u);
  EXPECT_EQ(sink.stats.seeks, 1u);
  EXPECT_GT(sink.cost_millis, 0.0);
  ASSERT_EQ(sink.runs.size(), 2u);
  EXPECT_EQ(sink.runs[0].first, first + 1);
  EXPECT_EQ(sink.runs[0].second, 1u);
  EXPECT_EQ(sink.runs[1].first, first + 2);
  EXPECT_EQ(sink.runs[1].second, 1u);

  // Mark those pages resident; re-reading them is consumed, not billed.
  PrefetchResidency residency;
  residency.pages.insert(first + 1);
  residency.pages.insert(first + 2);
  device.set_prefetch_residency(&residency);
  ASSERT_TRUE(device.Read(first + 1, &out).ok());
  ASSERT_TRUE(device.Read(first + 2, &out).ok());
  EXPECT_EQ(device.stats().page_reads, 0u);
  EXPECT_EQ(device.clock().NowMicros(), 0u);
  EXPECT_EQ(residency.used_pages, 2u);
  EXPECT_EQ(residency.used_runs, 2u);
  EXPECT_TRUE(residency.pages.empty());  // One-shot: consumed.

  // Third read of the same page: residency is spent, billing resumes.
  ASSERT_TRUE(device.Read(first + 1, &out).ok());
  EXPECT_EQ(device.stats().page_reads, 1u);
  device.set_prefetch_residency(nullptr);
}

TEST(PrefetchBillingTest, PartiallyResidentRunBillsInFull) {
  PageDevice device;
  const PageId first = device.AllocateUnmaterialized(8);
  PrefetchResidency residency;
  residency.pages.insert(first + 1);  // Page first+2 is NOT resident.
  device.set_prefetch_residency(&residency);
  std::vector<std::string> out;
  ASSERT_TRUE(device.ReadRun(first + 1, 2, &out).ok());
  EXPECT_EQ(device.stats().page_reads, 2u);  // Billed in full.
  EXPECT_EQ(residency.used_pages, 0u);
  EXPECT_EQ(residency.pages.size(), 1u);  // Untouched.
  device.set_prefetch_residency(nullptr);
}

}  // namespace
}  // namespace hdov
