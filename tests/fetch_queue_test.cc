#include "prefetch/fetch_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "storage/page_device.h"
#include "storage/sharded_buffer_pool.h"

namespace hdov::prefetch {
namespace {

std::unique_ptr<PageDevice> MakeDevice(uint64_t pages) {
  auto device = std::make_unique<PageDevice>();
  for (uint64_t i = 0; i < pages; ++i) {
    PageId p = device->Allocate();
    EXPECT_TRUE(device->Write(p, std::string("page-") +
                                     std::to_string(p))
                    .ok());
  }
  device->ResetStats();
  return device;
}

TEST(FetchQueueTest, WarmsRunIntoPool) {
  auto device = MakeDevice(16);
  ShardedPoolOptions popt;
  popt.capacity_pages = 64;
  ShardedBufferPool pool(device.get(), popt);

  AsyncFetchQueue queue(FetchQueueOptions{.workers = 1});  // Inline.
  int owner = 0;
  queue.Issue({&owner, &pool, nullptr, /*first=*/1, /*pages=*/8});
  queue.Drain();

  FetchQueueStats stats = queue.stats();
  EXPECT_EQ(stats.requests_issued, 1u);
  EXPECT_EQ(stats.requests_completed, 1u);
  EXPECT_EQ(stats.requests_cancelled, 0u);
  EXPECT_EQ(stats.pages_warmed, 8u);
  // The warm populated the shared cache: the next Get of those pages hits.
  BufferPoolStats before = pool.TotalStats();
  for (PageId p = 1; p <= 8; ++p) {
    ASSERT_TRUE(pool.Get(p).ok());
  }
  BufferPoolStats after = pool.TotalStats();
  EXPECT_EQ(after.hits - before.hits, 8u);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(FetchQueueTest, DeviceWarmPathIsUnbilled) {
  auto device = MakeDevice(8);
  AsyncFetchQueue queue(FetchQueueOptions{.workers = 1});
  int owner = 0;
  const uint64_t clock_before = device->clock().NowMicros();
  queue.Issue({&owner, nullptr, device.get(), /*first=*/1, /*pages=*/7});
  queue.Drain();
  EXPECT_EQ(queue.stats().pages_warmed, 7u);
  // ReadRaw warms move no simulated counter and no simulated clock.
  EXPECT_EQ(device->stats().page_reads, 0u);
  EXPECT_EQ(device->stats().seeks, 0u);
  EXPECT_EQ(device->clock().NowMicros(), clock_before);
}

TEST(FetchQueueTest, EmptyAndTargetlessRequestsAreIgnored) {
  auto device = MakeDevice(4);
  AsyncFetchQueue queue(FetchQueueOptions{.workers = 1});
  int owner = 0;
  queue.Issue({&owner, nullptr, device.get(), 1, /*pages=*/0});
  queue.Issue({&owner, nullptr, nullptr, 1, /*pages=*/4});
  queue.Drain();
  FetchQueueStats stats = queue.stats();
  EXPECT_EQ(stats.requests_issued, 0u);
  EXPECT_EQ(stats.pages_warmed, 0u);
}

TEST(FetchQueueTest, PastEndWarmStopsQuietly) {
  auto device = MakeDevice(4);
  AsyncFetchQueue queue(FetchQueueOptions{.workers = 1});
  int owner = 0;
  // Run extends past the device: speculation is allowed to overshoot.
  queue.Issue({&owner, nullptr, device.get(), /*first=*/2, /*pages=*/10});
  queue.Drain();
  FetchQueueStats stats = queue.stats();
  EXPECT_EQ(stats.requests_issued, 1u);
  EXPECT_EQ(stats.requests_completed, 1u);
  EXPECT_EQ(stats.pages_warmed, 2u);  // Pages 2..3 exist; 4+ do not.
}

TEST(FetchQueueTest, CancelBeforeDrainStopsOwnersWork) {
  auto device = MakeDevice(64);
  AsyncFetchQueue queue(FetchQueueOptions{.workers = 2});
  int victim = 0;
  int bystander = 0;
  for (PageId first = 1; first + 8 <= 64; first += 8) {
    queue.Issue({&victim, nullptr, device.get(), first, 8});
  }
  queue.Cancel(&victim);
  // A request issued by another owner after the cancel still completes —
  // and so does one issued by the victim itself (new work, new epoch).
  // First pages distinct from the cancelled batch: a duplicate would be
  // coalesced with a stale-epoch twin still in flight.
  queue.Issue({&bystander, nullptr, device.get(), 2, 4});
  queue.Issue({&victim, nullptr, device.get(), 58, 4});
  queue.Drain();

  FetchQueueStats stats = queue.stats();
  EXPECT_EQ(stats.requests_issued,
            stats.requests_completed + stats.requests_cancelled);
  EXPECT_GE(stats.requests_completed, 2u);  // At least the two post-cancel.
}

TEST(FetchQueueTest, DuplicateInFlightRequestIsCoalesced) {
  auto device = MakeDevice(8);
  // Inline mode: the first Issue completes before returning, so the twin
  // is NOT in flight anymore and must warm again, not dedup.
  AsyncFetchQueue inline_queue(FetchQueueOptions{.workers = 1});
  int owner = 0;
  inline_queue.Issue({&owner, nullptr, device.get(), 1, 4});
  inline_queue.Issue({&owner, nullptr, device.get(), 1, 4});
  inline_queue.Drain();
  EXPECT_EQ(inline_queue.stats().requests_issued, 2u);
  EXPECT_EQ(inline_queue.stats().requests_deduped, 0u);

  // Threaded mode: flood the queue with one identical request; however
  // the scheduler interleaves, every copy is accounted exactly once as
  // issued or deduped, never lost.
  AsyncFetchQueue queue(FetchQueueOptions{.workers = 2});
  constexpr int kCopies = 200;
  for (int i = 0; i < kCopies; ++i) {
    queue.Issue({&owner, nullptr, device.get(), 1, 4});
  }
  queue.Drain();
  FetchQueueStats stats = queue.stats();
  EXPECT_EQ(stats.requests_issued + stats.requests_deduped,
            static_cast<uint64_t>(kCopies));
  EXPECT_EQ(stats.requests_issued,
            stats.requests_completed + stats.requests_cancelled);
}

// The TSan workhorse: issuers, a canceller and a drainer all hammer one
// queue concurrently. Correctness here is "no data race, no lost
// request"; the assertions check the conservation laws.
TEST(FetchQueueTest, ConcurrentIssueCancelDrain) {
  auto device = MakeDevice(256);
  ShardedPoolOptions popt;
  popt.capacity_pages = 128;
  ShardedBufferPool pool(device.get(), popt);
  AsyncFetchQueue queue(FetchQueueOptions{.workers = 4});

  constexpr int kIssuers = 4;
  constexpr int kRequestsPerIssuer = 64;
  std::vector<int> owners(kIssuers);
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kIssuers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerIssuer; ++i) {
        AsyncFetchQueue::Request req;
        req.owner = &owners[t];
        if (i % 2 == 0) {
          req.pool = &pool;
        } else {
          req.device = device.get();
        }
        req.first = 1 + static_cast<PageId>((t * 37 + i * 11) % 200);
        req.pages = 1 + (i % 7);
        queue.Issue(req);
        if (i % 16 == 15) {
          queue.Cancel(&owners[t]);  // Mispredict own plan mid-stream.
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      queue.Cancel(&owners[0]);
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < kIssuers; ++t) {
    threads[t].join();
  }
  stop.store(true, std::memory_order_release);
  threads.back().join();
  queue.Drain();

  FetchQueueStats stats = queue.stats();
  EXPECT_EQ(stats.requests_issued,
            stats.requests_completed + stats.requests_cancelled);
  EXPECT_LE(stats.requests_issued + stats.requests_deduped,
            static_cast<uint64_t>(kIssuers * kRequestsPerIssuer));
}

TEST(FetchQueueTest, DestructorDrainsOutstandingWork) {
  auto device = MakeDevice(128);
  {
    AsyncFetchQueue queue(FetchQueueOptions{.workers = 4});
    int owner = 0;
    for (PageId first = 1; first + 4 <= 128; first += 4) {
      queue.Issue({&owner, nullptr, device.get(), first, 4});
    }
    // No Drain: the destructor must not leave workers touching `device`.
  }
  SUCCEED();
}

}  // namespace
}  // namespace hdov::prefetch
