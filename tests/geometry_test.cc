#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geometry/aabb.h"
#include "geometry/frustum.h"
#include "geometry/intersect.h"
#include "geometry/plane.h"
#include "geometry/vec3.h"

namespace hdov {
namespace {

TEST(Vec3Test, Arithmetic) {
  Vec3 a(1, 2, 3);
  Vec3 b(4, 5, 6);
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
  EXPECT_DOUBLE_EQ(a.Dot(b), 32.0);
}

TEST(Vec3Test, CrossIsOrthogonal) {
  Vec3 a(1, 2, 3);
  Vec3 b(-4, 1, 2);
  Vec3 c = a.Cross(b);
  EXPECT_NEAR(c.Dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.Dot(b), 0.0, 1e-12);
}

TEST(Vec3Test, NormalizedLength) {
  EXPECT_NEAR(Vec3(3, 4, 12).Normalized().Length(), 1.0, 1e-12);
  // Zero vector normalizes to zero rather than NaN.
  EXPECT_EQ(Vec3().Normalized(), Vec3());
}

TEST(AabbTest, EmptyAndExtend) {
  Aabb box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);
  box.Extend(Vec3(1, 2, 3));
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);  // A point has zero volume.
  box.Extend(Vec3(3, 5, 7));
  EXPECT_DOUBLE_EQ(box.Volume(), 2.0 * 3.0 * 4.0);
  EXPECT_EQ(box.Center(), Vec3(2, 3.5, 5));
}

TEST(AabbTest, ExtendEmptyBoxIsNoop) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 1, 1));
  box.Extend(Aabb::Empty());
  EXPECT_EQ(box, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)));
}

TEST(AabbTest, ContainsAndIntersects) {
  Aabb box(Vec3(0, 0, 0), Vec3(10, 10, 10));
  EXPECT_TRUE(box.Contains(Vec3(5, 5, 5)));
  EXPECT_TRUE(box.Contains(Vec3(0, 0, 0)));  // Boundary counts.
  EXPECT_FALSE(box.Contains(Vec3(-0.1, 5, 5)));
  EXPECT_TRUE(box.Intersects(Aabb(Vec3(9, 9, 9), Vec3(12, 12, 12))));
  EXPECT_TRUE(box.Intersects(Aabb(Vec3(10, 0, 0), Vec3(11, 1, 1))));  // Touch.
  EXPECT_FALSE(box.Intersects(Aabb(Vec3(11, 0, 0), Vec3(12, 1, 1))));
  EXPECT_FALSE(box.Intersects(Aabb::Empty()));
}

TEST(AabbTest, OverlapVolume) {
  Aabb a(Vec3(0, 0, 0), Vec3(4, 4, 4));
  Aabb b(Vec3(2, 2, 2), Vec3(6, 6, 6));
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 8.0);
  EXPECT_DOUBLE_EQ(b.OverlapVolume(a), 8.0);
  EXPECT_DOUBLE_EQ(a.OverlapVolume(Aabb(Vec3(5, 5, 5), Vec3(6, 6, 6))), 0.0);
}

TEST(AabbTest, Enlargement) {
  Aabb a(Vec3(0, 0, 0), Vec3(2, 2, 2));
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Aabb(Vec3(0, 0, 0), Vec3(4, 2, 2))), 8.0);
}

TEST(AabbTest, DistanceTo) {
  Aabb box(Vec3(0, 0, 0), Vec3(2, 2, 2));
  EXPECT_DOUBLE_EQ(box.DistanceTo(Vec3(1, 1, 1)), 0.0);
  EXPECT_DOUBLE_EQ(box.DistanceTo(Vec3(5, 1, 1)), 3.0);
  EXPECT_DOUBLE_EQ(box.DistanceTo(Vec3(5, 6, 1)), 5.0);
}

TEST(AabbTest, CornersCoverAllCombinations) {
  Aabb box(Vec3(0, 0, 0), Vec3(1, 2, 3));
  Aabb rebuilt;
  for (int i = 0; i < 8; ++i) {
    rebuilt.Extend(box.Corner(i));
  }
  EXPECT_EQ(rebuilt, box);
}

TEST(PlaneTest, SignedDistance) {
  Plane p = Plane::FromPointNormal(Vec3(0, 0, 5), Vec3(0, 0, 2));
  EXPECT_NEAR(p.SignedDistance(Vec3(0, 0, 7)), 2.0, 1e-12);
  EXPECT_NEAR(p.SignedDistance(Vec3(3, 4, 5)), 0.0, 1e-12);
  EXPECT_NEAR(p.SignedDistance(Vec3(0, 0, 0)), -5.0, 1e-12);
}

TEST(PlaneTest, FromPointsWinding) {
  Plane p = Plane::FromPoints(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(0, 1, 0));
  EXPECT_GT(p.SignedDistance(Vec3(0, 0, 1)), 0.0);  // Right-hand rule: +z.
}

TEST(PlaneTest, BoxFullyBehind) {
  Plane p = Plane::FromPointNormal(Vec3(0, 0, 0), Vec3(0, 0, 1));
  EXPECT_TRUE(p.BoxFullyBehind(Aabb(Vec3(0, 0, -3), Vec3(1, 1, -1))));
  EXPECT_FALSE(p.BoxFullyBehind(Aabb(Vec3(0, 0, -3), Vec3(1, 1, 1))));
  EXPECT_FALSE(p.BoxFullyBehind(Aabb(Vec3(0, 0, 1), Vec3(1, 1, 2))));
}

TEST(FrustumTest, ContainsPointsAlongAxis) {
  FrustumOptions opt;
  opt.near_dist = 1.0;
  opt.far_dist = 100.0;
  Frustum f(Vec3(0, 0, 0), Vec3(1, 0, 0), opt);
  EXPECT_TRUE(f.ContainsPoint(Vec3(50, 0, 0)));
  EXPECT_TRUE(f.ContainsPoint(Vec3(1.5, 0, 0)));
  EXPECT_FALSE(f.ContainsPoint(Vec3(0.5, 0, 0)));    // Before near plane.
  EXPECT_FALSE(f.ContainsPoint(Vec3(150, 0, 0)));    // Beyond far plane.
  EXPECT_FALSE(f.ContainsPoint(Vec3(-10, 0, 0)));    // Behind the eye.
  EXPECT_FALSE(f.ContainsPoint(Vec3(10, 100, 0)));   // Far off to the side.
}

TEST(FrustumTest, FovBoundary) {
  FrustumOptions opt;
  opt.fov_y_radians = M_PI / 2.0;  // 90 degrees; aspect 1.
  opt.aspect = 1.0;
  opt.near_dist = 0.1;
  opt.far_dist = 100.0;
  Frustum f(Vec3(0, 0, 0), Vec3(1, 0, 0), opt);
  // At 90 degrees fov, the boundary is |z| = x.
  EXPECT_TRUE(f.ContainsPoint(Vec3(10, 0, 9.9)));
  EXPECT_FALSE(f.ContainsPoint(Vec3(10, 0, 10.1)));
  EXPECT_TRUE(f.ContainsPoint(Vec3(10, 9.9, 0)));
  EXPECT_FALSE(f.ContainsPoint(Vec3(10, 10.1, 0)));
}

TEST(FrustumTest, IntersectsBoxConservative) {
  FrustumOptions opt;
  Frustum f(Vec3(0, 0, 0), Vec3(1, 0, 0), opt);
  EXPECT_TRUE(f.IntersectsBox(Aabb(Vec3(10, -1, -1), Vec3(12, 1, 1))));
  EXPECT_FALSE(f.IntersectsBox(Aabb(Vec3(-20, -1, -1), Vec3(-10, 1, 1))));
  // A box straddling a side plane still intersects.
  EXPECT_TRUE(f.IntersectsBox(Aabb(Vec3(5, -100, -1), Vec3(6, 0, 1))));
}

TEST(FrustumTest, BoundingBoxCoversFrustumPoints) {
  FrustumOptions opt;
  Frustum f(Vec3(3, 4, 5), Vec3(1, 2, 0), opt);
  Aabb box = f.BoundingBox();
  Rng rng(5);
  // Every contained point must be inside the bounding box.
  for (int i = 0; i < 2000; ++i) {
    Vec3 p(rng.Uniform(-1500, 1500), rng.Uniform(-1500, 1500),
           rng.Uniform(-1500, 1500));
    if (f.ContainsPoint(p)) {
      EXPECT_TRUE(box.Contains(p)) << "point escaped bounding box";
    }
  }
}

TEST(IntersectTest, RayTriangleHit) {
  Ray ray{Vec3(0, 0, -5), Vec3(0, 0, 1)};
  auto t = RayTriangle(ray, Vec3(-1, -1, 0), Vec3(1, -1, 0), Vec3(0, 1, 0));
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 5.0, 1e-12);
}

TEST(IntersectTest, RayTriangleBackfaceHits) {
  // Two-sided: reversing the winding still hits.
  Ray ray{Vec3(0, 0, -5), Vec3(0, 0, 1)};
  auto t = RayTriangle(ray, Vec3(-1, -1, 0), Vec3(0, 1, 0), Vec3(1, -1, 0));
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 5.0, 1e-12);
}

TEST(IntersectTest, RayTriangleMiss) {
  Ray ray{Vec3(5, 5, -5), Vec3(0, 0, 1)};
  EXPECT_FALSE(
      RayTriangle(ray, Vec3(-1, -1, 0), Vec3(1, -1, 0), Vec3(0, 1, 0))
          .has_value());
  // Behind the origin.
  Ray back{Vec3(0, 0, 5), Vec3(0, 0, 1)};
  EXPECT_FALSE(
      RayTriangle(back, Vec3(-1, -1, 0), Vec3(1, -1, 0), Vec3(0, 1, 0))
          .has_value());
}

TEST(IntersectTest, RayBoxEntryParameter) {
  Aabb box(Vec3(1, -1, -1), Vec3(3, 1, 1));
  Ray ray{Vec3(0, 0, 0), Vec3(1, 0, 0)};
  auto t = RayBox(ray, box);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 1.0);
  // Origin inside the box: entry parameter 0.
  Ray inside{Vec3(2, 0, 0), Vec3(1, 0, 0)};
  auto t2 = RayBox(inside, box);
  ASSERT_TRUE(t2.has_value());
  EXPECT_DOUBLE_EQ(*t2, 0.0);
}

TEST(IntersectTest, RayBoxMissAndParallel) {
  Aabb box(Vec3(1, -1, -1), Vec3(3, 1, 1));
  EXPECT_FALSE(RayBox({Vec3(0, 5, 0), Vec3(1, 0, 0)}, box).has_value());
  EXPECT_FALSE(RayBox({Vec3(0, 0, 0), Vec3(-1, 0, 0)}, box).has_value());
  // Parallel to an axis slab but inside its range.
  EXPECT_TRUE(RayBox({Vec3(0, 0, 0), Vec3(1, 0, 0)}, box).has_value());
}

TEST(IntersectTest, TriangleAreaRightTriangle) {
  EXPECT_DOUBLE_EQ(TriangleArea(Vec3(0, 0, 0), Vec3(4, 0, 0), Vec3(0, 3, 0)),
                   6.0);
}

TEST(SolidAngleTest, OctantTriangle) {
  // Triangle spanning one octant of the unit sphere subtends 4pi/8.
  double omega = TriangleSolidAngle(Vec3(0, 0, 0), Vec3(1, 0, 0),
                                    Vec3(0, 1, 0), Vec3(0, 0, 1));
  EXPECT_NEAR(omega, M_PI / 2.0, 1e-9);
}

TEST(SolidAngleTest, ScaleInvariant) {
  Vec3 p(0.3, -0.2, 0.1);
  Vec3 a(2, 0.5, 1), b(1, 3, 0.2), c(0.6, 1, 4);
  double omega1 = TriangleSolidAngle(p, a, b, c);
  double omega2 = TriangleSolidAngle(p, p + (a - p) * 7.0, p + (b - p) * 7.0,
                                     p + (c - p) * 7.0);
  EXPECT_NEAR(omega1, omega2, 1e-9);
}

// Parameterized sweep: the six faces of a cube around the origin must
// together subtend the full sphere.
class CubeFaceSolidAngle : public ::testing::TestWithParam<double> {};

TEST_P(CubeFaceSolidAngle, FacesSumToFullSphere) {
  const double half = GetParam();
  Aabb box(Vec3(-half, -half, -half), Vec3(half, half, half));
  double total = 0.0;
  static constexpr int kQuads[6][4] = {
      {0, 2, 3, 1}, {4, 5, 7, 6}, {0, 1, 5, 4},
      {2, 6, 7, 3}, {0, 4, 6, 2}, {1, 3, 7, 5},
  };
  for (const auto& q : kQuads) {
    total += TriangleSolidAngle(Vec3(), box.Corner(q[0]), box.Corner(q[1]),
                                box.Corner(q[2]));
    total += TriangleSolidAngle(Vec3(), box.Corner(q[0]), box.Corner(q[2]),
                                box.Corner(q[3]));
  }
  EXPECT_NEAR(total, 4.0 * M_PI, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CubeFaceSolidAngle,
                         ::testing::Values(0.5, 1.0, 10.0, 250.0));

}  // namespace
}  // namespace hdov
