#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "rtree/linear_split.h"
#include "rtree/quadratic_split.h"
#include "rtree/rtree.h"
#include "storage/page_device.h"

namespace hdov {
namespace {

Aabb RandomBox(Rng* rng, double world, double max_extent) {
  Vec3 lo(rng->Uniform(0, world), rng->Uniform(0, world),
          rng->Uniform(0, world));
  Vec3 extent(rng->Uniform(0.1, max_extent), rng->Uniform(0.1, max_extent),
              rng->Uniform(0.1, max_extent));
  return Aabb(lo, lo + extent);
}

std::vector<uint64_t> BruteForceQuery(const std::vector<Aabb>& boxes,
                                      const Aabb& window) {
  std::vector<uint64_t> hits;
  for (size_t i = 0; i < boxes.size(); ++i) {
    if (boxes[i].Intersects(window)) {
      hits.push_back(i);
    }
  }
  return hits;
}

TEST(LinearSplitTest, RespectsMinFill) {
  Rng rng(1);
  std::vector<Aabb> boxes;
  for (int i = 0; i < 33; ++i) {
    boxes.push_back(RandomBox(&rng, 100, 10));
  }
  SplitResult split = LinearSplit(boxes, 13);
  EXPECT_GE(split.left.size(), 13u);
  EXPECT_GE(split.right.size(), 13u);
  EXPECT_EQ(split.left.size() + split.right.size(), boxes.size());
  // Every index appears exactly once.
  std::set<size_t> seen(split.left.begin(), split.left.end());
  seen.insert(split.right.begin(), split.right.end());
  EXPECT_EQ(seen.size(), boxes.size());
}

TEST(LinearSplitTest, SeparatesTwoClusters) {
  std::vector<Aabb> boxes;
  for (int i = 0; i < 8; ++i) {
    double base = i * 0.5;
    boxes.push_back(Aabb(Vec3(base, 0, 0), Vec3(base + 1, 1, 1)));
  }
  for (int i = 0; i < 8; ++i) {
    double base = 100 + i * 0.5;
    boxes.push_back(Aabb(Vec3(base, 0, 0), Vec3(base + 1, 1, 1)));
  }
  SplitResult split = LinearSplit(boxes, 2);
  // Cluster membership: the two groups should be the two clusters.
  auto is_low = [](size_t i) { return i < 8; };
  bool left_all_low = std::all_of(split.left.begin(), split.left.end(),
                                  is_low);
  bool left_all_high = std::none_of(split.left.begin(), split.left.end(),
                                    is_low);
  EXPECT_TRUE(left_all_low || left_all_high);
}

TEST(LinearSplitTest, IdenticalBoxesFallBackGracefully) {
  std::vector<Aabb> boxes(10, Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)));
  SplitResult split = LinearSplit(boxes, 3);
  EXPECT_GE(split.left.size(), 3u);
  EXPECT_GE(split.right.size(), 3u);
  EXPECT_EQ(split.left.size() + split.right.size(), 10u);
}

TEST(RTreeTest, EmptyTreeQueries) {
  RTree tree;
  std::vector<uint64_t> results;
  tree.WindowQuery(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), &results);
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.height(), 1);
}

TEST(RTreeTest, RejectsEmptyMbr) {
  RTree tree;
  EXPECT_TRUE(tree.Insert(Aabb(), 1).IsInvalidArgument());
}

TEST(RTreeTest, InsertAndQueryMatchesBruteForce) {
  Rng rng(42);
  RTree tree;
  std::vector<Aabb> boxes;
  for (uint64_t i = 0; i < 500; ++i) {
    boxes.push_back(RandomBox(&rng, 1000, 30));
    ASSERT_TRUE(tree.Insert(boxes.back(), i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GT(tree.height(), 1);

  for (int q = 0; q < 50; ++q) {
    Aabb window = RandomBox(&rng, 1000, 200);
    std::vector<uint64_t> expected = BruteForceQuery(boxes, window);
    std::vector<uint64_t> actual;
    tree.WindowQuery(window, &actual);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "query " << q;
  }
}

TEST(RTreeTest, InvariantsHoldDuringGrowth) {
  Rng rng(7);
  RTreeOptions opt;
  opt.max_entries = 8;
  opt.min_entries = 3;
  RTree tree(opt);
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Insert(RandomBox(&rng, 500, 20), i).ok());
    if (i % 50 == 49) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << i;
    }
  }
}

TEST(RTreeTest, DeleteRemovesOnlyTarget) {
  Rng rng(11);
  RTree tree;
  std::vector<Aabb> boxes;
  for (uint64_t i = 0; i < 200; ++i) {
    boxes.push_back(RandomBox(&rng, 300, 15));
    ASSERT_TRUE(tree.Insert(boxes.back(), i).ok());
  }
  ASSERT_TRUE(tree.Delete(boxes[17], 17).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), 199u);

  std::vector<uint64_t> results;
  tree.WindowQuery(boxes[17], &results);
  EXPECT_EQ(std::count(results.begin(), results.end(), 17u), 0);
  // A neighbour is still present.
  tree.WindowQuery(boxes[18], &results);
  EXPECT_EQ(std::count(results.begin(), results.end(), 18u), 1);
}

TEST(RTreeTest, DeleteNotFound) {
  RTree tree;
  ASSERT_TRUE(tree.Insert(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 5).ok());
  EXPECT_TRUE(tree.Delete(Aabb(Vec3(0, 0, 0), Vec3(1, 1, 1)), 6).IsNotFound());
  EXPECT_TRUE(tree.Delete(Aabb(Vec3(2, 2, 2), Vec3(3, 3, 3)), 5).IsNotFound());
}

TEST(RTreeTest, DeleteEverythingThenReuse) {
  Rng rng(23);
  RTreeOptions opt;
  opt.max_entries = 8;
  opt.min_entries = 3;
  RTree tree(opt);
  std::vector<Aabb> boxes;
  for (uint64_t i = 0; i < 120; ++i) {
    boxes.push_back(RandomBox(&rng, 100, 5));
    ASSERT_TRUE(tree.Insert(boxes.back(), i).ok());
  }
  for (uint64_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(tree.Delete(boxes[i], i).ok()) << "delete " << i;
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "invariants after " << i;
  }
  EXPECT_TRUE(tree.empty());
  // The tree remains usable after full drain.
  ASSERT_TRUE(tree.Insert(boxes[0], 999).ok());
  std::vector<uint64_t> results;
  tree.WindowQuery(boxes[0], &results);
  EXPECT_EQ(results, std::vector<uint64_t>{999});
}

TEST(RTreeTest, DeleteMatchesBruteForceQueries) {
  Rng rng(31);
  RTree tree;
  std::vector<Aabb> boxes;
  std::vector<bool> alive;
  for (uint64_t i = 0; i < 300; ++i) {
    boxes.push_back(RandomBox(&rng, 400, 20));
    alive.push_back(true);
    ASSERT_TRUE(tree.Insert(boxes.back(), i).ok());
  }
  // Delete a random half.
  for (uint64_t i = 0; i < 300; ++i) {
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(tree.Delete(boxes[i], i).ok());
      alive[i] = false;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int q = 0; q < 30; ++q) {
    Aabb window = RandomBox(&rng, 400, 100);
    std::vector<uint64_t> expected;
    for (size_t i = 0; i < boxes.size(); ++i) {
      if (alive[i] && boxes[i].Intersects(window)) {
        expected.push_back(i);
      }
    }
    std::vector<uint64_t> actual;
    tree.WindowQuery(window, &actual);
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(RTreeTest, VisitDepthFirstParentsBeforeChildren) {
  Rng rng(3);
  RTree tree;
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Insert(RandomBox(&rng, 200, 10), i).ok());
  }
  int last_level = 1000;
  bool first = true;
  size_t count = 0;
  std::vector<int> levels;
  tree.VisitDepthFirst([&](size_t, const RTree::Node& node) {
    if (first) {
      EXPECT_EQ(node.level, tree.height() - 1);  // Root first.
      first = false;
    }
    levels.push_back(node.level);
    ++count;
  });
  EXPECT_EQ(count, tree.num_nodes());
  (void)last_level;
}

TEST(QuadraticSplitTest, RespectsMinFillAndPartition) {
  Rng rng(13);
  std::vector<Aabb> boxes;
  for (int i = 0; i < 33; ++i) {
    boxes.push_back(RandomBox(&rng, 100, 10));
  }
  SplitResult split = QuadraticSplit(boxes, 13);
  EXPECT_GE(split.left.size(), 13u);
  EXPECT_GE(split.right.size(), 13u);
  std::set<size_t> seen(split.left.begin(), split.left.end());
  seen.insert(split.right.begin(), split.right.end());
  EXPECT_EQ(seen.size(), boxes.size());
}

TEST(QuadraticSplitTest, SeparatesTwoClusters) {
  std::vector<Aabb> boxes;
  for (int i = 0; i < 6; ++i) {
    boxes.push_back(Aabb(Vec3(i, 0, 0), Vec3(i + 1, 1, 1)));
  }
  for (int i = 0; i < 6; ++i) {
    boxes.push_back(Aabb(Vec3(100 + i, 0, 0), Vec3(101 + i, 1, 1)));
  }
  SplitResult split = QuadraticSplit(boxes, 2);
  auto is_low = [](size_t i) { return i < 6; };
  bool left_pure = std::all_of(split.left.begin(), split.left.end(),
                               is_low) ||
                   std::none_of(split.left.begin(), split.left.end(),
                                is_low);
  EXPECT_TRUE(left_pure);
}

TEST(RTreeTest, QuadraticSplitTreeIsCorrect) {
  Rng rng(17);
  RTreeOptions opt;
  opt.max_entries = 8;
  opt.min_entries = 3;
  opt.split = SplitAlgorithm::kQuadratic;
  RTree tree(opt);
  std::vector<Aabb> boxes;
  for (uint64_t i = 0; i < 400; ++i) {
    boxes.push_back(RandomBox(&rng, 500, 20));
    ASSERT_TRUE(tree.Insert(boxes.back(), i).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int q = 0; q < 25; ++q) {
    Aabb window = RandomBox(&rng, 500, 150);
    std::vector<uint64_t> expected = BruteForceQuery(boxes, window);
    std::vector<uint64_t> actual;
    tree.WindowQuery(window, &actual);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

class BulkLoadSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(BulkLoadSizes, MatchesBruteForce) {
  Rng rng(19);
  std::vector<std::pair<Aabb, uint64_t>> entries;
  std::vector<Aabb> boxes;
  for (uint64_t i = 0; i < GetParam(); ++i) {
    boxes.push_back(RandomBox(&rng, 800, 25));
    entries.emplace_back(boxes.back(), i);
  }
  RTreeOptions opt;
  opt.max_entries = 16;
  opt.min_entries = 6;
  Result<RTree> tree = RTree::BulkLoad(entries, opt);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  ASSERT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->size(), GetParam());
  for (int q = 0; q < 20; ++q) {
    Aabb window = RandomBox(&rng, 800, 200);
    std::vector<uint64_t> expected = BruteForceQuery(boxes, window);
    std::vector<uint64_t> actual;
    tree->WindowQuery(window, &actual);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkLoadSizes,
                         ::testing::Values(1, 15, 16, 17, 100, 1000, 2049));

TEST(RTreeTest, BulkLoadSupportsFurtherUpdates) {
  Rng rng(23);
  std::vector<std::pair<Aabb, uint64_t>> entries;
  for (uint64_t i = 0; i < 300; ++i) {
    entries.emplace_back(RandomBox(&rng, 300, 10), i);
  }
  Result<RTree> tree = RTree::BulkLoad(entries);
  ASSERT_TRUE(tree.ok());
  // Insert and delete still work on a bulk-loaded tree.
  Aabb extra = RandomBox(&rng, 300, 10);
  ASSERT_TRUE(tree->Insert(extra, 999).ok());
  ASSERT_TRUE(tree->Delete(entries[0].first, 0).ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  EXPECT_EQ(tree->size(), 300u);
}

TEST(RTreeTest, BulkLoadPacksTighterThanInsertion) {
  Rng rng(29);
  std::vector<std::pair<Aabb, uint64_t>> entries;
  RTree inserted;
  for (uint64_t i = 0; i < 2000; ++i) {
    Aabb box = RandomBox(&rng, 1000, 15);
    entries.emplace_back(box, i);
    ASSERT_TRUE(inserted.Insert(box, i).ok());
  }
  Result<RTree> bulk = RTree::BulkLoad(entries);
  ASSERT_TRUE(bulk.ok());
  // STR packs nodes full: fewer nodes than incremental insertion.
  EXPECT_LT(bulk->num_nodes(), inserted.num_nodes());
}

TEST(RTreeTest, BulkLoadRejectsEmptyMbr) {
  std::vector<std::pair<Aabb, uint64_t>> entries = {{Aabb(), 0}};
  EXPECT_TRUE(RTree::BulkLoad(entries).status().IsInvalidArgument());
}

TEST(PackedRTreeTest, RoundTripNode) {
  Rng rng(5);
  RTree tree;
  std::vector<Aabb> boxes;
  for (uint64_t i = 0; i < 150; ++i) {
    boxes.push_back(RandomBox(&rng, 300, 10));
    ASSERT_TRUE(tree.Insert(boxes.back(), i).ok());
  }
  PageDevice device;
  Result<PackedRTree> packed = PackedRTree::Pack(tree, &device);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_EQ(packed->num_node_pages(), tree.num_nodes());

  PackedRTree::PackedNode root;
  ASSERT_TRUE(packed->ReadNode(packed->root_page(), &root).ok());
  EXPECT_EQ(root.entries.size(), tree.node(tree.root_index()).entries.size());
}

TEST(PackedRTreeTest, DiskQueryMatchesInMemory) {
  Rng rng(9);
  RTree tree;
  std::vector<Aabb> boxes;
  for (uint64_t i = 0; i < 400; ++i) {
    boxes.push_back(RandomBox(&rng, 500, 25));
    ASSERT_TRUE(tree.Insert(boxes.back(), i).ok());
  }
  PageDevice device;
  Result<PackedRTree> packed = PackedRTree::Pack(tree, &device);
  ASSERT_TRUE(packed.ok());
  device.ResetStats();

  for (int q = 0; q < 20; ++q) {
    Aabb window = RandomBox(&rng, 500, 120);
    std::vector<uint64_t> mem;
    std::vector<uint64_t> disk;
    tree.WindowQuery(window, &mem);
    ASSERT_TRUE(packed->WindowQuery(window, &disk).ok());
    std::sort(mem.begin(), mem.end());
    std::sort(disk.begin(), disk.end());
    EXPECT_EQ(mem, disk);
  }
  // Disk queries actually bill I/O.
  EXPECT_GT(device.stats().page_reads, 0u);
}

// Randomized workload fuzz across fanouts and split algorithms: invariants
// and query correctness must hold through arbitrary insert/delete
// interleavings.
struct FuzzConfig {
  size_t max_entries;
  size_t min_entries;
  SplitAlgorithm split;
};

class RTreeFuzz : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(RTreeFuzz, RandomInsertDeleteWorkload) {
  RTreeOptions opt;
  opt.max_entries = GetParam().max_entries;
  opt.min_entries = GetParam().min_entries;
  opt.split = GetParam().split;
  RTree tree(opt);
  Rng rng(101 + GetParam().max_entries);

  std::vector<std::pair<Aabb, uint64_t>> alive;
  uint64_t next_id = 0;
  for (int step = 0; step < 800; ++step) {
    if (alive.empty() || rng.Bernoulli(0.65)) {
      Aabb box = RandomBox(&rng, 600, 25);
      ASSERT_TRUE(tree.Insert(box, next_id).ok());
      alive.emplace_back(box, next_id++);
    } else {
      size_t victim = rng.NextUint64(alive.size());
      ASSERT_TRUE(tree.Delete(alive[victim].first, alive[victim].second)
                      .ok());
      alive.erase(alive.begin() + static_cast<ptrdiff_t>(victim));
    }
    if (step % 100 == 99) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "step " << step;
      Aabb window = RandomBox(&rng, 600, 150);
      std::vector<uint64_t> expected;
      for (const auto& [box, id] : alive) {
        if (box.Intersects(window)) {
          expected.push_back(id);
        }
      }
      std::vector<uint64_t> actual;
      tree.WindowQuery(window, &actual);
      std::sort(expected.begin(), expected.end());
      std::sort(actual.begin(), actual.end());
      ASSERT_EQ(actual, expected) << "step " << step;
    }
  }
  EXPECT_EQ(tree.size(), alive.size());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RTreeFuzz,
    ::testing::Values(FuzzConfig{4, 2, SplitAlgorithm::kAngTanLinear},
                      FuzzConfig{8, 3, SplitAlgorithm::kAngTanLinear},
                      FuzzConfig{32, 13, SplitAlgorithm::kAngTanLinear},
                      FuzzConfig{8, 3, SplitAlgorithm::kQuadratic},
                      FuzzConfig{16, 6, SplitAlgorithm::kQuadratic}));

TEST(PackedRTreeTest, NodeTooLargeRejected) {
  RTreeOptions opt;
  opt.max_entries = 200;  // 200 * 56B > 4 KiB.
  opt.min_entries = 80;
  RTree tree(opt);
  Rng rng(1);
  for (uint64_t i = 0; i < 150; ++i) {
    ASSERT_TRUE(tree.Insert(RandomBox(&rng, 100, 5), i).ok());
  }
  PageDevice device;
  EXPECT_FALSE(PackedRTree::Pack(tree, &device).ok());
}

}  // namespace
}  // namespace hdov
