// Differential harness: FlatSearcher vs HdovSearcher. The flat backend's
// contract is not "close" but *bit-identical* — same RetrievedLod
// sequence, same SearchStats, same simulated I/O on independent device
// rigs, same store telemetry, same trace span tree — across every storage
// scheme, several randomized worlds, an eta sweep and all three
// termination heuristics. Any divergence is a bug in the flat path.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "hdov/builder.h"
#include "hdov/flat_search.h"
#include "hdov/flat_tree.h"
#include "hdov/hdov_tree.h"
#include "hdov/search.h"
#include "scene/city_generator.h"
#include "storage/buffer_pool.h"
#include "telemetry/trace.h"
#include "visibility/precompute.h"
#include "walkthrough/visual_system.h"

namespace hdov {
namespace {

TEST(SearchBackendTest, ParseAndName) {
  EXPECT_STREQ(SearchBackendName(SearchBackend::kLegacy), "legacy");
  EXPECT_STREQ(SearchBackendName(SearchBackend::kFlat), "flat");
  SearchBackend backend = SearchBackend::kLegacy;
  EXPECT_TRUE(ParseSearchBackend("flat", &backend));
  EXPECT_EQ(backend, SearchBackend::kFlat);
  EXPECT_TRUE(ParseSearchBackend("legacy", &backend));
  EXPECT_EQ(backend, SearchBackend::kLegacy);
  backend = SearchBackend::kFlat;
  EXPECT_FALSE(ParseSearchBackend("bogus", &backend));
  EXPECT_EQ(backend, SearchBackend::kFlat);  // Untouched on failure.
}

// One self-contained world: scene, grid, visibility, models, built tree.
struct World {
  std::unique_ptr<Scene> scene;
  std::unique_ptr<CellGrid> grid;
  std::unique_ptr<VisibilityTable> table;
  std::unique_ptr<PageDevice> model_device;
  std::unique_ptr<ModelStore> models;
  std::unique_ptr<HdovTree> tree;
};

std::unique_ptr<World> BuildWorld(uint64_t seed, int blocks, int cells) {
  auto w = std::make_unique<World>();
  CityOptions copt;
  copt.seed = seed;
  copt.mode = GeometryMode::kProxy;
  copt.blocks_x = blocks;
  copt.blocks_y = blocks;
  Result<Scene> city = GenerateCity(copt);
  EXPECT_TRUE(city.ok()) << city.status().ToString();
  w->scene = std::make_unique<Scene>(std::move(*city));

  CellGridOptions gopt;
  gopt.cells_x = cells;
  gopt.cells_y = cells;
  Result<CellGrid> grid = CellGrid::Build(w->scene->bounds(), gopt);
  EXPECT_TRUE(grid.ok()) << grid.status().ToString();
  w->grid = std::make_unique<CellGrid>(std::move(*grid));

  PrecomputeOptions popt;
  popt.dov.cubemap.face_resolution = 16;
  popt.samples_per_cell = 1;
  Result<VisibilityTable> table =
      PrecomputeVisibility(*w->scene, *w->grid, popt);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  w->table = std::make_unique<VisibilityTable>(std::move(*table));

  w->model_device = std::make_unique<PageDevice>();
  w->models = std::make_unique<ModelStore>(w->model_device.get());
  HdovBuildOptions bopt;
  bopt.rtree.max_entries = 8;
  bopt.rtree.min_entries = 3;
  Result<HdovTree> tree = HdovBuilder::Build(*w->scene, w->models.get(), bopt);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  w->tree = std::make_unique<HdovTree>(std::move(*tree));
  return w;
}

// The (seed, scale) matrix the differential sweep runs over: three seeds
// at two world scales each.
struct WorldSpec {
  uint64_t seed;
  int blocks;
  int cells;
};
constexpr WorldSpec kWorldSpecs[] = {
    {11, 3, 3}, {22, 3, 3}, {33, 3, 3}, {11, 5, 4}, {22, 5, 4}, {33, 5, 4},
};
constexpr size_t kNumWorlds = sizeof(kWorldSpecs) / sizeof(kWorldSpecs[0]);

// Worlds are built lazily and cached for the life of the test process, so
// a test that only touches world 0 does not pay for the other five.
const World& GetWorld(size_t i) {
  static std::unique_ptr<World>* worlds = new std::unique_ptr<World>[6];
  if (!worlds[i]) {
    worlds[i] = BuildWorld(kWorldSpecs[i].seed, kWorldSpecs[i].blocks,
                           kWorldSpecs[i].cells);
  }
  return *worlds[i];
}

void ExpectIdenticalResults(const std::vector<RetrievedLod>& legacy,
                            const std::vector<RetrievedLod>& flat) {
  ASSERT_EQ(legacy.size(), flat.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    SCOPED_TRACE("result " + std::to_string(i));
    EXPECT_EQ(legacy[i].kind, flat[i].kind);
    EXPECT_EQ(legacy[i].owner, flat[i].owner);
    EXPECT_EQ(legacy[i].lod_level, flat[i].lod_level);
    EXPECT_EQ(legacy[i].model, flat[i].model);
    EXPECT_EQ(legacy[i].triangle_count, flat[i].triangle_count);
    EXPECT_EQ(legacy[i].byte_size, flat[i].byte_size);
    EXPECT_EQ(legacy[i].dov, flat[i].dov);  // Exact, not approximate.
  }
}

void ExpectIdenticalStats(const SearchStats& legacy, const SearchStats& flat) {
  EXPECT_EQ(legacy.nodes_visited, flat.nodes_visited);
  EXPECT_EQ(legacy.vpages_fetched, flat.vpages_fetched);
  EXPECT_EQ(legacy.hidden_entries_pruned, flat.hidden_entries_pruned);
  EXPECT_EQ(legacy.internal_terminations, flat.internal_terminations);
}

void ExpectIdenticalIo(const IoStats& legacy, const IoStats& flat) {
  EXPECT_EQ(legacy.page_reads, flat.page_reads);
  EXPECT_EQ(legacy.page_writes, flat.page_writes);
  EXPECT_EQ(legacy.seeks, flat.seeks);
  EXPECT_EQ(legacy.bytes_read, flat.bytes_read);
  EXPECT_EQ(legacy.bytes_written, flat.bytes_written);
}

const std::vector<double>& EtaSweep() {
  static const std::vector<double>* etas =
      new std::vector<double>{0.0, 0.001, 0.004, 0.02};
  return *etas;
}

const std::vector<TerminationHeuristic>& AllHeuristics() {
  static const std::vector<TerminationHeuristic>* h =
      new std::vector<TerminationHeuristic>{TerminationHeuristic::kEq4,
                                            TerminationHeuristic::kNone,
                                            TerminationHeuristic::kCostModel};
  return *h;
}

class FlatSearchSchemes : public ::testing::TestWithParam<StorageScheme> {};

TEST_P(FlatSearchSchemes, BitIdenticalAcrossWorldsEtasAndHeuristics) {
  const StorageScheme scheme = GetParam();
  for (size_t wi = 0; wi < kNumWorlds; ++wi) {
    SCOPED_TRACE("world " + std::to_string(wi));
    const World& w = GetWorld(wi);

    // Two fully independent rigs: separate store devices (and clocks), one
    // legacy searcher over the node vectors, one flat searcher over the
    // compiled layout. Build I/O is identical by construction; reset both
    // so the comparison isolates query-time billing.
    PageDevice legacy_dev;
    auto legacy_store = BuildStore(scheme, *w.tree, *w.table, &legacy_dev);
    ASSERT_TRUE(legacy_store.ok()) << legacy_store.status().ToString();
    PageDevice flat_dev;
    auto flat_store = BuildStore(scheme, *w.tree, *w.table, &flat_dev);
    ASSERT_TRUE(flat_store.ok()) << flat_store.status().ToString();
    legacy_dev.ResetStats();
    flat_dev.ResetStats();
    legacy_dev.clock().Reset();
    flat_dev.clock().Reset();

    Result<FlatHdovTree> flat = FlatHdovTree::Compile(*w.tree);
    ASSERT_TRUE(flat.ok()) << flat.status().ToString();
    HdovSearcher legacy(w.tree.get(), w.scene.get(), w.models.get(), nullptr);
    FlatSearcher flat_searcher(&*flat, w.scene.get(), w.models.get(), nullptr);

    for (double eta : EtaSweep()) {
      for (TerminationHeuristic heuristic : AllHeuristics()) {
        SearchOptions opt;
        opt.eta = eta;
        opt.heuristic = heuristic;
        for (CellId c = 0; c < w.table->num_cells(); ++c) {
          SCOPED_TRACE("eta " + std::to_string(eta) + " heuristic " +
                       std::to_string(static_cast<int>(heuristic)) + " cell " +
                       std::to_string(c));
          std::vector<RetrievedLod> a, b;
          SearchStats sa, sb;
          ASSERT_TRUE(
              legacy.Search(legacy_store->get(), c, opt, &a, &sa).ok());
          ASSERT_TRUE(
              flat_searcher.Search(flat_store->get(), c, opt, &b, &sb).ok());
          ExpectIdenticalResults(a, b);
          ExpectIdenticalStats(sa, sb);
          // Simulated I/O stays in lockstep after every single query, so a
          // drift pinpoints the first diverging (cell, eta, heuristic).
          ExpectIdenticalIo(legacy_dev.stats(), flat_dev.stats());
          EXPECT_DOUBLE_EQ(legacy_dev.clock().NowMillis(),
                           flat_dev.clock().NowMillis());
          EXPECT_EQ((*legacy_store)->telemetry_stats().vpage_fetches,
                    (*flat_store)->telemetry_stats().vpage_fetches);
          EXPECT_EQ((*legacy_store)->telemetry_stats().invisible_lookups,
                    (*flat_store)->telemetry_stats().invisible_lookups);
          EXPECT_EQ((*legacy_store)->telemetry_stats().cell_flips,
                    (*flat_store)->telemetry_stats().cell_flips);
          if (::testing::Test::HasFailure()) {
            return;  // The first divergence is the informative one.
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, FlatSearchSchemes,
                         ::testing::Values(StorageScheme::kHorizontal,
                                           StorageScheme::kVertical,
                                           StorageScheme::kIndexedVertical,
                                           StorageScheme::kBitmapVertical));

TEST(FlatSearchTest, NodePageBillingIdenticalWithAndWithoutCache) {
  // The tree-device arm: both searchers bill node-page reads against their
  // own packed device, with and without an LRU pool in front. The page
  // read sequences (and so cache hits) must match exactly.
  const World& w = GetWorld(0);
  PageDevice legacy_tree_dev;
  HdovTree legacy_packed = *w.tree;
  ASSERT_TRUE(legacy_packed.Pack(&legacy_tree_dev).ok());
  PageDevice flat_tree_dev;
  HdovTree flat_packed = *w.tree;
  ASSERT_TRUE(flat_packed.Pack(&flat_tree_dev).ok());
  Result<FlatHdovTree> flat = FlatHdovTree::Compile(flat_packed);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();

  for (size_t cache_pages : {size_t{0}, size_t{4}}) {
    SCOPED_TRACE("cache_pages " + std::to_string(cache_pages));
    PageDevice legacy_dev;
    auto legacy_store =
        BuildStore(StorageScheme::kIndexedVertical, legacy_packed, *w.table,
                   &legacy_dev);
    ASSERT_TRUE(legacy_store.ok());
    PageDevice flat_dev;
    auto flat_store = BuildStore(StorageScheme::kIndexedVertical, flat_packed,
                                 *w.table, &flat_dev);
    ASSERT_TRUE(flat_store.ok());

    HdovSearcher legacy(&legacy_packed, w.scene.get(), w.models.get(),
                        &legacy_tree_dev);
    FlatSearcher flat_searcher(&*flat, w.scene.get(), w.models.get(),
                               &flat_tree_dev);
    std::unique_ptr<BufferPool> legacy_pool, flat_pool;
    if (cache_pages > 0) {
      legacy_pool = std::make_unique<BufferPool>(&legacy_tree_dev, cache_pages);
      flat_pool = std::make_unique<BufferPool>(&flat_tree_dev, cache_pages);
      legacy.set_tree_cache(legacy_pool.get());
      flat_searcher.set_tree_cache(flat_pool.get());
    }
    legacy_tree_dev.ResetStats();
    flat_tree_dev.ResetStats();

    SearchOptions opt;
    opt.eta = 0.002;
    for (CellId c = 0; c < w.table->num_cells(); ++c) {
      SCOPED_TRACE("cell " + std::to_string(c));
      std::vector<RetrievedLod> a, b;
      SearchStats sa, sb;
      ASSERT_TRUE(legacy.Search(legacy_store->get(), c, opt, &a, &sa).ok());
      ASSERT_TRUE(
          flat_searcher.Search(flat_store->get(), c, opt, &b, &sb).ok());
      ExpectIdenticalResults(a, b);
      ExpectIdenticalStats(sa, sb);
      ExpectIdenticalIo(legacy_tree_dev.stats(), flat_tree_dev.stats());
      ExpectIdenticalIo(legacy_dev.stats(), flat_dev.stats());
    }
    // With the pool the device sees strictly fewer reads than the visit
    // count; without it, billing is per page switch. Either way both
    // backends landed on the same totals (asserted above).
    if (cache_pages > 0) {
      EXPECT_GT(legacy_pool->stats().hits + legacy_pool->stats().misses, 0u);
      EXPECT_EQ(legacy_pool->stats().hits, flat_pool->stats().hits);
      EXPECT_EQ(legacy_pool->stats().misses, flat_pool->stats().misses);
    }
  }
}

TEST(FlatSearchTest, TraceSpanTreesIdentical) {
  // The attribution plane must not notice the backend swap: span for
  // span, attribute for attribute, in the same order.
  const World& w = GetWorld(0);
  Result<FlatHdovTree> flat = FlatHdovTree::Compile(*w.tree);
  ASSERT_TRUE(flat.ok());
  for (StorageScheme scheme :
       {StorageScheme::kIndexedVertical, StorageScheme::kHorizontal}) {
    SCOPED_TRACE(StorageSchemeName(scheme));
    PageDevice legacy_dev, flat_dev;
    auto legacy_store = BuildStore(scheme, *w.tree, *w.table, &legacy_dev);
    auto flat_store = BuildStore(scheme, *w.tree, *w.table, &flat_dev);
    ASSERT_TRUE(legacy_store.ok());
    ASSERT_TRUE(flat_store.ok());
    HdovSearcher legacy(w.tree.get(), w.scene.get(), w.models.get(), nullptr);
    FlatSearcher flat_searcher(&*flat, w.scene.get(), w.models.get(), nullptr);

    for (double eta : {0.0, 0.004}) {
      for (CellId c = 0; c < w.table->num_cells(); ++c) {
        SCOPED_TRACE("eta " + std::to_string(eta) + " cell " +
                     std::to_string(c));
        telemetry::TraceRecorder legacy_rec, flat_rec;
        legacy_rec.set_enabled(true);
        flat_rec.set_enabled(true);
        SearchOptions opt;
        opt.eta = eta;
        std::vector<RetrievedLod> a, b;
        opt.trace = &legacy_rec;
        ASSERT_TRUE(legacy.Search(legacy_store->get(), c, opt, &a).ok());
        opt.trace = &flat_rec;
        ASSERT_TRUE(flat_searcher.Search(flat_store->get(), c, opt, &b).ok());
        ExpectIdenticalResults(a, b);

        ASSERT_EQ(legacy_rec.num_spans(), flat_rec.num_spans());
        EXPECT_EQ(legacy_rec.open_depth(), 0u);
        EXPECT_EQ(flat_rec.open_depth(), 0u);
        for (size_t s = 0; s < legacy_rec.num_spans(); ++s) {
          const telemetry::TraceSpan& ls = legacy_rec.span(s);
          const telemetry::TraceSpan& fs = flat_rec.span(s);
          SCOPED_TRACE("span " + std::to_string(s) + " (" + ls.name + ")");
          EXPECT_EQ(ls.name, fs.name);
          EXPECT_EQ(ls.parent, fs.parent);
          EXPECT_EQ(ls.closed, fs.closed);
          EXPECT_EQ(ls.num_attrs, fs.num_attrs);
          EXPECT_EQ(ls.str_attrs, fs.str_attrs);
        }
        if (::testing::Test::HasFailure()) {
          return;
        }
      }
    }
  }
}

TEST(FlatSearchTest, BitmapIndexMatchesGroundTruthVisibility) {
  // After a search, the per-cell bitmap index must agree with the
  // brute-force V-page derivation: exactly the visible nodes are set, and
  // NextVisible enumerates them in id order.
  const World& w = GetWorld(0);
  Result<FlatHdovTree> flat = FlatHdovTree::Compile(*w.tree);
  ASSERT_TRUE(flat.ok());
  for (StorageScheme scheme :
       {StorageScheme::kVertical, StorageScheme::kIndexedVertical,
        StorageScheme::kBitmapVertical}) {
    SCOPED_TRACE(StorageSchemeName(scheme));
    PageDevice dev;
    auto store = BuildStore(scheme, *w.tree, *w.table, &dev);
    ASSERT_TRUE(store.ok());
    FlatSearcher searcher(&*flat, w.scene.get(), w.models.get(), nullptr);
    SearchOptions opt;
    opt.eta = 0.001;
    for (CellId c = 0; c < w.table->num_cells(); ++c) {
      std::vector<RetrievedLod> result;
      ASSERT_TRUE(searcher.Search(store->get(), c, opt, &result).ok());
      const CellVPageSet truth = ComputeCellVPages(*w.tree, w.table->cell(c));
      const VPageBitmapIndex& index = searcher.vpage_index();
      ASSERT_EQ(index.num_nodes(), w.tree->num_nodes());
      uint32_t visible = 0;
      for (size_t n = 0; n < truth.pages.size(); ++n) {
        EXPECT_EQ(index.Test(static_cast<uint32_t>(n)),
                  !truth.pages[n].empty())
            << "cell " << c << " node " << n;
        if (!truth.pages[n].empty()) {
          EXPECT_EQ(index.NextVisible(static_cast<uint32_t>(n)), n);
          ++visible;
        }
      }
      EXPECT_EQ(index.visible_count(), visible);
    }
  }
}

TEST(FlatSearchTest, VisualSystemBackendsRenderIdentically) {
  // End to end through VisualSystem: a whole walkthrough (delta search,
  // prefetch, tree cache, model fetches) must produce identical frames and
  // identical total billing on both backends.
  const World& w = GetWorld(0);
  VisualOptions opt;
  opt.eta = 0.002;
  opt.build.rtree.max_entries = 8;
  opt.build.rtree.min_entries = 3;
  opt.prefetch_models_per_frame = 4;
  opt.tree_cache_pages = 8;

  opt.backend = SearchBackend::kLegacy;
  auto legacy = VisualSystem::Create(w.scene.get(), w.grid.get(),
                                     w.table.get(), opt);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ((*legacy)->shared_flat_tree(), nullptr);

  opt.backend = SearchBackend::kFlat;
  auto flat = VisualSystem::Create(w.scene.get(), w.grid.get(), w.table.get(),
                                   opt);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  EXPECT_NE((*flat)->shared_flat_tree(), nullptr);

  // A straight diagonal walk that crosses several cell borders.
  const Aabb bounds = w.scene->bounds();
  const int kFrames = 24;
  for (int f = 0; f < kFrames; ++f) {
    const double t = 0.1 + 0.8 * static_cast<double>(f) / (kFrames - 1);
    Viewpoint vp{Vec3(bounds.min.x + t * (bounds.max.x - bounds.min.x),
                      bounds.min.y + t * (bounds.max.y - bounds.min.y), 1.7),
                 Vec3(1, 0, 0)};
    FrameResult fl, ff;
    ASSERT_TRUE((*legacy)->RenderFrame(vp, &fl).ok());
    ASSERT_TRUE((*flat)->RenderFrame(vp, &ff).ok());
    SCOPED_TRACE("frame " + std::to_string(f));
    EXPECT_DOUBLE_EQ(fl.frame_time_ms, ff.frame_time_ms);
    EXPECT_DOUBLE_EQ(fl.query_time_ms, ff.query_time_ms);
    EXPECT_EQ(fl.io_pages, ff.io_pages);
    EXPECT_EQ(fl.light_io_pages, ff.light_io_pages);
    EXPECT_EQ(fl.rendered_triangles, ff.rendered_triangles);
    EXPECT_EQ(fl.models_fetched, ff.models_fetched);
    EXPECT_EQ(fl.resident_bytes, ff.resident_bytes);
    EXPECT_EQ(fl.index_bytes_read, ff.index_bytes_read);
    EXPECT_EQ(fl.store_bytes_read, ff.store_bytes_read);
    EXPECT_EQ(fl.model_bytes_read, ff.model_bytes_read);
    ExpectIdenticalStats(fl.search, ff.search);
    ExpectIdenticalResults((*legacy)->last_result(), (*flat)->last_result());
    if (::testing::Test::HasFailure()) {
      return;
    }
  }
  ExpectIdenticalIo((*legacy)->TotalIoStats(), (*flat)->TotalIoStats());
  EXPECT_DOUBLE_EQ((*legacy)->clock().NowMillis(),
                   (*flat)->clock().NowMillis());
}

}  // namespace
}  // namespace hdov
