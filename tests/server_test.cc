// WalkthroughServer: the concurrent-session equivalence suite. The
// server's whole determinism contract is that a session served alongside
// N-1 others bills exactly what it bills alone — these tests pin that
// down bit for bit, for every storage scheme, plus the same-cell
// batching scheduler and the server's error paths.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "persist/world_codec.h"
#include "server/session_device.h"
#include "server/walkthrough_server.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "walkthrough/experiment_testbed.h"
#include "walkthrough/frame_loop.h"
#include "walkthrough/visual_system.h"

namespace hdov {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

// One small world snapshot shared by every test in the suite (writing it
// is the expensive part; the tests only read).
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process path: ctest runs each test case as its own process, in
    // parallel, and they must not clobber one another's snapshot.
    path_ = new std::string(TempPath(
        "hdov_server_test." + std::to_string(::getpid()) + ".hdov"));
    TestbedOptions topt;
    topt.blocks = 4;
    topt.cells = 4;
    auto bed = BuildTestbed(topt);
    ASSERT_TRUE(bed.ok()) << bed.status().ToString();
    bed_ = new Testbed(std::move(*bed));

    auto writer = SnapshotWriter::Create(*path_);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE(
        WriteWorldSnapshot(writer->get(), *bed_, DefaultVisualOptions())
            .ok());
    ASSERT_TRUE((*writer)->Commit().ok());
  }

  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete bed_;
    bed_ = nullptr;
    delete path_;
    path_ = nullptr;
  }

  static std::vector<Session> MakeSessions(size_t n, size_t frames,
                                           bool identical = false) {
    const MotionPattern patterns[] = {MotionPattern::kNormalWalk,
                                      MotionPattern::kTurnLeftRight,
                                      MotionPattern::kBackForward};
    std::vector<Session> sessions;
    for (size_t i = 0; i < n; ++i) {
      SessionOptions sopt;
      sopt.num_frames = frames;
      if (!identical) {
        sopt.seed = 7 + 31 * i;
      }
      Session s = RecordSession(identical ? patterns[0] : patterns[i % 3],
                                bed_->scene.bounds(), sopt);
      s.name.push_back('.');
      s.name.append(std::to_string(i));
      sessions.push_back(std::move(s));
    }
    return sessions;
  }

  // Plays `session` alone on a fresh file-backed solo system — the
  // reference the server must match bit for bit.
  static void PlaySolo(const Session& session, const VisualOptions& vopt,
                       SessionSummary* summary, IoStats* io,
                       double* sim_ms) {
    auto loader = SnapshotLoader::Open(*path_);
    ASSERT_TRUE(loader.ok()) << loader.status().ToString();
    auto solo = VisualSystem::CreateFromSnapshot(
        **loader, &bed_->scene, &bed_->grid, vopt,
        SnapshotLoadMode::kFileBacked);
    ASSERT_TRUE(solo.ok()) << solo.status().ToString();
    Result<SessionSummary> played = PlaySession(solo->get(), session);
    ASSERT_TRUE(played.ok()) << played.status().ToString();
    *summary = *played;
    *io = (*solo)->TotalIoStats();
    *sim_ms = (*solo)->clock().NowMillis();
  }

  static void ExpectSummariesIdentical(const SessionSummary& served,
                                       const SessionSummary& solo) {
    EXPECT_EQ(served.session_name, solo.session_name);
    EXPECT_EQ(served.num_frames, solo.num_frames);
    // EXPECT_DOUBLE_EQ: bit-identical, not merely close.
    EXPECT_DOUBLE_EQ(served.avg_frame_time_ms, solo.avg_frame_time_ms);
    EXPECT_DOUBLE_EQ(served.var_frame_time, solo.var_frame_time);
    EXPECT_DOUBLE_EQ(served.avg_query_time_ms, solo.avg_query_time_ms);
    EXPECT_DOUBLE_EQ(served.avg_io_pages, solo.avg_io_pages);
    EXPECT_DOUBLE_EQ(served.avg_light_io_pages, solo.avg_light_io_pages);
    EXPECT_DOUBLE_EQ(served.avg_cache_hit_rate, solo.avg_cache_hit_rate);
    EXPECT_EQ(served.max_resident_bytes, solo.max_resident_bytes);
  }

  static ServerOptions BaseOptions() {
    ServerOptions opt;
    opt.snapshot_path = *path_;
    opt.visual = DefaultVisualOptions();
    opt.workers = 4;
    return opt;
  }

  static std::string* path_;
  static Testbed* bed_;
};

std::string* ServerTest::path_ = nullptr;
Testbed* ServerTest::bed_ = nullptr;

TEST_F(ServerTest, ConcurrentSessionsBillExactlyLikeSoloPlayback) {
  const std::vector<Session> sessions = MakeSessions(4, 40);
  for (StorageScheme scheme :
       {StorageScheme::kHorizontal, StorageScheme::kVertical,
        StorageScheme::kIndexedVertical, StorageScheme::kBitmapVertical}) {
    SCOPED_TRACE(StorageSchemeName(scheme));
    ServerOptions opt = BaseOptions();
    opt.visual.scheme = scheme;

    auto server = WalkthroughServer::Open(opt);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    for (const Session& s : sessions) {
      ASSERT_TRUE((*server)->AddSession(s).ok());
    }
    auto stats = (*server)->Play();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_EQ(stats->sessions.size(), sessions.size());

    for (size_t i = 0; i < sessions.size(); ++i) {
      SCOPED_TRACE(sessions[i].name);
      SessionSummary solo_summary;
      IoStats solo_io;
      double solo_ms = 0.0;
      PlaySolo(sessions[i], opt.visual, &solo_summary, &solo_io, &solo_ms);

      const ServerSessionRecord& served = stats->sessions[i];
      ExpectSummariesIdentical(served.summary, solo_summary);
      EXPECT_EQ(served.io.page_reads, solo_io.page_reads);
      EXPECT_EQ(served.io.seeks, solo_io.seeks);
      EXPECT_EQ(served.io.bytes_read, solo_io.bytes_read);
      EXPECT_DOUBLE_EQ(served.sim_clock_ms, solo_ms);
    }
  }
}

TEST_F(ServerTest, FlatBackendServesBitIdenticalToSoloAndLegacy) {
  // Sessions served on the flat backend bill exactly like solo flat
  // playback — and solo flat playback bills exactly like solo legacy
  // playback, closing the loop: server(flat) == solo(flat) == solo(legacy).
  const std::vector<Session> sessions = MakeSessions(3, 30);
  ServerOptions opt = BaseOptions();
  opt.visual.backend = SearchBackend::kFlat;

  auto server = WalkthroughServer::Open(opt);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  // The server compiles the flat layout once and shares it with every
  // session view.
  EXPECT_NE((*server)->world().flat_tree, nullptr);
  for (const Session& s : sessions) {
    ASSERT_TRUE((*server)->AddSession(s).ok());
  }
  auto stats = (*server)->Play();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->sessions.size(), sessions.size());

  VisualOptions legacy_opt = BaseOptions().visual;
  legacy_opt.backend = SearchBackend::kLegacy;
  for (size_t i = 0; i < sessions.size(); ++i) {
    SCOPED_TRACE(sessions[i].name);
    SessionSummary flat_summary, legacy_summary;
    IoStats flat_io, legacy_io;
    double flat_ms = 0.0, legacy_ms = 0.0;
    PlaySolo(sessions[i], opt.visual, &flat_summary, &flat_io, &flat_ms);
    PlaySolo(sessions[i], legacy_opt, &legacy_summary, &legacy_io,
             &legacy_ms);

    const ServerSessionRecord& served = stats->sessions[i];
    ExpectSummariesIdentical(served.summary, flat_summary);
    ExpectSummariesIdentical(served.summary, legacy_summary);
    EXPECT_EQ(served.io.page_reads, flat_io.page_reads);
    EXPECT_EQ(served.io.seeks, flat_io.seeks);
    EXPECT_EQ(served.io.bytes_read, flat_io.bytes_read);
    EXPECT_EQ(served.io.page_reads, legacy_io.page_reads);
    EXPECT_EQ(served.io.seeks, legacy_io.seeks);
    EXPECT_EQ(served.io.bytes_read, legacy_io.bytes_read);
    EXPECT_DOUBLE_EQ(served.sim_clock_ms, flat_ms);
    EXPECT_DOUBLE_EQ(served.sim_clock_ms, legacy_ms);
  }
}

TEST_F(ServerTest, AsyncPrefetchServesBitIdenticalToSolo) {
  // With the async prefetch pipeline on, every session gets its own
  // predictor/epoch over one server-wide warm queue. The pipeline only
  // touches unbilled paths, and the speculative searches bill a private
  // sink — so a served session must still bill exactly like solo async
  // playback, worker interleaving and all.
  const std::vector<Session> sessions = MakeSessions(3, 40);
  ServerOptions opt = BaseOptions();
  opt.visual.prefetch = prefetch::PrefetchMode::kAsync;

  auto server = WalkthroughServer::Open(opt);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_NE((*server)->prefetch_queue(), nullptr);
  for (const Session& s : sessions) {
    ASSERT_TRUE((*server)->AddSession(s).ok());
  }
  auto stats = (*server)->Play();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->sessions.size(), sessions.size());
  // The shared queue actually did work for the fleet — the equivalence
  // below is not vacuous.
  EXPECT_GT((*server)->prefetch_queue()->stats().requests_issued, 0u);

  for (size_t i = 0; i < sessions.size(); ++i) {
    SCOPED_TRACE(sessions[i].name);
    SessionSummary solo_summary;
    IoStats solo_io;
    double solo_ms = 0.0;
    PlaySolo(sessions[i], opt.visual, &solo_summary, &solo_io, &solo_ms);

    const ServerSessionRecord& served = stats->sessions[i];
    ExpectSummariesIdentical(served.summary, solo_summary);
    EXPECT_EQ(served.io.page_reads, solo_io.page_reads);
    EXPECT_EQ(served.io.seeks, solo_io.seeks);
    EXPECT_EQ(served.io.bytes_read, solo_io.bytes_read);
    EXPECT_DOUBLE_EQ(served.sim_clock_ms, solo_ms);
  }
}

TEST_F(ServerTest, SchedulingKnobsDoNotChangeBilling) {
  // Same fleet under four scheduler configurations: simulated counters
  // must be identical whether frames run inline, across workers, batched
  // or unbatched — only wall time may differ.
  const std::vector<Session> sessions = MakeSessions(3, 30);
  std::vector<ServerRunStats> runs;
  for (uint32_t workers : {1u, 4u}) {
    for (bool batch : {true, false}) {
      ServerOptions opt = BaseOptions();
      opt.workers = workers;
      opt.batch_same_cell = batch;
      auto server = WalkthroughServer::Open(opt);
      ASSERT_TRUE(server.ok()) << server.status().ToString();
      for (const Session& s : sessions) {
        ASSERT_TRUE((*server)->AddSession(s).ok());
      }
      auto stats = (*server)->Play();
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      runs.push_back(*std::move(stats));
    }
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].sessions.size(), runs[0].sessions.size());
    for (size_t i = 0; i < runs[0].sessions.size(); ++i) {
      ExpectSummariesIdentical(runs[r].sessions[i].summary,
                               runs[0].sessions[i].summary);
      EXPECT_DOUBLE_EQ(runs[r].sessions[i].sim_clock_ms,
                       runs[0].sessions[i].sim_clock_ms);
    }
  }
}

TEST_F(ServerTest, IdenticalSessionsBatchEveryRound) {
  const size_t kUsers = 6;
  const size_t kFrames = 25;
  ServerOptions opt = BaseOptions();
  auto server = WalkthroughServer::Open(opt);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  for (Session& s : MakeSessions(kUsers, kFrames, /*identical=*/true)) {
    ASSERT_TRUE((*server)->AddSession(s).ok());
  }
  auto stats = (*server)->Play();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // Identical paths co-locate in every round: one group of six per
  // round, every frame batched, and the shared cache soaks up the
  // duplicate fetches.
  EXPECT_EQ(stats->rounds, kFrames);
  EXPECT_EQ(stats->batch_groups, kFrames);
  EXPECT_EQ(stats->batched_frames, kUsers * kFrames);
  EXPECT_GT(stats->store_cache.hits, 0u);

  // And every user got the exact same (deterministic) service.
  for (size_t i = 1; i < stats->sessions.size(); ++i) {
    EXPECT_DOUBLE_EQ(stats->sessions[i].summary.avg_frame_time_ms,
                     stats->sessions[0].summary.avg_frame_time_ms);
    EXPECT_EQ(stats->sessions[i].io.page_reads,
              stats->sessions[0].io.page_reads);
  }
}

TEST_F(ServerTest, SharedCacheDeduplicatesRealReads) {
  // With the cache off, N identical sessions re-read every page; with it
  // on, the shared pool serves the repeats.
  auto run = [&](size_t cache_pages, BufferPoolStats* store_cache) {
    ServerOptions opt = BaseOptions();
    opt.shared_cache_pages = cache_pages;
    auto server = WalkthroughServer::Open(opt);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    for (Session& s : MakeSessions(4, 20, /*identical=*/true)) {
      ASSERT_TRUE((*server)->AddSession(s).ok());
    }
    auto stats = (*server)->Play();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    *store_cache = stats->store_cache;
  };
  BufferPoolStats with_cache, without_cache;
  run(4096, &with_cache);
  run(0, &without_cache);
  EXPECT_GT(with_cache.hits, 0u);
  EXPECT_EQ(without_cache.hits + without_cache.misses, 0u);
}

TEST_F(ServerTest, RollupPublishesDeterministicGauges) {
  ServerOptions opt = BaseOptions();
  auto server = WalkthroughServer::Open(opt);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const std::vector<Session> sessions = MakeSessions(2, 15);
  for (const Session& s : sessions) {
    ASSERT_TRUE((*server)->AddSession(s).ok());
  }
  auto stats = (*server)->Play();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  telemetry::MetricsRegistry registry;
  WalkthroughServer::RollupInto(*stats, &registry, "server");
  EXPECT_TRUE(registry.Contains("server.frames"));
  EXPECT_TRUE(registry.Contains("server.rounds"));
  EXPECT_TRUE(registry.Contains("server.batch_groups"));
  EXPECT_TRUE(registry.Contains("server.batched_frames"));
  for (const Session& s : sessions) {
    EXPECT_TRUE(registry.Contains("server.session." + s.name +
                                  ".avg_frame_time_ms"));
    EXPECT_TRUE(
        registry.Contains("server.session." + s.name + ".cache_hit_rate"));
  }
}

TEST_F(ServerTest, SchedulerAccountsQueueWaitAndStageTime) {
  ServerOptions opt = BaseOptions();
  auto server = WalkthroughServer::Open(opt);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const std::vector<Session> sessions = MakeSessions(3, 20);
  for (const Session& s : sessions) {
    ASSERT_TRUE((*server)->AddSession(s).ok());
  }
  auto stats = (*server)->Play();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  for (const ServerSessionRecord& r : stats->sessions) {
    // Every frame got an enqueue→dispatch→complete triple: the service
    // and queue-wait vectors are both fully populated.
    EXPECT_EQ(r.frame_wall_ms.size(), r.summary.num_frames);
    EXPECT_EQ(r.frame_queue_wait_ms.size(), r.summary.num_frames);
    for (double q : r.frame_queue_wait_ms) {
      EXPECT_GE(q, 0.0);
    }
    for (double s : r.frame_wall_ms) {
      EXPECT_GE(s, 0.0);
    }
    // The stage accounting attributed real time: the search stage runs
    // on every frame, so its total cannot be zero.
    EXPECT_GT(r.stage_totals.total_ns(), 0u);
    EXPECT_GT(
        r.stage_totals.ns[static_cast<size_t>(telemetry::TraceStage::kSearch)],
        0u);
  }
}

TEST_F(ServerTest, WallRollupPublishesMarkedPercentileGauges) {
  ServerOptions opt = BaseOptions();
  auto server = WalkthroughServer::Open(opt);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const std::vector<Session> sessions = MakeSessions(2, 15);
  for (const Session& s : sessions) {
    ASSERT_TRUE((*server)->AddSession(s).ok());
  }
  auto stats = (*server)->Play();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  telemetry::MetricsRegistry registry;
  WalkthroughServer::RollupWallLatencyInto(*stats, &registry, "server");
  const telemetry::MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_FALSE(snapshot.samples.empty());
  // Every gauge the wall rollup publishes must carry the ".wall." marker
  // — that is what routes it onto the tolerant comparison path.
  for (const telemetry::MetricSample& sample : snapshot.samples) {
    EXPECT_NE(sample.name.find(".wall."), std::string::npos)
        << sample.name;
  }
  // Fleet-wide and per-session queue/service percentiles, plus the
  // per-stage service-time split.
  for (const char* suffix : {".p50", ".p95", ".p99"}) {
    EXPECT_TRUE(registry.Contains("server.wall.queue_ms" +
                                  std::string(suffix)));
    EXPECT_TRUE(registry.Contains("server.wall.service_ms" +
                                  std::string(suffix)));
  }
  const std::string base = "server.wall.session." + sessions[0].name;
  EXPECT_TRUE(registry.Contains(base + ".queue_ms.p95"));
  EXPECT_TRUE(registry.Contains(base + ".service_ms.p99"));
  EXPECT_TRUE(registry.Contains(base + ".stage.search_ms"));
  EXPECT_TRUE(registry.Contains(base + ".stage.render_ms"));
  // Percentiles are monotone by construction.
  const auto gauge = [&](const std::string& name) {
    const telemetry::MetricSample* s = snapshot.Find(name);
    return s != nullptr ? s->value : -1.0;
  };
  EXPECT_LE(gauge("server.wall.service_ms.p50"),
            gauge("server.wall.service_ms.p95"));
  EXPECT_LE(gauge("server.wall.service_ms.p95"),
            gauge("server.wall.service_ms.p99"));
}

TEST_F(ServerTest, TracingDoesNotMoveSimulatedCounters) {
  // The attribution plane (trace scopes, slow-frame feed, latency
  // accounting) must not move one simulated number: serving with the
  // flight recorder disabled and the slow-frame capture saturated gives
  // bit-identical billing to a plain run.
  const std::vector<Session> sessions = MakeSessions(2, 20);
  auto play = [&](bool recorder_on) {
    ServerOptions opt = BaseOptions();
    auto server = WalkthroughServer::Open(opt);
    EXPECT_TRUE(server.ok());
    for (const Session& s : sessions) {
      EXPECT_TRUE((*server)->AddSession(s).ok());
    }
    telemetry::GlobalFlightRecorder().set_enabled(recorder_on);
    auto stats = (*server)->Play();
    telemetry::GlobalFlightRecorder().set_enabled(true);
    EXPECT_TRUE(stats.ok());
    return *std::move(stats);
  };
  const ServerRunStats with = play(true);
  const ServerRunStats without = play(false);
  ASSERT_EQ(with.sessions.size(), without.sessions.size());
  for (size_t i = 0; i < with.sessions.size(); ++i) {
    ExpectSummariesIdentical(with.sessions[i].summary,
                             without.sessions[i].summary);
    EXPECT_DOUBLE_EQ(with.sessions[i].sim_clock_ms,
                     without.sessions[i].sim_clock_ms);
  }
  EXPECT_EQ(with.total_frames, without.total_frames);
  EXPECT_EQ(with.rounds, without.rounds);
  EXPECT_EQ(with.batched_frames, without.batched_frames);
}

TEST_F(ServerTest, ServedWorldIsReadOnly) {
  ServerOptions opt = BaseOptions();
  auto server = WalkthroughServer::Open(opt);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  SimClock clock;
  auto device =
      (*server)->world().make_device(SessionDeviceRole::kStore, &clock);
  ASSERT_TRUE(device.ok());
  EXPECT_EQ((*device)->Allocate(), kInvalidPage);
  EXPECT_EQ((*device)->AllocateUnmaterialized(3), kInvalidPage);
  EXPECT_TRUE((*device)->Write(0, "nope").IsFailedPrecondition());
  EXPECT_TRUE((*device)->RestoreContents({}).IsFailedPrecondition());
  // Reading still works (and bills the private clock).
  std::string data;
  EXPECT_TRUE((*device)->Read(0, &data).ok());
  EXPECT_GT(clock.NowMillis(), 0.0);
}

TEST_F(ServerTest, ErrorPaths) {
  ServerOptions opt = BaseOptions();
  auto server = WalkthroughServer::Open(opt);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_TRUE((*server)->AddSession(Session()).IsInvalidArgument());
  EXPECT_TRUE((*server)->Play().status().IsInvalidArgument());

  ServerOptions bad = BaseOptions();
  bad.visual.disk.page_size *= 2;
  EXPECT_FALSE(WalkthroughServer::Open(bad).ok());

  ServerOptions missing = BaseOptions();
  missing.snapshot_path = TempPath("hdov_server_no_such_file.hdov");
  EXPECT_FALSE(WalkthroughServer::Open(missing).ok());
}

}  // namespace
}  // namespace hdov
