// AsyncFetchQueue: the background half of the prefetch pipeline — a
// ThreadPool-backed queue of page-run warm requests. Each request names a
// warm target (a ShardedBufferPool to populate, or a device whose ReadRaw
// path is the warmer) and a page run; workers pull requests and touch
// every page so the REAL read happens off the render thread.
//
// The queue lives entirely on the wall-clock side of the house: warms go
// through ShardedBufferPool::Get and PageDevice::ReadRaw — both unbilled —
// so running it (or not) cannot move a simulated counter. The simulated
// side of prefetch (diverted billing, residency credit) is handled by the
// issuer (prefetch/prefetcher.h) against storage/page_device.h hooks.
//
// Cancellation is per *owner* (an opaque pointer identifying the issuing
// prefetcher): a server shares one queue across sessions, and one
// session's mispredicted plan must not cancel another's warms. Cancel
// bumps the owner's epoch; queued requests carrying a stale epoch are
// dropped when a worker picks them up, and an in-flight request re-checks
// its epoch between pages so a long run stops early.

#ifndef HDOV_PREFETCH_FETCH_QUEUE_H_
#define HDOV_PREFETCH_FETCH_QUEUE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "storage/page_device.h"
#include "storage/sharded_buffer_pool.h"

namespace hdov::prefetch {

struct FetchQueueOptions {
  // Worker threads (<= 1 runs every request inline on the issuing
  // thread, which keeps single-threaded tests deterministic).
  size_t workers = 2;
};

// Wall-clock-side counters; sampled by telemetry, never fed back into
// simulation.
struct FetchQueueStats {
  uint64_t requests_issued = 0;
  uint64_t requests_completed = 0;   // Warmed every page of the run.
  uint64_t requests_cancelled = 0;   // Dropped or stopped early by Cancel.
  uint64_t requests_deduped = 0;     // Coalesced with an in-flight twin.
  uint64_t pages_warmed = 0;
};

class AsyncFetchQueue {
 public:
  // One warm request. Exactly one of `pool` / `device` is the warm
  // target: with a pool, pages are pulled through ShardedBufferPool::Get
  // (populating the shared cache); otherwise they are read via the
  // device's unbilled ReadRaw (paging a file-backed device's data into
  // the OS cache / materializing nothing for memory devices). Both
  // targets must outlive the request (Drain() before tearing them down).
  struct Request {
    const void* owner = nullptr;          // Cancellation scope.
    ShardedBufferPool* pool = nullptr;    // Preferred warm target.
    const PageDevice* device = nullptr;   // Fallback warm target.
    PageId first = kInvalidPage;
    uint64_t pages = 0;
  };

  explicit AsyncFetchQueue(const FetchQueueOptions& options = {});
  ~AsyncFetchQueue();  // Drains: workers never outlive the queue.

  AsyncFetchQueue(const AsyncFetchQueue&) = delete;
  AsyncFetchQueue& operator=(const AsyncFetchQueue&) = delete;

  // Enqueues a warm. A request whose (target, first page) duplicates one
  // still in flight is coalesced (counted as deduped, not issued).
  void Issue(const Request& request);

  // Invalidates every queued / in-flight request of `owner` (stale-epoch
  // drop; running requests stop at the next page boundary). Requests
  // issued by `owner` after the call are unaffected.
  void Cancel(const void* owner);

  // Blocks until the queue is empty and no request is running.
  void Drain();

  size_t workers() const { return pool_.num_threads(); }

  FetchQueueStats stats() const;

 private:
  // Key of the in-flight dedup set: warm target identity + first page.
  struct PendingKey {
    const void* target;
    PageId first;
    bool operator==(const PendingKey& o) const {
      return target == o.target && first == o.first;
    }
  };
  struct PendingKeyHash {
    size_t operator()(const PendingKey& k) const {
      return std::hash<const void*>()(k.target) ^
             (std::hash<PageId>()(k.first) * 1099511628211ull);
    }
  };

  void Pump(Request request, uint64_t epoch);
  uint64_t EpochOf(const void* owner);

  ThreadPool pool_;
  mutable std::mutex mu_;
  std::unordered_map<const void*, uint64_t> owner_epochs_;
  std::unordered_set<PendingKey, PendingKeyHash> in_flight_;
  FetchQueueStats stats_;
};

}  // namespace hdov::prefetch

#endif  // HDOV_PREFETCH_FETCH_QUEUE_H_
