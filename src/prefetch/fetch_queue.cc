#include "prefetch/fetch_queue.h"

#include <string>
#include <utility>

namespace hdov::prefetch {

AsyncFetchQueue::AsyncFetchQueue(const FetchQueueOptions& options)
    : pool_(options.workers) {}

AsyncFetchQueue::~AsyncFetchQueue() {
  // Tasks capture `this` (epochs, stats, dedup set); drain before any
  // member is destroyed. ThreadPool's own destructor would also join, but
  // only after in_flight_/mu_ were already gone.
  Drain();
}

uint64_t AsyncFetchQueue::EpochOf(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  return owner_epochs_[owner];  // Default-constructs epoch 0 on first use.
}

void AsyncFetchQueue::Issue(const Request& request) {
  if (request.pages == 0 ||
      (request.pool == nullptr && request.device == nullptr)) {
    return;
  }
  const void* target = request.pool != nullptr
                           ? static_cast<const void*>(request.pool)
                           : static_cast<const void*>(request.device);
  const PendingKey key{target, request.first};
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!in_flight_.insert(key).second) {
      ++stats_.requests_deduped;
      return;
    }
    ++stats_.requests_issued;
    epoch = owner_epochs_[request.owner];
  }
  Request copy = request;
  pool_.Submit([this, copy, epoch] { Pump(copy, epoch); });
}

void AsyncFetchQueue::Pump(Request request, uint64_t epoch) {
  const void* target = request.pool != nullptr
                           ? static_cast<const void*>(request.pool)
                           : static_cast<const void*>(request.device);
  bool cancelled = false;
  uint64_t warmed = 0;
  std::string scratch;
  for (uint64_t i = 0; i < request.pages; ++i) {
    // Re-check the owner's epoch at every page boundary, so Cancel stops
    // a long in-flight run promptly, not just queued ones.
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (owner_epochs_[request.owner] != epoch) {
        cancelled = true;
        break;
      }
    }
    const PageId page = request.first + i;
    if (request.pool != nullptr) {
      if (!request.pool->Get(page).ok()) {
        break;  // Past-end warms are harmless speculation; stop the run.
      }
    } else {
      if (!request.device->ReadRaw(page, &scratch).ok()) {
        break;
      }
    }
    ++warmed;
  }
  std::lock_guard<std::mutex> lock(mu_);
  in_flight_.erase(PendingKey{target, request.first});
  stats_.pages_warmed += warmed;
  if (cancelled) {
    ++stats_.requests_cancelled;
  } else {
    ++stats_.requests_completed;
  }
}

void AsyncFetchQueue::Cancel(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  ++owner_epochs_[owner];
}

void AsyncFetchQueue::Drain() { pool_.Wait(); }

FetchQueueStats AsyncFetchQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace hdov::prefetch
