// Prefetcher: the asynchronous I/O pipeline with predictive prefetch
// (docs/prefetch.md). One prefetcher serves one VisualSystem; it owns the
// per-frame plan (which cell is being warmed), the speculative search
// machinery that discovers the pages that cell needs, and the simulated
// overlap accounting built on the storage hooks in storage/page_device.h.
//
// Async pipeline, one frame:
//   EndFrame(N):  predict the next cell from the motion model. On a plan
//                 change, invalidate the old plan (residency dropped,
//                 queued warms cancelled), then run a speculative search
//                 of the predicted cell — against a private store/searcher
//                 pair over the SAME devices — with billing DIVERTED into
//                 per-device sinks, plus a budget of model warms. The
//                 sink's recorded page runs are staged and handed to the
//                 AsyncFetchQueue so the real bytes warm in the
//                 background.
//   BeginFrame(N+1): the staged runs become RESIDENT (one frame of
//                 simulated latency: I/O issued at end of frame N
//                 completes during the frame gap). Frame N+1's billed
//                 reads that land entirely on resident pages are consumed
//                 for free by the device's residency gate.
//
// Sync mode is the legacy VisualSystem::RunPrefetch fold: same
// look-direction prediction, same plan/budget cursor, with the actual
// search/fetch steps delegated back to the caller through SyncHooks so
// the billing sequence is bit-identical to the historical inline code
// (the walkthrough baselines are pinned on it).
//
// Determinism: everything the simulation sees — the speculative search,
// the diverted costs, the residency sets — is a pure function of the
// viewpoint sequence. The background queue only moves real bytes.

#ifndef HDOV_PREFETCH_PREFETCHER_H_
#define HDOV_PREFETCH_PREFETCHER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "hdov/builder.h"
#include "hdov/search.h"
#include "prefetch/fetch_queue.h"
#include "prefetch/predictor.h"
#include "storage/model_store.h"
#include "storage/page_device.h"
#include "telemetry/metrics.h"

namespace hdov::prefetch {

// The three billed devices a walkthrough session reads from.
enum class PrefetchRole { kTree = 0, kStore = 1, kModel = 2 };
inline constexpr int kNumPrefetchRoles = 3;

struct PrefetcherOptions {
  PrefetchMode mode = PrefetchMode::kAsync;
  // Async: model representations warmed per plan, front of the predicted
  // cell's retrieval list first.
  size_t max_models = 32;
  // Flight-recorder label for this prefetcher's cancel/used events.
  std::string flight_name = "prefetch";
};

// Everything a prefetcher borrows from its VisualSystem. All pointers
// must outlive the prefetcher; the devices additionally must outlive any
// queue it issued warms into (drain before teardown — the prefetcher's
// destructor does).
struct PrefetcherWiring {
  const Scene* scene = nullptr;
  const CellGrid* grid = nullptr;
  std::shared_ptr<const HdovTree> tree;
  StorageScheme scheme = StorageScheme::kIndexedVertical;
  // VisibilityStore::EncodeMeta blob; the speculative pass reattaches its
  // own store instance from it so the main searcher's state (segment
  // caches, cursors) is never disturbed.
  std::string store_meta;
  ModelStore* models = nullptr;  // Non-const: model warms are Fetch calls.
  PageDevice* tree_device = nullptr;
  PageDevice* store_device = nullptr;
  PageDevice* model_device = nullptr;
  // Background warm queue (async mode). May be shared across sessions —
  // cancellation is scoped to this prefetcher. Null in sync mode.
  AsyncFetchQueue* queue = nullptr;
  // Optional shared cache to warm instead of raw device reads, per role
  // (servers pass their ShardedBufferPools). Null / null-returning: warm
  // via the device's ReadRaw.
  std::function<ShardedBufferPool*(PrefetchRole)> warm_pool;
  // Optional: true when the caller already holds this representation at
  // sufficient detail (the delta search would not refetch it), so the
  // model-warm budget skips it. Null: warm everything in budget.
  std::function<bool(const RetrievedLod&)> is_resident;
};

// Cumulative counters (never reset by plan changes; sampled by telemetry
// views and the bench ablation).
struct PrefetcherStats {
  uint64_t plans = 0;            // Speculative passes run.
  uint64_t replans = 0;          // Plans that displaced a live plan.
  uint64_t issued_pages = 0;     // Pages staged toward residency.
  uint64_t used_pages = 0;       // Consumed unbilled by later reads.
  uint64_t used_runs = 0;
  uint64_t cancelled_pages = 0;  // Resident/staged pages invalidated.
  uint64_t models_warmed = 0;
  // Simulated I/O cost diverted off the frame clock — the overlap the
  // pipeline models.
  double overlap_cost_millis = 0.0;

  // (issued - used) / issued: the fraction of prefetched pages that never
  // satisfied a read (misprediction + over-fetch). 0 when nothing issued.
  double WastedRatio() const {
    if (issued_pages == 0) {
      return 0.0;
    }
    const uint64_t used = used_pages < issued_pages ? used_pages
                                                    : issued_pages;
    return static_cast<double>(issued_pages - used) /
           static_cast<double>(issued_pages);
  }
};

class Prefetcher {
 public:
  // Async mode loads the speculative store from wiring.store_meta and
  // installs residency gates on the three devices (removed on
  // destruction); sync mode builds only the predictor.
  static Result<std::unique_ptr<Prefetcher>> Create(
      const PrefetcherWiring& wiring, const PrefetcherOptions& options);

  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  PrefetchMode mode() const { return options_.mode; }

  // --- Async pipeline --------------------------------------------------

  // Publishes the previous frame's staged runs as resident. Call at the
  // top of RenderFrame. No-op outside async mode.
  void BeginFrame();

  // Runs the predict / invalidate / speculate / stage step. Call at the
  // end of RenderFrame with the frame's viewpoint, its cell, and the
  // session's effective SearchOptions (eta resolved). No-op outside async
  // mode.
  Status EndFrame(const Viewpoint& viewpoint, CellId current_cell,
                  const SearchOptions& search);

  // --- Sync fold (legacy RunPrefetch) ----------------------------------

  // Callbacks into the owning VisualSystem so the sync path touches the
  // exact same searcher / model store / resident maps the inline code
  // did.
  struct SyncHooks {
    // Runs the cell search on the caller's configured backend.
    std::function<Status(CellId, std::vector<RetrievedLod>*)> search;
    // Clears the caller's prefetch-loaded map (new plan).
    std::function<void()> clear_loaded;
    // True when the representation is already resident / loaded at
    // sufficient detail (legacy skip conditions).
    std::function<bool(const RetrievedLod&)> should_skip;
    // Fetches the representation and records it loaded.
    std::function<Status(const RetrievedLod&)> fetch;
  };

  // One legacy prefetch step: predict from the look direction, re-plan on
  // a cell change, fetch up to `budget` representations. Increments
  // *fetched per fetch, exactly like the old inline loop.
  Status SyncStep(const Viewpoint& viewpoint, CellId current_cell,
                  size_t budget, const SyncHooks& hooks, size_t* fetched);

  // Drops the plan, residency and queued warms; resets the motion model.
  // Call from ResetRuntime. Stats stay cumulative.
  void Reset();

  // Cumulative counters; used_* are folded in live from the residency
  // gates.
  PrefetcherStats stats() const;

  // Registers read-through views (<prefix>.prefetch.*) over stats().
  // The prefetcher must outlive the registration.
  void RegisterTelemetry(telemetry::MetricsRegistry* registry,
                         const std::string& prefix) const;

  CellId planned_cell() const { return planned_cell_; }
  const VelocityPredictor& predictor() const { return predictor_; }

 private:
  Prefetcher(const PrefetcherWiring& wiring, const PrefetcherOptions& options);

  PageDevice* device(PrefetchRole role) const;
  // Drops residency + staged runs + queued warms of the current plan,
  // recording the kPrefetchCancel event. Safe when there is no plan.
  void InvalidatePlan();
  // Moves one sink's recorded runs into the staged set and the warm
  // queue.
  void StageSink(PrefetchRole role);

  PrefetcherWiring wiring_;
  PrefetcherOptions options_;
  VelocityPredictor predictor_;
  uint16_t flight_code_;

  // Async-mode speculative machinery (null in sync mode): a private store
  // instance over the shared store device plus a private legacy searcher
  // (both backends read the same pages, so the warmed set is
  // backend-independent).
  std::unique_ptr<VisibilityStore> spec_store_;
  std::unique_ptr<HdovSearcher> spec_searcher_;
  std::vector<RetrievedLod> spec_result_;
  size_t sync_next_ = 0;  // Sync mode: budget cursor into spec_result_.

  // Per-role accounting: the diversion sink (live only during the
  // speculative pass), the staged runs awaiting publication, and the
  // residency gate installed on the device.
  PrefetchSink sinks_[kNumPrefetchRoles];
  std::vector<std::pair<PageId, uint64_t>> staged_[kNumPrefetchRoles];
  PrefetchResidency residency_[kNumPrefetchRoles];
  bool gates_installed_ = false;

  CellId planned_cell_ = kInvalidCell;
  PrefetcherStats stats_;  // used_* folded in by stats().
};

}  // namespace hdov::prefetch

#endif  // HDOV_PREFETCH_PREFETCHER_H_
