#include "prefetch/predictor.h"

#include <algorithm>
#include <cstdlib>

namespace hdov::prefetch {

const char* PrefetchModeName(PrefetchMode mode) {
  switch (mode) {
    case PrefetchMode::kOff:
      return "off";
    case PrefetchMode::kSync:
      return "sync";
    case PrefetchMode::kAsync:
      return "async";
  }
  return "off";
}

bool ParsePrefetchMode(std::string_view name, PrefetchMode* mode) {
  if (name == "off") {
    *mode = PrefetchMode::kOff;
    return true;
  }
  if (name == "sync") {
    *mode = PrefetchMode::kSync;
    return true;
  }
  if (name == "async") {
    *mode = PrefetchMode::kAsync;
    return true;
  }
  return false;
}

PrefetchMode& DefaultPrefetchMode() {
  static PrefetchMode mode = [] {
    PrefetchMode m = PrefetchMode::kOff;
    if (const char* env = std::getenv("HDOV_PREFETCH")) {
      ParsePrefetchMode(env, &m);  // Unparseable values keep the default.
    }
    return m;
  }();
  return mode;
}

CellPrediction VelocityPredictor::PredictAlong(const Vec3& direction,
                                               const Vec3& position,
                                               CellId current_cell) const {
  CellPrediction prediction;
  if (current_cell == kInvalidCell) {
    return prediction;
  }
  Vec3 dir_xy(direction.x, direction.y, 0.0);
  const double len_sq = dir_xy.LengthSquared();
  // Degenerate horizontal component — a vertical look, a stationary
  // walker, or NaN coordinates. Written as !(x > eps) so NaN (which fails
  // every comparison) also lands here instead of being normalized into a
  // garbage probe point. This is the vertical-look NaN guard: the legacy
  // path normalized first and probed whatever came out.
  if (!(len_sq > 1e-18)) {
    return prediction;
  }
  dir_xy = dir_xy.Normalized();
  const Vec3 extent = grid_->CellBounds(current_cell).Extent();
  const double stride = std::max(extent.x, extent.y);
  const Vec3 probe = position + dir_xy * stride;
  const CellId ahead = grid_->ClampedCellForPoint(probe);
  if (ahead == current_cell) {
    return prediction;  // Staying put: nothing to warm.
  }
  prediction.cell = ahead;
  prediction.valid = true;
  return prediction;
}

CellPrediction VelocityPredictor::PredictFromLook(const Viewpoint& viewpoint,
                                                  CellId current_cell) const {
  return PredictAlong(viewpoint.look, viewpoint.position, current_cell);
}

CellPrediction VelocityPredictor::Observe(const Viewpoint& viewpoint,
                                          CellId current_cell) {
  if (!has_last_) {
    last_position_ = viewpoint.position;
    has_last_ = true;
    return PredictFromLook(viewpoint, current_cell);
  }
  const Vec3 delta = viewpoint.position - last_position_;
  last_position_ = viewpoint.position;
  // EWMA with alpha = 0.5: heavy enough on the newest delta to track a
  // turn within a couple of frames, smooth enough to ride out one jittery
  // frame without re-planning.
  velocity_ = velocity_ * 0.5 + delta * 0.5;
  CellPrediction from_motion =
      PredictAlong(velocity_, viewpoint.position, current_cell);
  if (from_motion.valid) {
    return from_motion;
  }
  // Stationary (or moving within the cell): the look direction is the
  // only remaining signal.
  return PredictFromLook(viewpoint, current_cell);
}

void VelocityPredictor::Reset() {
  last_position_ = Vec3();
  velocity_ = Vec3();
  has_last_ = false;
}

}  // namespace hdov::prefetch
