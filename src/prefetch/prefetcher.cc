#include "prefetch/prefetcher.h"

#include <utility>

#include "telemetry/flight_recorder.h"

namespace hdov::prefetch {

Prefetcher::Prefetcher(const PrefetcherWiring& wiring,
                       const PrefetcherOptions& options)
    : wiring_(wiring),
      options_(options),
      predictor_(wiring.grid),
      flight_code_(telemetry::FlightInternName(options.flight_name)) {}

Result<std::unique_ptr<Prefetcher>> Prefetcher::Create(
    const PrefetcherWiring& wiring, const PrefetcherOptions& options) {
  if (wiring.grid == nullptr) {
    return Status::InvalidArgument("prefetch: wiring is missing the grid");
  }
  auto prefetcher =
      std::unique_ptr<Prefetcher>(new Prefetcher(wiring, options));
  if (options.mode != PrefetchMode::kAsync) {
    return prefetcher;
  }
  if (wiring.scene == nullptr || wiring.tree == nullptr ||
      wiring.models == nullptr || wiring.tree_device == nullptr ||
      wiring.store_device == nullptr || wiring.model_device == nullptr ||
      wiring.queue == nullptr) {
    return Status::InvalidArgument(
        "prefetch: async wiring is missing a component");
  }
  // A private store instance over the shared store device: the
  // speculative search must not disturb the main searcher's per-cell
  // state. Tree reads go through a private searcher without a cache for
  // the same reason (and so speculative reads never mutate the LRU).
  HDOV_ASSIGN_OR_RETURN(
      prefetcher->spec_store_,
      LoadStore(wiring.scheme, *wiring.tree, wiring.store_meta,
                wiring.store_device));
  prefetcher->spec_searcher_ = std::make_unique<HdovSearcher>(
      wiring.tree.get(), wiring.scene, wiring.models, wiring.tree_device);
  for (int role = 0; role < kNumPrefetchRoles; ++role) {
    prefetcher->device(static_cast<PrefetchRole>(role))
        ->set_prefetch_residency(&prefetcher->residency_[role]);
  }
  prefetcher->gates_installed_ = true;
  return prefetcher;
}

Prefetcher::~Prefetcher() {
  if (gates_installed_) {
    for (int role = 0; role < kNumPrefetchRoles; ++role) {
      device(static_cast<PrefetchRole>(role))->set_prefetch_residency(nullptr);
    }
  }
  if (wiring_.queue != nullptr) {
    // Stop our queued warms, then wait the queue out: an in-flight warm
    // may hold a pointer to a device this prefetcher's owner is about to
    // destroy.
    wiring_.queue->Cancel(this);
    wiring_.queue->Drain();
  }
}

PageDevice* Prefetcher::device(PrefetchRole role) const {
  switch (role) {
    case PrefetchRole::kTree:
      return wiring_.tree_device;
    case PrefetchRole::kStore:
      return wiring_.store_device;
    case PrefetchRole::kModel:
      return wiring_.model_device;
  }
  return nullptr;
}

void Prefetcher::BeginFrame() {
  if (options_.mode != PrefetchMode::kAsync) {
    return;
  }
  // Publish: the runs staged at the end of the previous frame completed
  // during the frame gap and are now resident. One frame of modeled
  // latency, deterministically.
  for (int role = 0; role < kNumPrefetchRoles; ++role) {
    for (const auto& [first, pages] : staged_[role]) {
      for (uint64_t i = 0; i < pages; ++i) {
        residency_[role].pages.insert(first + i);
      }
    }
    staged_[role].clear();
  }
}

Status Prefetcher::EndFrame(const Viewpoint& viewpoint, CellId current_cell,
                            const SearchOptions& search) {
  if (options_.mode != PrefetchMode::kAsync) {
    return Status::OK();
  }
  const CellPrediction prediction = predictor_.Observe(viewpoint, current_cell);
  if (!prediction.valid || prediction.cell == planned_cell_) {
    // No (new) signal: keep the current plan and whatever is resident.
    return Status::OK();
  }
  if (planned_cell_ != kInvalidCell) {
    ++stats_.replans;
  }
  InvalidatePlan();
  planned_cell_ = prediction.cell;
  ++stats_.plans;
  for (PrefetchSink& sink : sinks_) {
    sink = PrefetchSink();
  }
  {
    // Diversion scope: every billed read below lands in the sinks; the
    // frame's counters, the clock, and the disk heads do not move.
    ScopedPrefetchBilling tree_scope(wiring_.tree_device,
                                     &sinks_[0]);
    ScopedPrefetchBilling store_scope(wiring_.store_device,
                                      &sinks_[1]);
    ScopedPrefetchBilling model_scope(wiring_.model_device,
                                      &sinks_[2]);
    spec_result_.clear();
    HDOV_RETURN_IF_ERROR(spec_searcher_->Search(
        spec_store_.get(), prediction.cell, search, &spec_result_, nullptr));
    size_t budget = options_.max_models;
    for (const RetrievedLod& lod : spec_result_) {
      if (budget == 0) {
        break;
      }
      if (wiring_.is_resident && wiring_.is_resident(lod)) {
        continue;  // The delta search would not refetch it: skip.
      }
      HDOV_RETURN_IF_ERROR(wiring_.models->Fetch(lod.model));
      ++stats_.models_warmed;
      --budget;
    }
  }
  for (int role = 0; role < kNumPrefetchRoles; ++role) {
    StageSink(static_cast<PrefetchRole>(role));
  }
  return Status::OK();
}

void Prefetcher::StageSink(PrefetchRole role) {
  PrefetchSink& sink = sinks_[static_cast<int>(role)];
  stats_.issued_pages += sink.stats.page_reads;
  stats_.overlap_cost_millis += sink.cost_millis;
  ShardedBufferPool* pool =
      wiring_.warm_pool ? wiring_.warm_pool(role) : nullptr;
  auto& staged = staged_[static_cast<int>(role)];
  for (const auto& [first, pages] : sink.runs) {
    staged.emplace_back(first, pages);
    AsyncFetchQueue::Request request;
    request.owner = this;
    request.pool = pool;
    request.device = device(role);
    request.first = first;
    request.pages = pages;
    wiring_.queue->Issue(request);
  }
  sink.runs.clear();
}

void Prefetcher::InvalidatePlan() {
  if (options_.mode != PrefetchMode::kAsync) {
    planned_cell_ = kInvalidCell;  // Sync plan state; nothing resident.
    return;
  }
  uint64_t dropped = 0;
  for (int role = 0; role < kNumPrefetchRoles; ++role) {
    dropped += residency_[role].pages.size();
    for (const auto& [first, pages] : staged_[role]) {
      (void)first;
      dropped += pages;
    }
    residency_[role].pages.clear();  // used_* counters stay cumulative.
    staged_[role].clear();
  }
  if (planned_cell_ == kInvalidCell && dropped == 0) {
    return;
  }
  stats_.cancelled_pages += dropped;
  if (wiring_.queue != nullptr) {
    wiring_.queue->Cancel(this);
  }
  telemetry::GlobalFlightRecorder().Record(
      telemetry::FlightEventType::kPrefetchCancel, flight_code_, dropped,
      planned_cell_);
  planned_cell_ = kInvalidCell;
}

Status Prefetcher::SyncStep(const Viewpoint& viewpoint, CellId current_cell,
                            size_t budget, const SyncHooks& hooks,
                            size_t* fetched) {
  const CellPrediction prediction =
      predictor_.PredictFromLook(viewpoint, current_cell);
  if (!prediction.valid) {
    return Status::OK();  // Legacy: probe stayed in the cell (or no look).
  }
  if (planned_cell_ != prediction.cell) {
    planned_cell_ = prediction.cell;
    sync_next_ = 0;
    hooks.clear_loaded();
    HDOV_RETURN_IF_ERROR(hooks.search(prediction.cell, &spec_result_));
  }
  while (budget > 0 && sync_next_ < spec_result_.size()) {
    const RetrievedLod& lod = spec_result_[sync_next_++];
    if (hooks.should_skip(lod)) {
      continue;
    }
    HDOV_RETURN_IF_ERROR(hooks.fetch(lod));
    ++*fetched;
    --budget;
  }
  return Status::OK();
}

void Prefetcher::Reset() {
  InvalidatePlan();
  predictor_.Reset();
  spec_result_.clear();
  sync_next_ = 0;
  planned_cell_ = kInvalidCell;
}

PrefetcherStats Prefetcher::stats() const {
  PrefetcherStats s = stats_;
  for (const PrefetchResidency& residency : residency_) {
    s.used_pages += residency.used_pages;
    s.used_runs += residency.used_runs;
  }
  return s;
}

void Prefetcher::RegisterTelemetry(telemetry::MetricsRegistry* registry,
                                   const std::string& prefix) const {
  const Prefetcher* self = this;
  const auto view = [&](const char* name, auto getter) {
    registry->RegisterView(prefix + name,
                           [self, getter] { return getter(self->stats()); });
  };
  view(".prefetch.plans",
       [](const PrefetcherStats& s) { return static_cast<double>(s.plans); });
  view(".prefetch.issued_pages", [](const PrefetcherStats& s) {
    return static_cast<double>(s.issued_pages);
  });
  view(".prefetch.used_pages", [](const PrefetcherStats& s) {
    return static_cast<double>(s.used_pages);
  });
  view(".prefetch.cancelled_pages", [](const PrefetcherStats& s) {
    return static_cast<double>(s.cancelled_pages);
  });
  view(".prefetch.models_warmed", [](const PrefetcherStats& s) {
    return static_cast<double>(s.models_warmed);
  });
  view(".prefetch.wasted_ratio",
       [](const PrefetcherStats& s) { return s.WastedRatio(); });
  view(".prefetch.overlap_ms",
       [](const PrefetcherStats& s) { return s.overlap_cost_millis; });
}

}  // namespace hdov::prefetch
