// Prefetch mode selection and the motion predictor feeding the prefetch
// pipeline (src/prefetch/, docs/prefetch.md).
//
// Two prediction flavors live here:
//  - PredictFromLook: the legacy synchronous heuristic — step one cell
//    stride along the horizontal look direction. Kept bit-identical to
//    the old VisualSystem::RunPrefetch probe (same stride, same clamp)
//    except for the degenerate-direction guard: a vertical look used to
//    normalize a (near-)zero-length vector, feeding a garbage probe into
//    ClampedCellForPoint; now it simply predicts nothing.
//  - Observe: the velocity model — an exponentially weighted average of
//    per-frame position deltas. Looking sideways while strafing predicts
//    the cell the walker is MOVING into, not the one they are facing;
//    when the walker is (near) stationary the look direction is the only
//    signal left and Observe falls back to it.

#ifndef HDOV_PREFETCH_PREDICTOR_H_
#define HDOV_PREFETCH_PREDICTOR_H_

#include <cstdint>
#include <string_view>

#include "geometry/vec3.h"
#include "scene/cell_grid.h"
#include "scene/session.h"

namespace hdov::prefetch {

// How a VisualSystem prefetches (VisualOptions::prefetch):
//  - kOff: no prefetcher is constructed at all. Billing, metrics, and
//    flight traffic are bit-identical to a build without the subsystem
//    (the zero-drift contract CI enforces against all committed
//    baselines).
//  - kSync: the legacy model-prefetch path — on idle frames, fetch up to
//    a budget of the predicted next cell's models on the frame's own
//    clock. VisualOptions::prefetch_models_per_frame > 0 selects this
//    mode implicitly (the historical knob is the sync alias).
//  - kAsync: the overlapped pipeline — a speculative search of the
//    predicted cell runs at end of frame under a billing diversion, its
//    pages become resident the next frame, and billed reads of resident
//    pages are consumed for free (see storage/page_device.h).
enum class PrefetchMode : uint8_t {
  kOff = 0,
  kSync = 1,
  kAsync = 2,
};

const char* PrefetchModeName(PrefetchMode mode);

// Parses "off" / "sync" / "async"; returns false (leaving *mode alone) on
// anything else.
bool ParsePrefetchMode(std::string_view name, PrefetchMode* mode);

// Process-wide default mode, seeding VisualOptions::prefetch. Initialized
// once from the HDOV_PREFETCH environment variable ("off"/"sync"/"async",
// unset or unparseable = kOff) so whole test/bench binaries can be
// flipped without touching call sites; mutable for flag plumbing
// (bench --prefetch=...), exactly like DefaultSearchBackend().
PrefetchMode& DefaultPrefetchMode();

struct CellPrediction {
  CellId cell = kInvalidCell;
  bool valid = false;  // False: no usable direction, or staying put.
};

class VelocityPredictor {
 public:
  explicit VelocityPredictor(const CellGrid* grid) : grid_(grid) {}

  // Stateless look-direction prediction (the sync path's heuristic).
  CellPrediction PredictFromLook(const Viewpoint& viewpoint,
                                 CellId current_cell) const;

  // Folds this frame's position into the velocity average and predicts
  // the next cell from it (look-direction fallback when stationary).
  CellPrediction Observe(const Viewpoint& viewpoint, CellId current_cell);

  // The current smoothed per-frame velocity (for tests/inspection).
  const Vec3& velocity() const { return velocity_; }

  void Reset();

 private:
  // Steps `stride` along the horizontal component of `direction` from
  // `position`; invalid when the horizontal component is degenerate or
  // the probe stays in `current_cell`.
  CellPrediction PredictAlong(const Vec3& direction, const Vec3& position,
                              CellId current_cell) const;

  const CellGrid* grid_;
  Vec3 last_position_;
  Vec3 velocity_;
  bool has_last_ = false;
};

}  // namespace hdov::prefetch

#endif  // HDOV_PREFETCH_PREDICTOR_H_
