// Minimal Wavefront OBJ import/export (positions and triangular faces only).
// Lets users load their own models into the walkthrough systems and dump
// generated LoDs for inspection in external viewers.

#ifndef HDOV_MESH_OBJ_IO_H_
#define HDOV_MESH_OBJ_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "mesh/triangle_mesh.h"

namespace hdov {

// Parses `v x y z` and `f a b c ...` records; faces with more than three
// vertices are fan-triangulated; `vt`/`vn` references in face tokens
// (`a/b/c`) are accepted and ignored. Unknown record types are skipped.
Result<TriangleMesh> ReadObj(std::istream& in);
Result<TriangleMesh> ReadObjFile(const std::string& path);

Status WriteObj(const TriangleMesh& mesh, std::ostream& out);
Status WriteObjFile(const TriangleMesh& mesh, const std::string& path);

}  // namespace hdov

#endif  // HDOV_MESH_OBJ_IO_H_
