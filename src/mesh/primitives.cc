#include "mesh/primitives.h"

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>

namespace hdov {

namespace {

// Adds a quad (a, b, c, d) in counter-clockwise order as two triangles.
void AddQuad(TriangleMesh* mesh, uint32_t a, uint32_t b, uint32_t c,
             uint32_t d) {
  mesh->AddTriangle(a, b, c);
  mesh->AddTriangle(a, c, d);
}

// Adds one wall of a box as a grid of quads. `origin` is the wall's lower
// corner; `du`, `dv` span the wall. Normal follows du x dv winding.
void AddGridWall(TriangleMesh* mesh, const Vec3& origin, const Vec3& du,
                 const Vec3& dv, int nu, int nv) {
  // Build the vertex lattice for this wall (vertices are not shared across
  // walls; simplification merges coincident corners via its own clustering).
  std::vector<uint32_t> lattice(static_cast<size_t>((nu + 1) * (nv + 1)));
  for (int j = 0; j <= nv; ++j) {
    for (int i = 0; i <= nu; ++i) {
      Vec3 p = origin + du * (static_cast<double>(i) / nu) +
               dv * (static_cast<double>(j) / nv);
      lattice[static_cast<size_t>(j * (nu + 1) + i)] = mesh->AddVertex(p);
    }
  }
  auto at = [&](int i, int j) {
    return lattice[static_cast<size_t>(j * (nu + 1) + i)];
  };
  for (int j = 0; j < nv; ++j) {
    for (int i = 0; i < nu; ++i) {
      AddQuad(mesh, at(i, j), at(i + 1, j), at(i + 1, j + 1), at(i, j + 1));
    }
  }
}

// Smooth deterministic value noise on the unit sphere: a few low-frequency
// sinusoids with random phases. Returns roughly [-1, 1].
class SphereNoise {
 public:
  explicit SphereNoise(Rng* rng) {
    for (auto& h : harmonics_) {
      h.dir = Vec3(rng->Uniform(-1.0, 1.0), rng->Uniform(-1.0, 1.0),
                   rng->Uniform(-1.0, 1.0))
                  .Normalized();
      h.freq = rng->Uniform(1.5, 5.0);
      h.phase = rng->Uniform(0.0, 2.0 * M_PI);
      h.amp = rng->Uniform(0.3, 1.0);
    }
  }

  double Eval(const Vec3& unit_p) const {
    double v = 0.0;
    double total_amp = 0.0;
    for (const auto& h : harmonics_) {
      v += h.amp * std::sin(h.freq * unit_p.Dot(h.dir) + h.phase);
      total_amp += h.amp;
    }
    return v / total_amp;
  }

 private:
  struct Harmonic {
    Vec3 dir;
    double freq = 1.0;
    double phase = 0.0;
    double amp = 1.0;
  };
  std::array<Harmonic, 5> harmonics_;
};

}  // namespace

TriangleMesh MakeBox(const Vec3& min, const Vec3& max) {
  TriangleMesh mesh;
  uint32_t v[8];
  for (int i = 0; i < 8; ++i) {
    v[i] = mesh.AddVertex(Vec3((i & 1) ? max.x : min.x, (i & 2) ? max.y : min.y,
                               (i & 4) ? max.z : min.z));
  }
  AddQuad(&mesh, v[0], v[2], v[3], v[1]);  // bottom (z = min), normal -z
  AddQuad(&mesh, v[4], v[5], v[7], v[6]);  // top (z = max), normal +z
  AddQuad(&mesh, v[0], v[1], v[5], v[4]);  // front (y = min), normal -y
  AddQuad(&mesh, v[2], v[6], v[7], v[3]);  // back (y = max), normal +y
  AddQuad(&mesh, v[0], v[4], v[6], v[2]);  // left (x = min), normal -x
  AddQuad(&mesh, v[1], v[3], v[7], v[5]);  // right (x = max), normal +x
  return mesh;
}

TriangleMesh MakeIcosphere(int subdivisions) {
  // Icosahedron base.
  const double t = (1.0 + std::sqrt(5.0)) / 2.0;
  std::vector<Vec3> verts = {
      {-1, t, 0}, {1, t, 0},  {-1, -t, 0}, {1, -t, 0},
      {0, -1, t}, {0, 1, t},  {0, -1, -t}, {0, 1, -t},
      {t, 0, -1}, {t, 0, 1},  {-t, 0, -1}, {-t, 0, 1},
  };
  for (Vec3& v : verts) {
    v = v.Normalized();
  }
  std::vector<Triangle> tris = {
      {{0, 11, 5}}, {{0, 5, 1}},  {{0, 1, 7}},   {{0, 7, 10}}, {{0, 10, 11}},
      {{1, 5, 9}},  {{5, 11, 4}}, {{11, 10, 2}}, {{10, 7, 6}}, {{7, 1, 8}},
      {{3, 9, 4}},  {{3, 4, 2}},  {{3, 2, 6}},   {{3, 6, 8}},  {{3, 8, 9}},
      {{4, 9, 5}},  {{2, 4, 11}}, {{6, 2, 10}},  {{8, 6, 7}},  {{9, 8, 1}},
  };

  for (int level = 0; level < subdivisions; ++level) {
    std::map<std::pair<uint32_t, uint32_t>, uint32_t> midpoint_cache;
    auto midpoint = [&](uint32_t a, uint32_t b) {
      std::pair<uint32_t, uint32_t> key = std::minmax(a, b);
      auto it = midpoint_cache.find(key);
      if (it != midpoint_cache.end()) {
        return it->second;
      }
      Vec3 m = ((verts[a] + verts[b]) * 0.5).Normalized();
      verts.push_back(m);
      uint32_t idx = static_cast<uint32_t>(verts.size() - 1);
      midpoint_cache.emplace(key, idx);
      return idx;
    };
    std::vector<Triangle> next;
    next.reserve(tris.size() * 4);
    for (const Triangle& tri : tris) {
      uint32_t ab = midpoint(tri.v[0], tri.v[1]);
      uint32_t bc = midpoint(tri.v[1], tri.v[2]);
      uint32_t ca = midpoint(tri.v[2], tri.v[0]);
      next.push_back({{tri.v[0], ab, ca}});
      next.push_back({{tri.v[1], bc, ab}});
      next.push_back({{tri.v[2], ca, bc}});
      next.push_back({{ab, bc, ca}});
    }
    tris = std::move(next);
  }
  return TriangleMesh(std::move(verts), std::move(tris));
}

TriangleMesh MakeBuilding(const BuildingOptions& options) {
  TriangleMesh mesh;
  const int tiers = std::max(1, options.tiers);
  double tier_height = options.height / tiers;
  double w = options.width;
  double d = options.depth;
  for (int tier = 0; tier < tiers; ++tier) {
    const double z0 = tier * tier_height;
    const double z1 = z0 + tier_height;
    const Vec3 lo(-w / 2.0, -d / 2.0, z0);
    const Vec3 hi(w / 2.0, d / 2.0, z1);
    const int nu = std::max(1, options.facade_columns);
    const int nv = std::max(1, options.facade_rows / tiers);
    // Four façade walls as grids (so the highest LoD is polygon-rich), plus
    // a simple roof quad per tier.
    AddGridWall(&mesh, Vec3(lo.x, lo.y, z0), Vec3(w, 0, 0), Vec3(0, 0, z1 - z0),
                nu, nv);  // front (y = lo.y)
    AddGridWall(&mesh, Vec3(hi.x, hi.y, z0), Vec3(-w, 0, 0),
                Vec3(0, 0, z1 - z0), nu, nv);  // back
    AddGridWall(&mesh, Vec3(hi.x, lo.y, z0), Vec3(0, d, 0), Vec3(0, 0, z1 - z0),
                nu, nv);  // right
    AddGridWall(&mesh, Vec3(lo.x, hi.y, z0), Vec3(0, -d, 0),
                Vec3(0, 0, z1 - z0), nu, nv);  // left
    // Roof.
    uint32_t r0 = mesh.AddVertex(Vec3(lo.x, lo.y, z1));
    uint32_t r1 = mesh.AddVertex(Vec3(hi.x, lo.y, z1));
    uint32_t r2 = mesh.AddVertex(Vec3(hi.x, hi.y, z1));
    uint32_t r3 = mesh.AddVertex(Vec3(lo.x, hi.y, z1));
    AddQuad(&mesh, r0, r1, r2, r3);
    // Upper tiers shrink (setback towers).
    w *= 0.8;
    d *= 0.8;
  }
  return mesh;
}

TriangleMesh MakeBunnyBlob(int subdivisions, double radius, Rng* rng) {
  TriangleMesh mesh = MakeIcosphere(subdivisions);
  SphereNoise noise(rng);
  for (Vec3& v : mesh.mutable_vertices()) {
    const double displacement = 1.0 + 0.25 * noise.Eval(v);
    v = v * (radius * displacement);
  }
  // Squash slightly and lift so the blob sits on the ground like a figurine.
  mesh.Scale(Vec3(1.0, 0.8, 1.1));
  Aabb box = mesh.BoundingBox();
  mesh.Translate(Vec3(0.0, 0.0, -box.min.z));
  return mesh;
}

TriangleMesh MakeGroundPatch(const Vec3& min, const Vec3& max, int cells_x,
                             int cells_y) {
  TriangleMesh mesh;
  AddGridWall(&mesh, Vec3(min.x, min.y, min.z), Vec3(max.x - min.x, 0, 0),
              Vec3(0, max.y - min.y, 0), std::max(1, cells_x),
              std::max(1, cells_y));
  return mesh;
}

}  // namespace hdov
