// Procedural mesh generators for the synthetic city scenes: boxes,
// buildings with façade detail, icospheres, and the displaced-icosphere
// "bunny" blobs that stand in for the paper's Stanford bunny models.

#ifndef HDOV_MESH_PRIMITIVES_H_
#define HDOV_MESH_PRIMITIVES_H_

#include "common/rng.h"
#include "mesh/triangle_mesh.h"

namespace hdov {

// Axis-aligned box [min, max], 12 triangles, outward-facing winding.
TriangleMesh MakeBox(const Vec3& min, const Vec3& max);

// Unit icosphere (radius 1, centered at origin) subdivided `subdivisions`
// times: 20 * 4^subdivisions triangles.
TriangleMesh MakeIcosphere(int subdivisions);

struct BuildingOptions {
  double width = 20.0;
  double depth = 20.0;
  double height = 40.0;
  // Façade tessellation: each wall is subdivided into a grid of quads
  // (2 triangles each), giving detailed highest-LoD geometry whose count
  // scales with building size — mirrors window/ledge detail in real models.
  int facade_columns = 6;
  int facade_rows = 10;
  // Number of stacked box "tiers"; >1 makes towers with setbacks.
  int tiers = 1;
};

// Building with its footprint centered at (0, 0), base at z = 0.
TriangleMesh MakeBuilding(const BuildingOptions& options);

// Organic blob: icosphere displaced by smooth pseudo-noise. Stands in for
// the paper's bunny models (high-poly rounded occluders).
TriangleMesh MakeBunnyBlob(int subdivisions, double radius, Rng* rng);

// Flat rectangular ground patch tessellated into a grid.
TriangleMesh MakeGroundPatch(const Vec3& min, const Vec3& max, int cells_x,
                             int cells_y);

}  // namespace hdov

#endif  // HDOV_MESH_PRIMITIVES_H_
