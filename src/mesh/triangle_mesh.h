// TriangleMesh: the indexed triangle mesh representation used for object
// models, LoDs and occluder geometry.

#ifndef HDOV_MESH_TRIANGLE_MESH_H_
#define HDOV_MESH_TRIANGLE_MESH_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace hdov {

struct Triangle {
  std::array<uint32_t, 3> v{0, 0, 0};

  uint32_t operator[](int i) const { return v[static_cast<size_t>(i)]; }
};

class TriangleMesh {
 public:
  TriangleMesh() = default;

  TriangleMesh(std::vector<Vec3> vertices, std::vector<Triangle> triangles)
      : vertices_(std::move(vertices)), triangles_(std::move(triangles)) {}

  const std::vector<Vec3>& vertices() const { return vertices_; }
  const std::vector<Triangle>& triangles() const { return triangles_; }
  std::vector<Vec3>& mutable_vertices() { return vertices_; }
  std::vector<Triangle>& mutable_triangles() { return triangles_; }

  size_t vertex_count() const { return vertices_.size(); }
  size_t triangle_count() const { return triangles_.size(); }
  bool empty() const { return triangles_.empty(); }

  uint32_t AddVertex(const Vec3& p) {
    vertices_.push_back(p);
    return static_cast<uint32_t>(vertices_.size() - 1);
  }

  void AddTriangle(uint32_t a, uint32_t b, uint32_t c) {
    triangles_.push_back(Triangle{{a, b, c}});
  }

  // Positions of the three corners of triangle `t`.
  std::array<Vec3, 3> TriangleVertices(size_t t) const {
    const Triangle& tri = triangles_[t];
    return {vertices_[tri.v[0]], vertices_[tri.v[1]], vertices_[tri.v[2]]};
  }

  Aabb BoundingBox() const;
  double SurfaceArea() const;
  Vec3 Centroid() const;  // Area-weighted centroid of the surface.

  // Geometric normal of triangle `t` (zero for degenerate triangles).
  Vec3 TriangleNormal(size_t t) const;

  // Appends all geometry of `other` (used to aggregate node internal LoDs).
  void Append(const TriangleMesh& other);

  void Translate(const Vec3& delta);
  void Scale(double factor);
  void Scale(const Vec3& factors);

  // Checks index bounds and that no triangle repeats a vertex index.
  Status Validate() const;

  // Drops vertices not referenced by any triangle, remapping indices.
  void CompactVertices();

  // Approximate in-memory footprint in bytes; also the basis for "logical"
  // model sizes in the storage layer.
  size_t ByteSize() const {
    return vertices_.size() * sizeof(Vec3) +
           triangles_.size() * sizeof(Triangle);
  }

 private:
  std::vector<Vec3> vertices_;
  std::vector<Triangle> triangles_;
};

}  // namespace hdov

#endif  // HDOV_MESH_TRIANGLE_MESH_H_
