#include "mesh/triangle_mesh.h"

#include <algorithm>
#include <limits>
#include <string>

#include "geometry/intersect.h"

namespace hdov {

Aabb TriangleMesh::BoundingBox() const {
  Aabb box;
  for (const Vec3& v : vertices_) {
    box.Extend(v);
  }
  return box;
}

double TriangleMesh::SurfaceArea() const {
  double area = 0.0;
  for (size_t t = 0; t < triangles_.size(); ++t) {
    auto [a, b, c] = TriangleVertices(t);
    area += TriangleArea(a, b, c);
  }
  return area;
}

Vec3 TriangleMesh::Centroid() const {
  Vec3 weighted;
  double total_area = 0.0;
  for (size_t t = 0; t < triangles_.size(); ++t) {
    auto [a, b, c] = TriangleVertices(t);
    double area = TriangleArea(a, b, c);
    weighted += (a + b + c) * (area / 3.0);
    total_area += area;
  }
  if (total_area < 1e-30) {
    // Degenerate surface: fall back to the vertex average.
    Vec3 sum;
    for (const Vec3& v : vertices_) {
      sum += v;
    }
    return vertices_.empty() ? Vec3() : sum / static_cast<double>(
                                                  vertices_.size());
  }
  return weighted / total_area;
}

Vec3 TriangleMesh::TriangleNormal(size_t t) const {
  auto [a, b, c] = TriangleVertices(t);
  return (b - a).Cross(c - a).Normalized();
}

void TriangleMesh::Append(const TriangleMesh& other) {
  const uint32_t base = static_cast<uint32_t>(vertices_.size());
  vertices_.insert(vertices_.end(), other.vertices_.begin(),
                   other.vertices_.end());
  triangles_.reserve(triangles_.size() + other.triangles_.size());
  for (const Triangle& tri : other.triangles_) {
    triangles_.push_back(
        Triangle{{tri.v[0] + base, tri.v[1] + base, tri.v[2] + base}});
  }
}

void TriangleMesh::Translate(const Vec3& delta) {
  for (Vec3& v : vertices_) {
    v += delta;
  }
}

void TriangleMesh::Scale(double factor) { Scale(Vec3(factor, factor, factor)); }

void TriangleMesh::Scale(const Vec3& factors) {
  for (Vec3& v : vertices_) {
    v.x *= factors.x;
    v.y *= factors.y;
    v.z *= factors.z;
  }
}

Status TriangleMesh::Validate() const {
  const uint32_t n = static_cast<uint32_t>(vertices_.size());
  for (size_t t = 0; t < triangles_.size(); ++t) {
    const Triangle& tri = triangles_[t];
    for (uint32_t idx : tri.v) {
      if (idx >= n) {
        return Status::Corruption("triangle " + std::to_string(t) +
                                  " references out-of-range vertex " +
                                  std::to_string(idx));
      }
    }
    if (tri.v[0] == tri.v[1] || tri.v[1] == tri.v[2] ||
        tri.v[0] == tri.v[2]) {
      return Status::Corruption("triangle " + std::to_string(t) +
                                " repeats a vertex index");
    }
  }
  return Status::OK();
}

void TriangleMesh::CompactVertices() {
  std::vector<uint32_t> remap(vertices_.size(),
                              std::numeric_limits<uint32_t>::max());
  std::vector<Vec3> new_vertices;
  new_vertices.reserve(vertices_.size());
  for (Triangle& tri : triangles_) {
    for (uint32_t& idx : tri.v) {
      if (remap[idx] == std::numeric_limits<uint32_t>::max()) {
        remap[idx] = static_cast<uint32_t>(new_vertices.size());
        new_vertices.push_back(vertices_[idx]);
      }
      idx = remap[idx];
    }
  }
  vertices_ = std::move(new_vertices);
}

}  // namespace hdov
