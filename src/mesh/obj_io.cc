#include "mesh/obj_io.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace hdov {

namespace {

// Extracts the leading vertex index from an OBJ face token ("7", "7/2",
// "7/2/3", "7//3"). Returns 0 on parse failure (OBJ indices are 1-based).
long ParseFaceIndex(const std::string& token) {
  size_t slash = token.find('/');
  std::string head = slash == std::string::npos ? token : token.substr(0, slash);
  try {
    return std::stol(head);
  } catch (...) {
    return 0;
  }
}

}  // namespace

Result<TriangleMesh> ReadObj(std::istream& in) {
  TriangleMesh mesh;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag) || tag.empty() || tag[0] == '#') {
      continue;
    }
    if (tag == "v") {
      double x, y, z;
      if (!(ls >> x >> y >> z)) {
        return Status::Corruption("obj: malformed vertex at line " +
                                  std::to_string(line_no));
      }
      mesh.AddVertex(Vec3(x, y, z));
    } else if (tag == "f") {
      std::vector<long> indices;
      std::string token;
      while (ls >> token) {
        long raw = ParseFaceIndex(token);
        if (raw == 0) {
          return Status::Corruption("obj: malformed face token at line " +
                                    std::to_string(line_no));
        }
        // Negative indices are relative to the current vertex count.
        long resolved =
            raw > 0 ? raw : static_cast<long>(mesh.vertex_count()) + raw + 1;
        if (resolved < 1 ||
            resolved > static_cast<long>(mesh.vertex_count())) {
          return Status::Corruption("obj: face index out of range at line " +
                                    std::to_string(line_no));
        }
        indices.push_back(resolved - 1);
      }
      if (indices.size() < 3) {
        return Status::Corruption("obj: face with fewer than 3 vertices at " +
                                  std::string("line ") +
                                  std::to_string(line_no));
      }
      for (size_t i = 1; i + 1 < indices.size(); ++i) {
        mesh.AddTriangle(static_cast<uint32_t>(indices[0]),
                         static_cast<uint32_t>(indices[i]),
                         static_cast<uint32_t>(indices[i + 1]));
      }
    }
    // All other tags (vt, vn, o, g, usemtl, s, mtllib, ...) are ignored.
  }
  HDOV_RETURN_IF_ERROR(mesh.Validate());
  return mesh;
}

Result<TriangleMesh> ReadObjFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("obj: cannot open " + path);
  }
  return ReadObj(in);
}

Status WriteObj(const TriangleMesh& mesh, std::ostream& out) {
  out << "# hdov triangle mesh: " << mesh.vertex_count() << " vertices, "
      << mesh.triangle_count() << " triangles\n";
  for (const Vec3& v : mesh.vertices()) {
    out << "v " << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
  for (const Triangle& t : mesh.triangles()) {
    out << "f " << t.v[0] + 1 << ' ' << t.v[1] + 1 << ' ' << t.v[2] + 1
        << '\n';
  }
  if (!out) {
    return Status::IoError("obj: stream write failed");
  }
  return Status::OK();
}

Status WriteObjFile(const TriangleMesh& mesh, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("obj: cannot open " + path + " for writing");
  }
  return WriteObj(mesh, out);
}

}  // namespace hdov
