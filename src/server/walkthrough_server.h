// WalkthroughServer: serves N concurrent walkthrough sessions from one
// file-backed world snapshot, opened read-only and opened once.
//
// What is shared (immutable or internally synchronized):
//   - the snapshot file handle and the three base FilePageDevices
//     (const read path only: pread + CRC, per-call buffers),
//   - the decoded scene, cell grid, and packed HDoV-tree,
//   - the sharded page caches deduplicating real I/O (store + tree).
// What is per-session (no synchronization, no sharing):
//   - a VisualSystem view (searcher, V-page store, model store, resident
//     set) with three private SessionDevices billing a private SimClock
//     and private IoStats.
// Because each session's billed read sequence depends only on its own
// frames, its simulated counters are bit-identical to playing the same
// session alone — regardless of scheduling. See docs/threading.md.
//
// Scheduling: Play() advances all sessions in lockstep rounds of one
// frame each. Within a round, frames are grouped by the viewing cell
// their session is about to query; each group runs as one task, so
// co-located sessions execute back-to-back on one worker and the first
// one's V-page misses warm the shared cache for the rest (same-cell
// batching). Groups run in parallel across the worker pool.

#ifndef HDOV_SERVER_WALKTHROUGH_SERVER_H_
#define HDOV_SERVER_WALKTHROUGH_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "persist/snapshot.h"
#include "scene/cell_grid.h"
#include "scene/session.h"
#include "storage/sharded_buffer_pool.h"
#include "telemetry/trace_context.h"
#include "walkthrough/frame_loop.h"
#include "walkthrough/visual_system.h"

namespace hdov {

struct ServerOptions {
  std::string snapshot_path;
  // Per-session configuration; `visual.disk.page_size` must match the
  // snapshot and `visual.scheme` picks the store sections to serve.
  VisualOptions visual;
  // Shared read-cache capacity (pages) for each of the V-page store and
  // the tree device; 0 disables the caches (every miss hits the file).
  size_t shared_cache_pages = 4096;
  size_t cache_shards = 8;
  // Render worker threads (0 = one per hardware thread, 1 = inline).
  uint32_t workers = 4;
  // Group same-cell frames of a round onto one worker task.
  bool batch_same_cell = true;
  // Background warm workers of the server-wide prefetch queue (only
  // built when visual.prefetch is kAsync). All sessions share the queue;
  // cancellation stays per session.
  size_t prefetch_workers = 2;
};

// Everything Play() measured about one session. `summary` holds only
// simulated, deterministic values (identical to solo playback); the wall
// timings are real and vary run to run.
struct ServerSessionRecord {
  SessionSummary summary;
  IoStats io;               // The session's total simulated I/O.
  double sim_clock_ms = 0.0;
  // Real scheduler latency of each frame, split at the dispatch point:
  // queue wait is enqueue (round formation) to dispatch (a worker picks
  // the frame up), service is dispatch to completion.
  std::vector<double> frame_wall_ms;        // Service time per frame.
  std::vector<double> frame_queue_wait_ms;  // Queue wait per frame.
  // Where the session's total service time went, stage by stage
  // (exclusive wall-clock ns; see telemetry/trace_context.h).
  telemetry::StageBreakdown stage_totals;
};

struct ServerRunStats {
  std::vector<ServerSessionRecord> sessions;
  // Deterministic scheduler counters.
  uint64_t total_frames = 0;
  uint64_t rounds = 0;
  uint64_t batch_groups = 0;    // Round-groups holding >= 2 frames.
  uint64_t batched_frames = 0;  // Frames that rode in such groups.
  // Real-time measurements (nondeterministic).
  double wall_ms = 0.0;
  BufferPoolStats store_cache;  // Shared-cache traffic during the run.
  BufferPoolStats tree_cache;
};

class WalkthroughServer {
 public:
  // Opens the snapshot read-only and decodes the shared world once.
  static Result<std::unique_ptr<WalkthroughServer>> Open(
      const ServerOptions& options);

  WalkthroughServer(const WalkthroughServer&) = delete;
  WalkthroughServer& operator=(const WalkthroughServer&) = delete;

  // Registers a session to serve on the next Play(). Sessions are
  // independent; nothing about one leaks into another's billing.
  Status AddSession(const Session& session);
  size_t num_sessions() const { return sessions_.size(); }

  // Plays every registered session to completion and clears the roster.
  // Per-session summaries are computed with the same SessionAccumulator
  // PlaySession uses, over the same frame sequence — so they match solo
  // playback bit for bit.
  Result<ServerRunStats> Play();

  const Scene& scene() const { return scene_; }
  const CellGrid& grid() const { return grid_; }
  const SharedWorldView& world() const { return world_; }
  // Server-wide async warm queue; null unless visual.prefetch is kAsync.
  const prefetch::AsyncFetchQueue* prefetch_queue() const {
    return prefetch_queue_.get();
  }

  // Writes the deterministic aggregates of a finished run into `registry`
  // as gauges: `<prefix>.session.<name>.*` per session (the same five
  // gauges PlaySession emits) plus `<prefix>.frames`, `.rounds`,
  // `.batch_groups`, `.batched_frames`. Wall-clock and shared-cache
  // numbers are deliberately excluded — they vary run to run, and these
  // gauges feed zero-tolerance bench comparisons.
  static void RollupInto(const ServerRunStats& stats,
                         telemetry::MetricsRegistry* registry,
                         const std::string& prefix);

  // Writes the wall-clock latency aggregates into `registry` as gauges
  // under `<prefix>.wall.`: per-session and fleet-wide p50/p95/p99 of
  // queue wait and service time, plus per-session stage totals. Every
  // name contains ".wall.", which the bench comparator matches with a
  // tolerance instead of exactly (and skips entirely under
  // --ignore-wall) — keep that marker if you add gauges here.
  static void RollupWallLatencyInto(const ServerRunStats& stats,
                                    telemetry::MetricsRegistry* registry,
                                    const std::string& prefix);

 private:
  explicit WalkthroughServer(const ServerOptions& options)
      : options_(options) {}

  Status LoadWorld();

  ServerOptions options_;
  PersistStats persist_;
  std::unique_ptr<SnapshotLoader> loader_;
  // Clock the one-time world decode bills into; never read afterwards.
  SimClock load_clock_;

  Scene scene_;
  CellGrid grid_;
  std::shared_ptr<const HdovTree> tree_;
  // Compiled once per server when the sessions run the flat backend;
  // shared by every session view (immutable, like the tree).
  std::shared_ptr<const FlatHdovTree> flat_tree_;
  std::string store_meta_;
  std::string model_meta_;

  // Shared base devices (const read path only after LoadWorld).
  std::unique_ptr<FilePageDevice> tree_base_;
  std::unique_ptr<FilePageDevice> store_base_;
  std::unique_ptr<FilePageDevice> model_base_;
  std::unique_ptr<ShardedBufferPool> tree_pool_;   // Null when disabled.
  std::unique_ptr<ShardedBufferPool> store_pool_;  // Null when disabled.
  // Server-wide background warm queue for async prefetch (null
  // otherwise). Declared after the pools/devices it warms: sessions
  // drain their own warms at destruction, and the queue's destructor
  // drains the rest before the warm targets go away.
  std::unique_ptr<prefetch::AsyncFetchQueue> prefetch_queue_;

  SharedWorldView world_;
  std::vector<Session> sessions_;
};

// Nearest-rank percentile (q in [0,1]) of `values`, in the same unit the
// values came in. Not an interpolating estimator: with few samples it
// returns an actual observed value, which is what latency reporting
// wants. Returns 0 for an empty vector. Shared by the wall rollup above
// and the fig12 latency series.
double WallPercentile(std::vector<double> values, double q);

}  // namespace hdov

#endif  // HDOV_SERVER_WALKTHROUGH_SERVER_H_
