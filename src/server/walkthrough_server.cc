#include "server/walkthrough_server.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "common/thread_pool.h"
#include "hdov/builder.h"
#include "persist/world_codec.h"
#include "server/session_device.h"
#include "telemetry/slow_frame.h"

namespace hdov {

namespace {

double WallMillisSince(
    const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Result<std::unique_ptr<WalkthroughServer>> WalkthroughServer::Open(
    const ServerOptions& options) {
  std::unique_ptr<WalkthroughServer> server(new WalkthroughServer(options));
  HDOV_RETURN_IF_ERROR(server->LoadWorld());
  return server;
}

Status WalkthroughServer::LoadWorld() {
  HDOV_ASSIGN_OR_RETURN(
      loader_, SnapshotLoader::Open(options_.snapshot_path, &persist_));
  if (loader_->page_size() != options_.visual.disk.page_size) {
    return Status::InvalidArgument(
        "server: snapshot page size does not match the disk model");
  }

  // Shared world, decoded once: scene, grid, tree, store/model metadata.
  HDOV_ASSIGN_OR_RETURN(std::string scene_bytes,
                        loader_->ReadBlob(kSectionScene));
  HDOV_ASSIGN_OR_RETURN(scene_, DecodeScene(scene_bytes));
  HDOV_ASSIGN_OR_RETURN(std::string grid_bytes,
                        loader_->ReadBlob(kSectionCellGrid));
  HDOV_ASSIGN_OR_RETURN(CellGridOptions gopt,
                        DecodeCellGridOptions(grid_bytes));
  HDOV_ASSIGN_OR_RETURN(grid_, CellGrid::Build(scene_.bounds(), gopt));

  // The base devices are opened once and, after the tree decode below,
  // only ever touched through the const unbilled read path; billing
  // happens on each session's private SessionDevices.
  HDOV_ASSIGN_OR_RETURN(
      tree_base_, loader_->OpenDevice(kSectionTreeDevice,
                                      options_.visual.disk, &load_clock_));
  const std::string scheme = StorageSchemeName(options_.visual.scheme);
  HDOV_ASSIGN_OR_RETURN(
      store_base_, loader_->OpenDevice(StoreDeviceSection(scheme),
                                       options_.visual.disk, &load_clock_));
  HDOV_ASSIGN_OR_RETURN(
      model_base_, loader_->OpenDevice(kSectionModelDevice,
                                       options_.visual.disk, &load_clock_));

  HDOV_ASSIGN_OR_RETURN(std::string manifest,
                        loader_->ReadBlob(kSectionTreeManifest));
  HDOV_ASSIGN_OR_RETURN(HdovTree tree,
                        HdovTree::FromManifest(tree_base_.get(), manifest));
  tree_ = std::make_shared<const HdovTree>(std::move(tree));
  tree_base_->ResetStats();  // The decode's billing is not a workload.

  HDOV_ASSIGN_OR_RETURN(store_meta_,
                        loader_->ReadBlob(StoreMetaSection(scheme)));
  HDOV_ASSIGN_OR_RETURN(model_meta_, loader_->ReadBlob(kSectionModelMeta));

  if (options_.shared_cache_pages > 0) {
    ShardedPoolOptions popt;
    popt.capacity_pages = options_.shared_cache_pages;
    popt.shards = options_.cache_shards;
    popt.flight_name = "server.pool.store";
    store_pool_ = std::make_unique<ShardedBufferPool>(store_base_.get(), popt);
    popt.flight_name = "server.pool.tree";
    tree_pool_ = std::make_unique<ShardedBufferPool>(tree_base_.get(), popt);
  }

  world_.scene = &scene_;
  world_.grid = &grid_;
  world_.tree = tree_;
  // Flat-backend sessions all share one compiled layout (it is immutable,
  // like the tree) instead of compiling a private copy each.
  if (options_.visual.backend == SearchBackend::kFlat) {
    HDOV_ASSIGN_OR_RETURN(FlatHdovTree flat, FlatHdovTree::Compile(*tree_));
    flat_tree_ = std::make_shared<const FlatHdovTree>(std::move(flat));
    world_.flat_tree = flat_tree_;
  }
  world_.store_meta = store_meta_;
  world_.model_meta = model_meta_;
  world_.make_device =
      [this](SessionDeviceRole role,
             SimClock* clock) -> Result<std::unique_ptr<PageDevice>> {
    const PageDevice* base = nullptr;
    ShardedBufferPool* cache = nullptr;
    switch (role) {
      case SessionDeviceRole::kTree:
        base = tree_base_.get();
        cache = tree_pool_.get();
        break;
      case SessionDeviceRole::kStore:
        base = store_base_.get();
        cache = store_pool_.get();
        break;
      case SessionDeviceRole::kModel:
        base = model_base_.get();
        break;  // Model fetches bill without data; no cache needed.
    }
    return std::unique_ptr<PageDevice>(
        new SessionDevice(base, cache, options_.visual.disk, clock));
  };
  if (options_.visual.prefetch == prefetch::PrefetchMode::kAsync) {
    // One warm queue for the whole server: sessions share its workers
    // (their speculative plans are independent; cancellation is scoped
    // per session) and their warms land in the shared pools, so one
    // session's prefetch serves co-located sessions too.
    prefetch::FetchQueueOptions qopt;
    qopt.workers = options_.prefetch_workers;
    prefetch_queue_ = std::make_unique<prefetch::AsyncFetchQueue>(qopt);
    options_.visual.prefetch_queue = prefetch_queue_.get();
    world_.warm_pool = [this](SessionDeviceRole role) -> ShardedBufferPool* {
      switch (role) {
        case SessionDeviceRole::kTree:
          return tree_pool_.get();
        case SessionDeviceRole::kStore:
          return store_pool_.get();
        case SessionDeviceRole::kModel:
          return nullptr;  // Model pages bill without data; nothing to warm.
      }
      return nullptr;
    };
  }
  return Status::OK();
}

Status WalkthroughServer::AddSession(const Session& session) {
  if (session.frames.empty()) {
    return Status::InvalidArgument("server: empty session");
  }
  sessions_.push_back(session);
  return Status::OK();
}

Result<ServerRunStats> WalkthroughServer::Play() {
  if (sessions_.empty()) {
    return Status::InvalidArgument("server: no sessions registered");
  }

  // One private view per session; construction is sequential, so even the
  // (one-time) store-meta reattachment does not race.
  struct Runner {
    const Session* session = nullptr;
    std::unique_ptr<VisualSystem> system;
    size_t next_frame = 0;
    SessionAccumulator acc;
    uint16_t flight_code = 0;  // Interned session name, for attribution.
    std::vector<double> frame_wall_ms;
    std::vector<double> frame_queue_wait_ms;
    telemetry::StageBreakdown stage_totals;
    Status status;  // First frame error, if any.
  };
  std::vector<Runner> runners(sessions_.size());
  for (size_t i = 0; i < sessions_.size(); ++i) {
    runners[i].session = &sessions_[i];
    HDOV_ASSIGN_OR_RETURN(runners[i].system,
                          VisualSystem::CreateSessionView(world_,
                                                          options_.visual));
    runners[i].flight_code = telemetry::FlightInternName(sessions_[i].name);
    runners[i].frame_wall_ms.reserve(sessions_[i].frames.size());
    runners[i].frame_queue_wait_ms.reserve(sessions_[i].frames.size());
  }
  telemetry::SlowFrameCapture& slow = telemetry::GlobalSlowFrameCapture();

  const BufferPoolStats store_cache0 =
      store_pool_ != nullptr ? store_pool_->TotalStats() : BufferPoolStats();
  const BufferPoolStats tree_cache0 =
      tree_pool_ != nullptr ? tree_pool_->TotalStats() : BufferPoolStats();

  ServerRunStats stats;
  ThreadPool pool(ThreadPool::ResolveThreads(options_.workers));
  const auto wall0 = std::chrono::steady_clock::now();

  // Lockstep rounds: every live session advances exactly one frame per
  // round, so each session still sees its frames strictly in order.
  for (;;) {
    // Group this round's frames by the cell they are about to query
    // (ordered map: the group layout is deterministic, and so are the
    // batch counters derived from it).
    std::map<CellId, std::vector<size_t>> by_cell;
    size_t live = 0;
    for (size_t i = 0; i < runners.size(); ++i) {
      Runner& r = runners[i];
      if (!r.status.ok() || r.next_frame >= r.session->frames.size()) {
        continue;
      }
      ++live;
      const Viewpoint& vp = r.session->frames[r.next_frame];
      const CellId cell = options_.batch_same_cell
                              ? grid_.ClampedCellForPoint(vp.position)
                              : static_cast<CellId>(i);
      by_cell[cell].push_back(i);
    }
    if (live == 0) {
      break;
    }
    ++stats.rounds;

    std::vector<std::vector<size_t>> groups;
    groups.reserve(by_cell.size());
    for (auto& [cell, members] : by_cell) {
      if (members.size() >= 2) {
        ++stats.batch_groups;
        stats.batched_frames += members.size();
      }
      groups.push_back(std::move(members));
    }

    // One task per group: members render back-to-back on one worker, so
    // the first miss on a shared V-page warms the cache for the rest.
    // Every frame of the round shares one enqueue timestamp (the round's
    // frames all become runnable here); dispatch is when a worker
    // actually reaches the frame, so queue wait covers both pool
    // scheduling delay and time spent behind earlier group members.
    const uint64_t enqueue_ns = telemetry::FlightNowNs();
    pool.ParallelFor(groups.size(), [&](size_t slot, size_t g) {
      (void)slot;
      for (size_t idx : groups[g]) {
        Runner& r = runners[idx];
        const Viewpoint& vp = r.session->frames[r.next_frame];
        FrameResult frame;
        Status status;
        telemetry::FrameStageRecord record;
        record.start_ns = telemetry::FlightNowNs();  // Dispatch.
        {
          telemetry::SessionTraceScope trace(r.flight_code, r.next_frame);
          telemetry::BeginStageAccounting();
          status = r.system->RenderFrame(vp, &frame);
          record.wall_ns = telemetry::FlightNowNs() - record.start_ns;
          record.stages = telemetry::FinishStageAccounting();
        }
        if (!status.ok()) {
          r.status = status;
          return;
        }
        record.session = r.flight_code;
        record.frame = r.next_frame;
        record.queue_ns = record.start_ns - enqueue_ns;
        record.io_pages = frame.io_pages;
        slow.OnFrame(record);
        r.frame_wall_ms.push_back(record.wall_ns / 1e6);
        r.frame_queue_wait_ms.push_back(record.queue_ns / 1e6);
        for (size_t s = 0; s < telemetry::kNumTraceStages; ++s) {
          r.stage_totals.ns[s] += record.stages.ns[s];
        }
        r.acc.Add(frame);
        ++r.next_frame;
      }
    });

    for (const Runner& r : runners) {
      if (!r.status.ok()) {
        return r.status;
      }
    }
  }

  stats.wall_ms = WallMillisSince(wall0);
  for (Runner& r : runners) {
    ServerSessionRecord record;
    record.summary.system_name = r.system->name();
    record.summary.session_name = r.session->name;
    r.acc.FinishInto(&record.summary);
    record.io = r.system->TotalIoStats();
    record.sim_clock_ms = r.system->clock().NowMillis();
    record.frame_wall_ms = std::move(r.frame_wall_ms);
    record.frame_queue_wait_ms = std::move(r.frame_queue_wait_ms);
    record.stage_totals = r.stage_totals;
    stats.total_frames += record.summary.num_frames;
    stats.sessions.push_back(std::move(record));
  }
  if (store_pool_ != nullptr) {
    const BufferPoolStats now = store_pool_->TotalStats();
    stats.store_cache.hits = now.hits - store_cache0.hits;
    stats.store_cache.misses = now.misses - store_cache0.misses;
    stats.store_cache.evictions = now.evictions - store_cache0.evictions;
  }
  if (tree_pool_ != nullptr) {
    const BufferPoolStats now = tree_pool_->TotalStats();
    stats.tree_cache.hits = now.hits - tree_cache0.hits;
    stats.tree_cache.misses = now.misses - tree_cache0.misses;
    stats.tree_cache.evictions = now.evictions - tree_cache0.evictions;
  }
  sessions_.clear();
  return stats;
}

void WalkthroughServer::RollupInto(const ServerRunStats& stats,
                                   telemetry::MetricsRegistry* registry,
                                   const std::string& prefix) {
  for (const ServerSessionRecord& record : stats.sessions) {
    const SessionSummary& s = record.summary;
    const std::string base = prefix + ".session." + s.session_name;
    registry->GetGauge(base + ".avg_frame_time_ms")->Set(s.avg_frame_time_ms);
    registry->GetGauge(base + ".var_frame_time")->Set(s.var_frame_time);
    registry->GetGauge(base + ".avg_io_pages")->Set(s.avg_io_pages);
    registry->GetGauge(base + ".cache_hit_rate")->Set(s.avg_cache_hit_rate);
    registry->GetGauge(base + ".max_resident_bytes")
        ->Set(static_cast<double>(s.max_resident_bytes));
  }
  registry->GetGauge(prefix + ".frames")
      ->Set(static_cast<double>(stats.total_frames));
  registry->GetGauge(prefix + ".rounds")
      ->Set(static_cast<double>(stats.rounds));
  registry->GetGauge(prefix + ".batch_groups")
      ->Set(static_cast<double>(stats.batch_groups));
  registry->GetGauge(prefix + ".batched_frames")
      ->Set(static_cast<double>(stats.batched_frames));
}

double WallPercentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  const size_t k = std::min(
      values.size() - 1,
      static_cast<size_t>(q * static_cast<double>(values.size() - 1) + 0.5));
  std::nth_element(values.begin(), values.begin() + k, values.end());
  return values[k];
}

namespace {

void SetLatencyGauges(telemetry::MetricsRegistry* registry,
                      const std::string& base,
                      std::vector<double> values) {
  registry->GetGauge(base + ".p50")->Set(WallPercentile(values, 0.50));
  registry->GetGauge(base + ".p95")->Set(WallPercentile(values, 0.95));
  registry->GetGauge(base + ".p99")
      ->Set(WallPercentile(std::move(values), 0.99));
}

}  // namespace

void WalkthroughServer::RollupWallLatencyInto(
    const ServerRunStats& stats, telemetry::MetricsRegistry* registry,
    const std::string& prefix) {
  std::vector<double> all_queue;
  std::vector<double> all_service;
  for (const ServerSessionRecord& record : stats.sessions) {
    const std::string base =
        prefix + ".wall.session." + record.summary.session_name;
    SetLatencyGauges(registry, base + ".queue_ms",
                     record.frame_queue_wait_ms);
    SetLatencyGauges(registry, base + ".service_ms", record.frame_wall_ms);
    for (size_t s = 0; s < telemetry::kNumTraceStages; ++s) {
      registry
          ->GetGauge(base + ".stage." +
                     std::string(telemetry::TraceStageName(
                         static_cast<telemetry::TraceStage>(s))) +
                     "_ms")
          ->Set(record.stage_totals.ns[s] / 1e6);
    }
    all_queue.insert(all_queue.end(), record.frame_queue_wait_ms.begin(),
                     record.frame_queue_wait_ms.end());
    all_service.insert(all_service.end(), record.frame_wall_ms.begin(),
                       record.frame_wall_ms.end());
  }
  SetLatencyGauges(registry, prefix + ".wall.queue_ms",
                   std::move(all_queue));
  SetLatencyGauges(registry, prefix + ".wall.service_ms",
                   std::move(all_service));
}

}  // namespace hdov
