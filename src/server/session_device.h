// SessionDevice: one session's private, billed view over a shared
// read-only base device. N concurrent sessions each wrap the same base
// FilePageDevice (and optionally a ShardedBufferPool in front of it); the
// wrapper owns nothing shared — its IoStats, SimClock hookup, and
// sequential-access tracker live in the PageDevice base class, private to
// the session — so the simulated counters a session accumulates are
// bit-identical to playing the same frames against the base device alone,
// no matter how the sessions interleave. Only *real* I/O is shared (and
// deduplicated by the pool).

#ifndef HDOV_SERVER_SESSION_DEVICE_H_
#define HDOV_SERVER_SESSION_DEVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/page_device.h"
#include "storage/sharded_buffer_pool.h"

namespace hdov {

class SessionDevice : public PageDevice {
 public:
  // `base` (and `cache`, when given) must outlive the device. `cache` may
  // be null — misses then read straight through base->ReadRaw. When a
  // cache is given it must front the same base device.
  SessionDevice(const PageDevice* base, ShardedBufferPool* cache,
                const DiskModel& model, SimClock* clock)
      : PageDevice(model, clock), base_(base), cache_(cache) {}

  uint64_t page_count() const override { return base_->page_count(); }

  // Billed reads. A null `out` bills the simulated cost without touching
  // the file or the cache at all — the searcher's tree-page billing and
  // the model store's fetches use this, since their data is already in
  // memory (shared tree) or never needed (unmaterialized models).
  Status Read(PageId page, std::string* out) override;
  Status ReadRun(PageId first, uint64_t count,
                 std::vector<std::string>* out) override;

  // Unbilled read, straight from the base device (no cache).
  Status ReadRaw(PageId page, std::string* out) const override;
  bool IsMaterialized(PageId page) const override;

  // The world is immutable while being served: every mutation fails.
  PageId Allocate() override { return kInvalidPage; }
  PageId AllocateUnmaterialized(uint64_t count) override;
  Status Write(PageId page, std::string_view data) override;
  Status RestoreContents(std::vector<std::string> pages) override;

 private:
  // Fetches one page's contents through the cache (or base) into `out`.
  Status FetchThrough(PageId page, std::string* out);

  const PageDevice* base_;
  ShardedBufferPool* cache_;  // May be null.
};

}  // namespace hdov

#endif  // HDOV_SERVER_SESSION_DEVICE_H_
