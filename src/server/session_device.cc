#include "server/session_device.h"

namespace hdov {

Status SessionDevice::FetchThrough(PageId page, std::string* out) {
  if (cache_ != nullptr) {
    HDOV_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> data,
                          cache_->Get(page));
    *out = *data;
    return Status::OK();
  }
  return base_->ReadRaw(page, out);
}

Status SessionDevice::Read(PageId page, std::string* out) {
  if (page >= base_->page_count()) {
    return Status::OutOfRange("session device: read past end");
  }
  BillRead(page, 1);
  if (out == nullptr) {
    return Status::OK();
  }
  return FetchThrough(page, out);
}

Status SessionDevice::ReadRun(PageId first, uint64_t count,
                              std::vector<std::string>* out) {
  if (count == 0) {
    return Status::OK();
  }
  if (first + count > base_->page_count()) {
    return Status::OutOfRange("session device: run read past end");
  }
  BillRead(first, count);
  if (out == nullptr) {
    return Status::OK();
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    out->emplace_back();
    HDOV_RETURN_IF_ERROR(FetchThrough(first + i, &out->back()));
  }
  return Status::OK();
}

Status SessionDevice::ReadRaw(PageId page, std::string* out) const {
  return base_->ReadRaw(page, out);
}

bool SessionDevice::IsMaterialized(PageId page) const {
  return base_->IsMaterialized(page);
}

PageId SessionDevice::AllocateUnmaterialized(uint64_t count) {
  (void)count;
  return kInvalidPage;
}

Status SessionDevice::Write(PageId page, std::string_view data) {
  (void)page;
  (void)data;
  return Status::FailedPrecondition("session device: world is read-only");
}

Status SessionDevice::RestoreContents(std::vector<std::string> pages) {
  (void)pages;
  return Status::FailedPrecondition("session device: world is read-only");
}

}  // namespace hdov
