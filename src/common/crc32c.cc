#include "common/crc32c.h"

#include <array>

namespace hdov {
namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // table[k][b]: CRC of byte b followed by k zero bytes.
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][b] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t b = 0; b < 256; ++b) {
        t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xFFu];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

inline uint32_t Load32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tab = tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    c = tab.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --n;
  }
  while (n >= 8) {
    uint32_t lo = Load32(p) ^ c;
    uint32_t hi = Load32(p + 4);
    c = tab.t[7][lo & 0xFFu] ^ tab.t[6][(lo >> 8) & 0xFFu] ^
        tab.t[5][(lo >> 16) & 0xFFu] ^ tab.t[4][lo >> 24] ^
        tab.t[3][hi & 0xFFu] ^ tab.t[2][(hi >> 8) & 0xFFu] ^
        tab.t[1][(hi >> 16) & 0xFFu] ^ tab.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = tab.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --n;
  }
  return ~c;
}

}  // namespace hdov
