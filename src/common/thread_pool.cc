#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace hdov {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) {
    return;  // Inline mode.
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutdown with a drained queue.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      fn(0, i);
    }
    return;
  }
  // Self-scheduling: each participant grabs the next unclaimed index.
  // Dynamic assignment load-balances variable per-item cost; determinism
  // is the caller's per-index independence, not the schedule.
  std::atomic<size_t> next{0};
  auto drain = [&next, n, &fn](size_t slot) {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      fn(slot, i);
    }
  };
  const size_t participants = std::min(workers_.size(), n);
  for (size_t w = 0; w < participants; ++w) {
    Submit([&drain, w] { drain(w); });
  }
  drain(workers_.size());  // The calling thread helps too, on its own slot.
  Wait();  // Orders the workers' use of `next`/`drain` before our return.
}

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace hdov
