// Deterministic pseudo-random number generator (xoshiro256**).
//
// Every stochastic component in the library (city generation, viewpoint
// sampling, workload generation) takes an explicit Rng so experiments are
// reproducible from a single seed.

#ifndef HDOV_COMMON_RNG_H_
#define HDOV_COMMON_RNG_H_

#include <cstdint>

namespace hdov {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding: decorrelates nearby seeds.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t NextUint64(uint64_t n) { return NextUint64() % n; }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    return lo + static_cast<int>(NextUint64(
                    static_cast<uint64_t>(hi - lo) + 1));
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace hdov

#endif  // HDOV_COMMON_RNG_H_
