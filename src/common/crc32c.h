// CRC32C (Castagnoli polynomial, iSCSI/ext4 flavour) used to checksum
// on-disk pages and snapshot sections. Software slicing-by-8 tables; no
// hardware instructions so results are identical on every platform.

#ifndef HDOV_COMMON_CRC32C_H_
#define HDOV_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hdov {

// Extends `crc` (a previous Crc32c result, or 0 for a fresh run) with `n`
// bytes at `data`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

// Checksum of a whole buffer.
inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace hdov

#endif  // HDOV_COMMON_CRC32C_H_
