// Little-endian fixed-width encoding helpers for on-page serialization.
//
// Every on-disk structure in this library (R-tree nodes, V-pages,
// V-page-index segments) is serialized with these primitives so that page
// layouts are byte-accurate and the storage numbers reported by the
// benchmarks reflect real encoded sizes.

#ifndef HDOV_COMMON_CODING_H_
#define HDOV_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace hdov {

inline void EncodeFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  std::memcpy(buf, &value, sizeof(value));
  dst->append(buf, sizeof(value));
}

inline void EncodeFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  std::memcpy(buf, &value, sizeof(value));
  dst->append(buf, sizeof(value));
}

inline void EncodeFloat(std::string* dst, float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  EncodeFixed32(dst, bits);
}

inline void EncodeDouble(std::string* dst, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  EncodeFixed64(dst, bits);
}

// Decoder over a read-only byte span. Decode* methods fail with Corruption
// when the input is exhausted, so malformed pages surface as errors rather
// than out-of-bounds reads.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  Status DecodeFixed32(uint32_t* value) {
    return DecodeRaw(value, sizeof(*value));
  }
  Status DecodeFixed64(uint64_t* value) {
    return DecodeRaw(value, sizeof(*value));
  }
  Status DecodeFloat(float* value) { return DecodeRaw(value, sizeof(*value)); }
  Status DecodeDouble(double* value) {
    return DecodeRaw(value, sizeof(*value));
  }

  Status Skip(size_t n) {
    if (remaining() < n) {
      return Status::Corruption("decoder: skip past end of input");
    }
    pos_ += n;
    return Status::OK();
  }

 private:
  Status DecodeRaw(void* out, size_t n) {
    if (remaining() < n) {
      return Status::Corruption("decoder: read past end of input");
    }
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace hdov

#endif  // HDOV_COMMON_CODING_H_
