// Status: lightweight error propagation used across all hdov modules.
//
// The library does not throw exceptions across module boundaries; every
// fallible operation returns a Status (or a Result<T>, see result.h).
// The design follows the RocksDB/Arrow convention: a cheap, copyable value
// carrying an error code and, when not OK, a human-readable message.

#ifndef HDOV_COMMON_STATUS_H_
#define HDOV_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace hdov {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kIoError,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

// Returns a stable, human-readable name for a code ("OK", "IOError", ...).
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  // Default-constructed Status is OK. OK carries no allocation.
  Status() = default;

  Status(const Status& other)
      : code_(other.code_),
        message_(other.message_ ? new std::string(*other.message_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      code_ = other.code_;
      message_.reset(other.message_ ? new std::string(*other.message_)
                                    : nullptr);
    }
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(StatusCode::kIoError, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  // Message without the code prefix; empty for OK.
  std::string_view message() const {
    return message_ ? std::string_view(*message_) : std::string_view();
  }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(new std::string(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::unique_ptr<std::string> message_;
};

// Propagates a non-OK status to the caller. Usable only in functions that
// themselves return Status.
#define HDOV_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::hdov::Status _hdov_status = (expr);   \
    if (!_hdov_status.ok()) {               \
      return _hdov_status;                  \
    }                                       \
  } while (false)

}  // namespace hdov

#endif  // HDOV_COMMON_STATUS_H_
