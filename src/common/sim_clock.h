// SimClock: a logical clock advanced by the simulated disk and render cost
// models. All "time" numbers reported by the experiment harness come from
// this clock, which makes runs deterministic and independent of host load.

#ifndef HDOV_COMMON_SIM_CLOCK_H_
#define HDOV_COMMON_SIM_CLOCK_H_

#include <cstdint>

namespace hdov {

class SimClock {
 public:
  SimClock() = default;

  void AdvanceMicros(uint64_t micros) { now_micros_ += micros; }
  void AdvanceMillis(double millis) {
    now_micros_ += static_cast<uint64_t>(millis * 1000.0 + 0.5);
  }

  uint64_t NowMicros() const { return now_micros_; }
  double NowMillis() const { return static_cast<double>(now_micros_) / 1000.0; }

  void Reset() { now_micros_ = 0; }

 private:
  uint64_t now_micros_ = 0;
};

}  // namespace hdov

#endif  // HDOV_COMMON_SIM_CLOCK_H_
