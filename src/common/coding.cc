#include "common/coding.h"

// All coding helpers are header-inline; this translation unit exists so the
// header is compiled standalone at least once (self-containedness check).
