#include "common/status.h"

namespace hdov {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeName(code_));
  result += ": ";
  result += message();
  return result;
}

}  // namespace hdov
