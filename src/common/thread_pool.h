// ThreadPool: a small fixed-size worker pool for embarrassingly parallel
// offline work (DoV precomputation, per-cell V-page derivation). Workers
// pull tasks from one shared FIFO queue; Wait() drains the queue and
// blocks until every running task has finished, so a pool can be reused
// across phases.
//
// ParallelFor is the intended entry point: it self-schedules indices
// [0, n) over the workers (atomic grab, chunked), which load-balances
// work whose per-item cost varies — per-cell visibility cost varies with
// how much of the city a cell sees — without giving up determinism, as
// long as item `i`'s result depends only on `i`.
//
// With num_threads <= 1 no threads are spawned and everything runs inline
// on the calling thread, preserving single-threaded behavior exactly.

#ifndef HDOV_COMMON_THREAD_POOL_H_
#define HDOV_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hdov {

class ThreadPool {
 public:
  // 0 and 1 both mean "inline": no worker threads are created.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Worker threads owned by the pool (0 in inline mode).
  size_t num_threads() const { return workers_.size(); }

  // Enqueues `task`. In inline mode the task runs before Submit returns.
  // Tasks must not call Submit or Wait on their own pool.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and no task is running.
  void Wait();

  // Runs fn(slot, i) for every i in [0, n), spread over the workers plus
  // the calling thread; returns when all n calls have finished. `fn` is
  // invoked concurrently from different threads (never twice for the same
  // i), so it must only touch state disjoint per index, per slot, or
  // thread-safe. `slot` identifies the executing participant — a stable
  // value in [0, num_slots()) — so callers can keep scratch state (e.g. a
  // private CubeMapBuffer) per slot instead of per index.
  void ParallelFor(size_t n,
                   const std::function<void(size_t slot, size_t i)>& fn);

  // Number of distinct `slot` values ParallelFor can pass: the workers
  // plus the calling thread (1 in inline mode).
  size_t num_slots() const { return workers_.size() + 1; }

  // Resolves a user-facing thread-count option: 0 = one worker per
  // hardware thread, otherwise the value itself.
  static size_t ResolveThreads(size_t requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // Signals workers: task or shutdown.
  std::condition_variable idle_cv_;  // Signals Wait(): pool went idle.
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;  // Tasks currently executing.
  bool shutdown_ = false;
};

}  // namespace hdov

#endif  // HDOV_COMMON_THREAD_POOL_H_
