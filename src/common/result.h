// Result<T>: a value-or-Status union, the return type of fallible functions
// that produce a value. Mirrors absl::StatusOr / arrow::Result semantics
// with only the operations this codebase needs.

#ifndef HDOV_COMMON_RESULT_H_
#define HDOV_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hdov {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return 42;` and `return Status::NotFound(...);` both work.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {   // NOLINT
    assert(!status_.ok() && "Result must not be built from an OK Status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Propagates the error of a Result expression, else assigns its value.
// Usage: HDOV_ASSIGN_OR_RETURN(auto v, ComputeV());
#define HDOV_ASSIGN_OR_RETURN(decl, expr)                   \
  HDOV_ASSIGN_OR_RETURN_IMPL(                               \
      HDOV_RESULT_CONCAT(_hdov_result_, __LINE__), decl, expr)

#define HDOV_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  decl = std::move(tmp).value()

#define HDOV_RESULT_CONCAT_INNER(a, b) a##b
#define HDOV_RESULT_CONCAT(a, b) HDOV_RESULT_CONCAT_INNER(a, b)

}  // namespace hdov

#endif  // HDOV_COMMON_RESULT_H_
