#include "testbed/testbed_glue.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/rng.h"
#include "persist/snapshot.h"
#include "telemetry/bench_report.h"

namespace hdov::testbed {

bool LargeScale() {
  const char* scale = std::getenv("HDOV_BENCH_SCALE");
  return scale != nullptr && std::strcmp(scale, "large") == 0;
}

uint32_t& DefaultThreads() {
  static uint32_t threads = 1;
  return threads;
}

std::string& DefaultDbPath() {
  static std::string path;
  return path;
}

void ApplyLargeScalePreset(TestbedOptions* opt) {
  opt->blocks = 20;
  opt->cells = 24;
  opt->samples_per_cell = 5;
}

TestbedOptions DefaultTestbedOptions() {
  TestbedOptions opt;
  opt.threads = DefaultThreads();
  if (LargeScale()) {
    ApplyLargeScalePreset(&opt);
  }
  return opt;
}

Testbed BuildTestbedOrDie(const TestbedOptions& opt,
                          telemetry::BenchReport* report) {
  telemetry::WallTimer timer;
  Result<Testbed> bed = [&]() -> Result<Testbed> {
    if (DefaultDbPath().empty()) {
      return hdov::BuildTestbed(opt);
    }
    HDOV_ASSIGN_OR_RETURN(std::unique_ptr<SnapshotLoader> snapshot,
                          SnapshotLoader::Open(DefaultDbPath()));
    return LoadWorldSections(*snapshot);
  }();
  if (!bed.ok()) {
    std::fprintf(stderr, "testbed: %s\n", bed.status().ToString().c_str());
    std::abort();
  }
  if (report != nullptr) {
    report->RecordTiming(
        DefaultDbPath().empty() ? "testbed.build" : "testbed.load",
        timer.ElapsedMs());
  }
  return std::move(*bed);
}

VisualOptions DefaultVisualOptions() {
  return hdov::DefaultVisualOptions(DefaultThreads());
}

Result<std::unique_ptr<VisualSystem>> MakeVisualSystem(
    const Testbed& bed, const VisualOptions& options) {
  if (DefaultDbPath().empty()) {
    return VisualSystem::Create(&bed.scene, &bed.grid, &bed.table, options);
  }
  HDOV_ASSIGN_OR_RETURN(std::unique_ptr<SnapshotLoader> snapshot,
                        SnapshotLoader::Open(DefaultDbPath()));
  return VisualSystem::CreateFromSnapshot(*snapshot, &bed.scene, &bed.grid,
                                          options);
}

std::vector<Vec3> RandomViewpoints(const Aabb& bounds, size_t count,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    points.emplace_back(rng.Uniform(bounds.min.x, bounds.max.x),
                        rng.Uniform(bounds.min.y, bounds.max.y), 1.7);
  }
  return points;
}

void PrintTestbedSummary(const Testbed& bed) {
  std::printf("testbed: %s | %u cells | avg %.1f visible objects/cell\n\n",
              bed.scene.Summary().c_str(), bed.grid.num_cells(),
              bed.table.AverageVisibleObjects());
}

double MB(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace hdov::testbed
