// Shared experiment-world glue, usable by benches, tools and tests alike
// without linking any bench code. Wraps the raw builders in
// walkthrough/experiment_testbed.h with the conventions every experiment
// binary shares: the HDOV_BENCH_SCALE environment knob, the process-wide
// --threads / --db state, abort-on-error construction (an experiment has
// no meaningful recovery path), random query viewpoints, and the summary
// banner. bench/bench_util.h re-exports these under its historical
// hdov::bench names.

#ifndef HDOV_TESTBED_TESTBED_GLUE_H_
#define HDOV_TESTBED_TESTBED_GLUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "walkthrough/experiment_testbed.h"
#include "walkthrough/visual_system.h"

namespace hdov::telemetry {
class BenchReport;
}  // namespace hdov::telemetry

namespace hdov::testbed {

// True when HDOV_BENCH_SCALE=large: run closer to the paper's dataset
// sizes (slower); the default is sized to finish in seconds while
// preserving every qualitative shape.
bool LargeScale();

// Process-wide worker-thread count (the benches' --threads flag lands
// here). Thread count never changes any simulated number — only build
// wall-clock — so the figures are unaffected.
uint32_t& DefaultThreads();

// Process-wide snapshot path (the benches' --db flag). When non-empty,
// BuildTestbedOrDie and MakeVisualSystem load the world from that
// tools/hdov_build snapshot instead of rebuilding; loading changes only
// wall-clock, never results or simulated counters.
std::string& DefaultDbPath();

// The paper-scale preset shared by the scale knob and hdov_build
// --scale=large; explicit flags override it.
void ApplyLargeScalePreset(TestbedOptions* opt);

// Default world options: DefaultThreads() plus the large preset when the
// scale knob asks for it.
TestbedOptions DefaultTestbedOptions();

// Builds the experiment environment — or, with DefaultDbPath() set, loads
// it from the snapshot — aborting on error. When `report` is given, the
// wall-clock is recorded under the "testbed.build" (or "testbed.load")
// timing.
Testbed BuildTestbedOrDie(const TestbedOptions& opt,
                          telemetry::BenchReport* report = nullptr);

// hdov::DefaultVisualOptions over DefaultThreads().
VisualOptions DefaultVisualOptions();

// VisualSystem::Create over the testbed — or CreateFromSnapshot when a
// db path is set, skipping the tree/store/model build entirely. `bed`
// must be the testbed returned by BuildTestbedOrDie (with --db, the
// snapshot's own world), and must outlive the system.
Result<std::unique_ptr<VisualSystem>> MakeVisualSystem(
    const Testbed& bed, const VisualOptions& options);

// `count` random query viewpoints at eye height inside the world bounds.
std::vector<Vec3> RandomViewpoints(const Aabb& bounds, size_t count,
                                   uint64_t seed);

void PrintTestbedSummary(const Testbed& bed);

double MB(uint64_t bytes);

}  // namespace hdov::testbed

#endif  // HDOV_TESTBED_TESTBED_GLUE_H_
