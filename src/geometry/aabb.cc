#include "geometry/aabb.h"

#include <cstdio>

namespace hdov {

double Aabb::OverlapVolume(const Aabb& b) const {
  if (IsEmpty() || b.IsEmpty()) {
    return 0.0;
  }
  double dx = std::min(max.x, b.max.x) - std::max(min.x, b.min.x);
  double dy = std::min(max.y, b.max.y) - std::max(min.y, b.min.y);
  double dz = std::min(max.z, b.max.z) - std::max(min.z, b.min.z);
  if (dx <= 0.0 || dy <= 0.0 || dz <= 0.0) {
    return 0.0;
  }
  return dx * dy * dz;
}

double Aabb::DistanceSquaredTo(const Vec3& p) const {
  if (IsEmpty()) {
    return std::numeric_limits<double>::infinity();
  }
  auto axis = [](double v, double lo, double hi) {
    if (v < lo) {
      return lo - v;
    }
    if (v > hi) {
      return v - hi;
    }
    return 0.0;
  };
  double dx = axis(p.x, min.x, max.x);
  double dy = axis(p.y, min.y, max.y);
  double dz = axis(p.z, min.z, max.z);
  return dx * dx + dy * dy + dz * dz;
}

std::string Aabb::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "[(%.3f, %.3f, %.3f)-(%.3f, %.3f, %.3f)]",
                min.x, min.y, min.z, max.x, max.y, max.z);
  return buf;
}

}  // namespace hdov
