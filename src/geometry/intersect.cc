#include "geometry/intersect.h"

#include <algorithm>
#include <cmath>

namespace hdov {

std::optional<double> RayTriangle(const Ray& ray, const Vec3& a, const Vec3& b,
                                  const Vec3& c, double t_min) {
  const Vec3 e1 = b - a;
  const Vec3 e2 = c - a;
  const Vec3 pvec = ray.direction.Cross(e2);
  const double det = e1.Dot(pvec);
  if (std::fabs(det) < 1e-14) {
    return std::nullopt;  // Ray parallel to triangle plane.
  }
  const double inv_det = 1.0 / det;
  const Vec3 tvec = ray.origin - a;
  const double u = tvec.Dot(pvec) * inv_det;
  if (u < 0.0 || u > 1.0) {
    return std::nullopt;
  }
  const Vec3 qvec = tvec.Cross(e1);
  const double v = ray.direction.Dot(qvec) * inv_det;
  if (v < 0.0 || u + v > 1.0) {
    return std::nullopt;
  }
  const double t = e2.Dot(qvec) * inv_det;
  if (t <= t_min) {
    return std::nullopt;
  }
  return t;
}

std::optional<double> RayBox(const Ray& ray, const Aabb& box, double t_min) {
  if (box.IsEmpty()) {
    return std::nullopt;
  }
  double t_lo = t_min;
  double t_hi = std::numeric_limits<double>::infinity();
  const double origin[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
  const double dir[3] = {ray.direction.x, ray.direction.y, ray.direction.z};
  const double lo[3] = {box.min.x, box.min.y, box.min.z};
  const double hi[3] = {box.max.x, box.max.y, box.max.z};
  for (int axis = 0; axis < 3; ++axis) {
    if (std::fabs(dir[axis]) < 1e-300) {
      if (origin[axis] < lo[axis] || origin[axis] > hi[axis]) {
        return std::nullopt;
      }
      continue;
    }
    double inv = 1.0 / dir[axis];
    double t0 = (lo[axis] - origin[axis]) * inv;
    double t1 = (hi[axis] - origin[axis]) * inv;
    if (t0 > t1) {
      std::swap(t0, t1);
    }
    t_lo = std::max(t_lo, t0);
    t_hi = std::min(t_hi, t1);
    if (t_lo > t_hi) {
      return std::nullopt;
    }
  }
  return t_lo;
}

double TriangleArea(const Vec3& a, const Vec3& b, const Vec3& c) {
  return 0.5 * (b - a).Cross(c - a).Length();
}

double TriangleSolidAngle(const Vec3& p, const Vec3& a, const Vec3& b,
                          const Vec3& c) {
  const Vec3 ra = a - p;
  const Vec3 rb = b - p;
  const Vec3 rc = c - p;
  const double la = ra.Length();
  const double lb = rb.Length();
  const double lc = rc.Length();
  const double numerator = std::fabs(ra.Dot(rb.Cross(rc)));
  const double denominator = la * lb * lc + ra.Dot(rb) * lc + ra.Dot(rc) * lb +
                             rb.Dot(rc) * la;
  double omega = 2.0 * std::atan2(numerator, denominator);
  if (omega < 0.0) {
    omega += 2.0 * M_PI;
  }
  return omega;
}

}  // namespace hdov
