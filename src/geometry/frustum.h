// Frustum: a perspective view frustum defined by eye, look direction, field
// of view and near/far distances. Used by the REVIEW baseline (window-query
// box derivation) and by the walkthrough fidelity metric.

#ifndef HDOV_GEOMETRY_FRUSTUM_H_
#define HDOV_GEOMETRY_FRUSTUM_H_

#include <array>

#include "geometry/aabb.h"
#include "geometry/plane.h"
#include "geometry/vec3.h"

namespace hdov {

struct FrustumOptions {
  double fov_y_radians = 1.0471975511965976;  // 60 degrees.
  double aspect = 4.0 / 3.0;
  double near_dist = 0.5;
  double far_dist = 1000.0;
};

class Frustum {
 public:
  // `look` need not be unit length; `up` defaults to +z (the library's city
  // scenes use z-up).
  Frustum(const Vec3& eye, const Vec3& look, const FrustumOptions& options,
          const Vec3& up = Vec3(0.0, 0.0, 1.0));

  const Vec3& eye() const { return eye_; }
  const Vec3& forward() const { return forward_; }
  const FrustumOptions& options() const { return options_; }

  // Six planes with normals pointing into the frustum interior.
  const std::array<Plane, 6>& planes() const { return planes_; }

  bool ContainsPoint(const Vec3& p) const;

  // Conservative test: false only when the box is certainly outside.
  bool IntersectsBox(const Aabb& box) const;

  // Tight AABB of the 8 frustum corner points: the single "large query box"
  // a spatial method would use.
  Aabb BoundingBox() const;

 private:
  Vec3 eye_;
  Vec3 forward_;
  FrustumOptions options_;
  std::array<Plane, 6> planes_;
  std::array<Vec3, 8> corners_;
};

}  // namespace hdov

#endif  // HDOV_GEOMETRY_FRUSTUM_H_
