// Plane: n·p + d = 0 with outward-facing normal convention. Used by the
// view frustum and the box/plane classification tests.

#ifndef HDOV_GEOMETRY_PLANE_H_
#define HDOV_GEOMETRY_PLANE_H_

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace hdov {

struct Plane {
  Vec3 normal{0.0, 0.0, 1.0};
  double d = 0.0;

  constexpr Plane() = default;
  Plane(const Vec3& normal_in, double d_in) : normal(normal_in), d(d_in) {}

  // Plane through `point` with the given (not necessarily unit) normal.
  static Plane FromPointNormal(const Vec3& point, const Vec3& normal) {
    Vec3 n = normal.Normalized();
    return Plane(n, -n.Dot(point));
  }

  // Plane through three counter-clockwise points (normal by right-hand rule).
  static Plane FromPoints(const Vec3& a, const Vec3& b, const Vec3& c) {
    return FromPointNormal(a, (b - a).Cross(c - a));
  }

  // Signed distance: positive on the normal side.
  double SignedDistance(const Vec3& p) const { return normal.Dot(p) + d; }

  // True when the whole box lies strictly on the negative side.
  bool BoxFullyBehind(const Aabb& box) const {
    // The box vertex furthest along the normal decides.
    Vec3 far_corner{normal.x >= 0.0 ? box.max.x : box.min.x,
                    normal.y >= 0.0 ? box.max.y : box.min.y,
                    normal.z >= 0.0 ? box.max.z : box.min.z};
    return SignedDistance(far_corner) < 0.0;
  }
};

}  // namespace hdov

#endif  // HDOV_GEOMETRY_PLANE_H_
