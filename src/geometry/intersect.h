// Ray / triangle / box intersection primitives. These back the software
// cube-map rasterizer's correctness tests and the visibility ground-truth
// ray sampler.

#ifndef HDOV_GEOMETRY_INTERSECT_H_
#define HDOV_GEOMETRY_INTERSECT_H_

#include <optional>

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace hdov {

struct Ray {
  Vec3 origin;
  Vec3 direction;  // Need not be normalized.
};

// Möller–Trumbore ray/triangle intersection. Returns the ray parameter t
// (point = origin + t * direction) for the first hit with t > t_min, or
// nullopt. Back faces count as hits (occluders are two-sided).
std::optional<double> RayTriangle(const Ray& ray, const Vec3& a, const Vec3& b,
                                  const Vec3& c, double t_min = 1e-9);

// Slab test. Returns the entry parameter t >= t_min of the ray into the box
// (0 when the origin is inside), or nullopt when the ray misses.
std::optional<double> RayBox(const Ray& ray, const Aabb& box,
                             double t_min = 0.0);

double TriangleArea(const Vec3& a, const Vec3& b, const Vec3& c);

// Solid angle subtended by triangle (a, b, c) at the origin point `p`, via
// Van Oosterom & Strackee. Always non-negative; a triangle seen edge-on
// subtends 0.
double TriangleSolidAngle(const Vec3& p, const Vec3& a, const Vec3& b,
                          const Vec3& c);

}  // namespace hdov

#endif  // HDOV_GEOMETRY_INTERSECT_H_
