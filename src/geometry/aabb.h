// Aabb: axis-aligned bounding box. This is the MBR type stored in every
// R-tree / HDoV-tree entry (the paper's `MBR` field).

#ifndef HDOV_GEOMETRY_AABB_H_
#define HDOV_GEOMETRY_AABB_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geometry/vec3.h"

namespace hdov {

struct Aabb {
  Vec3 min{std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity()};
  Vec3 max{-std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};

  constexpr Aabb() = default;
  constexpr Aabb(const Vec3& min_in, const Vec3& max_in)
      : min(min_in), max(max_in) {}

  // An empty box is the identity for Extend: min > max on every axis.
  static constexpr Aabb Empty() { return Aabb(); }

  bool IsEmpty() const {
    return min.x > max.x || min.y > max.y || min.z > max.z;
  }

  // True when min <= max on all axes (empty boxes are invalid).
  bool IsValid() const { return !IsEmpty(); }

  void Extend(const Vec3& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    min.z = std::min(min.z, p.z);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
    max.z = std::max(max.z, p.z);
  }

  void Extend(const Aabb& b) {
    if (b.IsEmpty()) {
      return;
    }
    Extend(b.min);
    Extend(b.max);
  }

  // The union box of `a` and `b`.
  static Aabb Union(const Aabb& a, const Aabb& b) {
    Aabb result = a;
    result.Extend(b);
    return result;
  }

  Vec3 Center() const { return (min + max) * 0.5; }
  Vec3 Extent() const { return max - min; }

  double Volume() const {
    if (IsEmpty()) {
      return 0.0;
    }
    Vec3 e = Extent();
    return e.x * e.y * e.z;
  }

  // Surface-area-like measure used by the R-tree split/choose heuristics:
  // half surface area; degenerates gracefully for flat boxes.
  double HalfSurfaceArea() const {
    if (IsEmpty()) {
      return 0.0;
    }
    Vec3 e = Extent();
    return e.x * e.y + e.y * e.z + e.z * e.x;
  }

  // Sum of edge lengths per axis ("margin" in R*-tree terms).
  double Margin() const {
    if (IsEmpty()) {
      return 0.0;
    }
    Vec3 e = Extent();
    return e.x + e.y + e.z;
  }

  bool Contains(const Vec3& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y &&
           p.z >= min.z && p.z <= max.z;
  }

  bool Contains(const Aabb& b) const {
    return !b.IsEmpty() && Contains(b.min) && Contains(b.max);
  }

  bool Intersects(const Aabb& b) const {
    if (IsEmpty() || b.IsEmpty()) {
      return false;
    }
    return min.x <= b.max.x && max.x >= b.min.x && min.y <= b.max.y &&
           max.y >= b.min.y && min.z <= b.max.z && max.z >= b.min.z;
  }

  // Volume of the intersection box (0 when disjoint).
  double OverlapVolume(const Aabb& b) const;

  // Increase in volume if this box were extended to cover `b`.
  double Enlargement(const Aabb& b) const {
    return Union(*this, b).Volume() - Volume();
  }

  // Squared distance from `p` to the closest point of the box (0 inside).
  double DistanceSquaredTo(const Vec3& p) const;
  double DistanceTo(const Vec3& p) const {
    return std::sqrt(DistanceSquaredTo(p));
  }

  // The corner with index i in [0, 8): bit 0 -> x, bit 1 -> y, bit 2 -> z.
  Vec3 Corner(int i) const {
    return {(i & 1) ? max.x : min.x, (i & 2) ? max.y : min.y,
            (i & 4) ? max.z : min.z};
  }

  std::string ToString() const;

  friend bool operator==(const Aabb& a, const Aabb& b) {
    return a.min == b.min && a.max == b.max;
  }
};

}  // namespace hdov

#endif  // HDOV_GEOMETRY_AABB_H_
