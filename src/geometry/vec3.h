// Vec3: double-precision 3-vector used throughout the geometry, mesh and
// visibility subsystems.

#ifndef HDOV_GEOMETRY_VEC3_H_
#define HDOV_GEOMETRY_VEC3_H_

#include <cmath>

namespace hdov {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_in, double y_in, double z_in)
      : x(x_in), y(y_in), z(z_in) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr double Dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 Cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double Length() const { return std::sqrt(Dot(*this)); }
  constexpr double LengthSquared() const { return Dot(*this); }

  // Returns the zero vector when called on a (near-)zero vector.
  Vec3 Normalized() const {
    double len = Length();
    if (len < 1e-300) {
      return {};
    }
    return *this / len;
  }

  double DistanceTo(const Vec3& o) const { return (*this - o).Length(); }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

}  // namespace hdov

#endif  // HDOV_GEOMETRY_VEC3_H_
