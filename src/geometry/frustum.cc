#include "geometry/frustum.h"

#include <cmath>

namespace hdov {

Frustum::Frustum(const Vec3& eye, const Vec3& look,
                 const FrustumOptions& options, const Vec3& up)
    : eye_(eye), forward_(look.Normalized()), options_(options) {
  // Build an orthonormal camera basis. If `look` is parallel to `up`, fall
  // back to the x axis to keep the basis well defined.
  Vec3 right = forward_.Cross(up).Normalized();
  if (right.LengthSquared() < 1e-12) {
    right = forward_.Cross(Vec3(1.0, 0.0, 0.0)).Normalized();
  }
  Vec3 cam_up = right.Cross(forward_);

  const double tan_half_y = std::tan(options_.fov_y_radians * 0.5);
  const double tan_half_x = tan_half_y * options_.aspect;

  // Corner points: near plane then far plane, (x, y) in {-,+}x{-,+} order.
  int idx = 0;
  for (double dist : {options_.near_dist, options_.far_dist}) {
    Vec3 center = eye_ + forward_ * dist;
    Vec3 dx = right * (tan_half_x * dist);
    Vec3 dy = cam_up * (tan_half_y * dist);
    corners_[idx++] = center - dx - dy;
    corners_[idx++] = center + dx - dy;
    corners_[idx++] = center - dx + dy;
    corners_[idx++] = center + dx + dy;
  }

  // Inward-facing planes.
  planes_[0] = Plane::FromPointNormal(eye_ + forward_ * options_.near_dist,
                                      forward_);   // near
  planes_[1] = Plane::FromPointNormal(eye_ + forward_ * options_.far_dist,
                                      -forward_);  // far

  // Side planes are built from the eye and pairs of far corners, then
  // oriented so that a point on the view axis lies on the positive side.
  const Vec3 axis_point = eye_ + forward_ * (options_.far_dist * 0.5);
  auto side_plane = [&](const Vec3& a, const Vec3& b) {
    Plane p = Plane::FromPoints(eye_, a, b);
    if (p.SignedDistance(axis_point) < 0.0) {
      p.normal = -p.normal;
      p.d = -p.d;
    }
    return p;
  };
  planes_[2] = side_plane(corners_[4], corners_[6]);  // left (-x corners)
  planes_[3] = side_plane(corners_[5], corners_[7]);  // right (+x corners)
  planes_[4] = side_plane(corners_[4], corners_[5]);  // bottom (-y corners)
  planes_[5] = side_plane(corners_[6], corners_[7]);  // top (+y corners)
}

bool Frustum::ContainsPoint(const Vec3& p) const {
  for (const Plane& plane : planes_) {
    if (plane.SignedDistance(p) < 0.0) {
      return false;
    }
  }
  return true;
}

bool Frustum::IntersectsBox(const Aabb& box) const {
  if (box.IsEmpty()) {
    return false;
  }
  for (const Plane& plane : planes_) {
    if (plane.BoxFullyBehind(box)) {
      return false;
    }
  }
  return true;
}

Aabb Frustum::BoundingBox() const {
  Aabb box;
  for (const Vec3& c : corners_) {
    box.Extend(c);
  }
  box.Extend(eye_);
  return box;
}

}  // namespace hdov
