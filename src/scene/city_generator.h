// CityGenerator: the synthetic city dataset of the paper's evaluation —
// "a synthetic city model containing numerous buildings and bunny models".
// A deterministic grid of city blocks with buildings of varying heights and
// park blocks populated by bunny blobs.
//
// Geometry modes:
//  - kFull: every object carries real meshes and a QEM-simplified LoD
//    chain (used for visibility ground truth and fidelity experiments);
//  - kProxy: objects carry MBRs plus synthetic triangle counts / byte
//    sizes computed from the same formulas as full mode, letting the
//    scalability experiments reach the paper's 400 MB – 1.6 GB datasets.

#ifndef HDOV_SCENE_CITY_GENERATOR_H_
#define HDOV_SCENE_CITY_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "scene/object.h"

namespace hdov {

enum class GeometryMode : uint8_t { kFull, kProxy };

struct CityOptions {
  uint64_t seed = 20030101;  // Deterministic by default.
  GeometryMode mode = GeometryMode::kProxy;

  // City layout: blocks_x * blocks_y city blocks separated by streets.
  int blocks_x = 8;
  int blocks_y = 8;
  double block_size = 80.0;    // Meters per block edge.
  double street_width = 20.0;  // Meters between blocks.

  // Buildings per block (uniform in [min, max]).
  int min_buildings_per_block = 2;
  int max_buildings_per_block = 4;

  double min_building_height = 15.0;
  double max_building_height = 120.0;

  // Fraction of blocks that are parks (contain bunnies, no buildings).
  double park_fraction = 0.15;
  int min_bunnies_per_park = 2;
  int max_bunnies_per_park = 5;

  // Façade tessellation of the *finest* building LoD; drives triangle
  // counts in both modes (full mode builds the mesh, proxy mode evaluates
  // the same count formula).
  int facade_columns = 8;
  int facade_rows = 14;

  // Icosphere subdivisions of the finest bunny LoD (full mode caps this at
  // 4 to bound build time; proxy mode uses it directly in the formula).
  int bunny_subdivisions = 4;

  LodChainOptions lod;  // ratios, bytes_per_triangle, simplifier settings.
};

// Builds the deterministic synthetic city for `options`.
Result<Scene> GenerateCity(const CityOptions& options);

// Convenience: proxy-mode options scaled so that the generated scene's
// TotalModelBytes() is approximately `target_bytes` (the knob behind the
// paper's 400 MB / 0.8 GB / 1.2 GB / 1.6 GB dataset series). Achieved by
// scaling the number of blocks.
CityOptions CityOptionsForTargetBytes(uint64_t target_bytes);

}  // namespace hdov

#endif  // HDOV_SCENE_CITY_GENERATOR_H_
