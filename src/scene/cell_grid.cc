#include "scene/cell_grid.h"

#include <algorithm>
#include <cmath>

namespace hdov {

Result<CellGrid> CellGrid::Build(const Aabb& world_bounds,
                                 const CellGridOptions& options) {
  if (options.cells_x <= 0 || options.cells_y <= 0) {
    return Status::InvalidArgument("cell grid: dimensions must be positive");
  }
  if (world_bounds.IsEmpty()) {
    return Status::InvalidArgument("cell grid: empty world bounds");
  }
  if (options.min_eye_height > options.max_eye_height) {
    return Status::InvalidArgument("cell grid: inverted eye height range");
  }
  CellGrid grid;
  grid.options_ = options;
  grid.footprint_ = world_bounds;
  grid.cell_w_ = (world_bounds.max.x - world_bounds.min.x) / options.cells_x;
  grid.cell_h_ = (world_bounds.max.y - world_bounds.min.y) / options.cells_y;
  if (grid.cell_w_ <= 0.0 || grid.cell_h_ <= 0.0) {
    return Status::InvalidArgument("cell grid: degenerate world footprint");
  }
  return grid;
}

Aabb CellGrid::CellBounds(CellId id) const {
  const int cx = static_cast<int>(id) % options_.cells_x;
  const int cy = static_cast<int>(id) / options_.cells_x;
  const double x0 = footprint_.min.x + cx * cell_w_;
  const double y0 = footprint_.min.y + cy * cell_h_;
  return Aabb(Vec3(x0, y0, options_.min_eye_height),
              Vec3(x0 + cell_w_, y0 + cell_h_, options_.max_eye_height));
}

std::optional<CellId> CellGrid::CellForPoint(const Vec3& p) const {
  if (p.x < footprint_.min.x || p.x > footprint_.max.x ||
      p.y < footprint_.min.y || p.y > footprint_.max.y) {
    return std::nullopt;
  }
  int cx = std::min(options_.cells_x - 1,
                    static_cast<int>((p.x - footprint_.min.x) / cell_w_));
  int cy = std::min(options_.cells_y - 1,
                    static_cast<int>((p.y - footprint_.min.y) / cell_h_));
  cx = std::max(0, cx);
  cy = std::max(0, cy);
  return static_cast<CellId>(cy * options_.cells_x + cx);
}

CellId CellGrid::ClampedCellForPoint(const Vec3& p) const {
  Vec3 q = p;
  q.x = std::clamp(q.x, footprint_.min.x, footprint_.max.x);
  q.y = std::clamp(q.y, footprint_.min.y, footprint_.max.y);
  return *CellForPoint(q);
}

std::vector<Vec3> CellGrid::SamplePoints(CellId id) const {
  Aabb box = CellBounds(id);
  std::vector<Vec3> points;
  points.reserve(9);
  for (int i = 0; i < 8; ++i) {
    points.push_back(box.Corner(i));
  }
  points.push_back(box.Center());
  return points;
}

}  // namespace hdov
