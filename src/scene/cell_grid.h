// CellGrid: the disjoint partitioning of the viewpoint space into viewing
// cells (Section 3 of the paper). Cells tile the ground plane of the scene
// at pedestrian eye heights; visibility (DoV) data is precomputed per cell
// and the walkthrough flips cell context as the viewer crosses borders.

#ifndef HDOV_SCENE_CELL_GRID_H_
#define HDOV_SCENE_CELL_GRID_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "geometry/aabb.h"

namespace hdov {

using CellId = uint32_t;
inline constexpr CellId kInvalidCell = ~static_cast<CellId>(0);

struct CellGridOptions {
  int cells_x = 16;
  int cells_y = 16;
  // Viewpoints live between these eye heights.
  double min_eye_height = 1.2;
  double max_eye_height = 2.2;
};

class CellGrid {
 public:
  // Tiles the xy-footprint of `world_bounds` with cells_x * cells_y cells.
  static Result<CellGrid> Build(const Aabb& world_bounds,
                                const CellGridOptions& options);

  uint32_t num_cells() const {
    return static_cast<uint32_t>(options_.cells_x * options_.cells_y);
  }
  const CellGridOptions& options() const { return options_; }

  // The 3D box of viewpoints belonging to cell `id`.
  Aabb CellBounds(CellId id) const;

  // Cell containing `p` (xy decides; z is clamped into the eye range), or
  // nullopt when `p` lies outside the grid footprint.
  std::optional<CellId> CellForPoint(const Vec3& p) const;

  // Like CellForPoint, but points outside the footprint are clamped to the
  // nearest border cell (walkthrough paths may brush the world edge).
  CellId ClampedCellForPoint(const Vec3& p) const;

  // Representative viewpoints used to evaluate the conservative region DoV
  // (Eq. 2: max over the cell): the 8 corners plus the center.
  std::vector<Vec3> SamplePoints(CellId id) const;

  Vec3 CellCenter(CellId id) const { return CellBounds(id).Center(); }

 private:
  CellGridOptions options_;
  Aabb footprint_;   // xy extent covered by the grid.
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
};

}  // namespace hdov

#endif  // HDOV_SCENE_CELL_GRID_H_
