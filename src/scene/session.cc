#include "scene/session.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace hdov {

namespace {

// Reflects `value` into [lo, hi] (bouncing walk off the world border).
double Reflect(double value, double lo, double hi, double* direction_sign) {
  if (value < lo) {
    *direction_sign = -*direction_sign;
    return lo + (lo - value);
  }
  if (value > hi) {
    *direction_sign = -*direction_sign;
    return hi - (value - hi);
  }
  return value;
}

}  // namespace

std::string MotionPatternName(MotionPattern pattern) {
  switch (pattern) {
    case MotionPattern::kNormalWalk:
      return "normal-walk";
    case MotionPattern::kTurnLeftRight:
      return "turn-left-right";
    case MotionPattern::kBackForward:
      return "back-forward";
  }
  return "unknown";
}

Session RecordSession(MotionPattern pattern, const Aabb& world_bounds,
                      const SessionOptions& options) {
  Session session;
  session.name = MotionPatternName(pattern);
  session.frames.reserve(options.num_frames);

  Rng rng(options.seed + static_cast<uint64_t>(pattern) * 1000003ULL);
  const double lo_x = world_bounds.min.x + options.margin;
  const double hi_x = world_bounds.max.x - options.margin;
  const double lo_y = world_bounds.min.y + options.margin;
  const double hi_y = world_bounds.max.y - options.margin;

  Vec3 pos(rng.Uniform(lo_x, hi_x), rng.Uniform(lo_y, hi_y),
           options.eye_height);
  double heading = rng.Uniform(0.0, 2.0 * M_PI);
  double turn_rate = 0.0;
  double forward_sign = 1.0;

  for (size_t frame = 0; frame < options.num_frames; ++frame) {
    switch (pattern) {
      case MotionPattern::kNormalWalk:
        // Smooth random turning: low-pass filtered noise on the heading.
        turn_rate = 0.9 * turn_rate + 0.1 * rng.Uniform(-0.15, 0.15);
        heading += turn_rate;
        forward_sign = 1.0;
        break;
      case MotionPattern::kTurnLeftRight:
        // Strong sinusoidal heading oscillation with slow forward drift.
        heading += 0.12 * std::sin(frame * 0.15) +
                   rng.Uniform(-0.02, 0.02);
        forward_sign = 0.35;  // Slow advance while turning.
        break;
      case MotionPattern::kBackForward:
        // Flip the direction of travel every ~40 frames.
        if (frame % 40 == 0 && frame > 0) {
          forward_sign = -forward_sign;
        }
        heading += rng.Uniform(-0.01, 0.01);
        break;
    }

    Vec3 dir(std::cos(heading), std::sin(heading), 0.0);
    pos += dir * (options.speed * forward_sign);
    double sign_x = 1.0;
    double sign_y = 1.0;
    pos.x = Reflect(pos.x, lo_x, hi_x, &sign_x);
    pos.y = Reflect(pos.y, lo_y, hi_y, &sign_y);
    if (sign_x < 0.0 || sign_y < 0.0) {
      // Bounced off a wall: turn around.
      heading += M_PI * 0.5 + rng.Uniform(0.0, M_PI * 0.5);
    }
    pos.z = options.eye_height;

    Viewpoint vp;
    vp.position = pos;
    // In the back-forward session the viewer keeps facing forward while
    // stepping backwards (that is what makes it I/O-heavy in the paper).
    vp.look = dir;
    session.frames.push_back(vp);
  }
  return session;
}

}  // namespace hdov
