// Walkthrough sessions: recorded viewpoint paths that are played back on
// each system under comparison, matching the paper's methodology ("we
// recorded a few walkthrough sessions and played them back"). Three motion
// patterns mirror Section 5.4: a normal walk, a turn-left-and-right walk,
// and a back-and-forward walk.

#ifndef HDOV_SCENE_SESSION_H_
#define HDOV_SCENE_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace hdov {

struct Viewpoint {
  Vec3 position;
  Vec3 look;  // Viewing direction (unit length).
};

struct Session {
  std::string name;
  std::vector<Viewpoint> frames;
};

enum class MotionPattern : uint8_t {
  kNormalWalk = 0,    // Session 1: wandering walk with gentle turns.
  kTurnLeftRight = 1, // Session 2: frequent left/right turning.
  kBackForward = 2,   // Session 3: frequent back-and-forward movement.
};

struct SessionOptions {
  size_t num_frames = 600;
  double eye_height = 1.7;
  double speed = 1.4;        // Meters per frame (brisk walk at ~1 m/frame).
  double margin = 10.0;      // Keep this far inside the world footprint.
  uint64_t seed = 7;
};

Session RecordSession(MotionPattern pattern, const Aabb& world_bounds,
                      const SessionOptions& options);

std::string MotionPatternName(MotionPattern pattern);

}  // namespace hdov

#endif  // HDOV_SCENE_SESSION_H_
