#include "scene/object.h"

#include <cstdio>

namespace hdov {

ObjectId Scene::AddObject(Object object) {
  object.id = static_cast<ObjectId>(objects_.size());
  bounds_.Extend(object.mbr);
  objects_.push_back(std::move(object));
  return objects_.back().id;
}

uint64_t Scene::TotalModelBytes() const {
  uint64_t total = 0;
  for (const Object& obj : objects_) {
    total += obj.lods.total_bytes();
  }
  return total;
}

uint64_t Scene::TotalFinestTriangles() const {
  uint64_t total = 0;
  for (const Object& obj : objects_) {
    if (!obj.lods.empty()) {
      total += obj.lods.finest().triangle_count;
    }
  }
  return total;
}

std::string Scene::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "scene: %zu objects, %.1f MB model data, %llu finest tris",
                objects_.size(),
                static_cast<double>(TotalModelBytes()) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(TotalFinestTriangles()));
  return buf;
}

}  // namespace hdov
