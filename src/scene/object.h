// Object and Scene: the virtual-environment model. An Object is a rigid
// model instance with an MBR and a LoD chain; a Scene is the full set of
// objects plus world bounds — the "dataset" every index in this library is
// built over.

#ifndef HDOV_SCENE_OBJECT_H_
#define HDOV_SCENE_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/aabb.h"
#include "simplify/lod_chain.h"

namespace hdov {

using ObjectId = uint32_t;
inline constexpr ObjectId kInvalidObject = ~static_cast<ObjectId>(0);

enum class ObjectKind : uint8_t {
  kBuilding = 0,
  kBunny = 1,
  kOther = 2,
};

struct Object {
  ObjectId id = kInvalidObject;
  ObjectKind kind = ObjectKind::kOther;
  Aabb mbr;
  LodChain lods;  // Finest first. Proxy chains carry counts/sizes only.
};

class Scene {
 public:
  Scene() = default;

  // Appends `object`, assigning it the next id. Returns the assigned id.
  ObjectId AddObject(Object object);

  const std::vector<Object>& objects() const { return objects_; }
  const Object& object(ObjectId id) const { return objects_[id]; }
  size_t size() const { return objects_.size(); }

  // World bounds (union of all object MBRs).
  const Aabb& bounds() const { return bounds_; }

  // Total logical bytes of all LoD representations: the paper's "raw
  // dataset size" (400 MB – 1.6 GB in the evaluation).
  uint64_t TotalModelBytes() const;

  // Total finest-LoD triangle count.
  uint64_t TotalFinestTriangles() const;

  std::string Summary() const;

 private:
  std::vector<Object> objects_;
  Aabb bounds_;
};

}  // namespace hdov

#endif  // HDOV_SCENE_OBJECT_H_
