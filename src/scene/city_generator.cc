#include "scene/city_generator.h"

#include <algorithm>
#include <cmath>

#include "mesh/primitives.h"

namespace hdov {

namespace {

// Mirror of MakeBuilding's tessellation: per tier, four grid walls of
// (nu x nv) quads plus a roof quad; 2 triangles per quad.
uint32_t BuildingTriangleCount(int facade_columns, int facade_rows,
                               int tiers) {
  int nu = std::max(1, facade_columns);
  int nv = std::max(1, facade_rows / std::max(1, tiers));
  return static_cast<uint32_t>(tiers) *
         static_cast<uint32_t>(4 * nu * nv * 2 + 2);
}

uint32_t BunnyTriangleCount(int subdivisions) {
  uint32_t count = 20;
  for (int i = 0; i < subdivisions; ++i) {
    count *= 4;
  }
  return count;
}

struct BlockFrame {
  double x0, y0;  // Lower corner of the block (buildable area).
  double size;
};

}  // namespace

Result<Scene> GenerateCity(const CityOptions& options) {
  if (options.blocks_x <= 0 || options.blocks_y <= 0) {
    return Status::InvalidArgument("city: block grid must be positive");
  }
  if (options.park_fraction < 0.0 || options.park_fraction > 1.0) {
    return Status::InvalidArgument("city: park_fraction out of [0, 1]");
  }

  Scene scene;
  Rng rng(options.seed);
  const double pitch = options.block_size + options.street_width;
  const double city_w = options.blocks_x * pitch - options.street_width;
  const double city_h = options.blocks_y * pitch - options.street_width;
  const Vec3 city_center(city_w / 2.0, city_h / 2.0, 0.0);
  const double downtown_radius = 0.35 * std::max(city_w, city_h);

  for (int by = 0; by < options.blocks_y; ++by) {
    for (int bx = 0; bx < options.blocks_x; ++bx) {
      BlockFrame block{bx * pitch, by * pitch, options.block_size};
      const bool is_park = rng.Bernoulli(options.park_fraction);

      if (is_park) {
        int bunnies = rng.UniformInt(options.min_bunnies_per_park,
                                     options.max_bunnies_per_park);
        for (int i = 0; i < bunnies; ++i) {
          double radius = rng.Uniform(3.0, 8.0);
          Vec3 pos(block.x0 + rng.Uniform(radius, block.size - radius),
                   block.y0 + rng.Uniform(radius, block.size - radius), 0.0);
          Object obj;
          obj.kind = ObjectKind::kBunny;
          if (options.mode == GeometryMode::kFull) {
            int subdiv = std::min(options.bunny_subdivisions, 4);
            TriangleMesh mesh = MakeBunnyBlob(subdiv, radius, &rng);
            mesh.Translate(pos);
            obj.mbr = mesh.BoundingBox();
            HDOV_ASSIGN_OR_RETURN(obj.lods,
                                  LodChain::Build(mesh, options.lod));
          } else {
            // Advance the RNG identically to full mode's noise setup so
            // both modes generate the same downstream layout.
            for (int h = 0; h < 20; ++h) {
              rng.NextUint64();
            }
            // Conservative bounds matching MakeBunnyBlob's displacement
            // (x1.25), squash (y x0.8) and vertical stretch (z x1.1).
            double r = radius * 1.25;
            obj.mbr = Aabb(Vec3(pos.x - r, pos.y - 0.8 * r, 0.0),
                           Vec3(pos.x + r, pos.y + 0.8 * r, 2.2 * r));
            obj.lods = LodChain::Proxy(
                BunnyTriangleCount(options.bunny_subdivisions), options.lod);
          }
          scene.AddObject(std::move(obj));
        }
        continue;
      }

      int buildings = rng.UniformInt(options.min_buildings_per_block,
                                     options.max_buildings_per_block);
      buildings = std::clamp(buildings, 1, 4);
      for (int i = 0; i < buildings; ++i) {
        // Up to four buildings per block, one per quadrant, jittered.
        double half = block.size / 2.0;
        double qx = block.x0 + (i % 2) * half;
        double qy = block.y0 + (i / 2) * half;
        double width = rng.Uniform(0.45, 0.8) * half;
        double depth = rng.Uniform(0.45, 0.8) * half;
        Vec3 pos(qx + half / 2.0 + rng.Uniform(-0.1, 0.1) * half,
                 qy + half / 2.0 + rng.Uniform(-0.1, 0.1) * half, 0.0);

        // Downtown effect: taller buildings near the city center.
        double dist = (pos - city_center).Length();
        double falloff = std::exp(-(dist * dist) /
                                  (2.0 * downtown_radius * downtown_radius));
        double height = options.min_building_height +
                        (options.max_building_height -
                         options.min_building_height) *
                            falloff * rng.Uniform(0.5, 1.0);
        int tiers = height > 0.6 * options.max_building_height ? 3
                    : height > 0.3 * options.max_building_height ? 2
                                                                 : 1;

        Object obj;
        obj.kind = ObjectKind::kBuilding;
        if (options.mode == GeometryMode::kFull) {
          BuildingOptions bopt;
          bopt.width = width;
          bopt.depth = depth;
          bopt.height = height;
          bopt.facade_columns = options.facade_columns;
          bopt.facade_rows = options.facade_rows;
          bopt.tiers = tiers;
          TriangleMesh mesh = MakeBuilding(bopt);
          mesh.Translate(pos);
          obj.mbr = mesh.BoundingBox();
          HDOV_ASSIGN_OR_RETURN(obj.lods, LodChain::Build(mesh, options.lod));
        } else {
          obj.mbr = Aabb(
              Vec3(pos.x - width / 2.0, pos.y - depth / 2.0, 0.0),
              Vec3(pos.x + width / 2.0, pos.y + depth / 2.0, height));
          obj.lods = LodChain::Proxy(
              BuildingTriangleCount(options.facade_columns,
                                    options.facade_rows, tiers),
              options.lod);
        }
        scene.AddObject(std::move(obj));
      }
    }
  }
  if (scene.size() == 0) {
    return Status::Internal("city: generated an empty scene");
  }
  return scene;
}

CityOptions CityOptionsForTargetBytes(uint64_t target_bytes) {
  CityOptions options;
  options.mode = GeometryMode::kProxy;

  // Probe a small city to estimate bytes per block, then scale the grid.
  CityOptions probe = options;
  probe.blocks_x = 6;
  probe.blocks_y = 6;
  Result<Scene> probe_scene = GenerateCity(probe);
  double bytes_per_block =
      probe_scene.ok()
          ? static_cast<double>(probe_scene->TotalModelBytes()) / 36.0
          : 1.0e6;
  double blocks = static_cast<double>(target_bytes) / bytes_per_block;
  int side = std::max(2, static_cast<int>(std::lround(std::sqrt(blocks))));
  options.blocks_x = side;
  options.blocks_y = side;
  return options;
}

}  // namespace hdov
