#include "rtree/quadratic_split.h"

#include <cmath>
#include <limits>

namespace hdov {

SplitResult QuadraticSplit(const std::vector<Aabb>& boxes, size_t min_fill) {
  const size_t n = boxes.size();

  // PickSeeds: the pair whose combined box wastes the most space.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double waste = Aabb::Union(boxes[i], boxes[j]).Volume() -
                     boxes[i].Volume() - boxes[j].Volume();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  SplitResult result;
  result.left.push_back(seed_a);
  result.right.push_back(seed_b);
  Aabb left_box = boxes[seed_a];
  Aabb right_box = boxes[seed_b];

  std::vector<bool> assigned(n, false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = n - 2;

  while (remaining > 0) {
    // If one group needs every remaining entry to reach min fill, assign
    // them all and stop.
    if (result.left.size() + remaining <= min_fill) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          result.left.push_back(i);
          assigned[i] = true;
        }
      }
      break;
    }
    if (result.right.size() + remaining <= min_fill) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          result.right.push_back(i);
          assigned[i] = true;
        }
      }
      break;
    }

    // PickNext: the entry with the strongest preference for one group.
    size_t best = 0;
    double best_preference = -1.0;
    double best_d_left = 0.0;
    double best_d_right = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) {
        continue;
      }
      double d_left = left_box.Enlargement(boxes[i]);
      double d_right = right_box.Enlargement(boxes[i]);
      double preference = std::fabs(d_left - d_right);
      if (preference > best_preference) {
        best_preference = preference;
        best = i;
        best_d_left = d_left;
        best_d_right = d_right;
      }
    }

    bool to_left;
    if (best_d_left != best_d_right) {
      to_left = best_d_left < best_d_right;
    } else if (left_box.Volume() != right_box.Volume()) {
      to_left = left_box.Volume() < right_box.Volume();
    } else {
      to_left = result.left.size() <= result.right.size();
    }
    if (to_left) {
      result.left.push_back(best);
      left_box.Extend(boxes[best]);
    } else {
      result.right.push_back(best);
      right_box.Extend(boxes[best]);
    }
    assigned[best] = true;
    --remaining;
  }
  return result;
}

}  // namespace hdov
