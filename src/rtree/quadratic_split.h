// Guttman's quadratic node split — the classic O(M^2) split the original
// R-tree paper proposes. Provided alongside the Ang–Tan linear split as an
// ablation: the paper's prototype uses the linear split "to minimize the
// overlap of the bounding boxes", and bench_micro_components quantifies
// what that choice buys.

#ifndef HDOV_RTREE_QUADRATIC_SPLIT_H_
#define HDOV_RTREE_QUADRATIC_SPLIT_H_

#include "rtree/linear_split.h"

namespace hdov {

// Splits `boxes` (at least 2 entries) into two groups, each with at least
// `min_fill` entries.
SplitResult QuadraticSplit(const std::vector<Aabb>& boxes, size_t min_fill);

}  // namespace hdov

#endif  // HDOV_RTREE_QUADRATIC_SPLIT_H_
