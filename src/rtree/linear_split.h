// Ang–Tan linear node split ("New Linear Node Splitting Algorithm for
// R-trees", SSD'97) — the split policy the paper's prototype uses to
// "minimize the overlap of the bounding boxes".
//
// For each axis, every entry is assigned to the side of the node box whose
// border it is nearer to; the split axis is the one with the most balanced
// assignment, with ties broken by the overlap volume of the two resulting
// boxes, then by total coverage.

#ifndef HDOV_RTREE_LINEAR_SPLIT_H_
#define HDOV_RTREE_LINEAR_SPLIT_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "geometry/aabb.h"

namespace hdov {

struct SplitResult {
  std::vector<size_t> left;   // Indices into the input entry list.
  std::vector<size_t> right;
};

// Splits `boxes` (at least 2 entries) into two groups, each with at least
// `min_fill` entries (min_fill <= boxes.size() / 2).
SplitResult LinearSplit(const std::vector<Aabb>& boxes, size_t min_fill);

}  // namespace hdov

#endif  // HDOV_RTREE_LINEAR_SPLIT_H_
