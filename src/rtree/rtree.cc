#include "rtree/rtree.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

#include <cmath>

#include "common/coding.h"
#include "rtree/linear_split.h"
#include "rtree/quadratic_split.h"

namespace hdov {

RTree::RTree(const RTreeOptions& options) : options_(options) {
  assert(options_.max_entries >= 4);
  assert(options_.min_entries >= 1);
  assert(options_.min_entries <= options_.max_entries / 2);
  root_ = AllocateNode(/*is_leaf=*/true, /*level=*/0);
}

size_t RTree::AllocateNode(bool is_leaf, int level) {
  size_t index;
  if (!free_nodes_.empty()) {
    index = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[index] = Node();
  } else {
    index = nodes_.size();
    nodes_.emplace_back();
  }
  nodes_[index].is_leaf = is_leaf;
  nodes_[index].level = level;
  return index;
}

size_t RTree::ChooseSubtree(size_t node_index, const Aabb& mbr,
                            int /*target_level*/) {
  const Node& node = nodes_[node_index];
  size_t best = 0;
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const Aabb& box = node.entries[i].mbr;
    double enlargement = box.Enlargement(mbr);
    double volume = box.Volume();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && volume < best_volume)) {
      best_enlargement = enlargement;
      best_volume = volume;
      best = i;
    }
  }
  return best;
}

size_t RTree::SplitNode(size_t node_index) {
  Node& node = nodes_[node_index];
  std::vector<Aabb> boxes;
  boxes.reserve(node.entries.size());
  for (const Entry& e : node.entries) {
    boxes.push_back(e.mbr);
  }
  SplitResult split = options_.split == SplitAlgorithm::kQuadratic
                          ? QuadraticSplit(boxes, options_.min_entries)
                          : LinearSplit(boxes, options_.min_entries);

  size_t sibling_index = AllocateNode(node.is_leaf, node.level);
  // NOTE: AllocateNode may reallocate nodes_, invalidating `node`.
  Node& original = nodes_[node_index];
  Node& sibling = nodes_[sibling_index];

  std::vector<Entry> left_entries;
  left_entries.reserve(split.left.size());
  for (size_t i : split.left) {
    left_entries.push_back(original.entries[i]);
  }
  for (size_t i : split.right) {
    sibling.entries.push_back(original.entries[i]);
  }
  original.entries = std::move(left_entries);
  return sibling_index;
}

void RTree::InsertAtLevel(const Entry& entry, int target_level) {
  // Descend to the target level, recording (node, entry-slot) pairs.
  struct PathStep {
    size_t node;
    size_t entry_slot;  // Slot in `node` pointing at the next step.
  };
  std::vector<PathStep> path;
  size_t current = root_;
  while (nodes_[current].level > target_level) {
    size_t slot = ChooseSubtree(current, entry.mbr, target_level);
    path.push_back({current, slot});
    current = static_cast<size_t>(nodes_[current].entries[slot].payload);
  }

  nodes_[current].entries.push_back(entry);

  // Walk back up: refresh covering boxes and split overflowing nodes.
  size_t pending_sibling = static_cast<size_t>(-1);
  if (nodes_[current].entries.size() > options_.max_entries) {
    pending_sibling = SplitNode(current);
  }
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Node& parent = nodes_[it->node];
    parent.entries[it->entry_slot].mbr = NodeBox(
        static_cast<size_t>(parent.entries[it->entry_slot].payload));
    if (pending_sibling != static_cast<size_t>(-1)) {
      Entry sibling_entry;
      sibling_entry.mbr = NodeBox(pending_sibling);
      sibling_entry.payload = pending_sibling;
      parent.entries.push_back(sibling_entry);
      pending_sibling = static_cast<size_t>(-1);
    }
    if (parent.entries.size() > options_.max_entries) {
      pending_sibling = SplitNode(it->node);
    }
  }

  if (pending_sibling != static_cast<size_t>(-1)) {
    // The root itself split: grow the tree by one level.
    size_t new_root =
        AllocateNode(/*is_leaf=*/false, nodes_[root_].level + 1);
    Entry left;
    left.mbr = NodeBox(root_);
    left.payload = root_;
    Entry right;
    right.mbr = NodeBox(pending_sibling);
    right.payload = pending_sibling;
    nodes_[new_root].entries.push_back(left);
    nodes_[new_root].entries.push_back(right);
    root_ = new_root;
  }
}

namespace {

// Chunks `count` items into groups of at most `max_size`, rebalancing the
// final two groups so that every group has at least `min_size` items
// (requires min_size <= max_size / 2). Returns group sizes.
std::vector<size_t> ChunkSizes(size_t count, size_t max_size,
                               size_t min_size) {
  std::vector<size_t> sizes;
  if (count == 0) {
    return sizes;
  }
  size_t full = count / max_size;
  size_t rest = count % max_size;
  sizes.assign(full, max_size);
  if (rest > 0) {
    if (!sizes.empty() && rest < min_size) {
      // Borrow from the previous group so the tail reaches min fill.
      size_t borrow = min_size - rest;
      sizes.back() -= borrow;
      rest += borrow;
    }
    sizes.push_back(rest);
  }
  return sizes;
}

}  // namespace

Result<RTree> RTree::BulkLoad(
    const std::vector<std::pair<Aabb, uint64_t>>& entries,
    const RTreeOptions& options) {
  RTree tree(options);
  if (entries.empty()) {
    return tree;
  }
  for (const auto& [mbr, id] : entries) {
    if (mbr.IsEmpty()) {
      return Status::InvalidArgument("rtree bulk load: empty MBR");
    }
  }
  const size_t n = entries.size();
  const size_t M = options.max_entries;

  // Sort-tile-recursive ordering of the leaf entries: slabs along x, runs
  // along y within each slab, z order within each run.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  auto center = [&](size_t i) { return entries[i].first.Center(); };
  const size_t num_leaves = (n + M - 1) / M;
  const auto slabs = static_cast<size_t>(std::max(
      1.0, std::ceil(std::cbrt(static_cast<double>(num_leaves)))));
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return center(a).x < center(b).x;
  });
  const size_t slab_size = (n + slabs - 1) / slabs;
  for (size_t s = 0; s * slab_size < n; ++s) {
    auto begin = order.begin() + static_cast<ptrdiff_t>(s * slab_size);
    auto end = order.begin() +
               static_cast<ptrdiff_t>(std::min(n, (s + 1) * slab_size));
    std::sort(begin, end, [&](size_t a, size_t b) {
      return center(a).y < center(b).y;
    });
    const size_t run_size =
        (static_cast<size_t>(end - begin) + slabs - 1) / slabs;
    for (size_t r = 0; begin + static_cast<ptrdiff_t>(r * run_size) < end;
         ++r) {
      auto run_begin = begin + static_cast<ptrdiff_t>(r * run_size);
      auto run_end = std::min(
          end, begin + static_cast<ptrdiff_t>((r + 1) * run_size));
      std::sort(run_begin, run_end, [&](size_t a, size_t b) {
        return center(a).z < center(b).z;
      });
    }
  }

  // Pack the leaf level.
  tree.nodes_.clear();
  tree.free_nodes_.clear();
  std::vector<size_t> current_level;  // Node indices of the level built.
  {
    size_t pos = 0;
    for (size_t size : ChunkSizes(n, M, options.min_entries)) {
      size_t node_index = tree.AllocateNode(/*is_leaf=*/true, /*level=*/0);
      Node& node = tree.nodes_[node_index];
      node.entries.reserve(size);
      for (size_t k = 0; k < size; ++k) {
        const auto& [mbr, id] = entries[order[pos++]];
        node.entries.push_back(Entry{mbr, id});
      }
      current_level.push_back(node_index);
    }
  }

  // Pack upper levels over the (already spatially coherent) child order.
  int level = 1;
  while (current_level.size() > 1) {
    std::vector<size_t> next_level;
    size_t pos = 0;
    for (size_t size :
         ChunkSizes(current_level.size(), M, options.min_entries)) {
      size_t node_index = tree.AllocateNode(/*is_leaf=*/false, level);
      Node& node = tree.nodes_[node_index];
      node.entries.reserve(size);
      for (size_t k = 0; k < size; ++k) {
        size_t child = current_level[pos++];
        node.entries.push_back(
            Entry{tree.nodes_[child].BoundingBox(), child});
      }
      next_level.push_back(node_index);
    }
    current_level = std::move(next_level);
    ++level;
  }
  tree.root_ = current_level.front();
  tree.num_objects_ = n;
  HDOV_RETURN_IF_ERROR(tree.CheckInvariants());
  return tree;
}

Status RTree::Insert(const Aabb& mbr, uint64_t object_id) {
  if (mbr.IsEmpty()) {
    return Status::InvalidArgument("rtree: cannot insert an empty MBR");
  }
  Entry entry;
  entry.mbr = mbr;
  entry.payload = object_id;
  InsertAtLevel(entry, /*target_level=*/0);
  ++num_objects_;
  return Status::OK();
}

Status RTree::Delete(const Aabb& mbr, uint64_t object_id) {
  // Find the leaf holding the entry (DFS over overlapping branches).
  struct Frame {
    size_t node;
    std::vector<size_t> path;  // Node indices from root to `node`'s parent.
  };
  std::vector<Frame> stack;
  stack.push_back({root_, {}});
  size_t found_leaf = static_cast<size_t>(-1);
  std::vector<size_t> found_path;
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const Node& node = nodes_[frame.node];
    if (node.is_leaf) {
      for (const Entry& e : node.entries) {
        if (e.payload == object_id && e.mbr == mbr) {
          found_leaf = frame.node;
          found_path = frame.path;
          break;
        }
      }
      if (found_leaf != static_cast<size_t>(-1)) {
        break;
      }
      continue;
    }
    for (const Entry& e : node.entries) {
      if (e.mbr.Intersects(mbr)) {
        Frame child;
        child.node = static_cast<size_t>(e.payload);
        child.path = frame.path;
        child.path.push_back(frame.node);
        stack.push_back(std::move(child));
      }
    }
  }
  if (found_leaf == static_cast<size_t>(-1)) {
    return Status::NotFound("rtree: entry not present");
  }

  Node& leaf = nodes_[found_leaf];
  leaf.entries.erase(
      std::find_if(leaf.entries.begin(), leaf.entries.end(),
                   [&](const Entry& e) {
                     return e.payload == object_id && e.mbr == mbr;
                   }));
  --num_objects_;

  // CondenseTree: walk up, dropping underfull nodes and collecting their
  // entries for reinsertion at the appropriate levels.
  std::vector<std::pair<Entry, int>> orphans;
  size_t current = found_leaf;
  for (auto it = found_path.rbegin(); it != found_path.rend(); ++it) {
    Node& parent = nodes_[*it];
    size_t slot = 0;
    while (slot < parent.entries.size() &&
           static_cast<size_t>(parent.entries[slot].payload) != current) {
      ++slot;
    }
    assert(slot < parent.entries.size());
    Node& child = nodes_[current];
    if (child.entries.size() < options_.min_entries) {
      for (const Entry& e : child.entries) {
        orphans.emplace_back(e, child.level);
      }
      parent.entries.erase(parent.entries.begin() +
                           static_cast<ptrdiff_t>(slot));
      free_nodes_.push_back(current);
    } else {
      parent.entries[slot].mbr = NodeBox(current);
    }
    current = *it;
  }

  // Shrink the tree when the root became a trivial internal node.
  while (!nodes_[root_].is_leaf && nodes_[root_].entries.size() == 1) {
    size_t old_root = root_;
    root_ = static_cast<size_t>(nodes_[root_].entries[0].payload);
    free_nodes_.push_back(old_root);
  }
  if (!nodes_[root_].is_leaf && nodes_[root_].entries.empty()) {
    nodes_[root_].is_leaf = true;
    nodes_[root_].level = 0;
  }

  for (const auto& [entry, level] : orphans) {
    int reinsert_level = std::min(level, nodes_[root_].level);
    InsertAtLevel(entry, reinsert_level);
  }
  return Status::OK();
}

void RTree::WindowQuery(const Aabb& window,
                        std::vector<uint64_t>* results) const {
  std::vector<Entry> entries;
  WindowQueryEntries(window, &entries);
  results->clear();
  results->reserve(entries.size());
  for (const Entry& e : entries) {
    results->push_back(e.payload);
  }
}

void RTree::WindowQueryEntries(const Aabb& window,
                               std::vector<Entry>* results) const {
  results->clear();
  if (num_objects_ == 0) {
    return;
  }
  std::vector<size_t> stack = {root_};
  while (!stack.empty()) {
    size_t index = stack.back();
    stack.pop_back();
    const Node& node = nodes_[index];
    for (const Entry& e : node.entries) {
      if (!e.mbr.Intersects(window)) {
        continue;
      }
      if (node.is_leaf) {
        results->push_back(e);
      } else {
        stack.push_back(static_cast<size_t>(e.payload));
      }
    }
  }
}

size_t RTree::num_nodes() const {
  size_t count = 0;
  VisitDepthFirst([&count](size_t, const Node&) { ++count; });
  return count;
}

int RTree::height() const { return nodes_[root_].level + 1; }

void RTree::VisitDepthFirst(
    const std::function<void(size_t, const Node&)>& visitor) const {
  std::vector<size_t> stack = {root_};
  while (!stack.empty()) {
    size_t index = stack.back();
    stack.pop_back();
    const Node& node = nodes_[index];
    visitor(index, node);
    if (!node.is_leaf) {
      // Push children in reverse so they are visited in entry order.
      for (auto it = node.entries.rbegin(); it != node.entries.rend(); ++it) {
        stack.push_back(static_cast<size_t>(it->payload));
      }
    }
  }
}

Status RTree::CheckInvariants() const {
  Status status = Status::OK();
  size_t seen_objects = 0;
  std::vector<size_t> stack = {root_};
  while (!stack.empty() && status.ok()) {
    size_t index = stack.back();
    stack.pop_back();
    const Node& node = nodes_[index];
    if (index != root_ && node.entries.size() < options_.min_entries) {
      return Status::Internal("rtree: underfull non-root node");
    }
    if (node.entries.size() > options_.max_entries) {
      return Status::Internal("rtree: overfull node");
    }
    if (node.is_leaf) {
      if (node.level != 0) {
        return Status::Internal("rtree: leaf with nonzero level");
      }
      seen_objects += node.entries.size();
      continue;
    }
    for (const Entry& e : node.entries) {
      size_t child = static_cast<size_t>(e.payload);
      if (child >= nodes_.size()) {
        return Status::Internal("rtree: child index out of range");
      }
      if (nodes_[child].level != node.level - 1) {
        return Status::Internal("rtree: child level mismatch");
      }
      if (!(e.mbr == nodes_[child].BoundingBox())) {
        return Status::Internal("rtree: stale covering box");
      }
      stack.push_back(child);
    }
  }
  if (seen_objects != num_objects_) {
    return Status::Internal("rtree: object count mismatch");
  }
  return status;
}

// ---------------------------------------------------------------------------
// PackedRTree
// ---------------------------------------------------------------------------

std::string PackedRTree::SerializeNode(const RTree::Node& node,
                                       const std::vector<PageId>& child_pages) {
  std::string out;
  EncodeFixed32(&out, node.is_leaf ? 1 : 0);
  EncodeFixed32(&out, static_cast<uint32_t>(node.entries.size()));
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const RTree::Entry& e = node.entries[i];
    EncodeDouble(&out, e.mbr.min.x);
    EncodeDouble(&out, e.mbr.min.y);
    EncodeDouble(&out, e.mbr.min.z);
    EncodeDouble(&out, e.mbr.max.x);
    EncodeDouble(&out, e.mbr.max.y);
    EncodeDouble(&out, e.mbr.max.z);
    EncodeFixed64(&out, node.is_leaf ? e.payload : child_pages[i]);
  }
  return out;
}

Result<PackedRTree> PackedRTree::Pack(const RTree& tree, PageDevice* device) {
  // Assign pages in depth-first order (children after parents) so that
  // subtree reads are mostly sequential.
  std::vector<size_t> dfs_order;
  tree.VisitDepthFirst(
      [&dfs_order](size_t index, const RTree::Node&) {
        dfs_order.push_back(index);
      });
  std::unordered_map<size_t, PageId> node_page;
  for (size_t index : dfs_order) {
    node_page[index] = device->Allocate();
  }

  for (size_t index : dfs_order) {
    const RTree::Node& node = tree.node(index);
    std::vector<PageId> child_pages;
    if (!node.is_leaf) {
      child_pages.reserve(node.entries.size());
      for (const RTree::Entry& e : node.entries) {
        child_pages.push_back(node_page.at(static_cast<size_t>(e.payload)));
      }
    }
    std::string payload = SerializeNode(node, child_pages);
    if (payload.size() > device->page_size()) {
      return Status::InvalidArgument(
          "packed rtree: node does not fit in a page; lower max_entries");
    }
    HDOV_RETURN_IF_ERROR(device->Write(node_page.at(index), payload));
  }
  return PackedRTree(device, node_page.at(tree.root_index()),
                     dfs_order.size());
}

Status PackedRTree::ReadNode(PageId page, PackedNode* node) const {
  std::string data;
  HDOV_RETURN_IF_ERROR(device_->Read(page, &data));
  Decoder decoder(data);
  uint32_t is_leaf = 0;
  uint32_t count = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&is_leaf));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&count));
  node->is_leaf = is_leaf != 0;
  node->entries.clear();
  node->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PackedEntry e;
    HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&e.mbr.min.x));
    HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&e.mbr.min.y));
    HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&e.mbr.min.z));
    HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&e.mbr.max.x));
    HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&e.mbr.max.y));
    HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&e.mbr.max.z));
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&e.payload));
    node->entries.push_back(e);
  }
  return Status::OK();
}

Status PackedRTree::WindowQuery(const Aabb& window,
                                std::vector<uint64_t>* results) const {
  results->clear();
  std::vector<PageId> stack = {root_page_};
  PackedNode node;
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    HDOV_RETURN_IF_ERROR(ReadNode(page, &node));
    for (const PackedEntry& e : node.entries) {
      if (!e.mbr.Intersects(window)) {
        continue;
      }
      if (node.is_leaf) {
        results->push_back(e.payload);
      } else {
        stack.push_back(e.payload);
      }
    }
  }
  return Status::OK();
}

}  // namespace hdov
