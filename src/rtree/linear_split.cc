#include "rtree/linear_split.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hdov {

namespace {

struct AxisCandidate {
  std::vector<size_t> low;
  std::vector<size_t> high;
  size_t imbalance = 0;     // max(|low|, |high|) — smaller is better.
  double overlap = 0.0;     // Overlap volume of the two group boxes.
  double coverage = 0.0;    // Sum of the two group volumes.
};

Aabb GroupBox(const std::vector<Aabb>& boxes, const std::vector<size_t>& idx) {
  Aabb box;
  for (size_t i : idx) {
    box.Extend(boxes[i]);
  }
  return box;
}

// Rebalances a candidate so both sides have at least `min_fill` entries by
// moving over the entries whose centers are nearest the other group.
void EnforceMinFill(const std::vector<Aabb>& boxes, size_t min_fill,
                    AxisCandidate* cand) {
  auto donate = [&](std::vector<size_t>* from, std::vector<size_t>* to) {
    Aabb to_box = GroupBox(boxes, *to);
    while (to->size() < min_fill && from->size() > min_fill) {
      // Pick the donor entry with the smallest enlargement of `to_box`.
      size_t best_pos = 0;
      double best_cost = std::numeric_limits<double>::infinity();
      for (size_t pos = 0; pos < from->size(); ++pos) {
        double cost = to_box.Enlargement(boxes[(*from)[pos]]);
        if (cost < best_cost) {
          best_cost = cost;
          best_pos = pos;
        }
      }
      size_t moved = (*from)[best_pos];
      from->erase(from->begin() + static_cast<ptrdiff_t>(best_pos));
      to->push_back(moved);
      to_box.Extend(boxes[moved]);
    }
  };
  donate(&cand->low, &cand->high);
  donate(&cand->high, &cand->low);
}

}  // namespace

SplitResult LinearSplit(const std::vector<Aabb>& boxes, size_t min_fill) {
  const size_t n = boxes.size();
  Aabb node_box = GroupBox(
      boxes, [&] {
        std::vector<size_t> all(n);
        for (size_t i = 0; i < n; ++i) {
          all[i] = i;
        }
        return all;
      }());

  const double node_lo[3] = {node_box.min.x, node_box.min.y, node_box.min.z};
  const double node_hi[3] = {node_box.max.x, node_box.max.y, node_box.max.z};

  AxisCandidate best;
  bool have_best = false;
  for (int axis = 0; axis < 3; ++axis) {
    AxisCandidate cand;
    for (size_t i = 0; i < n; ++i) {
      const Aabb& b = boxes[i];
      const double lo[3] = {b.min.x, b.min.y, b.min.z};
      const double hi[3] = {b.max.x, b.max.y, b.max.z};
      const double to_low = lo[axis] - node_lo[axis];
      const double to_high = node_hi[axis] - hi[axis];
      if (to_low < to_high) {
        cand.low.push_back(i);
      } else {
        cand.high.push_back(i);
      }
    }
    // Degenerate assignment (all on one side): fall back to a sorted-by-
    // center halving along this axis.
    if (cand.low.empty() || cand.high.empty()) {
      std::vector<size_t> order(n);
      for (size_t i = 0; i < n; ++i) {
        order[i] = i;
      }
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const Vec3 ca = boxes[a].Center();
        const Vec3 cb = boxes[b].Center();
        const double va = axis == 0 ? ca.x : axis == 1 ? ca.y : ca.z;
        const double vb = axis == 0 ? cb.x : axis == 1 ? cb.y : cb.z;
        return va < vb;
      });
      cand.low.assign(order.begin(),
                      order.begin() + static_cast<ptrdiff_t>(n / 2));
      cand.high.assign(order.begin() + static_cast<ptrdiff_t>(n / 2),
                       order.end());
    }
    EnforceMinFill(boxes, min_fill, &cand);

    cand.imbalance = std::max(cand.low.size(), cand.high.size());
    Aabb low_box = GroupBox(boxes, cand.low);
    Aabb high_box = GroupBox(boxes, cand.high);
    cand.overlap = low_box.OverlapVolume(high_box);
    cand.coverage = low_box.Volume() + high_box.Volume();

    if (!have_best || cand.imbalance < best.imbalance ||
        (cand.imbalance == best.imbalance &&
         (cand.overlap < best.overlap ||
          (cand.overlap == best.overlap &&
           cand.coverage < best.coverage)))) {
      best = std::move(cand);
      have_best = true;
    }
  }

  SplitResult result;
  result.left = std::move(best.low);
  result.right = std::move(best.high);
  return result;
}

}  // namespace hdov
