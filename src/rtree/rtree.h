// RTree: a Guttman R-tree with the Ang–Tan linear split, used (a) as the
// spatial backbone the HDoV-tree is built on and (b) as the index of the
// REVIEW baseline walkthrough system.
//
// The tree is built in memory; PackedRTree serializes it onto a PageDevice
// (one node per page, DFS order) for billed, disk-resident querying.

#ifndef HDOV_RTREE_RTREE_H_
#define HDOV_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geometry/aabb.h"
#include "storage/page_device.h"

namespace hdov {

enum class SplitAlgorithm : uint8_t {
  kAngTanLinear = 0,  // SSD'97 linear split (the paper's choice).
  kQuadratic = 1,     // Guttman's original quadratic split.
};

struct RTreeOptions {
  // Maximum entries per node (fanout M). 32 entries of 56 bytes plus the
  // header fit comfortably in a 4 KiB page.
  size_t max_entries = 32;
  // Minimum entries for non-root nodes (the R-tree `m`); must be
  // <= max_entries / 2.
  size_t min_entries = 13;
  SplitAlgorithm split = SplitAlgorithm::kAngTanLinear;
};

class RTree {
 public:
  struct Entry {
    Aabb mbr;
    // Leaf: the object id. Internal: the child node index.
    uint64_t payload = 0;
  };

  struct Node {
    bool is_leaf = true;
    int level = 0;  // 0 at leaves, increasing toward the root.
    std::vector<Entry> entries;

    Aabb BoundingBox() const {
      Aabb box;
      for (const Entry& e : entries) {
        box.Extend(e.mbr);
      }
      return box;
    }
  };

  explicit RTree(const RTreeOptions& options = RTreeOptions());

  // Sort-tile-recursive bulk loading: builds a packed tree over the given
  // (mbr, object id) entries in one pass. Produces tighter, fuller nodes
  // than repeated insertion; the resulting tree supports all the usual
  // operations (including further inserts and deletes).
  static Result<RTree> BulkLoad(
      const std::vector<std::pair<Aabb, uint64_t>>& entries,
      const RTreeOptions& options = RTreeOptions());

  const RTreeOptions& options() const { return options_; }

  Status Insert(const Aabb& mbr, uint64_t object_id);

  // Removes the entry with exactly this (mbr, object_id); NotFound when
  // absent. Underfull nodes are condensed and their entries reinserted
  // (Guttman's CondenseTree).
  Status Delete(const Aabb& mbr, uint64_t object_id);

  // All object ids whose MBR intersects `window`.
  void WindowQuery(const Aabb& window,
                   std::vector<uint64_t>* results) const;

  // Window query that also reports (mbr, id) pairs.
  void WindowQueryEntries(const Aabb& window,
                          std::vector<Entry>* results) const;

  size_t size() const { return num_objects_; }
  bool empty() const { return num_objects_ == 0; }
  size_t num_nodes() const;
  int height() const;  // 1 for a tree that is just a root leaf.

  size_t root_index() const { return root_; }
  const Node& node(size_t index) const { return nodes_[index]; }

  // Depth-first, parents before children. Visitor gets (node_index, node).
  void VisitDepthFirst(
      const std::function<void(size_t, const Node&)>& visitor) const;

  // Structural invariants (entry counts, MBR containment, level
  // consistency); used by tests and debug builds.
  Status CheckInvariants() const;

 private:
  size_t AllocateNode(bool is_leaf, int level);
  size_t ChooseSubtree(size_t node_index, const Aabb& mbr, int target_level);
  // Splits `node_index`, returning the new sibling's index.
  size_t SplitNode(size_t node_index);
  void InsertAtLevel(const Entry& entry, int target_level);
  Aabb NodeBox(size_t node_index) const { return nodes_[node_index].BoundingBox(); }
  void AdjustPathBoxes(const std::vector<size_t>& path);

  RTreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<size_t> free_nodes_;
  size_t root_;
  size_t num_objects_ = 0;
};

// PackedRTree: the on-disk image of an RTree. Node pages are laid out in
// depth-first order so subtree scans tend to be sequential.
class PackedRTree {
 public:
  // Serializes `tree` onto `device`. The tree must outlive nothing — the
  // packed image is self-contained.
  static Result<PackedRTree> Pack(const RTree& tree, PageDevice* device);

  struct PackedEntry {
    Aabb mbr;
    uint64_t payload;  // Leaf: object id. Internal: child PageId.
  };
  struct PackedNode {
    bool is_leaf = true;
    std::vector<PackedEntry> entries;
  };

  PageId root_page() const { return root_page_; }
  uint64_t num_node_pages() const { return num_node_pages_; }

  // Reads and decodes one node (billed on the device).
  Status ReadNode(PageId page, PackedNode* node) const;

  // Disk-resident window query; returns object ids and counts node I/O on
  // the device's stats.
  Status WindowQuery(const Aabb& window, std::vector<uint64_t>* results) const;

  static std::string SerializeNode(const RTree::Node& node,
                                   const std::vector<PageId>& child_pages);

 private:
  PackedRTree(PageDevice* device, PageId root_page, uint64_t num_pages)
      : device_(device), root_page_(root_page), num_node_pages_(num_pages) {}

  PageDevice* device_;
  PageId root_page_;
  uint64_t num_node_pages_;
};

}  // namespace hdov

#endif  // HDOV_RTREE_RTREE_H_
