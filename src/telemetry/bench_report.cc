#include "telemetry/bench_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "telemetry/telemetry.h"

namespace hdov::telemetry {

TimingStats TimingStats::From(std::vector<double> samples) {
  TimingStats stats;
  if (samples.empty()) {
    return stats;
  }
  std::sort(samples.begin(), samples.end());
  stats.count = samples.size();
  stats.min = samples.front();
  double sum = 0.0;
  for (double s : samples) {
    sum += s;
  }
  stats.mean = sum / static_cast<double>(samples.size());
  if (samples.size() < 2) {
    // One repeat: every order statistic IS the sample; the interpolation
    // below would degenerate (pos = 0 for all q) but make that explicit
    // rather than incidental.
    stats.median = samples.front();
    stats.p95 = samples.front();
    return stats;
  }
  const auto percentile = [&samples](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double fraction = pos - static_cast<double>(lo);
    return samples[lo] + fraction * (samples[hi] - samples[lo]);
  };
  stats.median = percentile(0.5);
  stats.p95 = percentile(0.95);
  return stats;
}

ReportSeries* BenchReport::AddSeries(const std::string& name,
                                     std::vector<SeriesColumn> columns) {
  for (const auto& s : series_) {
    if (s->name == name) {
      return s.get();
    }
  }
  series_.push_back(std::make_unique<ReportSeries>(
      ReportSeries{name, std::move(columns), {}}));
  return series_.back().get();
}

void BenchReport::RecordTiming(const std::string& name, double ms) {
  for (Timing& t : timings_) {
    if (t.name == name) {
      t.samples.push_back(ms);
      return;
    }
  }
  timings_.push_back(Timing{name, {ms}});
}

void BenchReport::CaptureFrom(const Telemetry& t) {
  metrics_ = t.metrics().Snapshot();
  frame_totals_.clear();
  for (const FrameRecord& f : t.frames()) {
    FrameTotals* totals = nullptr;
    for (FrameTotals& existing : frame_totals_) {
      if (existing.system == f.system && existing.kind == f.kind) {
        totals = &existing;
        break;
      }
    }
    if (totals == nullptr) {
      frame_totals_.push_back(FrameTotals{});
      totals = &frame_totals_.back();
      totals->system = f.system;
      totals->kind = f.kind;
    }
    ++totals->frames;
    totals->frame_time_ms += f.frame_time_ms;
    totals->query_time_ms += f.query_time_ms;
    totals->io_pages += f.io_pages;
    totals->light_io_pages += f.light_io_pages;
    totals->index_bytes_read += f.index_bytes_read;
    totals->store_bytes_read += f.store_bytes_read;
    totals->model_bytes_read += f.model_bytes_read;
    totals->nodes_visited += f.nodes_visited;
    totals->vpages_fetched += f.vpages_fetched;
    totals->hidden_pruned += f.hidden_pruned;
    totals->internal_terminations += f.internal_terminations;
    totals->rendered_triangles += f.rendered_triangles;
    totals->models_fetched += f.models_fetched;
  }
}

std::string BenchReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("version").Number(uint64_t{1});
  w.Key("binary").String(binary_);
  w.Key("title").String(title_);
  w.Key("scale").String(scale_);
  w.Key("environment").BeginObject();
  w.Key("git_revision").String(env_.git_revision);
  w.Key("cpu_count").Number(static_cast<uint64_t>(env_.cpu_count));
  w.Key("threads").Number(static_cast<uint64_t>(env_.threads));
  w.EndObject();

  w.Key("series").BeginArray();
  for (const auto& series_ptr : series_) {
    const ReportSeries& s = *series_ptr;
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("columns").BeginArray();
    for (const SeriesColumn& c : s.columns) {
      w.BeginObject();
      w.Key("name").String(c.name);
      w.Key("wall").Bool(c.wall);
      w.EndObject();
    }
    w.EndArray();
    w.Key("rows").BeginArray();
    for (const SeriesRow& row : s.rows) {
      w.BeginObject();
      w.Key("label").String(row.label);
      w.Key("values").BeginArray();
      for (double v : row.values) {
        w.Number(v);
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.Key("timings").BeginArray();
  for (const Timing& t : timings_) {
    const TimingStats stats = TimingStats::From(t.samples);
    w.BeginObject();
    w.Key("name").String(t.name);
    w.Key("count").Number(static_cast<uint64_t>(stats.count));
    w.Key("min_ms").Number(stats.min);
    w.Key("mean_ms").Number(stats.mean);
    w.Key("median_ms").Number(stats.median);
    w.Key("p95_ms").Number(stats.p95);
    w.EndObject();
  }
  w.EndArray();

  w.Key("metrics").Raw(metrics_.ToJson());

  w.Key("frame_totals").BeginArray();
  for (const FrameTotals& t : frame_totals_) {
    w.BeginObject();
    w.Key("system").String(t.system);
    w.Key("kind").String(t.kind);
    w.Key("frames").Number(t.frames);
    w.Key("frame_time_ms").Number(t.frame_time_ms);
    w.Key("query_time_ms").Number(t.query_time_ms);
    w.Key("io_pages").Number(t.io_pages);
    w.Key("light_io_pages").Number(t.light_io_pages);
    w.Key("index_bytes_read").Number(t.index_bytes_read);
    w.Key("store_bytes_read").Number(t.store_bytes_read);
    w.Key("model_bytes_read").Number(t.model_bytes_read);
    w.Key("nodes_visited").Number(t.nodes_visited);
    w.Key("vpages_fetched").Number(t.vpages_fetched);
    w.Key("hidden_pruned").Number(t.hidden_pruned);
    w.Key("internal_terminations").Number(t.internal_terminations);
    w.Key("rendered_triangles").Number(t.rendered_triangles);
    w.Key("models_fetched").Number(t.models_fetched);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

Status BenchReport::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("bench report: cannot open " + path);
  }
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.put('\n');
  if (!out) {
    return Status::IoError("bench report: write to " + path + " failed");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// CompareReports.

namespace {

using Severity = CompareFinding::Severity;

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

const std::string* FindString(const JsonValue& doc, std::string_view key) {
  const JsonValue* v = doc.Find(key);
  return v != nullptr && v->is_string() ? &v->string : nullptr;
}

// Exact structural equality: numbers bit-compare after the shared %.12g
// round-trip, strings/bools literal, arrays elementwise.
bool ExactlyEqual(const JsonValue& a, const JsonValue& b) {
  if (a.type != b.type) {
    return false;
  }
  switch (a.type) {
    case JsonValue::Type::kNull:
      return true;
    case JsonValue::Type::kBool:
      return a.boolean == b.boolean;
    case JsonValue::Type::kNumber:
      return a.number == b.number;
    case JsonValue::Type::kString:
      return a.string == b.string;
    case JsonValue::Type::kArray:
      if (a.items.size() != b.items.size()) {
        return false;
      }
      for (size_t i = 0; i < a.items.size(); ++i) {
        if (!ExactlyEqual(a.items[i], b.items[i])) {
          return false;
        }
      }
      return true;
    case JsonValue::Type::kObject:
      if (a.members.size() != b.members.size()) {
        return false;
      }
      for (size_t i = 0; i < a.members.size(); ++i) {
        if (a.members[i].first != b.members[i].first ||
            !ExactlyEqual(a.members[i].second, b.members[i].second)) {
          return false;
        }
      }
      return true;
  }
  return false;
}

std::string DescribeValue(const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNumber:
      return Num(v.number);
    case JsonValue::Type::kString:
      return v.string;
    default:
      return "<structure>";
  }
}

class Comparator {
 public:
  Comparator(const JsonValue& old_doc, const JsonValue& new_doc,
             const CompareOptions& options)
      : old_(old_doc), new_(new_doc), options_(options) {}

  CompareResult Run() {
    if (!CheckIdentity()) {
      return std::move(result_);
    }
    CompareEnvironment();
    CompareMetrics();
    CompareFrameTotals();
    CompareSeries();
    CompareTimings();
    return std::move(result_);
  }

 private:
  bool Skipped(const std::string& name) const {
    for (const std::string& s : options_.skip_substrings) {
      if (name.find(s) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  // Wall-clock check: regressions beyond tolerance fail, improvements
  // beyond tolerance are surfaced as info, tiny absolute values ignored.
  void CheckWall(const std::string& where, const std::string& what,
                 double old_value, double new_value) {
    if (options_.ignore_wall) {
      return;
    }
    ++result_.values_compared;
    if (new_value > old_value * (1.0 + options_.wall_tolerance) &&
        new_value - old_value > options_.wall_floor_ms) {
      result_.Add(Severity::kFail, where,
                  what + ": wall-clock regression " + Num(old_value) +
                      " -> " + Num(new_value) + " ms (tolerance " +
                      Num(options_.wall_tolerance * 100.0) + "%)");
    } else if (old_value > new_value * (1.0 + options_.wall_tolerance) &&
               old_value - new_value > options_.wall_floor_ms) {
      result_.Add(Severity::kInfo, where,
                  what + ": wall-clock improved " + Num(old_value) + " -> " +
                      Num(new_value) + " ms");
    }
  }

  void CheckExact(const std::string& where, const std::string& what,
                  const JsonValue& old_value, const JsonValue& new_value) {
    ++result_.values_compared;
    if (!ExactlyEqual(old_value, new_value)) {
      result_.Add(Severity::kFail, where,
                  what + ": " + DescribeValue(old_value) + " -> " +
                      DescribeValue(new_value));
    }
  }

  bool CheckIdentity() {
    const std::string* old_binary = FindString(old_, "binary");
    const std::string* new_binary = FindString(new_, "binary");
    if (old_binary == nullptr || new_binary == nullptr) {
      result_.Add(Severity::kFail, "document",
                  "not a bench report (missing \"binary\")");
      return false;
    }
    if (*old_binary != *new_binary) {
      result_.Add(Severity::kFail, "document",
                  "different benches: " + *old_binary + " vs " + *new_binary);
      return false;
    }
    const std::string* old_scale = FindString(old_, "scale");
    const std::string* new_scale = FindString(new_, "scale");
    if (old_scale == nullptr || new_scale == nullptr ||
        *old_scale != *new_scale) {
      result_.Add(Severity::kFail, "document",
                  "scale mismatch: " +
                      (old_scale != nullptr ? *old_scale : "<none>") +
                      " vs " + (new_scale != nullptr ? *new_scale : "<none>"));
      return false;
    }
    return true;
  }

  void CompareEnvironment() {
    const JsonValue* old_env = old_.Find("environment");
    const JsonValue* new_env = new_.Find("environment");
    if (old_env == nullptr || new_env == nullptr ||
        !old_env->is_object() || !new_env->is_object()) {
      return;
    }
    for (const auto& [key, old_value] : old_env->members) {
      const JsonValue* new_value = new_env->Find(key);
      if (new_value == nullptr || !ExactlyEqual(old_value, *new_value)) {
        result_.Add(Severity::kInfo, "environment",
                    key + ": " + DescribeValue(old_value) + " -> " +
                        (new_value != nullptr ? DescribeValue(*new_value)
                                              : "<absent>"));
      }
    }
  }

  // Metric samples ({name, kind, value | histogram payload}) matched by
  // name; every non-name member must match exactly.
  void CompareMetrics() {
    const JsonValue* old_metrics = old_.Find("metrics");
    const JsonValue* new_metrics = new_.Find("metrics");
    if (old_metrics == nullptr || new_metrics == nullptr ||
        !old_metrics->is_array() || !new_metrics->is_array()) {
      return;
    }
    for (const JsonValue& old_m : old_metrics->items) {
      const std::string* name = FindString(old_m, "name");
      if (name == nullptr || Skipped(*name)) {
        continue;
      }
      const JsonValue* new_m = nullptr;
      for (const JsonValue& candidate : new_metrics->items) {
        const std::string* candidate_name = FindString(candidate, "name");
        if (candidate_name != nullptr && *candidate_name == *name) {
          new_m = &candidate;
          break;
        }
      }
      if (new_m == nullptr) {
        result_.Add(Severity::kFail, "metrics",
                    *name + ": present in baseline, missing in new run");
        continue;
      }
      // Metrics whose name carries the ".wall." marker hold wall-clock
      // values (e.g. the server's queue/service latency gauges): numeric
      // members get the tolerance check, everything else stays exact.
      const bool is_wall = name->find(".wall.") != std::string::npos;
      for (const auto& [key, old_value] : old_m.members) {
        if (key == "name") {
          continue;
        }
        const JsonValue* new_value = new_m->Find(key);
        if (new_value == nullptr) {
          result_.Add(Severity::kFail, "metrics",
                      *name + "." + key + ": field missing in new run");
          continue;
        }
        if (is_wall && old_value.is_number() && new_value->is_number()) {
          CheckWall("metrics", *name + "." + key, old_value.number,
                    new_value->number);
        } else {
          CheckExact("metrics", *name + "." + key, old_value, *new_value);
        }
      }
    }
    for (const JsonValue& new_m : new_metrics->items) {
      const std::string* name = FindString(new_m, "name");
      if (name == nullptr || Skipped(*name)) {
        continue;
      }
      bool in_old = false;
      for (const JsonValue& candidate : old_metrics->items) {
        const std::string* candidate_name = FindString(candidate, "name");
        if (candidate_name != nullptr && *candidate_name == *name) {
          in_old = true;
          break;
        }
      }
      if (!in_old) {
        result_.Add(Severity::kWarn, "metrics",
                    *name + ": new metric, absent from baseline");
      }
    }
  }

  void CompareFrameTotals() {
    const JsonValue* old_totals = old_.Find("frame_totals");
    const JsonValue* new_totals = new_.Find("frame_totals");
    if (old_totals == nullptr || new_totals == nullptr ||
        !old_totals->is_array() || !new_totals->is_array()) {
      return;
    }
    const auto key_of = [](const JsonValue& t) {
      const std::string* system = FindString(t, "system");
      const std::string* kind = FindString(t, "kind");
      return (system != nullptr ? *system : "?") + "/" +
             (kind != nullptr ? *kind : "?");
    };
    for (const JsonValue& old_t : old_totals->items) {
      const std::string key = key_of(old_t);
      const JsonValue* new_t = nullptr;
      for (const JsonValue& candidate : new_totals->items) {
        if (key_of(candidate) == key) {
          new_t = &candidate;
          break;
        }
      }
      if (new_t == nullptr) {
        result_.Add(Severity::kFail, "frame_totals",
                    key + ": present in baseline, missing in new run");
        continue;
      }
      for (const auto& [field, old_value] : old_t.members) {
        if (field == "system" || field == "kind") {
          continue;
        }
        const JsonValue* new_value = new_t->Find(field);
        if (new_value == nullptr) {
          result_.Add(Severity::kFail, "frame_totals",
                      key + "." + field + ": field missing in new run");
          continue;
        }
        CheckExact("frame_totals", key + "." + field, old_value, *new_value);
      }
    }
    if (new_totals->items.size() > old_totals->items.size()) {
      result_.Add(Severity::kWarn, "frame_totals",
                  "new run emits frame records for more systems than the"
                  " baseline");
    }
  }

  void CompareSeries() {
    const JsonValue* old_series = old_.Find("series");
    const JsonValue* new_series = new_.Find("series");
    if (old_series == nullptr || new_series == nullptr ||
        !old_series->is_array() || !new_series->is_array()) {
      return;
    }
    for (const JsonValue& old_s : old_series->items) {
      const std::string* name = FindString(old_s, "name");
      if (name == nullptr) {
        continue;
      }
      const JsonValue* new_s = nullptr;
      for (const JsonValue& candidate : new_series->items) {
        const std::string* candidate_name = FindString(candidate, "name");
        if (candidate_name != nullptr && *candidate_name == *name) {
          new_s = &candidate;
          break;
        }
      }
      if (new_s == nullptr) {
        result_.Add(Severity::kFail, *name, "series missing in new run");
        continue;
      }
      CompareOneSeries(*name, old_s, *new_s);
    }
    for (const JsonValue& new_s : new_series->items) {
      const std::string* name = FindString(new_s, "name");
      if (name != nullptr && old_series->items.end() ==
          std::find_if(old_series->items.begin(), old_series->items.end(),
                       [&](const JsonValue& s) {
                         const std::string* n = FindString(s, "name");
                         return n != nullptr && *n == *name;
                       })) {
        result_.Add(Severity::kWarn, *name,
                    "new series, absent from baseline");
      }
    }
  }

  void CompareOneSeries(const std::string& name, const JsonValue& old_s,
                        const JsonValue& new_s) {
    const JsonValue* old_columns = old_s.Find("columns");
    const JsonValue* new_columns = new_s.Find("columns");
    if (old_columns == nullptr || new_columns == nullptr ||
        !ExactlyEqual(*old_columns, *new_columns)) {
      result_.Add(Severity::kFail, name,
                  "column layout changed; cannot compare rows");
      return;
    }
    const JsonValue* old_rows = old_s.Find("rows");
    const JsonValue* new_rows = new_s.Find("rows");
    if (old_rows == nullptr || new_rows == nullptr ||
        !old_rows->is_array() || !new_rows->is_array()) {
      return;
    }
    if (old_rows->items.size() != new_rows->items.size()) {
      result_.Add(Severity::kFail, name,
                  "row count changed: " +
                      std::to_string(old_rows->items.size()) + " -> " +
                      std::to_string(new_rows->items.size()));
      return;
    }
    for (size_t r = 0; r < old_rows->items.size(); ++r) {
      const JsonValue& old_row = old_rows->items[r];
      const JsonValue& new_row = new_rows->items[r];
      const std::string* old_label = FindString(old_row, "label");
      const std::string* new_label = FindString(new_row, "label");
      const std::string label =
          old_label != nullptr ? *old_label : "row " + std::to_string(r);
      if (old_label == nullptr || new_label == nullptr ||
          *old_label != *new_label) {
        result_.Add(Severity::kFail, name,
                    "row " + std::to_string(r) + " label changed");
        continue;
      }
      const JsonValue* old_values = old_row.Find("values");
      const JsonValue* new_values = new_row.Find("values");
      if (old_values == nullptr || new_values == nullptr ||
          old_values->items.size() != new_values->items.size() ||
          old_values->items.size() != old_columns->items.size()) {
        result_.Add(Severity::kFail, name,
                    "row " + label + ": value count mismatch");
        continue;
      }
      for (size_t c = 0; c < old_values->items.size(); ++c) {
        const JsonValue& column = old_columns->items[c];
        const std::string* column_name = FindString(column, "name");
        const JsonValue* wall = column.Find("wall");
        const std::string what =
            label + "." +
            (column_name != nullptr ? *column_name : std::to_string(c));
        if (wall != nullptr && wall->boolean) {
          CheckWall(name, what, old_values->items[c].number,
                    new_values->items[c].number);
        } else {
          CheckExact(name, what, old_values->items[c], new_values->items[c]);
        }
      }
    }
  }

  void CompareTimings() {
    const JsonValue* old_timings = old_.Find("timings");
    const JsonValue* new_timings = new_.Find("timings");
    if (old_timings == nullptr || new_timings == nullptr ||
        !old_timings->is_array() || !new_timings->is_array()) {
      return;
    }
    for (const JsonValue& old_t : old_timings->items) {
      const std::string* name = FindString(old_t, "name");
      if (name == nullptr) {
        continue;
      }
      const JsonValue* new_t = nullptr;
      for (const JsonValue& candidate : new_timings->items) {
        const std::string* candidate_name = FindString(candidate, "name");
        if (candidate_name != nullptr && *candidate_name == *name) {
          new_t = &candidate;
          break;
        }
      }
      if (new_t == nullptr) {
        result_.Add(Severity::kWarn, "timings",
                    *name + ": missing in new run");
        continue;
      }
      const JsonValue* old_median = old_t.Find("median_ms");
      const JsonValue* new_median = new_t->Find("median_ms");
      if (old_median != nullptr && new_median != nullptr) {
        CheckWall("timings", *name + ".median_ms", old_median->number,
                  new_median->number);
      }
      const JsonValue* old_p95 = old_t.Find("p95_ms");
      const JsonValue* new_p95 = new_t->Find("p95_ms");
      if (old_p95 != nullptr && new_p95 != nullptr) {
        CheckWall("timings", *name + ".p95_ms", old_p95->number,
                  new_p95->number);
      }
    }
  }

  const JsonValue& old_;
  const JsonValue& new_;
  const CompareOptions& options_;
  CompareResult result_;
};

}  // namespace

bool CompareResult::HasFailure() const {
  for (const CompareFinding& f : findings) {
    if (f.severity == Severity::kFail) {
      return true;
    }
  }
  return false;
}

void CompareResult::Add(CompareFinding::Severity severity, std::string where,
                        std::string message) {
  findings.push_back(
      CompareFinding{severity, std::move(where), std::move(message)});
}

CompareResult CompareReports(const JsonValue& old_report,
                             const JsonValue& new_report,
                             const CompareOptions& options) {
  return Comparator(old_report, new_report, options).Run();
}

}  // namespace hdov::telemetry
