// SlowFrameCapture: triggered deep-dive capture for outlier frames. An
// always-on ring keeps the stage breakdown of the last N frames (fed by
// PlaySession and the walkthrough server's scheduler); when a frame's
// service time exceeds a threshold — absolute milliseconds, a trailing
// percentile of the ring, or both — the capture atomically snapshots
// that frame's record together with the flight-recorder events of its
// session/time window. The result is written as a "HDOVSLOW" binary
// dump (--slowdump-out=), decodable by `hdov_inspect --slowdump` and
// convertible to a Chrome trace with one track per session.
//
// Like the flight recorder it rides on, the capture only reads the
// steady clock and thread-local state — never the SimClock, IoStats, or
// a metrics registry — so enabling it cannot move a simulated counter.

#ifndef HDOV_TELEMETRY_SLOW_FRAME_H_
#define HDOV_TELEMETRY_SLOW_FRAME_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/trace_context.h"

namespace hdov::telemetry {

// One frame's latency identity: who ran it, when, how long it queued and
// executed, and where the service time went stage by stage.
struct FrameStageRecord {
  uint16_t session = 0;   // FlightInternName id of the session name.
  uint64_t frame = 0;     // Session-local frame index.
  uint64_t start_ns = 0;  // Dispatch timestamp (FlightNowNs timeline).
  uint64_t queue_ns = 0;  // Enqueue→dispatch wait (0 outside a scheduler).
  uint64_t wall_ns = 0;   // Dispatch→complete service time.
  uint64_t io_pages = 0;  // Simulated pages billed to the frame.
  StageBreakdown stages;  // Exclusive per-stage service-time split.
};

struct SlowFrameOptions {
  size_t ring_frames = 512;    // Trailing window (breakdowns + percentile).
  double threshold_ms = 0.0;   // Absolute trigger; 0 disables.
  double percentile = 0.99;    // Trailing-percentile trigger; 0 disables.
  size_t warmup_frames = 64;   // Frames before the percentile can fire.
  size_t max_captures = 32;    // Hard cap on deep captures kept.
};

// One triggered capture: the frame record, the threshold that tripped,
// and the flight events of that session within the frame's time window
// (best effort — tiny rings may have been lapped already).
struct SlowFrameEntry {
  FrameStageRecord record;
  double trip_threshold_ms = 0.0;
  std::vector<FlightEvent> events;
};

// In-memory form of a slow dump file.
struct SlowDump {
  std::vector<std::string> names;  // Indexed by session / event code ids.
  std::vector<SlowFrameEntry> captures;
  uint64_t frames_seen = 0;
  uint64_t captures_dropped = 0;  // Triggers past max_captures.

  std::string_view NameOf(uint16_t id) const {
    return id < names.size() ? std::string_view(names[id]) : "?";
  }
};

class SlowFrameCapture {
 public:
  explicit SlowFrameCapture(const SlowFrameOptions& options = {});

  SlowFrameCapture(const SlowFrameCapture&) = delete;
  SlowFrameCapture& operator=(const SlowFrameCapture&) = delete;

  // Replaces the options and clears ring/captures/counters. Call between
  // runs, not mid-run.
  void Configure(const SlowFrameOptions& options);
  void Reset();

  bool enabled() const;
  void set_enabled(bool on);

  // Feeds one completed frame; decides the trigger and (on trip) drains
  // the global flight recorder for the frame's window. Thread-safe.
  void OnFrame(const FrameStageRecord& record);

  uint64_t frames_seen() const;
  size_t captures() const;

  // Snapshot of the captures accumulated so far.
  SlowDump Snapshot() const;

  // Encodes Snapshot() into the "HDOVSLOW" container at `path`.
  Status WriteDump(const std::string& path) const;
  static Result<SlowDump> ReadDump(const std::string& path);

 private:
  // Returns the trip threshold in ms if `wall_ns` should be captured.
  double TripThresholdMs(uint64_t wall_ns) const;  // Requires mu_.

  mutable std::mutex mu_;
  SlowFrameOptions options_;
  bool enabled_ = true;
  uint64_t frames_seen_ = 0;
  uint64_t captures_dropped_ = 0;
  std::vector<FrameStageRecord> ring_;  // Circular, ring_frames capacity.
  size_t ring_next_ = 0;
  std::vector<SlowFrameEntry> captures_;
};

// The process-wide capture the frame loops feed. Always on with default
// options; benches re-Configure() it when --slowdump-out is requested.
SlowFrameCapture& GlobalSlowFrameCapture();

// Container round trip ("HDOVSLOW", see docs/telemetry.md).
std::string EncodeSlowDump(const SlowDump& dump);
Result<SlowDump> DecodeSlowDump(std::string_view data);

// Chrome trace-event conversion under pid 4: one tid (track) per
// session, named after it. Each capture renders the queue wait and the
// frame as "X" slices, the stage breakdown as child slices laid end to
// end in stage order (an approximation: real stage intervals may
// interleave), and the captured io/pool flight events as instants at
// their true timestamps.
std::string SlowDumpChromeTraceJson(const SlowDump& dump);

}  // namespace hdov::telemetry

#endif  // HDOV_TELEMETRY_SLOW_FRAME_H_
