#include "telemetry/telemetry.h"

#include <fstream>

#include "telemetry/json.h"

namespace hdov::telemetry {

void Telemetry::RecordFrame(FrameRecord record) {
  ++frames_recorded_;
  if (frames_.size() >= max_frames_) {
    ++frames_dropped_;
    return;
  }
  record.index = frames_recorded_ - 1;
  record.context = context_;
  frames_.push_back(std::move(record));
}

namespace {

void WriteFrame(const FrameRecord& f, JsonWriter* w) {
  w->BeginObject();
  w->Key("system").String(f.system);
  w->Key("kind").String(f.kind);
  w->Key("index").Number(f.index);
  if (!f.context.empty()) {
    w->Key("context").String(f.context);
  }
  w->Key("cell").Number(f.cell);
  w->Key("frame_time_ms").Number(f.frame_time_ms);
  w->Key("query_time_ms").Number(f.query_time_ms);
  w->Key("io_pages").Number(f.io_pages);
  w->Key("light_io_pages").Number(f.light_io_pages);
  w->Key("index_bytes_read").Number(f.index_bytes_read);
  w->Key("store_bytes_read").Number(f.store_bytes_read);
  w->Key("model_bytes_read").Number(f.model_bytes_read);
  w->Key("nodes_visited").Number(f.nodes_visited);
  w->Key("vpages_fetched").Number(f.vpages_fetched);
  w->Key("hidden_pruned").Number(f.hidden_pruned);
  w->Key("internal_terminations").Number(f.internal_terminations);
  w->Key("cache_hit_rate").Number(f.cache_hit_rate);
  w->Key("rendered_triangles").Number(f.rendered_triangles);
  w->Key("models_fetched").Number(f.models_fetched);
  w->Key("resident_bytes").Number(f.resident_bytes);
  if (f.fidelity >= 0.0) {
    w->Key("fidelity").Number(f.fidelity);
  }
  w->EndObject();
}

}  // namespace

std::string Telemetry::SnapshotJson() const {
  // The metrics and trace sections already serialize themselves; splice
  // their JSON in rather than re-walking the structures.
  std::string out;
  out.append("{\"version\":1,\"metrics\":");
  out.append(metrics_.Snapshot().ToJson());
  out.append(",\"frames_recorded\":");
  out.append(std::to_string(frames_recorded_));
  out.append(",\"frames_dropped\":");
  out.append(std::to_string(frames_dropped_));
  out.append(",\"frames\":");
  JsonWriter frames;
  frames.BeginArray();
  for (const FrameRecord& f : frames_) {
    WriteFrame(f, &frames);
  }
  frames.EndArray();
  out.append(frames.str());
  if (tracer_.num_spans() > 0) {
    out.append(",\"trace\":");
    out.append(tracer_.ToJson());
  }
  out.push_back('}');
  return out;
}

std::string Telemetry::MetricsTable() const {
  return metrics_.Snapshot().ToTable();
}

Status Telemetry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("telemetry: cannot open " + path);
  }
  const std::string json = SnapshotJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.put('\n');
  if (!out) {
    return Status::IoError("telemetry: write to " + path + " failed");
  }
  return Status::OK();
}

void Telemetry::Reset() {
  metrics_.ResetValues();
  tracer_.Clear();
  frames_.clear();
  frames_recorded_ = 0;
  frames_dropped_ = 0;
  context_.clear();
}

}  // namespace hdov::telemetry
