#include "telemetry/telemetry.h"

#include <algorithm>
#include <fstream>

#include "telemetry/json.h"

namespace hdov::telemetry {

void Telemetry::RecordFrame(FrameRecord record) {
  ++frames_recorded_;
  record.index = frames_recorded_ - 1;
  record.context = context_;
  if (frames_.size() >= max_frames_) {
    ++frames_dropped_;
    if (frame_callback_) {
      frame_callback_(record);
    }
    return;
  }
  frames_.push_back(std::move(record));
  if (frame_callback_) {
    frame_callback_(frames_.back());
  }
}

namespace {

void WriteFrame(const FrameRecord& f, JsonWriter* w) {
  w->BeginObject();
  w->Key("system").String(f.system);
  w->Key("kind").String(f.kind);
  w->Key("index").Number(f.index);
  if (!f.context.empty()) {
    w->Key("context").String(f.context);
  }
  w->Key("cell").Number(f.cell);
  w->Key("frame_time_ms").Number(f.frame_time_ms);
  w->Key("query_time_ms").Number(f.query_time_ms);
  w->Key("io_pages").Number(f.io_pages);
  w->Key("light_io_pages").Number(f.light_io_pages);
  w->Key("index_bytes_read").Number(f.index_bytes_read);
  w->Key("store_bytes_read").Number(f.store_bytes_read);
  w->Key("model_bytes_read").Number(f.model_bytes_read);
  w->Key("nodes_visited").Number(f.nodes_visited);
  w->Key("vpages_fetched").Number(f.vpages_fetched);
  w->Key("hidden_pruned").Number(f.hidden_pruned);
  w->Key("internal_terminations").Number(f.internal_terminations);
  w->Key("cache_hit_rate").Number(f.cache_hit_rate);
  w->Key("rendered_triangles").Number(f.rendered_triangles);
  w->Key("models_fetched").Number(f.models_fetched);
  w->Key("resident_bytes").Number(f.resident_bytes);
  if (f.fidelity >= 0.0) {
    w->Key("fidelity").Number(f.fidelity);
  }
  w->EndObject();
}

}  // namespace

std::string Telemetry::SnapshotJson() const {
  // The metrics and trace sections already serialize themselves; splice
  // their JSON in rather than re-walking the structures.
  std::string out;
  out.append("{\"version\":1,\"metrics\":");
  out.append(metrics_.Snapshot().ToJson());
  out.append(",\"frames_recorded\":");
  out.append(std::to_string(frames_recorded_));
  out.append(",\"frames_dropped\":");
  out.append(std::to_string(frames_dropped_));
  out.append(",\"frames\":");
  JsonWriter frames;
  frames.BeginArray();
  for (const FrameRecord& f : frames_) {
    WriteFrame(f, &frames);
  }
  frames.EndArray();
  out.append(frames.str());
  if (tracer_.num_spans() > 0) {
    out.append(",\"trace\":");
    out.append(tracer_.ToJson());
  }
  out.push_back('}');
  return out;
}

std::string Telemetry::MetricsTable() const {
  return metrics_.Snapshot().ToTable();
}

namespace {

Status WriteStringToFile(const std::string& json, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("telemetry: cannot open " + path);
  }
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.put('\n');
  if (!out) {
    return Status::IoError("telemetry: write to " + path + " failed");
  }
  return Status::OK();
}

// One complete ("ph":"X") trace event; callers fill args inside `fill`.
template <typename Fn>
void WriteTraceEvent(JsonWriter* w, std::string_view name,
                     std::string_view cat, int pid, int tid, double ts_us,
                     double dur_us, Fn fill_args) {
  w->BeginObject();
  w->Key("name").String(name);
  w->Key("cat").String(cat);
  w->Key("ph").String("X");
  w->Key("pid").Number(static_cast<uint64_t>(pid));
  w->Key("tid").Number(static_cast<uint64_t>(tid));
  w->Key("ts").Number(ts_us);
  w->Key("dur").Number(dur_us);
  w->Key("args").BeginObject();
  fill_args(w);
  w->EndObject();
  w->EndObject();
}

void WriteMetadataEvent(JsonWriter* w, std::string_view kind, int pid,
                        int tid, std::string_view value) {
  w->BeginObject();
  w->Key("name").String(kind);
  w->Key("ph").String("M");
  w->Key("pid").Number(static_cast<uint64_t>(pid));
  if (tid >= 0) {
    w->Key("tid").Number(static_cast<uint64_t>(tid));
  }
  w->Key("args").BeginObject();
  w->Key("name").String(value);
  w->EndObject();
  w->EndObject();
}

}  // namespace

Status Telemetry::WriteJsonFile(const std::string& path) const {
  return WriteStringToFile(SnapshotJson(), path);
}

std::string Telemetry::ChromeTraceJson() const {
  constexpr int kFramePid = 1;  // Frame timeline, simulated clock.
  constexpr int kSpanPid = 2;   // Search-trace spans, logical clock.
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  WriteMetadataEvent(&w, "process_name", kFramePid, -1,
                     "frames (simulated time)");
  WriteMetadataEvent(&w, "process_name", kSpanPid, -1,
                     "search trace (logical time)");

  // Frame timeline: one track (tid) per emitting system in order of
  // first appearance, ts accumulating the simulated per-frame time.
  struct Track {
    std::string system;
    double cursor_us = 0.0;
  };
  std::vector<Track> tracks;
  for (const FrameRecord& f : frames_) {
    size_t t = 0;
    for (; t < tracks.size(); ++t) {
      if (tracks[t].system == f.system) {
        break;
      }
    }
    const int tid = static_cast<int>(t) + 1;
    if (t == tracks.size()) {
      tracks.push_back(Track{f.system, 0.0});
      WriteMetadataEvent(&w, "thread_name", kFramePid, tid, f.system);
    }
    const double dur_us =
        (f.frame_time_ms > 0.0 ? f.frame_time_ms : f.query_time_ms) * 1000.0;
    WriteTraceEvent(
        &w, f.kind, "frame", kFramePid, tid, tracks[t].cursor_us, dur_us,
        [&f](JsonWriter* args) {
          if (!f.context.empty()) {
            args->Key("context").String(f.context);
          }
          args->Key("cell").Number(f.cell);
          args->Key("io_pages").Number(f.io_pages);
          args->Key("nodes_visited").Number(f.nodes_visited);
          args->Key("vpages_fetched").Number(f.vpages_fetched);
          args->Key("rendered_triangles").Number(f.rendered_triangles);
          args->Key("models_fetched").Number(f.models_fetched);
          args->Key("cache_hit_rate").Number(f.cache_hit_rate);
          if (f.fidelity >= 0.0) {
            args->Key("fidelity").Number(f.fidelity);
          }
        });
    // A sibling counter track so I/O pressure plots over the timeline.
    w.BeginObject();
    w.Key("name").String(tracks[t].system + " io_pages");
    w.Key("ph").String("C");
    w.Key("pid").Number(static_cast<uint64_t>(kFramePid));
    w.Key("tid").Number(static_cast<uint64_t>(tid));
    w.Key("ts").Number(tracks[t].cursor_us);
    w.Key("args").BeginObject();
    w.Key("pages").Number(f.io_pages);
    w.EndObject();
    w.EndObject();
    tracks[t].cursor_us += dur_us;
  }

  // Span forest. Spans are recorded in preorder, so each span's subtree
  // occupies the contiguous index range [i, end[i]) — logical intervals
  // that nest exactly like the recorded tree.
  const size_t n = tracer_.num_spans();
  std::vector<size_t> end(n);
  for (size_t i = 0; i < n; ++i) {
    end[i] = i + 1;
  }
  for (size_t i = n; i-- > 0;) {
    const int32_t parent = tracer_.span(i).parent;
    if (parent >= 0) {
      end[static_cast<size_t>(parent)] =
          std::max(end[static_cast<size_t>(parent)], end[i]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const TraceSpan& s = tracer_.span(i);
    WriteTraceEvent(&w, s.name, "span", kSpanPid, 1,
                    static_cast<double>(i),
                    static_cast<double>(end[i] - i),
                    [&s](JsonWriter* args) {
                      for (const auto& [key, value] : s.num_attrs) {
                        args->Key(key).Number(value);
                      }
                      for (const auto& [key, value] : s.str_attrs) {
                        args->Key(key).String(value);
                      }
                    });
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

Status Telemetry::WriteChromeTrace(const std::string& path) const {
  return WriteStringToFile(ChromeTraceJson(), path);
}

void Telemetry::Reset() {
  metrics_.ResetValues();
  tracer_.Clear();
  frames_.clear();
  frames_recorded_ = 0;
  frames_dropped_ = 0;
  context_.clear();
}

}  // namespace hdov::telemetry
