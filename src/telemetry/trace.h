// TraceSpan / TraceRecorder: a per-frame event tree for the threshold
// search. A recorder collects nested spans — e.g. one "search" root per
// query, a "node" span per visited HDoV node, and leaf spans for the
// prune / internal-LoD-terminate / descend decisions, each carrying
// numeric attributes (DoV, NVO, the Eq. 4 verdict, V-page fetch counts).
//
// Recording is opt-in twice over: instrumented code only touches the
// recorder when one is wired in, and a disabled recorder turns BeginSpan
// into a single branch. A disabled (or null) recorder costs nothing on
// the hot path.

#ifndef HDOV_TELEMETRY_TRACE_H_
#define HDOV_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hdov::telemetry {

struct TraceSpan {
  std::string name;
  int32_t parent = -1;  // Index into the recorder's span array; -1 = root.
  bool closed = false;
  std::vector<std::pair<std::string, double>> num_attrs;
  std::vector<std::pair<std::string, std::string>> str_attrs;

  double NumAttrOr(std::string_view key, double fallback) const;
  const std::string* StrAttr(std::string_view key) const;
};

class TraceRecorder {
 public:
  static constexpr int32_t kNoSpan = -1;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Span-count cap: once reached, BeginSpan returns kNoSpan (every other
  // call treats kNoSpan as a no-op, so deep trees degrade gracefully —
  // recorded ancestors keep their attributes, excess descendants are
  // counted in spans_dropped). A multi-hour traced run stays at a
  // loadable chrome://tracing file size instead of growing unbounded.
  size_t max_spans() const { return max_spans_; }
  void set_max_spans(size_t n) { max_spans_ = n; }
  uint64_t spans_dropped() const { return spans_dropped_; }

  // Query sampling: with sample_every = N, SampleQuery() answers true for
  // one query in N (the first of each stride), so a serving workload can
  // keep span trees on at 1/N cost while every query still reaches the
  // flight recorder. Query entry points (VisualSystem::Query) consult this
  // before wiring the recorder into a search; 1 (the default) keeps the
  // historical trace-everything behavior.
  size_t sample_every() const { return sample_every_; }
  void set_sample_every(size_t n) { sample_every_ = n == 0 ? 1 : n; }
  bool SampleQuery();
  uint64_t queries_seen() const { return queries_seen_; }
  uint64_t queries_sampled() const { return queries_sampled_; }

  // Drops all recorded spans (the open-span stack included).
  void Clear();

  // Appends every span of `other` (which must hold no open spans) to this
  // recorder, re-rooting `other`'s roots under the currently open span (or
  // as roots). This is how per-worker recorders fold into the phase
  // recorder: each worker records privately, then the owner merges the
  // buffers in deterministic order after the pool's Wait(). A disabled
  // destination drops the spans.
  void Merge(const TraceRecorder& other);

  // Opens a span under the currently open span (or as a root). Returns
  // kNoSpan when disabled; every other call accepts kNoSpan as a no-op,
  // so call sites need no disabled-checks of their own.
  int32_t BeginSpan(std::string_view name);
  void EndSpan(int32_t span);

  void AddAttr(int32_t span, std::string_view key, double value);
  void AddAttr(int32_t span, std::string_view key, std::string_view value);

  size_t num_spans() const { return spans_.size(); }
  const TraceSpan& span(size_t i) const { return spans_[i]; }
  size_t open_depth() const { return open_.size(); }

  // Indices of the direct children of `parent` (kNoSpan = roots).
  std::vector<size_t> Children(int32_t parent) const;

  // Spans with `name` anywhere in the tree.
  size_t CountNamed(std::string_view name) const;

  // The whole forest as nested JSON:
  //   [{"name":..., "attrs":{...}, "children":[...]}, ...]
  std::string ToJson() const;

 private:
  bool enabled_ = true;
  std::vector<TraceSpan> spans_;
  std::vector<int32_t> open_;  // Stack of open span indices.
  // ~1M spans keeps a fully traced bench run around Chrome's trace-viewer
  // comfort zone; raise it for short, deep traces.
  size_t max_spans_ = 1 << 20;
  uint64_t spans_dropped_ = 0;
  size_t sample_every_ = 1;
  uint64_t queries_seen_ = 0;
  uint64_t queries_sampled_ = 0;
};

// RAII span: opens on construction (when a recorder is given), closes on
// destruction. The searcher uses this so early error returns cannot leak
// open spans.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string_view name)
      : recorder_(recorder),
        id_(recorder != nullptr ? recorder->BeginSpan(name)
                                : TraceRecorder::kNoSpan) {}
  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      recorder_->EndSpan(id_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  int32_t id() const { return id_; }

  void Attr(std::string_view key, double value) {
    if (recorder_ != nullptr) {
      recorder_->AddAttr(id_, key, value);
    }
  }
  void Attr(std::string_view key, std::string_view value) {
    if (recorder_ != nullptr) {
      recorder_->AddAttr(id_, key, value);
    }
  }

 private:
  TraceRecorder* recorder_;
  int32_t id_;
};

}  // namespace hdov::telemetry

#endif  // HDOV_TELEMETRY_TRACE_H_
