// Telemetry: the unified observability context shared by the storage
// layer, the threshold search and the walkthrough systems. One Telemetry
// object owns
//
//   - a MetricsRegistry (counters / gauges / histograms plus read-through
//     views over IoStats and BufferPool counters),
//   - a TraceRecorder for opt-in per-query search span trees,
//   - the stream of per-frame FrameRecords emitted by instrumented
//     systems (one structured record per RenderFrame / Query).
//
// Snapshots export as machine-readable JSON (the `--telemetry-out` format
// documented in docs/telemetry.md) or as a human-readable table.

#ifndef HDOV_TELEMETRY_TELEMETRY_H_
#define HDOV_TELEMETRY_TELEMETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace hdov::telemetry {

// One structured record per frame (RenderFrame) or standalone visibility
// query. Fields a given system cannot attribute stay zero; `fidelity`
// stays negative unless a harness scores the frame afterwards.
struct FrameRecord {
  std::string system;       // Telemetry prefix of the emitting system.
  std::string kind = "frame";  // "frame" or "query".
  uint64_t index = 0;       // Assigned by Telemetry::RecordFrame.
  std::string context;      // Session label; stamped by the frame loop.
  uint64_t cell = 0;        // Viewing cell of the viewpoint.

  double frame_time_ms = 0.0;
  double query_time_ms = 0.0;  // Simulated I/O time of the frame/query.
  uint64_t io_pages = 0;
  uint64_t light_io_pages = 0;
  uint64_t index_bytes_read = 0;  // Tree / R-tree / cell-list device.
  uint64_t store_bytes_read = 0;  // V-page store device.
  uint64_t model_bytes_read = 0;  // Model data device.

  // Threshold-search decision counts (HDoV systems; zero elsewhere).
  uint64_t nodes_visited = 0;
  uint64_t vpages_fetched = 0;
  uint64_t hidden_pruned = 0;
  uint64_t internal_terminations = 0;

  double cache_hit_rate = 0.0;  // Buffer-pool hit rate this frame.
  uint64_t rendered_triangles = 0;
  uint64_t models_fetched = 0;
  uint64_t resident_bytes = 0;
  double fidelity = -1.0;  // Optional post-hoc score; < 0 = not computed.
};

class Telemetry {
 public:
  // Per-query span trees are far heavier than counters, so the owned
  // recorder starts disabled; opt in via tracer().set_enabled(true).
  Telemetry() { tracer_.set_enabled(false); }
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // A disabled Telemetry keeps its wiring but instrumented systems stop
  // emitting records and observations (registered views still snapshot).
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  TraceRecorder& tracer() { return tracer_; }
  const TraceRecorder& tracer() const { return tracer_; }

  // Free-form label stamped into every subsequent FrameRecord (the frame
  // loop sets it to the session name for the session's duration).
  const std::string& context() const { return context_; }
  void set_context(std::string context) { context_ = std::move(context); }

  // Appends a record, stamping its index and the current context. Records
  // beyond `max_frames` are counted but dropped.
  void RecordFrame(FrameRecord record);

  // Invoked after every RecordFrame (kept or dropped) with the stamped
  // record — the hook behind periodic exporters (--metrics-every=N). Runs
  // on the recording thread; keep it owner-thread-only if it touches the
  // registry. Empty function clears it.
  using FrameCallback = std::function<void(const FrameRecord&)>;
  void set_frame_callback(FrameCallback callback) {
    frame_callback_ = std::move(callback);
  }

  const std::vector<FrameRecord>& frames() const { return frames_; }
  // Last kept record, for post-hoc annotation (e.g. fidelity scores);
  // nullptr when none.
  FrameRecord* last_frame() {
    return frames_.empty() ? nullptr : &frames_.back();
  }

  size_t max_frames() const { return max_frames_; }
  void set_max_frames(size_t n) { max_frames_ = n; }
  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t frames_recorded() const { return frames_recorded_; }

  // Full snapshot: {"version":1, "metrics":[...], "frames":[...],
  // "trace":[...]} (trace only when the recorder holds spans).
  std::string SnapshotJson() const;
  // The metrics section as an aligned human-readable table.
  std::string MetricsTable() const;

  Status WriteJsonFile(const std::string& path) const;

  // Chrome trace-event (catapult) export: the recorded span forest and
  // the frame timeline as one {"traceEvents": [...]} document that loads
  // directly in chrome://tracing or ui.perfetto.dev. Frame events run on
  // the *simulated* clock (one track per system, ts accumulating each
  // frame's simulated time); span events have no clock at all (the
  // search is simulated), so they use logical time — ts = preorder
  // index, dur = subtree span count — preserving exact nesting.
  std::string ChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  // Drops frame records and trace spans and zeroes owned metrics
  // (registered views keep reading their live sources).
  void Reset();

 private:
  bool enabled_ = true;
  MetricsRegistry metrics_;
  TraceRecorder tracer_;
  std::string context_;
  std::vector<FrameRecord> frames_;
  // Generous default: a full large-scale bench run stays well under this;
  // the cap only guards against unbounded growth in long-lived processes.
  size_t max_frames_ = 1 << 20;
  uint64_t frames_recorded_ = 0;
  uint64_t frames_dropped_ = 0;
  FrameCallback frame_callback_;
};

}  // namespace hdov::telemetry

#endif  // HDOV_TELEMETRY_TELEMETRY_H_
