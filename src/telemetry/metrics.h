// MetricsRegistry: named counters, gauges and fixed-bucket histograms,
// cheap enough to leave enabled in benchmarks (a counter increment is one
// uint64_t add through a cached pointer). Besides owned metrics, the
// registry accepts *views* — read callbacks over counters that already
// live elsewhere (e.g. a PageDevice's IoStats or a BufferPool's hit/miss
// totals) — so existing stat structs keep their layout and call sites
// while still appearing in every snapshot.
//
// Lifetime: pointers returned by GetCounter/GetGauge/GetHistogram stay
// valid until that name is removed via UnregisterPrefix; a registered
// view's source must outlive the view (instrumented objects unregister
// their prefix on destruction/detach).
//
// Thread-safety: *updates* through Counter/Gauge/Histogram handles are
// safe from any thread (atomics / a per-histogram mutex). The registry
// itself — GetCounter/RegisterView/UnregisterPrefix/Snapshot — is owner-
// thread only: register before fanning work out, snapshot after joining
// (see docs/threading.md).

#ifndef HDOV_TELEMETRY_METRICS_H_
#define HDOV_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hdov::telemetry {

// Counter/gauge updates and reads are atomic (relaxed), so instrumented
// code may bump them from worker threads — the parallel precompute does.
// Relaxed is enough: the metrics are monotone tallies read at snapshot
// time, after the phase's Wait() has already ordered worker writes.
class Counter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `upper_bounds` (ascending) define the buckets
// [-inf, b0], (b0, b1], ..., plus an implicit overflow bucket. Observe and
// the readers take a mutex, so concurrent observations from workers are
// safe (bounds_ is immutable after construction and needs no lock).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  double sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  double Mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  // bounds().size() + 1 buckets; bucket i <= bounds()[i], last = overflow.
  const std::vector<double>& bounds() const { return bounds_; }
  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t i) const {
    std::lock_guard<std::mutex> lock(mu_);
    return counts_[i];
  }

  // Approximate quantile (q in [0, 1]) assuming a uniform distribution
  // within each bucket; the overflow bucket reports its lower bound.
  double Quantile(double q) const;

  void Reset();

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;  // Guards counts_/sum_/count_.
  std::vector<uint64_t> counts_;
  double sum_ = 0.0;
  uint64_t count_ = 0;
};

// `n` buckets at start, start*factor, start*factor^2, ...
std::vector<double> ExponentialBuckets(double start, double factor, size_t n);
// `n` buckets at start, start+width, start+2*width, ...
std::vector<double> LinearBuckets(double start, double width, size_t n);

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram, kView };

std::string_view MetricKindName(MetricKind kind);

// One metric's state at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  // Counter/gauge/view reading.
  // Histogram payload (empty otherwise).
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;
  double sum = 0.0;
  uint64_t count = 0;
  // Interpolated percentiles (Histogram::Quantile), so reports carry
  // frame-time p50/p90/p99 without consumers re-deriving them from raw
  // buckets.
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // Registration order.

  const MetricSample* Find(std::string_view name) const;
  std::string ToJson() const;   // A JSON array of metric objects.
  std::string ToTable() const;  // Human-readable aligned rows.
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Create-or-get. Returns nullptr when `name` exists with another kind
  // (a programming error; callers own their name prefixes).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `upper_bounds` is consulted only when the histogram is created.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

  // Registers a read-through view over an external counter/stat. The
  // callback is invoked at snapshot time; `read`'s captures must stay
  // valid until the name is unregistered. Re-registering a name replaces
  // the previous view.
  void RegisterView(const std::string& name, std::function<double()> read);

  // Removes every metric whose name starts with `prefix`. Invalidates
  // pointers previously returned for those names.
  void UnregisterPrefix(std::string_view prefix);

  bool Contains(const std::string& name) const {
    return index_.find(name) != index_.end();
  }
  size_t size() const { return entries_.size(); }

  // Resets owned counters/gauges/histograms to zero (views are untouched;
  // reset their sources instead).
  void ResetValues();

  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> view;
  };

  Entry* FindEntry(const std::string& name);
  Entry* Insert(const std::string& name, MetricKind kind);

  std::vector<std::unique_ptr<Entry>> entries_;  // Registration order.
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace hdov::telemetry

#endif  // HDOV_TELEMETRY_METRICS_H_
