#include "telemetry/trace.h"

#include <algorithm>

#include "telemetry/flight_recorder.h"
#include "telemetry/json.h"

namespace hdov::telemetry {

double TraceSpan::NumAttrOr(std::string_view key, double fallback) const {
  for (const auto& [k, v] : num_attrs) {
    if (k == key) {
      return v;
    }
  }
  return fallback;
}

const std::string* TraceSpan::StrAttr(std::string_view key) const {
  for (const auto& [k, v] : str_attrs) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void TraceRecorder::Clear() {
  spans_.clear();
  open_.clear();
  spans_dropped_ = 0;
  queries_seen_ = 0;
  queries_sampled_ = 0;
}

bool TraceRecorder::SampleQuery() {
  if (!enabled_) {
    return false;
  }
  const uint64_t n = queries_seen_++;
  if (sample_every_ <= 1 || n % sample_every_ == 0) {
    ++queries_sampled_;
    return true;
  }
  return false;
}

void TraceRecorder::Merge(const TraceRecorder& other) {
  if (!enabled_ || other.spans_.empty()) {
    return;
  }
  const int32_t offset = static_cast<int32_t>(spans_.size());
  const int32_t root_parent = open_.empty() ? kNoSpan : open_.back();
  spans_.reserve(std::min(spans_.size() + other.spans_.size(), max_spans_));
  for (const TraceSpan& span : other.spans_) {
    // Source spans are in creation order (children after parents), so a
    // mid-stream cutoff keeps every stored parent index valid.
    if (spans_.size() >= max_spans_) {
      spans_dropped_ +=
          other.spans_.size() - static_cast<size_t>(&span - &other.spans_[0]);
      return;
    }
    TraceSpan copy = span;
    copy.parent =
        span.parent == kNoSpan ? root_parent : span.parent + offset;
    spans_.push_back(std::move(copy));
  }
  spans_dropped_ += other.spans_dropped_;
}

int32_t TraceRecorder::BeginSpan(std::string_view name) {
  if (!enabled_) {
    return kNoSpan;
  }
  if (spans_.size() >= max_spans_) {
    ++spans_dropped_;
    return kNoSpan;
  }
  TraceSpan span;
  span.name.assign(name);
  span.parent = open_.empty() ? kNoSpan : open_.back();
  const int32_t id = static_cast<int32_t>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(id);
  FlightRecorder& flight = GlobalFlightRecorder();
  if (flight.enabled()) {
    flight.Record(FlightEventType::kSpanBegin, FlightInternName(name),
                  static_cast<uint64_t>(id), 0);
  }
  return id;
}

void TraceRecorder::EndSpan(int32_t span) {
  if (span == kNoSpan) {
    return;
  }
  FlightRecorder& flight = GlobalFlightRecorder();
  if (flight.enabled()) {
    flight.Record(FlightEventType::kSpanEnd,
                  FlightInternName(spans_[static_cast<size_t>(span)].name),
                  static_cast<uint64_t>(span), 0);
  }
  // Close any children left open (defensive: RAII call sites make this a
  // no-op), then the span itself.
  while (!open_.empty()) {
    const int32_t top = open_.back();
    open_.pop_back();
    spans_[static_cast<size_t>(top)].closed = true;
    if (top == span) {
      return;
    }
  }
}

void TraceRecorder::AddAttr(int32_t span, std::string_view key,
                            double value) {
  if (span == kNoSpan) {
    return;
  }
  spans_[static_cast<size_t>(span)].num_attrs.emplace_back(std::string(key),
                                                           value);
}

void TraceRecorder::AddAttr(int32_t span, std::string_view key,
                            std::string_view value) {
  if (span == kNoSpan) {
    return;
  }
  spans_[static_cast<size_t>(span)].str_attrs.emplace_back(
      std::string(key), std::string(value));
}

std::vector<size_t> TraceRecorder::Children(int32_t parent) const {
  std::vector<size_t> children;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent == parent) {
      children.push_back(i);
    }
  }
  return children;
}

size_t TraceRecorder::CountNamed(std::string_view name) const {
  return static_cast<size_t>(
      std::count_if(spans_.begin(), spans_.end(),
                    [&](const TraceSpan& s) { return s.name == name; }));
}

namespace {

void WriteSpan(const TraceRecorder& recorder,
               const std::vector<std::vector<size_t>>& children, size_t index,
               JsonWriter* w) {
  const TraceSpan& span = recorder.span(index);
  w->BeginObject();
  w->Key("name").String(span.name);
  if (!span.num_attrs.empty() || !span.str_attrs.empty()) {
    w->Key("attrs").BeginObject();
    for (const auto& [key, value] : span.num_attrs) {
      w->Key(key).Number(value);
    }
    for (const auto& [key, value] : span.str_attrs) {
      w->Key(key).String(value);
    }
    w->EndObject();
  }
  if (!children[index].empty()) {
    w->Key("children").BeginArray();
    for (size_t child : children[index]) {
      WriteSpan(recorder, children, child, w);
    }
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace

std::string TraceRecorder::ToJson() const {
  // Children lists in one pass (spans are stored in creation order, so
  // every child index is greater than its parent's).
  std::vector<std::vector<size_t>> children(spans_.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent == kNoSpan) {
      roots.push_back(i);
    } else {
      children[static_cast<size_t>(spans_[i].parent)].push_back(i);
    }
  }
  JsonWriter w;
  w.BeginArray();
  for (size_t root : roots) {
    WriteSpan(*this, children, root, &w);
  }
  w.EndArray();
  return w.TakeString();
}

}  // namespace hdov::telemetry
