// Exposition: point-in-time views over a MetricsRegistry for live
// consumption — the complement of the end-of-run JSON snapshot. Three
// pieces:
//
//   - ExpositionText: a MetricsSnapshot rendered in the Prometheus text
//     format (counters/gauges as single samples, histograms as cumulative
//     _bucket/_sum/_count series), so any scrape-format tooling can parse
//     a run's metrics without bespoke JSON handling;
//   - SnapshotDelta: the difference between two snapshots of the same
//     registry, turning monotone counters into interval deltas and rates;
//   - ExpositionLog: the periodic exporter behind the benches'
//     --metrics-every=N flag, appending one exposition block (plus rate
//     comments) per sample to a text file.
//
// Everything here only *reads* registry state: attaching an exporter can
// never move a simulated counter.

#ifndef HDOV_TELEMETRY_EXPOSITION_H_
#define HDOV_TELEMETRY_EXPOSITION_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "telemetry/bench_report.h"
#include "telemetry/metrics.h"

namespace hdov::telemetry {

// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's
// dotted names map dots (and any other invalid byte) to underscores.
std::string SanitizeMetricName(std::string_view name);

// The snapshot in Prometheus text format. Views expose no kind of their
// own and are emitted as gauges.
std::string ExpositionText(const MetricsSnapshot& snapshot);

// The subset of `snapshot` whose names start with `prefix` (sample order
// preserved). Lets one captured snapshot serve both a full export and a
// filtered view without re-reading the registry.
MetricsSnapshot FilterSnapshot(const MetricsSnapshot& snapshot,
                               std::string_view prefix);

// One metric's change across an interval.
struct MetricDelta {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double previous = 0.0;
  double current = 0.0;
  double delta = 0.0;         // current - previous.
  double rate_per_sec = 0.0;  // delta / interval; 0 when interval is 0.
  // Histogram intervals: observation-count and sum deltas.
  uint64_t count_delta = 0;
  double sum_delta = 0.0;
};

// The interval between two snapshots of the same registry. Metrics only
// present in `later` (registered mid-interval) get previous = 0; metrics
// that vanished are omitted.
struct SnapshotDelta {
  double interval_ms = 0.0;
  std::vector<MetricDelta> metrics;

  static SnapshotDelta Between(const MetricsSnapshot& earlier,
                               const MetricsSnapshot& later,
                               double interval_ms);

  // Aligned human-readable rows: name, delta, rate.
  std::string ToTable() const;
};

// Appends one exposition block per Sample() call to `path` (truncated on
// the first sample): a '# hdov' header comment, the full exposition text,
// and '# rate' comment lines carrying the interval rates of every counter
// that moved. The result is a concatenation of scrapes — each block is
// valid Prometheus text on its own.
class ExpositionLog {
 public:
  explicit ExpositionLog(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }
  uint64_t samples_written() const { return samples_written_; }

  Status Sample(const MetricsSnapshot& snapshot, std::string_view label);

 private:
  std::string path_;
  std::ofstream out_;
  WallTimer interval_timer_;
  MetricsSnapshot previous_;
  uint64_t samples_written_ = 0;
};

}  // namespace hdov::telemetry

#endif  // HDOV_TELEMETRY_EXPOSITION_H_
