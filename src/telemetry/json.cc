#include "telemetry/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hdov::telemetry {

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) {
      out_.push_back(',');
    }
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!first_.empty()) {
    if (!first_.back()) {
      out_.push_back(',');
    }
    first_.back() = false;
  }
  AppendJsonString(&out_, key);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendJsonString(&out_, value);
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_.append("null");  // JSON has no Inf/NaN.
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Number(uint64_t value) {
  BeforeValue();
  out_.append(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_.append(json);
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    HDOV_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        return ParseLiteral("true", [out] {
          out->type = JsonValue::Type::kBool;
          out->boolean = true;
        });
      case 'f':
        return ParseLiteral("false", [out] {
          out->type = JsonValue::Type::kBool;
          out->boolean = false;
        });
      case 'n':
        return ParseLiteral("null",
                            [out] { out->type = JsonValue::Type::kNull; });
      default:
        return ParseNumber(out);
    }
  }

  template <typename Fn>
  Status ParseLiteral(std::string_view literal, Fn apply) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("invalid literal");
    }
    pos_ += literal.size();
    apply();
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("invalid value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("invalid number");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    HDOV_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::OK();
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated unicode escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid unicode escape");
            }
          }
          // Telemetry output only escapes control characters; encode the
          // code point as UTF-8 (surrogate pairs are not needed here).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out, int depth) {
    HDOV_RETURN_IF_ERROR(Expect('{'));
    out->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      HDOV_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      HDOV_RETURN_IF_ERROR(Expect(':'));
      JsonValue value;
      HDOV_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      return Expect('}');
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    HDOV_RETURN_IF_ERROR(Expect('['));
    out->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      HDOV_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      return Expect(']');
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace hdov::telemetry
