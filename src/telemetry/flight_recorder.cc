#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <fstream>

#include "common/coding.h"
#include "telemetry/json.h"
#include "telemetry/trace_context.h"

namespace hdov::telemetry {

std::string_view FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kNone:
      return "none";
    case FlightEventType::kSpanBegin:
      return "span_begin";
    case FlightEventType::kSpanEnd:
      return "span_end";
    case FlightEventType::kPageRead:
      return "page_read";
    case FlightEventType::kPageWrite:
      return "page_write";
    case FlightEventType::kPoolHit:
      return "pool_hit";
    case FlightEventType::kPoolMiss:
      return "pool_miss";
    case FlightEventType::kFrameBegin:
      return "frame_begin";
    case FlightEventType::kFrameEnd:
      return "frame_end";
    case FlightEventType::kPrefetchUsed:
      return "prefetch_used";
    case FlightEventType::kPrefetchCancel:
      return "prefetch_cancel";
  }
  return "unknown";
}

uint64_t FlightNowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

namespace {

// Strings are written before the release store of `count`, so lock-free
// readers only ever see fully constructed entries.
struct NameTable {
  std::mutex mu;                 // Insertions only.
  std::array<std::string, kMaxFlightNames> names;
  std::atomic<size_t> count{1};  // names[0] is the reserved "?".
  // Intern calls refused because the table was full. Counted per call,
  // not per distinct name (distinct overflow names are unbounded): hot
  // paths cache their id, so a steady rate here means live code is
  // repeatedly degrading to "?".
  std::atomic<uint64_t> dropped{0};
  NameTable() { names[0] = "?"; }
};

NameTable& GlobalNames() {
  // Leaked: hooks in static destructors may still intern at exit.
  static NameTable* table = new NameTable();
  return *table;
}

uint64_t RoundUpPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

uint16_t FlightInternName(std::string_view name) {
  NameTable& table = GlobalNames();
  const size_t published = table.count.load(std::memory_order_acquire);
  for (size_t i = 0; i < published; ++i) {
    if (table.names[i] == name) {
      return static_cast<uint16_t>(i);
    }
  }
  std::lock_guard<std::mutex> lock(table.mu);
  const size_t count = table.count.load(std::memory_order_relaxed);
  for (size_t i = published; i < count; ++i) {
    if (table.names[i] == name) {
      return static_cast<uint16_t>(i);
    }
  }
  if (count >= kMaxFlightNames) {
    // Table full: degrade to the "?" code, never fail — but loudly.
    table.dropped.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  table.names[count].assign(name);
  table.count.store(count + 1, std::memory_order_release);
  return static_cast<uint16_t>(count);
}

std::string_view FlightNameForId(uint16_t id) {
  NameTable& table = GlobalNames();
  if (id >= table.count.load(std::memory_order_acquire)) {
    return "?";
  }
  return table.names[id];
}

size_t FlightNameCount() {
  return GlobalNames().count.load(std::memory_order_acquire);
}

uint64_t FlightNamesDropped() {
  return GlobalNames().dropped.load(std::memory_order_relaxed);
}

namespace {

std::atomic<uint64_t> g_recorder_serial{1};

}  // namespace

FlightRecorder::FlightRecorder(size_t events_per_thread)
    : capacity_(static_cast<size_t>(
          RoundUpPow2(std::max<uint64_t>(2, events_per_thread)))),
      serial_(g_recorder_serial.fetch_add(1, std::memory_order_relaxed)) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::Buffer* FlightRecorder::LocalBuffer() {
  // Keyed by the recorder's process-unique serial, never by address, so a
  // recorder reusing a destroyed one's storage cannot match stale entries.
  struct CacheEntry {
    uint64_t serial;
    Buffer* buffer;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.serial == serial_) {
      return entry.buffer;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<Buffer>(
      capacity_, static_cast<uint32_t>(buffers_.size())));
  Buffer* buffer = buffers_.back().get();
  cache.push_back(CacheEntry{serial_, buffer});
  return buffer;
}

void FlightRecorder::Record(FlightEventType type, uint16_t code, uint64_t a,
                            uint64_t b) {
  // Stamp the thread's ambient session + stage so the event is
  // attributable without widening any hook signature.
  RecordWithStage(type, code, a, b,
                  static_cast<uint8_t>(CurrentTraceContext().stage));
}

void FlightRecorder::RecordWithStage(FlightEventType type, uint16_t code,
                                     uint64_t a, uint64_t b, uint8_t stage) {
  if (!enabled()) {
    return;
  }
  Buffer* buf = LocalBuffer();
  const TraceContext& ctx = CurrentTraceContext();
  const uint64_t idx = buf->head.load(std::memory_order_relaxed);
  Slot& slot = buf->ring[idx & (capacity_ - 1)];
  slot.w[0].store(FlightNowNs(), std::memory_order_relaxed);
  slot.w[1].store(static_cast<uint64_t>(type) |
                      (static_cast<uint64_t>(stage) << 8) |
                      (static_cast<uint64_t>(code) << 16) |
                      (static_cast<uint64_t>(ctx.session) << 32) |
                      (static_cast<uint64_t>(buf->id & 0xffff) << 48),
                  std::memory_order_relaxed);
  slot.w[2].store(a, std::memory_order_relaxed);
  slot.w[3].store(b, std::memory_order_relaxed);
  // Publishes the slot: Drain acquires `head` before touching the ring.
  buf->head.store(idx + 1, std::memory_order_release);
}

size_t FlightRecorder::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffers_.size();
}

uint64_t FlightRecorder::events_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& buf : buffers_) {
    total += buf->head.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t FlightRecorder::events_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& buf : buffers_) {
    const uint64_t head = buf->head.load(std::memory_order_acquire);
    const uint64_t ring_begin = head > capacity_ ? head - capacity_ : 0;
    const uint64_t consumed = buf->consumed.load(std::memory_order_relaxed);
    total += buf->lost.load(std::memory_order_relaxed);
    if (ring_begin > consumed) {
      total += ring_begin - consumed;
    }
  }
  return total;
}

FlightDump FlightRecorder::Drain(bool consume) {
  FlightDump dump;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    const uint64_t head = buf->head.load(std::memory_order_acquire);
    const uint64_t ring_begin = head > capacity_ ? head - capacity_ : 0;
    uint64_t consumed = buf->consumed.load(std::memory_order_relaxed);
    if (ring_begin > consumed) {
      // Events in [consumed, ring_begin) were overwritten before anyone
      // drained them: account them lost exactly once.
      buf->lost.fetch_add(ring_begin - consumed, std::memory_order_relaxed);
      buf->consumed.store(ring_begin, std::memory_order_relaxed);
      consumed = ring_begin;
    }
    struct Pending {
      uint64_t idx;
      FlightEvent event;
    };
    std::vector<Pending> pending;
    pending.reserve(static_cast<size_t>(head - consumed));
    for (uint64_t idx = consumed; idx < head; ++idx) {
      const Slot& slot = buf->ring[idx & (capacity_ - 1)];
      FlightEvent ev;
      ev.ts_ns = slot.w[0].load(std::memory_order_relaxed);
      const uint64_t meta = slot.w[1].load(std::memory_order_relaxed);
      ev.type = static_cast<uint8_t>(meta & 0xff);
      ev.stage = static_cast<uint8_t>((meta >> 8) & 0xff);
      ev.code = static_cast<uint16_t>((meta >> 16) & 0xffff);
      ev.session = static_cast<uint16_t>((meta >> 32) & 0xffff);
      ev.thread = static_cast<uint16_t>(meta >> 48);
      ev.a = slot.w[2].load(std::memory_order_relaxed);
      ev.b = slot.w[3].load(std::memory_order_relaxed);
      pending.push_back(Pending{idx, ev});
    }
    // A writer may have lapped part of the copied range mid-copy; re-read
    // the head and discard every index it could have overwritten (plus the
    // slot the writer may currently be filling, hence the +1).
    const uint64_t head_after = buf->head.load(std::memory_order_acquire);
    const uint64_t valid_from =
        head_after > capacity_ ? head_after - capacity_ + 1 : 0;
    for (const Pending& p : pending) {
      if (p.idx >= valid_from) {
        dump.events.push_back(p.event);
      }
    }
    if (consume) {
      buf->consumed.store(head, std::memory_order_relaxed);
    }
    dump.dropped += buf->lost.load(std::memory_order_relaxed);
  }
  std::stable_sort(dump.events.begin(), dump.events.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.ts_ns != y.ts_ns ? x.ts_ns < y.ts_ns
                                               : x.thread < y.thread;
                   });
  // Snapshot the global name table so the dump is self-describing.
  const size_t names = FlightNameCount();
  dump.names.reserve(names);
  for (size_t i = 0; i < names; ++i) {
    dump.names.emplace_back(FlightNameForId(static_cast<uint16_t>(i)));
  }
  dump.names_dropped = FlightNamesDropped();
  return dump;
}

// ---------------------------------------------------------------------
// Dump container: "HDOVFREC" magic, version, name table, packed events.
// v1: header {names, events, dropped}; event meta packs
//     type(16) | code(16) | thread(32).
// v2: header gains names_dropped; event meta packs
//     type(8) | stage(8) | code(16) | session(16) | thread(16).
// The reader accepts both; v1 events decode with session/stage zero
// (old dumps predate attribution).

namespace {
constexpr char kFlightMagic[8] = {'H', 'D', 'O', 'V', 'F', 'R', 'E', 'C'};
constexpr uint32_t kFlightVersion = 2;
}  // namespace

std::string EncodeFlightDump(const FlightDump& dump) {
  std::string out;
  out.append(kFlightMagic, sizeof(kFlightMagic));
  EncodeFixed32(&out, kFlightVersion);
  EncodeFixed32(&out, static_cast<uint32_t>(dump.names.size()));
  EncodeFixed64(&out, dump.events.size());
  EncodeFixed64(&out, dump.dropped);
  EncodeFixed64(&out, dump.names_dropped);
  for (const std::string& name : dump.names) {
    EncodeFixed32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
  }
  for (const FlightEvent& ev : dump.events) {
    EncodeFixed64(&out, ev.ts_ns);
    EncodeFixed64(&out, static_cast<uint64_t>(ev.type) |
                            (static_cast<uint64_t>(ev.stage) << 8) |
                            (static_cast<uint64_t>(ev.code) << 16) |
                            (static_cast<uint64_t>(ev.session) << 32) |
                            (static_cast<uint64_t>(ev.thread) << 48));
    EncodeFixed64(&out, ev.a);
    EncodeFixed64(&out, ev.b);
  }
  return out;
}

Result<FlightDump> DecodeFlightDump(std::string_view data) {
  if (data.size() < sizeof(kFlightMagic) ||
      data.compare(0, sizeof(kFlightMagic),
                   std::string_view(kFlightMagic, sizeof(kFlightMagic))) !=
          0) {
    return Status::Corruption("flight dump: bad magic");
  }
  const std::string_view body = data.substr(sizeof(kFlightMagic));
  Decoder dec(body);
  uint32_t version = 0;
  uint32_t name_count = 0;
  uint64_t event_count = 0;
  FlightDump dump;
  HDOV_RETURN_IF_ERROR(dec.DecodeFixed32(&version));
  if (version < 1 || version > kFlightVersion) {
    return Status::Corruption("flight dump: unsupported version " +
                              std::to_string(version));
  }
  HDOV_RETURN_IF_ERROR(dec.DecodeFixed32(&name_count));
  HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&event_count));
  HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&dump.dropped));
  if (version >= 2) {
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&dump.names_dropped));
  }
  if (name_count > kMaxFlightNames) {
    return Status::Corruption("flight dump: name table too large");
  }
  if (event_count > dec.remaining() / 32) {
    return Status::Corruption("flight dump: truncated event section");
  }
  dump.names.reserve(name_count);
  for (uint32_t i = 0; i < name_count; ++i) {
    uint32_t len = 0;
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed32(&len));
    if (len > dec.remaining()) {
      return Status::Corruption("flight dump: truncated name");
    }
    dump.names.emplace_back(body.substr(dec.position(), len));
    HDOV_RETURN_IF_ERROR(dec.Skip(len));
  }
  dump.events.reserve(static_cast<size_t>(event_count));
  for (uint64_t i = 0; i < event_count; ++i) {
    FlightEvent ev;
    uint64_t meta = 0;
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&ev.ts_ns));
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&meta));
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&ev.a));
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&ev.b));
    if (version >= 2) {
      ev.type = static_cast<uint8_t>(meta & 0xff);
      ev.stage = static_cast<uint8_t>((meta >> 8) & 0xff);
      ev.code = static_cast<uint16_t>((meta >> 16) & 0xffff);
      ev.session = static_cast<uint16_t>((meta >> 32) & 0xffff);
      ev.thread = static_cast<uint16_t>(meta >> 48);
    } else {
      // v1 layout; no session/stage attribution existed.
      ev.type = static_cast<uint8_t>(meta & 0xffff);
      ev.code = static_cast<uint16_t>((meta >> 16) & 0xffff);
      ev.thread = static_cast<uint16_t>((meta >> 32) & 0xffff);
      ev.session = 0;
      ev.stage = 0;
    }
    dump.events.push_back(ev);
  }
  if (dec.remaining() != 0) {
    return Status::Corruption("flight dump: trailing bytes");
  }
  return dump;
}

Status FlightRecorder::WriteDump(const std::string& path, bool consume) {
  const std::string encoded = EncodeFlightDump(Drain(consume));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("flight dump: cannot open " + path);
  }
  out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  if (!out) {
    return Status::IoError("flight dump: write to " + path + " failed");
  }
  return Status::OK();
}

Result<FlightDump> FlightRecorder::ReadDump(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("flight dump: cannot open " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IoError("flight dump: read from " + path + " failed");
  }
  return DecodeFlightDump(data);
}

std::string FlightChromeTraceJson(const FlightDump& dump) {
  constexpr int kFlightPid = 3;  // Pids 1/2 belong to Telemetry's export.
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  w.BeginObject();
  w.Key("name").String("process_name");
  w.Key("ph").String("M");
  w.Key("pid").Number(static_cast<uint64_t>(kFlightPid));
  w.Key("args").BeginObject();
  w.Key("name").String("flight recorder (wall time)");
  w.EndObject();
  w.EndObject();
  for (const FlightEvent& ev : dump.events) {
    const auto type = static_cast<FlightEventType>(ev.type);
    const double ts_us = static_cast<double>(ev.ts_ns) / 1000.0;
    const auto emit = [&](std::string_view cat, std::string_view ph) {
      w.BeginObject();
      w.Key("name").String(dump.NameOf(ev));
      w.Key("cat").String(cat);
      w.Key("ph").String(ph);
      if (ph == "i") {
        w.Key("s").String("t");
      }
      w.Key("pid").Number(static_cast<uint64_t>(kFlightPid));
      w.Key("tid").Number(static_cast<uint64_t>(ev.thread));
      w.Key("ts").Number(ts_us);
      w.Key("args").BeginObject();
      w.Key("type").String(FlightEventTypeName(type));
      w.Key("a").Number(ev.a);
      w.Key("b").Number(ev.b);
      if (ev.session != 0) {
        w.Key("session").String(ev.session < dump.names.size()
                                    ? std::string_view(dump.names[ev.session])
                                    : std::string_view("?"));
      }
      if (ev.stage != 0) {
        w.Key("stage").String(
            TraceStageName(static_cast<TraceStage>(ev.stage)));
      }
      w.EndObject();
      w.EndObject();
    };
    switch (type) {
      case FlightEventType::kFrameBegin:
        emit("frame", "B");
        break;
      case FlightEventType::kFrameEnd:
        emit("frame", "E");
        break;
      case FlightEventType::kSpanBegin:
        emit("span", "B");
        break;
      case FlightEventType::kSpanEnd:
        emit("span", "E");
        break;
      case FlightEventType::kPageRead:
      case FlightEventType::kPageWrite:
        emit("io", "i");
        break;
      case FlightEventType::kPoolHit:
      case FlightEventType::kPoolMiss:
        emit("pool", "i");
        break;
      case FlightEventType::kPrefetchUsed:
      case FlightEventType::kPrefetchCancel:
        emit("prefetch", "i");
        break;
      case FlightEventType::kNone:
        break;
    }
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

FlightRecorder& GlobalFlightRecorder() {
  // Leaked for the same reason as the name table: instrumented objects in
  // static storage may record during teardown.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

}  // namespace hdov::telemetry
