// FlightRecorder: the always-on, bounded-memory event log underneath the
// richer (opt-in) TraceRecorder. Instrumented code appends fixed-size
// 32-byte binary events — span begin/end, page fetches, buffer-pool
// hits/misses, frame boundaries — into lock-free per-thread ring buffers.
// Old events are overwritten, never flushed, so a long-lived process pays
// a constant memory cost and a ~tens-of-nanoseconds per-event hot-path
// cost (quantified by BM_FlightRecorderOverhead): the last N events per
// thread are always available for a post-hoc "what just happened" drain,
// exactly like an aircraft flight recorder.
//
// Concurrency model: each thread writes only its own ring (registered on
// first use); every slot is a quartet of relaxed atomics published by a
// release store of the ring head, so a concurrent Drain reads a
// consistent prefix and discards the (rare) region a writer may have
// lapped mid-copy. No lock is ever taken on the record path.
//
// Determinism: events carry real steady_clock timestamps but the recorder
// never touches the SimClock, IoStats, or any registry metric — enabling
// or disabling it cannot move a single simulated counter, which is what
// lets it stay on under the zero-drift CI perf gate.
//
// Attribution: every event is stamped with the recording thread's ambient
// TraceContext (telemetry/trace_context.h) — the session it serves and
// the pipeline stage it is in — so a drained dump can answer "which
// session's fetch stage caused this pool miss" without any hook changing
// its signature. Dumps are versioned ("HDOVFREC" v2 carries the wider
// events; v1 dumps still decode with session/stage zero).

#ifndef HDOV_TELEMETRY_FLIGHT_RECORDER_H_
#define HDOV_TELEMETRY_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hdov::telemetry {

enum class FlightEventType : uint8_t {
  kNone = 0,
  kSpanBegin = 1,   // a = span id within its recorder.
  kSpanEnd = 2,     // a = span id.
  kPageRead = 3,    // a = first page id, b = page count.
  kPageWrite = 4,   // a = page id, b = 1.
  kPoolHit = 5,     // a = page id.
  kPoolMiss = 6,    // a = page id, b = miss-fill wall time in ns.
  kFrameBegin = 7,  // a = frame index.
  kFrameEnd = 8,    // a = frame index, b = io_pages (when attributed).
  // Prefetch overlap accounting (src/prefetch/, docs/prefetch.md). Issue
  // events are ordinary kPageRead events recorded with stage == kPrefetch;
  // these two cover the other ends of a prefetched page's life.
  kPrefetchUsed = 9,    // a = first page id, b = pages consumed unbilled.
  kPrefetchCancel = 10, // a = resident pages invalidated, b = planned cell.
};

std::string_view FlightEventTypeName(FlightEventType type);

// One recorded event. `code` is an interned-name id (FlightInternName)
// identifying the emitting device / pool / system / span; `thread` is the
// recorder-assigned ring id of the emitting thread; `session` is the
// interned name id of the session the thread was serving (0 when
// unattributed) and `stage` the TraceStage it was in, both captured from
// the thread's TraceContext at Record() time.
struct FlightEvent {
  uint64_t ts_ns = 0;   // steady_clock, since the process flight epoch.
  uint8_t type = 0;     // FlightEventType.
  uint8_t stage = 0;    // TraceStage.
  uint16_t code = 0;
  uint16_t thread = 0;
  uint16_t session = 0;  // Interned session name id; 0 = unattributed.
  uint64_t a = 0;
  uint64_t b = 0;
};
static_assert(sizeof(FlightEvent) == 32, "events are fixed 32-byte records");

// Process-wide name interning for event codes. The table is append-only
// and capped (kMaxFlightNames); id 0 is the reserved "?" returned when the
// table is full, so interning can never fail, only degrade. Interning
// takes a lock only on first insertion of a name; hot paths cache the id.
inline constexpr size_t kMaxFlightNames = 256;
uint16_t FlightInternName(std::string_view name);
std::string_view FlightNameForId(uint16_t id);  // "?" when out of range.
size_t FlightNameCount();
// Process-wide count of intern calls refused because the table was full
// (each such call degraded to the "?" code). Deliberately not a registry
// metric — the recorder never touches the registry — but surfaced in
// dumps, `hdov_inspect --flight` rollups, and bench telemetry output.
uint64_t FlightNamesDropped();

// A drained recorder image: the merged events plus the name table they
// index into. This is also the in-memory form of a dump file.
struct FlightDump {
  std::vector<std::string> names;   // Indexed by FlightEvent::code.
  std::vector<FlightEvent> events;  // Merged, timestamp order.
  uint64_t dropped = 0;             // Ring overwrites of undrained events.
  uint64_t names_dropped = 0;       // Intern calls degraded to "?" (v2+).

  std::string_view NameOf(const FlightEvent& e) const {
    return e.code < names.size() ? std::string_view(names[e.code]) : "?";
  }
};

class FlightRecorder {
 public:
  // `events_per_thread` is rounded up to a power of two; each slot is 32
  // bytes, so the default keeps a thread's ring at 1 MiB.
  explicit FlightRecorder(size_t events_per_thread = 1 << 15);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  size_t events_per_thread() const { return capacity_; }

  // Appends one event to the calling thread's ring (registering the
  // thread on first use). No-op when disabled. Lock-free after the first
  // call per thread.
  void Record(FlightEventType type, uint16_t code, uint64_t a, uint64_t b);

  // Like Record, but stamps `stage` (a TraceStage value) instead of the
  // thread's ambient stage; session attribution is still ambient. For
  // hooks that know an event's pipeline meaning regardless of what scope
  // they run under — e.g. a diverted prefetch read is a kPrefetch issue
  // even while the speculative searcher's own kSearch scope is active.
  void RecordWithStage(FlightEventType type, uint16_t code, uint64_t a,
                       uint64_t b, uint8_t stage);

  // Threads that ever recorded into this recorder.
  size_t num_threads() const;
  // Total events ever recorded / overwritten before being consumed.
  uint64_t events_recorded() const;
  uint64_t events_dropped() const;

  // Snapshot of every ring's surviving events, merged across threads in
  // timestamp order. With `consume`, drained events are marked consumed:
  // the next Drain starts after them and they can no longer count as
  // dropped. Safe to call while other threads record (events published
  // mid-drain may or may not be included).
  FlightDump Drain(bool consume = false);

  // Binary dump round trip ("HDOVFREC" container, see docs/telemetry.md).
  Status WriteDump(const std::string& path, bool consume = false);
  static Result<FlightDump> ReadDump(const std::string& path);

 private:
  struct Slot {
    std::atomic<uint64_t> w[4];
  };
  struct Buffer {
    explicit Buffer(size_t capacity, uint32_t id)
        : ring(new Slot[capacity]()), id(id) {}
    std::unique_ptr<Slot[]> ring;
    std::atomic<uint64_t> head{0};      // Next monotonic write index.
    std::atomic<uint64_t> consumed{0};  // Below this: drained or counted.
    std::atomic<uint64_t> lost{0};      // Overwritten before consumption.
    uint32_t id = 0;
  };

  Buffer* LocalBuffer();

  const size_t capacity_;  // Power of two.
  const uint64_t serial_;  // Process-unique; keys the thread-local cache.
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;  // Guards buffers_ growth; never on record path.
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

// The process-wide recorder every built-in hook records into: device
// reads/writes, pool hits/misses, frame boundaries and span begin/end all
// land here. Enabled from the start (that is the point); disable it via
// GlobalFlightRecorder().set_enabled(false) to measure its absence.
FlightRecorder& GlobalFlightRecorder();

// Serializes / parses the dump container (also used by tools/hdov_inspect
// on files produced by --flight-out).
std::string EncodeFlightDump(const FlightDump& dump);
Result<FlightDump> DecodeFlightDump(std::string_view data);

// Chrome trace-event conversion: frame begin/end and span begin/end pair
// into "B"/"E" events per ring thread, page/pool events become instants,
// all on the recorder's steady-clock timeline under pid 3 (the telemetry
// exporter uses pids 1 and 2, slow-frame dumps pid 4; see
// docs/telemetry.md). Session/stage attribution lands in each event's
// args.
std::string FlightChromeTraceJson(const FlightDump& dump);

// Nanoseconds since the process flight epoch (first use).
uint64_t FlightNowNs();

// RAII frame boundary: kFrameBegin on construction, kFrameEnd on
// destruction, recorded into the global recorder. `code` identifies the
// emitting system (FlightInternName of its name).
class FlightFrameScope {
 public:
  FlightFrameScope(uint16_t code, uint64_t frame_index)
      : code_(code), index_(frame_index) {
    GlobalFlightRecorder().Record(FlightEventType::kFrameBegin, code_,
                                  index_, 0);
  }
  ~FlightFrameScope() {
    GlobalFlightRecorder().Record(FlightEventType::kFrameEnd, code_, index_,
                                  io_pages_);
  }

  FlightFrameScope(const FlightFrameScope&) = delete;
  FlightFrameScope& operator=(const FlightFrameScope&) = delete;

  // Attributes the frame's billed pages to the kFrameEnd event.
  void set_io_pages(uint64_t pages) { io_pages_ = pages; }

 private:
  uint16_t code_;
  uint64_t index_;
  uint64_t io_pages_ = 0;
};

}  // namespace hdov::telemetry

#endif  // HDOV_TELEMETRY_FLIGHT_RECORDER_H_
