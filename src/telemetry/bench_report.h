// BenchReport: the machine-readable record of one benchmark run. Every
// bench binary accepts `--json-out=<path>` and writes one standardized
// JSON document carrying
//
//   - provenance: binary name, scale, git revision, an environment
//     fingerprint (CPU count, HDOV_BENCH_SCALE, --threads);
//   - every figure/table row the binary printed, as structured *series*
//     (the stdout tables and the JSON rows come from the same emit call,
//     so they cannot drift apart);
//   - repeated wall-clock timings summarized as min/mean/median/p95;
//   - the full metric snapshot and per-system frame-record totals —
//     simulated counters (page reads, seeks, V-page fetches, cache hits)
//     that are deterministic and therefore diffable at zero tolerance.
//
// CompareReports() is the other half: it diffs two parsed report
// documents, hard-failing on any simulated-counter drift and flagging
// wall-clock regressions beyond a noise threshold. `tools/bench_compare`
// is a thin CLI over it; CI runs it against the checked-in
// `bench/baselines/BENCH_*.json` files (see EXPERIMENTS.md).

#ifndef HDOV_TELEMETRY_BENCH_REPORT_H_
#define HDOV_TELEMETRY_BENCH_REPORT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"

namespace hdov::telemetry {

class Telemetry;

// Wall-clock stopwatch — the shared replacement for the copy-pasted
// steady_clock blocks the benches used to carry.
class WallTimer {
 public:
  // Every wall-clock number in a report assumes a monotonic source; a
  // system clock would go backwards under NTP steps and produce negative
  // intervals.
  static_assert(std::chrono::steady_clock::is_steady,
                "WallTimer requires a monotonic clock source");

  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void Restart() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Summary of repeated wall-clock samples. Median/p95 interpolate between
// order statistics (linear, as numpy's default percentile does).
struct TimingStats {
  size_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double p95 = 0.0;

  static TimingStats From(std::vector<double> samples);
};

struct SeriesColumn {
  std::string name;
  // Wall-clock columns are noisy: CompareReports checks them against a
  // relative tolerance instead of the exact match simulated columns get.
  bool wall = false;
};

struct SeriesRow {
  std::string label;
  std::vector<double> values;  // One per column.
};

// One figure/table of the bench: a label column plus numeric columns.
struct ReportSeries {
  std::string name;
  std::vector<SeriesColumn> columns;
  std::vector<SeriesRow> rows;
};

// Sums of the FrameRecords one system emitted during the run — a compact
// deterministic digest that survives the system's destruction (registry
// views vanish with their system; frame records do not).
struct FrameTotals {
  std::string system;
  std::string kind;  // "frame" or "query".
  uint64_t frames = 0;
  double frame_time_ms = 0.0;
  double query_time_ms = 0.0;
  uint64_t io_pages = 0;
  uint64_t light_io_pages = 0;
  uint64_t index_bytes_read = 0;
  uint64_t store_bytes_read = 0;
  uint64_t model_bytes_read = 0;
  uint64_t nodes_visited = 0;
  uint64_t vpages_fetched = 0;
  uint64_t hidden_pruned = 0;
  uint64_t internal_terminations = 0;
  uint64_t rendered_triangles = 0;
  uint64_t models_fetched = 0;
};

struct BenchEnvironment {
  std::string git_revision;  // Informational; never compared.
  uint32_t cpu_count = 0;
  uint32_t threads = 0;  // The bench's --threads value.
};

class BenchReport {
 public:
  void set_binary(std::string name) { binary_ = std::move(name); }
  void set_title(std::string title) { title_ = std::move(title); }
  void set_scale(std::string scale) { scale_ = std::move(scale); }
  void set_environment(BenchEnvironment env) { env_ = std::move(env); }

  const std::string& binary() const { return binary_; }
  const std::string& scale() const { return scale_; }

  // Creates (or returns) the series `name`. Columns are fixed on the
  // first call; the pointer stays valid for the report's lifetime.
  ReportSeries* AddSeries(const std::string& name,
                          std::vector<SeriesColumn> columns);

  size_t num_series() const { return series_.size(); }
  const ReportSeries& series(size_t i) const { return *series_[i]; }

  // Appends one wall-clock sample to the named timing; stats are computed
  // at serialization time from all samples recorded under that name.
  void RecordTiming(const std::string& name, double ms);

  // Captures the metric snapshot and the frame-record totals of `t`.
  // Call once, after the run, while attached systems still live.
  void CaptureFrom(const Telemetry& t);

  const std::vector<FrameTotals>& frame_totals() const {
    return frame_totals_;
  }

  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  struct Timing {
    std::string name;
    std::vector<double> samples;
  };

  std::string binary_;
  std::string title_;
  std::string scale_ = "default";
  BenchEnvironment env_;
  // unique_ptr for pointer stability: benches hold AddSeries' result
  // across further AddSeries calls.
  std::vector<std::unique_ptr<ReportSeries>> series_;
  std::vector<Timing> timings_;
  MetricsSnapshot metrics_;
  std::vector<FrameTotals> frame_totals_;
};

// ---------------------------------------------------------------------
// Report diffing (the bench_compare tool and the CI perf gate).

struct CompareOptions {
  // Relative tolerance for wall-clock values (series columns marked
  // `wall` and the timing stats). 0.30 = a 30% slowdown fails.
  double wall_tolerance = 0.30;
  // Wall-clock values below this many ms are never flagged (relative
  // noise on near-zero timings is meaningless).
  double wall_floor_ms = 1.0;
  // Ignore wall-clock values entirely — the CI gate runs with this on,
  // since baseline and CI hardware differ.
  bool ignore_wall = false;
  // Metric names containing any of these substrings are skipped.
  std::vector<std::string> skip_substrings;
};

struct CompareFinding {
  enum class Severity { kInfo, kWarn, kFail };
  Severity severity = Severity::kInfo;
  std::string where;    // "metrics", series name, "timings", ...
  std::string message;
};

struct CompareResult {
  std::vector<CompareFinding> findings;
  uint64_t values_compared = 0;

  bool HasFailure() const;
  void Add(CompareFinding::Severity severity, std::string where,
           std::string message);
};

// Diffs two parsed BenchReport documents (`old_report` is the baseline).
// Simulated values must match exactly; wall-clock values may regress up
// to the tolerance. Returns a finding list; HasFailure() decides the
// exit code. Invalid/mismatched documents report kFail findings rather
// than erroring out.
CompareResult CompareReports(const JsonValue& old_report,
                             const JsonValue& new_report,
                             const CompareOptions& options);

}  // namespace hdov::telemetry

#endif  // HDOV_TELEMETRY_BENCH_REPORT_H_
