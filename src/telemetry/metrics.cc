#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/json.h"

namespace hdov::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[static_cast<size_t>(it - bounds_.begin())];
  sum_ += value;
  ++count_;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < target) {
      continue;
    }
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    if (i >= bounds_.size()) {
      return lower;  // Overflow bucket: no upper bound to interpolate to.
    }
    const double fraction =
        (target - before) / static_cast<double>(counts_[i]);
    return lower + fraction * (bounds_[i] - lower);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(counts_.begin(), counts_.end(), 0);
  sum_ = 0.0;
  count_ = 0;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double bound = start;
  for (size_t i = 0; i < n; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width, size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kView: return "view";
  }
  return "unknown";
}

const MetricSample* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricSample& sample : samples) {
    if (sample.name == name) {
      return &sample;
    }
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginArray();
  for (const MetricSample& sample : samples) {
    w.BeginObject();
    w.Key("name").String(sample.name);
    w.Key("kind").String(MetricKindName(sample.kind));
    if (sample.kind == MetricKind::kHistogram) {
      w.Key("count").Number(sample.count);
      w.Key("sum").Number(sample.sum);
      w.Key("p50").Number(sample.p50);
      w.Key("p90").Number(sample.p90);
      w.Key("p99").Number(sample.p99);
      w.Key("bounds").BeginArray();
      for (double b : sample.bounds) {
        w.Number(b);
      }
      w.EndArray();
      w.Key("buckets").BeginArray();
      for (uint64_t c : sample.buckets) {
        w.Number(c);
      }
      w.EndArray();
    } else {
      w.Key("value").Number(sample.value);
    }
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

std::string MetricsSnapshot::ToTable() const {
  size_t width = 0;
  for (const MetricSample& sample : samples) {
    width = std::max(width, sample.name.size());
  }
  std::string out;
  char buf[160];
  for (const MetricSample& sample : samples) {
    if (sample.kind == MetricKind::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    "%-*s  histogram count=%llu mean=%.3f p50=%.3f"
                    " p90=%.3f p99=%.3f\n",
                    static_cast<int>(width), sample.name.c_str(),
                    static_cast<unsigned long long>(sample.count),
                    sample.count == 0
                        ? 0.0
                        : sample.sum / static_cast<double>(sample.count),
                    sample.p50, sample.p90, sample.p99);
    } else {
      std::snprintf(buf, sizeof(buf), "%-*s  %.6g\n",
                    static_cast<int>(width), sample.name.c_str(),
                    sample.value);
    }
    out.append(buf);
  }
  return out;
}

MetricsRegistry::Entry* MetricsRegistry::FindEntry(const std::string& name) {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : entries_[it->second].get();
}

MetricsRegistry::Entry* MetricsRegistry::Insert(const std::string& name,
                                                MetricKind kind) {
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = kind;
  Entry* raw = entry.get();
  index_.emplace(name, entries_.size());
  entries_.push_back(std::move(entry));
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  if (Entry* existing = FindEntry(name)) {
    return existing->kind == MetricKind::kCounter ? existing->counter.get()
                                                  : nullptr;
  }
  Entry* entry = Insert(name, MetricKind::kCounter);
  entry->counter = std::make_unique<Counter>();
  return entry->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  if (Entry* existing = FindEntry(name)) {
    return existing->kind == MetricKind::kGauge ? existing->gauge.get()
                                                : nullptr;
  }
  Entry* entry = Insert(name, MetricKind::kGauge);
  entry->gauge = std::make_unique<Gauge>();
  return entry->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  if (Entry* existing = FindEntry(name)) {
    return existing->kind == MetricKind::kHistogram
               ? existing->histogram.get()
               : nullptr;
  }
  Entry* entry = Insert(name, MetricKind::kHistogram);
  entry->histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  return entry->histogram.get();
}

void MetricsRegistry::RegisterView(const std::string& name,
                                   std::function<double()> read) {
  if (Entry* existing = FindEntry(name)) {
    existing->kind = MetricKind::kView;
    existing->counter.reset();
    existing->gauge.reset();
    existing->histogram.reset();
    existing->view = std::move(read);
    return;
  }
  Insert(name, MetricKind::kView)->view = std::move(read);
}

void MetricsRegistry::UnregisterPrefix(std::string_view prefix) {
  std::vector<std::unique_ptr<Entry>> kept;
  kept.reserve(entries_.size());
  index_.clear();
  for (auto& entry : entries_) {
    if (std::string_view(entry->name).substr(0, prefix.size()) == prefix) {
      continue;
    }
    index_.emplace(entry->name, kept.size());
    kept.push_back(std::move(entry));
  }
  entries_ = std::move(kept);
}

void MetricsRegistry::ResetValues() {
  for (auto& entry : entries_) {
    switch (entry->kind) {
      case MetricKind::kCounter: entry->counter->Reset(); break;
      case MetricKind::kGauge: entry->gauge->Reset(); break;
      case MetricKind::kHistogram: entry->histogram->Reset(); break;
      case MetricKind::kView: break;
    }
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.samples.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSample sample;
    sample.name = entry->name;
    sample.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        sample.value = static_cast<double>(entry->counter->value());
        break;
      case MetricKind::kGauge:
        sample.value = entry->gauge->value();
        break;
      case MetricKind::kView:
        sample.value = entry->view ? entry->view() : 0.0;
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry->histogram;
        sample.bounds = h.bounds();
        sample.buckets.reserve(h.num_buckets());
        for (size_t i = 0; i < h.num_buckets(); ++i) {
          sample.buckets.push_back(h.bucket_count(i));
        }
        sample.sum = h.sum();
        sample.count = h.count();
        sample.p50 = h.Quantile(0.50);
        sample.p90 = h.Quantile(0.90);
        sample.p99 = h.Quantile(0.99);
        break;
      }
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

}  // namespace hdov::telemetry
