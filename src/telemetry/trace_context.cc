#include "telemetry/trace_context.h"

#include "telemetry/flight_recorder.h"  // FlightNowNs

namespace hdov::telemetry {
namespace {

// Per-thread context plus the stage-accounting state it drives. One
// struct so a stage switch touches a single cache line.
struct ThreadTraceState {
  TraceContext ctx;
  StageBreakdown breakdown;
  uint64_t interval_start_ns = 0;
};

ThreadTraceState& State() {
  thread_local ThreadTraceState state;
  return state;
}

// Charges [interval_start_ns, now) to the stage that was active and
// opens a new interval at `now`.
void FlushInterval(ThreadTraceState& s) {
  const uint64_t now = FlightNowNs();
  if (s.interval_start_ns != 0 && now > s.interval_start_ns) {
    s.breakdown.ns[static_cast<size_t>(s.ctx.stage)] +=
        now - s.interval_start_ns;
  }
  s.interval_start_ns = now;
}

}  // namespace

std::string_view TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kNone:
      return "none";
    case TraceStage::kSearch:
      return "search";
    case TraceStage::kFetch:
      return "fetch";
    case TraceStage::kRender:
      return "render";
    case TraceStage::kPrefetch:
      return "prefetch";
  }
  return "invalid";
}

const TraceContext& CurrentTraceContext() { return State().ctx; }

void BeginStageAccounting() {
  ThreadTraceState& s = State();
  s.breakdown = StageBreakdown{};
  s.interval_start_ns = FlightNowNs();
}

StageBreakdown FinishStageAccounting() {
  ThreadTraceState& s = State();
  FlushInterval(s);
  return s.breakdown;
}

SessionTraceScope::SessionTraceScope(uint16_t session, uint64_t frame) {
  ThreadTraceState& s = State();
  prev_session_ = s.ctx.session;
  prev_frame_ = s.ctx.frame;
  s.ctx.session = session;
  s.ctx.frame = frame;
}

SessionTraceScope::~SessionTraceScope() {
  ThreadTraceState& s = State();
  s.ctx.session = prev_session_;
  s.ctx.frame = prev_frame_;
}

StageTraceScope::StageTraceScope(TraceStage stage) {
  ThreadTraceState& s = State();
  FlushInterval(s);
  prev_ = s.ctx.stage;
  s.ctx.stage = stage;
}

StageTraceScope::~StageTraceScope() {
  ThreadTraceState& s = State();
  FlushInterval(s);
  s.ctx.stage = prev_;
}

}  // namespace hdov::telemetry
