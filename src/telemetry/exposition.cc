#include "telemetry/exposition.h"

#include <cstdio>

namespace hdov::telemetry {

namespace {

// Shortest round-trippable-ish rendering; integers print without a
// trailing ".0" so counter lines stay exact to the eye.
std::string FormatNumber(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(valid ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string ExpositionText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricSample& s : snapshot.samples) {
    const std::string name = SanitizeMetricName(s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        out.append("# TYPE ").append(name).append(" counter\n");
        out.append(name).append(" ").append(FormatNumber(s.value));
        out.push_back('\n');
        break;
      case MetricKind::kGauge:
      case MetricKind::kView:
        out.append("# TYPE ").append(name).append(" gauge\n");
        out.append(name).append(" ").append(FormatNumber(s.value));
        out.push_back('\n');
        break;
      case MetricKind::kHistogram: {
        out.append("# TYPE ").append(name).append(" histogram\n");
        uint64_t cumulative = 0;
        for (size_t i = 0; i < s.buckets.size(); ++i) {
          cumulative += s.buckets[i];
          const std::string le = i < s.bounds.size()
                                     ? FormatNumber(s.bounds[i])
                                     : std::string("+Inf");
          out.append(name).append("_bucket{le=\"").append(le).append("\"} ");
          out.append(std::to_string(cumulative));
          out.push_back('\n');
        }
        out.append(name).append("_sum ").append(FormatNumber(s.sum));
        out.push_back('\n');
        out.append(name).append("_count ").append(std::to_string(s.count));
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

MetricsSnapshot FilterSnapshot(const MetricsSnapshot& snapshot,
                               std::string_view prefix) {
  MetricsSnapshot out;
  for (const MetricSample& s : snapshot.samples) {
    if (std::string_view(s.name).substr(0, prefix.size()) == prefix) {
      out.samples.push_back(s);
    }
  }
  return out;
}

SnapshotDelta SnapshotDelta::Between(const MetricsSnapshot& earlier,
                                     const MetricsSnapshot& later,
                                     double interval_ms) {
  SnapshotDelta result;
  result.interval_ms = interval_ms;
  const double interval_s = interval_ms / 1000.0;
  result.metrics.reserve(later.samples.size());
  for (const MetricSample& now : later.samples) {
    const MetricSample* then = earlier.Find(now.name);
    MetricDelta d;
    d.name = now.name;
    d.kind = now.kind;
    d.current = now.value;
    d.previous = then != nullptr ? then->value : 0.0;
    d.delta = d.current - d.previous;
    if (now.kind == MetricKind::kHistogram) {
      const uint64_t prev_count = then != nullptr ? then->count : 0;
      const double prev_sum = then != nullptr ? then->sum : 0.0;
      d.count_delta = now.count >= prev_count ? now.count - prev_count : 0;
      d.sum_delta = now.sum - prev_sum;
      d.delta = static_cast<double>(d.count_delta);
    }
    if (interval_s > 0.0) {
      d.rate_per_sec = d.delta / interval_s;
    }
    result.metrics.push_back(std::move(d));
  }
  return result;
}

std::string SnapshotDelta::ToTable() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "interval: %.3f ms\n", interval_ms);
  out.append(line);
  for (const MetricDelta& m : metrics) {
    std::snprintf(line, sizeof(line), "%-52s %-9s %14s %14s/s\n",
                  m.name.c_str(),
                  std::string(MetricKindName(m.kind)).c_str(),
                  FormatNumber(m.delta).c_str(),
                  FormatNumber(m.rate_per_sec).c_str());
    out.append(line);
  }
  return out;
}

Status ExpositionLog::Sample(const MetricsSnapshot& snapshot,
                             std::string_view label) {
  if (!out_.is_open()) {
    out_.open(path_, std::ios::trunc);
    if (!out_) {
      return Status::IoError("exposition: cannot open " + path_);
    }
  }
  const double interval_ms =
      samples_written_ == 0 ? 0.0 : interval_timer_.ElapsedMs();
  interval_timer_.Restart();
  out_ << "# hdov sample " << samples_written_ << " label \"" << label
       << "\" interval_ms " << FormatNumber(interval_ms) << "\n";
  out_ << ExpositionText(snapshot);
  if (samples_written_ > 0) {
    const SnapshotDelta delta =
        SnapshotDelta::Between(previous_, snapshot, interval_ms);
    for (const MetricDelta& m : delta.metrics) {
      if (m.kind == MetricKind::kGauge || m.delta == 0.0) {
        continue;
      }
      out_ << "# rate " << SanitizeMetricName(m.name) << " delta "
           << FormatNumber(m.delta) << " per_sec "
           << FormatNumber(m.rate_per_sec) << "\n";
    }
  }
  out_.flush();
  if (!out_) {
    return Status::IoError("exposition: write to " + path_ + " failed");
  }
  previous_ = snapshot;
  ++samples_written_;
  return Status::OK();
}

}  // namespace hdov::telemetry
