#include "telemetry/slow_frame.h"

#include <algorithm>
#include <fstream>

#include "common/coding.h"
#include "telemetry/json.h"

namespace hdov::telemetry {

SlowFrameCapture::SlowFrameCapture(const SlowFrameOptions& options)
    : options_(options) {}

void SlowFrameCapture::Configure(const SlowFrameOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  frames_seen_ = 0;
  captures_dropped_ = 0;
  ring_.clear();
  ring_next_ = 0;
  captures_.clear();
}

void SlowFrameCapture::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  frames_seen_ = 0;
  captures_dropped_ = 0;
  ring_.clear();
  ring_next_ = 0;
  captures_.clear();
}

bool SlowFrameCapture::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void SlowFrameCapture::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

double SlowFrameCapture::TripThresholdMs(uint64_t wall_ns) const {
  const double wall_ms = static_cast<double>(wall_ns) / 1e6;
  if (options_.threshold_ms > 0.0 && wall_ms >= options_.threshold_ms) {
    return options_.threshold_ms;
  }
  if (options_.percentile > 0.0 && frames_seen_ >= options_.warmup_frames &&
      !ring_.empty()) {
    // Trailing percentile of the ring's service times (the ring holds the
    // previous frames; the candidate itself is not yet inserted).
    std::vector<uint64_t> walls;
    walls.reserve(ring_.size());
    for (const FrameStageRecord& r : ring_) {
      walls.push_back(r.wall_ns);
    }
    const double q = std::min(1.0, std::max(0.0, options_.percentile));
    const size_t k = std::min(
        walls.size() - 1,
        static_cast<size_t>(q * static_cast<double>(walls.size() - 1) + 0.5));
    std::nth_element(walls.begin(), walls.begin() + static_cast<long>(k),
                     walls.end());
    const uint64_t cut_ns = walls[k];
    // Require strictly-above so a flat distribution does not capture
    // every frame.
    if (wall_ns > cut_ns) {
      return static_cast<double>(cut_ns) / 1e6;
    }
  }
  return 0.0;
}

void SlowFrameCapture::OnFrame(const FrameStageRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_ || options_.ring_frames == 0) {
    return;
  }
  const double trip_ms = TripThresholdMs(record.wall_ns);
  ++frames_seen_;
  if (ring_.size() < options_.ring_frames) {
    ring_.push_back(record);
  } else {
    ring_[ring_next_] = record;
    ring_next_ = (ring_next_ + 1) % options_.ring_frames;
  }
  if (trip_ms <= 0.0) {
    return;
  }
  if (captures_.size() >= options_.max_captures) {
    ++captures_dropped_;
    return;
  }
  SlowFrameEntry entry;
  entry.record = record;
  entry.trip_threshold_ms = trip_ms;
  // Snapshot the flight events of this session within the frame's time
  // window (non-consuming: other consumers keep their drain position).
  const uint64_t end_ns = record.start_ns + record.wall_ns;
  FlightDump flight = GlobalFlightRecorder().Drain(/*consume=*/false);
  for (const FlightEvent& ev : flight.events) {
    if (ev.session == record.session && ev.ts_ns >= record.start_ns &&
        ev.ts_ns <= end_ns) {
      entry.events.push_back(ev);
    }
  }
  captures_.push_back(std::move(entry));
}

uint64_t SlowFrameCapture::frames_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_seen_;
}

size_t SlowFrameCapture::captures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captures_.size();
}

SlowDump SlowFrameCapture::Snapshot() const {
  SlowDump dump;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dump.captures = captures_;
    dump.frames_seen = frames_seen_;
    dump.captures_dropped = captures_dropped_;
  }
  // Session ids and event codes share the flight name table; snapshot it
  // so the dump is self-describing.
  const size_t names = FlightNameCount();
  dump.names.reserve(names);
  for (size_t i = 0; i < names; ++i) {
    dump.names.emplace_back(FlightNameForId(static_cast<uint16_t>(i)));
  }
  return dump;
}

Status SlowFrameCapture::WriteDump(const std::string& path) const {
  const std::string encoded = EncodeSlowDump(Snapshot());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("slow dump: cannot open " + path);
  }
  out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  if (!out) {
    return Status::IoError("slow dump: write to " + path + " failed");
  }
  return Status::OK();
}

Result<SlowDump> SlowFrameCapture::ReadDump(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("slow dump: cannot open " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IoError("slow dump: read from " + path + " failed");
  }
  return DecodeSlowDump(data);
}

SlowFrameCapture& GlobalSlowFrameCapture() {
  // Leaked like the global flight recorder: frame loops in static
  // teardown must still be able to feed it.
  static SlowFrameCapture* capture = new SlowFrameCapture();
  return *capture;
}

// ---------------------------------------------------------------------
// Dump container: "HDOVSLOW" magic, version, name table, captures.
// Thresholds are stored as nanoseconds so the container stays all-integer.

namespace {
constexpr char kSlowMagic[8] = {'H', 'D', 'O', 'V', 'S', 'L', 'O', 'W'};
constexpr uint32_t kSlowVersion = 1;
}  // namespace

std::string EncodeSlowDump(const SlowDump& dump) {
  std::string out;
  out.append(kSlowMagic, sizeof(kSlowMagic));
  EncodeFixed32(&out, kSlowVersion);
  EncodeFixed32(&out, static_cast<uint32_t>(dump.names.size()));
  EncodeFixed64(&out, dump.frames_seen);
  EncodeFixed64(&out, dump.captures_dropped);
  EncodeFixed32(&out, static_cast<uint32_t>(dump.captures.size()));
  for (const std::string& name : dump.names) {
    EncodeFixed32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
  }
  for (const SlowFrameEntry& cap : dump.captures) {
    const FrameStageRecord& r = cap.record;
    EncodeFixed32(&out, r.session);
    EncodeFixed64(&out, r.frame);
    EncodeFixed64(&out, r.start_ns);
    EncodeFixed64(&out, r.queue_ns);
    EncodeFixed64(&out, r.wall_ns);
    EncodeFixed64(&out, r.io_pages);
    EncodeFixed64(&out,
                  static_cast<uint64_t>(cap.trip_threshold_ms * 1e6 + 0.5));
    EncodeFixed32(&out, static_cast<uint32_t>(kNumTraceStages));
    for (uint64_t ns : r.stages.ns) {
      EncodeFixed64(&out, ns);
    }
    EncodeFixed64(&out, cap.events.size());
    for (const FlightEvent& ev : cap.events) {
      EncodeFixed64(&out, ev.ts_ns);
      EncodeFixed64(&out, static_cast<uint64_t>(ev.type) |
                              (static_cast<uint64_t>(ev.stage) << 8) |
                              (static_cast<uint64_t>(ev.code) << 16) |
                              (static_cast<uint64_t>(ev.session) << 32) |
                              (static_cast<uint64_t>(ev.thread) << 48));
      EncodeFixed64(&out, ev.a);
      EncodeFixed64(&out, ev.b);
    }
  }
  return out;
}

Result<SlowDump> DecodeSlowDump(std::string_view data) {
  if (data.size() < sizeof(kSlowMagic) ||
      data.compare(0, sizeof(kSlowMagic),
                   std::string_view(kSlowMagic, sizeof(kSlowMagic))) != 0) {
    return Status::Corruption("slow dump: bad magic");
  }
  const std::string_view body = data.substr(sizeof(kSlowMagic));
  Decoder dec(body);
  uint32_t version = 0;
  uint32_t name_count = 0;
  uint32_t capture_count = 0;
  SlowDump dump;
  HDOV_RETURN_IF_ERROR(dec.DecodeFixed32(&version));
  if (version != kSlowVersion) {
    return Status::Corruption("slow dump: unsupported version " +
                              std::to_string(version));
  }
  HDOV_RETURN_IF_ERROR(dec.DecodeFixed32(&name_count));
  HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&dump.frames_seen));
  HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&dump.captures_dropped));
  HDOV_RETURN_IF_ERROR(dec.DecodeFixed32(&capture_count));
  if (name_count > kMaxFlightNames) {
    return Status::Corruption("slow dump: name table too large");
  }
  dump.names.reserve(name_count);
  for (uint32_t i = 0; i < name_count; ++i) {
    uint32_t len = 0;
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed32(&len));
    if (len > dec.remaining()) {
      return Status::Corruption("slow dump: truncated name");
    }
    dump.names.emplace_back(body.substr(dec.position(), len));
    HDOV_RETURN_IF_ERROR(dec.Skip(len));
  }
  dump.captures.reserve(capture_count);
  for (uint32_t i = 0; i < capture_count; ++i) {
    SlowFrameEntry cap;
    FrameStageRecord& r = cap.record;
    uint32_t session = 0;
    uint64_t threshold_ns = 0;
    uint32_t num_stages = 0;
    uint64_t event_count = 0;
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed32(&session));
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&r.frame));
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&r.start_ns));
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&r.queue_ns));
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&r.wall_ns));
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&r.io_pages));
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&threshold_ns));
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed32(&num_stages));
    r.session = static_cast<uint16_t>(session);
    cap.trip_threshold_ms = static_cast<double>(threshold_ns) / 1e6;
    if (num_stages > 64) {
      return Status::Corruption("slow dump: implausible stage count");
    }
    for (uint32_t s = 0; s < num_stages; ++s) {
      uint64_t ns = 0;
      HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&ns));
      if (s < kNumTraceStages) {
        r.stages.ns[s] = ns;  // Future extra stages are skipped.
      }
    }
    HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&event_count));
    if (event_count > dec.remaining() / 32) {
      return Status::Corruption("slow dump: truncated event section");
    }
    cap.events.reserve(static_cast<size_t>(event_count));
    for (uint64_t e = 0; e < event_count; ++e) {
      FlightEvent ev;
      uint64_t meta = 0;
      HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&ev.ts_ns));
      HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&meta));
      HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&ev.a));
      HDOV_RETURN_IF_ERROR(dec.DecodeFixed64(&ev.b));
      ev.type = static_cast<uint8_t>(meta & 0xff);
      ev.stage = static_cast<uint8_t>((meta >> 8) & 0xff);
      ev.code = static_cast<uint16_t>((meta >> 16) & 0xffff);
      ev.session = static_cast<uint16_t>((meta >> 32) & 0xffff);
      ev.thread = static_cast<uint16_t>(meta >> 48);
      cap.events.push_back(ev);
    }
    dump.captures.push_back(std::move(cap));
  }
  if (dec.remaining() != 0) {
    return Status::Corruption("slow dump: trailing bytes");
  }
  return dump;
}

std::string SlowDumpChromeTraceJson(const SlowDump& dump) {
  constexpr int kSlowPid = 4;  // Pids 1-3 belong to the other exporters.
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  w.BeginObject();
  w.Key("name").String("process_name");
  w.Key("ph").String("M");
  w.Key("pid").Number(static_cast<uint64_t>(kSlowPid));
  w.Key("args").BeginObject();
  w.Key("name").String("slow-frame captures (wall time)");
  w.EndObject();
  w.EndObject();
  // One track (tid) per session, labeled with the session name.
  std::vector<uint16_t> sessions;
  for (const SlowFrameEntry& cap : dump.captures) {
    if (std::find(sessions.begin(), sessions.end(), cap.record.session) ==
        sessions.end()) {
      sessions.push_back(cap.record.session);
    }
  }
  std::sort(sessions.begin(), sessions.end());
  for (uint16_t session : sessions) {
    w.BeginObject();
    w.Key("name").String("thread_name");
    w.Key("ph").String("M");
    w.Key("pid").Number(static_cast<uint64_t>(kSlowPid));
    w.Key("tid").Number(static_cast<uint64_t>(session));
    w.Key("args").BeginObject();
    w.Key("name").String(dump.NameOf(session));
    w.EndObject();
    w.EndObject();
  }
  const auto slice = [&](uint16_t session, std::string_view name,
                         std::string_view cat, uint64_t start_ns,
                         uint64_t dur_ns, const SlowFrameEntry* cap) {
    w.BeginObject();
    w.Key("name").String(name);
    w.Key("cat").String(cat);
    w.Key("ph").String("X");
    w.Key("pid").Number(static_cast<uint64_t>(kSlowPid));
    w.Key("tid").Number(static_cast<uint64_t>(session));
    w.Key("ts").Number(static_cast<double>(start_ns) / 1000.0);
    w.Key("dur").Number(static_cast<double>(dur_ns) / 1000.0);
    if (cap != nullptr) {
      w.Key("args").BeginObject();
      w.Key("frame").Number(cap->record.frame);
      w.Key("queue_ms")
          .Number(static_cast<double>(cap->record.queue_ns) / 1e6);
      w.Key("service_ms")
          .Number(static_cast<double>(cap->record.wall_ns) / 1e6);
      w.Key("io_pages").Number(cap->record.io_pages);
      w.Key("trip_threshold_ms").Number(cap->trip_threshold_ms);
      w.EndObject();
    }
    w.EndObject();
  };
  for (const SlowFrameEntry& cap : dump.captures) {
    const FrameStageRecord& r = cap.record;
    std::string frame_name = "frame ";
    frame_name += std::to_string(r.frame);
    frame_name += " (slow)";
    if (r.queue_ns > 0 && r.start_ns >= r.queue_ns) {
      slice(r.session, "queue wait", "queue", r.start_ns - r.queue_ns,
            r.queue_ns, nullptr);
    }
    slice(r.session, frame_name, "frame", r.start_ns, r.wall_ns, &cap);
    // Stage breakdown as child slices laid end to end in stage order —
    // an aggregate view, not the true interleaving (see header).
    uint64_t cursor = r.start_ns;
    for (size_t s = 0; s < kNumTraceStages; ++s) {
      const uint64_t ns = r.stages.ns[s];
      if (ns == 0) {
        continue;
      }
      slice(r.session, TraceStageName(static_cast<TraceStage>(s)), "stage",
            cursor, ns, nullptr);
      cursor += ns;
    }
    for (const FlightEvent& ev : cap.events) {
      const auto type = static_cast<FlightEventType>(ev.type);
      if (type != FlightEventType::kPageRead &&
          type != FlightEventType::kPageWrite &&
          type != FlightEventType::kPoolHit &&
          type != FlightEventType::kPoolMiss) {
        continue;
      }
      w.BeginObject();
      w.Key("name").String(dump.NameOf(ev.code));
      w.Key("cat").String("io");
      w.Key("ph").String("i");
      w.Key("s").String("t");
      w.Key("pid").Number(static_cast<uint64_t>(kSlowPid));
      w.Key("tid").Number(static_cast<uint64_t>(ev.session));
      w.Key("ts").Number(static_cast<double>(ev.ts_ns) / 1000.0);
      w.Key("args").BeginObject();
      w.Key("type").String(FlightEventTypeName(type));
      w.Key("stage").String(TraceStageName(static_cast<TraceStage>(ev.stage)));
      w.Key("a").Number(ev.a);
      w.Key("b").Number(ev.b);
      w.EndObject();
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace hdov::telemetry
