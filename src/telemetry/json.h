// Minimal zero-dependency JSON support for the telemetry exporters: a
// streaming writer (used to dump metric snapshots, frame records and
// search traces) and a small recursive-descent parser (used by tests for
// round-trip checks and by tooling that consumes `--telemetry-out`
// files). Not a general-purpose JSON library: numbers are doubles,
// objects preserve insertion order, and inputs larger than a snapshot
// file were never a design goal.

#ifndef HDOV_TELEMETRY_JSON_H_
#define HDOV_TELEMETRY_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace hdov::telemetry {

// Appends `text` to `out` with JSON string escaping (quotes included).
void AppendJsonString(std::string* out, std::string_view text);

// Streaming JSON writer. The caller is responsible for well-formedness
// (matching Begin/End, Key before every object value); commas are
// inserted automatically.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Number(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Splices pre-serialized JSON in as one value; the caller guarantees
  // `json` is a complete well-formed document fragment.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true until the first element is written.
  std::vector<bool> first_;
  bool after_key_ = false;
};

// Parsed JSON value. Numbers are stored as doubles (telemetry counters
// stay exact up to 2^53, far beyond any simulated run).
struct JsonValue {
  enum class Type : uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                                 // kArray.
  std::vector<std::pair<std::string, JsonValue>> members;       // kObject.

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

// Parses a complete JSON document (trailing whitespace allowed, trailing
// garbage rejected).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace hdov::telemetry

#endif  // HDOV_TELEMETRY_JSON_H_
