// TraceContext: the ambient identity of the work a thread is doing right
// now — which session it serves, which frame of that session, and which
// pipeline stage (search / fetch / render / prefetch) is executing. The
// context is thread-local and set by RAII scopes at the layer that knows
// the answer (WalkthroughServer / PlaySession set session+frame, the
// searcher and VisualSystem phases set the stage); everything below —
// page devices, buffer pools, span hooks — stays signature-free: the
// flight recorder reads the context at Record() time and stamps every
// event with it. That is what makes a pool miss attributable to "session
// u03, frame 217, fetch stage" without threading arguments through five
// layers.
//
// Stage accounting: alongside the context, each thread keeps a per-frame
// wall-clock breakdown by stage. Every stage switch (scope enter/exit)
// closes the current interval and charges it to the stage that was
// active, so the per-stage numbers are exclusive (self) times that sum to
// the frame's wall time. BeginStageAccounting() zeroes the breakdown at
// frame start; FinishStageAccounting() flushes and returns it.
//
// Determinism: the context and the accounting touch only thread-locals
// and the steady clock — never the SimClock, IoStats or a metrics
// registry — so enabling them cannot move a simulated counter (the same
// contract the flight recorder honors; see docs/telemetry.md).

#ifndef HDOV_TELEMETRY_TRACE_CONTEXT_H_
#define HDOV_TELEMETRY_TRACE_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hdov::telemetry {

// Pipeline stage of a walkthrough frame. Values are stamped into flight
// events (8 bits on the wire), so they are append-only.
enum class TraceStage : uint8_t {
  kNone = 0,      // Outside any stage scope (setup, scheduling, misc).
  kSearch = 1,    // HDoV-tree threshold search (Fig. 3 traversal).
  kFetch = 2,     // Model/V-page fetches of the frame's result set.
  kRender = 3,    // Render cost model + frame finalization.
  kPrefetch = 4,  // Speculative next-cell loading.
};
inline constexpr size_t kNumTraceStages = 5;

std::string_view TraceStageName(TraceStage stage);

// The ambient per-thread context. `session` is a flight-recorder interned
// name id (FlightInternName of the session name) so dumps resolve it to a
// string for free; 0 means unattributed.
struct TraceContext {
  uint16_t session = 0;
  uint64_t frame = 0;
  TraceStage stage = TraceStage::kNone;
};

// The calling thread's current context (reference stays valid for the
// thread's lifetime; scopes below mutate it).
const TraceContext& CurrentTraceContext();

// Per-frame wall-clock breakdown by stage, in nanoseconds of exclusive
// (self) time. ns[0] (kNone) absorbs time outside any stage scope.
struct StageBreakdown {
  uint64_t ns[kNumTraceStages] = {};

  uint64_t total_ns() const {
    uint64_t t = 0;
    for (uint64_t v : ns) {
      t += v;
    }
    return t;
  }
};

// Zeroes the calling thread's breakdown and opens a fresh interval.
// Call at frame start (the scheduler's dispatch point).
void BeginStageAccounting();

// Closes the open interval, charges it to the active stage, and returns
// the breakdown accumulated since BeginStageAccounting().
StageBreakdown FinishStageAccounting();

// RAII session identity: sets session+frame on construction, restores the
// previous values on destruction (scopes nest, e.g. a server worker
// switching between batched sessions).
class SessionTraceScope {
 public:
  SessionTraceScope(uint16_t session, uint64_t frame);
  ~SessionTraceScope();

  SessionTraceScope(const SessionTraceScope&) = delete;
  SessionTraceScope& operator=(const SessionTraceScope&) = delete;

 private:
  uint16_t prev_session_;
  uint64_t prev_frame_;
};

// RAII stage marker: switches the thread's stage on construction and back
// on destruction, charging the elapsed intervals to the stages that were
// active (see the stage-accounting contract above). Nesting is exclusive:
// a kSearch scope inside a kPrefetch scope charges the traversal to
// kSearch and only the surrounding work to kPrefetch.
class StageTraceScope {
 public:
  explicit StageTraceScope(TraceStage stage);
  ~StageTraceScope();

  StageTraceScope(const StageTraceScope&) = delete;
  StageTraceScope& operator=(const StageTraceScope&) = delete;

 private:
  TraceStage prev_;
};

}  // namespace hdov::telemetry

#endif  // HDOV_TELEMETRY_TRACE_CONTEXT_H_
