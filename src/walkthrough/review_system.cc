#include "walkthrough/review_system.h"

#include <algorithm>

namespace hdov {

ReviewSystem::ReviewSystem(const Scene* scene, const ReviewOptions& options)
    : scene_(scene), options_(options),
      index_device_(options.disk, &clock_),
      model_device_(options.disk, &clock_),
      models_(&model_device_) {}

Result<std::unique_ptr<ReviewSystem>> ReviewSystem::Create(
    const Scene* scene, const ReviewOptions& options) {
  auto system =
      std::unique_ptr<ReviewSystem>(new ReviewSystem(scene, options));

  RTree rtree(options.rtree);
  for (const Object& obj : scene->objects()) {
    HDOV_RETURN_IF_ERROR(rtree.Insert(obj.mbr, obj.id));
  }
  HDOV_ASSIGN_OR_RETURN(PackedRTree packed,
                        PackedRTree::Pack(rtree, &system->index_device_));
  system->packed_ = std::make_unique<PackedRTree>(packed);

  system->object_models_.resize(scene->size());
  for (const Object& obj : scene->objects()) {
    auto& slots = system->object_models_[obj.id];
    for (size_t level = 0; level < obj.lods.num_levels(); ++level) {
      slots.push_back(
          system->models_.Register(obj.lods.level(level).byte_size));
    }
  }
  system->ResetIoStats();
  return system;
}

void ReviewSystem::RegisterTelemetry() {
  telemetry::MetricsRegistry& m = telemetry()->metrics();
  const std::string& p = telemetry_prefix();
  index_device_.RegisterWith(&m, p + ".io.index");
  model_device_.RegisterWith(&m, p + ".io.model");
  frame_time_hist_ = m.GetHistogram(
      p + ".frame.time_ms", telemetry::ExponentialBuckets(0.25, 2.0, 14));
}

Aabb ReviewSystem::QueryBox(const Vec3& position) const {
  const double half = options_.query_box_size / 2.0;
  // The box spans the full world height: tall buildings must be found
  // regardless of the pedestrian eye height.
  return Aabb(Vec3(position.x - half, position.y - half,
                   scene_->bounds().min.z),
              Vec3(position.x + half, position.y + half,
                   scene_->bounds().max.z));
}

size_t ReviewSystem::LodLevelForDistance(ObjectId id, double distance) const {
  const Object& obj = scene_->object(id);
  const size_t levels = obj.lods.num_levels();
  size_t level = options_.lod_distance_fractions.size();  // Coarsest bucket.
  for (size_t i = 0; i < options_.lod_distance_fractions.size(); ++i) {
    if (distance <
        options_.lod_distance_fractions[i] * options_.query_box_size) {
      level = i;
      break;
    }
  }
  return std::min(level, levels - 1);
}

Status ReviewSystem::Query(const Vec3& position,
                           std::vector<uint64_t>* object_ids) {
  return packed_->WindowQuery(QueryBox(position), object_ids);
}

Status ReviewSystem::RenderFrame(const Viewpoint& viewpoint,
                                 FrameResult* result) {
  telemetry::FlightFrameScope flight(FlightCode(), NextFlightFrame());
  const double t0 = clock_.NowMillis();
  const IoStats light0 = index_device_.stats();
  const IoStats model0 = model_device_.stats();

  std::vector<uint64_t> ids;
  HDOV_RETURN_IF_ERROR(Query(viewpoint.position, &ids));

  // Complement search + fetch. An object resident at a coarser LoD than
  // now required is re-fetched at the finer LoD.
  size_t fetched = 0;
  uint64_t triangles = 0;
  last_result_.clear();
  last_result_.reserve(ids.size());
  for (uint64_t raw_id : ids) {
    const ObjectId id = static_cast<ObjectId>(raw_id);
    const Object& obj = scene_->object(id);
    const double distance = obj.mbr.DistanceTo(viewpoint.position);
    const uint32_t level =
        static_cast<uint32_t>(LodLevelForDistance(id, distance));

    auto it = resident_.find(id);
    const bool needs_fetch =
        !delta_enabled_ || it == resident_.end() || it->second.first > level;
    if (needs_fetch) {
      HDOV_RETURN_IF_ERROR(models_.Fetch(object_models_[id][level]));
      ++fetched;
      resident_[id] = {level, obj.lods.level(level).byte_size};
    }

    RetrievedLod lod;
    lod.kind = RetrievedLod::Kind::kObject;
    lod.owner = id;
    lod.lod_level = level;
    lod.model = object_models_[id][level];
    lod.triangle_count = obj.lods.level(level).triangle_count;
    lod.byte_size = obj.lods.level(level).byte_size;
    triangles += lod.triangle_count;
    last_result_.push_back(lod);
  }

  // Semantic cache replacement: evict objects beyond the cache distance.
  for (auto it = resident_.begin(); it != resident_.end();) {
    const Object& obj = scene_->object(it->first);
    if (obj.mbr.DistanceTo(viewpoint.position) > options_.cache_distance) {
      it = resident_.erase(it);
    } else {
      ++it;
    }
  }

  const IoStats light1 = index_device_.stats();
  const IoStats model1 = model_device_.stats();
  result->query_time_ms = clock_.NowMillis() - t0;
  result->light_io_pages = light1.Delta(light0).page_reads;
  result->io_pages =
      result->light_io_pages + model1.Delta(model0).page_reads;
  result->rendered_triangles = triangles;
  result->models_fetched = fetched;
  result->index_bytes_read = light1.Delta(light0).bytes_read;
  result->model_bytes_read = model1.Delta(model0).bytes_read;
  result->resident_bytes = 0;
  for (const auto& [id, entry] : resident_) {
    result->resident_bytes += entry.second;
  }
  result->frame_time_ms =
      result->query_time_ms + options_.render.FrameMillis(triangles);
  flight.set_io_pages(result->io_pages);
  if (TelemetryOn()) {
    frame_time_hist_->Observe(result->frame_time_ms);
    EmitFrameRecord(*result, 0);  // REVIEW has no viewing-cell notion.
  }
  return Status::OK();
}

void ReviewSystem::ResetRuntime() {
  resident_.clear();
  last_result_.clear();
}

IoStats ReviewSystem::TotalIoStats() const {
  IoStats s = index_device_.stats();
  s += model_device_.stats();
  return s;
}

void ReviewSystem::ResetIoStats() {
  index_device_.ResetStats();
  model_device_.ResetStats();
  clock_.Reset();
}

}  // namespace hdov
