#include "walkthrough/visual_system.h"

#include <algorithm>
#include <unordered_set>

namespace hdov {

VisualSystem::VisualSystem(const Scene* scene, const CellGrid* grid,
                           const VisualOptions& options)
    : scene_(scene), grid_(grid), options_(options),
      tree_device_(options.disk, &clock_),
      store_device_(options.disk, &clock_),
      model_device_(options.disk, &clock_),
      models_(&model_device_) {}

Result<std::unique_ptr<VisualSystem>> VisualSystem::Create(
    const Scene* scene, const CellGrid* grid, const VisibilityTable* table,
    const VisualOptions& options) {
  if (grid->num_cells() != table->num_cells()) {
    return Status::InvalidArgument(
        "visual: grid and visibility table disagree on cell count");
  }
  auto system = std::unique_ptr<VisualSystem>(
      new VisualSystem(scene, grid, options));
  HDOV_ASSIGN_OR_RETURN(
      system->tree_,
      HdovBuilder::Build(*scene, &system->models_, options.build));
  HDOV_RETURN_IF_ERROR(system->tree_.Pack(&system->tree_device_));
  HDOV_ASSIGN_OR_RETURN(
      system->store_,
      BuildStore(options.scheme, system->tree_, *table,
                 &system->store_device_));
  system->searcher_ = std::make_unique<HdovSearcher>(
      &system->tree_, scene, &system->models_, &system->tree_device_);
  system->ResetIoStats();
  return system;
}

Status VisualSystem::Query(const Vec3& position, bool fetch_models,
                           std::vector<RetrievedLod>* result,
                           SearchStats* stats) {
  const CellId cell = grid_->ClampedCellForPoint(position);
  SearchOptions search = options_.search;
  search.eta = options_.eta;
  HDOV_RETURN_IF_ERROR(searcher_->Search(store_.get(), cell, search, result,
                                         stats));
  if (fetch_models) {
    for (const RetrievedLod& lod : *result) {
      HDOV_RETURN_IF_ERROR(models_.Fetch(lod.model));
    }
  }
  return Status::OK();
}

Status VisualSystem::QueryWithHeuristic(const Vec3& position,
                                        TerminationHeuristic heuristic,
                                        std::vector<RetrievedLod>* result) {
  const CellId cell = grid_->ClampedCellForPoint(position);
  SearchOptions search = options_.search;
  search.eta = options_.eta;
  search.heuristic = heuristic;
  HDOV_RETURN_IF_ERROR(
      searcher_->Search(store_.get(), cell, search, result, nullptr));
  for (const RetrievedLod& lod : *result) {
    HDOV_RETURN_IF_ERROR(models_.Fetch(lod.model));
  }
  return Status::OK();
}

Status VisualSystem::RenderFrame(const Viewpoint& viewpoint,
                                 FrameResult* result) {
  const double t0 = clock_.NowMillis();
  const IoStats light0 = [&] {
    IoStats s = tree_device_.stats();
    s += store_device_.stats();
    return s;
  }();
  const IoStats total0 = [&] {
    IoStats s = light0;
    s += model_device_.stats();
    return s;
  }();

  HDOV_RETURN_IF_ERROR(
      Query(viewpoint.position, /*fetch_models=*/false, &last_result_,
            nullptr));

  // Delta search: a representation whose owner is already resident at the
  // required (or a finer) LoD is reused; otherwise the requested level is
  // fetched. Afterwards only the current working set stays resident
  // (semantic replacement).
  size_t fetched = 0;
  std::unordered_map<uint64_t, ResidentEntry> next_resident;
  next_resident.reserve(last_result_.size());
  uint64_t triangles = 0;
  for (const RetrievedLod& lod : last_result_) {
    const uint64_t key = ResidentKey(lod);
    ResidentEntry entry{lod.lod_level, lod.byte_size, lod.triangle_count};
    auto it = resident_.find(key);
    const bool reusable =
        delta_enabled_ && it != resident_.end() &&
        it->second.lod_level <= lod.lod_level;  // Finer or equal resident.
    if (reusable) {
      entry = it->second;  // Render the (possibly finer) resident copy.
    } else {
      HDOV_RETURN_IF_ERROR(models_.Fetch(lod.model));
      ++fetched;
    }
    triangles += entry.triangle_count;
    next_resident[key] = entry;
  }
  resident_ = std::move(next_resident);

  // Idle-frame prefetching toward the predicted next cell. Prefetched
  // representations are pinned in the resident set so the eventual cell
  // flip finds them loaded.
  if (options_.prefetch_models_per_frame > 0 && delta_enabled_ &&
      fetched == 0) {
    HDOV_RETURN_IF_ERROR(RunPrefetch(
        viewpoint, grid_->ClampedCellForPoint(viewpoint.position), &fetched));
  }
  for (const auto& [key, entry] : prefetch_.loaded) {
    resident_.emplace(key, entry);  // Keep current-result entries as-is.
  }

  IoStats light1 = tree_device_.stats();
  light1 += store_device_.stats();
  IoStats total1 = light1;
  total1 += model_device_.stats();

  result->query_time_ms = clock_.NowMillis() - t0;
  result->io_pages = total1.Delta(total0).page_reads;
  result->light_io_pages = light1.Delta(light0).page_reads;
  result->rendered_triangles = triangles;
  result->models_fetched = fetched;
  result->resident_bytes = 0;
  for (const auto& [key, entry] : resident_) {
    result->resident_bytes += entry.byte_size;
  }
  result->frame_time_ms =
      result->query_time_ms + options_.render.FrameMillis(triangles);
  return Status::OK();
}

Status VisualSystem::RunPrefetch(const Viewpoint& viewpoint,
                                 CellId current_cell, size_t* fetched) {
  // Predict the next cell by stepping one cell diameter along the look
  // direction.
  const Vec3 cell_extent = grid_->CellBounds(current_cell).Extent();
  const double stride = std::max(cell_extent.x, cell_extent.y);
  Vec3 look_xy(viewpoint.look.x, viewpoint.look.y, 0.0);
  look_xy = look_xy.Normalized();
  const Vec3 probe = viewpoint.position + look_xy * stride;
  const CellId ahead = grid_->ClampedCellForPoint(probe);
  if (ahead == current_cell) {
    return Status::OK();
  }
  if (prefetch_.cell != ahead) {
    prefetch_.cell = ahead;
    prefetch_.next = 0;
    prefetch_.loaded.clear();
    SearchOptions search = options_.search;
    search.eta = options_.eta;
    HDOV_RETURN_IF_ERROR(searcher_->Search(store_.get(), ahead, search,
                                           &prefetch_.pending, nullptr));
  }
  size_t budget = options_.prefetch_models_per_frame;
  while (budget > 0 && prefetch_.next < prefetch_.pending.size()) {
    const RetrievedLod& lod = prefetch_.pending[prefetch_.next++];
    const uint64_t key = ResidentKey(lod);
    auto it = resident_.find(key);
    if (it != resident_.end() && it->second.lod_level <= lod.lod_level) {
      continue;  // Already resident at sufficient detail.
    }
    if (auto pf = prefetch_.loaded.find(key);
        pf != prefetch_.loaded.end() && pf->second.lod_level <= lod.lod_level) {
      continue;
    }
    HDOV_RETURN_IF_ERROR(models_.Fetch(lod.model));
    prefetch_.loaded[key] =
        ResidentEntry{lod.lod_level, lod.byte_size, lod.triangle_count};
    ++*fetched;
    --budget;
  }
  return Status::OK();
}

void VisualSystem::ResetRuntime() {
  resident_.clear();
  last_result_.clear();
  prefetch_ = PrefetchState();
}

IoStats VisualSystem::TotalIoStats() const {
  IoStats s = tree_device_.stats();
  s += store_device_.stats();
  s += model_device_.stats();
  return s;
}

void VisualSystem::ResetIoStats() {
  tree_device_.ResetStats();
  store_device_.ResetStats();
  model_device_.ResetStats();
  clock_.Reset();
}

}  // namespace hdov
