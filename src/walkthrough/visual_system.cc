#include "walkthrough/visual_system.h"

#include <algorithm>
#include <unordered_set>

#include "persist/world_codec.h"
#include "telemetry/trace_context.h"

namespace hdov {

VisualSystem::VisualSystem(const Scene* scene, const CellGrid* grid,
                           const VisualOptions& options)
    : scene_(scene), grid_(grid), options_(options),
      tree_device_(std::make_unique<PageDevice>(options.disk, &clock_)),
      store_device_(std::make_unique<PageDevice>(options.disk, &clock_)),
      model_device_(std::make_unique<PageDevice>(options.disk, &clock_)),
      models_(std::make_unique<ModelStore>(model_device_.get())) {}

// Shared tail of the three factories: wire the searcher of the configured
// backend and the optional tree cache, then zero every simulated counter
// and the disk-head trackers so measured workloads start from an identical
// state on every path.
Status VisualSystem::FinishConstruction() {
  searcher_ = std::make_unique<HdovSearcher>(tree_.get(), scene_,
                                             models_.get(),
                                             tree_device_.get());
  if (options_.backend == SearchBackend::kFlat) {
    if (flat_tree_ == nullptr) {
      HDOV_ASSIGN_OR_RETURN(FlatHdovTree flat,
                            FlatHdovTree::Compile(*tree_));
      flat_tree_ = std::make_shared<const FlatHdovTree>(std::move(flat));
    }
    flat_searcher_ = std::make_unique<FlatSearcher>(
        flat_tree_.get(), scene_, models_.get(), tree_device_.get());
  }
  if (options_.tree_cache_pages > 0) {
    tree_cache_ = std::make_unique<BufferPool>(tree_device_.get(),
                                               options_.tree_cache_pages);
    searcher_->set_tree_cache(tree_cache_.get());
    if (flat_searcher_ != nullptr) {
      flat_searcher_->set_tree_cache(tree_cache_.get());
    }
  }
  // Nonzero prefetch_models_per_frame is the historical way to ask for
  // the (then-inline) synchronous prefetch; it keeps meaning exactly
  // that.
  if (options_.prefetch == prefetch::PrefetchMode::kOff &&
      options_.prefetch_models_per_frame > 0) {
    options_.prefetch = prefetch::PrefetchMode::kSync;
  }
  if (options_.prefetch != prefetch::PrefetchMode::kOff) {
    prefetch::PrefetcherOptions popt;
    popt.mode = options_.prefetch;
    popt.max_models = options_.prefetch_max_models;
    prefetch::PrefetcherWiring wiring;
    wiring.grid = grid_;
    if (options_.prefetch == prefetch::PrefetchMode::kAsync) {
      wiring.scene = scene_;
      wiring.tree = tree_;
      wiring.scheme = options_.scheme;
      store_->EncodeMeta(&wiring.store_meta);
      wiring.models = models_.get();
      wiring.tree_device = tree_device_.get();
      wiring.store_device = store_device_.get();
      wiring.model_device = model_device_.get();
      if (options_.prefetch_queue != nullptr) {
        wiring.queue = options_.prefetch_queue;
      } else {
        prefetch::FetchQueueOptions qopt;
        qopt.workers = options_.prefetch_workers;
        own_queue_ = std::make_unique<prefetch::AsyncFetchQueue>(qopt);
        wiring.queue = own_queue_.get();
      }
      if (warm_pool_) {
        auto warm = warm_pool_;
        wiring.warm_pool = [warm](prefetch::PrefetchRole role) {
          return warm(static_cast<SessionDeviceRole>(static_cast<int>(role)));
        };
      }
      wiring.is_resident = [this](const RetrievedLod& lod) {
        auto it = resident_.find(ResidentKey(lod));
        return it != resident_.end() && it->second.lod_level <= lod.lod_level;
      };
    }
    HDOV_ASSIGN_OR_RETURN(prefetcher_,
                          prefetch::Prefetcher::Create(wiring, popt));
  }
  tree_device_->ResetAccessTracker();
  store_device_->ResetAccessTracker();
  model_device_->ResetAccessTracker();
  ResetIoStats();
  return Status::OK();
}

Status VisualSystem::RunSearch(CellId cell, const SearchOptions& search,
                               std::vector<RetrievedLod>* result,
                               SearchStats* stats) {
  if (flat_searcher_ != nullptr) {
    return flat_searcher_->Search(store_.get(), cell, search, result, stats);
  }
  return searcher_->Search(store_.get(), cell, search, result, stats);
}

Result<std::unique_ptr<VisualSystem>> VisualSystem::Create(
    const Scene* scene, const CellGrid* grid, const VisibilityTable* table,
    const VisualOptions& options) {
  if (grid->num_cells() != table->num_cells()) {
    return Status::InvalidArgument(
        "visual: grid and visibility table disagree on cell count");
  }
  auto system = std::unique_ptr<VisualSystem>(
      new VisualSystem(scene, grid, options));
  // Build and pack mutate the tree; afterwards it is frozen behind a
  // shared const handle (sessions of a server may alias it).
  HDOV_ASSIGN_OR_RETURN(
      HdovTree built,
      HdovBuilder::Build(*scene, system->models_.get(), options.build));
  HDOV_RETURN_IF_ERROR(built.Pack(system->tree_device_.get()));
  system->tree_ = std::make_shared<const HdovTree>(std::move(built));
  HDOV_ASSIGN_OR_RETURN(
      system->store_,
      BuildStore(options.scheme, *system->tree_, *table,
                 system->store_device_.get(), options.build_threads));
  HDOV_RETURN_IF_ERROR(system->FinishConstruction());
  return system;
}

Result<std::unique_ptr<VisualSystem>> VisualSystem::CreateFromSnapshot(
    const SnapshotLoader& snapshot, const Scene* scene, const CellGrid* grid,
    const VisualOptions& options, SnapshotLoadMode mode) {
  if (snapshot.page_size() != options.disk.page_size) {
    return Status::InvalidArgument(
        "visual: snapshot page size does not match the disk model");
  }
  auto system = std::unique_ptr<VisualSystem>(
      new VisualSystem(scene, grid, options));
  const std::string scheme = StorageSchemeName(options.scheme);
  if (mode == SnapshotLoadMode::kFileBacked) {
    HDOV_ASSIGN_OR_RETURN(
        system->tree_device_,
        snapshot.OpenDevice(kSectionTreeDevice, options.disk,
                            &system->clock_));
    HDOV_ASSIGN_OR_RETURN(
        system->store_device_,
        snapshot.OpenDevice(StoreDeviceSection(scheme), options.disk,
                            &system->clock_));
    HDOV_ASSIGN_OR_RETURN(
        system->model_device_,
        snapshot.OpenDevice(kSectionModelDevice, options.disk,
                            &system->clock_));
  } else {
    HDOV_RETURN_IF_ERROR(snapshot.RestoreDevice(kSectionTreeDevice,
                                                system->tree_device_.get()));
    HDOV_RETURN_IF_ERROR(snapshot.RestoreDevice(
        StoreDeviceSection(scheme), system->store_device_.get()));
    HDOV_RETURN_IF_ERROR(snapshot.RestoreDevice(kSectionModelDevice,
                                                system->model_device_.get()));
  }
  system->models_ =
      std::make_unique<ModelStore>(system->model_device_.get());
  HDOV_ASSIGN_OR_RETURN(std::string model_meta,
                        snapshot.ReadBlob(kSectionModelMeta));
  HDOV_RETURN_IF_ERROR(system->models_->RestoreMeta(model_meta));
  HDOV_ASSIGN_OR_RETURN(std::string manifest,
                        snapshot.ReadBlob(kSectionTreeManifest));
  HDOV_ASSIGN_OR_RETURN(
      HdovTree loaded,
      HdovTree::FromManifest(system->tree_device_.get(), manifest));
  system->tree_ = std::make_shared<const HdovTree>(std::move(loaded));
  HDOV_ASSIGN_OR_RETURN(std::string store_meta,
                        snapshot.ReadBlob(StoreMetaSection(scheme)));
  HDOV_ASSIGN_OR_RETURN(
      system->store_,
      LoadStore(options.scheme, *system->tree_, store_meta,
                system->store_device_.get()));
  HDOV_RETURN_IF_ERROR(system->FinishConstruction());
  return system;
}

Result<std::unique_ptr<VisualSystem>> VisualSystem::CreateSessionView(
    const SharedWorldView& world, const VisualOptions& options) {
  if (world.scene == nullptr || world.grid == nullptr ||
      world.tree == nullptr || !world.make_device) {
    return Status::InvalidArgument(
        "visual: shared world view is missing a component");
  }
  auto system = std::unique_ptr<VisualSystem>(
      new VisualSystem(world.scene, world.grid, options));
  HDOV_ASSIGN_OR_RETURN(
      system->tree_device_,
      world.make_device(SessionDeviceRole::kTree, &system->clock_));
  HDOV_ASSIGN_OR_RETURN(
      system->store_device_,
      world.make_device(SessionDeviceRole::kStore, &system->clock_));
  HDOV_ASSIGN_OR_RETURN(
      system->model_device_,
      world.make_device(SessionDeviceRole::kModel, &system->clock_));
  system->warm_pool_ = world.warm_pool;
  system->models_ =
      std::make_unique<ModelStore>(system->model_device_.get());
  HDOV_RETURN_IF_ERROR(system->models_->RestoreMeta(world.model_meta));
  system->tree_ = world.tree;
  system->flat_tree_ = world.flat_tree;  // May be null: compiled on demand.
  HDOV_ASSIGN_OR_RETURN(
      system->store_,
      LoadStore(options.scheme, *system->tree_, world.store_meta,
                system->store_device_.get()));
  HDOV_RETURN_IF_ERROR(system->FinishConstruction());
  return system;
}

void VisualSystem::RegisterTelemetry() {
  telemetry::MetricsRegistry& m = telemetry()->metrics();
  const std::string& p = telemetry_prefix();
  tree_device_->RegisterWith(&m, p + ".io.tree");
  store_device_->RegisterWith(&m, p + ".io.store");
  model_device_->RegisterWith(&m, p + ".io.model");
  store_->RegisterTelemetry(&m, p);
  if (tree_cache_ != nullptr) {
    tree_cache_->RegisterWith(&m, p + ".cache.tree");
  }
  if (prefetcher_ != nullptr &&
      prefetcher_->mode() == prefetch::PrefetchMode::kAsync) {
    // Async only: the sync fold must not add metrics the pinned baseline
    // snapshots do not carry.
    prefetcher_->RegisterTelemetry(&m, p);
  }
  ctr_queries_ = m.GetCounter(p + ".search.queries");
  ctr_nodes_visited_ = m.GetCounter(p + ".search.nodes_visited");
  ctr_vpages_fetched_ = m.GetCounter(p + ".search.vpages_fetched");
  ctr_hidden_pruned_ = m.GetCounter(p + ".search.hidden_pruned");
  ctr_internal_terminations_ =
      m.GetCounter(p + ".search.internal_terminations");
  frame_time_hist_ = m.GetHistogram(
      p + ".frame.time_ms", telemetry::ExponentialBuckets(0.25, 2.0, 14));
  // The node-fanout distribution is a build-time property; fill it once.
  telemetry::Histogram* fanout = m.GetHistogram(
      p + ".tree.node_fanout",
      telemetry::LinearBuckets(2.0, 2.0,
                               std::max<size_t>(2, tree_->fanout() / 2 + 1)));
  for (size_t i = 0; i < tree_->num_nodes(); ++i) {
    fanout->Observe(static_cast<double>(tree_->node(i).entries.size()));
  }
}

void VisualSystem::CountQuery(const SearchStats& stats) {
  ctr_queries_->Increment();
  ctr_nodes_visited_->Add(stats.nodes_visited);
  ctr_vpages_fetched_->Add(stats.vpages_fetched);
  ctr_hidden_pruned_->Add(stats.hidden_entries_pruned);
  ctr_internal_terminations_->Add(stats.internal_terminations);
}

Status VisualSystem::Query(const Vec3& position, bool fetch_models,
                           std::vector<RetrievedLod>* result,
                           SearchStats* stats) {
  const CellId cell = grid_->ClampedCellForPoint(position);
  SearchOptions search = options_.search;
  search.eta = options_.eta;
  const bool telemetry_on = TelemetryOn();
  SearchStats local_stats;
  SearchStats* stats_out =
      stats != nullptr ? stats : (telemetry_on ? &local_stats : nullptr);
  const double t0 = clock_.NowMillis();
  const IoStats tree0 = tree_device_->stats();
  const IoStats store0 = store_device_->stats();
  const IoStats model0 = model_device_->stats();
  if (telemetry_on) {
    // Trace sampling: only 1-in-N queries carry a full span tree; the
    // flight recorder still sees every page/pool event regardless.
    telemetry::TraceRecorder& tracer = telemetry()->tracer();
    if (tracer.SampleQuery()) {
      search.trace = &tracer;
    }
  }
  HDOV_RETURN_IF_ERROR(RunSearch(cell, search, result, stats_out));
  if (fetch_models) {
    telemetry::StageTraceScope stage(telemetry::TraceStage::kFetch);
    for (const RetrievedLod& lod : *result) {
      HDOV_RETURN_IF_ERROR(models_->Fetch(lod.model));
    }
  }
  if (telemetry_on) {
    CountQuery(*stats_out);
    if (!in_frame_) {
      // Standalone query (the Figs. 7-9 bench path): emit its own record.
      FrameResult r;
      r.query_time_ms = clock_.NowMillis() - t0;
      const IoStats tree_d = tree_device_->stats().Delta(tree0);
      const IoStats store_d = store_device_->stats().Delta(store0);
      const IoStats model_d = model_device_->stats().Delta(model0);
      r.light_io_pages = tree_d.page_reads + store_d.page_reads;
      r.io_pages = r.light_io_pages + model_d.page_reads;
      r.index_bytes_read = tree_d.bytes_read;
      r.store_bytes_read = store_d.bytes_read;
      r.model_bytes_read = model_d.bytes_read;
      r.search = *stats_out;
      r.models_fetched = fetch_models ? result->size() : 0;
      EmitFrameRecord(r, cell, "query");
    }
  }
  return Status::OK();
}

Status VisualSystem::QueryWithHeuristic(const Vec3& position,
                                        TerminationHeuristic heuristic,
                                        std::vector<RetrievedLod>* result) {
  const CellId cell = grid_->ClampedCellForPoint(position);
  SearchOptions search = options_.search;
  search.eta = options_.eta;
  search.heuristic = heuristic;
  HDOV_RETURN_IF_ERROR(RunSearch(cell, search, result, nullptr));
  for (const RetrievedLod& lod : *result) {
    HDOV_RETURN_IF_ERROR(models_->Fetch(lod.model));
  }
  return Status::OK();
}

Status VisualSystem::RenderFrame(const Viewpoint& viewpoint,
                                 FrameResult* result) {
  telemetry::FlightFrameScope flight(FlightCode(), NextFlightFrame());
  const CellId frame_cell = grid_->ClampedCellForPoint(viewpoint.position);
  if (prefetcher_ != nullptr) {
    // Async pipeline: runs staged at the end of the previous frame have
    // completed in the frame gap — publish them resident before anything
    // bills. No-op in sync mode / when nothing was staged.
    prefetcher_->BeginFrame();
  }
  const double t0 = clock_.NowMillis();
  const IoStats tree0 = tree_device_->stats();
  const IoStats store0 = store_device_->stats();
  const IoStats model0 = model_device_->stats();
  const uint64_t cache_hits0 =
      tree_cache_ != nullptr ? tree_cache_->stats().hits : 0;
  const uint64_t cache_misses0 =
      tree_cache_ != nullptr ? tree_cache_->stats().misses : 0;

  in_frame_ = true;
  struct InFrameGuard {
    bool* flag;
    ~InFrameGuard() { *flag = false; }
  } in_frame_guard{&in_frame_};

  HDOV_RETURN_IF_ERROR(
      Query(viewpoint.position, /*fetch_models=*/false, &last_result_,
            &result->search));

  // Delta search: a representation whose owner is already resident at the
  // required (or a finer) LoD is reused; otherwise the requested level is
  // fetched. Afterwards only the current working set stays resident
  // (semantic replacement).
  size_t fetched = 0;
  std::unordered_map<uint64_t, ResidentEntry> next_resident;
  next_resident.reserve(last_result_.size());
  uint64_t triangles = 0;
  {
    telemetry::StageTraceScope stage(telemetry::TraceStage::kFetch);
    for (const RetrievedLod& lod : last_result_) {
      const uint64_t key = ResidentKey(lod);
      ResidentEntry entry{lod.lod_level, lod.byte_size, lod.triangle_count};
      auto it = resident_.find(key);
      const bool reusable =
          delta_enabled_ && it != resident_.end() &&
          it->second.lod_level <= lod.lod_level;  // Finer or equal resident.
      if (reusable) {
        entry = it->second;  // Render the (possibly finer) resident copy.
      } else {
        HDOV_RETURN_IF_ERROR(models_->Fetch(lod.model));
        ++fetched;
      }
      triangles += entry.triangle_count;
      next_resident[key] = entry;
    }
  }
  resident_ = std::move(next_resident);

  // Sync-mode idle-frame prefetching toward the predicted next cell (the
  // legacy inline path, now folded into the prefetcher but driven through
  // hooks so the billing sequence is unchanged). Prefetched
  // representations are pinned in the resident set so the eventual cell
  // flip finds them loaded.
  if (prefetcher_ != nullptr &&
      prefetcher_->mode() == prefetch::PrefetchMode::kSync &&
      options_.prefetch_models_per_frame > 0 && delta_enabled_ &&
      fetched == 0) {
    telemetry::StageTraceScope stage(telemetry::TraceStage::kPrefetch);
    prefetch::Prefetcher::SyncHooks hooks;
    hooks.search = [this](CellId cell, std::vector<RetrievedLod>* out) {
      SearchOptions search = options_.search;
      search.eta = options_.eta;
      return RunSearch(cell, search, out, nullptr);
    };
    hooks.clear_loaded = [this] { prefetch_loaded_.clear(); };
    hooks.should_skip = [this](const RetrievedLod& lod) {
      const uint64_t key = ResidentKey(lod);
      auto it = resident_.find(key);
      if (it != resident_.end() && it->second.lod_level <= lod.lod_level) {
        return true;  // Already resident at sufficient detail.
      }
      auto pf = prefetch_loaded_.find(key);
      return pf != prefetch_loaded_.end() &&
             pf->second.lod_level <= lod.lod_level;
    };
    hooks.fetch = [this](const RetrievedLod& lod) {
      HDOV_RETURN_IF_ERROR(models_->Fetch(lod.model));
      prefetch_loaded_[ResidentKey(lod)] =
          ResidentEntry{lod.lod_level, lod.byte_size, lod.triangle_count};
      return Status::OK();
    };
    HDOV_RETURN_IF_ERROR(prefetcher_->SyncStep(
        viewpoint, frame_cell, options_.prefetch_models_per_frame, hooks,
        &fetched));
  }
  for (const auto& [key, entry] : prefetch_loaded_) {
    resident_.emplace(key, entry);  // Keep current-result entries as-is.
  }

  // Async pipeline: end-of-frame speculation toward the predicted next
  // cell. Billing inside is diverted (frame counters and the clock do not
  // move); the discovered page runs are staged for residency at the next
  // BeginFrame and handed to the background queue to warm for real.
  if (prefetcher_ != nullptr &&
      prefetcher_->mode() == prefetch::PrefetchMode::kAsync) {
    telemetry::StageTraceScope stage(telemetry::TraceStage::kPrefetch);
    SearchOptions search = options_.search;
    search.eta = options_.eta;
    HDOV_RETURN_IF_ERROR(
        prefetcher_->EndFrame(viewpoint, frame_cell, search));
  }

  telemetry::StageTraceScope render_stage(telemetry::TraceStage::kRender);
  const IoStats tree_d = tree_device_->stats().Delta(tree0);
  const IoStats store_d = store_device_->stats().Delta(store0);
  const IoStats model_d = model_device_->stats().Delta(model0);

  result->query_time_ms = clock_.NowMillis() - t0;
  result->light_io_pages = tree_d.page_reads + store_d.page_reads;
  result->io_pages = result->light_io_pages + model_d.page_reads;
  result->index_bytes_read = tree_d.bytes_read;
  result->store_bytes_read = store_d.bytes_read;
  result->model_bytes_read = model_d.bytes_read;
  result->rendered_triangles = triangles;
  result->models_fetched = fetched;
  result->resident_bytes = 0;
  for (const auto& [key, entry] : resident_) {
    result->resident_bytes += entry.byte_size;
  }
  result->frame_time_ms =
      result->query_time_ms + options_.render.FrameMillis(triangles);
  flight.set_io_pages(result->io_pages);
  if (tree_cache_ != nullptr) {
    const uint64_t hits = tree_cache_->stats().hits - cache_hits0;
    const uint64_t misses = tree_cache_->stats().misses - cache_misses0;
    result->cache_hits = hits;
    result->cache_misses = misses;
    result->cache_hit_rate =
        hits + misses == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  if (TelemetryOn()) {
    frame_time_hist_->Observe(result->frame_time_ms);
    EmitFrameRecord(*result, frame_cell);
  }
  return Status::OK();
}

void VisualSystem::ResetRuntime() {
  resident_.clear();
  last_result_.clear();
  prefetch_loaded_.clear();
  if (prefetcher_ != nullptr) {
    prefetcher_->Reset();
  }
  if (tree_cache_ != nullptr) {
    tree_cache_->Clear();
  }
}

IoStats VisualSystem::TotalIoStats() const {
  IoStats s = tree_device_->stats();
  s += store_device_->stats();
  s += model_device_->stats();
  return s;
}

void VisualSystem::ResetIoStats() {
  tree_device_->ResetStats();
  store_device_->ResetStats();
  model_device_->ResetStats();
  clock_.Reset();
}

}  // namespace hdov
