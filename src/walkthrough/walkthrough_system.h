// WalkthroughSystem: the interface shared by VISUAL, REVIEW and the naive
// baseline. A system owns its simulated devices; RenderFrame runs one
// query + fetch + render cycle for a viewpoint and reports billed costs.

#ifndef HDOV_WALKTHROUGH_WALKTHROUGH_SYSTEM_H_
#define HDOV_WALKTHROUGH_WALKTHROUGH_SYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "hdov/search.h"
#include "scene/session.h"
#include "storage/io_stats.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"

namespace hdov {

struct FrameResult {
  double frame_time_ms = 0.0;   // query_time + simulated render time.
  double query_time_ms = 0.0;   // Simulated disk time of this frame.
  uint64_t io_pages = 0;        // Page reads billed this frame (all files).
  uint64_t light_io_pages = 0;  // Index + V-page reads only (no models).
  uint64_t rendered_triangles = 0;
  size_t models_fetched = 0;    // Representations newly read from disk.
  uint64_t resident_bytes = 0;  // Model memory held after the frame.

  // Per-device byte breakdown of this frame's reads (index = tree /
  // R-tree / cell-list file, store = V-page file, model = model data).
  uint64_t index_bytes_read = 0;
  uint64_t store_bytes_read = 0;
  uint64_t model_bytes_read = 0;

  // Threshold-search decision counts (HDoV systems; zero elsewhere).
  SearchStats search;
  // Tree-page buffer-pool traffic this frame (0 when no pool is wired).
  // The counts let aggregators weigh frames by their traffic instead of
  // averaging per-frame ratios.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Hit rate over this frame's pool traffic (0 when no pool is wired).
  double cache_hit_rate = 0.0;
};

class WalkthroughSystem {
 public:
  virtual ~WalkthroughSystem() { DetachTelemetry(); }

  virtual std::string name() const = 0;

  virtual Status RenderFrame(const Viewpoint& viewpoint, FrameResult* result)
      = 0;

  // Drops all runtime state (loaded models, current cell) so sessions and
  // independent queries start cold. Does not reset device statistics.
  virtual void ResetRuntime() = 0;

  // Enables/disables the system's delta ("complement") search. Disabled
  // means every frame re-fetches its full result set — the mode used for
  // the independent-query experiments (Figs. 7-9).
  virtual void set_delta_enabled(bool enabled) { delta_enabled_ = enabled; }
  bool delta_enabled() const { return delta_enabled_; }

  // The representation set retrieved by the last RenderFrame (object or
  // internal LoDs); input to the fidelity metric.
  virtual const std::vector<RetrievedLod>& last_result() const = 0;

  // Cumulative I/O across all of the system's devices.
  virtual IoStats TotalIoStats() const = 0;
  virtual void ResetIoStats() = 0;

  // Wires the system into a telemetry context: its device / store / search
  // counters register under `prefix` (e.g. `<prefix>.io.tree.page_reads`)
  // and every RenderFrame appends one FrameRecord. The system unregisters
  // everything on detach or destruction, so `telemetry` must outlive the
  // attachment, not the system.
  void AttachTelemetry(telemetry::Telemetry* telemetry,
                       const std::string& prefix) {
    DetachTelemetry();
    if (telemetry == nullptr) {
      return;
    }
    telemetry_ = telemetry;
    telemetry_prefix_ = prefix;
    RegisterTelemetry();
  }

  void DetachTelemetry() {
    if (telemetry_ != nullptr) {
      telemetry_->metrics().UnregisterPrefix(telemetry_prefix_ + ".");
      telemetry_ = nullptr;
      telemetry_prefix_.clear();
    }
  }

  telemetry::Telemetry* telemetry() const { return telemetry_; }
  const std::string& telemetry_prefix() const { return telemetry_prefix_; }

 protected:
  bool TelemetryOn() const {
    return telemetry_ != nullptr && telemetry_->enabled();
  }

  // Flight-recorder identity of this system: its name(), interned once.
  // Lazy because name() is virtual and unavailable in the base ctor.
  uint16_t FlightCode() {
    if (flight_code_ == 0) {
      flight_code_ = telemetry::FlightInternName(name());
    }
    return flight_code_;
  }

  // Monotone frame index for kFrameBegin/kFrameEnd events — independent
  // of telemetry attachment, so recorder timelines stay continuous even
  // when no Telemetry is wired in.
  uint64_t NextFlightFrame() { return flight_frame_++; }

  // Shared delta-search toggle; every system's fetch path consults it.
  bool delta_enabled_ = true;

  // Called once per AttachTelemetry; subclasses register their devices,
  // counters and histograms under telemetry_prefix().
  virtual void RegisterTelemetry() {}

  // Appends the per-frame record for an instrumented frame (no-op when
  // telemetry is off).
  void EmitFrameRecord(const FrameResult& result, uint64_t cell,
                       const std::string& kind = "frame") {
    if (!TelemetryOn()) {
      return;
    }
    telemetry::FrameRecord rec;
    rec.system = telemetry_prefix_;
    rec.kind = kind;
    rec.cell = cell;
    rec.frame_time_ms = result.frame_time_ms;
    rec.query_time_ms = result.query_time_ms;
    rec.io_pages = result.io_pages;
    rec.light_io_pages = result.light_io_pages;
    rec.index_bytes_read = result.index_bytes_read;
    rec.store_bytes_read = result.store_bytes_read;
    rec.model_bytes_read = result.model_bytes_read;
    rec.nodes_visited = result.search.nodes_visited;
    rec.vpages_fetched = result.search.vpages_fetched;
    rec.hidden_pruned = result.search.hidden_entries_pruned;
    rec.internal_terminations = result.search.internal_terminations;
    rec.cache_hit_rate = result.cache_hit_rate;
    rec.rendered_triangles = result.rendered_triangles;
    rec.models_fetched = result.models_fetched;
    rec.resident_bytes = result.resident_bytes;
    telemetry_->RecordFrame(std::move(rec));
  }

 private:
  telemetry::Telemetry* telemetry_ = nullptr;
  std::string telemetry_prefix_;
  uint16_t flight_code_ = 0;
  uint64_t flight_frame_ = 0;
};

}  // namespace hdov

#endif  // HDOV_WALKTHROUGH_WALKTHROUGH_SYSTEM_H_
