// WalkthroughSystem: the interface shared by VISUAL, REVIEW and the naive
// baseline. A system owns its simulated devices; RenderFrame runs one
// query + fetch + render cycle for a viewpoint and reports billed costs.

#ifndef HDOV_WALKTHROUGH_WALKTHROUGH_SYSTEM_H_
#define HDOV_WALKTHROUGH_WALKTHROUGH_SYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "hdov/search.h"
#include "scene/session.h"
#include "storage/io_stats.h"

namespace hdov {

struct FrameResult {
  double frame_time_ms = 0.0;   // query_time + simulated render time.
  double query_time_ms = 0.0;   // Simulated disk time of this frame.
  uint64_t io_pages = 0;        // Page reads billed this frame (all files).
  uint64_t light_io_pages = 0;  // Index + V-page reads only (no models).
  uint64_t rendered_triangles = 0;
  size_t models_fetched = 0;    // Representations newly read from disk.
  uint64_t resident_bytes = 0;  // Model memory held after the frame.
};

class WalkthroughSystem {
 public:
  virtual ~WalkthroughSystem() = default;

  virtual std::string name() const = 0;

  virtual Status RenderFrame(const Viewpoint& viewpoint, FrameResult* result)
      = 0;

  // Drops all runtime state (loaded models, current cell) so sessions and
  // independent queries start cold. Does not reset device statistics.
  virtual void ResetRuntime() = 0;

  // Enables/disables the system's delta ("complement") search. Disabled
  // means every frame re-fetches its full result set — the mode used for
  // the independent-query experiments (Figs. 7-9).
  virtual void set_delta_enabled(bool enabled) = 0;

  // The representation set retrieved by the last RenderFrame (object or
  // internal LoDs); input to the fidelity metric.
  virtual const std::vector<RetrievedLod>& last_result() const = 0;

  // Cumulative I/O across all of the system's devices.
  virtual IoStats TotalIoStats() const = 0;
  virtual void ResetIoStats() = 0;
};

}  // namespace hdov

#endif  // HDOV_WALKTHROUGH_WALKTHROUGH_SYSTEM_H_
