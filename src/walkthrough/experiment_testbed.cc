#include "walkthrough/experiment_testbed.h"

#include <string>

#include "hdov/builder.h"
#include "persist/world_codec.h"
#include "scene/city_generator.h"
#include "storage/model_store.h"

namespace hdov {

Result<Testbed> BuildTestbed(const TestbedOptions& options) {
  CityOptions copt;
  copt.mode = GeometryMode::kProxy;
  copt.blocks_x = options.blocks;
  copt.blocks_y = options.blocks;
  copt.seed = options.seed;
  HDOV_ASSIGN_OR_RETURN(Scene scene, GenerateCity(copt));

  CellGridOptions gopt;
  gopt.cells_x = options.cells;
  gopt.cells_y = options.cells;
  HDOV_ASSIGN_OR_RETURN(CellGrid grid, CellGrid::Build(scene.bounds(), gopt));

  PrecomputeOptions popt;
  popt.dov.cubemap.face_resolution = options.face_resolution;
  popt.samples_per_cell = options.samples_per_cell;
  popt.threads = options.threads;
  HDOV_ASSIGN_OR_RETURN(VisibilityTable table,
                        PrecomputeVisibility(scene, grid, popt));
  return Testbed{std::move(scene), std::move(grid), std::move(table)};
}

VisualOptions DefaultVisualOptions(uint32_t build_threads) {
  VisualOptions opt;
  opt.build.rtree.max_entries = 8;
  opt.build.rtree.min_entries = 3;
  opt.prefetch_models_per_frame = 2;  // Smooths walkthrough cell flips.
  opt.build_threads = build_threads;
  return opt;
}

Status WriteWorldSections(SnapshotWriter* writer, const Testbed& bed) {
  std::string bytes;
  EncodeScene(bed.scene, &bytes);
  HDOV_RETURN_IF_ERROR(writer->AddBlob(kSectionScene, bytes));
  bytes.clear();
  EncodeCellGridOptions(bed.grid.options(), &bytes);
  HDOV_RETURN_IF_ERROR(writer->AddBlob(kSectionCellGrid, bytes));
  bytes.clear();
  EncodeVisibilityTable(bed.table, &bytes);
  return writer->AddBlob(kSectionVisTable, bytes);
}

Result<Testbed> LoadWorldSections(const SnapshotLoader& snapshot) {
  HDOV_ASSIGN_OR_RETURN(std::string scene_bytes,
                        snapshot.ReadBlob(kSectionScene));
  HDOV_ASSIGN_OR_RETURN(Scene scene, DecodeScene(scene_bytes));
  HDOV_ASSIGN_OR_RETURN(std::string grid_bytes,
                        snapshot.ReadBlob(kSectionCellGrid));
  HDOV_ASSIGN_OR_RETURN(CellGridOptions gopt,
                        DecodeCellGridOptions(grid_bytes));
  HDOV_ASSIGN_OR_RETURN(CellGrid grid, CellGrid::Build(scene.bounds(), gopt));
  HDOV_ASSIGN_OR_RETURN(std::string table_bytes,
                        snapshot.ReadBlob(kSectionVisTable));
  HDOV_ASSIGN_OR_RETURN(VisibilityTable table,
                        DecodeVisibilityTable(table_bytes));
  if (table.num_cells() != grid.num_cells()) {
    return Status::Corruption(
        "testbed: snapshot visibility table disagrees with the cell grid");
  }
  return Testbed{std::move(scene), std::move(grid), std::move(table)};
}

Status WriteWorldSnapshot(SnapshotWriter* writer, const Testbed& bed,
                          const VisualOptions& options) {
  HDOV_RETURN_IF_ERROR(WriteWorldSections(writer, bed));

  // The tree and the model registry are scheme-independent: build them
  // once on their own devices, then derive each storage scheme against the
  // same tree.
  SimClock clock;
  PageDevice tree_device(options.disk, &clock);
  PageDevice model_device(options.disk, &clock);
  ModelStore models(&model_device);
  HDOV_ASSIGN_OR_RETURN(HdovTree tree,
                        HdovBuilder::Build(bed.scene, &models, options.build));
  HDOV_RETURN_IF_ERROR(tree.Pack(&tree_device));
  std::string manifest;
  HDOV_RETURN_IF_ERROR(tree.EncodeManifest(&manifest));
  HDOV_RETURN_IF_ERROR(writer->AddBlob(kSectionTreeManifest, manifest));
  HDOV_RETURN_IF_ERROR(writer->AddDevice(kSectionTreeDevice, tree_device));
  std::string model_meta;
  models.EncodeMeta(&model_meta);
  HDOV_RETURN_IF_ERROR(writer->AddBlob(kSectionModelMeta, model_meta));
  HDOV_RETURN_IF_ERROR(writer->AddDevice(kSectionModelDevice, model_device));

  constexpr StorageScheme kSchemes[] = {
      StorageScheme::kHorizontal, StorageScheme::kVertical,
      StorageScheme::kIndexedVertical, StorageScheme::kBitmapVertical};
  for (StorageScheme scheme : kSchemes) {
    PageDevice store_device(options.disk, &clock);
    HDOV_ASSIGN_OR_RETURN(
        std::unique_ptr<VisibilityStore> store,
        BuildStore(scheme, tree, bed.table, &store_device,
                   options.build_threads));
    std::string meta;
    store->EncodeMeta(&meta);
    const std::string name = StorageSchemeName(scheme);
    HDOV_RETURN_IF_ERROR(writer->AddBlob(StoreMetaSection(name), meta));
    HDOV_RETURN_IF_ERROR(
        writer->AddDevice(StoreDeviceSection(name), store_device));
  }
  return Status::OK();
}

}  // namespace hdov
