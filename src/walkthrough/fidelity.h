// Visual fidelity metric: the quantitative substitute for the paper's
// Fig. 11 screenshots. Scores a rendered representation set against the
// ground-truth per-cell visibility:
//
//   coverage — DoV-weighted fraction of truly visible objects that are
//              represented at all (spatial methods lose far visible
//              objects; this is where that shows up);
//   detail   — DoV-weighted LoD quality of the represented objects,
//              quality = min(1, rendered_tris / ideal_tris) with the ideal
//              given by the Eq. 6 selection at the true DoV;
//   combined — coverage x detail (1.0 = indistinguishable from rendering
//              every visible object at its ideal LoD).

#ifndef HDOV_WALKTHROUGH_FIDELITY_H_
#define HDOV_WALKTHROUGH_FIDELITY_H_

#include <vector>

#include "hdov/hdov_tree.h"
#include "hdov/search.h"
#include "visibility/precompute.h"

namespace hdov {

struct FidelityScore {
  double coverage = 0.0;
  double detail = 0.0;
  double combined = 0.0;
};

class FidelityEvaluator {
 public:
  // `tree` may be null when the evaluated systems never return internal
  // LoDs (REVIEW, naive); it is required to resolve which objects an
  // internal LoD stands in for.
  FidelityEvaluator(const Scene* scene, const HdovTree* tree);

  FidelityScore Evaluate(const CellVisibility& truth,
                         const std::vector<RetrievedLod>& rendered) const;

  // Convenience: the score of rendering every visible object at the
  // finest LoD ("original models") — always 1/1/1 by construction, used
  // as the reference row in the Fig. 11 table.
  FidelityScore OriginalScore(const CellVisibility& truth) const;

 private:
  const Scene* scene_;
  const HdovTree* tree_;
  // Leaf objects below each tree node (empty when tree_ == nullptr).
  std::vector<std::vector<ObjectId>> node_objects_;
};

}  // namespace hdov

#endif  // HDOV_WALKTHROUGH_FIDELITY_H_
