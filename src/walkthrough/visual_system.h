// VisualSystem: the paper's VISUAL prototype — an HDoV-tree walkthrough
// with threshold-tunable LoD retrieval and a delta search that skips
// representations already resident from previous frames.

#ifndef HDOV_WALKTHROUGH_VISUAL_SYSTEM_H_
#define HDOV_WALKTHROUGH_VISUAL_SYSTEM_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "hdov/builder.h"
#include "hdov/flat_search.h"
#include "hdov/search.h"
#include "persist/snapshot.h"
#include "prefetch/fetch_queue.h"
#include "prefetch/prefetcher.h"
#include "scene/cell_grid.h"
#include "walkthrough/render_model.h"
#include "walkthrough/walkthrough_system.h"

namespace hdov {

struct VisualOptions {
  double eta = 0.001;
  StorageScheme scheme = StorageScheme::kIndexedVertical;
  HdovBuildOptions build;
  SearchOptions search;  // eta above overrides search.eta.
  RenderCostModel render;
  DiskModel disk;

  // Motion-directed prefetching (extension; the REVIEW system deployed
  // prefetching as well): during frames that fetch nothing, load up to
  // this many representations of the viewing cell ahead of the walker, so
  // crossing a cell border does not stall the frame. 0 (default) disables;
  // the walkthrough experiments enable it. Nonzero is the historical
  // alias for `prefetch = kSync` below; the billing sequence of that
  // combination is pinned by the committed walkthrough baselines.
  size_t prefetch_models_per_frame = 0;

  // The prefetch pipeline mode (src/prefetch/, docs/prefetch.md). kOff
  // (the seeded default unless HDOV_PREFETCH says otherwise) bills
  // exactly as a build without the subsystem. kAsync runs the
  // speculative end-of-frame pipeline with diverted billing + residency
  // credit; kSync is the legacy inline path (see the alias above).
  prefetch::PrefetchMode prefetch = prefetch::DefaultPrefetchMode();

  // Async mode: model representations warmed per plan and background
  // warm workers for the owned queue (ignored when an external queue is
  // supplied).
  size_t prefetch_max_models = 32;
  size_t prefetch_workers = 2;

  // Async mode: issue background warms into this (possibly shared) queue
  // instead of an owned one. The queue must outlive the system; servers
  // pass their per-process queue so sessions share workers.
  prefetch::AsyncFetchQueue* prefetch_queue = nullptr;

  // LRU buffer pool (in pages) in front of the tree-node reads; hit pages
  // cost no simulated I/O. 0 (default) keeps the paper's uncached billing,
  // so the Fig. 7-9 numbers are unchanged unless a caller opts in.
  size_t tree_cache_pages = 0;

  // Worker threads for the offline per-cell V-page derivation inside
  // Create (0 = one per hardware thread). Affects build wall-clock only;
  // the built store is identical for every value.
  uint32_t build_threads = 1;

  // Which search implementation answers queries (see SearchBackend): the
  // recursive legacy searcher or the packed flat layout. Results, stats
  // and simulated billing are bit-identical either way; only wall-clock
  // differs. Seeded from DefaultSearchBackend() so a whole binary flips
  // via HDOV_SEARCH_BACKEND / --search-backend.
  SearchBackend backend = DefaultSearchBackend();
};

// Which of a session's three private billing devices a SharedWorldView
// device factory is being asked for.
enum class SessionDeviceRole { kTree = 0, kStore = 1, kModel = 2 };

// One fully built, immutable world, shared by many concurrently running
// session views (see CreateSessionView and src/server/). Everything here
// is read-only after construction: the scene, the grid, the packed tree,
// and the two metadata blobs. Only the device factory produces per-session
// state — each session gets three private devices billing into its own
// SimClock, which is what keeps per-session simulated counters independent
// of how sessions interleave. All referenced objects must outlive every
// session created from the view.
struct SharedWorldView {
  const Scene* scene = nullptr;
  const CellGrid* grid = nullptr;
  std::shared_ptr<const HdovTree> tree;
  // Optional pre-compiled flat layout of `tree` (used when sessions run
  // with SearchBackend::kFlat). Null makes each flat-backend session
  // compile its own copy; servers compile once and share it here.
  std::shared_ptr<const FlatHdovTree> flat_tree;
  // VisibilityStore::EncodeMeta blob of the scheme sessions will use
  // (must match VisualOptions::scheme at CreateSessionView time).
  std::string store_meta;
  // ModelStore::EncodeMeta blob.
  std::string model_meta;
  // Factory for a session's private devices; called three times per
  // session. The returned device must bill into `clock` and serve the
  // same page images as the world the metadata was encoded from.
  std::function<Result<std::unique_ptr<PageDevice>>(SessionDeviceRole,
                                                    SimClock* clock)>
      make_device;
  // Optional: the shared page cache background prefetch warms for a role
  // (servers hand out their ShardedBufferPools here). Null / returning
  // null makes warms read the session device's raw path instead.
  std::function<ShardedBufferPool*(SessionDeviceRole)> warm_pool;
};

// How CreateFromSnapshot materializes the snapshot's device sections.
enum class SnapshotLoadMode {
  // Copy every device image into memory devices (default): queries run
  // exactly as after Create, with no further file access.
  kMemoryResident = 0,
  // Serve pages straight from the snapshot file via FilePageDevice:
  // smaller resident footprint, same simulated billing.
  kFileBacked = 1,
};

class VisualSystem : public WalkthroughSystem {
 public:
  // `scene`, `grid` and `table` must outlive the system.
  static Result<std::unique_ptr<VisualSystem>> Create(
      const Scene* scene, const CellGrid* grid, const VisibilityTable* table,
      const VisualOptions& options);

  // Reattaches a world previously written by a snapshot build (see
  // tools/hdov_build and docs/storage.md) instead of rebuilding it.
  // `scene` and `grid` must be the snapshot's own world (normally decoded
  // from its "scene"/"cellgrid" sections) and must outlive the system. The
  // loaded system answers queries with results and simulated I/O counters
  // identical to a Create() over the same inputs.
  static Result<std::unique_ptr<VisualSystem>> CreateFromSnapshot(
      const SnapshotLoader& snapshot, const Scene* scene, const CellGrid* grid,
      const VisualOptions& options,
      SnapshotLoadMode mode = SnapshotLoadMode::kMemoryResident);

  // A lightweight per-session view over a world somebody else built: the
  // tree is shared (immutable after build), the store/model state is
  // reattached from the view's metadata blobs, and the three devices come
  // from the view's factory. Query results and simulated billing are
  // identical to a CreateFromSnapshot over the same world as long as the
  // factory's devices serve the same pages with the same DiskModel.
  static Result<std::unique_ptr<VisualSystem>> CreateSessionView(
      const SharedWorldView& world, const VisualOptions& options);

  std::string name() const override { return "VISUAL"; }
  Status RenderFrame(const Viewpoint& viewpoint, FrameResult* result) override;
  void ResetRuntime() override;
  const std::vector<RetrievedLod>& last_result() const override {
    return last_result_;
  }
  IoStats TotalIoStats() const override;
  void ResetIoStats() override;

  // Retunes the DoV threshold between sessions.
  void set_eta(double eta) { options_.eta = eta; }
  double eta() const { return options_.eta; }

  const HdovTree& tree() const { return *tree_; }
  // The shared-ownership handle to the (immutable) tree, for building a
  // SharedWorldView from a system that already loaded the world.
  std::shared_ptr<const HdovTree> shared_tree() const { return tree_; }
  // The flat layout this system searches with (null on the legacy
  // backend); shareable the same way as shared_tree().
  std::shared_ptr<const FlatHdovTree> shared_flat_tree() const {
    return flat_tree_;
  }
  SearchBackend backend() const { return options_.backend; }
  VisibilityStore* store() const { return store_.get(); }
  const ModelStore& models() const { return *models_; }
  SimClock& clock() { return clock_; }
  PageDevice& tree_device() { return *tree_device_; }
  PageDevice& store_device() { return *store_device_; }
  PageDevice& model_device() { return *model_device_; }

  // Runs a single visibility query (search only; optionally fetching the
  // models). Exposed for the query benchmarks (Figs. 7-9).
  Status Query(const Vec3& position, bool fetch_models,
               std::vector<RetrievedLod>* result, SearchStats* stats);

  // Like Query (with model fetches) but with an explicit termination
  // heuristic; used by the heuristic ablation bench.
  Status QueryWithHeuristic(const Vec3& position,
                            TerminationHeuristic heuristic,
                            std::vector<RetrievedLod>* result);

  // The prefetch pipeline driving this system (null when prefetch is
  // off); benches read issued/used/wasted off its stats().
  const prefetch::Prefetcher* prefetcher() const { return prefetcher_.get(); }

 private:
  VisualSystem(const Scene* scene, const CellGrid* grid,
               const VisualOptions& options);

  // Searcher + cache wiring and counter reset shared by all factories.
  // Compiles the flat layout when the options ask for the flat backend
  // and no pre-compiled one was handed in.
  Status FinishConstruction();

  // Dispatches one Fig. 3 search to the configured backend.
  Status RunSearch(CellId cell, const SearchOptions& search,
                   std::vector<RetrievedLod>* result, SearchStats* stats);

  void RegisterTelemetry() override;
  // Folds one query's stats into the registry counters (telemetry only).
  void CountQuery(const SearchStats& stats);

  const Scene* scene_;
  const CellGrid* grid_;
  VisualOptions options_;

  SimClock clock_;
  // Owned behind pointers so CreateFromSnapshot can swap in file-backed
  // devices; the in-memory defaults are constructed up front.
  std::unique_ptr<PageDevice> tree_device_;
  std::unique_ptr<PageDevice> store_device_;
  std::unique_ptr<PageDevice> model_device_;
  std::unique_ptr<ModelStore> models_;
  // Immutable after the factory that built/loaded it returns; shared
  // across session views, so nothing below this line may mutate it.
  std::shared_ptr<const HdovTree> tree_;
  std::shared_ptr<const FlatHdovTree> flat_tree_;  // Flat backend only.
  std::unique_ptr<VisibilityStore> store_;
  std::unique_ptr<HdovSearcher> searcher_;
  std::unique_ptr<FlatSearcher> flat_searcher_;  // Flat backend only.
  std::unique_ptr<BufferPool> tree_cache_;  // Only with tree_cache_pages.

  // Registry-owned metric handles; valid only while attached (the base
  // class unregisters the prefix on detach).
  telemetry::Counter* ctr_queries_ = nullptr;
  telemetry::Counter* ctr_nodes_visited_ = nullptr;
  telemetry::Counter* ctr_vpages_fetched_ = nullptr;
  telemetry::Counter* ctr_hidden_pruned_ = nullptr;
  telemetry::Counter* ctr_internal_terminations_ = nullptr;
  telemetry::Histogram* frame_time_hist_ = nullptr;
  // True while RenderFrame runs, so its inner Query does not emit a
  // second (kind "query") record for the same frame.
  bool in_frame_ = false;

  // Delta search bookkeeping, keyed by representation *owner* (object or
  // internal node): a resident representation at least as fine as the one
  // the query asks for is reused rather than refetched — the paper's
  // "does not retrieve objects that have been retrieved in earlier
  // operations", robust against LoD-level flicker across cell borders.
  struct ResidentEntry {
    uint32_t lod_level = 0;  // Level currently in memory (lower = finer).
    uint64_t byte_size = 0;
    uint32_t triangle_count = 0;
  };
  // Key: owner id with the representation kind in the top bit.
  static uint64_t ResidentKey(const RetrievedLod& lod) {
    return lod.owner |
           (lod.kind == RetrievedLod::Kind::kInternal ? (1ull << 63) : 0);
  }

  std::unordered_map<uint64_t, ResidentEntry> resident_;
  std::vector<RetrievedLod> last_result_;
  // Sync-mode prefetch: representations loaded ahead of the cell flip,
  // pinned into resident_ every frame (plan/cursor state lives in the
  // prefetcher; this map is the legacy PrefetchState::loaded).
  std::unordered_map<uint64_t, ResidentEntry> prefetch_loaded_;
  // For session views: the shared warm-pool lookup from SharedWorldView.
  std::function<ShardedBufferPool*(SessionDeviceRole)> warm_pool_;
  // Declared after the devices and the queue on purpose: the prefetcher's
  // destructor uninstalls the device residency gates and drains its warms
  // out of the queue, so it must go first.
  std::unique_ptr<prefetch::AsyncFetchQueue> own_queue_;
  std::unique_ptr<prefetch::Prefetcher> prefetcher_;
};

}  // namespace hdov

#endif  // HDOV_WALKTHROUGH_VISUAL_SYSTEM_H_
