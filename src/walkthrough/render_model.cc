#include "walkthrough/render_model.h"

// Header-only cost model; this translation unit keeps the header compiled
// standalone.
