#include "walkthrough/lodr_system.h"

#include <algorithm>

namespace hdov {

LodRTreeSystem::LodRTreeSystem(const Scene* scene,
                               const LodRTreeOptions& options)
    : scene_(scene), options_(options),
      index_device_(options.disk, &clock_),
      model_device_(options.disk, &clock_),
      models_(&model_device_) {}

Result<std::unique_ptr<LodRTreeSystem>> LodRTreeSystem::Create(
    const Scene* scene, const LodRTreeOptions& options) {
  if (options.band_fractions.empty()) {
    return Status::InvalidArgument("lodr: need at least one depth band");
  }
  for (size_t i = 1; i < options.band_fractions.size(); ++i) {
    if (options.band_fractions[i] <= options.band_fractions[i - 1]) {
      return Status::InvalidArgument("lodr: bands must increase");
    }
  }
  auto system =
      std::unique_ptr<LodRTreeSystem>(new LodRTreeSystem(scene, options));
  RTree rtree(options.rtree);
  for (const Object& obj : scene->objects()) {
    HDOV_RETURN_IF_ERROR(rtree.Insert(obj.mbr, obj.id));
  }
  HDOV_ASSIGN_OR_RETURN(PackedRTree packed,
                        PackedRTree::Pack(rtree, &system->index_device_));
  system->packed_ = std::make_unique<PackedRTree>(packed);
  system->object_models_.resize(scene->size());
  for (const Object& obj : scene->objects()) {
    auto& slots = system->object_models_[obj.id];
    for (size_t level = 0; level < obj.lods.num_levels(); ++level) {
      slots.push_back(
          system->models_.Register(obj.lods.level(level).byte_size));
    }
  }
  system->ResetIoStats();
  return system;
}

void LodRTreeSystem::RegisterTelemetry() {
  telemetry::MetricsRegistry& m = telemetry()->metrics();
  const std::string& p = telemetry_prefix();
  index_device_.RegisterWith(&m, p + ".io.index");
  model_device_.RegisterWith(&m, p + ".io.model");
  frame_time_hist_ = m.GetHistogram(
      p + ".frame.time_ms", telemetry::ExponentialBuckets(0.25, 2.0, 14));
}

std::vector<Aabb> LodRTreeSystem::QueryBoxes(
    const Viewpoint& viewpoint) const {
  std::vector<Aabb> boxes;
  double previous = 0.0;
  for (double fraction : options_.band_fractions) {
    FrustumOptions fopt = options_.frustum;
    fopt.near_dist = std::max(0.1, previous * options_.frustum.far_dist);
    fopt.far_dist = fraction * options_.frustum.far_dist;
    Frustum band(viewpoint.position, viewpoint.look, fopt);
    boxes.push_back(band.BoundingBox());
    previous = fraction;
  }
  return boxes;
}

Status LodRTreeSystem::RenderFrame(const Viewpoint& viewpoint,
                                   FrameResult* result) {
  telemetry::FlightFrameScope flight(FlightCode(), NextFlightFrame());
  const double t0 = clock_.NowMillis();
  const IoStats light0 = index_device_.stats();
  const IoStats model0 = model_device_.stats();

  // One window query per depth band; the nearest band an object appears
  // in decides its LoD (static, ad hoc — the scheme the paper critiques).
  std::vector<Aabb> boxes = QueryBoxes(viewpoint);
  std::unordered_map<ObjectId, uint32_t> band_of;
  std::vector<uint64_t> ids;
  for (size_t band = 0; band < boxes.size(); ++band) {
    HDOV_RETURN_IF_ERROR(packed_->WindowQuery(boxes[band], &ids));
    for (uint64_t raw : ids) {
      const ObjectId id = static_cast<ObjectId>(raw);
      auto [it, inserted] =
          band_of.emplace(id, static_cast<uint32_t>(band));
      if (!inserted) {
        it->second = std::min(it->second, static_cast<uint32_t>(band));
      }
    }
  }

  size_t fetched = 0;
  uint64_t triangles = 0;
  last_result_.clear();
  last_result_.reserve(band_of.size());
  for (const auto& [id, band] : band_of) {
    const Object& obj = scene_->object(id);
    const uint32_t level = static_cast<uint32_t>(
        std::min<size_t>(band, obj.lods.num_levels() - 1));
    auto it = resident_.find(id);
    const bool needs_fetch =
        !delta_enabled_ || it == resident_.end() || it->second.first > level;
    if (needs_fetch) {
      HDOV_RETURN_IF_ERROR(models_.Fetch(object_models_[id][level]));
      ++fetched;
      resident_[id] = {level, obj.lods.level(level).byte_size};
    }
    RetrievedLod lod;
    lod.kind = RetrievedLod::Kind::kObject;
    lod.owner = id;
    lod.lod_level = level;
    lod.model = object_models_[id][level];
    lod.triangle_count = obj.lods.level(level).triangle_count;
    lod.byte_size = obj.lods.level(level).byte_size;
    triangles += lod.triangle_count;
    last_result_.push_back(lod);
  }

  for (auto it = resident_.begin(); it != resident_.end();) {
    if (scene_->object(it->first).mbr.DistanceTo(viewpoint.position) >
        options_.cache_distance) {
      it = resident_.erase(it);
    } else {
      ++it;
    }
  }

  const IoStats light1 = index_device_.stats();
  const IoStats model1 = model_device_.stats();
  result->query_time_ms = clock_.NowMillis() - t0;
  result->light_io_pages = light1.Delta(light0).page_reads;
  result->io_pages =
      result->light_io_pages + model1.Delta(model0).page_reads;
  result->rendered_triangles = triangles;
  result->models_fetched = fetched;
  result->index_bytes_read = light1.Delta(light0).bytes_read;
  result->model_bytes_read = model1.Delta(model0).bytes_read;
  result->resident_bytes = 0;
  for (const auto& [id, entry] : resident_) {
    result->resident_bytes += entry.second;
  }
  result->frame_time_ms =
      result->query_time_ms + options_.render.FrameMillis(triangles);
  flight.set_io_pages(result->io_pages);
  if (TelemetryOn()) {
    frame_time_hist_->Observe(result->frame_time_ms);
    EmitFrameRecord(*result, 0);  // Depth bands, not viewing cells.
  }
  return Status::OK();
}

void LodRTreeSystem::ResetRuntime() {
  resident_.clear();
  last_result_.clear();
}

IoStats LodRTreeSystem::TotalIoStats() const {
  IoStats s = index_device_.stats();
  s += model_device_.stats();
  return s;
}

void LodRTreeSystem::ResetIoStats() {
  index_device_.ResetStats();
  model_device_.ResetStats();
  clock_.Reset();
}

}  // namespace hdov
