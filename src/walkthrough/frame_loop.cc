#include "walkthrough/frame_loop.h"

#include <algorithm>
#include <cmath>

namespace hdov {

Result<SessionSummary> PlaySession(WalkthroughSystem* system,
                                   const Session& session,
                                   const PlayOptions& options) {
  if (session.frames.empty()) {
    return Status::InvalidArgument("play session: empty session");
  }
  if (options.reset_runtime_first) {
    system->ResetRuntime();
  }

  SessionSummary summary;
  summary.system_name = system->name();
  summary.session_name = session.name;
  summary.num_frames = session.frames.size();

  double sum_time = 0.0;
  double sum_time_sq = 0.0;
  double sum_query = 0.0;
  double sum_io = 0.0;
  double sum_light_io = 0.0;

  for (const Viewpoint& vp : session.frames) {
    FrameResult frame;
    HDOV_RETURN_IF_ERROR(system->RenderFrame(vp, &frame));
    sum_time += frame.frame_time_ms;
    sum_time_sq += frame.frame_time_ms * frame.frame_time_ms;
    sum_query += frame.query_time_ms;
    sum_io += static_cast<double>(frame.io_pages);
    sum_light_io += static_cast<double>(frame.light_io_pages);
    summary.max_resident_bytes =
        std::max(summary.max_resident_bytes, frame.resident_bytes);
    if (options.keep_frames) {
      summary.frames.push_back(frame);
    }
  }

  const double n = static_cast<double>(summary.num_frames);
  summary.avg_frame_time_ms = sum_time / n;
  summary.var_frame_time =
      std::max(0.0, sum_time_sq / n -
                        summary.avg_frame_time_ms * summary.avg_frame_time_ms);
  summary.avg_query_time_ms = sum_query / n;
  summary.avg_io_pages = sum_io / n;
  summary.avg_light_io_pages = sum_light_io / n;
  return summary;
}

}  // namespace hdov
