#include "walkthrough/frame_loop.h"

#include <algorithm>
#include <cmath>

#include "telemetry/slow_frame.h"
#include "telemetry/trace_context.h"

namespace hdov {

Result<SessionSummary> PlaySession(WalkthroughSystem* system,
                                   const Session& session,
                                   const PlayOptions& options) {
  if (session.frames.empty()) {
    return Status::InvalidArgument("play session: empty session");
  }
  if (options.reset_runtime_first) {
    system->ResetRuntime();
  }

  // Stamp the session name into every frame record emitted below, and
  // restore whatever context the caller had set when the session ends.
  telemetry::Telemetry* telemetry = system->telemetry();
  const std::string saved_context =
      telemetry != nullptr ? telemetry->context() : std::string();
  if (telemetry != nullptr) {
    telemetry->set_context(session.name);
  }

  SessionSummary summary;
  summary.system_name = system->name();
  summary.session_name = session.name;

  // Trace attribution: every flight event below carries this session's
  // interned id, and each frame's stage breakdown feeds the always-on
  // slow-frame ring (queue_ns stays 0 — solo playback has no scheduler).
  const uint16_t session_code = telemetry::FlightInternName(session.name);
  telemetry::SlowFrameCapture& slow = telemetry::GlobalSlowFrameCapture();

  SessionAccumulator acc;
  uint64_t frame_index = 0;
  for (const Viewpoint& vp : session.frames) {
    FrameResult frame;
    Status status;
    telemetry::FrameStageRecord record;
    {
      telemetry::SessionTraceScope trace(session_code, frame_index);
      telemetry::BeginStageAccounting();
      record.start_ns = telemetry::FlightNowNs();
      status = system->RenderFrame(vp, &frame);
      record.wall_ns = telemetry::FlightNowNs() - record.start_ns;
      record.stages = telemetry::FinishStageAccounting();
    }
    if (!status.ok()) {
      if (telemetry != nullptr) {
        telemetry->set_context(saved_context);
      }
      return status;
    }
    record.session = session_code;
    record.frame = frame_index;
    record.io_pages = frame.io_pages;
    slow.OnFrame(record);
    ++frame_index;
    acc.Add(frame);
    if (options.keep_frames) {
      summary.frames.push_back(frame);
    }
  }
  acc.FinishInto(&summary);

  if (telemetry != nullptr) {
    telemetry->set_context(saved_context);
    if (telemetry->enabled()) {
      // Session-level aggregates as gauges, keyed by system and session.
      telemetry::MetricsRegistry& m = telemetry->metrics();
      const std::string base = system->telemetry_prefix() + ".session." +
                               session.name;
      m.GetGauge(base + ".avg_frame_time_ms")
          ->Set(summary.avg_frame_time_ms);
      m.GetGauge(base + ".var_frame_time")->Set(summary.var_frame_time);
      m.GetGauge(base + ".avg_io_pages")->Set(summary.avg_io_pages);
      m.GetGauge(base + ".cache_hit_rate")->Set(summary.avg_cache_hit_rate);
      m.GetGauge(base + ".max_resident_bytes")
          ->Set(static_cast<double>(summary.max_resident_bytes));
    }
  }
  return summary;
}

}  // namespace hdov
