// LodRTreeSystem: reimplementation of the LoD-R-tree baseline (Kofler,
// Gervautz & Gruber 2000 — the paper's related work [8]): an R-tree whose
// search "converts the viewing-frustum into a few rectangular query boxes"
// — depth bands along the viewing direction, each retrieved at an ad-hoc,
// static LoD (near = fine, far = coarse). Fast while the user looks where
// they were looking; degrades when the view turns, because the boxes (and
// everything cached for them) swing away — the behaviour the paper calls
// out in §2.

#ifndef HDOV_WALKTHROUGH_LODR_SYSTEM_H_
#define HDOV_WALKTHROUGH_LODR_SYSTEM_H_

#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "geometry/frustum.h"
#include "rtree/rtree.h"
#include "storage/model_store.h"
#include "walkthrough/render_model.h"
#include "walkthrough/walkthrough_system.h"

namespace hdov {

struct LodRTreeOptions {
  FrustumOptions frustum;  // far_dist bounds the deepest band.

  // Depth bands as fractions of far_dist; band i spans
  // (fractions[i-1], fractions[i]] * far_dist and is retrieved at LoD
  // level i (clamped to the object's chain).
  std::vector<double> band_fractions = {0.15, 0.45, 1.0};

  // Objects farther than this from the viewpoint are evicted.
  double cache_distance = 600.0;

  RTreeOptions rtree;
  RenderCostModel render;
  DiskModel disk;
};

class LodRTreeSystem : public WalkthroughSystem {
 public:
  static Result<std::unique_ptr<LodRTreeSystem>> Create(
      const Scene* scene, const LodRTreeOptions& options);

  std::string name() const override { return "LoD-R-tree"; }
  Status RenderFrame(const Viewpoint& viewpoint, FrameResult* result) override;
  void ResetRuntime() override;
  const std::vector<RetrievedLod>& last_result() const override {
    return last_result_;
  }
  IoStats TotalIoStats() const override;
  void ResetIoStats() override;

  SimClock& clock() { return clock_; }

  // The frustum-derived query boxes for a viewpoint (exposed for tests).
  std::vector<Aabb> QueryBoxes(const Viewpoint& viewpoint) const;

 private:
  LodRTreeSystem(const Scene* scene, const LodRTreeOptions& options);

  void RegisterTelemetry() override;

  const Scene* scene_;
  LodRTreeOptions options_;

  SimClock clock_;
  PageDevice index_device_;
  PageDevice model_device_;
  ModelStore models_;
  std::unique_ptr<PackedRTree> packed_;
  std::vector<std::vector<ModelId>> object_models_;

  std::unordered_map<ObjectId, std::pair<uint32_t, uint64_t>> resident_;
  std::vector<RetrievedLod> last_result_;
  telemetry::Histogram* frame_time_hist_ = nullptr;  // Valid while attached.
};

}  // namespace hdov

#endif  // HDOV_WALKTHROUGH_LODR_SYSTEM_H_
