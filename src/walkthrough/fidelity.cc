#include "walkthrough/fidelity.h"

#include <algorithm>
#include <cmath>

namespace hdov {

FidelityEvaluator::FidelityEvaluator(const Scene* scene, const HdovTree* tree)
    : scene_(scene), tree_(tree) {
  if (tree_ == nullptr) {
    return;
  }
  node_objects_.resize(tree_->num_nodes());
  // Children-before-parents pass: a node's object set is the union of its
  // children's sets (reverse preorder).
  for (auto it = tree_->dfs_order().rbegin(); it != tree_->dfs_order().rend();
       ++it) {
    const HdovNode& node = tree_->node(*it);
    std::vector<ObjectId>& objects = node_objects_[*it];
    if (node.is_leaf) {
      for (const HdovEntry& e : node.entries) {
        objects.push_back(static_cast<ObjectId>(e.child));
      }
    } else {
      for (const HdovEntry& e : node.entries) {
        const auto& child = node_objects_[static_cast<size_t>(e.child)];
        objects.insert(objects.end(), child.begin(), child.end());
      }
    }
  }
}

FidelityScore FidelityEvaluator::Evaluate(
    const CellVisibility& truth,
    const std::vector<RetrievedLod>& rendered) const {
  // Ideal (Eq. 6) triangle budget of every truly visible object.
  double total_dov = 0.0;
  for (float d : truth.dov) {
    total_dov += d;
  }
  FidelityScore score;
  if (total_dov <= 0.0) {
    score.coverage = score.detail = score.combined = 1.0;
    return score;  // Nothing visible: trivially perfect.
  }

  // Triangles allocated to each visible object by the rendered set.
  std::vector<double> allocated(scene_->size(), 0.0);
  for (const RetrievedLod& lod : rendered) {
    if (lod.kind == RetrievedLod::Kind::kObject) {
      allocated[lod.owner] += static_cast<double>(lod.triangle_count);
      continue;
    }
    // Internal LoD: distribute its triangles over the visible objects it
    // stands in for, proportional to their DoV.
    const auto& covered = node_objects_[static_cast<size_t>(lod.owner)];
    double covered_dov = 0.0;
    for (ObjectId id : covered) {
      covered_dov += truth.DovOf(id);
    }
    if (covered_dov <= 0.0) {
      continue;
    }
    for (ObjectId id : covered) {
      const double share = truth.DovOf(id) / covered_dov;
      allocated[id] += share * static_cast<double>(lod.triangle_count);
    }
  }

  double covered_mass = 0.0;
  double quality_mass = 0.0;
  for (size_t i = 0; i < truth.ids.size(); ++i) {
    const ObjectId id = truth.ids[i];
    const double dov = truth.dov[i];
    if (allocated[id] <= 0.0) {
      continue;  // Visible but not represented: pure coverage loss.
    }
    covered_mass += dov;
    const Object& obj = scene_->object(id);
    const double k = std::min(dov / kMaxDov, 1.0);
    const double ideal = std::max<double>(
        1.0, obj.lods.level(obj.lods.LevelForBlend(k)).triangle_count);
    quality_mass += dov * std::min(1.0, allocated[id] / ideal);
  }

  score.coverage = covered_mass / total_dov;
  score.detail = covered_mass > 0.0 ? quality_mass / covered_mass : 0.0;
  score.combined = quality_mass / total_dov;
  return score;
}

FidelityScore FidelityEvaluator::OriginalScore(
    const CellVisibility& truth) const {
  std::vector<RetrievedLod> rendered;
  rendered.reserve(truth.ids.size());
  for (size_t i = 0; i < truth.ids.size(); ++i) {
    const Object& obj = scene_->object(truth.ids[i]);
    RetrievedLod lod;
    lod.kind = RetrievedLod::Kind::kObject;
    lod.owner = truth.ids[i];
    lod.lod_level = 0;
    lod.triangle_count = obj.lods.finest().triangle_count;
    lod.byte_size = obj.lods.finest().byte_size;
    lod.dov = truth.dov[i];
    rendered.push_back(lod);
  }
  return Evaluate(truth, rendered);
}

}  // namespace hdov
