// RenderCostModel: converts a rendered triangle count into simulated frame
// render time. Stands in for the paper's OpenGL renderer: frame time =
// query (disk) time + rasterization time, the latter proportional to the
// polygon load — which is exactly the trade-off eta tunes.

#ifndef HDOV_WALKTHROUGH_RENDER_MODEL_H_
#define HDOV_WALKTHROUGH_RENDER_MODEL_H_

#include <cstdint>

namespace hdov {

struct RenderCostModel {
  // Fixed per-frame overhead (scene setup, buffer swap).
  double base_ms = 2.0;

  // Per-triangle cost. 10 M triangles/s, in the ballpark of the paper's
  // early-2000s hardware.
  double ms_per_triangle = 0.0001;

  double FrameMillis(uint64_t triangles) const {
    return base_ms + ms_per_triangle * static_cast<double>(triangles);
  }
};

}  // namespace hdov

#endif  // HDOV_WALKTHROUGH_RENDER_MODEL_H_
