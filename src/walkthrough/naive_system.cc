#include "walkthrough/naive_system.h"

#include <algorithm>

#include "common/coding.h"
#include "hdov/search.h"  // kMaxDov and RetrievedLod.

namespace hdov {

NaiveSystem::NaiveSystem(const Scene* scene, const CellGrid* grid,
                         const NaiveOptions& options)
    : scene_(scene), grid_(grid), options_(options),
      list_device_(options.disk, &clock_),
      model_device_(options.disk, &clock_),
      models_(&model_device_),
      lists_(&list_device_) {}

Result<std::unique_ptr<NaiveSystem>> NaiveSystem::Create(
    const Scene* scene, const CellGrid* grid, const VisibilityTable* table,
    const NaiveOptions& options) {
  if (grid->num_cells() != table->num_cells()) {
    return Status::InvalidArgument(
        "naive: grid and visibility table disagree on cell count");
  }
  auto system =
      std::unique_ptr<NaiveSystem>(new NaiveSystem(scene, grid, options));

  system->object_models_.resize(scene->size());
  for (const Object& obj : scene->objects()) {
    auto& slots = system->object_models_[obj.id];
    for (size_t level = 0; level < obj.lods.num_levels(); ++level) {
      slots.push_back(
          system->models_.Register(obj.lods.level(level).byte_size));
    }
  }

  // Serialize each cell's visible-object list into its own extent.
  system->cell_extents_.reserve(table->num_cells());
  for (CellId c = 0; c < table->num_cells(); ++c) {
    const CellVisibility& cell = table->cell(c);
    std::string payload;
    EncodeFixed32(&payload, static_cast<uint32_t>(cell.ids.size()));
    for (size_t i = 0; i < cell.ids.size(); ++i) {
      EncodeFixed32(&payload, cell.ids[i]);
      EncodeFloat(&payload, cell.dov[i]);
    }
    HDOV_ASSIGN_OR_RETURN(Extent extent, system->lists_.Append(payload));
    system->cell_extents_.push_back(extent);
  }
  system->ResetIoStats();
  return system;
}

void NaiveSystem::RegisterTelemetry() {
  telemetry::MetricsRegistry& m = telemetry()->metrics();
  const std::string& p = telemetry_prefix();
  list_device_.RegisterWith(&m, p + ".io.list");
  model_device_.RegisterWith(&m, p + ".io.model");
  frame_time_hist_ = m.GetHistogram(
      p + ".frame.time_ms", telemetry::ExponentialBuckets(0.25, 2.0, 14));
}

Status NaiveSystem::Query(const Vec3& position, bool fetch_models,
                          std::vector<RetrievedLod>* result) {
  const CellId cell = grid_->ClampedCellForPoint(position);
  // The whole list is read on every cell change (and on every query when
  // delta is disabled) — there is no index to prune it.
  const bool reread = !delta_enabled_ || cell != current_cell_;
  current_cell_ = cell;

  result->clear();
  if (reread || cached_list_.empty()) {
    HDOV_ASSIGN_OR_RETURN(std::string payload,
                          lists_.ReadExtent(cell_extents_[cell]));
    Decoder decoder(payload);
    uint32_t count = 0;
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&count));
    cached_list_.clear();
    cached_list_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t id = 0;
      float dov = 0.0f;
      HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&id));
      HDOV_RETURN_IF_ERROR(decoder.DecodeFloat(&dov));
      cached_list_.emplace_back(id, dov);
    }
  }

  for (const auto& [id, dov] : cached_list_) {
    const Object& obj = scene_->object(id);
    // Same Eq. 6 object LoD selection as the HDoV leaf case, so that
    // eta = 0 HDoV search and the naive search retrieve identical sets.
    const double k = std::min(static_cast<double>(dov) / kMaxDov, 1.0);
    RetrievedLod lod;
    lod.kind = RetrievedLod::Kind::kObject;
    lod.owner = id;
    lod.lod_level = static_cast<uint32_t>(obj.lods.LevelForBlend(k));
    lod.model = object_models_[id][lod.lod_level];
    lod.triangle_count = obj.lods.level(lod.lod_level).triangle_count;
    lod.byte_size = obj.lods.level(lod.lod_level).byte_size;
    lod.dov = dov;
    result->push_back(lod);
  }
  if (fetch_models) {
    for (const RetrievedLod& lod : *result) {
      HDOV_RETURN_IF_ERROR(models_.Fetch(lod.model));
    }
  }
  return Status::OK();
}

Status NaiveSystem::RenderFrame(const Viewpoint& viewpoint,
                                FrameResult* result) {
  telemetry::FlightFrameScope flight(FlightCode(), NextFlightFrame());
  const double t0 = clock_.NowMillis();
  const IoStats light0 = list_device_.stats();
  const IoStats model0 = model_device_.stats();

  HDOV_RETURN_IF_ERROR(
      Query(viewpoint.position, /*fetch_models=*/false, &last_result_));

  size_t fetched = 0;
  uint64_t triangles = 0;
  std::unordered_map<ModelId, uint64_t> next_resident;
  for (const RetrievedLod& lod : last_result_) {
    triangles += lod.triangle_count;
    const bool already_resident =
        delta_enabled_ && resident_.find(lod.model) != resident_.end();
    if (!already_resident) {
      HDOV_RETURN_IF_ERROR(models_.Fetch(lod.model));
      ++fetched;
    }
    next_resident.emplace(lod.model, lod.byte_size);
  }
  resident_ = std::move(next_resident);

  const IoStats light1 = list_device_.stats();
  const IoStats model1 = model_device_.stats();
  result->query_time_ms = clock_.NowMillis() - t0;
  result->light_io_pages = light1.Delta(light0).page_reads;
  result->io_pages =
      result->light_io_pages + model1.Delta(model0).page_reads;
  result->index_bytes_read = light1.Delta(light0).bytes_read;
  result->model_bytes_read = model1.Delta(model0).bytes_read;
  result->rendered_triangles = triangles;
  result->models_fetched = fetched;
  result->resident_bytes = 0;
  for (const auto& [model, bytes] : resident_) {
    result->resident_bytes += bytes;
  }
  result->frame_time_ms =
      result->query_time_ms + options_.render.FrameMillis(triangles);
  flight.set_io_pages(result->io_pages);
  if (TelemetryOn()) {
    frame_time_hist_->Observe(result->frame_time_ms);
    EmitFrameRecord(*result,
                    grid_->ClampedCellForPoint(viewpoint.position));
  }
  return Status::OK();
}

void NaiveSystem::ResetRuntime() {
  resident_.clear();
  last_result_.clear();
  cached_list_.clear();
  current_cell_ = kInvalidCell;
}

IoStats NaiveSystem::TotalIoStats() const {
  IoStats s = list_device_.stats();
  s += model_device_.stats();
  return s;
}

void NaiveSystem::ResetIoStats() {
  list_device_.ResetStats();
  model_device_.ResetStats();
  clock_.Reset();
}

}  // namespace hdov
