// Frame loop: plays a recorded session back on a walkthrough system and
// aggregates the paper's metrics — average frame time, frame-time variance
// ("choppiness"), per-query search time and I/O, peak memory.

#ifndef HDOV_WALKTHROUGH_FRAME_LOOP_H_
#define HDOV_WALKTHROUGH_FRAME_LOOP_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "scene/session.h"
#include "walkthrough/walkthrough_system.h"

namespace hdov {

struct SessionSummary {
  std::string system_name;
  std::string session_name;
  size_t num_frames = 0;

  double avg_frame_time_ms = 0.0;
  double var_frame_time = 0.0;   // Variance of the per-frame times.
  double avg_query_time_ms = 0.0;
  double avg_io_pages = 0.0;
  double avg_light_io_pages = 0.0;
  // Mean per-frame buffer-pool hit rate. Sessions start with a cleared
  // pool (BufferPool::Clear resets entries AND counters), so this — like
  // the pool's telemetry views while the session runs — covers only this
  // session's frames. 0 when the system runs uncached.
  double avg_cache_hit_rate = 0.0;
  uint64_t max_resident_bytes = 0;

  // Per-frame detail (kept when PlaySession is asked to).
  std::vector<FrameResult> frames;
};

struct PlayOptions {
  bool keep_frames = false;
  bool reset_runtime_first = true;  // Start the session cold.
};

Result<SessionSummary> PlaySession(WalkthroughSystem* system,
                                   const Session& session,
                                   const PlayOptions& options = PlayOptions());

}  // namespace hdov

#endif  // HDOV_WALKTHROUGH_FRAME_LOOP_H_
