// Frame loop: plays a recorded session back on a walkthrough system and
// aggregates the paper's metrics — average frame time, frame-time variance
// ("choppiness"), per-query search time and I/O, peak memory.

#ifndef HDOV_WALKTHROUGH_FRAME_LOOP_H_
#define HDOV_WALKTHROUGH_FRAME_LOOP_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "scene/session.h"
#include "walkthrough/walkthrough_system.h"

namespace hdov {

struct SessionSummary {
  std::string system_name;
  std::string session_name;
  size_t num_frames = 0;

  double avg_frame_time_ms = 0.0;
  double var_frame_time = 0.0;   // Variance of the per-frame times.
  double avg_query_time_ms = 0.0;
  double avg_io_pages = 0.0;
  double avg_light_io_pages = 0.0;
  // Buffer-pool hit rate over the whole session, as total hits divided by
  // total pool traffic (ratio of sums — a frame with heavy traffic weighs
  // more than an idle one). Sessions start with a cleared pool
  // (BufferPool::Clear resets entries AND counters), so this — like the
  // pool's telemetry views while the session runs — covers only this
  // session's frames. 0 when the system runs uncached.
  double avg_cache_hit_rate = 0.0;
  uint64_t max_resident_bytes = 0;

  // Per-frame detail (kept when PlaySession is asked to).
  std::vector<FrameResult> frames;
};

// Streaming aggregator turning a sequence of FrameResults into the
// SessionSummary statistics. One code path for solo playback (PlaySession)
// and the walkthrough server's per-session loops, so their summaries are
// equivalent by construction: the same frame sequence produces the same
// (bit-identical) aggregate doubles.
//
// Frame-time variance uses Welford's online algorithm — the textbook
// E[x²]−E[x]² form cancels catastrophically when the mean is large and the
// spread small (a long session of ~1e8 ms frames with ±1 ms jitter rounds
// to variance 0.0). The cache hit rate is a ratio of summed hit/miss
// counts, not a mean of per-frame ratios.
class SessionAccumulator {
 public:
  void Add(const FrameResult& frame) {
    ++count_;
    const double delta = frame.frame_time_ms - mean_time_;
    mean_time_ += delta / static_cast<double>(count_);
    m2_time_ += delta * (frame.frame_time_ms - mean_time_);
    sum_query_ += frame.query_time_ms;
    sum_io_ += static_cast<double>(frame.io_pages);
    sum_light_io_ += static_cast<double>(frame.light_io_pages);
    cache_hits_ += frame.cache_hits;
    cache_misses_ += frame.cache_misses;
    max_resident_bytes_ = std::max(max_resident_bytes_, frame.resident_bytes);
  }

  size_t count() const { return count_; }

  // Fills the aggregate fields of `summary` (leaves the identity fields
  // and the kept frames alone). Requires count() > 0.
  void FinishInto(SessionSummary* summary) const {
    const double n = static_cast<double>(count_);
    summary->num_frames = count_;
    summary->avg_frame_time_ms = mean_time_;
    summary->var_frame_time = m2_time_ / n;  // Population variance.
    summary->avg_query_time_ms = sum_query_ / n;
    summary->avg_io_pages = sum_io_ / n;
    summary->avg_light_io_pages = sum_light_io_ / n;
    const uint64_t traffic = cache_hits_ + cache_misses_;
    summary->avg_cache_hit_rate =
        traffic == 0 ? 0.0
                     : static_cast<double>(cache_hits_) /
                           static_cast<double>(traffic);
    summary->max_resident_bytes = max_resident_bytes_;
  }

 private:
  size_t count_ = 0;
  double mean_time_ = 0.0;
  double m2_time_ = 0.0;  // Welford: sum of squared deviations from the mean.
  double sum_query_ = 0.0;
  double sum_io_ = 0.0;
  double sum_light_io_ = 0.0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t max_resident_bytes_ = 0;
};

struct PlayOptions {
  bool keep_frames = false;
  bool reset_runtime_first = true;  // Start the session cold.
};

Result<SessionSummary> PlaySession(WalkthroughSystem* system,
                                   const Session& session,
                                   const PlayOptions& options = PlayOptions());

}  // namespace hdov

#endif  // HDOV_WALKTHROUGH_FRAME_LOOP_H_
