// ReviewSystem: reimplementation of the REVIEW baseline (Shou et al.,
// VLDB'01): a disk-resident R-tree over object MBRs queried with spatial
// window ("query box") searches around the viewpoint, a complement (delta)
// search that skips objects retrieved earlier, distance-based static LoD
// selection, and a semantic, distance-based cache replacement policy.

#ifndef HDOV_WALKTHROUGH_REVIEW_SYSTEM_H_
#define HDOV_WALKTHROUGH_REVIEW_SYSTEM_H_

#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "rtree/rtree.h"
#include "scene/cell_grid.h"
#include "storage/model_store.h"
#include "walkthrough/render_model.h"
#include "walkthrough/walkthrough_system.h"

namespace hdov {

struct ReviewOptions {
  // Side length of the cubic spatial query box centered on the viewpoint
  // (the paper evaluates 200 m and 400 m).
  double query_box_size = 400.0;

  // Objects farther than this from the viewpoint are evicted from the
  // model cache (semantic replacement). Defaults to 1.5x the box size.
  double cache_distance = 600.0;

  // Distance thresholds for static LoD selection, as fractions of the
  // query box size: nearer than f * box -> finer LoD.
  std::vector<double> lod_distance_fractions = {0.25, 0.5, 0.75};

  RTreeOptions rtree;
  RenderCostModel render;
  DiskModel disk;
};

class ReviewSystem : public WalkthroughSystem {
 public:
  static Result<std::unique_ptr<ReviewSystem>> Create(
      const Scene* scene, const ReviewOptions& options);

  std::string name() const override { return "REVIEW"; }
  Status RenderFrame(const Viewpoint& viewpoint, FrameResult* result) override;
  void ResetRuntime() override;
  const std::vector<RetrievedLod>& last_result() const override {
    return last_result_;
  }
  IoStats TotalIoStats() const override;
  void ResetIoStats() override;

  void set_query_box_size(double size) {
    options_.query_box_size = size;
    options_.cache_distance = 1.5 * size;
  }
  double query_box_size() const { return options_.query_box_size; }

  SimClock& clock() { return clock_; }
  PageDevice& index_device() { return index_device_; }
  PageDevice& model_device() { return model_device_; }

  // One spatial query around `position` (no caching side effects).
  Status Query(const Vec3& position, std::vector<uint64_t>* object_ids);

 private:
  ReviewSystem(const Scene* scene, const ReviewOptions& options);

  void RegisterTelemetry() override;

  Aabb QueryBox(const Vec3& position) const;
  size_t LodLevelForDistance(ObjectId id, double distance) const;

  const Scene* scene_;
  ReviewOptions options_;

  SimClock clock_;
  PageDevice index_device_;
  PageDevice model_device_;
  ModelStore models_;
  std::unique_ptr<PackedRTree> packed_;
  std::vector<std::vector<ModelId>> object_models_;

  // object -> (lod level resident, bytes).
  std::unordered_map<ObjectId, std::pair<uint32_t, uint64_t>> resident_;
  std::vector<RetrievedLod> last_result_;
  telemetry::Histogram* frame_time_hist_ = nullptr;  // Valid while attached.
};

}  // namespace hdov

#endif  // HDOV_WALKTHROUGH_REVIEW_SYSTEM_H_
