// The shared experiment environment: the synthetic city, viewing-cell
// grid, and precomputed visibility table every experiment binary runs
// against. Lives here (not in bench/) so the snapshot build tool, the
// benchmarks, and the tests all construct — or persist and reload —
// exactly the same world. bench/bench_util.h wraps these with the
// bench-flag defaults (HDOV_BENCH_SCALE, --threads).

#ifndef HDOV_WALKTHROUGH_EXPERIMENT_TESTBED_H_
#define HDOV_WALKTHROUGH_EXPERIMENT_TESTBED_H_

#include <cstdint>

#include "common/result.h"
#include "persist/snapshot.h"
#include "scene/cell_grid.h"
#include "scene/object.h"
#include "visibility/precompute.h"
#include "walkthrough/visual_system.h"

namespace hdov {

struct TestbedOptions {
  int blocks = 16;        // blocks x blocks city.
  int cells = 16;         // cells x cells viewing grid.
  int face_resolution = 64;
  int samples_per_cell = 1;
  uint64_t seed = 20030101;
  uint32_t threads = 1;   // Precompute workers (0 = hardware).
};

struct Testbed {
  Scene scene;
  CellGrid grid;
  VisibilityTable table;
};

// Generates the proxy-mode city, builds the cell grid over its bounds, and
// precomputes the visibility table. Deterministic for fixed options.
Result<Testbed> BuildTestbed(const TestbedOptions& options);

// Experiment-standard VISUAL configuration: fanout 8 so that leaf nodes
// cover block-scale object clusters — the granularity at which distant
// clusters' aggregate DoV falls below the paper's eta range [0, 0.008].
VisualOptions DefaultVisualOptions(uint32_t build_threads = 1);

// Writes the view-invariant world sections ("scene", "cellgrid",
// "vistable") into an open snapshot.
Status WriteWorldSections(SnapshotWriter* writer, const Testbed& bed);

// Rebuilds a Testbed from those sections. The grid is rebuilt
// deterministically from the decoded scene bounds and grid options, so the
// loaded testbed is identical to the one the snapshot was written from.
Result<Testbed> LoadWorldSections(const SnapshotLoader& snapshot);

// Writes a complete world snapshot: the world sections plus the packed
// HDoV-tree, the model store, and ALL storage schemes (each on its own
// device section), so any scheme can be loaded without rebuilding. This is
// the core of tools/hdov_build; `options` supplies the build parameters
// (its `scheme` field is ignored — every scheme is written).
Status WriteWorldSnapshot(SnapshotWriter* writer, const Testbed& bed,
                          const VisualOptions& options);

}  // namespace hdov

#endif  // HDOV_WALKTHROUGH_EXPERIMENT_TESTBED_H_
