// NaiveSystem: the (cell, list-of-objects) baseline of §3/§5.3 — each
// viewing cell stores a flat list of its visible objects (with their DoV),
// and a query reads the whole list and retrieves object LoDs only (no
// hierarchy, no internal LoDs, no early termination).

#ifndef HDOV_WALKTHROUGH_NAIVE_SYSTEM_H_
#define HDOV_WALKTHROUGH_NAIVE_SYSTEM_H_

#include <memory>
#include <unordered_map>

#include "common/result.h"
#include "scene/cell_grid.h"
#include "storage/model_store.h"
#include "storage/paged_file.h"
#include "visibility/precompute.h"
#include "walkthrough/render_model.h"
#include "walkthrough/walkthrough_system.h"

namespace hdov {

struct NaiveOptions {
  RenderCostModel render;
  DiskModel disk;
};

class NaiveSystem : public WalkthroughSystem {
 public:
  static Result<std::unique_ptr<NaiveSystem>> Create(
      const Scene* scene, const CellGrid* grid, const VisibilityTable* table,
      const NaiveOptions& options);

  std::string name() const override { return "naive"; }
  Status RenderFrame(const Viewpoint& viewpoint, FrameResult* result) override;
  void ResetRuntime() override;
  const std::vector<RetrievedLod>& last_result() const override {
    return last_result_;
  }
  IoStats TotalIoStats() const override;
  void ResetIoStats() override;

  SimClock& clock() { return clock_; }
  PageDevice& list_device() { return list_device_; }
  PageDevice& model_device() { return model_device_; }

  // Total bytes of the per-cell lists on disk.
  uint64_t ListSizeBytes() const { return list_device_.SizeBytes(); }

  // One query: reads the cell list and reports the LoDs to retrieve;
  // optionally fetches their model data.
  Status Query(const Vec3& position, bool fetch_models,
               std::vector<RetrievedLod>* result);

 private:
  NaiveSystem(const Scene* scene, const CellGrid* grid,
              const NaiveOptions& options);

  void RegisterTelemetry() override;

  const Scene* scene_;
  const CellGrid* grid_;
  NaiveOptions options_;

  SimClock clock_;
  PageDevice list_device_;
  PageDevice model_device_;
  ModelStore models_;
  PagedFile lists_;
  std::vector<Extent> cell_extents_;
  std::vector<std::vector<ModelId>> object_models_;

  CellId current_cell_ = kInvalidCell;
  std::vector<std::pair<ObjectId, float>> cached_list_;  // Current cell.
  std::unordered_map<ModelId, uint64_t> resident_;
  std::vector<RetrievedLod> last_result_;
  telemetry::Histogram* frame_time_hist_ = nullptr;  // Valid while attached.
};

}  // namespace hdov

#endif  // HDOV_WALKTHROUGH_NAIVE_SYSTEM_H_
