// ModelStore: the heavy-weight model data file. Each LoD representation
// (object LoD or node internal LoD) occupies a contiguous unmaterialized
// extent; "fetching" a representation bills the simulated disk for one
// seek plus its pages, exactly how the paper accounts for retrieving the
// "heavy-weighted model data".

#ifndef HDOV_STORAGE_MODEL_STORE_H_
#define HDOV_STORAGE_MODEL_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/page_device.h"

namespace hdov {

using ModelId = uint32_t;
inline constexpr ModelId kInvalidModel = ~static_cast<ModelId>(0);

class ModelStore {
 public:
  explicit ModelStore(PageDevice* device) : device_(device) {}

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  // Registers a representation of `bytes` logical size and returns its id.
  ModelId Register(uint64_t bytes);

  // Simulates reading the representation from disk (billed, no contents).
  Status Fetch(ModelId id);

  uint64_t SizeOf(ModelId id) const { return extents_[id].bytes; }
  uint64_t PagesOf(ModelId id) const { return extents_[id].page_count; }
  size_t num_models() const { return extents_.size(); }

  // Total logical bytes registered — the "raw dataset" size.
  uint64_t total_bytes() const { return total_bytes_; }

  PageDevice* device() const { return device_; }

  // Serializes the extent table so a store can be reattached to a restored
  // device image / restores it. The store must be freshly constructed over
  // a device holding (at least) the pages the extents reference.
  void EncodeMeta(std::string* dst) const;
  Status RestoreMeta(std::string_view meta);

 private:
  struct ModelExtent {
    PageId first_page = kInvalidPage;
    uint64_t page_count = 0;
    uint64_t bytes = 0;
  };

  PageDevice* device_;
  std::vector<ModelExtent> extents_;
  uint64_t total_bytes_ = 0;
};

}  // namespace hdov

#endif  // HDOV_STORAGE_MODEL_STORE_H_
