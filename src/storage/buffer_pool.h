// BufferPool: an LRU page cache in front of a PageDevice. The walkthrough
// systems read index pages through the pool; hit pages cost no simulated
// I/O. Capacity is in pages.

#ifndef HDOV_STORAGE_BUFFER_POOL_H_
#define HDOV_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "storage/page_device.h"

namespace hdov {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class BufferPool {
 public:
  BufferPool(PageDevice* device, size_t capacity_pages)
      : device_(device), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns the page contents, reading through on a miss. The returned
  // pointer stays valid until the entry is evicted or the pool destroyed;
  // callers must not hold it across further Get calls (copy if needed).
  Result<const std::string*> Get(PageId page);

  void Clear();

  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

  // Folds the pool's hit/miss/eviction counters (and a derived hit-rate
  // gauge) into `registry` as `<prefix>.hits`, `.misses`, `.evictions`,
  // `.hit_rate` read-through views. The pool must outlive the
  // registration (unregister the prefix before destroying the pool).
  void RegisterWith(telemetry::MetricsRegistry* registry,
                    const std::string& prefix) const;

 private:
  struct Entry {
    std::string data;
    std::list<PageId>::iterator lru_it;
  };

  PageDevice* device_;
  size_t capacity_;
  BufferPoolStats stats_;
  std::list<PageId> lru_;  // Front = most recently used.
  std::unordered_map<PageId, std::unique_ptr<Entry>> entries_;
};

}  // namespace hdov

#endif  // HDOV_STORAGE_BUFFER_POOL_H_
