// BufferPool: an LRU page cache in front of a PageDevice. The walkthrough
// systems read index pages through the pool; hit pages cost no simulated
// I/O. Capacity is in pages.
//
// Get returns a pinned PageRef handle: the page cannot be evicted while a
// ref to it is alive, so holding one across further Get calls is safe.
// Invariants:
//   - after every Get, at most `capacity()` *unpinned* entries remain
//     (pins can push the momentary total above capacity — pin-through);
//   - an unpin that leaves the pool over capacity evicts the excess in
//     LRU order immediately.
// A capacity of 0 is therefore legal and means "no caching": every page
// lives only as long as its refs, and every Get is a miss.

#ifndef HDOV_STORAGE_BUFFER_POOL_H_
#define HDOV_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "storage/page_device.h"

namespace hdov {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class BufferPool {
 private:
  struct Entry;  // Defined below; PageRef holds a pointer to one.

 public:
  // Move-only pinned handle to one cached page. The page's bytes stay
  // valid (and the entry un-evictable) for the life of the ref; the pool
  // must outlive every ref it handed out.
  class PageRef {
   public:
    PageRef() = default;
    PageRef(PageRef&& other) noexcept
        : pool_(other.pool_), entry_(other.entry_) {
      other.pool_ = nullptr;
      other.entry_ = nullptr;
    }
    PageRef& operator=(PageRef&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        entry_ = other.entry_;
        other.pool_ = nullptr;
        other.entry_ = nullptr;
      }
      return *this;
    }
    ~PageRef() { Release(); }

    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;

    bool valid() const { return entry_ != nullptr; }
    const std::string& data() const {
      assert(valid());
      return entry_->data;
    }
    const std::string& operator*() const { return data(); }
    const std::string* operator->() const { return &data(); }

    // Unpins early (idempotent); the ref is empty afterwards.
    void Release() {
      if (pool_ != nullptr) {
        pool_->Unpin(entry_);
      }
      pool_ = nullptr;
      entry_ = nullptr;
    }

   private:
    friend class BufferPool;
    PageRef(BufferPool* pool, Entry* entry) : pool_(pool), entry_(entry) {}

    BufferPool* pool_ = nullptr;
    Entry* entry_ = nullptr;
  };

  BufferPool(PageDevice* device, size_t capacity_pages)
      : device_(device),
        capacity_(capacity_pages),
        flight_code_(telemetry::FlightInternName("pool")) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool() { UnregisterViews(); }

  // Returns a pinned ref to the page contents, reading through on a miss.
  Result<PageRef> Get(PageId page);

  // Drops every unpinned entry and resets the hit/miss/eviction counters:
  // a cleared pool reports statistics for the work after the Clear only
  // (the walkthrough systems clear between sessions, so per-session
  // telemetry views read per-session numbers). Entries kept alive by live
  // refs survive with their pins; dropped entries do not count as
  // evictions.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

  // Folds the pool's hit/miss/eviction counters (and a derived hit-rate
  // gauge) into `registry` as `<prefix>.hits`, `.misses`, `.evictions`,
  // `.hit_rate` read-through views. The registration is dropped again by
  // UnregisterViews(), which the destructor calls, so a view can never
  // outlive the pool it reads; `registry` must still be alive at that
  // point (registering with a registry the pool outlives requires an
  // explicit UnregisterViews() before the registry goes away).
  void RegisterWith(telemetry::MetricsRegistry* registry,
                    const std::string& prefix);

  // Removes the views installed by the last RegisterWith, if any.
  // Idempotent. Must run on the registry's owner thread.
  void UnregisterViews();

 private:
  struct Entry {
    std::string data;
    std::list<PageId>::iterator lru_it;
    uint32_t pins = 0;
  };

  // Evicts unpinned entries in LRU order until size() <= capacity() (or
  // only pinned entries remain).
  void TrimToCapacity();
  void Unpin(Entry* entry);

  PageDevice* device_;
  size_t capacity_;
  // Flight-recorder code of hit/miss events; "pool" until RegisterWith
  // names it after the registration prefix. Atomic because a concurrent
  // reader can be on the Get/Record path while another thread (re)wires
  // telemetry; relaxed ordering is enough, a stale code only mislabels
  // an event, it cannot corrupt anything.
  std::atomic<uint16_t> flight_code_;
  // Where the stats views are currently registered (null when none).
  telemetry::MetricsRegistry* view_registry_ = nullptr;
  std::string view_prefix_;
  BufferPoolStats stats_;
  std::list<PageId> lru_;  // Front = most recently used.
  std::unordered_map<PageId, std::unique_ptr<Entry>> entries_;
};

}  // namespace hdov

#endif  // HDOV_STORAGE_BUFFER_POOL_H_
