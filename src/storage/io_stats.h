// IoStats: counters accumulated by the simulated disk. The experiment
// harness reports these (page I/Os, seeks) and the simulated elapsed time
// derived from them, mirroring the paper's "number of disk I/Os" and
// "search time" metrics.
//
// IoStats remains the storage for the counters; the telemetry layer reads
// it live through registry views (see PageDevice::RegisterWith), so this
// struct is also the thin view the MetricsRegistry exposes per device.

#ifndef HDOV_STORAGE_IO_STATS_H_
#define HDOV_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace hdov {

struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  // A seek is charged whenever a read/write does not continue the previous
  // access sequentially. Sequential continuation pays transfer cost only.
  uint64_t seeks = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  IoStats& operator+=(const IoStats& o) {
    page_reads += o.page_reads;
    page_writes += o.page_writes;
    seeks += o.seeks;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
  }

  IoStats Delta(const IoStats& earlier) const {
    IoStats d;
    d.page_reads = page_reads - earlier.page_reads;
    d.page_writes = page_writes - earlier.page_writes;
    d.seeks = seeks - earlier.seeks;
    d.bytes_read = bytes_read - earlier.bytes_read;
    d.bytes_written = bytes_written - earlier.bytes_written;
    return d;
  }

  uint64_t total_page_ios() const { return page_reads + page_writes; }

  std::string ToString() const {
    return "reads=" + std::to_string(page_reads) +
           " writes=" + std::to_string(page_writes) +
           " seeks=" + std::to_string(seeks);
  }
};

}  // namespace hdov

#endif  // HDOV_STORAGE_IO_STATS_H_
