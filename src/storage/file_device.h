// FilePageDevice: the PageDevice contract served from a real file with
// pread/pwrite. Materialized pages are packed page-aligned in write order
// ("slots"); a per-page table (state, slot, CRC32C) plus a header make the
// region self-describing. Simulated costs (IoStats, SimClock) are billed
// through the shared base-class helpers so counters stay bit-identical to
// the in-memory device regardless of backend.
//
// Region layout, offsets relative to `region_offset`:
//
//   [0, page_size)                      header (magic, version, geometry,
//                                       table location, CRCs)
//   [page_size, page_size*(1+M))        M materialized page slots, packed
//   [table_offset, +table_length)       page table: one entry per logical
//                                       page {state u8, slot u64, crc u32}
//
// The header and table are written by Sync() (followed by fsync); until
// then only page data has been written. A region can live at offset 0 of
// its own file (Create/Open) or embedded inside a larger file such as a
// snapshot (CreateAt/OpenAt with a shared FileHandle).

#ifndef HDOV_STORAGE_FILE_DEVICE_H_
#define HDOV_STORAGE_FILE_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page_device.h"

namespace hdov {

// Thin RAII wrapper over a POSIX file descriptor with whole-buffer
// pread/pwrite helpers. Shared (via shared_ptr) between several embedded
// FilePageDevice regions of one snapshot file.
class FileHandle {
 public:
  enum class Mode { kReadOnly, kReadWrite, kCreateTruncate };

  static Result<std::shared_ptr<FileHandle>> Open(const std::string& path,
                                                  Mode mode);
  ~FileHandle();

  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  const std::string& path() const { return path_; }
  bool writable() const { return writable_; }

  // Reads/writes exactly `n` bytes at `offset`; short transfer => error.
  Status PreadExact(uint64_t offset, void* buf, size_t n) const;
  Status PwriteExact(uint64_t offset, const void* buf, size_t n);
  Status Fsync();
  Result<uint64_t> Size() const;

 private:
  FileHandle(int fd, std::string path, bool writable)
      : fd_(fd), path_(std::move(path)), writable_(writable) {}

  int fd_;
  std::string path_;
  bool writable_;
};

// Durability counters for the persistence layer, surfaced through the
// metrics registry as `persist.*` views. One struct is typically shared
// by every file device of a snapshot plus its writer/loader. The integer
// counters are relaxed atomics because the read-side accounting runs on
// the (thread-safe, const) ReadRaw path, which several server sessions
// may drive concurrently through shared base devices.
struct PersistStats {
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> fsyncs{0};
  std::atomic<uint64_t> checksum_verifications{0};
  std::atomic<uint64_t> checksum_failures{0};
  double load_millis = 0.0;  // Filled by SnapshotLoader (single-threaded).

  // Registers read-through views `<prefix>.bytes_written`, `.bytes_read`,
  // `.fsyncs`, `.checksum_verifications`, `.checksum_failures`,
  // `.load_millis`. The struct must outlive the registration.
  void RegisterWith(telemetry::MetricsRegistry* registry,
                    const std::string& prefix) const;
};

class FilePageDevice : public PageDevice {
 public:
  // Fresh empty region at offset 0 of `path` (created/truncated).
  static Result<std::unique_ptr<FilePageDevice>> Create(
      const std::string& path, const DiskModel& model = DiskModel(),
      SimClock* clock = nullptr, PersistStats* persist = nullptr);

  // Opens an existing region at offset 0 of `path` read-only.
  static Result<std::unique_ptr<FilePageDevice>> Open(
      const std::string& path, const DiskModel& model = DiskModel(),
      SimClock* clock = nullptr, PersistStats* persist = nullptr);

  // Fresh empty region embedded at `region_offset` of a shared file.
  static Result<std::unique_ptr<FilePageDevice>> CreateAt(
      std::shared_ptr<FileHandle> file, uint64_t region_offset,
      const DiskModel& model = DiskModel(), SimClock* clock = nullptr,
      PersistStats* persist = nullptr);

  // Opens an existing region embedded at `region_offset`. Header and page
  // table are read and CRC-verified up front; page data is verified on
  // each read.
  static Result<std::unique_ptr<FilePageDevice>> OpenAt(
      std::shared_ptr<FileHandle> file, uint64_t region_offset,
      const DiskModel& model = DiskModel(), SimClock* clock = nullptr,
      PersistStats* persist = nullptr);

  // PageDevice contract. Billing is identical to the in-memory device.
  uint64_t page_count() const override { return table_.size(); }
  PageId Allocate() override;
  PageId AllocateUnmaterialized(uint64_t count) override;
  Status Write(PageId page, std::string_view data) override;
  Status Read(PageId page, std::string* out) override;
  Status ReadRun(PageId first, uint64_t count,
                 std::vector<std::string>* out) override;
  Status ReadRaw(PageId page, std::string* out) const override;
  bool IsMaterialized(PageId page) const override;
  Status RestoreContents(std::vector<std::string> pages) override;

  // Writes the page table and header, then fsyncs. Until Sync() the region
  // on disk has no valid header. Requires a writable handle.
  Status Sync();

  // Bytes of file the region spans after the last Sync (header + data +
  // table, rounded up to a page boundary). Zero before the first Sync.
  uint64_t region_length() const { return region_length_; }

  const std::shared_ptr<FileHandle>& file() const { return file_; }

 private:
  struct PageEntry {
    uint8_t materialized = 0;
    uint64_t slot = 0;    // Data-slot index; valid when materialized.
    uint32_t crc = 0;     // CRC32C of page contents; valid when materialized.
  };

  FilePageDevice(std::shared_ptr<FileHandle> file, uint64_t region_offset,
                 const DiskModel& model, SimClock* clock,
                 PersistStats* persist);

  uint64_t SlotFileOffset(uint64_t slot) const {
    return region_offset_ + page_size() * (1 + slot);
  }
  // pwrite of one page of payload (pads to page_size), CRC bookkeeping.
  Status WriteSlot(PageId page, std::string_view data);
  // pread + CRC verification of a materialized page.
  Status FetchPage(PageId page, std::string* out) const;

  Status LoadExisting();

  std::shared_ptr<FileHandle> file_;
  uint64_t region_offset_;
  PersistStats* persist_;          // May be null.
  // Shared state. Once a region has been opened (or synced) the table is
  // only mutated by the writer-side calls (Allocate/Write/Restore/Sync);
  // the const read path (ReadRaw/FetchPage/IsMaterialized) takes no locks
  // and is safe for concurrent readers as long as no writer is active —
  // pread is positional and each call owns its buffer on the stack.
  std::vector<PageEntry> table_;
  uint64_t materialized_count_ = 0;
  uint64_t region_length_ = 0;
};

}  // namespace hdov

#endif  // HDOV_STORAGE_FILE_DEVICE_H_
