// PagedFile: stores variable-length byte records as contiguous page runs
// ("extents") on a PageDevice. Used for V-page-index segments and other
// blobs larger than one page; reading an extent is one sequential scan.

#ifndef HDOV_STORAGE_PAGED_FILE_H_
#define HDOV_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/coding.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/page_device.h"

namespace hdov {

struct Extent {
  PageId first_page = kInvalidPage;
  uint64_t page_count = 0;
  uint64_t byte_length = 0;

  bool IsValid() const { return first_page != kInvalidPage; }
  uint64_t StoredBytes(uint32_t page_size) const {
    return page_count * page_size;
  }
};

// Extent <-> bytes, used by store/tree metadata blocks in snapshots.
inline void EncodeExtent(std::string* dst, const Extent& extent) {
  EncodeFixed64(dst, extent.first_page);
  EncodeFixed64(dst, extent.page_count);
  EncodeFixed64(dst, extent.byte_length);
}

inline Status DecodeExtent(Decoder* decoder, Extent* extent) {
  HDOV_RETURN_IF_ERROR(decoder->DecodeFixed64(&extent->first_page));
  HDOV_RETURN_IF_ERROR(decoder->DecodeFixed64(&extent->page_count));
  return decoder->DecodeFixed64(&extent->byte_length);
}

class PagedFile {
 public:
  explicit PagedFile(PageDevice* device) : device_(device) {}

  PageDevice* device() const { return device_; }

  // Appends `data` as a new extent (always whole pages).
  Result<Extent> Append(std::string_view data);

  // Reads a whole extent back (one seek + page_count transfers).
  Result<std::string> ReadExtent(const Extent& extent) const;

  // Reads `length` bytes starting at `offset` within the extent, touching
  // only the pages that cover the range (one seek + covered transfers).
  // This is how segmented files (e.g. the V-page-index) read one segment
  // out of a larger contiguous region.
  Result<std::string> ReadRange(const Extent& extent, uint64_t offset,
                                uint64_t length) const;

 private:
  PageDevice* device_;
};

}  // namespace hdov

#endif  // HDOV_STORAGE_PAGED_FILE_H_
