#include "storage/page_device.h"

#include <fstream>

#include "common/coding.h"
#include "telemetry/trace_context.h"

namespace hdov {

namespace {
constexpr uint32_t kDeviceMagic = 0x76644856;  // Bytes "VHdv" on disk.
}  // namespace

PageDevice::PageDevice(const DiskModel& model, SimClock* clock)
    : model_(model),
      clock_(clock != nullptr ? clock : &own_clock_),
      flight_code_(telemetry::FlightInternName("device")) {}

PageDevice::~PageDevice() = default;

PageId PageDevice::Allocate() {
  pages_.emplace_back();
  pages_.back().resize(model_.page_size, '\0');
  return pages_.size() - 1;
}

PageId PageDevice::AllocateUnmaterialized(uint64_t count) {
  PageId first = pages_.size();
  pages_.resize(pages_.size() + count);  // Empty strings: unmaterialized.
  return first;
}

Status PageDevice::Write(PageId page, std::string_view data) {
  if (page >= pages_.size()) {
    return Status::OutOfRange("page device: write past end");
  }
  if (data.size() > model_.page_size) {
    return Status::InvalidArgument("page device: record exceeds page size");
  }
  std::string& slot = pages_[page];
  slot.assign(model_.page_size, '\0');
  slot.replace(0, data.size(), data);
  BillWrite(page);
  return Status::OK();
}

Status PageDevice::Read(PageId page, std::string* out) {
  if (page >= pages_.size()) {
    return Status::OutOfRange("page device: read past end");
  }
  BillRead(page, 1);
  if (out != nullptr) {
    const std::string& slot = pages_[page];
    if (slot.empty()) {
      out->assign(model_.page_size, '\0');  // Unmaterialized page.
    } else {
      *out = slot;
    }
  }
  return Status::OK();
}

Status PageDevice::ReadRun(PageId first, uint64_t count,
                           std::vector<std::string>* out) {
  if (count == 0) {
    return Status::OK();
  }
  if (first + count > pages_.size()) {
    return Status::OutOfRange("page device: run read past end");
  }
  BillRead(first, count);
  if (out != nullptr) {
    out->clear();
    out->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      const std::string& slot = pages_[first + i];
      if (slot.empty()) {
        out->emplace_back(model_.page_size, '\0');
      } else {
        out->push_back(slot);
      }
    }
  }
  return Status::OK();
}

Status PageDevice::ReadRaw(PageId page, std::string* out) const {
  if (page >= pages_.size()) {
    return Status::OutOfRange("page device: raw read past end");
  }
  const std::string& slot = pages_[page];
  if (slot.empty()) {
    out->assign(model_.page_size, '\0');
  } else {
    *out = slot;
  }
  return Status::OK();
}

bool PageDevice::IsMaterialized(PageId page) const {
  return page < pages_.size() && !pages_[page].empty();
}

Status PageDevice::RestoreContents(std::vector<std::string> pages) {
  for (const std::string& page : pages) {
    if (!page.empty() && page.size() != model_.page_size) {
      return Status::InvalidArgument(
          "page device: restored page has wrong size");
    }
  }
  pages_ = std::move(pages);
  next_sequential_ = kInvalidPage;
  return Status::OK();
}

Status PageDevice::ExportContents(std::vector<std::string>* out) const {
  out->clear();
  out->resize(page_count());
  for (PageId id = 0; id < page_count(); ++id) {
    if (IsMaterialized(id)) {
      HDOV_RETURN_IF_ERROR(ReadRaw(id, &(*out)[id]));
    }
  }
  return Status::OK();
}

Status PageDevice::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("page device: cannot open " + path);
  }
  std::string header;
  EncodeFixed32(&header, kDeviceMagic);
  EncodeFixed32(&header, model_.page_size);
  EncodeFixed64(&header, page_count());
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  std::string page;
  for (PageId id = 0; id < page_count(); ++id) {
    const char materialized = IsMaterialized(id) ? 1 : 0;
    out.put(materialized);
    if (materialized) {
      HDOV_RETURN_IF_ERROR(ReadRaw(id, &page));
      out.write(page.data(), static_cast<std::streamsize>(page.size()));
    }
  }
  if (!out) {
    return Status::IoError("page device: write to " + path + " failed");
  }
  return Status::OK();
}

Status PageDevice::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("page device: cannot open " + path);
  }
  std::string header(16, '\0');
  in.read(header.data(), 16);
  if (!in) {
    return Status::Corruption("page device: truncated header");
  }
  Decoder decoder(header);
  uint32_t magic = 0;
  uint32_t page_size = 0;
  uint64_t page_count = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&magic));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&page_size));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&page_count));
  if (magic != kDeviceMagic) {
    return Status::Corruption("page device: bad magic in " + path);
  }
  if (page_size != model_.page_size) {
    return Status::InvalidArgument(
        "page device: file page size does not match the device model");
  }
  std::vector<std::string> pages(page_count);
  for (uint64_t i = 0; i < page_count; ++i) {
    int materialized = in.get();
    if (materialized == std::char_traits<char>::eof()) {
      return Status::Corruption("page device: truncated image");
    }
    if (materialized != 0) {
      pages[i].resize(model_.page_size);
      in.read(pages[i].data(),
              static_cast<std::streamsize>(model_.page_size));
      if (!in) {
        return Status::Corruption("page device: truncated page data");
      }
    }
  }
  return RestoreContents(std::move(pages));
}

void PageDevice::RegisterWith(telemetry::MetricsRegistry* registry,
                              const std::string& prefix) const {
  // Flight events now attribute to the registered name (e.g.
  // "visual.io.tree") instead of the generic "device".
  flight_code_ = telemetry::FlightInternName(prefix);
  const IoStats* stats = &stats_;
  const auto view = [&](const char* name, uint64_t IoStats::*field) {
    registry->RegisterView(prefix + name, [stats, field] {
      return static_cast<double>(stats->*field);
    });
  };
  view(".page_reads", &IoStats::page_reads);
  view(".page_writes", &IoStats::page_writes);
  view(".seeks", &IoStats::seeks);
  view(".bytes_read", &IoStats::bytes_read);
  view(".bytes_written", &IoStats::bytes_written);
}

void PageDevice::BillRead(PageId first, uint64_t pages) {
  if (prefetch_sink_ != nullptr) {
    // Billing diversion: the read is speculative prefetch I/O. Charge the
    // sink's private counters and head tracker; the device's stats, the
    // shared clock, and next_sequential_ stay where the frame left them.
    PrefetchSink& sink = *prefetch_sink_;
    sink.stats.page_reads += pages;
    sink.stats.bytes_read += pages * model_.page_size;
    const uint64_t seeks = (first == sink.next_sequential) ? 0 : 1;
    sink.stats.seeks += seeks;
    sink.cost_millis += model_.ReadCostMillis(pages, seeks);
    sink.next_sequential = first + pages;
    sink.runs.emplace_back(first, pages);
    // A diverted read IS a prefetch issue, whatever scope the speculative
    // pass happens to be in (the searcher opens its own kSearch stage).
    telemetry::GlobalFlightRecorder().RecordWithStage(
        telemetry::FlightEventType::kPageRead, flight_code_, first, pages,
        static_cast<uint8_t>(telemetry::TraceStage::kPrefetch));
    return;
  }
  if (prefetch_residency_ != nullptr && pages > 0 &&
      prefetch_residency_->pages.size() >= pages) {
    bool all_resident = true;
    for (uint64_t i = 0; i < pages; ++i) {
      if (prefetch_residency_->pages.count(first + i) == 0) {
        all_resident = false;
        break;
      }
    }
    if (all_resident) {
      // Residency gate: the run was prefetched and is still resident, so
      // the frame does not stall on it. Consume the pages (one-shot) and
      // skip billing entirely — no stats, no clock, no head movement.
      for (uint64_t i = 0; i < pages; ++i) {
        prefetch_residency_->pages.erase(first + i);
      }
      prefetch_residency_->used_pages += pages;
      ++prefetch_residency_->used_runs;
      telemetry::GlobalFlightRecorder().Record(
          telemetry::FlightEventType::kPrefetchUsed, flight_code_, first,
          pages);
      return;
    }
  }
  stats_.page_reads += pages;
  stats_.bytes_read += pages * model_.page_size;
  uint64_t seeks = (first == next_sequential_) ? 0 : 1;
  stats_.seeks += seeks;
  clock_->AdvanceMillis(model_.ReadCostMillis(pages, seeks));
  next_sequential_ = first + pages;
  // Flight-recorder hook: observes the billed access, never bills itself
  // (the simulated counters above are identical with the recorder off).
  telemetry::GlobalFlightRecorder().Record(
      telemetry::FlightEventType::kPageRead, flight_code_, first, pages);
}

void PageDevice::BillWrite(PageId page) {
  ++stats_.page_writes;
  stats_.bytes_written += model_.page_size;
  uint64_t seeks = (page == next_sequential_) ? 0 : 1;
  stats_.seeks += seeks;
  clock_->AdvanceMillis(model_.ReadCostMillis(1, seeks));
  next_sequential_ = page + 1;
  telemetry::GlobalFlightRecorder().Record(
      telemetry::FlightEventType::kPageWrite, flight_code_, page, 1);
}

}  // namespace hdov
