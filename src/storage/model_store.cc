#include "storage/model_store.h"

namespace hdov {

ModelId ModelStore::Register(uint64_t bytes) {
  ModelExtent extent;
  extent.bytes = bytes;
  const uint32_t page_size = device_->page_size();
  extent.page_count = (bytes + page_size - 1) / page_size;
  if (extent.page_count == 0) {
    extent.page_count = 1;
  }
  extent.first_page = device_->AllocateUnmaterialized(extent.page_count);
  total_bytes_ += bytes;
  extents_.push_back(extent);
  return static_cast<ModelId>(extents_.size() - 1);
}

Status ModelStore::Fetch(ModelId id) {
  if (id >= extents_.size()) {
    return Status::OutOfRange("model store: unknown model id");
  }
  const ModelExtent& extent = extents_[id];
  return device_->ReadRun(extent.first_page, extent.page_count, nullptr);
}

}  // namespace hdov
