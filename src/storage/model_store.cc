#include "storage/model_store.h"

#include "common/coding.h"

namespace hdov {

ModelId ModelStore::Register(uint64_t bytes) {
  ModelExtent extent;
  extent.bytes = bytes;
  const uint32_t page_size = device_->page_size();
  extent.page_count = (bytes + page_size - 1) / page_size;
  if (extent.page_count == 0) {
    extent.page_count = 1;
  }
  extent.first_page = device_->AllocateUnmaterialized(extent.page_count);
  total_bytes_ += bytes;
  extents_.push_back(extent);
  return static_cast<ModelId>(extents_.size() - 1);
}

Status ModelStore::Fetch(ModelId id) {
  if (id >= extents_.size()) {
    return Status::OutOfRange("model store: unknown model id");
  }
  const ModelExtent& extent = extents_[id];
  return device_->ReadRun(extent.first_page, extent.page_count, nullptr);
}

void ModelStore::EncodeMeta(std::string* dst) const {
  EncodeFixed64(dst, extents_.size());
  for (const ModelExtent& extent : extents_) {
    EncodeFixed64(dst, extent.first_page);
    EncodeFixed64(dst, extent.page_count);
    EncodeFixed64(dst, extent.bytes);
  }
  EncodeFixed64(dst, total_bytes_);
}

Status ModelStore::RestoreMeta(std::string_view meta) {
  Decoder decoder(meta);
  uint64_t count = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&count));
  std::vector<ModelExtent> extents(count);
  for (ModelExtent& extent : extents) {
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&extent.first_page));
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&extent.page_count));
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&extent.bytes));
    if (extent.first_page + extent.page_count > device_->page_count()) {
      return Status::Corruption("model store: extent past device end");
    }
  }
  uint64_t total = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&total));
  extents_ = std::move(extents);
  total_bytes_ = total;
  return Status::OK();
}

}  // namespace hdov
