// PageDevice: the simulated disk. Pages are fixed-size; every access is
// billed against a DiskModel (seek + transfer) on a shared SimClock, and
// counted in IoStats. Backing storage is in-memory; extents can also be
// allocated *unmaterialized* so that multi-gigabyte model data can be
// billed for without being stored (reads of such pages return zeros).

#ifndef HDOV_STORAGE_PAGE_DEVICE_H_
#define HDOV_STORAGE_PAGE_DEVICE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/disk_model.h"
#include "storage/io_stats.h"
#include "telemetry/metrics.h"

namespace hdov {

using PageId = uint64_t;
inline constexpr PageId kInvalidPage = ~static_cast<PageId>(0);

class PageDevice {
 public:
  // `clock` may be null, in which case the device owns a private clock.
  // When several devices model one physical disk plus its bus, share one
  // clock between them so costs accumulate on a single timeline.
  explicit PageDevice(const DiskModel& model = DiskModel(),
                      SimClock* clock = nullptr);

  PageDevice(const PageDevice&) = delete;
  PageDevice& operator=(const PageDevice&) = delete;

  const DiskModel& model() const { return model_; }
  uint32_t page_size() const { return model_.page_size; }
  uint64_t page_count() const { return pages_.size(); }

  // Bytes the device would occupy on disk (all allocated pages, whether or
  // not materialized). This is the number Table 2 reports.
  uint64_t SizeBytes() const { return page_count() * page_size(); }

  // Allocates one zero page and returns its id.
  PageId Allocate();

  // Allocates `count` contiguous pages without materializing contents.
  // Returns the first page id. Reads return zero bytes but are billed.
  PageId AllocateUnmaterialized(uint64_t count);

  // Writes `data` (at most page_size bytes) to `page`.
  Status Write(PageId page, std::string_view data);

  // Reads one page into `out` (resized to page_size).
  Status Read(PageId page, std::string* out);

  // Reads `count` consecutive pages starting at `first`. Billed as one
  // seek + `count` transfers. `out` may be null when only the cost and the
  // counters matter (model data fetches).
  Status ReadRun(PageId first, uint64_t count, std::vector<std::string>* out);

  // Persists the device image to a real file / restores it. Materialized
  // page contents are stored verbatim; unmaterialized extents are recorded
  // by length only, so a multi-GB logical device saves as a small file.
  // Statistics and the cost model are not part of the image.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats(); }

  // Folds this device's IoStats counters into `registry` as read-through
  // views named `<prefix>.page_reads`, `.page_writes`, `.seeks`,
  // `.bytes_read`, `.bytes_written` — IoStats stays the storage, the
  // registry reads it live at snapshot time. The device must outlive the
  // registration (unregister the prefix before destroying the device).
  void RegisterWith(telemetry::MetricsRegistry* registry,
                    const std::string& prefix) const;

  SimClock& clock() { return *clock_; }
  const SimClock& clock() const { return *clock_; }

 private:
  // Charges `pages` transfers starting at `first`; adds a seek when the
  // access does not continue the previous one.
  void BillRead(PageId first, uint64_t pages);

  DiskModel model_;
  SimClock own_clock_;
  SimClock* clock_;
  IoStats stats_;
  // Materialized page contents; empty string = unmaterialized (zeros).
  std::vector<std::string> pages_;
  PageId next_sequential_ = kInvalidPage;  // Page after the last access.
};

}  // namespace hdov

#endif  // HDOV_STORAGE_PAGE_DEVICE_H_
