// PageDevice: the simulated disk. Pages are fixed-size; every access is
// billed against a DiskModel (seek + transfer) on a shared SimClock, and
// counted in IoStats. The base class backs pages in memory; extents can
// also be allocated *unmaterialized* so that multi-gigabyte model data can
// be billed for without being stored (reads of such pages return zeros).
// FilePageDevice (storage/file_device.h) implements the same contract
// against a real file while billing the same simulated costs.

#ifndef HDOV_STORAGE_PAGE_DEVICE_H_
#define HDOV_STORAGE_PAGE_DEVICE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/disk_model.h"
#include "storage/io_stats.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace hdov {

using PageId = uint64_t;
inline constexpr PageId kInvalidPage = ~static_cast<PageId>(0);

// --- Prefetch accounting hooks (src/prefetch/, docs/prefetch.md) --------
//
// The prefetch subsystem models overlapped I/O on top of the simulated
// cost model with two device-level hooks. Both are inert until installed,
// so a device without a prefetcher bills exactly as before (the zero-drift
// contract CI enforces):
//
//  - a billing *diversion* (PrefetchSink): while installed, BillRead
//    charges the sink — its own IoStats, cost accumulator, and private
//    disk-head tracker — instead of the device's stats and shared clock,
//    and records each page run so the issuer can mark the pages resident.
//    The device's own counters, clock, and head tracker do not move: the
//    diverted cost is the I/O the prefetcher overlaps with rendering.
//
//  - a *residency gate* (PrefetchResidency): while installed, a billed
//    read whose pages are ALL resident is consumed instead of billed —
//    the pages are erased (one-shot: a prefetched page satisfies exactly
//    one read), the consumption counters tick, a kPrefetchUsed flight
//    event is recorded, and neither IoStats, the SimClock, nor the head
//    tracker move (no I/O happened; the data was already in memory).
//    Partially resident runs are billed in full and leave the residency
//    set untouched.

// Accumulator for diverted prefetch billing. One sink per device: the
// seek accounting needs a head tracker private to the device it shadows.
struct PrefetchSink {
  IoStats stats;
  double cost_millis = 0.0;  // DiskModel cost of the diverted reads.
  PageId next_sequential = kInvalidPage;
  std::vector<std::pair<PageId, uint64_t>> runs;  // (first, pages) issued.
};

// One-shot resident-page set consulted by BillRead. `used_*` are ticked
// by the device on every consumed read.
struct PrefetchResidency {
  std::unordered_set<PageId> pages;
  uint64_t used_pages = 0;
  uint64_t used_runs = 0;
};

class PageDevice {
 public:
  // `clock` may be null, in which case the device owns a private clock.
  // When several devices model one physical disk plus its bus, share one
  // clock between them so costs accumulate on a single timeline.
  explicit PageDevice(const DiskModel& model = DiskModel(),
                      SimClock* clock = nullptr);
  virtual ~PageDevice();

  PageDevice(const PageDevice&) = delete;
  PageDevice& operator=(const PageDevice&) = delete;

  const DiskModel& model() const { return model_; }
  uint32_t page_size() const { return model_.page_size; }
  virtual uint64_t page_count() const { return pages_.size(); }

  // Bytes the device would occupy on disk (all allocated pages, whether or
  // not materialized). This is the number Table 2 reports.
  uint64_t SizeBytes() const { return page_count() * page_size(); }

  // Allocates one zero page and returns its id.
  virtual PageId Allocate();

  // Allocates `count` contiguous pages without materializing contents.
  // Returns the first page id. Reads return zero bytes but are billed.
  virtual PageId AllocateUnmaterialized(uint64_t count);

  // Writes `data` (at most page_size bytes) to `page`.
  virtual Status Write(PageId page, std::string_view data);

  // Reads one page into `out` (resized to page_size).
  virtual Status Read(PageId page, std::string* out);

  // Reads `count` consecutive pages starting at `first`. Billed as one
  // seek + `count` transfers. `out` may be null when only the cost and the
  // counters matter (model data fetches).
  virtual Status ReadRun(PageId first, uint64_t count,
                         std::vector<std::string>* out);

  // Unbilled access used by persistence code: reads one page (zeros when
  // unmaterialized) without touching the clock, the counters, or the
  // sequential-access tracker. Never part of a simulated workload.
  virtual Status ReadRaw(PageId page, std::string* out) const;

  // True when `page` has materialized contents (ever written).
  virtual bool IsMaterialized(PageId page) const;

  // Unbilled restore of the full device image: each entry is either a
  // page_size string (materialized) or empty (unmaterialized). Replaces
  // any existing contents and resets the sequential-access tracker.
  virtual Status RestoreContents(std::vector<std::string> pages);

  // Unbilled export of the full device image in RestoreContents form, so a
  // device can be copied across backends:
  //   dst->RestoreContents(src.ExportContents(&pages)) style round trip.
  Status ExportContents(std::vector<std::string>* out) const;

  // Persists the device image to a real file / restores it. Materialized
  // page contents are stored verbatim; unmaterialized extents are recorded
  // by length only, so a multi-GB logical device saves as a small file.
  // Statistics and the cost model are not part of the image. Implemented
  // on top of ReadRaw/RestoreContents, so they work for any subclass.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats(); }

  // Forgets the last-accessed position, so the next read is billed a seek
  // regardless of where the previous access ended. Called when a system
  // finishes construction, so a freshly built world and a snapshot-loaded
  // one start their workloads from the same head state.
  void ResetAccessTracker() { next_sequential_ = kInvalidPage; }

  // Folds this device's IoStats counters into `registry` as read-through
  // views named `<prefix>.page_reads`, `.page_writes`, `.seeks`,
  // `.bytes_read`, `.bytes_written` — IoStats stays the storage, the
  // registry reads it live at snapshot time. The device must outlive the
  // registration (unregister the prefix before destroying the device).
  void RegisterWith(telemetry::MetricsRegistry* registry,
                    const std::string& prefix) const;

  SimClock& clock() { return *clock_; }
  const SimClock& clock() const { return *clock_; }

  // Installs / removes the prefetch hooks (see the structs above). Null
  // uninstalls. The installed object must outlive the installation; both
  // are consulted on the billing path only, never on raw reads.
  void set_prefetch_sink(PrefetchSink* sink) { prefetch_sink_ = sink; }
  void set_prefetch_residency(PrefetchResidency* residency) {
    prefetch_residency_ = residency;
  }
  PrefetchSink* prefetch_sink() const { return prefetch_sink_; }

 protected:
  // Charges `pages` transfers starting at `first`; adds a seek when the
  // access does not continue the previous one. Subclasses bill through
  // these so simulated counters stay identical across backends.
  void BillRead(PageId first, uint64_t pages);
  void BillWrite(PageId page);

  DiskModel model_;
  IoStats stats_;

 private:
  SimClock own_clock_;
  SimClock* clock_;
  // Flight-recorder code of this device's events; "device" until
  // RegisterWith names it after the registration prefix. Mutable because
  // RegisterWith is const (it only wires read-through views).
  mutable uint16_t flight_code_;
  // Materialized page contents; empty string = unmaterialized (zeros).
  std::vector<std::string> pages_;
  PageId next_sequential_ = kInvalidPage;  // Page after the last access.
  PrefetchSink* prefetch_sink_ = nullptr;            // Diversion; may be null.
  PrefetchResidency* prefetch_residency_ = nullptr;  // Gate; may be null.
};

// RAII billing diversion: installs `sink` on construction, uninstalls on
// destruction. Used around a speculative prefetch pass so every billed
// read inside lands in the sink instead of the frame's counters.
class ScopedPrefetchBilling {
 public:
  ScopedPrefetchBilling(PageDevice* device, PrefetchSink* sink)
      : device_(device) {
    device_->set_prefetch_sink(sink);
  }
  ~ScopedPrefetchBilling() { device_->set_prefetch_sink(nullptr); }

  ScopedPrefetchBilling(const ScopedPrefetchBilling&) = delete;
  ScopedPrefetchBilling& operator=(const ScopedPrefetchBilling&) = delete;

 private:
  PageDevice* device_;
};

}  // namespace hdov

#endif  // HDOV_STORAGE_PAGE_DEVICE_H_
