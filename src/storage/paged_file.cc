#include "storage/paged_file.h"

#include <vector>

namespace hdov {

Result<Extent> PagedFile::Append(std::string_view data) {
  const uint32_t page_size = device_->page_size();
  Extent extent;
  extent.byte_length = data.size();
  extent.page_count = (data.size() + page_size - 1) / page_size;
  if (extent.page_count == 0) {
    extent.page_count = 1;  // Zero-length records still occupy one page.
  }
  extent.first_page = device_->AllocateUnmaterialized(extent.page_count);
  for (uint64_t i = 0; i < extent.page_count; ++i) {
    size_t offset = std::min<size_t>(i * page_size, data.size());
    size_t len = std::min<size_t>(page_size, data.size() - offset);
    HDOV_RETURN_IF_ERROR(
        device_->Write(extent.first_page + i, data.substr(offset, len)));
  }
  return extent;
}

Result<std::string> PagedFile::ReadExtent(const Extent& extent) const {
  if (!extent.IsValid()) {
    return Status::InvalidArgument("paged file: invalid extent");
  }
  std::vector<std::string> pages;
  HDOV_RETURN_IF_ERROR(
      device_->ReadRun(extent.first_page, extent.page_count, &pages));
  std::string data;
  data.reserve(extent.byte_length);
  for (const std::string& page : pages) {
    data += page;
  }
  data.resize(extent.byte_length);
  return data;
}

Result<std::string> PagedFile::ReadRange(const Extent& extent,
                                         uint64_t offset,
                                         uint64_t length) const {
  if (!extent.IsValid()) {
    return Status::InvalidArgument("paged file: invalid extent");
  }
  if (offset + length > extent.byte_length) {
    return Status::OutOfRange("paged file: range beyond extent");
  }
  if (length == 0) {
    return std::string();
  }
  const uint32_t page_size = device_->page_size();
  const uint64_t first = offset / page_size;
  const uint64_t last = (offset + length - 1) / page_size;
  std::vector<std::string> pages;
  HDOV_RETURN_IF_ERROR(device_->ReadRun(extent.first_page + first,
                                        last - first + 1, &pages));
  std::string data;
  data.reserve((last - first + 1) * page_size);
  for (const std::string& page : pages) {
    data += page;
  }
  return data.substr(offset - first * page_size, length);
}

}  // namespace hdov
