#include "storage/file_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace hdov {

namespace {

constexpr uint32_t kFileDeviceMagic = 0x66644856;  // Bytes "VHdf" on disk.
constexpr uint32_t kFileDeviceVersion = 1;
// magic, version, page_size, reserved, page_count, materialized,
// table_offset, table_length, table_crc, header_crc.
constexpr size_t kHeaderBytes = 4 * 4 + 4 * 8 + 4 + 4;
constexpr size_t kTableEntryBytes = 1 + 8 + 4;

uint64_t RoundUpToPage(uint64_t bytes, uint32_t page_size) {
  return (bytes + page_size - 1) / page_size * page_size;
}

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

// ---------------------------------------------------------------------------
// FileHandle

Result<std::shared_ptr<FileHandle>> FileHandle::Open(const std::string& path,
                                                     Mode mode) {
  int flags = 0;
  switch (mode) {
    case Mode::kReadOnly:
      flags = O_RDONLY;
      break;
    case Mode::kReadWrite:
      flags = O_RDWR;
      break;
    case Mode::kCreateTruncate:
      flags = O_RDWR | O_CREAT | O_TRUNC;
      break;
  }
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IoError(Errno("file handle: cannot open", path));
  }
  return std::shared_ptr<FileHandle>(
      new FileHandle(fd, path, mode != Mode::kReadOnly));
}

FileHandle::~FileHandle() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status FileHandle::PreadExact(uint64_t offset, void* buf, size_t n) const {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    ssize_t got = ::pread(fd_, p, n, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(Errno("file handle: pread", path_));
    }
    if (got == 0) {
      return Status::Corruption("file handle: short read from " + path_);
    }
    p += got;
    offset += static_cast<uint64_t>(got);
    n -= static_cast<size_t>(got);
  }
  return Status::OK();
}

Status FileHandle::PwriteExact(uint64_t offset, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    ssize_t put = ::pwrite(fd_, p, n, static_cast<off_t>(offset));
    if (put < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoError(Errno("file handle: pwrite", path_));
    }
    p += put;
    offset += static_cast<uint64_t>(put);
    n -= static_cast<size_t>(put);
  }
  return Status::OK();
}

Status FileHandle::Fsync() {
  if (::fsync(fd_) != 0) {
    return Status::IoError(Errno("file handle: fsync", path_));
  }
  return Status::OK();
}

Result<uint64_t> FileHandle::Size() const {
  off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    return Status::IoError(Errno("file handle: lseek", path_));
  }
  return static_cast<uint64_t>(end);
}

// ---------------------------------------------------------------------------
// PersistStats

void PersistStats::RegisterWith(telemetry::MetricsRegistry* registry,
                                const std::string& prefix) const {
  const PersistStats* stats = this;
  const auto view = [&](const char* name, auto field) {
    registry->RegisterView(prefix + name, [stats, field] {
      return static_cast<double>(stats->*field);
    });
  };
  view(".bytes_written", &PersistStats::bytes_written);
  view(".bytes_read", &PersistStats::bytes_read);
  view(".fsyncs", &PersistStats::fsyncs);
  view(".checksum_verifications", &PersistStats::checksum_verifications);
  view(".checksum_failures", &PersistStats::checksum_failures);
  view(".load_millis", &PersistStats::load_millis);
}

// ---------------------------------------------------------------------------
// FilePageDevice

FilePageDevice::FilePageDevice(std::shared_ptr<FileHandle> file,
                               uint64_t region_offset, const DiskModel& model,
                               SimClock* clock, PersistStats* persist)
    : PageDevice(model, clock),
      file_(std::move(file)),
      region_offset_(region_offset),
      persist_(persist) {}

Result<std::unique_ptr<FilePageDevice>> FilePageDevice::Create(
    const std::string& path, const DiskModel& model, SimClock* clock,
    PersistStats* persist) {
  HDOV_ASSIGN_OR_RETURN(auto file,
                        FileHandle::Open(path, FileHandle::Mode::kCreateTruncate));
  return CreateAt(std::move(file), 0, model, clock, persist);
}

Result<std::unique_ptr<FilePageDevice>> FilePageDevice::Open(
    const std::string& path, const DiskModel& model, SimClock* clock,
    PersistStats* persist) {
  HDOV_ASSIGN_OR_RETURN(auto file,
                        FileHandle::Open(path, FileHandle::Mode::kReadOnly));
  return OpenAt(std::move(file), 0, model, clock, persist);
}

Result<std::unique_ptr<FilePageDevice>> FilePageDevice::CreateAt(
    std::shared_ptr<FileHandle> file, uint64_t region_offset,
    const DiskModel& model, SimClock* clock, PersistStats* persist) {
  if (!file->writable()) {
    return Status::InvalidArgument(
        "file device: create needs a writable handle");
  }
  return std::unique_ptr<FilePageDevice>(new FilePageDevice(
      std::move(file), region_offset, model, clock, persist));
}

Result<std::unique_ptr<FilePageDevice>> FilePageDevice::OpenAt(
    std::shared_ptr<FileHandle> file, uint64_t region_offset,
    const DiskModel& model, SimClock* clock, PersistStats* persist) {
  std::unique_ptr<FilePageDevice> device(new FilePageDevice(
      std::move(file), region_offset, model, clock, persist));
  HDOV_RETURN_IF_ERROR(device->LoadExisting());
  return device;
}

Status FilePageDevice::LoadExisting() {
  std::string header(page_size(), '\0');
  HDOV_RETURN_IF_ERROR(
      file_->PreadExact(region_offset_, header.data(), header.size()));
  if (persist_ != nullptr) {
    persist_->bytes_read += header.size();
  }
  Decoder decoder(header);
  uint32_t magic = 0, version = 0, file_page_size = 0, reserved = 0;
  uint64_t page_count = 0, materialized = 0, table_offset = 0,
           table_length = 0;
  uint32_t table_crc = 0, header_crc = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&magic));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&version));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&file_page_size));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&reserved));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&page_count));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&materialized));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&table_offset));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&table_length));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&table_crc));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&header_crc));
  if (magic != kFileDeviceMagic) {
    return Status::Corruption("file device: bad magic in " + file_->path());
  }
  if (version != kFileDeviceVersion) {
    return Status::Corruption("file device: unsupported version in " +
                              file_->path());
  }
  if (persist_ != nullptr) {
    ++persist_->checksum_verifications;
  }
  if (header_crc !=
      Crc32c(std::string_view(header.data(), kHeaderBytes - 4))) {
    if (persist_ != nullptr) {
      ++persist_->checksum_failures;
    }
    return Status::Corruption("file device: header checksum mismatch in " +
                              file_->path());
  }
  if (file_page_size != page_size()) {
    return Status::InvalidArgument(
        "file device: file page size does not match the device model");
  }
  if (table_length != page_count * kTableEntryBytes) {
    return Status::Corruption("file device: inconsistent table length in " +
                              file_->path());
  }
  std::string table(table_length, '\0');
  HDOV_RETURN_IF_ERROR(file_->PreadExact(region_offset_ + table_offset,
                                         table.data(), table.size()));
  if (persist_ != nullptr) {
    persist_->bytes_read += table.size();
    ++persist_->checksum_verifications;
  }
  if (table_crc != Crc32c(table)) {
    if (persist_ != nullptr) {
      ++persist_->checksum_failures;
    }
    return Status::Corruption("file device: page table checksum mismatch in " +
                              file_->path());
  }
  std::vector<PageEntry> entries(page_count);
  Decoder table_decoder(table);
  for (uint64_t i = 0; i < page_count; ++i) {
    uint8_t state = static_cast<uint8_t>(table[i * kTableEntryBytes]);
    HDOV_RETURN_IF_ERROR(table_decoder.Skip(1));
    PageEntry& entry = entries[i];
    HDOV_RETURN_IF_ERROR(table_decoder.DecodeFixed64(&entry.slot));
    HDOV_RETURN_IF_ERROR(table_decoder.DecodeFixed32(&entry.crc));
    entry.materialized = state;
    if (state != 0 && entry.slot >= materialized) {
      return Status::Corruption("file device: slot index out of range in " +
                                file_->path());
    }
  }
  table_ = std::move(entries);
  materialized_count_ = materialized;
  region_length_ = RoundUpToPage(table_offset + table_length, page_size());
  return Status::OK();
}

PageId FilePageDevice::Allocate() {
  PageId id = table_.size();
  PageEntry entry;
  entry.materialized = 1;
  entry.slot = materialized_count_++;
  // Materialize the zero page on disk so later reads (and CRC checks) see
  // exactly what the in-memory device would serve.
  std::string zeros(page_size(), '\0');
  entry.crc = Crc32c(zeros);
  table_.push_back(entry);
  Status status =
      file_->PwriteExact(SlotFileOffset(entry.slot), zeros.data(), zeros.size());
  (void)status;  // Allocation cannot report; Write/Sync surface I/O errors.
  if (persist_ != nullptr) {
    persist_->bytes_written += zeros.size();
  }
  return id;
}

PageId FilePageDevice::AllocateUnmaterialized(uint64_t count) {
  PageId first = table_.size();
  table_.resize(table_.size() + count);
  return first;
}

Status FilePageDevice::WriteSlot(PageId page, std::string_view data) {
  PageEntry& entry = table_[page];
  if (entry.materialized == 0) {
    entry.materialized = 1;
    entry.slot = materialized_count_++;
  }
  std::string padded(page_size(), '\0');
  padded.replace(0, data.size(), data);
  entry.crc = Crc32c(padded);
  HDOV_RETURN_IF_ERROR(
      file_->PwriteExact(SlotFileOffset(entry.slot), padded.data(),
                         padded.size()));
  if (persist_ != nullptr) {
    persist_->bytes_written += padded.size();
  }
  return Status::OK();
}

Status FilePageDevice::Write(PageId page, std::string_view data) {
  if (page >= table_.size()) {
    return Status::OutOfRange("file device: write past end");
  }
  if (data.size() > page_size()) {
    return Status::InvalidArgument("file device: record exceeds page size");
  }
  HDOV_RETURN_IF_ERROR(WriteSlot(page, data));
  BillWrite(page);
  return Status::OK();
}

Status FilePageDevice::FetchPage(PageId page, std::string* out) const {
  const PageEntry& entry = table_[page];
  // Per-call buffer: this path must stay safe for concurrent readers, so
  // there is deliberately no shared scratch space. `out` is only assigned
  // after the checksum verifies, preserving untouched-output-on-error.
  std::string buffer(page_size(), '\0');
  HDOV_RETURN_IF_ERROR(file_->PreadExact(SlotFileOffset(entry.slot),
                                         buffer.data(), buffer.size()));
  if (persist_ != nullptr) {
    persist_->bytes_read += buffer.size();
    ++persist_->checksum_verifications;
  }
  if (Crc32c(buffer) != entry.crc) {
    if (persist_ != nullptr) {
      ++persist_->checksum_failures;
    }
    return Status::Corruption("file device: page checksum mismatch in " +
                              file_->path());
  }
  if (out != nullptr) {
    *out = std::move(buffer);
  }
  return Status::OK();
}

Status FilePageDevice::Read(PageId page, std::string* out) {
  if (page >= table_.size()) {
    return Status::OutOfRange("file device: read past end");
  }
  BillRead(page, 1);
  if (table_[page].materialized == 0) {
    if (out != nullptr) {
      out->assign(page_size(), '\0');
    }
    return Status::OK();
  }
  return FetchPage(page, out);
}

Status FilePageDevice::ReadRun(PageId first, uint64_t count,
                               std::vector<std::string>* out) {
  if (count == 0) {
    return Status::OK();
  }
  if (first + count > table_.size()) {
    return Status::OutOfRange("file device: run read past end");
  }
  BillRead(first, count);
  if (out == nullptr) {
    return Status::OK();
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (table_[first + i].materialized == 0) {
      out->emplace_back(page_size(), '\0');
    } else {
      out->emplace_back();
      HDOV_RETURN_IF_ERROR(FetchPage(first + i, &out->back()));
    }
  }
  return Status::OK();
}

Status FilePageDevice::ReadRaw(PageId page, std::string* out) const {
  if (page >= table_.size()) {
    return Status::OutOfRange("file device: raw read past end");
  }
  if (table_[page].materialized == 0) {
    out->assign(page_size(), '\0');
    return Status::OK();
  }
  return FetchPage(page, out);
}

bool FilePageDevice::IsMaterialized(PageId page) const {
  return page < table_.size() && table_[page].materialized != 0;
}

Status FilePageDevice::RestoreContents(std::vector<std::string> pages) {
  table_.clear();
  materialized_count_ = 0;
  table_.resize(pages.size());
  for (PageId id = 0; id < pages.size(); ++id) {
    const std::string& page = pages[id];
    if (page.empty()) {
      continue;  // Unmaterialized.
    }
    if (page.size() != page_size()) {
      return Status::InvalidArgument(
          "file device: restored page has wrong size");
    }
    HDOV_RETURN_IF_ERROR(WriteSlot(id, page));
  }
  return Status::OK();
}

Status FilePageDevice::Sync() {
  if (!file_->writable()) {
    return Status::FailedPrecondition("file device: handle is read-only");
  }
  std::string table;
  table.reserve(table_.size() * kTableEntryBytes);
  for (const PageEntry& entry : table_) {
    table.push_back(static_cast<char>(entry.materialized));
    EncodeFixed64(&table, entry.slot);
    EncodeFixed32(&table, entry.crc);
  }
  const uint64_t table_offset = page_size() * (1 + materialized_count_);
  HDOV_RETURN_IF_ERROR(
      file_->PwriteExact(region_offset_ + table_offset, table.data(),
                         table.size()));

  std::string header;
  EncodeFixed32(&header, kFileDeviceMagic);
  EncodeFixed32(&header, kFileDeviceVersion);
  EncodeFixed32(&header, page_size());
  EncodeFixed32(&header, 0);  // Reserved.
  EncodeFixed64(&header, table_.size());
  EncodeFixed64(&header, materialized_count_);
  EncodeFixed64(&header, table_offset);
  EncodeFixed64(&header, table.size());
  EncodeFixed32(&header, Crc32c(table));
  EncodeFixed32(&header, Crc32c(header));
  header.resize(page_size(), '\0');
  HDOV_RETURN_IF_ERROR(
      file_->PwriteExact(region_offset_, header.data(), header.size()));
  HDOV_RETURN_IF_ERROR(file_->Fsync());
  if (persist_ != nullptr) {
    persist_->bytes_written += table.size() + header.size();
    ++persist_->fsyncs;
  }
  region_length_ = RoundUpToPage(table_offset + table.size(), page_size());
  return Status::OK();
}

}  // namespace hdov
