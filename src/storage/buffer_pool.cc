#include "storage/buffer_pool.h"

namespace hdov {

Result<const std::string*> BufferPool::Get(PageId page) {
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    ++stats_.hits;
    lru_.erase(it->second->lru_it);
    lru_.push_front(page);
    it->second->lru_it = lru_.begin();
    return static_cast<const std::string*>(&it->second->data);
  }

  ++stats_.misses;
  auto entry = std::make_unique<Entry>();
  HDOV_RETURN_IF_ERROR(device_->Read(page, &entry->data));

  while (entries_.size() >= capacity_) {
    PageId victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(page);
  entry->lru_it = lru_.begin();
  const std::string* data = &entry->data;
  entries_.emplace(page, std::move(entry));
  return data;
}

void BufferPool::RegisterWith(telemetry::MetricsRegistry* registry,
                              const std::string& prefix) const {
  const BufferPoolStats* stats = &stats_;
  registry->RegisterView(prefix + ".hits", [stats] {
    return static_cast<double>(stats->hits);
  });
  registry->RegisterView(prefix + ".misses", [stats] {
    return static_cast<double>(stats->misses);
  });
  registry->RegisterView(prefix + ".evictions", [stats] {
    return static_cast<double>(stats->evictions);
  });
  registry->RegisterView(prefix + ".hit_rate",
                         [stats] { return stats->HitRate(); });
}

void BufferPool::Clear() {
  entries_.clear();
  lru_.clear();
}

}  // namespace hdov
