#include "storage/buffer_pool.h"

namespace hdov {

Result<BufferPool::PageRef> BufferPool::Get(PageId page) {
  auto it = entries_.find(page);
  if (it != entries_.end()) {
    ++stats_.hits;
    telemetry::GlobalFlightRecorder().Record(
        telemetry::FlightEventType::kPoolHit,
        flight_code_.load(std::memory_order_relaxed), page, 0);
    lru_.erase(it->second->lru_it);
    lru_.push_front(page);
    it->second->lru_it = lru_.begin();
    ++it->second->pins;
    return PageRef(this, it->second.get());
  }

  ++stats_.misses;
  auto entry = std::make_unique<Entry>();
  // The miss event is recorded after the fill so it can carry the fill's
  // wall time (b, in ns) — the number a slow-frame capture needs to tell
  // a cheap miss from a stalled one.
  const uint64_t fill_start_ns = telemetry::FlightNowNs();
  HDOV_RETURN_IF_ERROR(device_->Read(page, &entry->data));
  telemetry::GlobalFlightRecorder().Record(
      telemetry::FlightEventType::kPoolMiss,
      flight_code_.load(std::memory_order_relaxed), page,
      telemetry::FlightNowNs() - fill_start_ns);

  lru_.push_front(page);
  entry->lru_it = lru_.begin();
  entry->pins = 1;  // The ref handed back below.
  Entry* raw = entry.get();
  entries_.emplace(page, std::move(entry));
  // The new entry is pinned, so trimming can only shed older unpinned
  // entries; afterwards at most `capacity_` unpinned entries remain.
  TrimToCapacity();
  return PageRef(this, raw);
}

void BufferPool::TrimToCapacity() {
  auto it = lru_.end();
  while (entries_.size() > capacity_ && it != lru_.begin()) {
    --it;
    auto found = entries_.find(*it);
    assert(found != entries_.end());
    if (found->second->pins > 0) {
      continue;  // Pinned pages are un-evictable (pin-through).
    }
    it = lru_.erase(it);
    entries_.erase(found);
    ++stats_.evictions;
  }
}

void BufferPool::Unpin(Entry* entry) {
  assert(entry->pins > 0);
  --entry->pins;
  if (entry->pins == 0 && entries_.size() > capacity_) {
    TrimToCapacity();
  }
}

void BufferPool::RegisterWith(telemetry::MetricsRegistry* registry,
                              const std::string& prefix) {
  UnregisterViews();
  flight_code_.store(telemetry::FlightInternName(prefix),
                     std::memory_order_relaxed);
  view_registry_ = registry;
  view_prefix_ = prefix;
  const BufferPoolStats* stats = &stats_;
  registry->RegisterView(prefix + ".hits", [stats] {
    return static_cast<double>(stats->hits);
  });
  registry->RegisterView(prefix + ".misses", [stats] {
    return static_cast<double>(stats->misses);
  });
  registry->RegisterView(prefix + ".evictions", [stats] {
    return static_cast<double>(stats->evictions);
  });
  registry->RegisterView(prefix + ".hit_rate",
                         [stats] { return stats->HitRate(); });
}

void BufferPool::UnregisterViews() {
  if (view_registry_ != nullptr) {
    view_registry_->UnregisterPrefix(view_prefix_ + ".");
    view_registry_ = nullptr;
    view_prefix_.clear();
  }
}

void BufferPool::Clear() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second->pins > 0) {
      ++it;  // A live PageRef keeps its page; see header contract.
    } else {
      lru_.erase(it->second->lru_it);
      it = entries_.erase(it);
    }
  }
  ResetStats();
}

}  // namespace hdov
