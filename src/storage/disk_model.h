// DiskModel: the cost model of the simulated disk. Chosen to resemble the
// early-2000s IDE/SCSI disks of the paper's testbed: random access is
// dominated by seek + rotational latency, sequential scans by transfer
// bandwidth. The gap between the two is what separates the clustered
// (vertical / indexed-vertical) V-page layouts from the scattered
// horizontal layout in the experiments.

#ifndef HDOV_STORAGE_DISK_MODEL_H_
#define HDOV_STORAGE_DISK_MODEL_H_

#include <cstdint>

namespace hdov {

struct DiskModel {
  uint32_t page_size = 4096;

  // Average seek + rotational latency per random access.
  double seek_ms = 8.0;

  // Per-page transfer time. 4 KiB at ~40 MB/s sustained = ~0.1 ms.
  double transfer_ms_per_page = 0.1;

  double ReadCostMillis(uint64_t pages, uint64_t seeks) const {
    return static_cast<double>(seeks) * seek_ms +
           static_cast<double>(pages) * transfer_ms_per_page;
  }
};

}  // namespace hdov

#endif  // HDOV_STORAGE_DISK_MODEL_H_
