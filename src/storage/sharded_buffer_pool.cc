#include "storage/sharded_buffer_pool.h"

#include <algorithm>

namespace hdov {

ShardedBufferPool::ShardedBufferPool(const PageDevice* base,
                                     const ShardedPoolOptions& options)
    : base_(base),
      capacity_(options.capacity_pages),
      flight_code_(telemetry::FlightInternName(options.flight_name)),
      shards_(std::max<size_t>(1, options.shards)) {
  per_shard_capacity_ =
      (capacity_ + shards_.size() - 1) / shards_.size();  // Ceil.
}

Result<std::shared_ptr<const std::string>> ShardedBufferPool::Get(
    PageId page) {
  Shard& shard = ShardFor(page);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(page);
    if (it != shard.entries.end()) {
      ++shard.stats.hits;
      telemetry::GlobalFlightRecorder().Record(
          telemetry::FlightEventType::kPoolHit, flight_code_, page, 0);
      shard.lru.erase(it->second.lru_it);
      shard.lru.push_front(page);
      it->second.lru_it = shard.lru.begin();
      return it->second.data;
    }
    ++shard.stats.misses;
  }

  // Device read outside the lock: concurrent misses on one page may each
  // read it (the page is immutable, so all copies are identical); the
  // insert below re-checks so the shard keeps a single entry. The miss
  // event is recorded after the fill so b carries the fill wall-ns.
  auto data = std::make_shared<std::string>();
  const uint64_t fill_start_ns = telemetry::FlightNowNs();
  HDOV_RETURN_IF_ERROR(base_->ReadRaw(page, data.get()));
  telemetry::GlobalFlightRecorder().Record(
      telemetry::FlightEventType::kPoolMiss, flight_code_, page,
      telemetry::FlightNowNs() - fill_start_ns);
  std::shared_ptr<const std::string> frozen = std::move(data);

  if (capacity_ == 0) {
    return frozen;  // Pure read-through.
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(page);
  if (it != shard.entries.end()) {
    // A racing miss inserted it first; serve the cached copy and keep the
    // LRU position it already earned.
    return it->second.data;
  }
  shard.lru.push_front(page);
  shard.entries.emplace(page, Entry{frozen, shard.lru.begin()});
  while (shard.entries.size() > per_shard_capacity_) {
    const PageId victim = shard.lru.back();
    shard.lru.pop_back();
    shard.entries.erase(victim);
    ++shard.stats.evictions;
  }
  return frozen;
}

size_t ShardedBufferPool::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

BufferPoolStats ShardedBufferPool::TotalStats() const {
  BufferPoolStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.evictions += shard.stats.evictions;
  }
  return total;
}

}  // namespace hdov
