// ShardedBufferPool: a thread-safe read-only page cache in front of a
// PageDevice, for serving many concurrent sessions from one file-backed
// world (src/server/). The page space is hash-partitioned into shards;
// each shard has its own mutex, LRU list and hit/miss/eviction counters,
// so hot pages in different shards never contend on one lock.
//
// Differences from BufferPool (buffer_pool.h), which stays the
// single-threaded pool in front of a session's billed devices:
//   - Get returns shared_ptr<const string>: the shared_ptr IS the pin.
//     Eviction only drops the pool's reference; readers holding the page
//     keep it alive, so there is no unpin bookkeeping across threads.
//   - Reads go through PageDevice::ReadRaw, the UNBILLED const path.
//     The pool never touches a SimClock or IoStats: simulated billing is
//     per-session by design (each session's devices bill their own
//     counters), the shared pool only reduces *real* I/O.
//   - The device miss read runs outside the shard lock, so a slow pread
//     only blocks readers of the same page's shard, briefly, twice.
//
// Locking order: a shard mutex is a leaf lock — no other lock is ever
// taken while one is held, and ReadRaw is lock-free on the device side.

#ifndef HDOV_STORAGE_SHARDED_BUFFER_POOL_H_
#define HDOV_STORAGE_SHARDED_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page_device.h"

namespace hdov {

struct ShardedPoolOptions {
  // Total cached pages across all shards; 0 = pure read-through (every
  // Get is a miss and nothing is retained).
  size_t capacity_pages = 1024;
  size_t shards = 8;
  // Flight-recorder label for this pool's hit/miss events.
  std::string flight_name = "server.pool";
};

class ShardedBufferPool {
 public:
  // `base` must outlive the pool and its const read path (ReadRaw /
  // IsMaterialized / page_count) must be safe for concurrent callers —
  // FilePageDevice opened read-only qualifies.
  ShardedBufferPool(const PageDevice* base, const ShardedPoolOptions& options);

  ShardedBufferPool(const ShardedBufferPool&) = delete;
  ShardedBufferPool& operator=(const ShardedBufferPool&) = delete;

  // Returns the page contents (zeros when unmaterialized), reading
  // through the base device on a miss. Thread-safe. The returned pages
  // are immutable and stay valid for the life of the shared_ptr.
  Result<std::shared_ptr<const std::string>> Get(PageId page);

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }

  // Cached entries right now (sums the shards; approximate under
  // concurrent traffic).
  size_t size() const;

  // Hit/miss/eviction totals across shards. A consistent snapshot per
  // shard; the cross-shard sum is approximate under concurrent traffic.
  BufferPoolStats TotalStats() const;

  const PageDevice* base() const { return base_; }

 private:
  struct Entry {
    std::shared_ptr<const std::string> data;
    std::list<PageId>::iterator lru_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<PageId> lru;  // Front = most recently used.
    std::unordered_map<PageId, Entry> entries;
    BufferPoolStats stats;
  };

  Shard& ShardFor(PageId page) {
    return shards_[static_cast<size_t>(page) % shards_.size()];
  }

  const PageDevice* base_;
  size_t capacity_;
  size_t per_shard_capacity_;
  uint16_t flight_code_;
  std::vector<Shard> shards_;
};

}  // namespace hdov

#endif  // HDOV_STORAGE_SHARDED_BUFFER_POOL_H_
