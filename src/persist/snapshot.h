// Versioned snapshot container: one file holding everything a built HDoV
// world needs to come back — named sections for the scene, the cell grid,
// the visibility table, the tree manifest, store/model metadata, and the
// four logical page devices (tree nodes, V-page store, V-page index
// segments, model data) embedded as FilePageDevice regions.
//
// File layout (all offsets page-aligned):
//
//   [0, page_size)    superblock: magic "HDOVSNAP", version, page size,
//                     section count, catalog location + CRC32C, own CRC
//   sections...       blobs (CRC32C in the catalog) and device regions
//                     (self-checksummed, see storage/file_device.h)
//   catalog           name -> (kind, offset, length, crc) table
//
// Commit protocol: everything is written to `<path>.tmp`, fsync'ed, then
// renamed over `<path>` and the parent directory fsync'ed — a crash leaves
// either the old snapshot or the new one, never a torn file.

#ifndef HDOV_PERSIST_SNAPSHOT_H_
#define HDOV_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/file_device.h"
#include "storage/page_device.h"

namespace hdov {

inline constexpr uint32_t kSnapshotVersion = 1;

enum class SectionKind : uint8_t {
  kBlob = 0,    // Opaque bytes, CRC32C in the catalog entry.
  kDevice = 1,  // FilePageDevice region (self-describing, per-page CRCs).
};

class SnapshotWriter {
 public:
  // Starts a snapshot at `<path>.tmp`. Nothing is visible at `path` until
  // Commit() succeeds. `stats` (optional) accumulates persist.* counters.
  static Result<std::unique_ptr<SnapshotWriter>> Create(
      const std::string& path, uint32_t page_size = DiskModel().page_size,
      PersistStats* stats = nullptr);

  // Best-effort removal of the temp file when destroyed uncommitted.
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  // Appends a named blob section.
  Status AddBlob(const std::string& name, std::string_view bytes);

  // Appends a named device section holding a full page-for-page image of
  // `device` (unmaterialized extents are recorded by state only, so a
  // mostly-unmaterialized multi-GB model device stays small on disk).
  Status AddDevice(const std::string& name, const PageDevice& device);

  // Writes catalog + superblock, fsyncs, renames the temp file over
  // `path`, and fsyncs the parent directory.
  Status Commit();

  const std::string& path() const { return final_path_; }

 private:
  struct Entry {
    std::string name;
    SectionKind kind = SectionKind::kBlob;
    uint64_t offset = 0;
    uint64_t length = 0;
    uint32_t crc = 0;
  };

  SnapshotWriter(std::string final_path, std::string temp_path,
                 std::shared_ptr<FileHandle> file, uint32_t page_size,
                 PersistStats* stats);

  Status CheckName(const std::string& name) const;
  uint64_t AlignedEnd() const;

  std::string final_path_;
  std::string temp_path_;
  std::shared_ptr<FileHandle> file_;
  uint32_t page_size_;
  PersistStats* stats_;  // May be null.
  uint64_t next_offset_;
  std::vector<Entry> entries_;
  bool committed_ = false;
};

class SnapshotLoader {
 public:
  // Opens a committed snapshot read-only, verifying superblock and catalog
  // checksums up front. Section data is verified as it is read.
  static Result<std::unique_ptr<SnapshotLoader>> Open(
      const std::string& path, PersistStats* stats = nullptr);

  uint32_t page_size() const { return page_size_; }
  const std::string& path() const { return path_; }

  bool Contains(const std::string& name) const {
    return sections_.count(name) != 0;
  }
  std::vector<std::string> SectionNames() const;

  // Reads a blob section, verifying its CRC32C.
  Result<std::string> ReadBlob(const std::string& name) const;

  // Restores a device section into `dst` (unbilled; page CRCs verified).
  // `dst` must use the page size the section was written with.
  Status RestoreDevice(const std::string& name, PageDevice* dst) const;

  // Serves a device section in place from the snapshot file: reads come
  // from pread + CRC check while billing the same simulated costs as an
  // in-memory device.
  Result<std::unique_ptr<FilePageDevice>> OpenDevice(const std::string& name,
                                                     const DiskModel& model,
                                                     SimClock* clock) const;

 private:
  struct Entry {
    SectionKind kind = SectionKind::kBlob;
    uint64_t offset = 0;
    uint64_t length = 0;
    uint32_t crc = 0;
  };

  SnapshotLoader(std::string path, std::shared_ptr<FileHandle> file,
                 PersistStats* stats)
      : path_(std::move(path)), file_(std::move(file)), stats_(stats) {}

  Result<const Entry*> Find(const std::string& name, SectionKind kind) const;

  std::string path_;
  std::shared_ptr<FileHandle> file_;
  PersistStats* stats_;  // May be null.
  uint32_t page_size_ = 0;
  std::map<std::string, Entry> sections_;
};

}  // namespace hdov

#endif  // HDOV_PERSIST_SNAPSHOT_H_
