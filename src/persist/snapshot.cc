#include "persist/snapshot.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "common/coding.h"
#include "common/crc32c.h"

namespace hdov {

namespace {

constexpr uint64_t kSnapshotMagic = 0x50414E53564F4448ull;  // "HDOVSNAP".
// magic, version, page_size, section_count, reserved, catalog_offset,
// catalog_length, catalog_crc, superblock_crc.
constexpr size_t kSuperblockBytes = 8 + 4 + 4 + 4 + 4 + 8 + 8 + 4 + 4;

uint64_t RoundUpTo(uint64_t value, uint64_t align) {
  return (value + align - 1) / align * align;
}

// Wall-clock timer feeding PersistStats::load_millis.
class LoadTimer {
 public:
  explicit LoadTimer(PersistStats* stats)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {}
  ~LoadTimer() {
    if (stats_ != nullptr) {
      stats_->load_millis +=
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start_)
              .count();
    }
  }

 private:
  PersistStats* stats_;
  std::chrono::steady_clock::time_point start_;
};

Status FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  HDOV_ASSIGN_OR_RETURN(auto handle,
                        FileHandle::Open(dir, FileHandle::Mode::kReadOnly));
  return handle->Fsync();
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotWriter

SnapshotWriter::SnapshotWriter(std::string final_path, std::string temp_path,
                               std::shared_ptr<FileHandle> file,
                               uint32_t page_size, PersistStats* stats)
    : final_path_(std::move(final_path)),
      temp_path_(std::move(temp_path)),
      file_(std::move(file)),
      page_size_(page_size),
      stats_(stats),
      next_offset_(page_size) {}

SnapshotWriter::~SnapshotWriter() {
  if (!committed_) {
    ::unlink(temp_path_.c_str());
  }
}

Result<std::unique_ptr<SnapshotWriter>> SnapshotWriter::Create(
    const std::string& path, uint32_t page_size, PersistStats* stats) {
  if (page_size < kSuperblockBytes) {
    return Status::InvalidArgument("snapshot: page size too small");
  }
  std::string temp = path + ".tmp";
  HDOV_ASSIGN_OR_RETURN(
      auto file, FileHandle::Open(temp, FileHandle::Mode::kCreateTruncate));
  return std::unique_ptr<SnapshotWriter>(new SnapshotWriter(
      path, std::move(temp), std::move(file), page_size, stats));
}

Status SnapshotWriter::CheckName(const std::string& name) const {
  if (name.empty()) {
    return Status::InvalidArgument("snapshot: empty section name");
  }
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return Status::AlreadyExists("snapshot: duplicate section " + name);
    }
  }
  return Status::OK();
}

Status SnapshotWriter::AddBlob(const std::string& name,
                               std::string_view bytes) {
  HDOV_RETURN_IF_ERROR(CheckName(name));
  Entry entry;
  entry.name = name;
  entry.kind = SectionKind::kBlob;
  entry.offset = next_offset_;
  entry.length = bytes.size();
  entry.crc = Crc32c(bytes);
  HDOV_RETURN_IF_ERROR(
      file_->PwriteExact(entry.offset, bytes.data(), bytes.size()));
  if (stats_ != nullptr) {
    stats_->bytes_written += bytes.size();
  }
  next_offset_ = RoundUpTo(entry.offset + entry.length, page_size_);
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status SnapshotWriter::AddDevice(const std::string& name,
                                 const PageDevice& device) {
  HDOV_RETURN_IF_ERROR(CheckName(name));
  if (device.page_size() != page_size_) {
    return Status::InvalidArgument(
        "snapshot: device page size differs from snapshot page size");
  }
  Entry entry;
  entry.name = name;
  entry.kind = SectionKind::kDevice;
  entry.offset = next_offset_;
  HDOV_ASSIGN_OR_RETURN(
      auto region, FilePageDevice::CreateAt(file_, entry.offset,
                                            device.model(), nullptr, stats_));
  std::vector<std::string> pages;
  HDOV_RETURN_IF_ERROR(device.ExportContents(&pages));
  HDOV_RETURN_IF_ERROR(region->RestoreContents(std::move(pages)));
  HDOV_RETURN_IF_ERROR(region->Sync());
  entry.length = region->region_length();
  next_offset_ = RoundUpTo(entry.offset + entry.length, page_size_);
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status SnapshotWriter::Commit() {
  if (committed_) {
    return Status::FailedPrecondition("snapshot: already committed");
  }
  std::string catalog;
  EncodeFixed32(&catalog, static_cast<uint32_t>(entries_.size()));
  for (const Entry& entry : entries_) {
    EncodeFixed32(&catalog, static_cast<uint32_t>(entry.name.size()));
    catalog.append(entry.name);
    catalog.push_back(static_cast<char>(entry.kind));
    EncodeFixed64(&catalog, entry.offset);
    EncodeFixed64(&catalog, entry.length);
    EncodeFixed32(&catalog, entry.crc);
  }
  const uint64_t catalog_offset = next_offset_;
  HDOV_RETURN_IF_ERROR(
      file_->PwriteExact(catalog_offset, catalog.data(), catalog.size()));

  std::string superblock;
  EncodeFixed64(&superblock, kSnapshotMagic);
  EncodeFixed32(&superblock, kSnapshotVersion);
  EncodeFixed32(&superblock, page_size_);
  EncodeFixed32(&superblock, static_cast<uint32_t>(entries_.size()));
  EncodeFixed32(&superblock, 0);  // Reserved.
  EncodeFixed64(&superblock, catalog_offset);
  EncodeFixed64(&superblock, catalog.size());
  EncodeFixed32(&superblock, Crc32c(catalog));
  EncodeFixed32(&superblock, Crc32c(superblock));
  superblock.resize(page_size_, '\0');
  HDOV_RETURN_IF_ERROR(
      file_->PwriteExact(0, superblock.data(), superblock.size()));
  HDOV_RETURN_IF_ERROR(file_->Fsync());
  if (stats_ != nullptr) {
    stats_->bytes_written += catalog.size() + superblock.size();
    ++stats_->fsyncs;
  }
  if (std::rename(temp_path_.c_str(), final_path_.c_str()) != 0) {
    return Status::IoError("snapshot: rename to " + final_path_ + " failed");
  }
  committed_ = true;
  HDOV_RETURN_IF_ERROR(FsyncParentDir(final_path_));
  if (stats_ != nullptr) {
    ++stats_->fsyncs;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SnapshotLoader

Result<std::unique_ptr<SnapshotLoader>> SnapshotLoader::Open(
    const std::string& path, PersistStats* stats) {
  LoadTimer timer(stats);
  HDOV_ASSIGN_OR_RETURN(auto file,
                        FileHandle::Open(path, FileHandle::Mode::kReadOnly));
  std::unique_ptr<SnapshotLoader> loader(
      new SnapshotLoader(path, std::move(file), stats));

  std::string superblock(kSuperblockBytes, '\0');
  HDOV_RETURN_IF_ERROR(
      loader->file_->PreadExact(0, superblock.data(), superblock.size()));
  Decoder decoder(superblock);
  uint64_t magic = 0;
  uint32_t version = 0, page_size = 0, section_count = 0, reserved = 0;
  uint64_t catalog_offset = 0, catalog_length = 0;
  uint32_t catalog_crc = 0, superblock_crc = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&magic));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&version));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&page_size));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&section_count));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&reserved));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&catalog_offset));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&catalog_length));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&catalog_crc));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&superblock_crc));
  if (magic != kSnapshotMagic) {
    return Status::Corruption("snapshot: bad magic in " + path);
  }
  if (version != kSnapshotVersion) {
    return Status::Corruption("snapshot: unsupported version in " + path);
  }
  if (stats != nullptr) {
    ++stats->checksum_verifications;
    stats->bytes_read += superblock.size();
  }
  if (superblock_crc != Crc32c(std::string_view(superblock.data(),
                                                kSuperblockBytes - 4))) {
    if (stats != nullptr) {
      ++stats->checksum_failures;
    }
    return Status::Corruption("snapshot: superblock checksum mismatch in " +
                              path);
  }
  loader->page_size_ = page_size;

  std::string catalog(catalog_length, '\0');
  HDOV_RETURN_IF_ERROR(
      loader->file_->PreadExact(catalog_offset, catalog.data(),
                                catalog.size()));
  if (stats != nullptr) {
    ++stats->checksum_verifications;
    stats->bytes_read += catalog.size();
  }
  if (catalog_crc != Crc32c(catalog)) {
    if (stats != nullptr) {
      ++stats->checksum_failures;
    }
    return Status::Corruption("snapshot: catalog checksum mismatch in " +
                              path);
  }
  Decoder cat(catalog);
  uint32_t count = 0;
  HDOV_RETURN_IF_ERROR(cat.DecodeFixed32(&count));
  if (count != section_count) {
    return Status::Corruption("snapshot: catalog count mismatch in " + path);
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    HDOV_RETURN_IF_ERROR(cat.DecodeFixed32(&name_len));
    if (cat.remaining() < name_len + 1) {
      return Status::Corruption("snapshot: truncated catalog in " + path);
    }
    std::string name(catalog.data() + cat.position(), name_len);
    HDOV_RETURN_IF_ERROR(cat.Skip(name_len));
    const uint8_t kind = static_cast<uint8_t>(catalog[cat.position()]);
    HDOV_RETURN_IF_ERROR(cat.Skip(1));
    Entry entry;
    if (kind > static_cast<uint8_t>(SectionKind::kDevice)) {
      return Status::Corruption("snapshot: unknown section kind in " + path);
    }
    entry.kind = static_cast<SectionKind>(kind);
    HDOV_RETURN_IF_ERROR(cat.DecodeFixed64(&entry.offset));
    HDOV_RETURN_IF_ERROR(cat.DecodeFixed64(&entry.length));
    HDOV_RETURN_IF_ERROR(cat.DecodeFixed32(&entry.crc));
    loader->sections_.emplace(std::move(name), entry);
  }
  return loader;
}

std::vector<std::string> SnapshotLoader::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, entry] : sections_) {
    names.push_back(name);
  }
  return names;
}

Result<const SnapshotLoader::Entry*> SnapshotLoader::Find(
    const std::string& name, SectionKind kind) const {
  auto it = sections_.find(name);
  if (it == sections_.end()) {
    return Status::NotFound("snapshot: no section named " + name);
  }
  if (it->second.kind != kind) {
    return Status::InvalidArgument("snapshot: section " + name +
                                   " has a different kind");
  }
  return &it->second;
}

Result<std::string> SnapshotLoader::ReadBlob(const std::string& name) const {
  LoadTimer timer(stats_);
  HDOV_ASSIGN_OR_RETURN(const Entry* entry, Find(name, SectionKind::kBlob));
  std::string bytes(entry->length, '\0');
  HDOV_RETURN_IF_ERROR(
      file_->PreadExact(entry->offset, bytes.data(), bytes.size()));
  if (stats_ != nullptr) {
    ++stats_->checksum_verifications;
    stats_->bytes_read += bytes.size();
  }
  if (Crc32c(bytes) != entry->crc) {
    if (stats_ != nullptr) {
      ++stats_->checksum_failures;
    }
    return Status::Corruption("snapshot: section " + name +
                              " checksum mismatch");
  }
  return bytes;
}

Status SnapshotLoader::RestoreDevice(const std::string& name,
                                     PageDevice* dst) const {
  LoadTimer timer(stats_);
  HDOV_ASSIGN_OR_RETURN(const Entry* entry, Find(name, SectionKind::kDevice));
  HDOV_ASSIGN_OR_RETURN(
      auto region, FilePageDevice::OpenAt(file_, entry->offset, dst->model(),
                                          nullptr, stats_));
  std::vector<std::string> pages;
  HDOV_RETURN_IF_ERROR(region->ExportContents(&pages));
  return dst->RestoreContents(std::move(pages));
}

Result<std::unique_ptr<FilePageDevice>> SnapshotLoader::OpenDevice(
    const std::string& name, const DiskModel& model, SimClock* clock) const {
  LoadTimer timer(stats_);
  HDOV_ASSIGN_OR_RETURN(const Entry* entry, Find(name, SectionKind::kDevice));
  return FilePageDevice::OpenAt(file_, entry->offset, model, clock, stats_);
}

}  // namespace hdov
