// Byte codecs for the view-invariant world data stored in a snapshot: the
// Scene (objects, MBRs, LoD chains — meshes included in full-geometry
// mode), the CellGridOptions (the grid itself is rebuilt deterministically
// from the scene bounds), and the per-cell VisibilityTable. All numeric
// fields use the fixed-width little-endian coding helpers, so doubles and
// floats round-trip bit-exactly.

#ifndef HDOV_PERSIST_WORLD_CODEC_H_
#define HDOV_PERSIST_WORLD_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "scene/cell_grid.h"
#include "scene/object.h"
#include "visibility/precompute.h"

namespace hdov {

// Section names of the canonical world snapshot layout (written by
// tools/hdov_build, consumed by VisualSystem::CreateFromSnapshot).
inline constexpr char kSectionScene[] = "scene";
inline constexpr char kSectionCellGrid[] = "cellgrid";
inline constexpr char kSectionVisTable[] = "vistable";
inline constexpr char kSectionTreeManifest[] = "tree/manifest";
inline constexpr char kSectionTreeDevice[] = "tree/device";
inline constexpr char kSectionModelMeta[] = "model/meta";
inline constexpr char kSectionModelDevice[] = "model/device";

// Per-storage-scheme sections: "store/<scheme-name>/meta" and
// ".../device" (`scheme_name` from StorageSchemeName).
std::string StoreMetaSection(std::string_view scheme_name);
std::string StoreDeviceSection(std::string_view scheme_name);

void EncodeScene(const Scene& scene, std::string* out);
Result<Scene> DecodeScene(std::string_view data);

void EncodeCellGridOptions(const CellGridOptions& options, std::string* out);
Result<CellGridOptions> DecodeCellGridOptions(std::string_view data);

void EncodeVisibilityTable(const VisibilityTable& table, std::string* out);
Result<VisibilityTable> DecodeVisibilityTable(std::string_view data);

}  // namespace hdov

#endif  // HDOV_PERSIST_WORLD_CODEC_H_
