#include "persist/world_codec.h"

#include "common/coding.h"

namespace hdov {

namespace {

void EncodeVec3(std::string* out, const Vec3& v) {
  EncodeDouble(out, v.x);
  EncodeDouble(out, v.y);
  EncodeDouble(out, v.z);
}

Status DecodeVec3(Decoder* decoder, Vec3* v) {
  HDOV_RETURN_IF_ERROR(decoder->DecodeDouble(&v->x));
  HDOV_RETURN_IF_ERROR(decoder->DecodeDouble(&v->y));
  return decoder->DecodeDouble(&v->z);
}

void EncodeAabb(std::string* out, const Aabb& box) {
  EncodeVec3(out, box.min);
  EncodeVec3(out, box.max);
}

Status DecodeAabb(Decoder* decoder, Aabb* box) {
  HDOV_RETURN_IF_ERROR(DecodeVec3(decoder, &box->min));
  return DecodeVec3(decoder, &box->max);
}

void EncodeMesh(std::string* out, const TriangleMesh& mesh) {
  EncodeFixed64(out, mesh.vertex_count());
  for (const Vec3& v : mesh.vertices()) {
    EncodeVec3(out, v);
  }
  EncodeFixed64(out, mesh.triangle_count());
  for (const Triangle& tri : mesh.triangles()) {
    EncodeFixed32(out, tri.v[0]);
    EncodeFixed32(out, tri.v[1]);
    EncodeFixed32(out, tri.v[2]);
  }
}

Result<TriangleMesh> DecodeMesh(Decoder* decoder) {
  uint64_t vertex_count = 0;
  HDOV_RETURN_IF_ERROR(decoder->DecodeFixed64(&vertex_count));
  std::vector<Vec3> vertices(vertex_count);
  for (Vec3& v : vertices) {
    HDOV_RETURN_IF_ERROR(DecodeVec3(decoder, &v));
  }
  uint64_t triangle_count = 0;
  HDOV_RETURN_IF_ERROR(decoder->DecodeFixed64(&triangle_count));
  std::vector<Triangle> triangles(triangle_count);
  for (Triangle& tri : triangles) {
    HDOV_RETURN_IF_ERROR(decoder->DecodeFixed32(&tri.v[0]));
    HDOV_RETURN_IF_ERROR(decoder->DecodeFixed32(&tri.v[1]));
    HDOV_RETURN_IF_ERROR(decoder->DecodeFixed32(&tri.v[2]));
    for (uint32_t corner : tri.v) {
      if (corner >= vertex_count) {
        return Status::Corruption("scene codec: triangle index out of range");
      }
    }
  }
  return TriangleMesh(std::move(vertices), std::move(triangles));
}

void EncodeLodChain(std::string* out, const LodChain& chain) {
  EncodeFixed32(out, static_cast<uint32_t>(chain.num_levels()));
  for (size_t i = 0; i < chain.num_levels(); ++i) {
    const LodLevel& level = chain.level(i);
    EncodeFixed32(out, level.triangle_count);
    EncodeFixed64(out, level.byte_size);
    EncodeMesh(out, level.mesh);
  }
}

Result<LodChain> DecodeLodChain(Decoder* decoder) {
  uint32_t num_levels = 0;
  HDOV_RETURN_IF_ERROR(decoder->DecodeFixed32(&num_levels));
  std::vector<LodLevel> levels;
  levels.reserve(num_levels);
  for (uint32_t i = 0; i < num_levels; ++i) {
    LodLevel level;
    HDOV_RETURN_IF_ERROR(decoder->DecodeFixed32(&level.triangle_count));
    HDOV_RETURN_IF_ERROR(decoder->DecodeFixed64(&level.byte_size));
    HDOV_ASSIGN_OR_RETURN(level.mesh, DecodeMesh(decoder));
    levels.push_back(std::move(level));
  }
  if (levels.empty()) {
    return LodChain();
  }
  return LodChain::FromLevels(std::move(levels));
}

}  // namespace

std::string StoreMetaSection(std::string_view scheme_name) {
  return "store/" + std::string(scheme_name) + "/meta";
}

std::string StoreDeviceSection(std::string_view scheme_name) {
  return "store/" + std::string(scheme_name) + "/device";
}

void EncodeScene(const Scene& scene, std::string* out) {
  EncodeFixed32(out, static_cast<uint32_t>(scene.size()));
  for (const Object& object : scene.objects()) {
    out->push_back(static_cast<char>(object.kind));
    EncodeAabb(out, object.mbr);
    EncodeLodChain(out, object.lods);
  }
}

Result<Scene> DecodeScene(std::string_view data) {
  Decoder decoder(data);
  uint32_t num_objects = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&num_objects));
  Scene scene;
  for (uint32_t i = 0; i < num_objects; ++i) {
    if (decoder.remaining() < 1) {
      return Status::Corruption("scene codec: truncated object");
    }
    Object object;
    const uint8_t kind = static_cast<uint8_t>(data[decoder.position()]);
    HDOV_RETURN_IF_ERROR(decoder.Skip(1));
    if (kind > static_cast<uint8_t>(ObjectKind::kOther)) {
      return Status::Corruption("scene codec: unknown object kind");
    }
    object.kind = static_cast<ObjectKind>(kind);
    HDOV_RETURN_IF_ERROR(DecodeAabb(&decoder, &object.mbr));
    HDOV_ASSIGN_OR_RETURN(object.lods, DecodeLodChain(&decoder));
    scene.AddObject(std::move(object));  // Ids reassigned sequentially.
  }
  return scene;
}

void EncodeCellGridOptions(const CellGridOptions& options, std::string* out) {
  EncodeFixed32(out, static_cast<uint32_t>(options.cells_x));
  EncodeFixed32(out, static_cast<uint32_t>(options.cells_y));
  EncodeDouble(out, options.min_eye_height);
  EncodeDouble(out, options.max_eye_height);
}

Result<CellGridOptions> DecodeCellGridOptions(std::string_view data) {
  Decoder decoder(data);
  CellGridOptions options;
  uint32_t cells_x = 0, cells_y = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&cells_x));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&cells_y));
  HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&options.min_eye_height));
  HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&options.max_eye_height));
  options.cells_x = static_cast<int>(cells_x);
  options.cells_y = static_cast<int>(cells_y);
  return options;
}

void EncodeVisibilityTable(const VisibilityTable& table, std::string* out) {
  EncodeFixed32(out, table.num_cells());
  for (CellId cell = 0; cell < table.num_cells(); ++cell) {
    const CellVisibility& vis = table.cell(cell);
    EncodeFixed32(out, static_cast<uint32_t>(vis.ids.size()));
    for (ObjectId id : vis.ids) {
      EncodeFixed32(out, id);
    }
    for (float dov : vis.dov) {
      EncodeFloat(out, dov);
    }
  }
}

Result<VisibilityTable> DecodeVisibilityTable(std::string_view data) {
  Decoder decoder(data);
  uint32_t num_cells = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&num_cells));
  std::vector<CellVisibility> cells(num_cells);
  for (CellVisibility& vis : cells) {
    uint32_t count = 0;
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&count));
    vis.ids.resize(count);
    vis.dov.resize(count);
    for (ObjectId& id : vis.ids) {
      HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&id));
    }
    for (float& dov : vis.dov) {
      HDOV_RETURN_IF_ERROR(decoder.DecodeFloat(&dov));
    }
  }
  return VisibilityTable(std::move(cells));
}

}  // namespace hdov
