#include "visibility/dov.h"

#include <algorithm>
#include <cmath>

namespace hdov {

DovComputer::DovComputer(const Scene* scene, const DovOptions& options)
    : scene_(scene), options_(options), buffer_(options.cubemap) {
  solid_angles_.resize(scene_->size());
  dov_.resize(scene_->size());
}

void DovComputer::Rasterize(const Vec3& p) {
  buffer_.Reset(p);
  for (const Object& obj : scene_->objects()) {
    if (options_.geometry == OccluderGeometry::kMeshLod &&
        !obj.lods.empty() && !obj.lods.finest().mesh.empty()) {
      size_t level = options_.occluder_lod_level;
      if (level >= obj.lods.num_levels()) {
        level = obj.lods.num_levels() - 1;
      }
      const TriangleMesh& mesh = obj.lods.level(level).mesh;
      for (size_t t = 0; t < mesh.triangle_count(); ++t) {
        auto [a, b, c] = mesh.TriangleVertices(t);
        buffer_.RasterizeTriangle(a, b, c, obj.id);
      }
    } else {
      buffer_.RasterizeBox(obj.mbr, obj.id);
    }
  }
}

const std::vector<float>& DovComputer::ComputePointDov(const Vec3& p) {
  Rasterize(p);
  std::fill(solid_angles_.begin(), solid_angles_.end(), 0.0);
  buffer_.AccumulateSolidAngles(&solid_angles_);
  constexpr double kInvSphere = 1.0 / (4.0 * M_PI);
  for (size_t i = 0; i < solid_angles_.size(); ++i) {
    dov_[i] = static_cast<float>(solid_angles_[i] * kInvSphere);
  }
  return dov_;
}

std::vector<float> DovComputer::ComputeRegionDov(
    const std::vector<Vec3>& samples) {
  std::vector<float> region(scene_->size(), 0.0f);
  for (const Vec3& p : samples) {
    const std::vector<float>& point = ComputePointDov(p);
    for (size_t i = 0; i < region.size(); ++i) {
      region[i] = std::max(region[i], point[i]);
    }
  }
  return region;
}

}  // namespace hdov
