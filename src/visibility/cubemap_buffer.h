// CubeMapBuffer: a software item buffer over the six faces of a cube map
// centered at a viewpoint. All occluder geometry is rasterized with
// z-buffering; afterwards each pixel is owned by the nearest item, and the
// per-item sums of exact per-pixel solid angles give the degree of
// visibility of every object simultaneously:
//
//   DoV(p, X) = (solid angle of visible part of X) / 4 pi        (paper §3.1)
//
// This is the software substitute for the paper's hardware-accelerated DoV
// computation (see DESIGN.md).

#ifndef HDOV_VISIBILITY_CUBEMAP_BUFFER_H_
#define HDOV_VISIBILITY_CUBEMAP_BUFFER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace hdov {

inline constexpr uint32_t kNoItem = ~static_cast<uint32_t>(0);

struct CubeMapOptions {
  // Pixels per cube face edge. 32 gives 6144 pixels (~0.2% solid-angle
  // resolution); raise for fidelity experiments.
  int face_resolution = 32;
};

class CubeMapBuffer {
 public:
  explicit CubeMapBuffer(const CubeMapOptions& options = CubeMapOptions());

  // Clears the buffer and re-centers it at `viewpoint`.
  void Reset(const Vec3& viewpoint);

  const Vec3& viewpoint() const { return viewpoint_; }
  int face_resolution() const { return res_; }

  // Rasterizes a (two-sided) occluder triangle owned by `item`.
  void RasterizeTriangle(const Vec3& a, const Vec3& b, const Vec3& c,
                         uint32_t item);

  // Rasterizes the 12 triangles of `box`.
  void RasterizeBox(const Aabb& box, uint32_t item);

  // Accumulates the visible solid angle of every item into `solid_angles`
  // (indexed by item id; the vector must be pre-sized and zeroed by the
  // caller). Returns the total covered solid angle.
  double AccumulateSolidAngles(std::vector<double>* solid_angles) const;

  // Solid angle of one specific item (linear scan; for tests).
  double SolidAngleOf(uint32_t item) const;

  // Fraction of the sphere covered by any item.
  double TotalCoverage() const;

 private:
  struct Face {
    Vec3 forward, right, up;
  };

  // Pixel solid angle helper: integral corner term for face-plane
  // coordinates (x, y) on the z=1 plane.
  static double CornerSolidAngle(double x, double y);

  void RasterizeOnFace(int face, const Vec3* poly, int n, uint32_t item);

  CubeMapOptions options_;
  int res_;
  Vec3 viewpoint_;
  std::vector<uint32_t> items_;   // 6 * res * res.
  std::vector<float> inv_depth_;  // Larger = closer.
  std::vector<double> pixel_solid_angle_;  // res * res (same per face).
  std::array<Face, 6> faces_;
};

}  // namespace hdov

#endif  // HDOV_VISIBILITY_CUBEMAP_BUFFER_H_
