#include "visibility/dov_sampling.h"

#include <cmath>

#include "common/rng.h"
#include "geometry/intersect.h"

namespace hdov {

std::vector<float> ComputePointDovSampled(const Scene& scene, const Vec3& p,
                                          const SamplingDovOptions& options) {
  Rng rng(options.seed);
  std::vector<uint64_t> hits(scene.size(), 0);
  for (size_t r = 0; r < options.num_rays; ++r) {
    // Uniform direction on the sphere.
    const double z = rng.Uniform(-1.0, 1.0);
    const double phi = rng.Uniform(0.0, 2.0 * M_PI);
    const double s = std::sqrt(std::max(0.0, 1.0 - z * z));
    const Ray ray{p, Vec3(s * std::cos(phi), s * std::sin(phi), z)};

    ObjectId nearest = kInvalidObject;
    double nearest_t = std::numeric_limits<double>::infinity();
    for (const Object& obj : scene.objects()) {
      if (auto t = RayBox(ray, obj.mbr, 1e-9);
          t.has_value() && *t < nearest_t) {
        nearest_t = *t;
        nearest = obj.id;
      }
    }
    if (nearest != kInvalidObject) {
      ++hits[nearest];
    }
  }
  std::vector<float> dov(scene.size(), 0.0f);
  for (size_t i = 0; i < dov.size(); ++i) {
    dov[i] = static_cast<float>(static_cast<double>(hits[i]) /
                                static_cast<double>(options.num_rays));
  }
  return dov;
}

}  // namespace hdov
