#include "visibility/cubemap_buffer.h"

#include <algorithm>
#include <cmath>

namespace hdov {

namespace {

constexpr double kNearEpsilon = 1e-6;

// Sutherland–Hodgman clip of a camera-space polygon against the half-space
// n·v >= offset. `in`/`out` must differ.
int ClipAgainstPlane(const Vec3* in, int n_in, const Vec3& n, double offset,
                     Vec3* out) {
  int n_out = 0;
  for (int i = 0; i < n_in; ++i) {
    const Vec3& a = in[i];
    const Vec3& b = in[(i + 1) % n_in];
    const double da = n.Dot(a) - offset;
    const double db = n.Dot(b) - offset;
    if (da >= 0.0) {
      out[n_out++] = a;
    }
    if ((da >= 0.0) != (db >= 0.0)) {
      double t = da / (da - db);
      out[n_out++] = a + (b - a) * t;
    }
  }
  return n_out;
}

}  // namespace

CubeMapBuffer::CubeMapBuffer(const CubeMapOptions& options)
    : options_(options), res_(std::max(2, options.face_resolution)) {
  const size_t pixels = static_cast<size_t>(6) * res_ * res_;
  items_.assign(pixels, kNoItem);
  inv_depth_.assign(pixels, 0.0f);

  // Face bases: forward, right, up per face. The (right, up) choice only
  // fixes the pixel grid orientation; solid angles are unaffected.
  faces_[0] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};    // +x
  faces_[1] = {{-1, 0, 0}, {0, -1, 0}, {0, 0, 1}};  // -x
  faces_[2] = {{0, 1, 0}, {-1, 0, 0}, {0, 0, 1}};   // +y
  faces_[3] = {{0, -1, 0}, {1, 0, 0}, {0, 0, 1}};   // -y
  faces_[4] = {{0, 0, 1}, {1, 0, 0}, {0, 1, 0}};    // +z
  faces_[5] = {{0, 0, -1}, {1, 0, 0}, {0, -1, 0}};  // -z

  // Exact per-pixel solid angles on the z = 1 face plane.
  pixel_solid_angle_.assign(static_cast<size_t>(res_) * res_, 0.0);
  auto plane_coord = [&](int i) { return 2.0 * i / res_ - 1.0; };
  for (int j = 0; j < res_; ++j) {
    for (int i = 0; i < res_; ++i) {
      const double x0 = plane_coord(i);
      const double x1 = plane_coord(i + 1);
      const double y0 = plane_coord(j);
      const double y1 = plane_coord(j + 1);
      pixel_solid_angle_[static_cast<size_t>(j) * res_ + i] =
          CornerSolidAngle(x1, y1) - CornerSolidAngle(x0, y1) -
          CornerSolidAngle(x1, y0) + CornerSolidAngle(x0, y0);
    }
  }
}

double CubeMapBuffer::CornerSolidAngle(double x, double y) {
  return std::atan2(x * y, std::sqrt(x * x + y * y + 1.0));
}

void CubeMapBuffer::Reset(const Vec3& viewpoint) {
  viewpoint_ = viewpoint;
  std::fill(items_.begin(), items_.end(), kNoItem);
  std::fill(inv_depth_.begin(), inv_depth_.end(), 0.0f);
}

void CubeMapBuffer::RasterizeTriangle(const Vec3& a, const Vec3& b,
                                      const Vec3& c, uint32_t item) {
  const Vec3 cam[3] = {a - viewpoint_, b - viewpoint_, c - viewpoint_};
  // Scratch buffers big enough for a triangle clipped by 5 planes.
  Vec3 buf_a[16];
  Vec3 buf_b[16];
  for (int face = 0; face < 6; ++face) {
    const Face& f = faces_[face];
    // Quick reject: all three vertices behind the face.
    if (f.forward.Dot(cam[0]) <= 0.0 && f.forward.Dot(cam[1]) <= 0.0 &&
        f.forward.Dot(cam[2]) <= 0.0) {
      continue;
    }
    buf_a[0] = cam[0];
    buf_a[1] = cam[1];
    buf_a[2] = cam[2];
    int n = 3;
    // Near plane, then the four side planes (with a hair of slack so
    // neighbouring faces overlap rather than leave seams).
    n = ClipAgainstPlane(buf_a, n, f.forward, kNearEpsilon, buf_b);
    if (n < 3) continue;
    const Vec3 fs = f.forward * (1.0 + 1e-9);
    n = ClipAgainstPlane(buf_b, n, fs - f.right, 0.0, buf_a);
    if (n < 3) continue;
    n = ClipAgainstPlane(buf_a, n, fs + f.right, 0.0, buf_b);
    if (n < 3) continue;
    n = ClipAgainstPlane(buf_b, n, fs - f.up, 0.0, buf_a);
    if (n < 3) continue;
    n = ClipAgainstPlane(buf_a, n, fs + f.up, 0.0, buf_b);
    if (n < 3) continue;
    RasterizeOnFace(face, buf_b, n, item);
  }
}

void CubeMapBuffer::RasterizeOnFace(int face, const Vec3* poly, int n,
                                    uint32_t item) {
  const Face& f = faces_[face];
  // Project to face-plane coordinates; keep 1/depth for z-buffering
  // (1/depth is affine in screen space across a planar polygon).
  double u[16];
  double v[16];
  double w[16];
  for (int i = 0; i < n; ++i) {
    const double depth = f.forward.Dot(poly[i]);
    const double inv = 1.0 / depth;
    u[i] = f.right.Dot(poly[i]) * inv;
    v[i] = f.up.Dot(poly[i]) * inv;
    w[i] = inv;
  }

  uint32_t* face_items = items_.data() + static_cast<size_t>(face) * res_ *
                                              res_;
  float* face_depth = inv_depth_.data() + static_cast<size_t>(face) * res_ *
                                              res_;

  // Fan-triangulate and raster each triangle with edge functions.
  for (int k = 1; k + 1 < n; ++k) {
    const double ux[3] = {u[0], u[k], u[k + 1]};
    const double vy[3] = {v[0], v[k], v[k + 1]};
    const double ws[3] = {w[0], w[k], w[k + 1]};

    double min_u = std::min({ux[0], ux[1], ux[2]});
    double max_u = std::max({ux[0], ux[1], ux[2]});
    double min_v = std::min({vy[0], vy[1], vy[2]});
    double max_v = std::max({vy[0], vy[1], vy[2]});

    // Pixel index range covering [min, max] in [-1, 1] coordinates.
    int i0 = std::max(0, static_cast<int>((min_u + 1.0) * 0.5 * res_));
    int i1 = std::min(res_ - 1,
                      static_cast<int>((max_u + 1.0) * 0.5 * res_));
    int j0 = std::max(0, static_cast<int>((min_v + 1.0) * 0.5 * res_));
    int j1 = std::min(res_ - 1,
                      static_cast<int>((max_v + 1.0) * 0.5 * res_));
    if (i0 > i1 || j0 > j1) {
      continue;
    }

    const double area = (ux[1] - ux[0]) * (vy[2] - vy[0]) -
                        (ux[2] - ux[0]) * (vy[1] - vy[0]);
    if (std::fabs(area) < 1e-18) {
      continue;
    }
    const double inv_area = 1.0 / area;

    for (int j = j0; j <= j1; ++j) {
      const double py = 2.0 * (j + 0.5) / res_ - 1.0;
      for (int i = i0; i <= i1; ++i) {
        const double px = 2.0 * (i + 0.5) / res_ - 1.0;
        // Barycentric coordinates (signed, normalized by the full area so
        // both windings are accepted when all have the same sign).
        const double w0 = ((ux[1] - px) * (vy[2] - py) -
                           (ux[2] - px) * (vy[1] - py)) *
                          inv_area;
        const double w1 = ((ux[2] - px) * (vy[0] - py) -
                           (ux[0] - px) * (vy[2] - py)) *
                          inv_area;
        const double w2 = 1.0 - w0 - w1;
        if (w0 < 0.0 || w1 < 0.0 || w2 < 0.0) {
          continue;
        }
        const double inv_depth = w0 * ws[0] + w1 * ws[1] + w2 * ws[2];
        const size_t pixel = static_cast<size_t>(j) * res_ + i;
        if (inv_depth > face_depth[pixel]) {
          face_depth[pixel] = static_cast<float>(inv_depth);
          face_items[pixel] = item;
        }
      }
    }
  }
}

void CubeMapBuffer::RasterizeBox(const Aabb& box, uint32_t item) {
  if (box.IsEmpty()) {
    return;
  }
  Vec3 c[8];
  for (int i = 0; i < 8; ++i) {
    c[i] = box.Corner(i);
  }
  static constexpr int kQuads[6][4] = {
      {0, 2, 3, 1},  // bottom
      {4, 5, 7, 6},  // top
      {0, 1, 5, 4},  // front
      {2, 6, 7, 3},  // back
      {0, 4, 6, 2},  // left
      {1, 3, 7, 5},  // right
  };
  for (const auto& q : kQuads) {
    RasterizeTriangle(c[q[0]], c[q[1]], c[q[2]], item);
    RasterizeTriangle(c[q[0]], c[q[2]], c[q[3]], item);
  }
}

double CubeMapBuffer::AccumulateSolidAngles(
    std::vector<double>* solid_angles) const {
  double total = 0.0;
  const size_t face_pixels = static_cast<size_t>(res_) * res_;
  for (int face = 0; face < 6; ++face) {
    const uint32_t* face_items = items_.data() + face * face_pixels;
    for (size_t p = 0; p < face_pixels; ++p) {
      const uint32_t item = face_items[p];
      if (item == kNoItem) {
        continue;
      }
      const double omega = pixel_solid_angle_[p];
      total += omega;
      if (item < solid_angles->size()) {
        (*solid_angles)[item] += omega;
      }
    }
  }
  return total;
}

double CubeMapBuffer::SolidAngleOf(uint32_t item) const {
  double total = 0.0;
  const size_t face_pixels = static_cast<size_t>(res_) * res_;
  for (int face = 0; face < 6; ++face) {
    const uint32_t* face_items = items_.data() + face * face_pixels;
    for (size_t p = 0; p < face_pixels; ++p) {
      if (face_items[p] == item) {
        total += pixel_solid_angle_[p];
      }
    }
  }
  return total;
}

double CubeMapBuffer::TotalCoverage() const {
  double covered = 0.0;
  const size_t face_pixels = static_cast<size_t>(res_) * res_;
  for (int face = 0; face < 6; ++face) {
    const uint32_t* face_items = items_.data() + face * face_pixels;
    for (size_t p = 0; p < face_pixels; ++p) {
      if (face_items[p] != kNoItem) {
        covered += pixel_solid_angle_[p];
      }
    }
  }
  return covered / (4.0 * M_PI);
}

}  // namespace hdov
