// Visibility precomputation: evaluates the region DoV of every object for
// every viewing cell — the offline step the paper runs before building the
// HDoV-tree V-pages ("a conservative visibility algorithm is applied on
// pre-determined cells ... a DoV algorithm is then applied on the visible
// set").
//
// Cells are independent of each other, so the pass fans out over a worker
// pool (PrecomputeOptions::threads). Each worker owns a private
// DovComputer (cube-map buffer included) and writes only its own cells'
// slots; a cell's result depends on nothing but the cell, so the output
// is bit-identical for every thread count, including the sequential
// threads = 1 default that reproduces the paper's numbers.

#ifndef HDOV_VISIBILITY_PRECOMPUTE_H_
#define HDOV_VISIBILITY_PRECOMPUTE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "scene/cell_grid.h"
#include "scene/object.h"
#include "telemetry/telemetry.h"
#include "visibility/dov.h"

namespace hdov {

// Sparse per-cell visibility: only objects with DoV > 0 are stored,
// sorted by object id.
struct CellVisibility {
  std::vector<ObjectId> ids;
  std::vector<float> dov;  // Parallel to `ids`.

  size_t num_visible() const { return ids.size(); }

  // DoV of `id` from this cell; 0 when the object is hidden.
  float DovOf(ObjectId id) const;
};

struct PrecomputeOptions {
  DovOptions dov;
  // Viewpoint samples per cell for the conservative max of Eq. 2:
  // 1 = center only, 5 = center + mid-height corners, 9 = full corners.
  int samples_per_cell = 5;

  // Nudge sample viewpoints that land inside an object's MBR to just
  // outside it. Viewing cells tile the whole ground plane, so cell
  // corners/centers can fall inside buildings; a viewpoint inside an
  // occluder would see nothing but that occluder, which no real walker
  // experiences.
  bool avoid_object_interiors = true;

  // Worker threads for the per-cell fan-out. 1 (default) runs entirely on
  // the calling thread; 0 means one worker per hardware thread. Output is
  // identical for every value (see the header comment).
  uint32_t threads = 1;

  // Optional observability: when set (and enabled), the pass bumps
  // `precompute.*` counters/histograms and — if the tracer is enabled —
  // merges one "cell" span per cell, in cell order, under a "precompute"
  // root span. Workers record into private buffers; the shared registry
  // handles are atomic, so no thread ever touches another's state.
  telemetry::Telemetry* telemetry = nullptr;
};

class VisibilityTable {
 public:
  VisibilityTable() = default;
  explicit VisibilityTable(std::vector<CellVisibility> cells)
      : cells_(std::move(cells)) {}

  uint32_t num_cells() const { return static_cast<uint32_t>(cells_.size()); }
  const CellVisibility& cell(CellId id) const { return cells_[id]; }

  double AverageVisibleObjects() const;

 private:
  std::vector<CellVisibility> cells_;
};

// Runs the DoV precomputation for every cell of `grid`. The optional
// `progress` callback receives (cells_done, cells_total); with threads >
// 1 it is invoked from worker threads, serialized under a mutex, with
// cells_done strictly increasing (completion order, not cell order).
Result<VisibilityTable> PrecomputeVisibility(
    const Scene& scene, const CellGrid& grid, const PrecomputeOptions& options,
    const std::function<void(uint32_t, uint32_t)>& progress = nullptr);

// Moves `p` out of any object MBR it lies inside, along the cheapest xy
// axis (smallest penetration — stepping over a building is not an option
// for an eye-height viewpoint). A few rounds handle points inside
// overlapping boxes; pathological cases give up after four rounds and
// return the last position. Exposed for testing; PrecomputeVisibility
// applies it to every viewpoint sample when avoid_object_interiors is on.
Vec3 PushOutOfObjects(const Scene& scene, Vec3 p);

}  // namespace hdov

#endif  // HDOV_VISIBILITY_PRECOMPUTE_H_
