// Visibility precomputation: evaluates the region DoV of every object for
// every viewing cell — the offline step the paper runs before building the
// HDoV-tree V-pages ("a conservative visibility algorithm is applied on
// pre-determined cells ... a DoV algorithm is then applied on the visible
// set").

#ifndef HDOV_VISIBILITY_PRECOMPUTE_H_
#define HDOV_VISIBILITY_PRECOMPUTE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "scene/cell_grid.h"
#include "scene/object.h"
#include "visibility/dov.h"

namespace hdov {

// Sparse per-cell visibility: only objects with DoV > 0 are stored,
// sorted by object id.
struct CellVisibility {
  std::vector<ObjectId> ids;
  std::vector<float> dov;  // Parallel to `ids`.

  size_t num_visible() const { return ids.size(); }

  // DoV of `id` from this cell; 0 when the object is hidden.
  float DovOf(ObjectId id) const;
};

struct PrecomputeOptions {
  DovOptions dov;
  // Viewpoint samples per cell for the conservative max of Eq. 2:
  // 1 = center only, 5 = center + mid-height corners, 9 = full corners.
  int samples_per_cell = 5;

  // Nudge sample viewpoints that land inside an object's MBR to just
  // outside it. Viewing cells tile the whole ground plane, so cell
  // corners/centers can fall inside buildings; a viewpoint inside an
  // occluder would see nothing but that occluder, which no real walker
  // experiences.
  bool avoid_object_interiors = true;
};

class VisibilityTable {
 public:
  VisibilityTable() = default;
  explicit VisibilityTable(std::vector<CellVisibility> cells)
      : cells_(std::move(cells)) {}

  uint32_t num_cells() const { return static_cast<uint32_t>(cells_.size()); }
  const CellVisibility& cell(CellId id) const { return cells_[id]; }

  double AverageVisibleObjects() const;

 private:
  std::vector<CellVisibility> cells_;
};

// Runs the DoV precomputation for every cell of `grid`. The optional
// `progress` callback receives (cells_done, cells_total).
Result<VisibilityTable> PrecomputeVisibility(
    const Scene& scene, const CellGrid& grid, const PrecomputeOptions& options,
    const std::function<void(uint32_t, uint32_t)>& progress = nullptr);

}  // namespace hdov

#endif  // HDOV_VISIBILITY_PRECOMPUTE_H_
