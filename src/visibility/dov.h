// DovComputer: evaluates the degree of visibility (DoV, paper §3.1) of
// every scene object from a viewpoint or a viewing region. Region DoV is
// the conservative maximum over sample viewpoints (Eq. 2).

#ifndef HDOV_VISIBILITY_DOV_H_
#define HDOV_VISIBILITY_DOV_H_

#include <cstdint>
#include <vector>

#include "scene/object.h"
#include "visibility/cubemap_buffer.h"

namespace hdov {

enum class OccluderGeometry : uint8_t {
  // Rasterize object MBR boxes. Exact for box-like buildings, slightly
  // aggressive for organic shapes; always available (proxy scenes carry no
  // meshes).
  kMbrBoxes = 0,
  // Rasterize a LoD mesh of each object (full-geometry scenes only).
  kMeshLod = 1,
};

struct DovOptions {
  CubeMapOptions cubemap;
  OccluderGeometry geometry = OccluderGeometry::kMbrBoxes;
  // LoD level used as occluder geometry in kMeshLod mode; SIZE_MAX means
  // the coarsest level (cheap and adequate for occlusion).
  size_t occluder_lod_level = static_cast<size_t>(-1);
};

class DovComputer {
 public:
  DovComputer(const Scene* scene, const DovOptions& options);

  // DoV of each object viewed from `p` (indexed by ObjectId, in [0, 0.5]
  // for viewpoints outside the object).
  const std::vector<float>& ComputePointDov(const Vec3& p);

  // Conservative region DoV: per-object max over `samples` (Eq. 2).
  std::vector<float> ComputeRegionDov(const std::vector<Vec3>& samples);

 private:
  void Rasterize(const Vec3& p);

  const Scene* scene_;
  DovOptions options_;
  CubeMapBuffer buffer_;
  std::vector<double> solid_angles_;  // Scratch, one slot per object.
  std::vector<float> dov_;            // Last point result.
};

}  // namespace hdov

#endif  // HDOV_VISIBILITY_DOV_H_
