// Monte-Carlo DoV estimation: shoots uniformly distributed rays from the
// viewpoint and attributes each to the nearest occluder hit. By the
// definition of DoV (visible solid angle / 4 pi), the hit fraction of an
// object converges to its DoV. Much slower than the cube-map item buffer,
// but free of rasterization artifacts — used to cross-validate the
// rasterizer and as a reference implementation.

#ifndef HDOV_VISIBILITY_DOV_SAMPLING_H_
#define HDOV_VISIBILITY_DOV_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "scene/object.h"

namespace hdov {

struct SamplingDovOptions {
  size_t num_rays = 16384;
  uint64_t seed = 1;
};

// DoV of every object (indexed by ObjectId) from `p`, with objects
// represented by their MBR boxes (matching the rasterizer's
// OccluderGeometry::kMbrBoxes mode). O(num_rays * objects).
std::vector<float> ComputePointDovSampled(const Scene& scene, const Vec3& p,
                                          const SamplingDovOptions& options);

}  // namespace hdov

#endif  // HDOV_VISIBILITY_DOV_SAMPLING_H_
