#include "visibility/precompute.h"

#include <algorithm>

namespace hdov {

float CellVisibility::DovOf(ObjectId id) const {
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) {
    return 0.0f;
  }
  return dov[static_cast<size_t>(it - ids.begin())];
}

double VisibilityTable::AverageVisibleObjects() const {
  if (cells_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const CellVisibility& cell : cells_) {
    total += static_cast<double>(cell.num_visible());
  }
  return total / static_cast<double>(cells_.size());
}

namespace {

// Moves `p` out of any object MBR it lies inside, along the cheapest axis
// (smallest penetration). A few rounds handle points inside overlapping
// boxes; pathological cases give up and return the last position.
Vec3 PushOutOfObjects(const Scene& scene, Vec3 p) {
  constexpr double kClearance = 0.05;
  for (int round = 0; round < 4; ++round) {
    bool moved = false;
    for (const Object& obj : scene.objects()) {
      const Aabb& box = obj.mbr;
      if (!box.Contains(p)) {
        continue;
      }
      // Penetration depth along each axis face pair (xy only: stepping
      // over a building is not an option for an eye-height viewpoint).
      const double candidates[4] = {
          p.x - box.min.x,  // Exit through min x.
          box.max.x - p.x,  // Exit through max x.
          p.y - box.min.y,
          box.max.y - p.y,
      };
      int best = 0;
      for (int i = 1; i < 4; ++i) {
        if (candidates[i] < candidates[best]) {
          best = i;
        }
      }
      switch (best) {
        case 0:
          p.x = box.min.x - kClearance;
          break;
        case 1:
          p.x = box.max.x + kClearance;
          break;
        case 2:
          p.y = box.min.y - kClearance;
          break;
        case 3:
          p.y = box.max.y + kClearance;
          break;
      }
      moved = true;
    }
    if (!moved) {
      return p;
    }
  }
  return p;
}

std::vector<Vec3> CellSamples(const CellGrid& grid, CellId id,
                              int samples_per_cell) {
  const Aabb box = grid.CellBounds(id);
  const Vec3 center = box.Center();
  std::vector<Vec3> samples;
  samples.push_back(center);
  if (samples_per_cell > 1) {
    // Mid-height corners (the xy extremes dominate the visibility
    // variation; eye height varies little).
    for (int i = 0; i < 4; ++i) {
      Vec3 corner = box.Corner(i);
      samples.emplace_back(corner.x, corner.y, center.z);
      if (static_cast<int>(samples.size()) >= samples_per_cell) {
        break;
      }
    }
  }
  if (static_cast<int>(samples.size()) < samples_per_cell) {
    for (int i = 0; i < 8 && static_cast<int>(samples.size()) <
                                 samples_per_cell;
         ++i) {
      samples.push_back(box.Corner(i));
    }
  }
  return samples;
}

}  // namespace

Result<VisibilityTable> PrecomputeVisibility(
    const Scene& scene, const CellGrid& grid, const PrecomputeOptions& options,
    const std::function<void(uint32_t, uint32_t)>& progress) {
  if (options.samples_per_cell < 1) {
    return Status::InvalidArgument("precompute: need at least one sample");
  }
  DovComputer computer(&scene, options.dov);
  std::vector<CellVisibility> cells(grid.num_cells());
  for (CellId c = 0; c < grid.num_cells(); ++c) {
    std::vector<Vec3> samples =
        CellSamples(grid, c, options.samples_per_cell);
    if (options.avoid_object_interiors) {
      for (Vec3& p : samples) {
        p = PushOutOfObjects(scene, p);
      }
    }
    std::vector<float> region = computer.ComputeRegionDov(samples);
    CellVisibility& cell = cells[c];
    for (ObjectId id = 0; id < region.size(); ++id) {
      if (region[id] > 0.0f) {
        cell.ids.push_back(id);
        cell.dov.push_back(region[id]);
      }
    }
    if (progress) {
      progress(c + 1, grid.num_cells());
    }
  }
  return VisibilityTable(std::move(cells));
}

}  // namespace hdov
