#include "visibility/precompute.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "common/thread_pool.h"
#include "telemetry/trace.h"

namespace hdov {

float CellVisibility::DovOf(ObjectId id) const {
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) {
    return 0.0f;
  }
  return dov[static_cast<size_t>(it - ids.begin())];
}

double VisibilityTable::AverageVisibleObjects() const {
  if (cells_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const CellVisibility& cell : cells_) {
    total += static_cast<double>(cell.num_visible());
  }
  return total / static_cast<double>(cells_.size());
}

Vec3 PushOutOfObjects(const Scene& scene, Vec3 p) {
  constexpr double kClearance = 0.05;
  for (int round = 0; round < 4; ++round) {
    bool moved = false;
    for (const Object& obj : scene.objects()) {
      const Aabb& box = obj.mbr;
      if (!box.Contains(p)) {
        continue;
      }
      // Penetration depth along each axis face pair (xy only: stepping
      // over a building is not an option for an eye-height viewpoint).
      const double candidates[4] = {
          p.x - box.min.x,  // Exit through min x.
          box.max.x - p.x,  // Exit through max x.
          p.y - box.min.y,
          box.max.y - p.y,
      };
      int best = 0;
      for (int i = 1; i < 4; ++i) {
        if (candidates[i] < candidates[best]) {
          best = i;
        }
      }
      switch (best) {
        case 0:
          p.x = box.min.x - kClearance;
          break;
        case 1:
          p.x = box.max.x + kClearance;
          break;
        case 2:
          p.y = box.min.y - kClearance;
          break;
        case 3:
          p.y = box.max.y + kClearance;
          break;
      }
      moved = true;
    }
    if (!moved) {
      return p;
    }
  }
  return p;
}

namespace {

std::vector<Vec3> CellSamples(const CellGrid& grid, CellId id,
                              int samples_per_cell) {
  const Aabb box = grid.CellBounds(id);
  const Vec3 center = box.Center();
  std::vector<Vec3> samples;
  samples.push_back(center);
  if (samples_per_cell > 1) {
    // Mid-height corners (the xy extremes dominate the visibility
    // variation; eye height varies little).
    for (int i = 0; i < 4; ++i) {
      Vec3 corner = box.Corner(i);
      samples.emplace_back(corner.x, corner.y, center.z);
      if (static_cast<int>(samples.size()) >= samples_per_cell) {
        break;
      }
    }
  }
  if (static_cast<int>(samples.size()) < samples_per_cell) {
    for (int i = 0; i < 8 && static_cast<int>(samples.size()) <
                                 samples_per_cell;
         ++i) {
      samples.push_back(box.Corner(i));
    }
  }
  return samples;
}

}  // namespace

Result<VisibilityTable> PrecomputeVisibility(
    const Scene& scene, const CellGrid& grid, const PrecomputeOptions& options,
    const std::function<void(uint32_t, uint32_t)>& progress) {
  if (options.samples_per_cell < 1) {
    return Status::InvalidArgument("precompute: need at least one sample");
  }
  const uint32_t num_cells = grid.num_cells();
  std::vector<CellVisibility> cells(num_cells);

  telemetry::Telemetry* tel = options.telemetry;
  const bool tel_on = tel != nullptr && tel->enabled();
  telemetry::Counter* ctr_cells = nullptr;
  telemetry::Counter* ctr_samples = nullptr;
  telemetry::Counter* ctr_nudged = nullptr;
  telemetry::Histogram* visible_hist = nullptr;
  const bool tracing = tel_on && tel->tracer().enabled();
  if (tel_on) {
    telemetry::MetricsRegistry& m = tel->metrics();
    ctr_cells = m.GetCounter("precompute.cells");
    ctr_samples = m.GetCounter("precompute.samples");
    ctr_nudged = m.GetCounter("precompute.nudged_samples");
    visible_hist =
        m.GetHistogram("precompute.visible_per_cell",
                       telemetry::ExponentialBuckets(1.0, 2.0, 16));
  }
  // One private recorder per cell so the merge below is in cell order no
  // matter which worker finished first.
  std::vector<telemetry::TraceRecorder> cell_traces(tracing ? num_cells : 0);

  ThreadPool pool(ThreadPool::ResolveThreads(options.threads));
  if (tel_on) {
    tel->metrics().GetGauge("precompute.threads")
        ->Set(static_cast<double>(pool.num_threads() + 1));
  }

  // Each slot lazily builds its own DovComputer: the cube-map buffer and
  // scratch vectors inside are the only mutable state a cell evaluation
  // touches besides its private cells[c] slot.
  std::vector<std::unique_ptr<DovComputer>> computers(pool.num_slots());
  std::atomic<uint32_t> cells_done{0};
  std::mutex progress_mu;

  pool.ParallelFor(num_cells, [&](size_t slot, size_t index) {
    const CellId c = static_cast<CellId>(index);
    if (computers[slot] == nullptr) {
      computers[slot] = std::make_unique<DovComputer>(&scene, options.dov);
    }
    telemetry::TraceRecorder* trace = tracing ? &cell_traces[c] : nullptr;

    std::vector<Vec3> samples =
        CellSamples(grid, c, options.samples_per_cell);
    uint64_t nudged = 0;
    if (options.avoid_object_interiors) {
      for (Vec3& p : samples) {
        const Vec3 moved = PushOutOfObjects(scene, p);
        if (!(moved == p)) {
          ++nudged;
        }
        p = moved;
      }
    }
    std::vector<float> region = computers[slot]->ComputeRegionDov(samples);
    CellVisibility& cell = cells[c];
    for (ObjectId id = 0; id < region.size(); ++id) {
      if (region[id] > 0.0f) {
        cell.ids.push_back(id);
        cell.dov.push_back(region[id]);
      }
    }
    if (tel_on) {
      ctr_cells->Increment();
      ctr_samples->Add(samples.size());
      ctr_nudged->Add(nudged);
      visible_hist->Observe(static_cast<double>(cell.num_visible()));
    }
    if (trace != nullptr) {
      telemetry::ScopedSpan span(trace, "cell");
      span.Attr("cell", static_cast<double>(c));
      span.Attr("samples", static_cast<double>(samples.size()));
      span.Attr("visible", static_cast<double>(cell.num_visible()));
    }
    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      progress(cells_done.fetch_add(1) + 1, num_cells);
    }
  });

  if (tracing) {
    telemetry::TraceRecorder& tracer = tel->tracer();
    const int32_t root = tracer.BeginSpan("precompute");
    tracer.AddAttr(root, "cells", static_cast<double>(num_cells));
    tracer.AddAttr(root, "threads",
                   static_cast<double>(pool.num_threads() + 1));
    for (const telemetry::TraceRecorder& cell_trace : cell_traces) {
      tracer.Merge(cell_trace);
    }
    tracer.EndSpan(root);
  }
  return VisibilityTable(std::move(cells));
}

}  // namespace hdov
