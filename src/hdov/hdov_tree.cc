#include "hdov/hdov_tree.h"

#include <string>

#include "common/coding.h"

namespace hdov {

namespace {

// Node page layout:
//   u32 is_leaf | u32 level | u32 node_id | u32 entry_count
//   u32 lod_count | lod_count x (u64 model_id | u32 tris | u64 bytes)
//   entry_count x (6 doubles mbr | u64 child | u32 leaf_descendants |
//                  u64 subtree_triangles)
constexpr size_t kEntryBytes = 6 * sizeof(double) + sizeof(uint64_t) +
                               sizeof(uint32_t) + sizeof(uint64_t);

}  // namespace

std::string HdovTree::SerializeNode(const HdovNode& node) {
  std::string out;
  EncodeFixed32(&out, node.is_leaf ? 1 : 0);
  EncodeFixed32(&out, static_cast<uint32_t>(node.level));
  EncodeFixed32(&out, node.node_id);
  EncodeFixed32(&out, static_cast<uint32_t>(node.entries.size()));
  EncodeFixed32(&out, static_cast<uint32_t>(node.internal_lod_models.size()));
  for (size_t i = 0; i < node.internal_lod_models.size(); ++i) {
    EncodeFixed64(&out, node.internal_lod_models[i]);
    EncodeFixed32(&out, node.internal_lods.level(i).triangle_count);
    EncodeFixed64(&out, node.internal_lods.level(i).byte_size);
  }
  for (const HdovEntry& e : node.entries) {
    EncodeDouble(&out, e.mbr.min.x);
    EncodeDouble(&out, e.mbr.min.y);
    EncodeDouble(&out, e.mbr.min.z);
    EncodeDouble(&out, e.mbr.max.x);
    EncodeDouble(&out, e.mbr.max.y);
    EncodeDouble(&out, e.mbr.max.z);
    EncodeFixed64(&out, e.child);
    EncodeFixed32(&out, e.leaf_descendants);
    EncodeFixed64(&out, e.subtree_triangles);
  }
  return out;
}

Status HdovTree::Pack(PageDevice* device) {
  std::string pending;
  PageId pending_page = kInvalidPage;
  auto flush = [&]() -> Status {
    if (pending.empty()) {
      return Status::OK();
    }
    Status s = device->Write(pending_page, pending);
    pending.clear();
    pending_page = kInvalidPage;
    return s;
  };
  for (size_t index : dfs_order_) {
    std::string payload = SerializeNode(nodes_[index]);
    if (payload.size() > device->page_size()) {
      return Status::InvalidArgument(
          "hdov tree: node exceeds page size; lower the fanout");
    }
    if (pending_page == kInvalidPage ||
        pending.size() + payload.size() > device->page_size()) {
      HDOV_RETURN_IF_ERROR(flush());
      pending_page = device->Allocate();
    }
    nodes_[index].page = pending_page;
    nodes_[index].page_offset = static_cast<uint32_t>(pending.size());
    pending += payload;
  }
  return flush();
}

Result<HdovNode> HdovTree::ReadNode(PageDevice* device, PageId page,
                                    uint32_t page_offset) {
  std::string data;
  HDOV_RETURN_IF_ERROR(device->Read(page, &data));
  if (page_offset >= data.size()) {
    return Status::InvalidArgument("hdov tree: bad page offset");
  }
  Decoder decoder(std::string_view(data).substr(page_offset));
  HdovNode node;
  uint32_t is_leaf = 0;
  uint32_t level = 0;
  uint32_t entry_count = 0;
  uint32_t lod_count = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&is_leaf));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&level));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&node.node_id));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&entry_count));
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&lod_count));
  node.is_leaf = is_leaf != 0;
  node.level = static_cast<int>(level);
  node.page = page;
  node.page_offset = page_offset;
  std::vector<LodLevel> levels;
  for (uint32_t i = 0; i < lod_count; ++i) {
    uint64_t model = 0;
    uint32_t tris = 0;
    uint64_t bytes = 0;
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&model));
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&tris));
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&bytes));
    node.internal_lod_models.push_back(static_cast<ModelId>(model));
    LodLevel level;
    level.triangle_count = tris;
    level.byte_size = bytes;
    levels.push_back(std::move(level));
  }
  if (!levels.empty()) {
    HDOV_ASSIGN_OR_RETURN(node.internal_lods,
                          LodChain::FromLevels(std::move(levels)));
  }
  if (decoder.remaining() < entry_count * kEntryBytes) {
    return Status::Corruption("hdov tree: truncated node page");
  }
  for (uint32_t i = 0; i < entry_count; ++i) {
    HdovEntry e;
    HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&e.mbr.min.x));
    HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&e.mbr.min.y));
    HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&e.mbr.min.z));
    HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&e.mbr.max.x));
    HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&e.mbr.max.y));
    HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&e.mbr.max.z));
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&e.child));
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&e.leaf_descendants));
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&e.subtree_triangles));
    node.entries.push_back(e);
  }
  return node;
}

Status HdovTree::EncodeManifest(std::string* out) const {
  EncodeFixed32(out, static_cast<uint32_t>(nodes_.size()));
  EncodeFixed64(out, fanout_);
  EncodeDouble(out, s_ratio_);
  for (size_t index : dfs_order_) {
    const HdovNode& node = nodes_[index];
    if (node.page == kInvalidPage) {
      return Status::FailedPrecondition(
          "hdov tree: EncodeManifest requires Pack() first");
    }
    EncodeFixed64(out, node.page);
    EncodeFixed32(out, node.page_offset);
  }
  EncodeFixed32(out, static_cast<uint32_t>(object_models_.size()));
  for (const auto& models : object_models_) {
    EncodeFixed32(out, static_cast<uint32_t>(models.size()));
    for (ModelId model : models) {
      EncodeFixed64(out, model);
    }
  }
  return Status::OK();
}

Result<Extent> HdovTree::WriteManifest(PagedFile* file) const {
  std::string out;
  HDOV_RETURN_IF_ERROR(EncodeManifest(&out));
  return file->Append(out);
}

Result<HdovTree> HdovTree::LoadFrom(PageDevice* device, PagedFile* file,
                                    const Extent& manifest) {
  HDOV_ASSIGN_OR_RETURN(std::string data, file->ReadExtent(manifest));
  return FromManifest(device, data);
}

Result<HdovTree> HdovTree::FromManifest(PageDevice* device,
                                        std::string_view manifest) {
  Decoder decoder(manifest);
  uint32_t num_nodes = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&num_nodes));
  HdovTree tree;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&tree.fanout_));
  HDOV_RETURN_IF_ERROR(decoder.DecodeDouble(&tree.s_ratio_));
  if (num_nodes == 0) {
    return Status::Corruption("hdov tree: empty manifest");
  }
  tree.nodes_.resize(num_nodes);
  tree.dfs_order_.resize(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    uint64_t page = 0;
    uint32_t offset = 0;
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&page));
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&offset));
    HDOV_ASSIGN_OR_RETURN(HdovNode node, ReadNode(device, page, offset));
    if (node.node_id >= num_nodes) {
      return Status::Corruption("hdov tree: node id out of range");
    }
    tree.dfs_order_[i] = node.node_id;
    tree.nodes_[node.node_id] = std::move(node);
  }
  tree.root_ = tree.dfs_order_.front();
  uint32_t num_objects = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&num_objects));
  tree.object_models_.resize(num_objects);
  for (uint32_t i = 0; i < num_objects; ++i) {
    uint32_t levels = 0;
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed32(&levels));
    tree.object_models_[i].reserve(levels);
    for (uint32_t l = 0; l < levels; ++l) {
      uint64_t model = 0;
      HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&model));
      tree.object_models_[i].push_back(static_cast<ModelId>(model));
    }
  }
  HDOV_RETURN_IF_ERROR(tree.CheckInvariants());
  return tree;
}

Status HdovTree::CheckInvariants() const {
  if (nodes_.empty()) {
    return Status::Internal("hdov tree: no nodes");
  }
  if (dfs_order_.size() != nodes_.size()) {
    return Status::Internal("hdov tree: dfs order size mismatch");
  }
  std::vector<size_t> stack = {root_};
  while (!stack.empty()) {
    size_t index = stack.back();
    stack.pop_back();
    const HdovNode& node = nodes_[index];
    if (node.entries.empty()) {
      return Status::Internal("hdov tree: empty node");
    }
    if (node.internal_lods.empty() || node.internal_lod_models.size() !=
                                          node.internal_lods.num_levels()) {
      return Status::Internal("hdov tree: node missing internal LoDs");
    }
    if (node.is_leaf) {
      if (node.level != 0) {
        return Status::Internal("hdov tree: leaf at nonzero level");
      }
      for (const HdovEntry& e : node.entries) {
        if (e.leaf_descendants != 1) {
          return Status::Internal("hdov tree: leaf entry descendant != 1");
        }
      }
      continue;
    }
    for (const HdovEntry& e : node.entries) {
      size_t child = static_cast<size_t>(e.child);
      if (child >= nodes_.size()) {
        return Status::Internal("hdov tree: child index out of range");
      }
      const HdovNode& child_node = nodes_[child];
      if (child_node.level != node.level - 1) {
        return Status::Internal("hdov tree: child level mismatch");
      }
      if (!(e.mbr == child_node.BoundingBox())) {
        return Status::Internal("hdov tree: stale entry MBR");
      }
      uint32_t descendants = 0;
      uint64_t triangles = 0;
      for (const HdovEntry& ce : child_node.entries) {
        descendants += ce.leaf_descendants;
        triangles += ce.subtree_triangles;
      }
      if (descendants != e.leaf_descendants) {
        return Status::Internal("hdov tree: descendant count mismatch");
      }
      if (triangles != e.subtree_triangles) {
        return Status::Internal("hdov tree: subtree triangle sum mismatch");
      }
      stack.push_back(child);
    }
  }
  return Status::OK();
}

}  // namespace hdov
