#include "hdov/builder.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "hdov/bitmap_vertical_store.h"
#include "hdov/horizontal_store.h"
#include "hdov/indexed_vertical_store.h"
#include "hdov/vertical_store.h"

namespace hdov {

namespace {

// Recursively copies the R-tree topology into the HDoV arena in preorder,
// assigning dense node ids. Returns (hdov node index, leaf descendants,
// finest triangles under the node).
struct ConvertResult {
  size_t index;
  uint32_t leaf_descendants;
  uint64_t subtree_triangles;
};

ConvertResult ConvertNode(const RTree& rtree, size_t rnode_index,
                          const Scene& scene, std::vector<HdovNode>* nodes) {
  const RTree::Node& rnode = rtree.node(rnode_index);
  const size_t index = nodes->size();
  nodes->emplace_back();
  {
    HdovNode& node = (*nodes)[index];
    node.is_leaf = rnode.is_leaf;
    node.level = rnode.level;
    node.node_id = static_cast<uint32_t>(index);
  }

  uint32_t total_descendants = 0;
  uint64_t total_triangles = 0;
  std::vector<HdovEntry> entries;
  entries.reserve(rnode.entries.size());
  for (const RTree::Entry& re : rnode.entries) {
    HdovEntry entry;
    entry.mbr = re.mbr;
    if (rnode.is_leaf) {
      entry.child = re.payload;
      entry.leaf_descendants = 1;
      entry.subtree_triangles =
          scene.object(static_cast<ObjectId>(re.payload))
              .lods.finest()
              .triangle_count;
    } else {
      ConvertResult child =
          ConvertNode(rtree, static_cast<size_t>(re.payload), scene, nodes);
      entry.child = child.index;
      entry.leaf_descendants = child.leaf_descendants;
      entry.subtree_triangles = child.subtree_triangles;
    }
    total_descendants += entry.leaf_descendants;
    total_triangles += entry.subtree_triangles;
    entries.push_back(entry);
  }
  (*nodes)[index].entries = std::move(entries);
  return {index, total_descendants, total_triangles};
}

// Builds the (possibly mesh-backed) internal LoD chain for one node given
// the aggregate of its children.
Result<LodChain> BuildInternalLods(const TriangleMesh& aggregate_mesh,
                                   uint32_t children_triangles,
                                   const HdovBuildOptions& options) {
  LodChainOptions lod_options;
  lod_options.bytes_per_triangle = options.bytes_per_triangle;
  lod_options.min_triangles = options.min_internal_triangles;
  lod_options.simplify = options.simplify;

  if (options.build_internal_meshes && !aggregate_mesh.empty()) {
    // Targets relative to the aggregate mesh: s for the finest internal
    // level, scaled down for the coarser ones.
    lod_options.ratios.clear();
    const double base =
        options.internal_lod_s *
        static_cast<double>(children_triangles) /
        std::max<double>(1.0, static_cast<double>(
                                  aggregate_mesh.triangle_count()));
    for (double r : options.internal_ratios) {
      lod_options.ratios.push_back(std::clamp(base * r, 1e-6, 1.0));
    }
    return LodChain::Build(aggregate_mesh, lod_options);
  }

  lod_options.ratios = options.internal_ratios;
  auto finest = static_cast<uint32_t>(std::max<double>(
      options.min_internal_triangles,
      options.internal_lod_s * children_triangles));
  return LodChain::Proxy(finest, lod_options);
}

}  // namespace

Result<HdovTree> HdovBuilder::Build(const Scene& scene, ModelStore* models,
                                    const HdovBuildOptions& options) {
  if (scene.size() == 0) {
    return Status::InvalidArgument("hdov build: empty scene");
  }

  // 1. Spatial backbone.
  RTree rtree(options.rtree);
  if (options.bulk_load) {
    std::vector<std::pair<Aabb, uint64_t>> entries;
    entries.reserve(scene.size());
    for (const Object& obj : scene.objects()) {
      entries.emplace_back(obj.mbr, obj.id);
    }
    HDOV_ASSIGN_OR_RETURN(rtree, RTree::BulkLoad(entries, options.rtree));
  } else {
    for (const Object& obj : scene.objects()) {
      HDOV_RETURN_IF_ERROR(rtree.Insert(obj.mbr, obj.id));
    }
  }

  HdovTree tree;
  tree.fanout_ = options.rtree.max_entries;

  // 2. Topology conversion (preorder; node_id == arena index).
  ConvertNode(rtree, rtree.root_index(), scene, &tree.nodes_);
  tree.root_ = 0;
  tree.dfs_order_.resize(tree.nodes_.size());
  for (size_t i = 0; i < tree.nodes_.size(); ++i) {
    tree.dfs_order_[i] = i;
  }

  // 3. Object LoD registration.
  tree.object_models_.resize(scene.size());
  for (const Object& obj : scene.objects()) {
    auto& slots = tree.object_models_[obj.id];
    slots.reserve(obj.lods.num_levels());
    for (size_t level = 0; level < obj.lods.num_levels(); ++level) {
      slots.push_back(models->Register(obj.lods.level(level).byte_size));
    }
  }

  // 4. Internal LoDs, children before parents (reverse preorder).
  double s_sum = 0.0;
  size_t s_count = 0;
  for (auto it = tree.dfs_order_.rbegin(); it != tree.dfs_order_.rend();
       ++it) {
    HdovNode& node = tree.nodes_[*it];
    uint32_t children_triangles = 0;
    TriangleMesh aggregate;
    if (node.is_leaf) {
      for (const HdovEntry& e : node.entries) {
        const Object& obj = scene.object(static_cast<ObjectId>(e.child));
        children_triangles += obj.lods.finest().triangle_count;
        if (options.build_internal_meshes && !obj.lods.finest().mesh.empty()) {
          // Aggregate a mid-coarse object LoD: plenty for a stand-in that
          // will be simplified further, and much cheaper than the finest.
          size_t src = obj.lods.num_levels() > 1 ? 1 : 0;
          aggregate.Append(obj.lods.level(src).mesh);
        }
      }
    } else {
      for (const HdovEntry& e : node.entries) {
        const HdovNode& child = tree.nodes_[static_cast<size_t>(e.child)];
        children_triangles += child.internal_lods.finest().triangle_count;
        if (options.build_internal_meshes &&
            !child.internal_lods.finest().mesh.empty()) {
          aggregate.Append(child.internal_lods.finest().mesh);
        }
      }
    }
    HDOV_ASSIGN_OR_RETURN(
        node.internal_lods,
        BuildInternalLods(aggregate, children_triangles, options));
    node.internal_lod_models.clear();
    for (size_t level = 0; level < node.internal_lods.num_levels(); ++level) {
      node.internal_lod_models.push_back(
          models->Register(node.internal_lods.level(level).byte_size));
    }
    if (children_triangles > 0) {
      s_sum += static_cast<double>(
                   node.internal_lods.finest().triangle_count) /
               children_triangles;
      ++s_count;
    }
  }
  tree.s_ratio_ = s_count > 0 ? s_sum / static_cast<double>(s_count)
                              : options.internal_lod_s;

  HDOV_RETURN_IF_ERROR(tree.CheckInvariants());
  return tree;
}

CellVPageSet ComputeCellVPages(const HdovTree& tree,
                               const CellVisibility& cell) {
  CellVPageSet result;
  result.pages.resize(tree.num_nodes());
  // Aggregates per node (filled children-first).
  std::vector<double> node_dov(tree.num_nodes(), 0.0);
  std::vector<uint64_t> node_nvo(tree.num_nodes(), 0);

  for (auto it = tree.dfs_order().rbegin(); it != tree.dfs_order().rend();
       ++it) {
    const HdovNode& node = tree.node(*it);
    VPage page;
    page.reserve(node.entries.size());
    bool visible = false;
    double dov_sum = 0.0;
    uint64_t nvo_sum = 0;
    for (const HdovEntry& e : node.entries) {
      VdEntry vd;
      if (node.is_leaf) {
        vd.dov = cell.DovOf(static_cast<ObjectId>(e.child));
        vd.nvo = vd.dov > 0.0f ? 1 : 0;
      } else {
        const size_t child = static_cast<size_t>(e.child);
        vd.dov = static_cast<float>(node_dov[child]);
        vd.nvo = static_cast<uint32_t>(node_nvo[child]);
      }
      visible = visible || vd.dov > 0.0f;
      dov_sum += vd.dov;
      nvo_sum += vd.nvo;
      page.push_back(vd);
    }
    node_dov[*it] = dov_sum;
    node_nvo[*it] = nvo_sum;
    if (visible) {
      result.pages[*it] = std::move(page);
    }
  }
  return result;
}

std::vector<CellVPageSet> ComputeAllCellVPages(const HdovTree& tree,
                                               const VisibilityTable& table,
                                               uint32_t threads) {
  std::vector<CellVPageSet> cells(table.num_cells());
  ThreadPool pool(ThreadPool::ResolveThreads(threads));
  pool.ParallelFor(table.num_cells(), [&](size_t, size_t c) {
    cells[c] = ComputeCellVPages(tree, table.cell(static_cast<CellId>(c)));
  });
  return cells;
}

std::string StorageSchemeName(StorageScheme scheme) {
  switch (scheme) {
    case StorageScheme::kHorizontal:
      return "horizontal";
    case StorageScheme::kVertical:
      return "vertical";
    case StorageScheme::kIndexedVertical:
      return "indexed-vertical";
    case StorageScheme::kBitmapVertical:
      return "bitmap-vertical";
  }
  return "unknown";
}

Result<std::unique_ptr<VisibilityStore>> BuildStore(
    StorageScheme scheme, const HdovTree& tree, const VisibilityTable& table,
    PageDevice* device, uint32_t threads) {
  std::vector<CellVPageSet> cells = ComputeAllCellVPages(tree, table, threads);
  switch (scheme) {
    case StorageScheme::kHorizontal: {
      HDOV_ASSIGN_OR_RETURN(auto store,
                            HorizontalStore::Build(tree, cells, device));
      return std::unique_ptr<VisibilityStore>(std::move(store));
    }
    case StorageScheme::kVertical: {
      HDOV_ASSIGN_OR_RETURN(auto store,
                            VerticalStore::Build(tree, cells, device));
      return std::unique_ptr<VisibilityStore>(std::move(store));
    }
    case StorageScheme::kIndexedVertical: {
      HDOV_ASSIGN_OR_RETURN(
          auto store, IndexedVerticalStore::Build(tree, cells, device));
      return std::unique_ptr<VisibilityStore>(std::move(store));
    }
    case StorageScheme::kBitmapVertical: {
      HDOV_ASSIGN_OR_RETURN(auto store,
                            BitmapVerticalStore::Build(tree, cells, device));
      return std::unique_ptr<VisibilityStore>(std::move(store));
    }
  }
  return Status::InvalidArgument("unknown storage scheme");
}

Result<std::unique_ptr<VisibilityStore>> LoadStore(StorageScheme scheme,
                                                   const HdovTree& tree,
                                                   std::string_view meta,
                                                   PageDevice* device) {
  switch (scheme) {
    case StorageScheme::kHorizontal: {
      HDOV_ASSIGN_OR_RETURN(auto store,
                            HorizontalStore::Load(tree, meta, device));
      return std::unique_ptr<VisibilityStore>(std::move(store));
    }
    case StorageScheme::kVertical: {
      HDOV_ASSIGN_OR_RETURN(auto store,
                            VerticalStore::Load(tree, meta, device));
      return std::unique_ptr<VisibilityStore>(std::move(store));
    }
    case StorageScheme::kIndexedVertical: {
      HDOV_ASSIGN_OR_RETURN(auto store,
                            IndexedVerticalStore::Load(tree, meta, device));
      return std::unique_ptr<VisibilityStore>(std::move(store));
    }
    case StorageScheme::kBitmapVertical: {
      HDOV_ASSIGN_OR_RETURN(auto store,
                            BitmapVerticalStore::Load(tree, meta, device));
      return std::unique_ptr<VisibilityStore>(std::move(store));
    }
  }
  return Status::InvalidArgument("unknown storage scheme");
}

}  // namespace hdov
