// FlatHdovTree: a query-time re-layout of a built HdovTree (ROADMAP item
// "flatten the search hot path"). The builder assigns node ids in DFS
// preorder and the tree manifest serializes nodes in that same order, so
// the flat layout simply reuses it: node headers become parallel arrays
// indexed by node id, and every node's entries land contiguously in one
// structure-of-arrays entry arena, DFS-packed like the on-disk pages.
// The Fig. 3 prune/terminate tests then sweep plain float/int arrays
// (branch-light, auto-vectorizable) instead of chasing std::vector<HdovNode>
// objects — see flat_search.h for the searcher that runs on this layout.
//
// Compile() is a pure function of the built tree: it copies, never
// references, so the source HdovTree and the FlatHdovTree can be shared
// and dropped independently. Both describe the identical tree; the
// differential harness (tests/flat_search_test.cc) holds the two search
// paths to bit-identical results, stats and simulated I/O.
//
// VPageBitmapIndex is the per-cell companion: a bitmap over V-page-visible
// node ids with a per-word rank prefix and a one-level summary, in the
// spirit of level-specialized bitmap trees (fast_tree.h, SNIPPETS.md). It
// is rebuilt at each cell flip from the store's in-memory segment
// (VisibilityStore::FillSegment) and turns the indexed-vertical scheme's
// per-lookup binary search into two word probes and a popcount.

#ifndef HDOV_HDOV_FLAT_TREE_H_
#define HDOV_HDOV_FLAT_TREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geometry/aabb.h"
#include "hdov/hdov_tree.h"
#include "storage/model_store.h"

namespace hdov {

class FlatHdovTree {
 public:
  FlatHdovTree() = default;

  // Compiles the packed layout from a built (or manifest-restored) tree.
  // Fails if the tree is empty or structurally inconsistent (dangling
  // child index, internal node without internal LoDs).
  static Result<FlatHdovTree> Compile(const HdovTree& tree);

  // --- Whole-tree scalars -------------------------------------------------
  size_t num_nodes() const { return node_page_.size(); }
  size_t num_entries() const { return entry_child_.size(); }
  uint32_t root_index() const { return root_; }
  size_t fanout() const { return fanout_; }
  double s_ratio() const { return s_ratio_; }
  int height() const { return height_; }
  size_t num_objects() const {
    return object_model_begin_.empty() ? 0 : object_model_begin_.size() - 1;
  }

  // --- Node headers (parallel arrays indexed by node id) ------------------
  bool is_leaf(uint32_t n) const { return node_is_leaf_[n] != 0; }
  int level(uint32_t n) const { return node_level_[n]; }
  PageId page(uint32_t n) const { return node_page_[n]; }
  uint32_t entry_begin(uint32_t n) const { return entry_begin_[n]; }
  uint32_t entry_count(uint32_t n) const { return entry_count_[n]; }
  uint32_t lod_begin(uint32_t n) const { return lod_begin_[n]; }
  uint32_t lod_count(uint32_t n) const { return lod_count_[n]; }

  // --- SoA entry arena (indexed by entry slot = entry_begin + ordinal) ----
  const std::vector<Vec3>& entry_mbr_lo() const { return entry_mbr_lo_; }
  const std::vector<Vec3>& entry_mbr_hi() const { return entry_mbr_hi_; }
  // ObjectId for leaf entries, child node id for internal entries.
  const std::vector<uint64_t>& entry_child() const { return entry_child_; }
  const std::vector<uint32_t>& entry_leaf_descendants() const {
    return entry_leaf_descendants_;
  }
  const std::vector<uint64_t>& entry_subtree_triangles() const {
    return entry_subtree_triangles_;
  }

  Aabb EntryMbr(uint32_t slot) const {
    return Aabb(entry_mbr_lo_[slot], entry_mbr_hi_[slot]);
  }

  // Union of a node's entry MBRs (== HdovNode::BoundingBox()).
  Aabb NodeBoundingBox(uint32_t n) const;

  // --- Internal-LoD arena (indexed by lod_begin + level) ------------------
  const std::vector<ModelId>& lod_model() const { return lod_model_; }
  const std::vector<uint32_t>& lod_triangles() const { return lod_triangles_; }
  const std::vector<uint64_t>& lod_bytes() const { return lod_bytes_; }

  // Eq. 5 level selection over node `n`'s internal LoD chain; arithmetic
  // identical to LodChain::LevelForBlend (ties break toward the finer
  // level, strict less-than).
  uint32_t InternalLevelForBlend(uint32_t n, double k) const;

  // --- Object LoD model table, flattened ----------------------------------
  // == HdovTree::object_models()[object][level].
  ModelId object_model(uint64_t object, uint32_t level) const {
    return object_model_[object_model_begin_[object] + level];
  }

  // --- Per-tree-level static node bitmaps ---------------------------------
  // level_nodes(l) has bit `n` set iff node n sits at tree level l (0 =
  // leaves). A vertical sweep of one level is a word scan instead of a
  // full node walk; combined with a VPageBitmapIndex a word-AND + popcount
  // answers "how many level-l nodes are V-page-visible in this cell".
  const std::vector<uint64_t>& level_nodes(int level) const {
    return level_nodes_[level];
  }
  uint32_t CountAtLevel(int level) const;

  // Structural invariants, mirroring HdovTree::CheckInvariants over the
  // flat arrays: consistent arena extents, DFS-packed entry layout, child
  // links one level down, MBR containment of child bounding boxes, and
  // internal LoD chains with monotone triangle counts.
  Status CheckInvariants() const;

 private:
  uint32_t root_ = 0;
  size_t fanout_ = 0;
  double s_ratio_ = 0.25;
  int height_ = 0;

  std::vector<uint8_t> node_is_leaf_;
  std::vector<int32_t> node_level_;
  std::vector<PageId> node_page_;
  std::vector<uint32_t> entry_begin_;
  std::vector<uint32_t> entry_count_;
  std::vector<uint32_t> lod_begin_;
  std::vector<uint32_t> lod_count_;

  std::vector<Vec3> entry_mbr_lo_;
  std::vector<Vec3> entry_mbr_hi_;
  std::vector<uint64_t> entry_child_;
  std::vector<uint32_t> entry_leaf_descendants_;
  std::vector<uint64_t> entry_subtree_triangles_;

  std::vector<ModelId> lod_model_;
  std::vector<uint32_t> lod_triangles_;
  std::vector<uint64_t> lod_bytes_;

  std::vector<uint32_t> object_model_begin_;
  std::vector<ModelId> object_model_;

  std::vector<std::vector<uint64_t>> level_nodes_;
};

// Per-cell bitmap index over V-page-visible node ids. Rebuilt at every
// cell flip from a VisibilityStore's in-memory segment; Lookup answers
// "is this node visible here, and at which V-page record slot" in O(1):
//   rank  = prefix[word] + popcount(word bits below the node's bit)
//   slot  = slots[rank]
// A summary level (one bit per leaf word) makes NextVisible — the select
// companion — skip empty 4096-node spans in one probe.
class VPageBitmapIndex {
 public:
  static constexpr uint32_t kNotFound = ~static_cast<uint32_t>(0);

  // `nodes` must be ascending; `slots` is parallel (the record slot of
  // each visible node). Both come from VisibilityStore::FillSegment.
  void Rebuild(uint32_t num_nodes, const std::vector<uint32_t>& nodes,
               const std::vector<uint64_t>& slots);
  void Clear();

  uint32_t num_nodes() const { return num_nodes_; }
  uint32_t visible_count() const {
    return static_cast<uint32_t>(slots_.size());
  }

  bool Test(uint32_t node_id) const {
    return node_id < num_nodes_ &&
           (words_[node_id >> 6] & (1ull << (node_id & 63))) != 0;
  }

  // Number of visible nodes with id < node_id.
  uint32_t Rank(uint32_t node_id) const;

  // True (with *slot set) iff the node is visible in the current cell.
  bool Lookup(uint32_t node_id, uint64_t* slot) const;

  // Smallest visible node id >= from, or kNotFound.
  uint32_t NextVisible(uint32_t from) const;

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  uint32_t num_nodes_ = 0;
  std::vector<uint64_t> words_;    // One bit per node id.
  std::vector<uint64_t> summary_;  // One bit per non-empty word.
  std::vector<uint32_t> rank_;     // Prefix popcount per word.
  std::vector<uint64_t> slots_;    // Record slot per visible node, rank order.
};

}  // namespace hdov

#endif  // HDOV_HDOV_FLAT_TREE_H_
