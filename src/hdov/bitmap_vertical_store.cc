#include "hdov/bitmap_vertical_store.h"

#include <bit>

#include "common/coding.h"

namespace hdov {

Result<std::unique_ptr<BitmapVerticalStore>> BitmapVerticalStore::Build(
    const HdovTree& tree, const std::vector<CellVPageSet>& cells,
    PageDevice* device) {
  if (cells.empty()) {
    return Status::InvalidArgument("bitmap store: no cells");
  }
  const size_t record_size = VPageRecordSize(tree.fanout());
  auto store = std::unique_ptr<BitmapVerticalStore>(
      new BitmapVerticalStore(device, record_size, tree.num_nodes()));

  // Pass 1: clustered V-pages per cell in node-id order, remembering each
  // cell's base slot, plus the visibility bitmaps.
  std::string blob;
  blob.reserve(cells.size() * store->segment_bytes_);
  store->cell_base_.reserve(cells.size());
  for (const CellVPageSet& cell : cells) {
    if (cell.pages.size() != tree.num_nodes()) {
      return Status::InvalidArgument(
          "bitmap store: cell V-page set size mismatch");
    }
    store->cell_base_.push_back(store->vpages_.num_records());
    std::string bitmap(store->segment_bytes_, '\0');
    for (size_t node = 0; node < tree.num_nodes(); ++node) {
      const VPage& page = cell.pages[node];
      if (page.empty() || !VPageVisible(page)) {
        continue;
      }
      HDOV_RETURN_IF_ERROR(
          store->vpages_.AppendRecord(SerializeVPage(page, tree.fanout()))
              .status());
      bitmap[node / 8] |= static_cast<char>(1u << (node % 8));
    }
    blob += bitmap;
  }
  HDOV_RETURN_IF_ERROR(store->vpages_.FinishBuild());
  HDOV_ASSIGN_OR_RETURN(store->index_extent_,
                        store->index_file_.Append(blob));
  return store;
}

Result<std::unique_ptr<BitmapVerticalStore>> BitmapVerticalStore::Load(
    const HdovTree& tree, std::string_view meta, PageDevice* device) {
  Decoder decoder(meta);
  auto store = std::unique_ptr<BitmapVerticalStore>(new BitmapVerticalStore(
      device, VPageRecordSize(tree.fanout()), tree.num_nodes()));
  HDOV_RETURN_IF_ERROR(DecodeExtent(&decoder, &store->index_extent_));
  uint64_t cells = 0;
  HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&cells));
  store->cell_base_.resize(cells);
  for (uint64_t& base : store->cell_base_) {
    HDOV_RETURN_IF_ERROR(decoder.DecodeFixed64(&base));
  }
  HDOV_RETURN_IF_ERROR(store->vpages_.RestoreMeta(&decoder));
  return store;
}

void BitmapVerticalStore::EncodeMeta(std::string* dst) const {
  EncodeExtent(dst, index_extent_);
  EncodeFixed64(dst, cell_base_.size());
  for (uint64_t base : cell_base_) {
    EncodeFixed64(dst, base);
  }
  vpages_.EncodeMeta(dst);
}

Status BitmapVerticalStore::BeginCell(CellId cell) {
  if (cell >= cell_base_.size()) {
    return Status::OutOfRange("bitmap store: cell out of range");
  }
  if (cell == current_cell_) {
    return Status::OK();
  }
  ++tstats_.cell_flips;
  HDOV_ASSIGN_OR_RETURN(
      bitmap_, index_file_.ReadRange(index_extent_, cell * segment_bytes_,
                                     segment_bytes_));
  // Prefix popcounts: rank_[i] = number of visible nodes in bytes [0, i).
  rank_.assign(bitmap_.size() + 1, 0);
  for (size_t i = 0; i < bitmap_.size(); ++i) {
    rank_[i + 1] = rank_[i] + static_cast<uint32_t>(std::popcount(
                                  static_cast<uint8_t>(bitmap_[i])));
  }
  current_cell_ = cell;
  vpages_.InvalidateCache();
  return Status::OK();
}

bool BitmapVerticalStore::FillSegment(std::vector<uint32_t>* nodes,
                                      std::vector<uint64_t>* slots) const {
  if (current_cell_ == kInvalidCell) {
    return false;
  }
  nodes->clear();
  slots->clear();
  // Ascending bit order is rank order, so each visible node's slot is the
  // cell base plus a running rank — the same arithmetic GetVPage performs
  // one popcount at a time.
  uint64_t running_rank = 0;
  for (size_t node = 0; node < num_nodes_; ++node) {
    const auto byte = static_cast<uint8_t>(bitmap_[node / 8]);
    if ((byte & (1u << (node % 8))) != 0) {
      nodes->push_back(static_cast<uint32_t>(node));
      slots->push_back(cell_base_[current_cell_] + running_rank);
      ++running_rank;
    }
  }
  return true;
}

Status BitmapVerticalStore::ReadVPageAt(uint64_t slot, VPage* page) {
  HDOV_RETURN_IF_ERROR(vpages_.ReadRecord(slot, page));
  ++tstats_.vpage_fetches;
  return Status::OK();
}

Status BitmapVerticalStore::GetVPage(uint32_t node_id, VPage* page,
                                     bool* visible) {
  if (current_cell_ == kInvalidCell) {
    return Status::FailedPrecondition("bitmap store: BeginCell first");
  }
  if (node_id >= num_nodes_) {
    return Status::OutOfRange("bitmap store: node out of range");
  }
  const auto byte = static_cast<uint8_t>(bitmap_[node_id / 8]);
  if ((byte & (1u << (node_id % 8))) == 0) {
    ++tstats_.invisible_lookups;
    page->clear();
    *visible = false;
    return Status::OK();
  }
  // Rank: visible nodes before node_id.
  const uint32_t before_bits = static_cast<uint32_t>(std::popcount(
      static_cast<uint8_t>(byte & ((1u << (node_id % 8)) - 1u))));
  const uint64_t slot =
      cell_base_[current_cell_] + rank_[node_id / 8] + before_bits;
  HDOV_RETURN_IF_ERROR(vpages_.ReadRecord(slot, page));
  ++tstats_.vpage_fetches;
  *visible = true;
  return Status::OK();
}

}  // namespace hdov
