// FlatSearcher: the Fig. 3 threshold search re-hosted on the packed
// FlatHdovTree layout (flat_tree.h). Same algorithm, same decisions, same
// simulated I/O as HdovSearcher — proven bit-identical by the differential
// harness in tests/flat_search_test.cc — but the traversal is an explicit
// stack instead of recursion, each node's prune/terminate tests sweep the
// SoA entry arena in one pass before any result is materialized, and
// V-page visibility goes through a per-cell VPageBitmapIndex (two word
// probes + popcount) instead of the store's per-lookup search.
//
// Billing contract (the part the differential harness pins down):
//  - node pages: one buffered read per visited node, deduped against the
//    previous node's page, exactly like HdovSearcher::last_node_page_;
//  - visible V-pages: a bitmap hit reads the record through
//    VisibilityStore::ReadVPageAt — the same record read and the same
//    vpage_fetches tick as GetVPage's visible tail;
//  - invisible V-pages: a bitmap miss routes through GetVPage so the
//    store's invisible_lookups counter ticks identically;
//  - stores without an in-memory segment (horizontal) fall back to
//    GetVPage for every lookup, again identical to the legacy path.
// Trace spans mirror the legacy searcher span for span, attribute for
// attribute, in the same DFS order.

#ifndef HDOV_HDOV_FLAT_SEARCH_H_
#define HDOV_HDOV_FLAT_SEARCH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hdov/flat_tree.h"
#include "hdov/search.h"
#include "hdov/visibility_store.h"
#include "scene/object.h"
#include "storage/buffer_pool.h"
#include "storage/model_store.h"
#include "telemetry/trace.h"

namespace hdov {

class FlatSearcher {
 public:
  // Same contract as HdovSearcher: `tree_device` is billed one page read
  // per visited node (nullptr skips node-page billing).
  FlatSearcher(const FlatHdovTree* tree, const Scene* scene,
               const ModelStore* models, PageDevice* tree_device);

  // Runs the Fig. 3 traversal for `cell`; drop-in replacement for
  // HdovSearcher::Search.
  Status Search(VisibilityStore* store, CellId cell,
                const SearchOptions& options, std::vector<RetrievedLod>* result,
                SearchStats* stats = nullptr);

  // Optional LRU pool in front of the tree-node page reads; must wrap the
  // same device.
  void set_tree_cache(BufferPool* cache) { tree_cache_ = cache; }

  const FlatHdovTree* tree() const { return flat_; }

  // The per-cell V-page index currently loaded (for tests/inspection).
  const VPageBitmapIndex& vpage_index() const { return vindex_; }

 private:
  // Per-entry verdict of the SoA decision pass.
  enum class Action : uint8_t { kPrune, kObject, kTerminate, kDescend };
  struct EntryDecision {
    Action action = Action::kPrune;
    bool eq4_evaluated = false;
    uint32_t level = 0;  // Selected internal-LoD level (internal entries).
    double eq4_lhs = 0.0;
    double eq4_rhs = 0.0;
  };

  // One suspended node of the explicit traversal stack.
  struct Frame {
    uint32_t node = 0;
    uint32_t cursor = 0;  // Next entry ordinal to emit.
    int32_t node_span = telemetry::TraceRecorder::kNoSpan;
    // The "descend" span the parent opened for this subtree; stays open
    // until the frame pops, matching the legacy ScopedSpan nesting.
    int32_t descend_span = telemetry::TraceRecorder::kNoSpan;
    VPage vpage;
    std::vector<EntryDecision> decisions;
  };

  Status Traverse(VisibilityStore* store, const SearchOptions& options,
                  std::vector<RetrievedLod>* result, SearchStats* stats);

  // Visits `node`: ticks stats, opens its "node" span, bills the node
  // page, fetches + checks the V-page, runs the decision pass, and pushes
  // a frame. Root-invisible returns OK without pushing (search over). On
  // any outcome that does not push, the node span and `descend_span` are
  // closed here, exactly as the legacy recursion unwinds them.
  Status EnterNode(VisibilityStore* store, uint32_t node, int32_t descend_span,
                   const SearchOptions& options, SearchStats* stats,
                   std::vector<Frame>* stack);

  // GetVPage-equivalent fetch through the bitmap index (see the billing
  // contract above).
  Status FetchVPage(VisibilityStore* store, uint32_t node_id, VPage* page,
                    bool* visible);

  // Fills the SoA decision pass results for `frame`'s node.
  void DecideEntries(const SearchOptions& options, Frame* frame) const;

  const FlatHdovTree* flat_;
  const Scene* scene_;
  const ModelStore* models_;
  PageDevice* tree_device_;
  BufferPool* tree_cache_ = nullptr;
  double log_fanout_ = 1.0;
  double log_s_ = 0.0;  // Constant per tree; legacy recomputes it per node.
  PageId last_node_page_ = kInvalidPage;

  // Per-cell segment cache behind the bitmap index, invalidated whenever
  // the store, the cell, or the store's flip counter changes (a prefetch
  // may flip the shared store to another cell between two queries).
  const VisibilityStore* seg_store_ = nullptr;
  CellId seg_cell_ = kInvalidCell;
  uint64_t seg_flips_ = ~static_cast<uint64_t>(0);
  bool seg_valid_ = false;
  std::vector<uint32_t> seg_nodes_;
  std::vector<uint64_t> seg_slots_;
  VPageBitmapIndex vindex_;
};

}  // namespace hdov

#endif  // HDOV_HDOV_FLAT_SEARCH_H_
